module github.com/globalmmcs/globalmmcs

go 1.24
