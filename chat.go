package globalmmcs

import (
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/im"
)

// ChatMessage is one room message.
type ChatMessage struct {
	// From is the sending user.
	From string
	// SessionID is the room's session id.
	SessionID string
	// At is the send time.
	At time.Time
	// Body is the message text.
	Body string
}

func chatFromInternal(m *im.ChatMessage) ChatMessage {
	return ChatMessage{
		From:      m.From,
		SessionID: m.Session,
		At:        time.Unix(0, m.At),
		Body:      m.Body,
	}
}

// PresenceStatus enumerates presence states.
type PresenceStatus string

// Presence states.
const (
	StatusOnline  PresenceStatus = "online"
	StatusAway    PresenceStatus = "away"
	StatusBusy    PresenceStatus = "busy"
	StatusOffline PresenceStatus = "offline"
)

func internalStatus(s PresenceStatus) im.PresenceStatus { return im.PresenceStatus(s) }

// Presence is one user's presence state in a community.
type Presence struct {
	User      string
	Community string
	Status    PresenceStatus
	Note      string
	At        time.Time
}

// pumpSend hands v to ch without ever blocking: when the consumer lags
// and the buffer is full, the oldest buffered value is displaced — the
// same best-effort policy the broker applies to slow subscribers. This
// keeps a dead consumer from wedging the pump goroutine, so delivery
// channels always close when the underlying subscription does.
func pumpSend[T any](ch chan T, v T) {
	for {
		select {
		case ch <- v:
			return
		default:
		}
		select {
		case <-ch: // drop the oldest to make room
		default:
		}
	}
}

// ChatRoom delivers a session room's messages on a channel. Slow
// consumers lose the oldest buffered messages rather than stalling
// delivery.
type ChatRoom struct {
	sub *broker.Subscription
	ch  chan ChatMessage

	once sync.Once
	wg   sync.WaitGroup
}

func newChatRoom(sub *broker.Subscription) *ChatRoom {
	r := &ChatRoom{sub: sub, ch: make(chan ChatMessage, 64)}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(r.ch)
		for e := range sub.C() {
			m, err := im.ParseChat(e)
			if err != nil {
				continue
			}
			pumpSend(r.ch, chatFromInternal(m))
		}
	}()
	return r
}

// C returns the delivery channel. It is closed when the room is closed
// or the client disconnects.
func (r *ChatRoom) C() <-chan ChatMessage { return r.ch }

// Close leaves the room and closes the delivery channel.
func (r *ChatRoom) Close() error {
	var err error
	r.once.Do(func() {
		err = r.sub.Cancel()
		r.wg.Wait()
	})
	return err
}

// PresenceWatch delivers a community's presence updates on a channel.
type PresenceWatch struct {
	sub *broker.Subscription
	ch  chan Presence

	once sync.Once
	wg   sync.WaitGroup
}

func newPresenceWatch(sub *broker.Subscription) *PresenceWatch {
	w := &PresenceWatch{sub: sub, ch: make(chan Presence, 64)}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer close(w.ch)
		for e := range sub.C() {
			p, err := im.ParsePresence(e)
			if err != nil {
				continue
			}
			pumpSend(w.ch, Presence{
				User:      p.User,
				Community: p.Community,
				Status:    PresenceStatus(p.Status),
				Note:      p.Note,
				At:        time.Unix(0, p.At),
			})
		}
	}()
	return w
}

// C returns the delivery channel. It is closed when the watch is closed
// or the client disconnects.
func (w *PresenceWatch) C() <-chan Presence { return w.ch }

// Close stops the watch and closes the delivery channel.
func (w *PresenceWatch) Close() error {
	var err error
	w.once.Do(func() {
		err = w.sub.Cancel()
		w.wg.Wait()
	})
	return err
}
