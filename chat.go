package globalmmcs

import (
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/im"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
)

// ChatMessage is one room message.
type ChatMessage struct {
	// From is the sending user.
	From string
	// SessionID is the room's session id.
	SessionID string
	// At is the send time.
	At time.Time
	// Body is the message text.
	Body string
}

func chatFromInternal(m *im.ChatMessage) ChatMessage {
	return ChatMessage{
		From:      m.From,
		SessionID: m.Session,
		At:        time.Unix(0, m.At),
		Body:      m.Body,
	}
}

// PresenceStatus enumerates presence states.
type PresenceStatus string

// Presence states.
const (
	StatusOnline  PresenceStatus = "online"
	StatusAway    PresenceStatus = "away"
	StatusBusy    PresenceStatus = "busy"
	StatusOffline PresenceStatus = "offline"
)

func internalStatus(s PresenceStatus) im.PresenceStatus { return im.PresenceStatus(s) }

// Presence is one user's presence state in a community.
type Presence struct {
	User      string
	Community string
	Status    PresenceStatus
	Note      string
	At        time.Time
}

// defaultChatBuffer is the delivery buffer of chat rooms and presence
// watches absent a WithBuffer option.
const defaultChatBuffer = 64

// ChatRoom is a Stream of a session room's messages, returned by
// Session.Chat. Consume with Recv, All or Chan; Close leaves the room.
type ChatRoom = Stream[ChatMessage]

func newChatRoom(sub *broker.Subscription, reg *metrics.Registry, name string, opts []StreamOption) *ChatRoom {
	return newStream(sub, reg, name, defaultChatBuffer, func(e *event.Event) (ChatMessage, bool) {
		m, err := im.ParseChat(e)
		if err != nil {
			return ChatMessage{}, false
		}
		return chatFromInternal(m), true
	}, nil, opts)
}

// PresenceWatch is a Stream of a community's presence updates, returned
// by Client.WatchPresence.
type PresenceWatch = Stream[Presence]

func newPresenceWatch(sub *broker.Subscription, reg *metrics.Registry, name string, opts []StreamOption) *PresenceWatch {
	return newStream(sub, reg, name, defaultChatBuffer, func(e *event.Event) (Presence, bool) {
		p, err := im.ParsePresence(e)
		if err != nil {
			return Presence{}, false
		}
		return Presence{
			User:      p.User,
			Community: p.Community,
			Status:    PresenceStatus(p.Status),
			Note:      p.Note,
			At:        time.Unix(0, p.At),
		}, true
	}, nil, opts)
}
