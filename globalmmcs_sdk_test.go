// Black-box tests of the public SDK: everything here goes through the
// globalmmcs package only, proving the facade is complete enough to
// build real integrations without reaching into internal packages.
package globalmmcs_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs"
)

// syncBuffer is a bytes.Buffer safe to poll from the test while a
// recorder goroutine writes to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) Read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Read(p)
}

func (s *syncBuffer) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Len()
}

func startNode(t *testing.T, opts ...globalmmcs.Option) *globalmmcs.Server {
	t.Helper()
	srv, err := globalmmcs.Start(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	return srv
}

func newClient(t *testing.T, srv *globalmmcs.Server, user string) *globalmmcs.Client {
	t.Helper()
	c, err := srv.Client(context.Background(), user)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestPublicLifecycle drives the full start → client → session → chat →
// media → stop flow through the public API.
func TestPublicLifecycle(t *testing.T) {
	ctx := context.Background()
	srv := startNode(t)

	alice := newClient(t, srv, "alice")
	bob := newClient(t, srv, "bob")

	session, err := alice.CreateSession(ctx, "standup")
	if err != nil {
		t.Fatal(err)
	}
	if session.Name() != "standup" {
		t.Fatalf("name = %q", session.Name())
	}
	if err := session.Join(ctx, "alice-desktop"); err != nil {
		t.Fatal(err)
	}
	bobSession, err := bob.Join(ctx, session.ID(), "bob-laptop")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(bobSession.Participants()); got != 2 {
		t.Fatalf("participants = %d, want 2", got)
	}

	// Chat both ways.
	room, err := bobSession.Chat(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer room.Close()
	if err := session.Send(ctx, "hello bob"); err != nil {
		t.Fatal(err)
	}
	msgCtx, cancelMsg := context.WithTimeout(ctx, 5*time.Second)
	msg, err := room.Recv(msgCtx)
	cancelMsg()
	if err != nil {
		t.Fatalf("chat never arrived: %v", err)
	}
	if msg.From != "alice" || msg.Body != "hello bob" || msg.SessionID != session.ID() {
		t.Fatalf("msg = %+v", msg)
	}
	if msg.At.IsZero() {
		t.Fatal("msg.At is zero")
	}

	// The server-side IM service recorded the room history.
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.ChatHistory(session.ID(), 10)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("chat history never recorded")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Media: alice sends audio, bob receives and measures.
	sub, err := bobSession.Subscribe(ctx, globalmmcs.Audio, globalmmcs.WithBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	sender, err := session.Sender(globalmmcs.Audio)
	if err != nil {
		t.Fatal(err)
	}
	src := globalmmcs.NewAudioSource(globalmmcs.AudioConfig{FrameMillis: 5})
	sent, err := sender.SendAudio(ctx, src, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sent != 10 {
		t.Fatalf("sent = %d", sent)
	}
	recv := globalmmcs.NewMediaReceiver(globalmmcs.Audio)
	got := 0
	mediaCtx, cancelMedia := context.WithTimeout(ctx, 5*time.Second)
	for got < 10 {
		p, err := sub.Recv(mediaCtx)
		if err != nil {
			t.Fatalf("received %d/10 packets: %v", got, err)
		}
		recv.Handle(p)
		rtp, err := p.RTP()
		if err != nil {
			t.Fatal(err)
		}
		if rtp.SSRC == 0 {
			t.Fatal("rtp ssrc missing")
		}
		got++
	}
	cancelMedia()
	if stats := recv.Stats(); stats.Received != 10 || stats.Lost != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}

	// Presence round trip.
	watch, err := bob.WatchPresence(ctx, "global")
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Close()
	if err := alice.SetPresence(ctx, "global", globalmmcs.StatusBusy, "in standup"); err != nil {
		t.Fatal(err)
	}
	presCtx, cancelPres := context.WithTimeout(ctx, 5*time.Second)
	p, err := watch.Recv(presCtx)
	cancelPres()
	if err != nil {
		t.Fatalf("presence never arrived: %v", err)
	}
	if p.User != "alice" || p.Status != globalmmcs.StatusBusy {
		t.Fatalf("presence = %+v", p)
	}

	// Server-side lookup sees the same session.
	details, ok := srv.SessionInfo(session.ID())
	if !ok || details.Name != "standup" || len(details.Media) == 0 {
		t.Fatalf("details = %+v, %v", details, ok)
	}

	// Leave and terminate.
	if err := bobSession.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	if err := session.Terminate(ctx, "done"); err != nil {
		t.Fatal(err)
	}
}

// TestSentinelErrors asserts each public sentinel is matchable with
// errors.Is from outside the module.
func TestSentinelErrors(t *testing.T) {
	ctx := context.Background()
	srv := startNode(t)
	alice := newClient(t, srv, "alice")
	bob := newClient(t, srv, "bob")

	// ErrSessionNotFound.
	if _, err := alice.Join(ctx, "no-such-session", "t"); !errors.Is(err, globalmmcs.ErrSessionNotFound) {
		t.Fatalf("join unknown: %v", err)
	}
	if _, err := alice.Session(ctx, "no-such-session"); !errors.Is(err, globalmmcs.ErrSessionNotFound) {
		t.Fatalf("lookup unknown: %v", err)
	}

	// ErrInvalidRequest: a session must have a name.
	if _, err := alice.CreateSession(ctx, ""); !errors.Is(err, globalmmcs.ErrInvalidRequest) {
		t.Fatalf("create unnamed: %v", err)
	}

	session, err := alice.CreateSession(ctx, "errors")
	if err != nil {
		t.Fatal(err)
	}
	if err := session.Join(ctx, "t1"); err != nil {
		t.Fatal(err)
	}
	bobSession, err := bob.Join(ctx, session.ID(), "t2")
	if err != nil {
		t.Fatal(err)
	}

	// ErrPermissionDenied: only the creator terminates.
	if err := bobSession.Terminate(ctx, "takeover"); !errors.Is(err, globalmmcs.ErrPermissionDenied) {
		t.Fatalf("foreign terminate: %v", err)
	}

	// ErrFloorBusy: alice holds the audio floor, bob is refused.
	if err := session.RequestFloor(ctx, globalmmcs.Audio); err != nil {
		t.Fatal(err)
	}
	if err := bobSession.RequestFloor(ctx, globalmmcs.Audio); !errors.Is(err, globalmmcs.ErrFloorBusy) {
		t.Fatalf("busy floor: %v", err)
	}

	// ErrConflict: releasing a floor bob does not hold.
	if err := bobSession.ReleaseFloor(ctx, globalmmcs.Audio); !errors.Is(err, globalmmcs.ErrConflict) {
		t.Fatalf("foreign release: %v", err)
	}

	// ErrNotParticipant: leaving twice — the session still exists, so
	// this must not read as ErrSessionNotFound.
	if err := bobSession.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	err = bobSession.Leave(ctx)
	if !errors.Is(err, globalmmcs.ErrNotParticipant) {
		t.Fatalf("double leave: %v", err)
	}
	if errors.Is(err, globalmmcs.ErrSessionNotFound) {
		t.Fatalf("double leave conflated with unknown session: %v", err)
	}

	// ErrNoSuchMedia: the default session carries no control media
	// channel.
	if _, err := session.Sender(globalmmcs.Control); !errors.Is(err, globalmmcs.ErrNoSuchMedia) {
		t.Fatalf("no-such-media: %v", err)
	}

	// ErrSessionNotActive: scheduled sessions refuse joins before start.
	scheduled, err := alice.CreateSession(ctx, "tomorrow",
		globalmmcs.WithSchedule(time.Now().Add(time.Hour), time.Now().Add(2*time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	if err := scheduled.Join(ctx, "t"); !errors.Is(err, globalmmcs.ErrSessionNotActive) {
		t.Fatalf("early join: %v", err)
	}

	// ErrTimeout: an expired deadline surfaces as both ErrTimeout and
	// context.DeadlineExceeded.
	expired, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	_, err = alice.Join(expired, session.ID(), "t")
	if !errors.Is(err, globalmmcs.ErrTimeout) {
		t.Fatalf("expired join not ErrTimeout: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired join lost DeadlineExceeded: %v", err)
	}

	// ErrNotConnected: operations on a closed client.
	carol := newClient(t, srv, "carol")
	if err := carol.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := carol.CreateSession(ctx, "ghost"); !errors.Is(err, globalmmcs.ErrNotConnected) {
		t.Fatalf("closed client: %v", err)
	}
}

// TestServerStopped asserts ErrServerStopped after Stop.
func TestServerStopped(t *testing.T) {
	ctx := context.Background()
	srv := startNode(t)
	srv.Stop()
	if _, err := srv.Client(ctx, "late"); !errors.Is(err, globalmmcs.ErrServerStopped) {
		t.Fatalf("client after stop: %v", err)
	}
}

// TestFunctionalOptions asserts the Without* options disable subsystems
// and the node still collaborates.
func TestFunctionalOptions(t *testing.T) {
	ctx := context.Background()
	srv := startNode(t,
		globalmmcs.WithoutSIP(),
		globalmmcs.WithoutH323(),
		globalmmcs.WithoutRTSP(),
		globalmmcs.WithDomain("test.local"),
	)
	if srv.SIPAddr() != "" || srv.GatekeeperAddr() != "" || srv.RTSPAddr() != "" {
		t.Fatal("disabled subsystem advertises an address")
	}
	if srv.StreamURL("s1") != "" {
		t.Fatal("stream URL without RTSP")
	}
	alice := newClient(t, srv, "alice")
	session, err := alice.CreateSession(ctx, "lean")
	if err != nil {
		t.Fatal(err)
	}
	if err := session.Join(ctx, "t"); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsOption asserts WithMetrics receives server counters.
func TestMetricsOption(t *testing.T) {
	m := globalmmcs.NewMetrics()
	srv := startNode(t, globalmmcs.WithMetrics(m))
	alice := newClient(t, srv, "alice")
	if _, err := alice.CreateSession(context.Background(), "counted"); err != nil {
		t.Fatal(err)
	}
	if m.Report() == "" {
		t.Fatal("metrics report empty")
	}
}

// TestArchiveRoundTrip records a burst of media and replays it into a
// second session — all through the public API.
func TestArchiveRoundTrip(t *testing.T) {
	ctx := context.Background()
	srv := startNode(t)
	alice := newClient(t, srv, "alice")

	session, err := alice.CreateSession(ctx, "lecture")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := session.Subscribe(ctx, globalmmcs.Audio, globalmmcs.WithBuffer(256))
	if err != nil {
		t.Fatal(err)
	}
	var buf syncBuffer
	var arch globalmmcs.Archive
	recCtx, stopRec := context.WithCancel(ctx)
	recorded := make(chan int, 1)
	go func() {
		n, _ := arch.Record(recCtx, &buf, sub)
		recorded <- n
	}()

	sender, err := session.Sender(globalmmcs.Audio)
	if err != nil {
		t.Fatal(err)
	}
	src := globalmmcs.NewAudioSource(globalmmcs.AudioConfig{FrameMillis: 5})
	if _, err := sender.SendAudio(ctx, src, 10); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for buf.Len() < 10*4 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	stopRec()
	if n := <-recorded; n != 10 {
		t.Fatalf("recorded %d/10", n)
	}

	replay, err := alice.CreateSession(ctx, "lecture-replay")
	if err != nil {
		t.Fatal(err)
	}
	replaySub, err := replay.Subscribe(ctx, globalmmcs.Audio, globalmmcs.WithBuffer(256))
	if err != nil {
		t.Fatal(err)
	}
	n, err := arch.Replay(ctx, &buf, replay, globalmmcs.Audio, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("replayed %d/10", n)
	}
	got := 0
	replayCtx, cancelReplay := context.WithTimeout(ctx, 5*time.Second)
	defer cancelReplay()
	for got < n {
		if _, err := replaySub.Recv(replayCtx); err != nil {
			t.Fatalf("late subscriber got %d/%d: %v", got, n, err)
		}
		got++
	}
}

// TestSessionEventsReplay drives the durable topic log through the
// public API: a node records a session's topics, a late joiner opens
// Events with WithReplayFromEarliest and sees the chat history it
// missed, then live traffic, exactly once across the handoff.
func TestSessionEventsReplay(t *testing.T) {
	ctx := context.Background()
	// Session IDs are assigned "s1", "s2", ... per node, so a fresh
	// node's first session lands on the recorded pattern.
	srv := startNode(t, globalmmcs.WithRecording(t.TempDir(), "/xgsp/session/s1/#"))
	alice := newClient(t, srv, "alice")

	session, err := alice.CreateSession(ctx, "recorded-standup")
	if err != nil {
		t.Fatal(err)
	}
	if session.ID() != "s1" {
		t.Fatalf("session ID = %q, want s1", session.ID())
	}
	if err := session.Join(ctx, "alice-desktop"); err != nil {
		t.Fatal(err)
	}

	// Alice chats before bob exists. Her own room confirms delivery —
	// events are recorded before they are delivered, so once the room
	// has a message the log has it too.
	room, err := session.Chat(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer room.Close()
	const history = 20
	for i := 0; i < history; i++ {
		if err := session.Send(ctx, fmt.Sprintf("msg-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	seenCtx, cancelSeen := context.WithTimeout(ctx, 5*time.Second)
	for i := 0; i < history; i++ {
		if _, err := room.Recv(seenCtx); err != nil {
			t.Fatalf("history message %d never arrived: %v", i, err)
		}
	}
	cancelSeen()

	// Bob joins late and replays from the earliest retained event.
	bob := newClient(t, srv, "bob")
	bobSession, err := bob.Join(ctx, session.ID(), "bob-laptop")
	if err != nil {
		t.Fatal(err)
	}
	events, err := bobSession.Events(ctx, globalmmcs.WithReplayFromEarliest())
	if err != nil {
		t.Fatal(err)
	}
	defer events.Close()

	recvChat := func(within time.Duration) (string, error) {
		recvCtx, cancel := context.WithTimeout(ctx, within)
		defer cancel()
		for {
			e, err := events.Recv(recvCtx)
			if err != nil {
				return "", err
			}
			if e.Kind == "chat" {
				return string(e.Payload), nil
			}
		}
	}
	var got []string
	for len(got) < history {
		body, err := recvChat(5 * time.Second)
		if err != nil {
			t.Fatalf("replayed %d/%d chat events: %v", len(got), history, err)
		}
		got = append(got, body)
	}
	select {
	case <-events.CaughtUp():
	case <-time.After(5 * time.Second):
		t.Fatal("replay never caught up to live")
	}
	if err := session.Send(ctx, "live-after-catchup"); err != nil {
		t.Fatal(err)
	}
	body, err := recvChat(5 * time.Second)
	if err != nil {
		t.Fatalf("live event after catch-up: %v", err)
	}
	got = append(got, body)

	// History arrived in order and exactly once, then the live event.
	for i := 0; i < history; i++ {
		if want := fmt.Sprintf("msg-%d", i); !strings.Contains(got[i], want) {
			t.Fatalf("event %d = %q, want %q", i, got[i], want)
		}
	}
	if !strings.Contains(got[history], "live-after-catchup") {
		t.Fatalf("post-catchup event = %q", got[history])
	}

	// A pattern the node does not record is refused.
	if _, err := bobSession.Subscribe(ctx, globalmmcs.Audio, globalmmcs.WithReplayFromEarliest()); err == nil {
		t.Fatal("replay on an unrecorded pattern must fail")
	}
}

// TestRunFanoutFacade exercises the public fan-out benchmark entry
// point at a trivial scale.
func TestRunFanoutFacade(t *testing.T) {
	res, err := globalmmcs.RunFanout(globalmmcs.FanoutOptions{
		Subscribers: 4,
		Publishers:  1,
		Events:      50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 || res.EventsPerSec <= 0 {
		t.Fatalf("empty fanout report: %+v", res)
	}
	if res.Mode != "client-server" || res.Transport != "tcp" {
		t.Fatalf("unexpected defaults: %+v", res)
	}
	if _, err := globalmmcs.RunFanout(globalmmcs.FanoutOptions{Transport: "bogus"}); err == nil {
		t.Fatal("bogus transport accepted")
	}
}

// TestBrokerBatchingOptions checks the new broker tuning surface: a
// server started with batching options comes up healthy, and a
// standalone broker accepts a full BrokerConfig.
func TestBrokerBatchingOptions(t *testing.T) {
	srv := startNode(t,
		globalmmcs.WithBrokerBatching(64<<10, 2*time.Millisecond),
		globalmmcs.WithBrokerRouteShards(4),
	)
	if err := srv.WaitReady(context.Background()); err != nil {
		t.Fatal(err)
	}
	b := globalmmcs.NewBrokerWithConfig("tuned", globalmmcs.BrokerClientServer, globalmmcs.BrokerConfig{
		QueueDepth:    64,
		RouteShards:   2,
		MaxBatchBytes: 32 << 10,
		FlushInterval: time.Millisecond,
	})
	defer b.Stop()
	if _, err := b.Listen("tcp://127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if b.Mode() != globalmmcs.BrokerClientServer {
		t.Fatalf("mode = %v", b.Mode())
	}
}
