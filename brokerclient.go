package globalmmcs

import (
	"context"
	"errors"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
)

// ConnState is a broker client's link state, observable via
// BrokerClient.ConnState and WithConnStateFunc.
type ConnState int

// Link states. A plain client only moves Connected → Closed; a
// reconnect-enabled one cycles Connected ↔ Reconnecting until closed.
const (
	StateConnected ConnState = iota + 1
	StateReconnecting
	StateClosed
)

// String implements fmt.Stringer.
func (s ConnState) String() string { return broker.ConnState(s).String() }

// BrokerClient is a remote pub/sub client of a standalone Broker — the
// facade over the raw messaging substrate for processes that talk to a
// broker network directly instead of through a Server session. With
// WithReconnect it survives broker restarts and network cuts: the link
// is redialed with backoff across the given URLs, subscriptions are
// resumed (reliable delivery picks up where the old conn died when the
// broker parks sessions, see BrokerConfig.SessionLinger), and replay
// subscriptions catch up from the durable topic log.
type BrokerClient struct {
	c *broker.Client
}

// BrokerClientOption tunes DialBroker.
type BrokerClientOption func(*brokerClientConfig)

type brokerClientConfig struct {
	reconnect bool
	pubBuffer int
	onState   func(ConnState)
}

// WithReconnect enables supervised auto-reconnect: on conn loss the
// client redials the URLs round-robin with exponential backoff and
// jitter, presents its resume token so a linger-enabled broker restores
// the session (subscriptions, reliable window, exactly-once delivery),
// and transparently re-subscribes when the broker refuses the resume.
// Without it a lost conn closes the client.
func WithReconnect() BrokerClientOption {
	return func(cfg *brokerClientConfig) { cfg.reconnect = true }
}

// WithPublishBuffer bounds how many best-effort publishes are buffered
// while a reconnect-enabled client is between conns, flushed in order
// once the link is back (default 256; negative disables buffering so
// publishes during an outage fail fast with ErrConnLost). Only
// meaningful together with WithReconnect.
func WithPublishBuffer(n int) BrokerClientOption {
	return func(cfg *brokerClientConfig) {
		if n <= 0 {
			n = -1
		}
		cfg.pubBuffer = n
	}
}

// WithConnStateFunc observes link-state transitions (Connected,
// Reconnecting, Closed). The callback runs on client-internal
// goroutines and must not block. Only meaningful together with
// WithReconnect.
func WithConnStateFunc(fn func(ConnState)) BrokerClientOption {
	return func(cfg *brokerClientConfig) { cfg.onState = fn }
}

// DialBroker connects to a broker network as the given client identity.
// Without WithReconnect only the first URL is dialed and the client
// dies with its conn; with it the URL list is the redial rotation.
func DialBroker(id string, urls []string, opts ...BrokerClientOption) (*BrokerClient, error) {
	if len(urls) == 0 {
		return nil, tag(ErrInvalidRequest, errors.New("globalmmcs: no broker URLs"))
	}
	var cfg brokerClientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if !cfg.reconnect {
		c, err := broker.Dial(urls[0], id)
		if err != nil {
			return nil, wrapErr(err)
		}
		return &BrokerClient{c: c}, nil
	}
	var onState func(broker.ConnState)
	if cfg.onState != nil {
		fn := cfg.onState
		onState = func(st broker.ConnState) { fn(ConnState(st)) }
	}
	c, err := broker.DialResilient(broker.ResilientConfig{
		URLs:          urls,
		ID:            id,
		PublishBuffer: cfg.pubBuffer,
		OnState:       onState,
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	return &BrokerClient{c: c}, nil
}

// ID returns the client identity.
func (bc *BrokerClient) ID() string { return bc.c.ID() }

// ConnState reports the current link state.
func (bc *BrokerClient) ConnState() ConnState { return ConnState(bc.c.ConnState()) }

// Publish sends a best-effort data event.
func (bc *BrokerClient) Publish(topic string, payload []byte) error {
	return wrapErr(bc.c.Publish(topic, event.KindData, payload))
}

// PublishReliable sends a data event on the reliable lane: the broker
// acknowledges it hop-by-hop and redelivers across a resume.
func (bc *BrokerClient) PublishReliable(topic string, payload []byte) error {
	return wrapErr(bc.c.PublishReliable(topic, event.KindData, payload))
}

// Subscribe registers a topic-pattern subscription with a bounded
// buffer. On a reconnect-enabled client it survives conn loss: events
// resume flowing once the link is back, with no gap in the reliable
// lane when the broker honoured the resume.
func (bc *BrokerClient) Subscribe(ctx context.Context, pattern string, depth int) (*BrokerSubscription, error) {
	sub, err := bc.c.SubscribeContext(ctx, pattern, depth)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &BrokerSubscription{sub: sub}, nil
}

// SubscribeReplay subscribes to a broker-recorded pattern starting from
// a durable log sequence (0 = the oldest retained record): history
// replays first, then the subscription hands off to live delivery. On a
// reconnect-enabled client the replay re-anchors after each reconnect
// at the last record seen, so catch-up is exactly-once even across
// broker restarts.
func (bc *BrokerClient) SubscribeReplay(ctx context.Context, pattern string, from uint64, depth int) (*BrokerSubscription, error) {
	sub, err := bc.c.SubscribeReplay(ctx, pattern, from, depth)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &BrokerSubscription{sub: sub}, nil
}

// Close tears the client down. On a reconnect-enabled client this also
// stops the redial supervisor. Idempotent.
func (bc *BrokerClient) Close() error { return wrapErr(bc.c.Close()) }

// BrokerSubscription is one pattern subscription's receive handle.
type BrokerSubscription struct {
	sub *broker.Subscription
}

// Pattern returns the subscribed topic pattern.
func (s *BrokerSubscription) Pattern() string { return s.sub.Pattern() }

// Drops reports best-effort events shed because the subscriber lagged.
func (s *BrokerSubscription) Drops() uint64 { return s.sub.Drops() }

// Recv blocks for the next event. It returns ErrStreamClosed once the
// subscription is cancelled or the client is closed, and the context
// error if ctx expires first.
func (s *BrokerSubscription) Recv(ctx context.Context) (Event, error) {
	select {
	case e, ok := <-s.sub.C():
		if !ok {
			return Event{}, tag(ErrStreamClosed, errors.New("globalmmcs: subscription closed"))
		}
		raw, _ := rawFromInternal(e)
		return raw, nil
	case <-ctx.Done():
		return Event{}, wrapErr(ctx.Err())
	}
}

// Cancel unsubscribes and closes the receive channel.
func (s *BrokerSubscription) Cancel() error { return wrapErr(s.sub.Cancel()) }
