// Package testutil holds shared test helpers.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// CheckGoroutines snapshots the goroutine count and registers a cleanup
// that fails the test if the count has not returned to (or below) the
// baseline within a grace window — the cheap whole-test leak detector
// for close paths, link churn and reconnect loops. Call it FIRST in the
// test (cleanups run LIFO, so resources registered after it are torn
// down before the check runs). Tests using it must not run in parallel
// with unrelated goroutine churn.
func CheckGoroutines(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d at start, %d after cleanup\n%s", base, n, stacks())
	})
}

// stacks dumps every goroutine's stack, trimmed to keep failures
// readable.
func stacks() string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	s := string(buf)
	if parts := strings.Split(s, "\n\n"); len(parts) > 40 {
		s = strings.Join(parts[:40], "\n\n") + fmt.Sprintf("\n\n... %d more goroutines", len(parts)-40)
	}
	return s
}
