// Package clock provides an injectable time source so that schedulers,
// expiry logic and tests can run against either the wall clock or a
// deterministic fake.
package clock

import (
	"sync"
	"time"
)

// Clock abstracts the subset of package time used across the system.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time after d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
}

// System is the wall-clock implementation backed by package time.
type System struct{}

var _ Clock = System{}

// Now implements Clock.
func (System) Now() time.Time { return time.Now() }

// After implements Clock.
func (System) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (System) Sleep(d time.Duration) { time.Sleep(d) }

// Fake is a manually advanced clock for deterministic tests. The zero value
// starts at the Unix epoch; use NewFake to pick a start time.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

var _ Clock = (*Fake)(nil)

// NewFake returns a Fake clock whose current time is start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After implements Clock. The returned channel fires when Advance moves the
// clock at or past the deadline.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	w := &fakeWaiter{deadline: f.now.Add(d), ch: ch}
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.waiters = append(f.waiters, w)
	return ch
}

// Sleep implements Clock. On a Fake clock Sleep returns only when another
// goroutine advances time past the deadline.
func (f *Fake) Sleep(d time.Duration) {
	<-f.After(d)
}

// Advance moves the clock forward by d and fires any waiters whose deadline
// has been reached.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	remaining := f.waiters[:0]
	var fired []*fakeWaiter
	for _, w := range f.waiters {
		if !w.deadline.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	f.waiters = remaining
	f.mu.Unlock()
	for _, w := range fired {
		w.ch <- now
	}
}
