package clock

import (
	"testing"
	"time"
)

func TestSystemNow(t *testing.T) {
	c := System{}
	before := time.Now().Add(-time.Second)
	if got := c.Now(); got.Before(before) {
		t.Fatalf("System.Now() = %v, too far in the past", got)
	}
}

func TestSystemAfterFires(t *testing.T) {
	c := System{}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("System.After never fired")
	}
}

func TestFakeAdvanceFiresWaiters(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	ch := f.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	f.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired too early")
	default:
	}
	f.Advance(time.Second)
	select {
	case got := <-ch:
		if want := start.Add(10 * time.Second); !got.Equal(want) {
			t.Fatalf("fired at %v, want %v", got, want)
		}
	case <-time.After(time.Second):
		t.Fatal("After never fired after Advance")
	}
}

func TestFakeAfterNonPositiveFiresImmediately(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestFakeSleepUnblocksOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		f.Sleep(5 * time.Second)
		close(done)
	}()
	// Give the sleeper a moment to register.
	time.Sleep(10 * time.Millisecond)
	f.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep never returned")
	}
}

func TestFakeMultipleWaiters(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	a := f.After(time.Second)
	b := f.After(3 * time.Second)
	f.Advance(2 * time.Second)
	select {
	case <-a:
	default:
		t.Fatal("first waiter not fired")
	}
	select {
	case <-b:
		t.Fatal("second waiter fired early")
	default:
	}
	f.Advance(time.Second)
	select {
	case <-b:
	default:
		t.Fatal("second waiter not fired")
	}
}

func TestFakeNowAdvances(t *testing.T) {
	f := NewFake(time.Unix(100, 0))
	f.Advance(time.Minute)
	if got, want := f.Now(), time.Unix(160, 0); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}
