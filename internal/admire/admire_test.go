package admire

import (
	"context"
	"net"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/transport"
	"github.com/globalmmcs/globalmmcs/internal/wsci"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

func TestConferenceLifecycle(t *testing.T) {
	s := NewServer()
	defer s.Stop()
	c, err := s.CreateConference("grid-lecture")
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == "" || c.Name != "grid-lecture" {
		t.Fatalf("conference = %+v", c)
	}
	if _, ok := s.Conference(c.ID); !ok {
		t.Fatal("lookup failed")
	}
	addr, err := s.RendezvousAddr(c.ID)
	if err != nil || addr == "" {
		t.Fatalf("rendezvous = %q, %v", addr, err)
	}
	if _, err := s.RendezvousAddr("nope"); err == nil {
		t.Fatal("phantom rendezvous")
	}
	m1, err := s.Join(c.ID, "wang")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Join(c.ID, "li")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Members(c.ID); !slices.Equal(got, []string{"li", "wang"}) {
		t.Fatalf("members = %v", got)
	}
	// Conference multicast works member-to-member.
	m1.Send([]byte("ni hao"))
	select {
	case got := <-m2.Recv():
		if string(got) != "ni hao" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(time.Second):
		t.Fatal("bus delivery failed")
	}
	if _, err := s.Join("nope", "x"); err == nil {
		t.Fatal("join of unknown conference")
	}
}

func TestRendezvousAgentBridgesUDP(t *testing.T) {
	s := NewServer()
	defer s.Stop()
	c, err := s.CreateConference("udp-bridge")
	if err != nil {
		t.Fatal(err)
	}
	member, err := s.Join(c.ID, "local")
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.RendezvousAddr(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	// Remote → conference.
	if _, err := remote.Write([]byte("from outside")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-member.Recv():
		if string(got) != "from outside" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("rendezvous → bus failed")
	}
	// Conference → remote (remote address was learned).
	member.Send([]byte("from inside"))
	buf := make([]byte, 1024)
	if err := remote.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	n, err := remote.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "from inside" {
		t.Fatalf("got %q", buf[:n])
	}
}

func TestWebService(t *testing.T) {
	s := NewServer()
	defer s.Stop()
	ts := httptest.NewServer(s.WebService())
	defer ts.Close()
	client := wsci.NewClient(ts.URL)

	var created CreateConferenceResponse
	if err := client.Call(&CreateConferenceRequest{Name: "soap-conf"}, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" {
		t.Fatal("no id")
	}
	var rend RendezvousResponse
	if err := client.Call(&RendezvousRequest{ID: created.ID}, &rend); err != nil {
		t.Fatal(err)
	}
	if rend.Addr == "" {
		t.Fatal("no rendezvous addr")
	}
	var join JoinResponse
	if err := client.Call(&JoinRequest{ID: created.ID, User: "zhang"}, &join); err != nil {
		t.Fatal(err)
	}
	if !join.OK {
		t.Fatal("join not ok")
	}
	var list ListResponse
	if err := client.Call(&ListRequest{}, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.IDs) != 1 || list.Names[0] != "soap-conf" {
		t.Fatalf("list = %+v", list)
	}
	// Unknown conference faults.
	var rend2 RendezvousResponse
	if err := client.Call(&RendezvousRequest{ID: "bogus"}, &rend2); err == nil {
		t.Fatal("phantom rendezvous over soap")
	}
}

func TestBridgeEndToEnd(t *testing.T) {
	// Full integration: Admire member ↔ bridge ↔ MMCS session topic.
	b := broker.New(broker.Config{ID: "admire-bridge-test"})
	t.Cleanup(b.Stop)
	xc, err := b.LocalClient("xgsp-server", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	xsrv := xgsp.NewServer(xc, xgsp.ServerConfig{})
	if err := xsrv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(xsrv.Stop)
	ownerBC, err := b.LocalClient("owner", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ownerBC.Close() })
	owner, err := xgsp.NewClient(context.Background(), ownerBC, "owner")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(owner.Close)
	info, err := owner.Create(context.Background(), xgsp.CreateSession{Name: "joint-seminar", Community: "admire"})
	if err != nil {
		t.Fatal(err)
	}

	adm := NewServer()
	t.Cleanup(adm.Stop)
	ts := httptest.NewServer(adm.WebService())
	t.Cleanup(ts.Close)
	ws := wsci.NewClient(ts.URL)
	var created CreateConferenceResponse
	if err := ws.Call(&CreateConferenceRequest{Name: "joint-seminar"}, &created); err != nil {
		t.Fatal(err)
	}

	bridgeBC, err := b.LocalClient("admire-bridge", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bridgeBC.Close() })
	bridge, err := NewBridge(bridgeBC, info, created.ID, ws)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bridge.Close)

	// Admire participant.
	admMember, err := adm.Join(created.ID, "beihang-user")
	if err != nil {
		t.Fatal(err)
	}
	// MMCS participant.
	mmcsBC, err := b.LocalClient("mmcs-user", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mmcsBC.Close() })
	audioTopic := xgsp.SessionTopic(info.ID, "audio")
	mmcsSub, err := mmcsBC.Subscribe(audioTopic, 64)
	if err != nil {
		t.Fatal(err)
	}

	// Direction 1: MMCS → Admire. The bridge must first learn nothing —
	// it sends to the rendezvous proactively, so this works immediately.
	src := media.NewAudioSource(media.AudioConfig{})
	pkt := src.NextPacket()
	raw, err := pkt.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := mmcsBC.Publish(audioTopic, event.KindRTP, raw); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-admMember.Recv():
		var p rtp.Packet
		if err := p.Unmarshal(got); err != nil {
			t.Fatal(err)
		}
		if p.SequenceNumber != pkt.SequenceNumber {
			t.Fatalf("seq = %d", p.SequenceNumber)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MMCS → Admire failed")
	}

	// Drain the loopback copy of our own publish (broker pub/sub
	// delivers to all subscribers, including the publisher's).
	select {
	case <-mmcsSub.C():
	case <-time.After(5 * time.Second):
		t.Fatal("loopback copy missing")
	}

	// Direction 2: Admire → MMCS.
	pkt2 := src.NextPacket()
	raw2, err := pkt2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	admMember.Send(raw2)
	select {
	case e := <-mmcsSub.C():
		var p rtp.Packet
		if err := p.Unmarshal(e.Payload); err != nil {
			t.Fatal(err)
		}
		if p.SequenceNumber != pkt2.SequenceNumber {
			t.Fatalf("seq = %d", p.SequenceNumber)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Admire → MMCS failed")
	}
}

func TestBridgeRequiresMedia(t *testing.T) {
	b := broker.New(broker.Config{ID: "no-media"})
	t.Cleanup(b.Stop)
	bc, err := b.LocalClient("bc", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	adm := NewServer()
	t.Cleanup(adm.Stop)
	ts := httptest.NewServer(adm.WebService())
	t.Cleanup(ts.Close)
	conf, err := adm.CreateConference("x")
	if err != nil {
		t.Fatal(err)
	}
	info := &xgsp.SessionInfo{ID: "s1"} // no media
	if _, err := NewBridge(bc, info, conf.ID, wsci.NewClient(ts.URL)); err == nil {
		t.Fatal("bridge without media accepted")
	}
}

func TestServerStoppedRejectsCreate(t *testing.T) {
	s := NewServer()
	s.Stop()
	if _, err := s.CreateConference("late"); err == nil {
		t.Fatal("create after stop")
	}
}
