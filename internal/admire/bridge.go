package admire

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/wsci"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// Bridge connects one Global-MMCS session to one Admire conference: it
// asks the Admire web service for the rendezvous point, then runs an RTP
// agent that relays session topics ↔ rendezvous UDP. Inbound packets are
// classified onto the audio or video topic by RTP payload type.
type Bridge struct {
	bc        *broker.Client
	pc        net.PacketConn
	rendAddr  *net.UDPAddr
	audioTop  string
	videoTop  string
	sessionID string
	confID    string

	probeAck  chan struct{}
	probeOnce sync.Once

	wg   sync.WaitGroup
	done chan struct{}
	once sync.Once
}

// NewBridge wires session (via its SessionInfo) to the Admire conference
// confID served at the community's WSDL-CI endpoint.
func NewBridge(bc *broker.Client, session *xgsp.SessionInfo, confID string, admireWS *wsci.Client) (*Bridge, error) {
	var rend RendezvousResponse
	if err := admireWS.Call(&RendezvousRequest{ID: confID}, &rend); err != nil {
		return nil, fmt.Errorf("admire: getting rendezvous: %w", err)
	}
	ua, err := net.ResolveUDPAddr("udp", rend.Addr)
	if err != nil {
		return nil, fmt.Errorf("admire: resolving rendezvous %q: %w", rend.Addr, err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("admire: binding bridge agent: %w", err)
	}
	b := &Bridge{
		bc:        bc,
		pc:        pc,
		rendAddr:  ua,
		sessionID: session.ID,
		confID:    confID,
		probeAck:  make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, m := range session.Media {
		switch m.Type {
		case xgsp.MediaAudio:
			b.audioTop = m.Topic
		case xgsp.MediaVideo:
			b.videoTop = m.Topic
		}
	}
	if b.audioTop == "" && b.videoTop == "" {
		pc.Close()
		return nil, fmt.Errorf("admire: session %s has no media to bridge", session.ID)
	}
	for _, topic := range []string{b.audioTop, b.videoTop} {
		if topic == "" {
			continue
		}
		sub, err := bc.Subscribe(topic, 512)
		if err != nil {
			pc.Close()
			return nil, fmt.Errorf("admire: subscribing %s: %w", topic, err)
		}
		b.wg.Add(1)
		go func(sub *broker.Subscription) {
			defer b.wg.Done()
			b.toAdmire(sub)
		}(sub)
	}
	b.wg.Add(1)
	go b.fromAdmire()
	// Hole-punch: announce our address to the rendezvous agent and wait
	// for its acknowledgement so Admire → MMCS traffic cannot race the
	// registration.
	if err := b.probeRendezvous(); err != nil {
		b.Close()
		return nil, err
	}
	return b, nil
}

// probeRendezvous retries the registration probe until acknowledged.
func (b *Bridge) probeRendezvous() error {
	for range 20 {
		if _, err := b.pc.WriteTo(probeMagic, b.rendAddr); err != nil {
			return fmt.Errorf("admire: probing rendezvous: %w", err)
		}
		select {
		case <-b.probeAck:
			return nil
		case <-time.After(100 * time.Millisecond):
		}
	}
	return fmt.Errorf("admire: rendezvous %s never acknowledged probe", b.rendAddr)
}

// ConferenceID returns the bridged Admire conference.
func (b *Bridge) ConferenceID() string { return b.confID }

// SessionID returns the bridged Global-MMCS session.
func (b *Bridge) SessionID() string { return b.sessionID }

// Close stops the bridge.
func (b *Bridge) Close() {
	b.once.Do(func() { close(b.done) })
	b.pc.Close()
	b.wg.Wait()
}

// toAdmire forwards session media to the rendezvous as raw RTP.
func (b *Bridge) toAdmire(sub *broker.Subscription) {
	for {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return
			}
			if e.Kind != event.KindRTP || e.Source == b.bc.ID() {
				continue
			}
			if _, err := b.pc.WriteTo(e.Payload, b.rendAddr); err != nil {
				continue
			}
		case <-b.done:
			return
		}
	}
}

// fromAdmire publishes rendezvous traffic onto the session topics,
// splitting audio from video by payload type.
func (b *Bridge) fromAdmire() {
	defer b.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, _, err := b.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		if n == len(probeMagic) && string(buf[:n]) == string(probeMagic) {
			b.probeOnce.Do(func() { close(b.probeAck) })
			continue
		}
		var pkt rtp.Packet
		if err := pkt.Unmarshal(buf[:n]); err != nil {
			continue
		}
		topic := b.videoTop
		if pkt.PayloadType == rtp.PayloadPCMU {
			topic = b.audioTop
		}
		if topic == "" {
			continue
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		if err := b.bc.PublishEvent(event.New(topic, event.KindRTP, payload)); err != nil {
			return
		}
	}
}
