// Package admire simulates the Admire videoconferencing system of
// Beihang University's NLSDE lab (§3.1) at its Global-MMCS integration
// surface: a community server managing conferences over emulated
// multicast, exposing WSDL-CI web-service operations (create/join/list
// conference, get rendezvous point), and a rendezvous RTP agent that
// Global-MMCS exchanges media with, exactly as §3.2 describes: "XGSP Web
// Server invokes the web-services of Admire to notify the address of the
// rendezvous point ... after that, both sides will create RTP agents on
// this rendezvous."
package admire

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/globalmmcs/globalmmcs/internal/mcast"
	"github.com/globalmmcs/globalmmcs/internal/wsci"
)

// Conference is one Admire conference.
type Conference struct {
	ID      string
	Name    string
	bus     *mcast.Bus
	agent   *rendezvousAgent
	members map[string]struct{}
}

// Bus exposes the conference's multicast group (diagnostics and tests).
func (c *Conference) Bus() *mcast.Bus { return c.bus }

// Server is the Admire community server.
type Server struct {
	mu          sync.Mutex
	conferences map[string]*Conference
	nextID      uint64
	closed      bool
}

// NewServer creates an empty Admire community.
func NewServer() *Server {
	return &Server{conferences: make(map[string]*Conference)}
}

// Stop tears down all conferences.
func (s *Server) Stop() {
	s.mu.Lock()
	confs := make([]*Conference, 0, len(s.conferences))
	for _, c := range s.conferences {
		confs = append(confs, c)
	}
	clear(s.conferences)
	s.closed = true
	s.mu.Unlock()
	for _, c := range confs {
		if c.agent != nil {
			c.agent.close()
		}
		c.bus.Close()
	}
}

// CreateConference starts a conference with an emulated multicast group
// and a rendezvous agent bridging that group to UDP.
func (s *Server) CreateConference(name string) (*Conference, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("admire: server stopped")
	}
	s.nextID++
	c := &Conference{
		ID:      fmt.Sprintf("adm-%d", s.nextID),
		Name:    name,
		bus:     mcast.NewBus(),
		members: make(map[string]struct{}),
	}
	agent, err := newRendezvousAgent(c.bus)
	if err != nil {
		return nil, err
	}
	c.agent = agent
	s.conferences[c.ID] = c
	return c, nil
}

// Conference looks up a conference.
func (s *Server) Conference(id string) (*Conference, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.conferences[id]
	return c, ok
}

// Join registers a user and returns their multicast membership.
func (s *Server) Join(confID, user string) (*mcast.Member, error) {
	s.mu.Lock()
	c, ok := s.conferences[confID]
	if ok {
		c.members[user] = struct{}{}
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("admire: no conference %s", confID)
	}
	return c.bus.Join(0)
}

// RendezvousAddr returns the conference's rendezvous UDP address.
func (s *Server) RendezvousAddr(confID string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.conferences[confID]
	if !ok {
		return "", fmt.Errorf("admire: no conference %s", confID)
	}
	return c.agent.addr(), nil
}

// Members lists a conference's registered users.
func (s *Server) Members(confID string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.conferences[confID]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(c.members))
	for u := range c.members {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// rendezvousAgent bridges the conference multicast group to a UDP
// socket: datagrams arriving from the (single) remote peer go onto the
// bus, and bus traffic goes back to that peer.
type rendezvousAgent struct {
	pc     net.PacketConn
	member *mcast.Member
	remote atomic.Pointer[net.UDPAddr]
	wg     sync.WaitGroup
	once   sync.Once
}

func newRendezvousAgent(bus *mcast.Bus) (*rendezvousAgent, error) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("admire: binding rendezvous: %w", err)
	}
	member, err := bus.Join(512)
	if err != nil {
		pc.Close()
		return nil, err
	}
	a := &rendezvousAgent{pc: pc, member: member}
	a.wg.Add(2)
	go a.inbound()
	go a.outbound()
	return a, nil
}

func (a *rendezvousAgent) addr() string { return a.pc.LocalAddr().String() }

// probeMagic is the rendezvous hole-punch datagram: the remote RTP agent
// announces its address without injecting anything into the conference.
var probeMagic = []byte("ADMIRE-RENDEZVOUS-PROBE")

func (a *rendezvousAgent) inbound() {
	defer a.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, raddr, err := a.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		if a.remote.Load() == nil {
			if ua, ok := raddr.(*net.UDPAddr); ok {
				a.remote.Store(ua)
			}
		}
		if n == len(probeMagic) && string(buf[:n]) == string(probeMagic) {
			// Address registration: acknowledge so the remote agent
			// knows the path is open before it relies on it.
			_, _ = a.pc.WriteTo(probeMagic, raddr)
			continue
		}
		data := make([]byte, n)
		copy(data, buf[:n])
		a.member.Send(data)
	}
}

func (a *rendezvousAgent) outbound() {
	defer a.wg.Done()
	for data := range a.member.Recv() {
		remote := a.remote.Load()
		if remote == nil {
			continue
		}
		if _, err := a.pc.WriteTo(data, remote); err != nil {
			continue
		}
	}
}

func (a *rendezvousAgent) close() {
	a.once.Do(func() {
		a.pc.Close()
		a.member.Leave()
	})
	a.wg.Wait()
}

// --- WSDL-CI web service -------------------------------------------------

// SOAP operation payloads.
type (
	// CreateConferenceRequest asks Admire to start a conference.
	CreateConferenceRequest struct {
		XMLName xml.Name `xml:"AdmireCreateConference"`
		Name    string   `xml:"name"`
	}
	// CreateConferenceResponse returns the new conference id.
	CreateConferenceResponse struct {
		XMLName xml.Name `xml:"AdmireCreateConferenceResponse"`
		ID      string   `xml:"id"`
	}
	// RendezvousRequest asks for a conference's rendezvous point.
	RendezvousRequest struct {
		XMLName xml.Name `xml:"AdmireGetRendezvous"`
		ID      string   `xml:"id"`
	}
	// RendezvousResponse carries the rendezvous UDP address.
	RendezvousResponse struct {
		XMLName xml.Name `xml:"AdmireGetRendezvousResponse"`
		Addr    string   `xml:"addr"`
	}
	// JoinRequest registers a user in a conference.
	JoinRequest struct {
		XMLName xml.Name `xml:"AdmireJoin"`
		ID      string   `xml:"id"`
		User    string   `xml:"user"`
	}
	// JoinResponse acknowledges a join.
	JoinResponse struct {
		XMLName xml.Name `xml:"AdmireJoinResponse"`
		OK      bool     `xml:"ok"`
	}
	// ListRequest asks for all conferences.
	ListRequest struct {
		XMLName xml.Name `xml:"AdmireList"`
	}
	// ListResponse returns conference ids and names.
	ListResponse struct {
		XMLName xml.Name `xml:"AdmireListResponse"`
		IDs     []string `xml:"conference>id"`
		Names   []string `xml:"conference>name"`
	}
)

// WebService wraps the server in a WSDL-CI service exposing Admire's
// collaboration interface.
func (s *Server) WebService() *wsci.Service {
	svc := wsci.NewService("AdmireCollaboration")
	svc.Register(wsci.Operation{
		Name: "AdmireCreateConference", Doc: "create an Admire conference",
		Input: "AdmireCreateConference", Output: "AdmireCreateConferenceResponse",
	}, func(ctx context.Context, action []byte) (any, error) {
		var req CreateConferenceRequest
		if err := xml.Unmarshal(action, &req); err != nil {
			return nil, err
		}
		c, err := s.CreateConference(req.Name)
		if err != nil {
			return nil, err
		}
		return &CreateConferenceResponse{ID: c.ID}, nil
	})
	svc.Register(wsci.Operation{
		Name: "AdmireGetRendezvous", Doc: "rendezvous point of a conference",
		Input: "AdmireGetRendezvous", Output: "AdmireGetRendezvousResponse",
	}, func(ctx context.Context, action []byte) (any, error) {
		var req RendezvousRequest
		if err := xml.Unmarshal(action, &req); err != nil {
			return nil, err
		}
		addr, err := s.RendezvousAddr(req.ID)
		if err != nil {
			return nil, err
		}
		return &RendezvousResponse{Addr: addr}, nil
	})
	svc.Register(wsci.Operation{
		Name: "AdmireJoin", Doc: "register a user in a conference",
		Input: "AdmireJoin", Output: "AdmireJoinResponse",
	}, func(ctx context.Context, action []byte) (any, error) {
		var req JoinRequest
		if err := xml.Unmarshal(action, &req); err != nil {
			return nil, err
		}
		s.mu.Lock()
		c, ok := s.conferences[req.ID]
		if ok {
			c.members[req.User] = struct{}{}
		}
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("admire: no conference %s", req.ID)
		}
		return &JoinResponse{OK: true}, nil
	})
	svc.Register(wsci.Operation{
		Name: "AdmireList", Doc: "list conferences",
		Input: "AdmireList", Output: "AdmireListResponse",
	}, func(ctx context.Context, action []byte) (any, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		resp := &ListResponse{}
		ids := make([]string, 0, len(s.conferences))
		for id := range s.conferences {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			resp.IDs = append(resp.IDs, id)
			resp.Names = append(resp.Names, s.conferences[id].Name)
		}
		return resp, nil
	})
	return svc
}
