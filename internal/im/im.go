// Package im implements the instant-messaging and presence services of
// Global-MMCS: per-session chat rooms carried on the broker's chat
// topics (with server-kept history), and a presence service on
// /presence/<community>/<user> topics — the ad-hoc collaboration support
// the paper's Jabber servers and SIP proxies provide.
package im

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// ChatMessage is one room message, carried as XML in KindChat events.
type ChatMessage struct {
	XMLName xml.Name `xml:"chat"`
	// From is the sending user.
	From string `xml:"from,attr"`
	// Session is the room's session id.
	Session string `xml:"session,attr"`
	// At is the send time in nanoseconds since the Unix epoch.
	At int64 `xml:"at,attr"`
	// Body is the message text.
	Body string `xml:",chardata"`
}

// PresenceStatus enumerates presence states.
type PresenceStatus string

// Presence states.
const (
	StatusOnline  PresenceStatus = "online"
	StatusAway    PresenceStatus = "away"
	StatusBusy    PresenceStatus = "busy"
	StatusOffline PresenceStatus = "offline"
)

// Presence is one presence update, carried as XML in KindPresence events.
type Presence struct {
	XMLName   xml.Name       `xml:"presence"`
	User      string         `xml:"user,attr"`
	Community string         `xml:"community,attr"`
	Status    PresenceStatus `xml:"status,attr"`
	Note      string         `xml:",chardata"`
	At        int64          `xml:"at,attr"`
}

// PresenceTopic returns the topic carrying one user's presence.
func PresenceTopic(community, user string) string {
	return "/presence/" + community + "/" + user
}

// communityPresencePattern subscribes to every user of a community.
func communityPresencePattern(community string) string {
	return "/presence/" + community + "/*"
}

// chatTopic returns a session's chat topic.
func chatTopic(sessionID string) string {
	return xgsp.SessionTopic(sessionID, string(xgsp.MediaChat))
}

// ParseChat decodes a chat event payload.
func ParseChat(e *event.Event) (*ChatMessage, error) {
	if e.Kind != event.KindChat {
		return nil, fmt.Errorf("im: event kind %s is not chat", e.Kind)
	}
	var m ChatMessage
	if err := xml.Unmarshal(e.Payload, &m); err != nil {
		return nil, fmt.Errorf("im: parsing chat message: %w", err)
	}
	return &m, nil
}

// ParsePresence decodes a presence event payload.
func ParsePresence(e *event.Event) (*Presence, error) {
	if e.Kind != event.KindPresence {
		return nil, fmt.Errorf("im: event kind %s is not presence", e.Kind)
	}
	var p Presence
	if err := xml.Unmarshal(e.Payload, &p); err != nil {
		return nil, fmt.Errorf("im: parsing presence: %w", err)
	}
	return &p, nil
}

// ServiceConfig parameterises the IM service.
type ServiceConfig struct {
	// HistoryLimit bounds per-room history. Default 500.
	HistoryLimit int
	// Communities lists the communities whose presence the service
	// aggregates. Default ["global"].
	Communities []string
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = 500
	}
	if len(c.Communities) == 0 {
		c.Communities = []string{"global"}
	}
	return c
}

// Service is the IM server: it records chat history for every session
// room and tracks the latest presence of every user in its communities.
// It also implements the SIP server's ChatPublisher so SIP MESSAGEs land
// in rooms.
type Service struct {
	cfg ServiceConfig
	bc  *broker.Client

	mu       sync.Mutex
	rooms    map[string][]ChatMessage
	presence map[string]Presence // community/user → latest

	wg   sync.WaitGroup
	done chan struct{}
	once sync.Once
}

// NewService subscribes the service to all chat rooms and the configured
// communities' presence. ctx bounds the subscription handshakes.
func NewService(ctx context.Context, bc *broker.Client, cfg ServiceConfig) (*Service, error) {
	s := &Service{
		cfg:      cfg.withDefaults(),
		bc:       bc,
		rooms:    make(map[string][]ChatMessage),
		presence: make(map[string]Presence),
		done:     make(chan struct{}),
	}
	chatSub, err := bc.SubscribeContext(ctx, "/xgsp/session/*/chat", 1024)
	if err != nil {
		return nil, fmt.Errorf("im: subscribing chat rooms: %w", err)
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.consumeChat(chatSub)
	}()
	for _, community := range s.cfg.Communities {
		sub, err := bc.SubscribeContext(ctx, communityPresencePattern(community), 256)
		if err != nil {
			return nil, fmt.Errorf("im: subscribing presence for %s: %w", community, err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.consumePresence(sub)
		}()
	}
	return s, nil
}

// Stop halts the service's consumers. The broker client is the caller's.
func (s *Service) Stop() {
	s.once.Do(func() { close(s.done) })
	s.bc.Close()
	s.wg.Wait()
}

func (s *Service) consumeChat(sub *broker.Subscription) {
	for {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return
			}
			m, err := ParseChat(e)
			if err != nil {
				continue
			}
			s.record(*m)
		case <-s.done:
			return
		}
	}
}

func (s *Service) consumePresence(sub *broker.Subscription) {
	for {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return
			}
			p, err := ParsePresence(e)
			if err != nil {
				continue
			}
			s.mu.Lock()
			s.presence[p.Community+"/"+p.User] = *p
			s.mu.Unlock()
		case <-s.done:
			return
		}
	}
}

func (s *Service) record(m ChatMessage) {
	s.mu.Lock()
	defer s.mu.Unlock()
	msgs := append(s.rooms[m.Session], m)
	if len(msgs) > s.cfg.HistoryLimit {
		msgs = msgs[len(msgs)-s.cfg.HistoryLimit:]
	}
	s.rooms[m.Session] = msgs
}

// PublishChat posts a message into a session room on behalf of a user
// (implements the SIP gateway's ChatPublisher).
func (s *Service) PublishChat(sessionID, from, body string) error {
	return publishChat(s.bc, sessionID, from, body)
}

// History returns up to limit most recent messages of a room.
func (s *Service) History(sessionID string, limit int) []ChatMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	msgs := s.rooms[sessionID]
	if limit > 0 && len(msgs) > limit {
		msgs = msgs[len(msgs)-limit:]
	}
	out := make([]ChatMessage, len(msgs))
	copy(out, msgs)
	return out
}

// PresenceOf returns the latest presence of a user, defaulting to
// offline.
func (s *Service) PresenceOf(community, user string) Presence {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.presence[community+"/"+user]; ok {
		return p
	}
	return Presence{User: user, Community: community, Status: StatusOffline}
}

// Roster lists the known users of a community with their latest state.
func (s *Service) Roster(community string) []Presence {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Presence
	for _, p := range s.presence {
		if p.Community == community {
			out = append(out, p)
		}
	}
	sortPresences(out)
	return out
}

func sortPresences(ps []Presence) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].User < ps[j-1].User; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func publishChat(bc *broker.Client, sessionID, from, body string) error {
	if sessionID == "" || from == "" {
		return errors.New("im: session and sender required")
	}
	m := ChatMessage{From: from, Session: sessionID, At: time.Now().UnixNano(), Body: body}
	b, err := xml.Marshal(m)
	if err != nil {
		return fmt.Errorf("im: encoding chat: %w", err)
	}
	e := event.New(chatTopic(sessionID), event.KindChat, b)
	e.Reliable = true
	return bc.PublishEvent(e)
}

// Chatter is the client side of IM: join rooms, send messages, publish
// presence, watch rosters.
type Chatter struct {
	bc   *broker.Client
	user string
}

// NewChatter creates a chat client for user over a broker client.
func NewChatter(bc *broker.Client, user string) (*Chatter, error) {
	if user == "" {
		return nil, errors.New("im: user required")
	}
	return &Chatter{bc: bc, user: user}, nil
}

// JoinRoom subscribes to a session's chat room with a delivery buffer
// of depth events (default 256 when <= 0). ctx bounds the subscription
// handshake.
func (c *Chatter) JoinRoom(ctx context.Context, sessionID string, depth int) (*broker.Subscription, error) {
	if depth <= 0 {
		depth = 256
	}
	return c.bc.SubscribeContext(ctx, chatTopic(sessionID), depth)
}

// Send posts a message to a room.
func (c *Chatter) Send(sessionID, body string) error {
	return publishChat(c.bc, sessionID, c.user, body)
}

// SetPresence publishes the user's presence state.
func (c *Chatter) SetPresence(community string, status PresenceStatus, note string) error {
	p := Presence{User: c.user, Community: community, Status: status, Note: note, At: time.Now().UnixNano()}
	b, err := xml.Marshal(p)
	if err != nil {
		return fmt.Errorf("im: encoding presence: %w", err)
	}
	e := event.New(PresenceTopic(community, c.user), event.KindPresence, b)
	e.Reliable = true
	return c.bc.PublishEvent(e)
}

// WatchCommunity subscribes to all presence updates of a community with
// a delivery buffer of depth events (default 256 when <= 0).
func (c *Chatter) WatchCommunity(ctx context.Context, community string, depth int) (*broker.Subscription, error) {
	if depth <= 0 {
		depth = 256
	}
	return c.bc.SubscribeContext(ctx, communityPresencePattern(community), depth)
}
