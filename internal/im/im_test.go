package im

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

type imRig struct {
	b   *broker.Broker
	svc *Service
}

func newIMRig(t *testing.T) *imRig {
	t.Helper()
	b := broker.New(broker.Config{ID: "im-rig"})
	t.Cleanup(b.Stop)
	bc, err := b.LocalClient("im-service", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(context.Background(), bc, ServiceConfig{HistoryLimit: 5, Communities: []string{"global", "admire"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	return &imRig{b: b, svc: svc}
}

func (r *imRig) chatter(t *testing.T, user string) *Chatter {
	t.Helper()
	bc, err := r.b.LocalClient("im-"+user, transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	c, err := NewChatter(bc, user)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChatRoomDelivery(t *testing.T) {
	rig := newIMRig(t)
	alice := rig.chatter(t, "alice")
	bob := rig.chatter(t, "bob")
	room, err := bob.JoinRoom(context.Background(), "s1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Send("s1", "hello room"); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-room.C():
		m, err := ParseChat(e)
		if err != nil {
			t.Fatal(err)
		}
		if m.From != "alice" || m.Body != "hello room" || m.Session != "s1" {
			t.Fatalf("message = %+v", m)
		}
		if m.At == 0 {
			t.Fatal("timestamp missing")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never delivered")
	}
}

func TestRoomsAreIsolated(t *testing.T) {
	rig := newIMRig(t)
	alice := rig.chatter(t, "alice")
	bob := rig.chatter(t, "bob")
	room2, err := bob.JoinRoom(context.Background(), "s2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Send("s1", "for room one"); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-room2.C():
		t.Fatalf("cross-room delivery: %v", e)
	case <-time.After(200 * time.Millisecond):
	}
}

func TestServiceHistory(t *testing.T) {
	rig := newIMRig(t)
	alice := rig.chatter(t, "alice")
	for i := range 8 {
		if err := alice.Send("s9", "msg-"+string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	// History is capped at 5 (rig config); newest survive.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := rig.svc.History("s9", 0)
		if len(h) == 5 && h[4].Body == "msg-h" && h[0].Body == "msg-d" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history = %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Limited query.
	h := rig.svc.History("s9", 2)
	if len(h) != 2 || h[1].Body != "msg-h" {
		t.Fatalf("limited history = %+v", h)
	}
	if got := rig.svc.History("unknown", 10); len(got) != 0 {
		t.Fatalf("phantom history %v", got)
	}
}

func TestPublishChatFromService(t *testing.T) {
	rig := newIMRig(t)
	bob := rig.chatter(t, "bob")
	room, err := bob.JoinRoom(context.Background(), "s3", 0)
	if err != nil {
		t.Fatal(err)
	}
	// This is the path SIP MESSAGEs take (Service implements the SIP
	// gateway's ChatPublisher).
	if err := rig.svc.PublishChat("s3", "sip-user", "hi from sip"); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-room.C():
		m, err := ParseChat(e)
		if err != nil || m.From != "sip-user" {
			t.Fatalf("%+v, %v", m, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
	if err := rig.svc.PublishChat("", "x", "y"); err == nil {
		t.Fatal("empty session accepted")
	}
}

func TestPresenceTracking(t *testing.T) {
	rig := newIMRig(t)
	alice := rig.chatter(t, "alice")
	// Default: offline.
	if p := rig.svc.PresenceOf("admire", "alice"); p.Status != StatusOffline {
		t.Fatalf("initial presence = %+v", p)
	}
	if err := alice.SetPresence("admire", StatusOnline, "in the lab"); err != nil {
		t.Fatal(err)
	}
	waitPresence(t, rig.svc, "admire", "alice", StatusOnline)
	if err := alice.SetPresence("admire", StatusAway, ""); err != nil {
		t.Fatal(err)
	}
	waitPresence(t, rig.svc, "admire", "alice", StatusAway)
	// Roster sees alice.
	roster := rig.svc.Roster("admire")
	if len(roster) != 1 || roster[0].User != "alice" {
		t.Fatalf("roster = %+v", roster)
	}
	// Unwatched community stays empty.
	if got := rig.svc.Roster("elsewhere"); len(got) != 0 {
		t.Fatalf("phantom roster %v", got)
	}
}

func TestWatchCommunity(t *testing.T) {
	rig := newIMRig(t)
	alice := rig.chatter(t, "alice")
	bob := rig.chatter(t, "bob")
	watch, err := bob.WatchCommunity(context.Background(), "global", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.SetPresence("global", StatusBusy, "call"); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-watch.C():
		p, err := ParsePresence(e)
		if err != nil || p.User != "alice" || p.Status != StatusBusy {
			t.Fatalf("%+v, %v", p, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("presence never observed")
	}
}

func TestParseRejectsWrongKinds(t *testing.T) {
	if _, err := ParseChat(event.New("/x", event.KindPresence, nil)); err == nil {
		t.Error("chat parse of presence event")
	}
	if _, err := ParsePresence(event.New("/x", event.KindChat, nil)); err == nil {
		t.Error("presence parse of chat event")
	}
	if _, err := ParseChat(event.New("/x", event.KindChat, []byte("<<<"))); err == nil {
		t.Error("garbage chat accepted")
	}
	if _, err := ParsePresence(event.New("/x", event.KindPresence, []byte("<<<"))); err == nil {
		t.Error("garbage presence accepted")
	}
}

func TestNewChatterRequiresUser(t *testing.T) {
	if _, err := NewChatter(nil, ""); err == nil {
		t.Fatal("empty user accepted")
	}
}

func TestChatMessageXMLEscaping(t *testing.T) {
	rig := newIMRig(t)
	alice := rig.chatter(t, "alice")
	bob := rig.chatter(t, "bob")
	room, err := bob.JoinRoom(context.Background(), "s5", 0)
	if err != nil {
		t.Fatal(err)
	}
	const tricky = `<b>bold</b> & "quotes" <chat>`
	if err := alice.Send("s5", tricky); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-room.C():
		m, err := ParseChat(e)
		if err != nil {
			t.Fatal(err)
		}
		if m.Body != tricky {
			t.Fatalf("body = %q, want %q", m.Body, tricky)
		}
		if !strings.Contains(string(e.Payload), "&lt;b&gt;") {
			t.Fatal("markup not escaped on the wire")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

func waitPresence(t *testing.T, svc *Service, community, user string, want PresenceStatus) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if svc.PresenceOf(community, user).Status == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("presence never became %s", want)
}
