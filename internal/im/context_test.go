package im

import (
	"context"
	"errors"
	"testing"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// TestChatterHonorsCancelledContext asserts the subscribing operations
// fail fast under a cancelled context.
func TestChatterHonorsCancelledContext(t *testing.T) {
	b := broker.New(broker.Config{ID: "b"})
	defer b.Stop()
	bc, err := b.LocalClient("u1", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	c, err := NewChatter(bc, "u1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.JoinRoom(ctx, "s1", 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("join room = %v", err)
	}
	if _, err := c.WatchCommunity(ctx, "global", 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("watch community = %v", err)
	}
}

// TestServiceHonorsCancelledContext asserts NewService aborts under a
// cancelled context instead of starting half-subscribed.
func TestServiceHonorsCancelledContext(t *testing.T) {
	b := broker.New(broker.Config{ID: "b"})
	defer b.Stop()
	bc, err := b.LocalClient("svc", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewService(ctx, bc, ServiceConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("new service = %v", err)
	}
}
