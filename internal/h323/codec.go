// Package h323 implements the H.323 subset Global-MMCS gateways: RAS
// (gatekeeper discovery, registration, admission) over UDP, Q.931/H.225
// call signalling over TCP, and an H.245 subset (capability exchange,
// master/slave determination, logical channels) tunnelled in the call
// signalling connection, as H.323v2 fast-connect deployments did.
//
// Substitution note (DESIGN.md §7): real H.323 encodes messages with
// ASN.1 PER. This package uses a tag-length-value binary coding with the
// same message and field structure; the experiments never measure PER
// bit-efficiency, and gateways translate message *semantics*.
package h323

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType identifies an H.323 message.
type MsgType uint8

// RAS message types (H.225.0 §7).
const (
	MsgGRQ MsgType = iota + 1 // GatekeeperRequest
	MsgGCF                    // GatekeeperConfirm
	MsgGRJ                    // GatekeeperReject
	MsgRRQ                    // RegistrationRequest
	MsgRCF                    // RegistrationConfirm
	MsgRRJ                    // RegistrationReject
	MsgARQ                    // AdmissionRequest
	MsgACF                    // AdmissionConfirm
	MsgARJ                    // AdmissionReject
	MsgDRQ                    // DisengageRequest
	MsgDCF                    // DisengageConfirm

	// Q.931 / H.225 call signalling.
	MsgSetup
	MsgCallProceeding
	MsgAlerting
	MsgConnect
	MsgReleaseComplete

	// H.245 (tunnelled).
	MsgTerminalCapabilitySet
	MsgTerminalCapabilitySetAck
	MsgMasterSlaveDetermination
	MsgMasterSlaveDeterminationAck
	MsgOpenLogicalChannel
	MsgOpenLogicalChannelAck
	MsgCloseLogicalChannel
	MsgEndSessionCommand

	msgTypeMax
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	names := map[MsgType]string{
		MsgGRQ: "GRQ", MsgGCF: "GCF", MsgGRJ: "GRJ",
		MsgRRQ: "RRQ", MsgRCF: "RCF", MsgRRJ: "RRJ",
		MsgARQ: "ARQ", MsgACF: "ACF", MsgARJ: "ARJ",
		MsgDRQ: "DRQ", MsgDCF: "DCF",
		MsgSetup: "Setup", MsgCallProceeding: "CallProceeding",
		MsgAlerting: "Alerting", MsgConnect: "Connect",
		MsgReleaseComplete:             "ReleaseComplete",
		MsgTerminalCapabilitySet:       "TCS",
		MsgTerminalCapabilitySetAck:    "TCSAck",
		MsgMasterSlaveDetermination:    "MSD",
		MsgMasterSlaveDeterminationAck: "MSDAck",
		MsgOpenLogicalChannel:          "OLC",
		MsgOpenLogicalChannelAck:       "OLCAck",
		MsgCloseLogicalChannel:         "CLC",
		MsgEndSessionCommand:           "EndSession",
	}
	if n, ok := names[t]; ok {
		return n
	}
	return fmt.Sprintf("h323-msg(%d)", uint8(t))
}

// Valid reports whether t is a defined message type.
func (t MsgType) Valid() bool { return t >= MsgGRQ && t < msgTypeMax }

// Field tags.
const (
	tagEndpointID uint8 = iota + 1
	tagGatekeeperID
	tagAlias
	tagCallID
	tagConference
	tagDestAlias
	tagReason
	tagChannel
	tagMediaKind
	tagRTPAddr
	tagRTCPAddr
	tagCapability
	tagBandwidth
	tagSignalAddr
	tagMaster
)

// Message is the flat representation of any H.323 message in this
// subset; unset fields are omitted on the wire.
type Message struct {
	Type MsgType

	EndpointID   string
	GatekeeperID string
	// Alias is the endpoint's H.323 alias (user name).
	Alias string
	// CallID correlates signalling across RAS and Q.931.
	CallID string
	// Conference carries the XGSP session id in this deployment.
	Conference string
	// DestAlias is the called party (a session id for gateway calls).
	DestAlias string
	// Reason describes rejects and releases.
	Reason string
	// Channel is the H.245 logical channel number.
	Channel uint32
	// MediaKind is "audio" or "video" for logical channels.
	MediaKind string
	// RTPAddr / RTCPAddr carry media transport addresses.
	RTPAddr  string
	RTCPAddr string
	// Capabilities lists codec names in a TerminalCapabilitySet.
	Capabilities []string
	// Bandwidth is the requested bandwidth in units of 100 bit/s (ARQ).
	Bandwidth uint32
	// SignalAddr is a call-signalling TCP address (GCF/ACF).
	SignalAddr string
	// Master reports the master/slave determination outcome.
	Master bool
}

// Codec limits.
const (
	maxFieldLen = 1024
	maxWireLen  = 16 << 10
)

// Codec errors.
var (
	ErrTruncated = errors.New("h323: truncated message")
	ErrBadType   = errors.New("h323: invalid message type")
)

func appendField(dst []byte, tag uint8, val []byte) []byte {
	dst = append(dst, tag)
	dst = binary.AppendUvarint(dst, uint64(len(val)))
	return append(dst, val...)
}

func appendStringField(dst []byte, tag uint8, s string) []byte {
	if s == "" {
		return dst
	}
	return appendField(dst, tag, []byte(s))
}

func appendUint32Field(dst []byte, tag uint8, v uint32) []byte {
	if v == 0 {
		return dst
	}
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	return appendField(dst, tag, buf[:])
}

// Marshal encodes the message.
func (m *Message) Marshal() ([]byte, error) {
	if !m.Type.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrBadType, m.Type)
	}
	dst := []byte{byte(m.Type)}
	dst = appendStringField(dst, tagEndpointID, m.EndpointID)
	dst = appendStringField(dst, tagGatekeeperID, m.GatekeeperID)
	dst = appendStringField(dst, tagAlias, m.Alias)
	dst = appendStringField(dst, tagCallID, m.CallID)
	dst = appendStringField(dst, tagConference, m.Conference)
	dst = appendStringField(dst, tagDestAlias, m.DestAlias)
	dst = appendStringField(dst, tagReason, m.Reason)
	dst = appendUint32Field(dst, tagChannel, m.Channel)
	dst = appendStringField(dst, tagMediaKind, m.MediaKind)
	dst = appendStringField(dst, tagRTPAddr, m.RTPAddr)
	dst = appendStringField(dst, tagRTCPAddr, m.RTCPAddr)
	for _, c := range m.Capabilities {
		dst = appendStringField(dst, tagCapability, c)
	}
	dst = appendUint32Field(dst, tagBandwidth, m.Bandwidth)
	dst = appendStringField(dst, tagSignalAddr, m.SignalAddr)
	if m.Master {
		dst = appendField(dst, tagMaster, []byte{1})
	}
	if len(dst) > maxWireLen {
		return nil, fmt.Errorf("h323: message too large (%d bytes)", len(dst))
	}
	return dst, nil
}

// Unmarshal decodes a message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	if len(b) > maxWireLen {
		return nil, fmt.Errorf("h323: message too large (%d bytes)", len(b))
	}
	m := &Message{Type: MsgType(b[0])}
	if !m.Type.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrBadType, b[0])
	}
	b = b[1:]
	for len(b) > 0 {
		tag := b[0]
		b = b[1:]
		n, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, ErrTruncated
		}
		b = b[sz:]
		if n > maxFieldLen || uint64(len(b)) < n {
			return nil, ErrTruncated
		}
		val := b[:n]
		b = b[n:]
		switch tag {
		case tagEndpointID:
			m.EndpointID = string(val)
		case tagGatekeeperID:
			m.GatekeeperID = string(val)
		case tagAlias:
			m.Alias = string(val)
		case tagCallID:
			m.CallID = string(val)
		case tagConference:
			m.Conference = string(val)
		case tagDestAlias:
			m.DestAlias = string(val)
		case tagReason:
			m.Reason = string(val)
		case tagChannel:
			if len(val) == 4 {
				m.Channel = binary.BigEndian.Uint32(val)
			}
		case tagMediaKind:
			m.MediaKind = string(val)
		case tagRTPAddr:
			m.RTPAddr = string(val)
		case tagRTCPAddr:
			m.RTCPAddr = string(val)
		case tagCapability:
			if len(m.Capabilities) < 64 {
				m.Capabilities = append(m.Capabilities, string(val))
			}
		case tagBandwidth:
			if len(val) == 4 {
				m.Bandwidth = binary.BigEndian.Uint32(val)
			}
		case tagSignalAddr:
			m.SignalAddr = string(val)
		case tagMaster:
			m.Master = len(val) == 1 && val[0] == 1
		default:
			// Unknown fields are skipped for forward compatibility.
		}
	}
	return m, nil
}
