package h323

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/clock"
	"github.com/globalmmcs/globalmmcs/internal/directory"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
)

// maxRASDatagram bounds RAS datagrams.
const maxRASDatagram = 16 << 10

// registrationTTL is how long an endpoint registration lives without
// refresh.
const registrationTTL = time.Hour

// GatekeeperConfig parameterises the gatekeeper.
type GatekeeperConfig struct {
	// ListenAddr is the RAS UDP address (e.g. "127.0.0.1:0").
	ListenAddr string
	// ID is the gatekeeper identifier announced in GCF.
	ID string
	// SignalAddr is the call-signalling (gateway) TCP address handed out
	// in GCF/ACF.
	SignalAddr string
	// Directory, when set, records registered endpoints as the user's
	// active media terminal.
	Directory *directory.Store
	// Clock drives expiry; nil = system.
	Clock clock.Clock
	// Metrics receives counters; nil allocates a private registry.
	Metrics *metrics.Registry
}

func (c GatekeeperConfig) withDefaults() GatekeeperConfig {
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.ID == "" {
		c.ID = "gmmcs-gk"
	}
	if c.Clock == nil {
		c.Clock = clock.System{}
	}
	if c.Metrics == nil {
		c.Metrics = &metrics.Registry{}
	}
	return c
}

// registration is one registered endpoint.
type registration struct {
	endpointID string
	alias      string
	addr       net.Addr
	expires    time.Time
}

// admission is one granted call admission.
type admission struct {
	alias      string
	conference string
}

// Gatekeeper implements the H.225 RAS side of the paper's "H.323
// Gatekeeper": endpoint discovery, registration, admission control and
// disengage, creating the new H.323 administrative domain for individual
// endpoints.
type Gatekeeper struct {
	cfg GatekeeperConfig
	pc  net.PacketConn

	mu         sync.Mutex
	byAlias    map[string]*registration
	byID       map[string]*registration
	admissions map[string]*admission // callID → admission
	nextEPID   uint64

	wg   sync.WaitGroup
	done chan struct{}
	once sync.Once
}

// NewGatekeeper binds the RAS socket and starts serving.
func NewGatekeeper(cfg GatekeeperConfig) (*Gatekeeper, error) {
	cfg = cfg.withDefaults()
	if cfg.SignalAddr == "" {
		return nil, errors.New("h323: gatekeeper needs the gateway signal address")
	}
	pc, err := net.ListenPacket("udp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("h323: binding RAS socket: %w", err)
	}
	gk := &Gatekeeper{
		cfg:        cfg,
		pc:         pc,
		byAlias:    make(map[string]*registration),
		byID:       make(map[string]*registration),
		admissions: make(map[string]*admission),
		done:       make(chan struct{}),
	}
	gk.wg.Add(1)
	go gk.readLoop()
	return gk, nil
}

// Addr returns the RAS UDP address.
func (gk *Gatekeeper) Addr() string { return gk.pc.LocalAddr().String() }

// Stop closes the socket and waits.
func (gk *Gatekeeper) Stop() {
	gk.once.Do(func() { close(gk.done) })
	gk.pc.Close()
	gk.wg.Wait()
}

// Registered reports whether an alias is currently registered.
func (gk *Gatekeeper) Registered(alias string) bool {
	gk.mu.Lock()
	defer gk.mu.Unlock()
	r, ok := gk.byAlias[alias]
	return ok && r.expires.After(gk.cfg.Clock.Now())
}

// Admission looks up a granted admission by call id.
func (gk *Gatekeeper) Admission(callID string) (alias, conference string, ok bool) {
	gk.mu.Lock()
	defer gk.mu.Unlock()
	a, ok := gk.admissions[callID]
	if !ok {
		return "", "", false
	}
	return a.alias, a.conference, true
}

func (gk *Gatekeeper) readLoop() {
	defer gk.wg.Done()
	buf := make([]byte, maxRASDatagram)
	for {
		n, raddr, err := gk.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		msg, err := Unmarshal(buf[:n:n])
		if err != nil {
			gk.cfg.Metrics.Counter("h323.ras_malformed").Inc()
			continue
		}
		gk.cfg.Metrics.Counter("h323.ras_in").Inc()
		if resp := gk.handle(msg, raddr); resp != nil {
			if b, err := resp.Marshal(); err == nil {
				_, _ = gk.pc.WriteTo(b, raddr)
				gk.cfg.Metrics.Counter("h323.ras_out").Inc()
			}
		}
	}
}

func (gk *Gatekeeper) handle(msg *Message, raddr net.Addr) *Message {
	switch msg.Type {
	case MsgGRQ:
		return &Message{
			Type:         MsgGCF,
			GatekeeperID: gk.cfg.ID,
			SignalAddr:   gk.cfg.SignalAddr,
		}
	case MsgRRQ:
		if msg.Alias == "" {
			return &Message{Type: MsgRRJ, Reason: "alias required"}
		}
		gk.mu.Lock()
		defer gk.mu.Unlock()
		gk.nextEPID++
		r := &registration{
			endpointID: fmt.Sprintf("ep-%d", gk.nextEPID),
			alias:      msg.Alias,
			addr:       raddr,
			expires:    gk.cfg.Clock.Now().Add(registrationTTL),
		}
		gk.byAlias[msg.Alias] = r
		gk.byID[r.endpointID] = r
		gk.cfg.Metrics.Counter("h323.registrations").Inc()
		if dir := gk.cfg.Directory; dir != nil {
			if _, err := dir.User(msg.Alias); err != nil {
				_ = dir.AddUser(directory.User{
					ID: msg.Alias, Name: msg.Alias, Community: "h323",
					AudioCapable: true, VideoCapable: true,
				})
			}
			_ = dir.BindTerminal(directory.Terminal{
				ID:      "h323:" + msg.Alias,
				UserID:  msg.Alias,
				Kind:    directory.TerminalH323,
				Address: raddr.String(),
				Active:  true,
			})
		}
		return &Message{
			Type:         MsgRCF,
			GatekeeperID: gk.cfg.ID,
			EndpointID:   r.endpointID,
		}
	case MsgARQ:
		gk.mu.Lock()
		defer gk.mu.Unlock()
		r, ok := gk.byID[msg.EndpointID]
		if !ok || !r.expires.After(gk.cfg.Clock.Now()) {
			return &Message{Type: MsgARJ, Reason: "not registered"}
		}
		if msg.CallID == "" || msg.DestAlias == "" {
			return &Message{Type: MsgARJ, Reason: "callID and destination required"}
		}
		gk.admissions[msg.CallID] = &admission{alias: r.alias, conference: msg.DestAlias}
		gk.cfg.Metrics.Counter("h323.admissions").Inc()
		return &Message{
			Type:       MsgACF,
			CallID:     msg.CallID,
			SignalAddr: gk.cfg.SignalAddr,
			Bandwidth:  msg.Bandwidth,
		}
	case MsgDRQ:
		gk.mu.Lock()
		delete(gk.admissions, msg.CallID)
		gk.mu.Unlock()
		gk.cfg.Metrics.Counter("h323.disengages").Inc()
		return &Message{Type: MsgDCF, CallID: msg.CallID}
	default:
		gk.cfg.Metrics.Counter("h323.ras_unexpected").Inc()
		return nil
	}
}
