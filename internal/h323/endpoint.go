package h323

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// rasTimeout bounds each RAS transaction.
const rasTimeout = 5 * time.Second

// Endpoint is a minimal H.323 terminal for examples and tests: it
// discovers and registers with a gatekeeper, requests admission, places
// a call through the gateway, exchanges capabilities and opens logical
// channels.
type Endpoint struct {
	alias string

	ras        net.PacketConn
	rasAddr    *net.UDPAddr
	endpointID string
	signalAddr string

	nextCall atomic.Uint64
}

// NewEndpoint creates a terminal for alias, targeting the gatekeeper's
// RAS address.
func NewEndpoint(alias, gatekeeperAddr string) (*Endpoint, error) {
	ua, err := net.ResolveUDPAddr("udp", gatekeeperAddr)
	if err != nil {
		return nil, fmt.Errorf("h323: resolving gatekeeper: %w", err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("h323: binding RAS socket: %w", err)
	}
	return &Endpoint{alias: alias, ras: pc, rasAddr: ua}, nil
}

// Close releases the endpoint's RAS socket.
func (e *Endpoint) Close() { e.ras.Close() }

// Alias returns the endpoint alias.
func (e *Endpoint) Alias() string { return e.alias }

// rasTransact sends one RAS message and waits for the reply.
func (e *Endpoint) rasTransact(req *Message) (*Message, error) {
	b, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	if _, err := e.ras.WriteTo(b, e.rasAddr); err != nil {
		return nil, fmt.Errorf("h323: sending %s: %w", req.Type, err)
	}
	if err := e.ras.SetReadDeadline(time.Now().Add(rasTimeout)); err != nil {
		return nil, err
	}
	buf := make([]byte, maxRASDatagram)
	n, _, err := e.ras.ReadFrom(buf)
	if err != nil {
		return nil, fmt.Errorf("h323: waiting for %s reply: %w", req.Type, err)
	}
	return Unmarshal(buf[:n:n])
}

// Discover sends GRQ and records the gatekeeper's signalling address.
func (e *Endpoint) Discover() error {
	resp, err := e.rasTransact(&Message{Type: MsgGRQ, Alias: e.alias})
	if err != nil {
		return err
	}
	if resp.Type != MsgGCF {
		return fmt.Errorf("h323: discovery rejected: %s (%s)", resp.Type, resp.Reason)
	}
	e.signalAddr = resp.SignalAddr
	return nil
}

// Register sends RRQ and records the endpoint identifier.
func (e *Endpoint) Register() error {
	resp, err := e.rasTransact(&Message{Type: MsgRRQ, Alias: e.alias})
	if err != nil {
		return err
	}
	if resp.Type != MsgRCF {
		return fmt.Errorf("h323: registration rejected: %s (%s)", resp.Type, resp.Reason)
	}
	e.endpointID = resp.EndpointID
	return nil
}

// Call is an established H.323 call into a Global-MMCS session.
type Call struct {
	endpoint *Endpoint
	conn     net.Conn
	// ID is the call identifier used across RAS and signalling.
	ID string
	// Conference is the joined session id.
	Conference string
	// Channels maps logical channel number to the gateway's RTP address
	// for that channel (where the endpoint must send media).
	Channels map[uint32]string

	nextChannel uint32
}

// PlaceCall runs admission, call establishment and H.245 setup, opening
// one logical channel per requested media kind. localRTP maps media kind
// ("audio"/"video") to the endpoint's receive address for that media.
func (e *Endpoint) PlaceCall(sessionID string, localRTP map[string]string) (*Call, error) {
	if e.endpointID == "" {
		return nil, errors.New("h323: endpoint not registered")
	}
	if e.signalAddr == "" {
		return nil, errors.New("h323: no signalling address; run Discover first")
	}
	callID := fmt.Sprintf("%s-call-%d", e.alias, e.nextCall.Add(1))
	acf, err := e.rasTransact(&Message{
		Type:       MsgARQ,
		EndpointID: e.endpointID,
		CallID:     callID,
		DestAlias:  sessionID,
		Bandwidth:  6400, // 640 kbit/s in 100 bit/s units
	})
	if err != nil {
		return nil, err
	}
	if acf.Type != MsgACF {
		return nil, fmt.Errorf("h323: admission rejected: %s (%s)", acf.Type, acf.Reason)
	}
	signalAddr := acf.SignalAddr
	if signalAddr == "" {
		signalAddr = e.signalAddr
	}
	conn, err := net.DialTimeout("tcp", signalAddr, rasTimeout)
	if err != nil {
		return nil, fmt.Errorf("h323: dialling gateway: %w", err)
	}
	c := &Call{endpoint: e, conn: conn, ID: callID, Channels: make(map[uint32]string)}
	fail := func(err error) (*Call, error) {
		conn.Close()
		return nil, err
	}
	if err := writeFramed(conn, &Message{
		Type:       MsgSetup,
		CallID:     callID,
		Alias:      e.alias,
		Conference: sessionID,
	}); err != nil {
		return fail(err)
	}
	// Expect CallProceeding then Connect.
	for {
		msg, err := readFramed(conn)
		if err != nil {
			return fail(fmt.Errorf("h323: waiting for connect: %w", err))
		}
		switch msg.Type {
		case MsgCallProceeding, MsgAlerting:
			continue
		case MsgConnect:
			c.Conference = msg.Conference
		case MsgReleaseComplete:
			return fail(fmt.Errorf("h323: call released: %s", msg.Reason))
		default:
			return fail(fmt.Errorf("h323: unexpected %s during setup", msg.Type))
		}
		break
	}
	// H.245: capability exchange and master/slave determination.
	if err := writeFramed(conn, &Message{
		Type:         MsgTerminalCapabilitySet,
		Capabilities: []string{"PCMU", "H261"},
	}); err != nil {
		return fail(err)
	}
	if err := writeFramed(conn, &Message{Type: MsgMasterSlaveDetermination}); err != nil {
		return fail(err)
	}
	// Consume TCSAck, gateway TCS, MSDAck in any order.
	seen := 0
	for seen < 3 {
		msg, err := readFramed(conn)
		if err != nil {
			return fail(fmt.Errorf("h323: during h245 setup: %w", err))
		}
		switch msg.Type {
		case MsgTerminalCapabilitySetAck, MsgMasterSlaveDeterminationAck:
			seen++
		case MsgTerminalCapabilitySet:
			seen++
			if err := writeFramed(conn, &Message{Type: MsgTerminalCapabilitySetAck}); err != nil {
				return fail(err)
			}
		case MsgReleaseComplete:
			return fail(fmt.Errorf("h323: released during h245: %s", msg.Reason))
		}
	}
	// Open logical channels.
	for kind, addr := range localRTP {
		c.nextChannel++
		if err := writeFramed(conn, &Message{
			Type:      MsgOpenLogicalChannel,
			Channel:   c.nextChannel,
			MediaKind: kind,
			RTPAddr:   addr,
		}); err != nil {
			return fail(err)
		}
		ack, err := readFramed(conn)
		if err != nil {
			return fail(fmt.Errorf("h323: waiting for OLC ack: %w", err))
		}
		switch ack.Type {
		case MsgOpenLogicalChannelAck:
			c.Channels[ack.Channel] = ack.RTPAddr
		case MsgCloseLogicalChannel:
			return fail(fmt.Errorf("h323: channel refused: %s", ack.Reason))
		default:
			return fail(fmt.Errorf("h323: unexpected %s for OLC", ack.Type))
		}
	}
	return c, nil
}

// MediaAddr returns the gateway RTP address for the first channel of a
// media kind established during PlaceCall.
func (c *Call) MediaAddr(channel uint32) (string, bool) {
	addr, ok := c.Channels[channel]
	return addr, ok
}

// Hangup ends the call with H.245 EndSession and RAS disengage.
func (c *Call) Hangup() error {
	defer c.conn.Close()
	if err := writeFramed(c.conn, &Message{Type: MsgEndSessionCommand, CallID: c.ID}); err != nil {
		return err
	}
	// Wait for ReleaseComplete (best effort).
	_ = c.conn.SetReadDeadline(time.Now().Add(rasTimeout))
	for {
		msg, err := readFramed(c.conn)
		if err != nil {
			break
		}
		if msg.Type == MsgReleaseComplete {
			break
		}
	}
	_, err := c.endpoint.rasTransact(&Message{Type: MsgDRQ, CallID: c.ID})
	return err
}
