package h323

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// TestCodecPropertyRoundtrip verifies marshal→unmarshal is the identity
// for arbitrary field contents within wire limits.
func TestCodecPropertyRoundtrip(t *testing.T) {
	f := func(typ8 uint8, epID, gkID, alias, callID, conf, dest, reason string,
		channel uint32, kindSel bool, rtpAddr, sigAddr string, bw uint32, master bool) bool {
		clip := func(s string) string {
			if len(s) > 200 {
				s = s[:200]
			}
			return s
		}
		m := &Message{
			Type:         MsgType(typ8%uint8(msgTypeMax-1)) + 1,
			EndpointID:   clip(epID),
			GatekeeperID: clip(gkID),
			Alias:        clip(alias),
			CallID:       clip(callID),
			Conference:   clip(conf),
			DestAlias:    clip(dest),
			Reason:       clip(reason),
			Channel:      channel,
			RTPAddr:      clip(rtpAddr),
			SignalAddr:   clip(sigAddr),
			Bandwidth:    bw,
			Master:       master,
		}
		if kindSel {
			m.MediaKind = "audio"
		}
		b, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestCodecPropertyCapabilities checks the repeated-field path.
func TestCodecPropertyCapabilities(t *testing.T) {
	f := func(caps []string) bool {
		if len(caps) > 32 {
			caps = caps[:32]
		}
		clean := make([]string, 0, len(caps))
		for _, c := range caps {
			if len(c) > 0 && len(c) <= 64 {
				clean = append(clean, c)
			}
		}
		m := &Message{Type: MsgTerminalCapabilitySet, Capabilities: clean}
		if len(clean) == 0 {
			m.Capabilities = nil
		}
		b, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m.Capabilities, got.Capabilities)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCodecOversizedFieldRejected bounds decoder memory.
func TestCodecOversizedFieldRejected(t *testing.T) {
	m := &Message{Type: MsgRRQ, Alias: strings.Repeat("x", maxFieldLen+1)}
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err) // marshal allows it; decode must reject
	}
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("oversized field accepted by decoder")
	}
}
