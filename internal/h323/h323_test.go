package h323

import (
	"context"
	"math/rand/v2"
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/rtpproxy"
	"github.com/globalmmcs/globalmmcs/internal/transport"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

func TestCodecRoundtrip(t *testing.T) {
	m := &Message{
		Type:         MsgOpenLogicalChannelAck,
		EndpointID:   "ep-1",
		GatekeeperID: "gk",
		Alias:        "alice",
		CallID:       "c-7",
		Conference:   "s1",
		DestAlias:    "s1",
		Reason:       "",
		Channel:      3,
		MediaKind:    "audio",
		RTPAddr:      "127.0.0.1:4000",
		RTCPAddr:     "127.0.0.1:4001",
		Capabilities: []string{"PCMU", "H261"},
		Bandwidth:    6400,
		SignalAddr:   "127.0.0.1:1720",
		Master:       true,
	}
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("roundtrip:\n got %+v\nwant %+v", got, m)
	}
}

func TestCodecMinimal(t *testing.T) {
	m := &Message{Type: MsgGRQ}
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 1 {
		t.Fatalf("minimal GRQ = %d bytes", len(b))
	}
	got, err := Unmarshal(b)
	if err != nil || got.Type != MsgGRQ {
		t.Fatalf("%+v, %v", got, err)
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Unmarshal([]byte{0}); err == nil {
		t.Error("zero type accepted")
	}
	if _, err := Unmarshal([]byte{200}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := (&Message{Type: 0}).Marshal(); err == nil {
		t.Error("marshal of invalid type accepted")
	}
	// Truncated field.
	b, err := (&Message{Type: MsgRRQ, Alias: "alice"}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(b[:len(b)-2]); err == nil {
		t.Error("truncated field accepted")
	}
}

func TestCodecFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 23))
	for range 3000 {
		b := make([]byte, rng.IntN(128))
		for i := range b {
			b[i] = byte(rng.UintN(256))
		}
		_, _ = Unmarshal(b)
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgSetup.String() != "Setup" || MsgARQ.String() != "ARQ" {
		t.Error("names")
	}
	if MsgType(99).String() != "h323-msg(99)" {
		t.Error("unknown name")
	}
}

// h323Rig assembles broker + XGSP + gatekeeper + gateway.
type h323Rig struct {
	b    *broker.Broker
	xsrv *xgsp.Server
	gk   *Gatekeeper
	gw   *Gateway
}

func newH323Rig(t *testing.T) *h323Rig {
	t.Helper()
	b := broker.New(broker.Config{ID: "h323-rig"})
	t.Cleanup(b.Stop)

	xc, err := b.LocalClient("xgsp-server", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	xsrv := xgsp.NewServer(xc, xgsp.ServerConfig{})
	if err := xsrv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(xsrv.Stop)

	gwBC, err := b.LocalClient("h323-gateway", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gwBC.Close() })
	xcli, err := xgsp.NewClient(context.Background(), gwBC, "h323-gateway")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(xcli.Close)

	proxyBC, err := b.LocalClient("h323-rtpproxy", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxyBC.Close() })
	proxy := rtpproxy.New(proxyBC)
	t.Cleanup(proxy.Close)

	gw, err := NewGateway(GatewayConfig{XGSP: xcli, Proxy: proxy})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Stop)

	gk, err := NewGatekeeper(GatekeeperConfig{SignalAddr: gw.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gk.Stop)
	gw.cfg.Gatekeeper = gk
	return &h323Rig{b: b, xsrv: xsrv, gk: gk, gw: gw}
}

func (r *h323Rig) createSession(t *testing.T, name string) *xgsp.SessionInfo {
	t.Helper()
	bc, err := r.b.LocalClient("owner-"+name, transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	owner, err := xgsp.NewClient(context.Background(), bc, "owner-"+name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(owner.Close)
	info, err := owner.Create(context.Background(), xgsp.CreateSession{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestGatekeeperDiscoveryRegistrationAdmission(t *testing.T) {
	rig := newH323Rig(t)
	ep, err := NewEndpoint("alice", rig.gk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Discover(); err != nil {
		t.Fatal(err)
	}
	if ep.signalAddr != rig.gw.Addr() {
		t.Fatalf("signal addr = %q, want %q", ep.signalAddr, rig.gw.Addr())
	}
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}
	if !rig.gk.Registered("alice") {
		t.Fatal("alias not registered")
	}
	if ep.endpointID == "" {
		t.Fatal("no endpoint id assigned")
	}
}

func TestRegistrationRequiresAlias(t *testing.T) {
	rig := newH323Rig(t)
	ep, err := NewEndpoint("", rig.gk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Register(); err == nil {
		t.Fatal("empty alias registered")
	}
}

func TestAdmissionRequiresRegistration(t *testing.T) {
	rig := newH323Rig(t)
	ep, err := NewEndpoint("bob", rig.gk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Discover(); err != nil {
		t.Fatal(err)
	}
	// PlaceCall without Register must fail at ARQ.
	if _, err := ep.PlaceCall("s1", nil); err == nil {
		t.Fatal("call admitted without registration")
	}
}

func TestFullCallFlow(t *testing.T) {
	rig := newH323Rig(t)
	info := rig.createSession(t, "h323-conf")

	ep, err := NewEndpoint("alice", rig.gk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Discover(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}

	// The endpoint's media receive socket.
	audioSock, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer audioSock.Close()

	call, err := ep.PlaceCall(info.ID, map[string]string{"audio": audioSock.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if call.Conference != info.ID {
		t.Fatalf("conference = %q", call.Conference)
	}
	if len(call.Channels) != 1 {
		t.Fatalf("channels = %v", call.Channels)
	}

	// Session membership reflects the H.323 participant.
	got := rig.xsrv.Lookup(info.ID)
	if got == nil || len(got.Members) != 1 || got.Members[0] != "alice" {
		t.Fatalf("members = %+v", got)
	}

	// Media path: endpoint → gateway port → topic.
	obsBC, err := rig.b.LocalClient("obs", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer obsBC.Close()
	audioTopic := xgsp.SessionTopic(info.ID, "audio")
	obsSub, err := obsBC.Subscribe(audioTopic, 64)
	if err != nil {
		t.Fatal(err)
	}
	var gwAddr string
	for _, addr := range call.Channels {
		gwAddr = addr
	}
	ua, err := net.ResolveUDPAddr("udp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewAudioSource(media.AudioConfig{})
	pkt := src.NextPacket()
	raw, err := pkt.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := audioSock.WriteTo(raw, ua); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-obsSub.C():
		var p rtp.Packet
		if err := p.Unmarshal(e.Payload); err != nil {
			t.Fatal(err)
		}
		if p.SequenceNumber != pkt.SequenceNumber {
			t.Fatalf("seq = %d", p.SequenceNumber)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("endpoint RTP never reached topic")
	}

	// Topic → endpoint direction.
	if err := obsBC.Publish(audioTopic, 2 /* KindRTP */, raw); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	if err := audioSock.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := audioSock.ReadFrom(buf); err != nil {
		t.Fatalf("no RTP back to endpoint: %v", err)
	}

	// Hangup cleans everything.
	if err := call.Hangup(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		s := rig.xsrv.Lookup(info.ID)
		return s != nil && len(s.Members) == 0
	})
	waitFor(t, 5*time.Second, func() bool { return rig.gw.ActiveCalls() == 0 })
	if _, _, ok := rig.gk.Admission(call.ID); ok {
		t.Fatal("admission survived disengage")
	}
}

func TestCallToUnknownSessionReleased(t *testing.T) {
	rig := newH323Rig(t)
	ep, err := NewEndpoint("alice", rig.gk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Discover(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.PlaceCall("s404", nil); err == nil {
		t.Fatal("call to unknown session succeeded")
	}
}

func TestSetupWithoutAdmissionRejected(t *testing.T) {
	rig := newH323Rig(t)
	info := rig.createSession(t, "gate-check")
	// Dial the gateway directly with a Setup that the gatekeeper never
	// admitted.
	conn, err := net.Dial("tcp", rig.gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFramed(conn, &Message{
		Type:       MsgSetup,
		CallID:     "rogue-call",
		Alias:      "mallory",
		Conference: info.ID,
	}); err != nil {
		t.Fatal(err)
	}
	msg, err := readFramed(conn)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgReleaseComplete {
		t.Fatalf("got %s, want ReleaseComplete", msg.Type)
	}
}

func TestVideoChannel(t *testing.T) {
	rig := newH323Rig(t)
	info := rig.createSession(t, "video-conf")
	ep, err := NewEndpoint("vid", rig.gk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Discover(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Register(); err != nil {
		t.Fatal(err)
	}
	aSock, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer aSock.Close()
	vSock, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer vSock.Close()
	call, err := ep.PlaceCall(info.ID, map[string]string{
		"audio": aSock.LocalAddr().String(),
		"video": vSock.LocalAddr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(call.Channels) != 2 {
		t.Fatalf("channels = %v", call.Channels)
	}
	if err := call.Hangup(); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, within time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}
