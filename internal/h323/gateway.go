package h323

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/rtpproxy"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// GatewayConfig parameterises the H.323→XGSP gateway.
type GatewayConfig struct {
	// ListenAddr is the call-signalling TCP address.
	ListenAddr string
	// XGSP joins/leaves sessions on behalf of endpoints.
	XGSP *xgsp.Client
	// Proxy allocates RTP bindings for logical channels.
	Proxy *rtpproxy.Proxy
	// Gatekeeper validates admissions when set.
	Gatekeeper *Gatekeeper
	// Metrics receives counters; nil allocates a private registry.
	Metrics *metrics.Registry
}

// Gateway terminates H.225 call signalling and tunnelled H.245,
// translating calls into XGSP session membership and logical channels
// into RTP-proxy bindings on session topics — the paper's "H.323
// gateway ... redirect their RTP channels to the NaradaBrokering
// servers".
type Gateway struct {
	cfg GatewayConfig
	ln  net.Listener

	mu    sync.Mutex
	calls map[net.Conn]*gwCall

	wg   sync.WaitGroup
	done chan struct{}
	once sync.Once
}

// gwCall is per-connection call state.
type gwCall struct {
	callID    string
	alias     string
	session   *xgsp.SessionInfo
	joined    bool
	channels  map[uint32]*rtpproxy.Binding
	nextLocal uint32
}

// NewGateway binds the signalling listener and starts serving.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.XGSP == nil || cfg.Proxy == nil {
		return nil, errors.New("h323: gateway requires xgsp client and rtp proxy")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &metrics.Registry{}
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("h323: binding signalling listener: %w", err)
	}
	g := &Gateway{
		cfg:   cfg,
		ln:    ln,
		calls: make(map[net.Conn]*gwCall),
		done:  make(chan struct{}),
	}
	g.wg.Add(1)
	go g.acceptLoop()
	return g, nil
}

// Addr returns the signalling TCP address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// ActiveCalls returns the number of connected calls.
func (g *Gateway) ActiveCalls() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}

// Stop closes the listener and all calls.
func (g *Gateway) Stop() {
	g.once.Do(func() { close(g.done) })
	g.ln.Close()
	g.mu.Lock()
	conns := make([]net.Conn, 0, len(g.calls))
	for c := range g.calls {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	g.wg.Wait()
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.serveConn(conn)
		}()
	}
}

func (g *Gateway) serveConn(conn net.Conn) {
	call := &gwCall{channels: make(map[uint32]*rtpproxy.Binding)}
	g.mu.Lock()
	g.calls[conn] = call
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.calls, conn)
		g.mu.Unlock()
		g.teardown(call)
		conn.Close()
	}()
	for {
		msg, err := readFramed(conn)
		if err != nil {
			return
		}
		g.cfg.Metrics.Counter("h323.signalling_in").Inc()
		resp, final := g.handleCall(call, msg)
		for _, r := range resp {
			if err := writeFramed(conn, r); err != nil {
				return
			}
			g.cfg.Metrics.Counter("h323.signalling_out").Inc()
		}
		if final {
			return
		}
	}
}

// handleCall processes one signalling message, returning replies and
// whether the connection should close.
func (g *Gateway) handleCall(call *gwCall, msg *Message) (resp []*Message, final bool) {
	switch msg.Type {
	case MsgSetup:
		return g.handleSetup(call, msg)
	case MsgTerminalCapabilitySet:
		// Accept any capability set; echo ours.
		return []*Message{
			{Type: MsgTerminalCapabilitySetAck},
			{Type: MsgTerminalCapabilitySet, Capabilities: []string{"PCMU", "H261"}},
		}, false
	case MsgTerminalCapabilitySetAck:
		return nil, false
	case MsgMasterSlaveDetermination:
		// The gateway is always master (it owns the MCU side).
		return []*Message{{Type: MsgMasterSlaveDeterminationAck, Master: false}}, false
	case MsgOpenLogicalChannel:
		return g.handleOLC(call, msg)
	case MsgCloseLogicalChannel:
		g.closeChannel(call, msg.Channel)
		return nil, false
	case MsgEndSessionCommand:
		return []*Message{{Type: MsgReleaseComplete, CallID: call.callID}}, true
	case MsgReleaseComplete:
		return nil, true
	default:
		g.cfg.Metrics.Counter("h323.signalling_unexpected").Inc()
		return []*Message{{Type: MsgReleaseComplete, Reason: "unexpected " + msg.Type.String()}}, true
	}
}

func (g *Gateway) handleSetup(call *gwCall, msg *Message) ([]*Message, bool) {
	reject := func(reason string) ([]*Message, bool) {
		g.cfg.Metrics.Counter("h323.setup_rejected").Inc()
		return []*Message{{Type: MsgReleaseComplete, Reason: reason}}, true
	}
	if msg.CallID == "" || msg.Alias == "" {
		return reject("callID and alias required")
	}
	sessionID := msg.Conference
	if sessionID == "" {
		sessionID = msg.DestAlias
	}
	if sessionID == "" {
		return reject("no conference addressed")
	}
	// Admission control: the gatekeeper must have granted this call.
	if gk := g.cfg.Gatekeeper; gk != nil {
		alias, conf, ok := gk.Admission(msg.CallID)
		if !ok || alias != msg.Alias || conf != sessionID {
			return reject("no admission for call")
		}
	}
	info, err := g.cfg.XGSP.Lookup(context.Background(), sessionID)
	if err != nil || info == nil || !info.Active {
		return reject("no active session " + sessionID)
	}
	if _, err := g.cfg.XGSP.JoinAs(context.Background(), sessionID, msg.Alias, "h323:"+msg.Alias, "h323", nil); err != nil {
		return reject("join failed")
	}
	call.callID = msg.CallID
	call.alias = msg.Alias
	call.session = info
	call.joined = true
	g.cfg.Metrics.Counter("h323.calls_connected").Inc()
	return []*Message{
		{Type: MsgCallProceeding, CallID: msg.CallID},
		{Type: MsgConnect, CallID: msg.CallID, Conference: info.ID},
	}, false
}

// handleOLC opens a logical channel: the endpoint tells us where it
// receives RTP; we bind a proxy port on the session topic, point the
// binding at the endpoint, and return our receive address in the ack.
func (g *Gateway) handleOLC(call *gwCall, msg *Message) ([]*Message, bool) {
	if !call.joined {
		return []*Message{{Type: MsgReleaseComplete, Reason: "no call"}}, true
	}
	kind := msg.MediaKind
	if kind != "audio" && kind != "video" {
		return []*Message{{Type: MsgCloseLogicalChannel, Channel: msg.Channel, Reason: "unsupported media"}}, false
	}
	var topic string
	for _, m := range call.session.Media {
		if string(m.Type) == kind {
			topic = m.Topic
		}
	}
	if topic == "" {
		return []*Message{{Type: MsgCloseLogicalChannel, Channel: msg.Channel, Reason: "session lacks " + kind}}, false
	}
	b, err := g.cfg.Proxy.Bind(topic, "127.0.0.1:0")
	if err != nil {
		return []*Message{{Type: MsgCloseLogicalChannel, Channel: msg.Channel, Reason: "no ports"}}, false
	}
	if msg.RTPAddr != "" {
		if err := b.SetRemote(msg.RTPAddr); err != nil {
			b.Close()
			return []*Message{{Type: MsgCloseLogicalChannel, Channel: msg.Channel, Reason: "bad rtp address"}}, false
		}
	}
	ch := msg.Channel
	if ch == 0 {
		call.nextLocal++
		ch = call.nextLocal
	}
	call.channels[ch] = b
	g.cfg.Metrics.Counter("h323.channels_opened").Inc()
	return []*Message{{
		Type:      MsgOpenLogicalChannelAck,
		Channel:   ch,
		MediaKind: kind,
		RTPAddr:   b.LocalAddr(),
		RTCPAddr:  rtcpAddrOf(b.LocalAddr()),
	}}, false
}

func (g *Gateway) closeChannel(call *gwCall, ch uint32) {
	if b, ok := call.channels[ch]; ok {
		b.Close()
		delete(call.channels, ch)
		g.cfg.Metrics.Counter("h323.channels_closed").Inc()
	}
}

func (g *Gateway) teardown(call *gwCall) {
	for ch, b := range call.channels {
		b.Close()
		delete(call.channels, ch)
	}
	if call.joined {
		_ = g.cfg.XGSP.LeaveAs(context.Background(), call.session.ID, call.alias)
		call.joined = false
	}
}

// rtcpAddrOf derives the conventional RTCP port (RTP+1).
func rtcpAddrOf(rtpAddr string) string {
	host, portStr, found := strings.Cut(rtpAddr, ":")
	if !found {
		return ""
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return ""
	}
	return fmt.Sprintf("%s:%d", host, port+1)
}

// Framing: 4-byte big-endian length + message, the TPKT-like framing all
// H.225 call signalling uses over TCP.

func writeFramed(w io.Writer, m *Message) error {
	b, err := m.Marshal()
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("h323: writing frame: %w", err)
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("h323: writing frame: %w", err)
	}
	return nil
}

func readFramed(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxWireLen {
		return nil, fmt.Errorf("h323: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return Unmarshal(buf)
}
