package rtp

// JitterBuffer reorders RTP packets into sequence order. It buffers up to
// Capacity out-of-order packets; when a gap blocks delivery and the
// buffer is full, the gap is declared lost and delivery skips ahead.
// Deterministic (no timers), so playout pacing is the caller's concern.
// Not safe for concurrent use.
type JitterBuffer struct {
	capacity int
	started  bool
	next     uint16 // next expected sequence number
	buf      map[uint16]*Packet
}

// NewJitterBuffer creates a buffer holding at most capacity out-of-order
// packets (default 64 if capacity <= 0).
func NewJitterBuffer(capacity int) *JitterBuffer {
	if capacity <= 0 {
		capacity = 64
	}
	return &JitterBuffer{
		capacity: capacity,
		buf:      make(map[uint16]*Packet, capacity),
	}
}

// Push inserts a packet. Packets older than the delivery point and
// duplicates are discarded; Push reports whether the packet was kept.
func (j *JitterBuffer) Push(p *Packet) bool {
	if !j.started {
		j.started = true
		j.next = p.SequenceNumber
	}
	if SeqLess(p.SequenceNumber, j.next) {
		return false // too late
	}
	if _, dup := j.buf[p.SequenceNumber]; dup {
		return false
	}
	j.buf[p.SequenceNumber] = p
	return true
}

// Pop returns the next packet in sequence order. When the expected packet
// is missing but the buffer has reached capacity, the gap is skipped to
// the oldest buffered packet. Returns nil when nothing is deliverable.
func (j *JitterBuffer) Pop() *Packet {
	if len(j.buf) == 0 {
		return nil
	}
	if p, ok := j.buf[j.next]; ok {
		delete(j.buf, j.next)
		j.next++
		return p
	}
	if len(j.buf) < j.capacity {
		return nil // wait for the gap to fill
	}
	// Skip to the oldest buffered packet.
	oldest := j.oldestSeq()
	p := j.buf[oldest]
	delete(j.buf, oldest)
	j.next = oldest + 1
	return p
}

// Drain returns the oldest buffered packet regardless of gaps, or nil
// when empty — used to flush a buffer at end of stream, when no more
// arrivals will fill the holes Pop is waiting on.
func (j *JitterBuffer) Drain() *Packet {
	if len(j.buf) == 0 {
		return nil
	}
	oldest := j.oldestSeq()
	p := j.buf[oldest]
	delete(j.buf, oldest)
	j.next = oldest + 1
	return p
}

// Len returns the number of buffered packets.
func (j *JitterBuffer) Len() int { return len(j.buf) }

// NextSeq returns the next expected sequence number.
func (j *JitterBuffer) NextSeq() uint16 { return j.next }

func (j *JitterBuffer) oldestSeq() uint16 {
	var oldest uint16
	first := true
	for seq := range j.buf {
		if first || SeqLess(seq, oldest) {
			oldest = seq
			first = false
		}
	}
	return oldest
}
