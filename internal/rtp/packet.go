// Package rtp implements the subset of RTP and RTCP (RFC 3550) that
// Global-MMCS media paths use: packet encoding, per-source reception
// statistics with the standard interarrival-jitter estimator, sender and
// receiver reports, and a playout jitter buffer.
package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the RTP protocol version emitted and accepted.
const Version = 2

// HeaderLen is the fixed RTP header size without CSRCs.
const HeaderLen = 12

// Payload types used by the Global-MMCS media plane. Values follow the
// RFC 3551 static assignments where one exists.
const (
	// PayloadPCMU is G.711 µ-law audio (type 0, 8 kHz).
	PayloadPCMU = 0
	// PayloadH261 is H.261 video (type 31, 90 kHz).
	PayloadH261 = 31
	// PayloadDynamic is the first dynamic payload type.
	PayloadDynamic = 96
)

// Clock rates for the payload types above, in Hz.
const (
	// AudioClockRate is the RTP timestamp rate for audio payloads.
	AudioClockRate = 8000
	// VideoClockRate is the RTP timestamp rate for video payloads.
	VideoClockRate = 90000
)

// Packet is a parsed RTP packet.
type Packet struct {
	// Padding mirrors the P bit.
	Padding bool
	// Marker mirrors the M bit (end of video frame / start of talkspurt).
	Marker bool
	// PayloadType identifies the codec (7 bits).
	PayloadType uint8
	// SequenceNumber increments by one per packet, wrapping at 2^16.
	SequenceNumber uint16
	// Timestamp is the media clock sampling instant.
	Timestamp uint32
	// SSRC identifies the synchronization source.
	SSRC uint32
	// CSRC lists contributing sources (at most 15).
	CSRC []uint32
	// Payload is the codec data.
	Payload []byte
}

// Packet codec errors.
var (
	ErrShortPacket = errors.New("rtp: packet too short")
	ErrBadVersion  = errors.New("rtp: unsupported version")
	ErrTooManyCSRC = errors.New("rtp: more than 15 CSRCs")
)

// MarshalSize returns the wire size of p.
func (p *Packet) MarshalSize() int {
	return HeaderLen + 4*len(p.CSRC) + len(p.Payload)
}

// AppendMarshal appends the wire encoding of p to dst.
func (p *Packet) AppendMarshal(dst []byte) ([]byte, error) {
	if len(p.CSRC) > 15 {
		return nil, ErrTooManyCSRC
	}
	b0 := byte(Version << 6)
	if p.Padding {
		b0 |= 1 << 5
	}
	b0 |= byte(len(p.CSRC))
	b1 := p.PayloadType & 0x7F
	if p.Marker {
		b1 |= 1 << 7
	}
	dst = append(dst, b0, b1)
	dst = binary.BigEndian.AppendUint16(dst, p.SequenceNumber)
	dst = binary.BigEndian.AppendUint32(dst, p.Timestamp)
	dst = binary.BigEndian.AppendUint32(dst, p.SSRC)
	for _, c := range p.CSRC {
		dst = binary.BigEndian.AppendUint32(dst, c)
	}
	return append(dst, p.Payload...), nil
}

// Marshal returns the wire encoding of p.
func (p *Packet) Marshal() ([]byte, error) {
	return p.AppendMarshal(make([]byte, 0, p.MarshalSize()))
}

// Unmarshal parses b into p. The payload aliases b.
func (p *Packet) Unmarshal(b []byte) error {
	if len(b) < HeaderLen {
		return ErrShortPacket
	}
	if v := b[0] >> 6; v != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	p.Padding = b[0]&(1<<5) != 0
	cc := int(b[0] & 0x0F)
	hasExt := b[0]&(1<<4) != 0
	p.Marker = b[1]&(1<<7) != 0
	p.PayloadType = b[1] & 0x7F
	p.SequenceNumber = binary.BigEndian.Uint16(b[2:4])
	p.Timestamp = binary.BigEndian.Uint32(b[4:8])
	p.SSRC = binary.BigEndian.Uint32(b[8:12])
	off := HeaderLen + 4*cc
	if len(b) < off {
		return ErrShortPacket
	}
	if cc > 0 {
		p.CSRC = make([]uint32, cc)
		for i := range p.CSRC {
			p.CSRC[i] = binary.BigEndian.Uint32(b[HeaderLen+4*i:])
		}
	} else {
		p.CSRC = nil
	}
	if hasExt {
		// Header extension: 2 bytes profile, 2 bytes length (in 32-bit
		// words), then the extension body. We skip it.
		if len(b) < off+4 {
			return ErrShortPacket
		}
		extWords := int(binary.BigEndian.Uint16(b[off+2 : off+4]))
		off += 4 + 4*extWords
		if len(b) < off {
			return ErrShortPacket
		}
	}
	payload := b[off:]
	if p.Padding {
		if len(payload) == 0 {
			return ErrShortPacket
		}
		pad := int(payload[len(payload)-1])
		if pad == 0 || pad > len(payload) {
			return fmt.Errorf("rtp: invalid padding length %d", pad)
		}
		payload = payload[:len(payload)-pad]
		p.Padding = false // consumed
	}
	if len(payload) == 0 {
		p.Payload = nil
	} else {
		p.Payload = payload[:len(payload):len(payload)]
	}
	return nil
}

// String renders a short description for logs.
func (p *Packet) String() string {
	return fmt.Sprintf("rtp{pt=%d seq=%d ts=%d ssrc=%08x m=%t %dB}",
		p.PayloadType, p.SequenceNumber, p.Timestamp, p.SSRC, p.Marker, len(p.Payload))
}

// SeqLess reports whether sequence number a is before b in RFC 1982
// serial-number arithmetic (handles wraparound).
func SeqLess(a, b uint16) bool {
	return a != b && b-a < 1<<15
}
