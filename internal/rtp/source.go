package rtp

import (
	"time"
)

// SourceStats accumulates reception statistics for one SSRC following
// RFC 3550 Appendix A: extended sequence numbers across wraps, loss
// counters, and the standard interarrival jitter estimator.
// Not safe for concurrent use.
type SourceStats struct {
	// ClockRate is the RTP timestamp rate in Hz; required for jitter.
	ClockRate int

	initialized bool
	baseSeq     uint16
	maxSeq      uint16
	cycles      uint32 // sequence wraps, shifted into the high 16 bits
	received    uint64
	badSeq      uint32
	probation   int

	expectedPrior uint64
	receivedPrior uint64

	transit int64   // last packet's transit time in timestamp units
	jitter  float64 // RFC 3550 interarrival jitter estimate, ts units
}

// maxDropout and maxMisorder mirror the RFC 3550 A.1 constants.
const (
	maxDropout  = 3000
	maxMisorder = 100
)

// Update records the arrival of a packet with the given RTP sequence
// number and timestamp at the given wall-clock arrival time.
func (s *SourceStats) Update(seq uint16, rtpTS uint32, arrival time.Time) {
	if !s.initialized {
		s.initialized = true
		s.baseSeq = seq
		s.maxSeq = seq
		s.received = 1
		s.updateJitter(rtpTS, arrival)
		return
	}
	delta := seq - s.maxSeq // uint16 arithmetic handles wrap
	switch {
	case delta == 0:
		// Duplicate of the newest packet; count it as received.
		s.received++
	case delta < maxDropout:
		if seq < s.maxSeq {
			s.cycles += 1 << 16
		}
		s.maxSeq = seq
		s.received++
	case uint16(-delta) < maxMisorder: //nolint:gosec // intentional wraparound
		// Late or reordered packet within tolerance.
		s.received++
	default:
		// A large jump; RFC suggests resync after two in a row. We resync
		// immediately for simplicity.
		s.baseSeq = seq
		s.maxSeq = seq
		s.cycles = 0
		s.received++
		s.expectedPrior = 0
		s.receivedPrior = 0
	}
	s.updateJitter(rtpTS, arrival)
}

func (s *SourceStats) updateJitter(rtpTS uint32, arrival time.Time) {
	if s.ClockRate <= 0 {
		return
	}
	arrivalTS := int64(float64(arrival.UnixNano()) * float64(s.ClockRate) / float64(time.Second))
	transit := arrivalTS - int64(rtpTS)
	if s.received > 1 {
		d := transit - s.transit
		if d < 0 {
			d = -d
		}
		s.jitter += (float64(d) - s.jitter) / 16
	}
	s.transit = transit
}

// ExtendedHighest returns the extended highest sequence number received.
func (s *SourceStats) ExtendedHighest() uint32 {
	return s.cycles | uint32(s.maxSeq)
}

// PacketsReceived returns the count of packets received (incl. duplicates).
func (s *SourceStats) PacketsReceived() uint64 { return s.received }

// ExpectedPackets returns how many packets the sender has emitted
// according to the sequence number span.
func (s *SourceStats) ExpectedPackets() uint64 {
	if !s.initialized {
		return 0
	}
	return uint64(s.ExtendedHighest()) - uint64(s.baseSeq) + 1
}

// CumulativeLost returns the total packets lost so far (can be negative
// with duplicates; clamped at zero).
func (s *SourceStats) CumulativeLost() uint64 {
	exp := s.ExpectedPackets()
	if exp <= s.received {
		return 0
	}
	return exp - s.received
}

// LossRate returns the lifetime loss fraction in [0,1].
func (s *SourceStats) LossRate() float64 {
	exp := s.ExpectedPackets()
	if exp == 0 {
		return 0
	}
	return float64(s.CumulativeLost()) / float64(exp)
}

// FractionLostSinceLastReport computes the RFC 3550 8-bit fraction lost
// over the interval since the previous call, and resets the interval.
func (s *SourceStats) FractionLostSinceLastReport() uint8 {
	expected := s.ExpectedPackets()
	expectedInt := expected - s.expectedPrior
	receivedInt := s.received - s.receivedPrior
	s.expectedPrior = expected
	s.receivedPrior = s.received
	if expectedInt == 0 || receivedInt >= expectedInt {
		return 0
	}
	lost := expectedInt - receivedInt
	return uint8(lost * 256 / expectedInt)
}

// Jitter returns the interarrival jitter estimate in timestamp units.
func (s *SourceStats) Jitter() float64 { return s.jitter }

// JitterDuration converts the jitter estimate to a time.Duration.
func (s *SourceStats) JitterDuration() time.Duration {
	if s.ClockRate <= 0 {
		return 0
	}
	return time.Duration(s.jitter / float64(s.ClockRate) * float64(time.Second))
}

// ReportBlock assembles an RFC 3550 reception report block for this
// source. It advances the fraction-lost interval.
func (s *SourceStats) ReportBlock(ssrc uint32) ReportBlock {
	cum := s.CumulativeLost()
	if cum > 0xFFFFFF {
		cum = 0xFFFFFF
	}
	return ReportBlock{
		SSRC:           ssrc,
		FractionLost:   s.FractionLostSinceLastReport(),
		CumulativeLost: uint32(cum),
		HighestSeq:     s.ExtendedHighest(),
		Jitter:         uint32(s.jitter),
	}
}
