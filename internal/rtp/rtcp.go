package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// RTCP packet types (RFC 3550 §12.1).
const (
	TypeSenderReport   = 200
	TypeReceiverReport = 201
	TypeSourceDesc     = 202
	TypeBye            = 203
)

// SDES item types.
const sdesCNAME = 1

// ReportBlock is one reception report block (RFC 3550 §6.4.1).
type ReportBlock struct {
	// SSRC identifies the source this block reports on.
	SSRC uint32
	// FractionLost is the fraction of packets lost since the previous
	// report, as a fixed-point number with the binary point at the left.
	FractionLost uint8
	// CumulativeLost is the total packets lost (24-bit, clamped).
	CumulativeLost uint32
	// HighestSeq is the extended highest sequence number received.
	HighestSeq uint32
	// Jitter is the interarrival jitter in timestamp units.
	Jitter uint32
	// LastSR and DelaySinceLastSR support round-trip estimation.
	LastSR           uint32
	DelaySinceLastSR uint32
}

// SenderReport is an RTCP SR packet.
type SenderReport struct {
	SSRC        uint32
	NTPTime     uint64
	RTPTime     uint32
	PacketCount uint32
	OctetCount  uint32
	Reports     []ReportBlock
}

// ReceiverReport is an RTCP RR packet.
type ReceiverReport struct {
	SSRC    uint32
	Reports []ReportBlock
}

// SourceDescription carries a CNAME for one source.
type SourceDescription struct {
	SSRC  uint32
	CNAME string
}

// Bye announces that sources are leaving the session.
type Bye struct {
	SSRCs  []uint32
	Reason string
}

// RTCP codec errors.
var (
	ErrShortRTCP   = errors.New("rtcp: packet too short")
	ErrBadRTCPType = errors.New("rtcp: unexpected packet type")
)

const maxReportBlocks = 31

func appendRTCPHeader(dst []byte, count int, typ uint8, words int) []byte {
	dst = append(dst, byte(Version<<6)|byte(count&0x1F), typ)
	return binary.BigEndian.AppendUint16(dst, uint16(words))
}

func appendReportBlock(dst []byte, rb *ReportBlock) []byte {
	dst = binary.BigEndian.AppendUint32(dst, rb.SSRC)
	cum := rb.CumulativeLost
	if cum > 0xFFFFFF {
		cum = 0xFFFFFF
	}
	dst = append(dst, rb.FractionLost, byte(cum>>16), byte(cum>>8), byte(cum))
	dst = binary.BigEndian.AppendUint32(dst, rb.HighestSeq)
	dst = binary.BigEndian.AppendUint32(dst, rb.Jitter)
	dst = binary.BigEndian.AppendUint32(dst, rb.LastSR)
	return binary.BigEndian.AppendUint32(dst, rb.DelaySinceLastSR)
}

func parseReportBlock(b []byte) (ReportBlock, error) {
	if len(b) < 24 {
		return ReportBlock{}, ErrShortRTCP
	}
	return ReportBlock{
		SSRC:             binary.BigEndian.Uint32(b[0:4]),
		FractionLost:     b[4],
		CumulativeLost:   uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
		HighestSeq:       binary.BigEndian.Uint32(b[8:12]),
		Jitter:           binary.BigEndian.Uint32(b[12:16]),
		LastSR:           binary.BigEndian.Uint32(b[16:20]),
		DelaySinceLastSR: binary.BigEndian.Uint32(b[20:24]),
	}, nil
}

// Marshal encodes the sender report.
func (sr *SenderReport) Marshal() ([]byte, error) {
	if len(sr.Reports) > maxReportBlocks {
		return nil, fmt.Errorf("rtcp: %d report blocks exceed %d", len(sr.Reports), maxReportBlocks)
	}
	words := 6 + 6*len(sr.Reports)
	dst := make([]byte, 0, 4+4*words)
	dst = appendRTCPHeader(dst, len(sr.Reports), TypeSenderReport, words)
	dst = binary.BigEndian.AppendUint32(dst, sr.SSRC)
	dst = binary.BigEndian.AppendUint64(dst, sr.NTPTime)
	dst = binary.BigEndian.AppendUint32(dst, sr.RTPTime)
	dst = binary.BigEndian.AppendUint32(dst, sr.PacketCount)
	dst = binary.BigEndian.AppendUint32(dst, sr.OctetCount)
	for i := range sr.Reports {
		dst = appendReportBlock(dst, &sr.Reports[i])
	}
	return dst, nil
}

// Unmarshal decodes a sender report.
func (sr *SenderReport) Unmarshal(b []byte) error {
	count, typ, body, err := parseRTCPHeader(b)
	if err != nil {
		return err
	}
	if typ != TypeSenderReport {
		return fmt.Errorf("%w: %d", ErrBadRTCPType, typ)
	}
	if len(body) < 24 {
		return ErrShortRTCP
	}
	sr.SSRC = binary.BigEndian.Uint32(body[0:4])
	sr.NTPTime = binary.BigEndian.Uint64(body[4:12])
	sr.RTPTime = binary.BigEndian.Uint32(body[12:16])
	sr.PacketCount = binary.BigEndian.Uint32(body[16:20])
	sr.OctetCount = binary.BigEndian.Uint32(body[20:24])
	return parseBlocks(body[24:], count, &sr.Reports)
}

// Marshal encodes the receiver report.
func (rr *ReceiverReport) Marshal() ([]byte, error) {
	if len(rr.Reports) > maxReportBlocks {
		return nil, fmt.Errorf("rtcp: %d report blocks exceed %d", len(rr.Reports), maxReportBlocks)
	}
	words := 1 + 6*len(rr.Reports)
	dst := make([]byte, 0, 4+4*words)
	dst = appendRTCPHeader(dst, len(rr.Reports), TypeReceiverReport, words)
	dst = binary.BigEndian.AppendUint32(dst, rr.SSRC)
	for i := range rr.Reports {
		dst = appendReportBlock(dst, &rr.Reports[i])
	}
	return dst, nil
}

// Unmarshal decodes a receiver report.
func (rr *ReceiverReport) Unmarshal(b []byte) error {
	count, typ, body, err := parseRTCPHeader(b)
	if err != nil {
		return err
	}
	if typ != TypeReceiverReport {
		return fmt.Errorf("%w: %d", ErrBadRTCPType, typ)
	}
	if len(body) < 4 {
		return ErrShortRTCP
	}
	rr.SSRC = binary.BigEndian.Uint32(body[0:4])
	return parseBlocks(body[4:], count, &rr.Reports)
}

func parseBlocks(b []byte, count int, out *[]ReportBlock) error {
	*out = nil
	for range count {
		rb, err := parseReportBlock(b)
		if err != nil {
			return err
		}
		*out = append(*out, rb)
		b = b[24:]
	}
	return nil
}

// Marshal encodes a one-chunk SDES packet carrying the CNAME.
func (sd *SourceDescription) Marshal() ([]byte, error) {
	if len(sd.CNAME) > 255 {
		return nil, errors.New("rtcp: cname too long")
	}
	// Chunk: SSRC + item(type,len,text) + terminating zero, padded to 32 bits.
	itemLen := 2 + len(sd.CNAME) + 1
	pad := (4 - itemLen%4) % 4
	words := 1 + (itemLen+pad)/4
	dst := make([]byte, 0, 4+4*words)
	dst = appendRTCPHeader(dst, 1, TypeSourceDesc, words)
	dst = binary.BigEndian.AppendUint32(dst, sd.SSRC)
	dst = append(dst, sdesCNAME, byte(len(sd.CNAME)))
	dst = append(dst, sd.CNAME...)
	dst = append(dst, 0)
	for range pad {
		dst = append(dst, 0)
	}
	return dst, nil
}

// Unmarshal decodes a one-chunk SDES packet.
func (sd *SourceDescription) Unmarshal(b []byte) error {
	_, typ, body, err := parseRTCPHeader(b)
	if err != nil {
		return err
	}
	if typ != TypeSourceDesc {
		return fmt.Errorf("%w: %d", ErrBadRTCPType, typ)
	}
	if len(body) < 4 {
		return ErrShortRTCP
	}
	sd.SSRC = binary.BigEndian.Uint32(body[0:4])
	items := body[4:]
	for len(items) >= 2 {
		typ, n := items[0], int(items[1])
		if typ == 0 {
			break
		}
		if len(items) < 2+n {
			return ErrShortRTCP
		}
		if typ == sdesCNAME {
			sd.CNAME = string(items[2 : 2+n])
			return nil
		}
		items = items[2+n:]
	}
	return nil
}

// Marshal encodes a BYE packet.
func (by *Bye) Marshal() ([]byte, error) {
	if len(by.SSRCs) == 0 || len(by.SSRCs) > 31 {
		return nil, errors.New("rtcp: bye needs 1..31 ssrcs")
	}
	if len(by.Reason) > 255 {
		return nil, errors.New("rtcp: bye reason too long")
	}
	words := len(by.SSRCs)
	reasonLen := 0
	if by.Reason != "" {
		reasonLen = 1 + len(by.Reason)
		words += (reasonLen + 3) / 4
	}
	dst := make([]byte, 0, 4+4*words)
	dst = appendRTCPHeader(dst, len(by.SSRCs), TypeBye, words)
	for _, s := range by.SSRCs {
		dst = binary.BigEndian.AppendUint32(dst, s)
	}
	if by.Reason != "" {
		dst = append(dst, byte(len(by.Reason)))
		dst = append(dst, by.Reason...)
		for len(dst)%4 != 0 {
			dst = append(dst, 0)
		}
	}
	return dst, nil
}

// Unmarshal decodes a BYE packet.
func (by *Bye) Unmarshal(b []byte) error {
	count, typ, body, err := parseRTCPHeader(b)
	if err != nil {
		return err
	}
	if typ != TypeBye {
		return fmt.Errorf("%w: %d", ErrBadRTCPType, typ)
	}
	if len(body) < 4*count {
		return ErrShortRTCP
	}
	by.SSRCs = make([]uint32, count)
	for i := range by.SSRCs {
		by.SSRCs[i] = binary.BigEndian.Uint32(body[4*i:])
	}
	rest := body[4*count:]
	if len(rest) > 0 {
		n := int(rest[0])
		if len(rest) < 1+n {
			return ErrShortRTCP
		}
		by.Reason = string(rest[1 : 1+n])
	}
	return nil
}

// parseRTCPHeader validates the common header and returns the count
// field, packet type and body (without the 4-byte header).
func parseRTCPHeader(b []byte) (count int, typ uint8, body []byte, err error) {
	if len(b) < 4 {
		return 0, 0, nil, ErrShortRTCP
	}
	if v := b[0] >> 6; v != Version {
		return 0, 0, nil, fmt.Errorf("%w: version %d", ErrBadVersion, v)
	}
	count = int(b[0] & 0x1F)
	typ = b[1]
	words := int(binary.BigEndian.Uint16(b[2:4]))
	if len(b) < 4+4*words {
		return 0, 0, nil, ErrShortRTCP
	}
	return count, typ, b[4 : 4+4*words], nil
}

// TypeOf peeks at the RTCP packet type without a full parse.
func TypeOf(b []byte) (uint8, error) {
	if len(b) < 2 {
		return 0, ErrShortRTCP
	}
	return b[1], nil
}
