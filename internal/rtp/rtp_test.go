package rtp

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func samplePacket() *Packet {
	return &Packet{
		Marker:         true,
		PayloadType:    PayloadH261,
		SequenceNumber: 4660,
		Timestamp:      90000,
		SSRC:           0xDEADBEEF,
		CSRC:           []uint32{1, 2},
		Payload:        []byte("frame data"),
	}
}

func TestPacketRoundtrip(t *testing.T) {
	p := samplePacket()
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != p.MarshalSize() {
		t.Fatalf("marshal size = %d, want %d", len(b), p.MarshalSize())
	}
	var got Packet
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*p, got) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, *p)
	}
}

func TestPacketRoundtripMinimal(t *testing.T) {
	p := &Packet{PayloadType: PayloadPCMU, SequenceNumber: 1, Timestamp: 2, SSRC: 3}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != HeaderLen {
		t.Fatalf("minimal packet size = %d, want %d", len(b), HeaderLen)
	}
	var got Packet
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*p, got) {
		t.Fatalf("mismatch: %+v vs %+v", *p, got)
	}
}

func TestPacketUnmarshalErrors(t *testing.T) {
	if err := new(Packet).Unmarshal(make([]byte, 5)); !errors.Is(err, ErrShortPacket) {
		t.Errorf("short = %v", err)
	}
	b, _ := samplePacket().Marshal()
	b[0] = 0x00 // version 0
	if err := new(Packet).Unmarshal(b); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version = %v", err)
	}
	// CSRC count beyond data.
	hdr := make([]byte, HeaderLen)
	hdr[0] = byte(Version<<6) | 5
	if err := new(Packet).Unmarshal(hdr); !errors.Is(err, ErrShortPacket) {
		t.Errorf("csrc overflow = %v", err)
	}
}

func TestPacketTooManyCSRC(t *testing.T) {
	p := samplePacket()
	p.CSRC = make([]uint32, 16)
	if _, err := p.Marshal(); !errors.Is(err, ErrTooManyCSRC) {
		t.Fatalf("err = %v", err)
	}
}

func TestPacketPaddingStripped(t *testing.T) {
	p := &Packet{PayloadType: 0, SequenceNumber: 9, Timestamp: 8, SSRC: 7, Payload: []byte("abcd")}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Append 4 bytes of padding manually and set the P bit.
	b = append(b, 0, 0, 0, 4)
	b[0] |= 1 << 5
	var got Packet
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, []byte("abcd")) {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestPacketExtensionSkipped(t *testing.T) {
	p := &Packet{PayloadType: 5, SequenceNumber: 1, Timestamp: 1, SSRC: 1, Payload: []byte("xy")}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Splice a 1-word extension between header and payload.
	ext := []byte{0xBE, 0xDE, 0x00, 0x01, 0xAA, 0xBB, 0xCC, 0xDD}
	withExt := append(append(append([]byte{}, b[:HeaderLen]...), ext...), b[HeaderLen:]...)
	withExt[0] |= 1 << 4
	var got Packet
	if err := got.Unmarshal(withExt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, []byte("xy")) {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestPacketPropertyRoundtrip(t *testing.T) {
	f := func(marker bool, pt uint8, seq uint16, ts, ssrc uint32, payload []byte) bool {
		p := &Packet{
			Marker:         marker,
			PayloadType:    pt & 0x7F,
			SequenceNumber: seq,
			Timestamp:      ts,
			SSRC:           ssrc,
			Payload:        payload,
		}
		if len(p.Payload) == 0 {
			p.Payload = nil
		}
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		var got Packet
		if err := got.Unmarshal(b); err != nil {
			return false
		}
		return reflect.DeepEqual(*p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPacketUnmarshalFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 42))
	for range 3000 {
		b := make([]byte, rng.IntN(64))
		for i := range b {
			b[i] = byte(rng.UintN(256))
		}
		var p Packet
		_ = p.Unmarshal(b)
	}
}

func TestSeqLess(t *testing.T) {
	cases := []struct {
		a, b uint16
		want bool
	}{
		{1, 2, true},
		{2, 1, false},
		{1, 1, false},
		{65535, 0, true}, // wraparound
		{0, 65535, false},
		{0, 32767, true},
		{0, 32769, false},
	}
	for _, tc := range cases {
		if got := SeqLess(tc.a, tc.b); got != tc.want {
			t.Errorf("SeqLess(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSenderReportRoundtrip(t *testing.T) {
	sr := &SenderReport{
		SSRC:        0x1234,
		NTPTime:     0xAABBCCDDEEFF0011,
		RTPTime:     90210,
		PacketCount: 100,
		OctetCount:  120000,
		Reports: []ReportBlock{{
			SSRC:           7,
			FractionLost:   32,
			CumulativeLost: 12,
			HighestSeq:     0x00011234,
			Jitter:         99,
		}},
	}
	b, err := sr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var got SenderReport
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*sr, got) {
		t.Fatalf("mismatch:\n got %+v\nwant %+v", got, *sr)
	}
	if typ, _ := TypeOf(b); typ != TypeSenderReport {
		t.Fatalf("TypeOf = %d", typ)
	}
}

func TestReceiverReportRoundtrip(t *testing.T) {
	rr := &ReceiverReport{
		SSRC: 42,
		Reports: []ReportBlock{
			{SSRC: 1, FractionLost: 10, CumulativeLost: 5, HighestSeq: 1000, Jitter: 3},
			{SSRC: 2, CumulativeLost: 0, HighestSeq: 2000},
		},
	}
	b, err := rr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var got ReceiverReport
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*rr, got) {
		t.Fatalf("mismatch:\n got %+v\nwant %+v", got, *rr)
	}
}

func TestReceiverReportEmptyBlocks(t *testing.T) {
	rr := &ReceiverReport{SSRC: 9}
	b, err := rr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var got ReceiverReport
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got.SSRC != 9 || len(got.Reports) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestSDESRoundtrip(t *testing.T) {
	sd := &SourceDescription{SSRC: 77, CNAME: "alice@globalmmcs.example"}
	b, err := sd.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b)%4 != 0 {
		t.Fatalf("sdes not 32-bit aligned: %d", len(b))
	}
	var got SourceDescription
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got.SSRC != 77 || got.CNAME != sd.CNAME {
		t.Fatalf("got %+v", got)
	}
}

func TestByeRoundtrip(t *testing.T) {
	by := &Bye{SSRCs: []uint32{1, 2, 3}, Reason: "session over"}
	b, err := by.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var got Bye
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(by.SSRCs, got.SSRCs) || got.Reason != by.Reason {
		t.Fatalf("got %+v", got)
	}
}

func TestByeValidation(t *testing.T) {
	if _, err := (&Bye{}).Marshal(); err == nil {
		t.Error("empty bye accepted")
	}
}

func TestRTCPTypeMismatch(t *testing.T) {
	sr := &SenderReport{SSRC: 1}
	b, _ := sr.Marshal()
	var rr ReceiverReport
	if err := rr.Unmarshal(b); !errors.Is(err, ErrBadRTCPType) {
		t.Fatalf("err = %v", err)
	}
}

func TestRTCPFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for range 3000 {
		b := make([]byte, rng.IntN(64))
		for i := range b {
			b[i] = byte(rng.UintN(256))
		}
		_ = new(SenderReport).Unmarshal(b)
		_ = new(ReceiverReport).Unmarshal(b)
		_ = new(SourceDescription).Unmarshal(b)
		_ = new(Bye).Unmarshal(b)
	}
}

func TestSourceStatsInOrder(t *testing.T) {
	s := &SourceStats{ClockRate: AudioClockRate}
	base := time.Unix(1000, 0)
	for i := range 100 {
		s.Update(uint16(i), uint32(i*160), base.Add(time.Duration(i)*20*time.Millisecond))
	}
	if s.PacketsReceived() != 100 {
		t.Errorf("received = %d", s.PacketsReceived())
	}
	if s.ExpectedPackets() != 100 {
		t.Errorf("expected = %d", s.ExpectedPackets())
	}
	if s.CumulativeLost() != 0 {
		t.Errorf("lost = %d", s.CumulativeLost())
	}
	// Perfectly paced stream: jitter ~ 0.
	if s.Jitter() > 1 {
		t.Errorf("jitter = %v, want ~0 for perfectly paced stream", s.Jitter())
	}
}

func TestSourceStatsLoss(t *testing.T) {
	s := &SourceStats{ClockRate: AudioClockRate}
	base := time.Unix(1000, 0)
	// Drop every 4th packet.
	for i := range 100 {
		if i%4 == 3 {
			continue
		}
		s.Update(uint16(i), uint32(i*160), base.Add(time.Duration(i)*20*time.Millisecond))
	}
	// 25 packets were dropped, but the trailing drop (seq 99) is invisible
	// to the receiver: expected = 0..98, so 24 are known lost.
	if got := s.CumulativeLost(); got != 24 {
		t.Errorf("lost = %d, want 24", got)
	}
	if lr := s.LossRate(); lr < 0.2 || lr > 0.3 {
		t.Errorf("loss rate = %v, want ~0.25", lr)
	}
	fl := s.FractionLostSinceLastReport()
	if fl < 50 || fl > 80 { // 0.25*256 = 64
		t.Errorf("fraction lost = %d, want ~64", fl)
	}
	// Second interval with no further packets: fraction resets.
	if fl2 := s.FractionLostSinceLastReport(); fl2 != 0 {
		t.Errorf("second interval fraction = %d, want 0", fl2)
	}
}

func TestSourceStatsSequenceWrap(t *testing.T) {
	s := &SourceStats{ClockRate: VideoClockRate}
	base := time.Unix(1000, 0)
	start := 65530
	for i := range 20 {
		seq := uint16(start + i)
		s.Update(seq, uint32(i*3000), base.Add(time.Duration(i)*40*time.Millisecond))
	}
	if got := s.ExtendedHighest(); got != uint32(1<<16)|uint32(uint16(start+19)) {
		t.Errorf("extended highest = %#x", got)
	}
	if s.CumulativeLost() != 0 {
		t.Errorf("lost = %d across wrap", s.CumulativeLost())
	}
}

func TestSourceStatsJitterGrowsWithVariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	steady := &SourceStats{ClockRate: AudioClockRate}
	jittery := &SourceStats{ClockRate: AudioClockRate}
	base := time.Unix(2000, 0)
	for i := range 500 {
		at := base.Add(time.Duration(i) * 20 * time.Millisecond)
		steady.Update(uint16(i), uint32(i*160), at)
		noise := time.Duration(rng.Int64N(int64(10 * time.Millisecond)))
		jittery.Update(uint16(i), uint32(i*160), at.Add(noise))
	}
	if jittery.Jitter() <= steady.Jitter() {
		t.Errorf("jittery %v <= steady %v", jittery.Jitter(), steady.Jitter())
	}
	if d := jittery.JitterDuration(); d < 500*time.Microsecond || d > 10*time.Millisecond {
		t.Errorf("jitter duration = %v, want a few ms for U(0,10ms) noise", d)
	}
}

func TestSourceStatsResyncAfterBigJump(t *testing.T) {
	s := &SourceStats{ClockRate: AudioClockRate}
	base := time.Unix(1000, 0)
	s.Update(1, 160, base)
	s.Update(2, 320, base.Add(20*time.Millisecond))
	// Jump far beyond maxDropout.
	s.Update(40000, 160000, base.Add(40*time.Millisecond))
	if s.ExpectedPackets() != 1 {
		t.Errorf("expected after resync = %d, want 1", s.ExpectedPackets())
	}
}

func TestSourceStatsReportBlock(t *testing.T) {
	s := &SourceStats{ClockRate: AudioClockRate}
	base := time.Unix(1000, 0)
	for i := range 10 {
		s.Update(uint16(i), uint32(i*160), base.Add(time.Duration(i)*20*time.Millisecond))
	}
	rb := s.ReportBlock(555)
	if rb.SSRC != 555 || rb.HighestSeq != 9 || rb.CumulativeLost != 0 {
		t.Fatalf("block = %+v", rb)
	}
}

func TestJitterBufferInOrder(t *testing.T) {
	j := NewJitterBuffer(8)
	for i := range 5 {
		j.Push(&Packet{SequenceNumber: uint16(i)})
	}
	for i := range 5 {
		p := j.Pop()
		if p == nil || p.SequenceNumber != uint16(i) {
			t.Fatalf("pop %d = %v", i, p)
		}
	}
	if j.Pop() != nil {
		t.Fatal("empty buffer returned a packet")
	}
}

func TestJitterBufferReorders(t *testing.T) {
	j := NewJitterBuffer(8)
	j.Push(&Packet{SequenceNumber: 10})
	j.Push(&Packet{SequenceNumber: 12})
	j.Push(&Packet{SequenceNumber: 11})
	for _, want := range []uint16{10, 11, 12} {
		p := j.Pop()
		if p == nil || p.SequenceNumber != want {
			t.Fatalf("pop = %v, want seq %d", p, want)
		}
	}
}

func TestJitterBufferWaitsOnGap(t *testing.T) {
	j := NewJitterBuffer(8)
	j.Push(&Packet{SequenceNumber: 0})
	j.Push(&Packet{SequenceNumber: 2}) // gap at 1
	if p := j.Pop(); p == nil || p.SequenceNumber != 0 {
		t.Fatalf("pop = %v", p)
	}
	if p := j.Pop(); p != nil {
		t.Fatalf("pop across unfilled gap = %v, want nil", p)
	}
	j.Push(&Packet{SequenceNumber: 1})
	if p := j.Pop(); p == nil || p.SequenceNumber != 1 {
		t.Fatalf("pop = %v", p)
	}
}

func TestJitterBufferSkipsGapWhenFull(t *testing.T) {
	j := NewJitterBuffer(3)
	j.Push(&Packet{SequenceNumber: 1}) // 0 missing
	j.Push(&Packet{SequenceNumber: 2})
	j.Push(&Packet{SequenceNumber: 3})
	// next expected is 1 (first push started at 1)... push an earlier gap:
	j2 := NewJitterBuffer(3)
	j2.Push(&Packet{SequenceNumber: 100})
	if p := j2.Pop(); p == nil || p.SequenceNumber != 100 {
		t.Fatalf("pop = %v", p)
	}
	// Now create a gap at 101 and fill the buffer beyond capacity.
	j2.Push(&Packet{SequenceNumber: 102})
	j2.Push(&Packet{SequenceNumber: 103})
	j2.Push(&Packet{SequenceNumber: 104})
	p := j2.Pop()
	if p == nil || p.SequenceNumber != 102 {
		t.Fatalf("pop after forced skip = %v, want 102", p)
	}
}

func TestJitterBufferRejectsLateAndDuplicate(t *testing.T) {
	j := NewJitterBuffer(8)
	j.Push(&Packet{SequenceNumber: 5})
	if p := j.Pop(); p.SequenceNumber != 5 {
		t.Fatal("setup")
	}
	if j.Push(&Packet{SequenceNumber: 4}) {
		t.Error("late packet accepted")
	}
	j.Push(&Packet{SequenceNumber: 7})
	if j.Push(&Packet{SequenceNumber: 7}) {
		t.Error("duplicate accepted")
	}
}

func TestJitterBufferWrapAround(t *testing.T) {
	j := NewJitterBuffer(8)
	j.Push(&Packet{SequenceNumber: 65534})
	j.Push(&Packet{SequenceNumber: 65535})
	j.Push(&Packet{SequenceNumber: 0})
	j.Push(&Packet{SequenceNumber: 1})
	for _, want := range []uint16{65534, 65535, 0, 1} {
		p := j.Pop()
		if p == nil || p.SequenceNumber != want {
			t.Fatalf("pop = %v, want %d", p, want)
		}
	}
}

func BenchmarkRTPMarshal(b *testing.B) {
	p := samplePacket()
	p.Payload = make([]byte, 1200)
	buf := make([]byte, 0, 1400)
	b.ReportAllocs()
	for b.Loop() {
		var err error
		buf, err = p.AppendMarshal(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTPUnmarshal(b *testing.B) {
	p := samplePacket()
	p.Payload = make([]byte, 1200)
	buf, err := p.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for b.Loop() {
		var q Packet
		if err := q.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSourceStatsUpdate(b *testing.B) {
	s := &SourceStats{ClockRate: VideoClockRate}
	base := time.Now()
	b.ReportAllocs()
	i := 0
	for b.Loop() {
		s.Update(uint16(i), uint32(i*3000), base.Add(time.Duration(i)*time.Millisecond))
		i++
	}
}
