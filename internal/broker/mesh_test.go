package broker

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// fastMeshConfig returns supervision knobs scaled for tests: links
// redial within milliseconds and heartbeat every few tens of ms.
func fastMeshConfig(peers ...string) MeshConfig {
	return MeshConfig{
		Peers:             peers,
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatMiss:     3,
		RedialMin:         5 * time.Millisecond,
		RedialMax:         50 * time.Millisecond,
	}
}

// TestMeshForwardSingleLockPerLink is the inter-broker batching
// contract: a burst fanned out to N peer links costs one queue lock
// acquisition (and one staged batch) per link — peer sessions ride the
// same staged batch path as client sessions, with the TTL-patched
// shared frame.
func TestMeshForwardSingleLockPerLink(t *testing.T) {
	b := New(Config{ID: "lock-mesh"})
	defer b.Stop()

	const links = 8
	const burst = 16
	peers := make([]*session, 0, links)
	for i := 0; i < links; i++ {
		s := newSession(b, newCaptureConn(), fmt.Sprintf("lock-peer-%d", i), true)
		if err := b.router.add("/mesh/t", s); err != nil {
			t.Fatal(err)
		}
		peers = append(peers, s)
	}

	events := make([]*event.Event, burst)
	for i := range events {
		events[i] = burstEvent(uint64(i+1), "/mesh/t")
	}
	sweep := b.newRouteSweep()
	sweep.routeBatch(events, nil)

	for i, s := range peers {
		if locks := s.queue.pushLockCount(); locks != 1 {
			t.Fatalf("peer %d: %d push lock acquisitions for one burst, want 1", i, locks)
		}
		if depth := s.queue.depth(); depth != burst {
			t.Fatalf("peer %d: queue depth %d, want %d", i, depth, burst)
		}
	}
	sweep.routeBatch(events, nil)
	for i, s := range peers {
		if locks := s.queue.pushLockCount(); locks != 2 {
			t.Fatalf("peer %d: %d push locks after two bursts, want 2", i, locks)
		}
	}
}

// TestPeerSalvageReplaysUnacked: reliable events unacknowledged when a
// peer link dies are stashed at detach and replayed, in order, onto the
// peer's next link.
func TestPeerSalvageReplaysUnacked(t *testing.T) {
	b := newTestBroker(t, "sal")

	ca, cb := transport.Pipe("sal", "peer-sal")
	s, err := b.attach(ca, "peer-sal", true, true)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	for i := uint64(1); i <= n; i++ {
		e := event.New("/sal/t", event.KindChat, []byte("salvage"))
		e.Source = "sal-pub"
		e.ID = i
		e.Reliable = true
		s.sendReliable(e)
	}
	// Drain the wire but never ack, so everything stays in the window.
	for i := 0; i < n; i++ {
		if _, err := cb.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	s.close()

	b.mu.RLock()
	stash := b.relStash["peer-sal"]
	b.mu.RUnlock()
	if stash == nil || len(stash.events) != n {
		t.Fatalf("relStash holds %v, want %d salvaged events", stash, n)
	}

	ca2, cb2 := transport.Pipe("sal", "peer-sal")
	s2, err := b.attach(ca2, "peer-sal", true, true)
	if err != nil {
		t.Fatal(err)
	}
	// The handshake replays the stash after queueing its hello; this
	// hand-rolled link skips the hello, so replay directly.
	b.replaySalvaged(s2)
	for want := uint64(1); want <= n; want++ {
		e, err := cb2.Recv()
		if err != nil {
			t.Fatalf("replay recv: %v", err)
		}
		if e.Topic != "/sal/t" || e.ID != want {
			t.Fatalf("replayed event %d = %s id %d, want /sal/t id %d", want, e.Topic, e.ID, want)
		}
	}
	b.mu.RLock()
	_, still := b.relStash["peer-sal"]
	b.mu.RUnlock()
	if still {
		t.Fatal("relStash not drained after replay")
	}
}

// meshPair stands up two TCP-linked brokers with a mesh supervisor on
// the dialing side.
func meshPair(t *testing.T) (b1, b2 *Broker, mesh *Mesh) {
	t.Helper()
	b1 = newTestBroker(t, "m1")
	b2 = newTestBroker(t, "m2")
	l, err := b1.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mesh = NewMesh(b2, fastMeshConfig(l.Addr()))
	t.Cleanup(mesh.Stop)
	waitCondition(t, 5*time.Second, "mesh link up", func() bool {
		return b1.PeerCount() == 1 && b2.PeerCount() == 1
	})
	return b1, b2, mesh
}

// TestMeshLinkDropMidBurstReliable kills the peer link while a reliable
// stream is in flight: the unacked tail is salvaged, the supervisor
// redials, the salvage replays across the rejoined link, and the
// subscriber sees every event exactly once.
func TestMeshLinkDropMidBurstReliable(t *testing.T) {
	b1, b2, _ := meshPair(t)

	sub := localClient(t, b1, "rel-sub")
	s, err := sub.Subscribe("/mesh/rel", 1024)
	if err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "advertisement reaches m2", func() bool {
		return len(b2.matchSessions("/mesh/rel")) > 0
	})

	const half = 100
	pub := localClient(t, b2, "rel-pub")
	for i := 0; i < half; i++ {
		if err := pub.PublishReliable("/mesh/rel", event.KindChat, []byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the whole first half is on (or queued for) the peer
	// link, then cut it — whatever was not yet acked rides the salvage
	// stash.
	fwd := b2.Metrics().Counter("broker.peer.m1.forwarded")
	waitCondition(t, 5*time.Second, "first half forwarded", func() bool {
		return fwd.Value() >= half
	})
	ps := b2.peerSessionByID("m1")
	if ps == nil {
		t.Fatal("no peer session to kill")
	}
	ps.close()

	// The supervisor redials; the handshake snapshot re-syncs the
	// subscription before new traffic routes.
	waitCondition(t, 5*time.Second, "link re-established", func() bool {
		return b2.PeerCount() == 1 && len(b2.matchSessions("/mesh/rel")) > 0
	})
	for i := 0; i < half; i++ {
		if err := pub.PublishReliable("/mesh/rel", event.KindChat, []byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	seen := make(map[event.Key]int)
	deadline := time.Now().Add(10 * time.Second)
	for len(seen) < 2*half && time.Now().Before(deadline) {
		if e := tryRecv(s, 100*time.Millisecond); e != nil {
			seen[e.Key()]++
		}
	}
	if len(seen) != 2*half {
		t.Fatalf("subscriber saw %d distinct events, want %d", len(seen), 2*half)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("event %v delivered %d times, want exactly once", k, c)
		}
	}
}

// tryRecv returns one event from s or nil after the timeout.
func tryRecv(s *Subscription, within time.Duration) *event.Event {
	select {
	case e, ok := <-s.C():
		if !ok {
			return nil
		}
		return e
	case <-time.After(within):
		return nil
	}
}

// TestMeshPartitionHealResync: a subscription created while the mesh is
// partitioned converges to the far side once the supervisor heals the
// link, and the redial counters record the recovery.
func TestMeshPartitionHealResync(t *testing.T) {
	b1, b2, mesh := meshPair(t)

	// Partition.
	ps := b2.peerSessionByID("m1")
	if ps == nil {
		t.Fatal("no peer session")
	}
	ps.close()

	// Soft state changes on the far side during the partition.
	sub := localClient(t, b1, "heal-sub")
	s, err := sub.Subscribe("/mesh/heal", 64)
	if err != nil {
		t.Fatal(err)
	}

	// Heal: the supervisor redials and the handshake snapshot carries
	// the partition-era subscription across.
	waitCondition(t, 5*time.Second, "link heals and adv re-syncs", func() bool {
		return b2.PeerCount() == 1 && len(b2.matchSessions("/mesh/heal")) > 0
	})
	pub := localClient(t, b2, "heal-pub")
	if err := pub.Publish("/mesh/heal", event.KindChat, []byte("after-heal")); err != nil {
		t.Fatal(err)
	}
	e := recvOne(t, s, 5*time.Second)
	if string(e.Payload) != "after-heal" {
		t.Fatalf("payload %q", e.Payload)
	}

	if v := b2.Metrics().Counter("broker.mesh.redials").Value(); v < 1 {
		t.Fatalf("broker.mesh.redials = %d, want >= 1", v)
	}
	var linkRedials uint64
	for _, ls := range mesh.Links() {
		linkRedials += ls.Redials
	}
	if linkRedials < 1 {
		t.Fatalf("mesh link redial count = %d, want >= 1", linkRedials)
	}
}

// TestMeshTTLLoopGuard3Cycle: on a 3-broker cyclic client-server mesh
// in MeshFlood mode, an event reaches every subscriber exactly once —
// the origin-armed duplicate suppression (with the TTL decrement as
// backstop) kills the loop, and the redundant ring arrivals land in the
// dup counters instead of client queues. (Routed mode never produces
// the redundant copies in the first place; this exercises the safety
// net the ablation knob falls back to.)
func TestMeshTTLLoopGuard3Cycle(t *testing.T) {
	b1 := newTestBrokerCfg(t, Config{ID: "c1", MeshFlood: true})
	b2 := newTestBrokerCfg(t, Config{ID: "c2", MeshFlood: true})
	b3 := newTestBrokerCfg(t, Config{ID: "c3", MeshFlood: true})
	linkBrokers(t, b1, b2)
	linkBrokers(t, b2, b3)
	linkBrokers(t, b3, b1)

	subs := make([]*Subscription, 0, 3)
	for i, b := range []*Broker{b1, b2, b3} {
		c := localClient(t, b, fmt.Sprintf("loop-sub-%d", i))
		s, err := c.Subscribe("/loop/t", 64)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	// Every broker must see three targets: its local subscriber plus
	// both peers advertising theirs.
	for _, b := range []*Broker{b1, b2, b3} {
		b := b
		waitCondition(t, 5*time.Second, "advertisements converge", func() bool {
			return len(b.matchSessions("/loop/t")) == 3
		})
	}

	pub := localClient(t, b1, "loop-pub")
	if err := pub.Publish("/loop/t", event.KindChat, []byte("once-around")); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		e := recvOne(t, s, 5*time.Second)
		if string(e.Payload) != "once-around" {
			t.Fatalf("sub %d payload %q", i, e.Payload)
		}
	}
	// The cycle produced redundant arrivals; they must have been
	// absorbed broker-side, never delivered. The second-hop copies may
	// still be in flight when the subscribers report, so poll.
	waitCondition(t, 5*time.Second, "ring duplicates absorbed", func() bool {
		var dups uint64
		for _, b := range []*Broker{b1, b2, b3} {
			dups += b.Metrics().Counter("broker.duplicates").Value()
		}
		return dups > 0
	})
	for _, s := range subs {
		expectNone(t, s, 200*time.Millisecond)
	}
}

// TestMeshCloseDuringForward churns the peer link while a publisher
// floods through it — the close/detach/salvage/redial path racing the
// staged forwarding path, for the race detector.
func TestMeshCloseDuringForward(t *testing.T) {
	b1, b2, _ := meshPair(t)

	sub := localClient(t, b1, "churn-sub")
	if _, err := sub.Subscribe("/mesh/churn", 1024); err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "advertisement reaches m2", func() bool {
		return len(b2.matchSessions("/mesh/churn")) > 0
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var published atomic.Uint64
	pub := localClient(t, b2, "churn-pub")
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := pub.Publish("/mesh/churn", event.KindRTP, []byte("churn")); err != nil {
				return
			}
			published.Add(1)
		}
	}()

	for i := 0; i < 5; i++ {
		waitCondition(t, 5*time.Second, "link up", func() bool {
			return b2.PeerCount() == 1
		})
		if ps := b2.peerSessionByID("m1"); ps != nil {
			ps.close()
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if published.Load() == 0 {
		t.Fatal("publisher made no progress")
	}
	waitCondition(t, 5*time.Second, "link settles", func() bool {
		return b2.PeerCount() == 1
	})
}

// TestAckSlotCoalesces: consecutive cumulative acks deposited while the
// writer is busy collapse into the pending slot — the writer emits one
// ack event carrying the newest floor, ahead of both lanes.
func TestAckSlotCoalesces(t *testing.T) {
	q := newSendQueue(8)
	q.pushReliable(event.New("/x", event.KindChat, nil))
	q.pushAck(3)
	q.pushAck(7)
	q.pushAck(5)

	it, st := q.tryPop()
	if st != popOK || it.e == nil {
		t.Fatalf("tryPop = %v, %v", it, st)
	}
	if it.e.Topic != topicAck {
		t.Fatalf("first drained item is %q, want the pending ack", it.e.Topic)
	}
	if !it.reliable {
		t.Fatal("ack must ride the reliable (flush-now) lane")
	}
	if got := it.e.Headers[hdrRSeq]; got != "7" {
		t.Fatalf("coalesced ack floor = %s, want 7 (the max)", got)
	}
	if n := q.ackCoalesceCount(); n != 2 {
		t.Fatalf("acksCoalesced = %d, want 2", n)
	}
	// The reliable event queued before the acks follows.
	it, st = q.tryPop()
	if st != popOK || it.e == nil || it.e.Topic != "/x" {
		t.Fatalf("second item = %v, %v", it, st)
	}
	if _, st = q.tryPop(); st != popEmpty {
		t.Fatalf("queue not drained: %v", st)
	}
}

// TestRouteCachePerPatternInvalidation: a trie mutation drops only the
// cache entries whose topics the mutated pattern matches; unrelated
// entries in the same shard are re-stamped and keep serving from cache.
func TestRouteCachePerPatternInvalidation(t *testing.T) {
	b := New(Config{ID: "cache-inv", RouteShards: 1})
	defer b.Stop()
	r := b.router

	s1 := newSession(b, newCaptureConn(), "cache-s1", false)
	if err := r.add("/a/one", s1); err != nil {
		t.Fatal(err)
	}
	if err := r.add("/b/keep", s1); err != nil {
		t.Fatal(err)
	}
	r.match("/a/one")
	r.match("/b/keep")

	entry := func(topic string) (routeEntry, bool) {
		c := &r.caches[0]
		c.mu.RLock()
		defer c.mu.RUnlock()
		ent, ok := c.entries[topic]
		return ent, ok
	}

	// Removing /a/one must evict exactly the entries it matches.
	r.remove("/a/one", s1)
	if _, ok := entry("/a/one"); ok {
		t.Fatal("cache entry /a/one survived removal of its pattern")
	}
	ent, ok := entry("/b/keep")
	if !ok {
		t.Fatal("unrelated cache entry /b/keep was evicted")
	}
	if ent.epoch != r.subs.EpochAt(0) {
		t.Fatalf("surviving entry not re-stamped: epoch %d, shard epoch %d",
			ent.epoch, r.subs.EpochAt(0))
	}
	// The re-stamped entry still serves (a match returns its targets
	// without a trie walk changing the entry).
	if got := r.match("/b/keep"); len(got) != 1 || got[0] != s1 {
		t.Fatalf("match(/b/keep) = %v", got)
	}

	// A wildcard-first mutation matches everything and clears the shard.
	s2 := newSession(b, newCaptureConn(), "cache-s2", false)
	if err := r.add("/#", s2); err != nil {
		t.Fatal(err)
	}
	if _, ok := entry("/b/keep"); ok {
		t.Fatal("wildcard mutation left a matching cache entry behind")
	}
}
