package broker

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

func newTestBroker(t *testing.T, id string) *Broker {
	t.Helper()
	b := New(Config{ID: id})
	t.Cleanup(b.Stop)
	return b
}

func newTestBrokerCfg(t *testing.T, cfg Config) *Broker {
	t.Helper()
	b := New(cfg)
	t.Cleanup(b.Stop)
	return b
}

func localClient(t *testing.T, b *Broker, id string) *Client {
	t.Helper()
	c, err := b.LocalClient(id, transport.LinkProfile{})
	if err != nil {
		t.Fatalf("LocalClient(%s): %v", id, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func recvOne(t *testing.T, sub *Subscription, within time.Duration) *event.Event {
	t.Helper()
	select {
	case e, ok := <-sub.C():
		if !ok {
			t.Fatal("subscription channel closed")
		}
		return e
	case <-time.After(within):
		t.Fatalf("no event within %v on %s", within, sub.Pattern())
		return nil
	}
}

func expectNone(t *testing.T, sub *Subscription, within time.Duration) {
	t.Helper()
	select {
	case e := <-sub.C():
		t.Fatalf("unexpected event %v", e)
	case <-time.After(within):
	}
}

func TestSingleBrokerPubSub(t *testing.T) {
	b := newTestBroker(t, "b1")
	pub := localClient(t, b, "pub")
	sub := localClient(t, b, "sub")

	s, err := sub.Subscribe("/room/1/chat", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("/room/1/chat", event.KindChat, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	e := recvOne(t, s, 2*time.Second)
	if string(e.Payload) != "hi" || e.Source != "pub" {
		t.Fatalf("got %v", e)
	}
}

func TestPublisherDoesNotReceiveOwnEvents(t *testing.T) {
	b := newTestBroker(t, "b1")
	c := localClient(t, b, "c1")
	s, err := c.Subscribe("/t/x", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("/t/x", event.KindData, []byte("self")); err != nil {
		t.Fatal(err)
	}
	// NaradaBrokering-style pub/sub delivers to all subscribers including
	// the publisher's own subscriptions — verify we DO receive it (loopback
	// via broker, not suppressed).
	e := recvOne(t, s, 2*time.Second)
	if string(e.Payload) != "self" {
		t.Fatalf("got %v", e)
	}
}

func TestWildcardSubscription(t *testing.T) {
	b := newTestBroker(t, "b1")
	pub := localClient(t, b, "pub")
	sub := localClient(t, b, "sub")
	s, err := sub.Subscribe("/xgsp/session/*/video", 16)
	if err != nil {
		t.Fatal(err)
	}
	all, err := sub.Subscribe("/xgsp/#", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("/xgsp/session/42/video", event.KindRTP, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if e := recvOne(t, s, 2*time.Second); e.Topic != "/xgsp/session/42/video" {
		t.Fatalf("wildcard sub got %v", e)
	}
	if e := recvOne(t, all, 2*time.Second); e.Topic != "/xgsp/session/42/video" {
		t.Fatalf("rest sub got %v", e)
	}
	if err := pub.Publish("/xgsp/session/42/audio", event.KindRTP, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if e := recvOne(t, all, 2*time.Second); e.Topic != "/xgsp/session/42/audio" {
		t.Fatalf("rest sub got %v", e)
	}
	expectNone(t, s, 100*time.Millisecond)
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := newTestBroker(t, "b1")
	pub := localClient(t, b, "pub")
	sub := localClient(t, b, "sub")
	s, err := sub.Subscribe("/t/u", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Unsubscribe(s); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-s.C(); ok {
		t.Fatal("channel should be closed after unsubscribe")
	}
	if err := pub.Publish("/t/u", event.KindData, nil); err != nil {
		t.Fatal(err)
	}
	// No panic, no delivery; unroutable counter bumps.
	time.Sleep(50 * time.Millisecond)
	if got := b.Metrics().Counter("broker.events_unroutable").Value(); got == 0 {
		t.Fatal("expected unroutable counter to increase")
	}
}

func TestReservedTopicsRejected(t *testing.T) {
	b := newTestBroker(t, "b1")
	c := localClient(t, b, "c1")
	if _, err := c.Subscribe("/_nb/hello", 4); err == nil {
		t.Fatal("subscribe to reserved namespace succeeded")
	}
	if err := c.Publish("/_nb/sub", event.KindData, nil); err == nil {
		t.Fatal("publish to reserved namespace succeeded")
	}
}

func TestInvalidPatternRejected(t *testing.T) {
	b := newTestBroker(t, "b1")
	c := localClient(t, b, "c1")
	if _, err := c.Subscribe("nope", 4); err == nil {
		t.Fatal("invalid pattern accepted")
	}
}

func TestFanout400(t *testing.T) {
	b := newTestBroker(t, "b1")
	pub := localClient(t, b, "pub")
	const n = 400
	subs := make([]*Subscription, n)
	for i := range n {
		c := localClient(t, b, fmt.Sprintf("r%d", i))
		s, err := c.Subscribe("/media/video", 64)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	if err := pub.Publish("/media/video", event.KindRTP, []byte("frame")); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		e := recvOne(t, s, 5*time.Second)
		if string(e.Payload) != "frame" {
			t.Fatalf("receiver %d got %v", i, e)
		}
	}
}

func TestReliableDeliveryOverLossyLink(t *testing.T) {
	b := New(Config{ID: "b1", RetransmitInterval: 30 * time.Millisecond})
	defer b.Stop()
	pub, err := b.LocalClient("pub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	// 40% loss on broker→subscriber direction.
	sub, err := b.LocalClient("sub", transport.LinkProfile{Loss: 0.4, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	s, err := sub.Subscribe("/sig/control", 64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := range n {
		if err := pub.PublishReliable("/sig/control", event.KindControl, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[byte]bool)
	deadline := time.After(10 * time.Second)
	for len(got) < n {
		select {
		case e := <-s.C():
			got[e.Payload[0]] = true
		case <-deadline:
			t.Fatalf("only %d/%d reliable events delivered over lossy link", len(got), n)
		}
	}
}

func TestBestEffortMayDropOnSlowConsumer(t *testing.T) {
	b := New(Config{ID: "b1", QueueDepth: 8})
	defer b.Stop()
	pub, err := b.LocalClient("pub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := b.LocalClient("sub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	s, err := sub.Subscribe("/media/x", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Flood without consuming; client-side buffer is 2, so drops must occur.
	for i := range 1000 {
		if err := pub.Publish("/media/x", event.KindRTP, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	if s.Drops() == 0 && b.Metrics().Counter("broker.queue_drops").Value() == 0 {
		t.Fatal("expected drops somewhere under 1000-event flood with depth 2")
	}
}

func TestClientCloseClosesSubscriptions(t *testing.T) {
	b := newTestBroker(t, "b1")
	c := localClient(t, b, "c1")
	s, err := c.Subscribe("/t/y", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-s.C():
		if ok {
			t.Fatal("expected closed channel")
		}
	case <-time.After(time.Second):
		t.Fatal("channel not closed after client close")
	}
	select {
	case <-c.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed")
	}
	if err := c.Publish("/t/y", event.KindData, nil); err == nil {
		t.Fatal("publish after close succeeded")
	}
}

func TestDuplicateClientIDSupersedes(t *testing.T) {
	b := newTestBroker(t, "b1")
	c1 := localClient(t, b, "same")
	_, err := c1.Subscribe("/t/z", 4)
	if err != nil {
		t.Fatal(err)
	}
	c2 := localClient(t, b, "same")
	// The first client's connection should be torn down.
	select {
	case <-c1.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("old session not closed on id reuse")
	}
	s2, err := c2.Subscribe("/t/z", 4)
	if err != nil {
		t.Fatal(err)
	}
	pub := localClient(t, b, "pub")
	if err := pub.Publish("/t/z", event.KindData, []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, s2, 2*time.Second)
}

func TestBrokerOverTCP(t *testing.T) {
	b := newTestBroker(t, "b1")
	l, err := b.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Dial(l.Addr(), "tcp-sub")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := Dial(l.Addr(), "tcp-pub")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	s, err := sub.Subscribe("/tcp/topic", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("/tcp/topic", event.KindData, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	e := recvOne(t, s, 2*time.Second)
	if string(e.Payload) != "over tcp" {
		t.Fatalf("got %v", e)
	}
}

func TestBrokerStopTerminatesClients(t *testing.T) {
	b := New(Config{ID: "b1"})
	c, err := b.LocalClient("c1", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	b.Stop()
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("client not disconnected by broker stop")
	}
	if _, err := b.LocalClient("c2", transport.LinkProfile{}); err == nil {
		t.Fatal("LocalClient after Stop succeeded")
	}
	// Stop is idempotent.
	b.Stop()
}

func TestPublishValidation(t *testing.T) {
	b := newTestBroker(t, "b1")
	c := localClient(t, b, "c1")
	if err := c.Publish("no-slash", event.KindData, nil); err == nil {
		t.Fatal("invalid topic accepted")
	}
	e := event.New("/t", 0, nil) // invalid kind
	if err := c.PublishEvent(e); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestBrokerPublishDirect(t *testing.T) {
	b := newTestBroker(t, "b1")
	sub := localClient(t, b, "sub")
	s, err := sub.Subscribe("/direct", 4)
	if err != nil {
		t.Fatal(err)
	}
	e := event.New("/direct", event.KindData, []byte("from broker"))
	e.Source, e.ID = "broker-injected", 1
	if err := b.Publish(e); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, s, 2*time.Second); string(got.Payload) != "from broker" {
		t.Fatalf("got %v", got)
	}
	if err := b.Publish(event.New("/_nb/x", event.KindData, nil)); err == nil {
		t.Fatal("reserved publish accepted")
	}
}

func TestSubscribeDuplicatePatternBothDeliver(t *testing.T) {
	b := newTestBroker(t, "b1")
	pub := localClient(t, b, "pub")
	sub := localClient(t, b, "sub")
	s1, err := sub.Subscribe("/dup", 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sub.Subscribe("/dup", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("/dup", event.KindData, []byte("d")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, s1, 2*time.Second)
	recvOne(t, s2, 2*time.Second)
	// Unsubscribing one keeps the other alive.
	if err := sub.Unsubscribe(s1); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("/dup", event.KindData, []byte("d2")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, s2, 2*time.Second)
}

func TestAttachEmptyIDRejected(t *testing.T) {
	a, _ := transport.Pipe("x", "y")
	if _, err := Attach(a, ""); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestDialBadURL(t *testing.T) {
	if _, err := Dial("bogus://x", "id"); err == nil {
		t.Fatal("bad url accepted")
	}
	var errClosed = errors.New("sentinel")
	_ = errClosed
}

func TestRouteCacheInvalidatedOnSubscriptionChange(t *testing.T) {
	b := newTestBroker(t, "cache")
	// Publish with no subscribers through the broker's synchronous entry
	// point so the (empty) route is definitely cached before the
	// subscription below arrives.
	prime := event.New("/cache/t", event.KindData, nil)
	prime.Source, prime.ID = "pub", 1
	if err := b.Publish(prime); err != nil {
		t.Fatal(err)
	}
	// A subscription arriving afterwards must invalidate the cache.
	sub := localClient(t, b, "sub")
	s, err := sub.Subscribe("/cache/t", 4)
	if err != nil {
		t.Fatal(err)
	}
	fresh := event.New("/cache/t", event.KindData, []byte("fresh"))
	fresh.Source, fresh.ID = "pub", 2
	if err := b.Publish(fresh); err != nil {
		t.Fatal(err)
	}
	if e := recvOne(t, s, 2*time.Second); string(e.Payload) != "fresh" {
		t.Fatalf("got %v", e)
	}
	// And unsubscribe must invalidate again.
	if err := sub.Unsubscribe(s); err != nil {
		t.Fatal(err)
	}
	gone := event.New("/cache/t", event.KindData, []byte("gone"))
	gone.Source, gone.ID = "pub", 3
	if err := b.Publish(gone); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // nothing should arrive; channel closed anyway
}

func TestDisableRouteCacheStillRoutes(t *testing.T) {
	b := New(Config{ID: "nocache", DisableRouteCache: true})
	defer b.Stop()
	pub, err := b.LocalClient("pub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	subC, err := b.LocalClient("sub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer subC.Close()
	s, err := subC.Subscribe("/nc/t", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range 5 {
		if err := pub.Publish("/nc/t", event.KindData, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		recvOne(t, s, 2*time.Second)
	}
}
