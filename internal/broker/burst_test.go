package broker

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

func burstEvent(id uint64, topic string) *event.Event {
	e := event.New(topic, event.KindRTP, []byte("burst-payload"))
	e.Source = "burst-pub"
	e.ID = id
	return e
}

// TestRouteBatchSingleLockPerSession is the batching contract in one
// assertion: routing a burst of K events to N subscriber sessions takes
// one producer-side queue lock acquisition per session — not K — as
// counted by the queue's instrumented mutex.
func TestRouteBatchSingleLockPerSession(t *testing.T) {
	b := New(Config{ID: "lock-burst"})
	defer b.Stop()

	const subscribers = 64
	const burst = 16
	sessions := make([]*session, 0, subscribers)
	for i := 0; i < subscribers; i++ {
		// Sessions are hand-attached (no goroutines) so only the routing
		// sweep touches their queues.
		s := newSession(b, newCaptureConn(), fmt.Sprintf("lock-sub-%d", i), false)
		if err := b.router.add("/lock/t", s); err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}

	events := make([]*event.Event, burst)
	for i := range events {
		events[i] = burstEvent(uint64(i+1), "/lock/t")
	}
	sweep := b.newRouteSweep()
	sweep.routeBatch(events, nil)

	for i, s := range sessions {
		if locks := s.queue.pushLockCount(); locks != 1 {
			t.Fatalf("session %d: %d push lock acquisitions for one burst, want 1", i, locks)
		}
		if depth := s.queue.depth(); depth != burst {
			t.Fatalf("session %d: queue depth %d, want %d", i, depth, burst)
		}
	}

	// A second burst costs exactly one more acquisition per session.
	sweep.routeBatch(events, nil)
	for i, s := range sessions {
		if locks := s.queue.pushLockCount(); locks != 2 {
			t.Fatalf("session %d: %d push locks after two bursts, want 2", i, locks)
		}
	}
}

// TestReliableFanoutEncodeOnce: fanning a reliable event out to K framed
// sessions performs exactly one marshal — every target gets an
// rseq-patched copy of the shared encoding, not a clone+marshal.
func TestReliableFanoutEncodeOnce(t *testing.T) {
	b := New(Config{ID: "rel-once"})
	defer b.Stop()

	const fanout = 64
	sessions := make([]*session, 0, fanout)
	for i := 0; i < fanout; i++ {
		s := newSession(b, newCaptureConn(), fmt.Sprintf("rel-sub-%d", i), false)
		if err := b.router.add("/rel/t", s); err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}

	e := burstEvent(1, "/rel/t")
	e.Reliable = true
	before := event.MarshalCalls()
	b.route(e, nil)
	if d := event.MarshalCalls() - before; d != 1 {
		t.Fatalf("reliable fan-out to %d framed sessions marshalled %d times, want 1", fanout, d)
	}

	for i, s := range sessions {
		it, st := s.queue.tryPop()
		if st != popOK {
			t.Fatalf("session %d: no queued reliable item", i)
		}
		if it.frame == nil {
			t.Fatalf("session %d: reliable item is not frame-backed", i)
		}
		if got := it.frame.RSeq(); got != 1 {
			t.Fatalf("session %d: frame rseq %d, want 1", i, got)
		}
		dec, err := it.frame.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if dec.Topic != "/rel/t" || !dec.Reliable || dec.RSeq != 1 {
			t.Fatalf("session %d: decoded %+v", i, dec)
		}
	}

	// The batch path shares the same single encoding.
	e2 := burstEvent(2, "/rel/t")
	e2.Reliable = true
	before = event.MarshalCalls()
	b.newRouteSweep().routeBatch([]*event.Event{e2}, nil)
	if d := event.MarshalCalls() - before; d != 1 {
		t.Fatalf("routeBatch reliable fan-out marshalled %d times, want 1", d)
	}
}

// TestReliableFanoutEncodeOncePeers: reliable fan-out to framed *peer*
// links stays O(1) marshals — the TTL decrement is a header patch on the
// shared rseq-slot encoding, and each peer gets an 8-byte rseq patch.
func TestReliableFanoutEncodeOncePeers(t *testing.T) {
	b := New(Config{ID: "rel-peers"})
	defer b.Stop()

	const peers = 8
	sessions := make([]*session, 0, peers)
	for i := 0; i < peers; i++ {
		s := newSession(b, newCaptureConn(), fmt.Sprintf("rel-peer-%d", i), true)
		if err := b.router.add("/rel/p", s); err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}

	e := burstEvent(3, "/rel/p")
	e.Reliable = true
	e.TTL = 9
	before := event.MarshalCalls()
	b.route(e, nil)
	if d := event.MarshalCalls() - before; d != 1 {
		t.Fatalf("reliable fan-out to %d framed peers marshalled %d times, want 1", peers, d)
	}
	for i, s := range sessions {
		it, st := s.queue.tryPop()
		if st != popOK || it.frame == nil {
			t.Fatalf("peer %d: missing frame-backed reliable item", i)
		}
		dec, err := it.frame.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if dec.TTL != 8 {
			t.Fatalf("peer %d: TTL %d, want 8 (decremented)", i, dec.TTL)
		}
		if dec.RSeq != 1 {
			t.Fatalf("peer %d: rseq %d, want 1", i, dec.RSeq)
		}
	}
}

// lossyListener shapes every accepted conn with the given profile,
// emulating an unreliable link on the broker→client direction while the
// conn stays framed (the configuration the rseq-patched reliable plane
// must survive).
type lossyListener struct {
	transport.Listener
	profile transport.LinkProfile
}

func (l *lossyListener) Accept() (transport.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return transport.Shape(c, l.profile), nil
}

// TestReliableRSeqPatchedLossLink: rseq-patched reliable frames
// retransmit and ack correctly across a framed link that drops frames.
// Every event arrives exactly once, via retransmission.
func TestReliableRSeqPatchedLossLink(t *testing.T) {
	b := New(Config{
		ID:                 "loss-broker",
		RetransmitInterval: 20 * time.Millisecond,
		MaxRetransmits:     100,
	})
	defer b.Stop()
	inner, err := transport.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.Serve(&lossyListener{Listener: inner, profile: transport.LinkProfile{Loss: 0.3, Seed: 42}})

	c, err := Dial(inner.Addr(), "loss-client")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe("/loss/t", 256)
	if err != nil {
		t.Fatal(err)
	}

	const n = 50
	for i := 1; i <= n; i++ {
		e := event.New("/loss/t", event.KindControl, []byte("reliable"))
		e.Reliable = true
		e.Source = "loss-pub"
		e.ID = uint64(i)
		if err := b.Publish(e); err != nil {
			t.Fatal(err)
		}
	}

	seen := make(map[uint64]int)
	deadline := time.After(20 * time.Second)
	for len(seen) < n {
		select {
		case e := <-sub.C():
			seen[e.ID]++
		case <-deadline:
			t.Fatalf("only %d/%d reliable events arrived over the lossy link", len(seen), n)
		}
	}
	for id, count := range seen {
		if count != 1 {
			t.Fatalf("event %d delivered %d times, want exactly once", id, count)
		}
	}
	if b.Metrics().Counter("broker.retransmits").Value() == 0 {
		t.Fatal("no retransmissions recorded on a 30%-loss link")
	}
}

// TestBurstControlOrdering: a control request arriving mid-burst is
// applied in order relative to the data events around it (the sweep is
// flushed before the control event is handled).
func TestBurstControlOrdering(t *testing.T) {
	b := New(Config{ID: "order-burst"})
	defer b.Stop()

	sub, err := b.LocalClient("order-sub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	s, err := sub.Subscribe("/order/t", 64)
	if err != nil {
		t.Fatal(err)
	}

	// One conn delivers publish+unsubscribe-shaped interleavings: publish
	// A, subscribe to a second topic, publish B to it. If control were
	// deferred past the whole burst, B would race its own subscription.
	pub, err := b.LocalClient("order-pub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := 1; i <= 8; i++ {
		if err := pub.Publish("/order/t", event.KindData, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	timeout := time.After(5 * time.Second)
	for got < 8 {
		select {
		case <-s.C():
			got++
		case <-timeout:
			t.Fatalf("only %d/8 events delivered", got)
		}
	}
}

// TestBurstIngestDisabled: IngestBurst 1 degenerates to the event-at-a-
// time path and still delivers everything (the ablation configuration
// the ingest benchmark uses as its baseline).
func TestBurstIngestDisabled(t *testing.T) {
	b := New(Config{ID: "noburst", IngestBurst: 1})
	defer b.Stop()
	sub, err := b.LocalClient("nb-sub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	s, err := sub.Subscribe("/nb/t", 64)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := b.LocalClient("nb-pub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	got := 0
	go func() {
		defer wg.Done()
		timeout := time.After(5 * time.Second)
		for got < 16 {
			select {
			case <-s.C():
				got++
			case <-timeout:
				return
			}
		}
	}()
	for i := 0; i < 16; i++ {
		if err := pub.Publish("/nb/t", event.KindData, []byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got != 16 {
		t.Fatalf("delivered %d/16 with IngestBurst=1", got)
	}
}
