package broker

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// MeshConfig parameterises a broker's federation mesh: the declarative
// peer set plus the link-supervision knobs. The zero value is usable;
// NewMesh fills defaults.
type MeshConfig struct {
	// Peers is the initial set of peer broker URLs to maintain links to.
	Peers []string
	// HeartbeatInterval is how often an idle supervised link is probed
	// with a peer-hello heartbeat. Default 1s.
	HeartbeatInterval time.Duration
	// HeartbeatMiss is how many silent intervals mark a link partitioned
	// (any inbound traffic counts as liveness, not just heartbeat
	// replies). Default 3.
	HeartbeatMiss int
	// RedialMin is the initial redial backoff after a link drops.
	// Default 100ms.
	RedialMin time.Duration
	// RedialMax caps the exponential redial backoff. Default 5s.
	RedialMax time.Duration
}

func (c MeshConfig) withDefaults() MeshConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 3
	}
	if c.RedialMin <= 0 {
		c.RedialMin = 100 * time.Millisecond
	}
	if c.RedialMax < c.RedialMin {
		c.RedialMax = 5 * time.Second
		if c.RedialMax < c.RedialMin {
			c.RedialMax = c.RedialMin
		}
	}
	return c
}

// Link supervision states, as reported by Mesh.Links.
const (
	LinkDialing = "dialing"
	LinkUp      = "up"
	LinkBackoff = "backoff"
	LinkStandby = "standby" // yielded to the canonical link the peer dialed
	LinkStopped = "stopped"
)

// LinkStatus is one supervised link's externally visible state.
type LinkStatus struct {
	// URL is the configured peer address.
	URL string
	// RemoteID is the peer broker's identity, once learned ("" before the
	// first successful handshake).
	RemoteID string
	// State is one of the Link* constants.
	State string
	// Redials counts dial attempts after the first (both retries while a
	// peer is unreachable and re-establishments after a drop).
	Redials uint64
}

// Mesh supervises a broker's peer links: it owns mesh membership as a
// declarative set of peer URLs and runs one supervisor goroutine per
// link, dialing, detecting partitions via heartbeats, and redialing with
// exponential backoff and jitter. Advertisement re-sync on reconnect
// falls out of the handshake (snapshot exchange) plus the broker's
// salvage stash, so a healed link converges without mesh involvement.
//
// The mesh deliberately sits outside the broker's data plane: once a
// link is up, forwarded bursts ride the same staged batch path as client
// deliveries and never touch mesh state.
type Mesh struct {
	b   *Broker
	cfg MeshConfig

	mu     sync.Mutex
	links  map[string]*meshLink
	closed bool
	wg     sync.WaitGroup
}

// NewMesh creates a mesh supervisor for b and starts links to
// cfg.Peers. Stop it with Stop; reshape it anytime with SetPeers.
func NewMesh(b *Broker, cfg MeshConfig) *Mesh {
	m := &Mesh{
		b:     b,
		cfg:   cfg.withDefaults(),
		links: make(map[string]*meshLink),
	}
	m.SetPeers(m.cfg.Peers)
	return m
}

// SetPeers reconciles the supervised link set against urls: missing
// links are started, links no longer listed are torn down. Idempotent.
func (m *Mesh) SetPeers(urls []string) {
	want := make(map[string]struct{}, len(urls))
	for _, u := range urls {
		if u != "" {
			want[u] = struct{}{}
		}
	}
	var stop []*meshLink
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	for u, l := range m.links {
		if _, keep := want[u]; !keep {
			delete(m.links, u)
			stop = append(stop, l)
		}
	}
	for u := range want {
		if _, ok := m.links[u]; ok {
			continue
		}
		l := newMeshLink(m, u)
		m.links[u] = l
		m.wg.Add(1)
		go l.supervise()
	}
	m.mu.Unlock()
	for _, l := range stop {
		l.stop()
	}
}

// AddPeer starts supervising one more peer URL.
func (m *Mesh) AddPeer(url string) {
	m.mu.Lock()
	if m.closed || url == "" {
		m.mu.Unlock()
		return
	}
	if _, ok := m.links[url]; ok {
		m.mu.Unlock()
		return
	}
	l := newMeshLink(m, url)
	m.links[url] = l
	m.wg.Add(1)
	go l.supervise()
	m.mu.Unlock()
}

// RemovePeer stops supervising a peer URL and tears down its link.
func (m *Mesh) RemovePeer(url string) {
	m.mu.Lock()
	l, ok := m.links[url]
	if ok {
		delete(m.links, url)
	}
	m.mu.Unlock()
	if ok {
		l.stop()
	}
}

// Links reports every supervised link's status, sorted by URL order of
// the internal map (callers wanting stable output should sort).
func (m *Mesh) Links() []LinkStatus {
	m.mu.Lock()
	links := make([]*meshLink, 0, len(m.links))
	for _, l := range m.links {
		links = append(links, l)
	}
	m.mu.Unlock()
	out := make([]LinkStatus, 0, len(links))
	for _, l := range links {
		out = append(out, l.status())
	}
	return out
}

// Stop tears down every supervised link and waits for the supervisors.
func (m *Mesh) Stop() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	links := make([]*meshLink, 0, len(m.links))
	for _, l := range m.links {
		links = append(links, l)
	}
	m.links = make(map[string]*meshLink)
	m.mu.Unlock()
	for _, l := range links {
		l.stop()
	}
	m.wg.Wait()
}

// meshLink supervises one peer URL through the dial → up → backoff
// cycle (with a standby leg when the peer holds the canonical link).
type meshLink struct {
	m   *Mesh
	url string

	done     chan struct{}
	stopOnce sync.Once

	mu       sync.Mutex
	remoteID string
	state    string
	redials  uint64
	sess     *session
}

func newMeshLink(m *Mesh, url string) *meshLink {
	return &meshLink{m: m, url: url, done: make(chan struct{}), state: LinkDialing}
}

func (l *meshLink) stop() {
	l.stopOnce.Do(func() { close(l.done) })
	l.mu.Lock()
	s := l.sess
	l.state = LinkStopped
	l.mu.Unlock()
	if s != nil {
		s.close()
	}
}

func (l *meshLink) status() LinkStatus {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LinkStatus{URL: l.url, RemoteID: l.remoteID, State: l.state, Redials: l.redials}
}

func (l *meshLink) setState(state string) {
	l.mu.Lock()
	l.state = state
	l.mu.Unlock()
}

func (l *meshLink) stopped() bool {
	select {
	case <-l.done:
		return true
	default:
		return false
	}
}

// supervise is the link's state machine. One iteration is one dial
// attempt (or one standby period); the session monitor runs inline so a
// link never has more than one goroutine.
func (l *meshLink) supervise() {
	defer l.m.wg.Done()
	b := l.m.b
	cfg := l.m.cfg
	backoff := cfg.RedialMin
	attempts := 0
	for {
		if l.stopped() {
			l.setState(LinkStopped)
			return
		}
		// If the peer already holds the canonical link to us (it dialed,
		// we accepted, and the duplicate-link tie-break kept its
		// direction), don't fight it: stand by until that session dies,
		// then race to redial.
		l.mu.Lock()
		remoteID := l.remoteID
		l.mu.Unlock()
		if remoteID != "" {
			if s := b.peerSessionByID(remoteID); s != nil && !s.dialed {
				l.setState(LinkStandby)
				select {
				case <-l.done:
					l.setState(LinkStopped)
					return
				case <-s.closedCh:
					backoff = cfg.RedialMin
					continue
				}
			}
		}
		l.setState(LinkDialing)
		if attempts > 0 {
			l.noteRedial()
		}
		attempts++
		s, err := l.dial()
		if err != nil {
			var dup *duplicatePeerLinkError
			if errors.As(err, &dup) {
				// Learned who lives there; the next iteration stands by on
				// the canonical link instead of backing off blind.
				l.mu.Lock()
				l.remoteID = dup.remoteID
				l.mu.Unlock()
				continue
			}
			l.setState(LinkBackoff)
			if !l.sleep(jitter(backoff)) {
				l.setState(LinkStopped)
				return
			}
			backoff *= 2
			if backoff > cfg.RedialMax {
				backoff = cfg.RedialMax
			}
			continue
		}
		backoff = cfg.RedialMin
		l.mu.Lock()
		l.remoteID = s.id
		l.sess = s
		l.state = LinkUp
		l.mu.Unlock()
		again := l.monitor(s)
		l.mu.Lock()
		l.sess = nil
		l.mu.Unlock()
		if !again {
			l.setState(LinkStopped)
			return
		}
	}
}

func (l *meshLink) dial() (*session, error) {
	conn, err := transport.Dial(l.url)
	if err != nil {
		return nil, err
	}
	return l.m.b.connectPeerConn(conn)
}

// monitor watches an up link: every heartbeat interval it checks the
// session's last-receive clock (any inbound traffic is liveness — a
// saturated media link never needs a heartbeat) and probes idle links
// with a best-effort ping the acceptor answers with a pong. A link
// silent for HeartbeatMiss intervals is declared partitioned and closed,
// which feeds the redial leg. Returns false when the mesh is stopping.
func (l *meshLink) monitor(s *session) bool {
	cfg := l.m.cfg
	ticker := time.NewTicker(cfg.HeartbeatInterval)
	defer ticker.Stop()
	deadline := time.Duration(cfg.HeartbeatMiss) * cfg.HeartbeatInterval
	for {
		select {
		case <-l.done:
			s.close()
			return false
		case <-s.closedCh:
			return true
		case <-ticker.C:
			if time.Since(s.lastRecvTime()) > deadline {
				s.close()
				return true
			}
			s.queue.pushBestEffort(peerHeartbeatEvent(hbPing), nil)
		}
	}
}

// noteRedial bumps the link's redial counters: the mesh-wide counter,
// the per-peer counter once the peer's identity is known, and the
// link-local count surfaced by Links.
func (l *meshLink) noteRedial() {
	l.mu.Lock()
	l.redials++
	remoteID := l.remoteID
	l.mu.Unlock()
	reg := l.m.b.metrics()
	reg.Counter("broker.mesh.redials").Inc()
	if remoteID != "" {
		reg.Counter("broker.peer." + remoteID + ".redials").Inc()
	}
}

// sleep waits d or until the link stops, reporting whether to continue.
func (l *meshLink) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-l.done:
		return false
	case <-t.C:
		return true
	}
}

// jitter spreads a backoff over [d/2, d) so a rebooting mesh's
// supervisors don't thundering-herd the surviving brokers.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half))
}
