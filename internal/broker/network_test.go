package broker

import (
	"fmt"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// linkBrokers connects two brokers over an in-process pipe.
func linkBrokers(t *testing.T, a, b *Broker) {
	t.Helper()
	ca, cb := transport.Pipe(b.ID(), a.ID())
	done := make(chan error, 1)
	go func() {
		b.AcceptConn(cb)
		done <- nil
	}()
	if err := a.ConnectPeerConn(ca); err != nil {
		t.Fatalf("ConnectPeerConn(%s->%s): %v", a.ID(), b.ID(), err)
	}
	if err := <-done; err != nil {
		t.Fatalf("accept side: %v", err)
	}
}

func waitCondition(t *testing.T, within time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition %q not reached within %v", what, within)
}

func TestTwoBrokerRouting(t *testing.T) {
	b1 := newTestBroker(t, "b1")
	b2 := newTestBroker(t, "b2")
	linkBrokers(t, b1, b2)

	sub := localClient(t, b2, "sub")
	s, err := sub.Subscribe("/net/chat", 16)
	if err != nil {
		t.Fatal(err)
	}
	// The subscription must propagate from b2 to b1 before publishing.
	waitCondition(t, 5*time.Second, "advertisement reaches b1", func() bool {
		return len(b1.matchSessions("/net/chat")) > 0
	})

	pub := localClient(t, b1, "pub")
	if err := pub.Publish("/net/chat", event.KindChat, []byte("cross-broker")); err != nil {
		t.Fatal(err)
	}
	e := recvOne(t, s, 5*time.Second)
	if string(e.Payload) != "cross-broker" {
		t.Fatalf("got %v", e)
	}
}

func TestThreeBrokerChainRouting(t *testing.T) {
	b1 := newTestBroker(t, "c1")
	b2 := newTestBroker(t, "c2")
	b3 := newTestBroker(t, "c3")
	linkBrokers(t, b1, b2)
	linkBrokers(t, b2, b3)

	sub := localClient(t, b3, "sub")
	s, err := sub.Subscribe("/chain/video", 16)
	if err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "advertisement reaches chain head", func() bool {
		return len(b1.matchSessions("/chain/video")) > 0
	})
	pub := localClient(t, b1, "pub")
	if err := pub.Publish("/chain/video", event.KindRTP, []byte("two hops")); err != nil {
		t.Fatal(err)
	}
	e := recvOne(t, s, 5*time.Second)
	if string(e.Payload) != "two hops" {
		t.Fatalf("got %v", e)
	}
}

func TestRoutingOnlyFollowsInterest(t *testing.T) {
	b1 := newTestBroker(t, "i1")
	b2 := newTestBroker(t, "i2")
	linkBrokers(t, b1, b2)

	// A subscriber on b1 only; b2 has no interest.
	sub := localClient(t, b1, "sub")
	if _, err := sub.Subscribe("/local/only", 4); err != nil {
		t.Fatal(err)
	}
	pub := localClient(t, b1, "pub")
	if err := pub.Publish("/local/only", event.KindData, []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	// b2 must not have routed the event (no interest advertised from it).
	if got := b2.Metrics().Counter("broker.events_routed").Value(); got != 0 {
		t.Fatalf("b2 routed %d events, want 0 (no downstream interest)", got)
	}
}

func TestUnsubscribePropagates(t *testing.T) {
	b1 := newTestBroker(t, "u1")
	b2 := newTestBroker(t, "u2")
	linkBrokers(t, b1, b2)
	sub := localClient(t, b2, "sub")
	s, err := sub.Subscribe("/u/t", 4)
	if err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "adv add", func() bool {
		return len(b1.matchSessions("/u/t")) > 0
	})
	if err := sub.Unsubscribe(s); err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "adv remove", func() bool {
		return len(b1.matchSessions("/u/t")) == 0
	})
}

func TestPeerDisconnectRemovesRoutes(t *testing.T) {
	b1 := newTestBroker(t, "d1")
	b2 := New(Config{ID: "d2"})
	linkBrokers(t, b1, b2)
	sub := localClient(t, b2, "sub")
	if _, err := sub.Subscribe("/d/t", 4); err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "adv add", func() bool {
		return len(b1.matchSessions("/d/t")) > 0
	})
	// Kill b2 entirely (crash-stop).
	b2.Stop()
	waitCondition(t, 5*time.Second, "peer session removed", func() bool {
		return b1.PeerCount() == 0 && len(b1.matchSessions("/d/t")) == 0
	})
}

func TestLateJoiningBrokerLearnsExistingSubscriptions(t *testing.T) {
	b1 := newTestBroker(t, "l1")
	b2 := newTestBroker(t, "l2")
	sub := localClient(t, b2, "sub")
	s, err := sub.Subscribe("/late/t", 8)
	if err != nil {
		t.Fatal(err)
	}
	// Link AFTER the subscription exists; snapshot must convey it.
	linkBrokers(t, b1, b2)
	waitCondition(t, 5*time.Second, "snapshot applied", func() bool {
		return len(b1.matchSessions("/late/t")) > 0
	})
	pub := localClient(t, b1, "pub")
	if err := pub.Publish("/late/t", event.KindData, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	e := recvOne(t, s, 5*time.Second)
	if string(e.Payload) != "snap" {
		t.Fatalf("got %v", e)
	}
}

func TestStarTopologyFanout(t *testing.T) {
	hub := newTestBroker(t, "hub")
	leaves := make([]*Broker, 4)
	subs := make([]*Subscription, 4)
	for i := range leaves {
		leaves[i] = newTestBroker(t, fmt.Sprintf("leaf%d", i))
		linkBrokers(t, hub, leaves[i])
		c := localClient(t, leaves[i], fmt.Sprintf("sub%d", i))
		s, err := c.Subscribe("/star/media", 16)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	waitCondition(t, 5*time.Second, "hub sees all leaves", func() bool {
		return len(hub.matchSessions("/star/media")) == 4
	})
	pub := localClient(t, hub, "pub")
	if err := pub.Publish("/star/media", event.KindRTP, []byte("ray")); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		if e := recvOne(t, s, 5*time.Second); string(e.Payload) != "ray" {
			t.Fatalf("leaf %d got %v", i, e)
		}
	}
}

func TestP2PModeFloodsWithDedup(t *testing.T) {
	// Triangle topology: a-b, b-c, a-c. P2P flooding would loop without
	// the dedup cache; each subscriber must get exactly one copy.
	mk := func(id string) *Broker {
		b := New(Config{ID: id, Mode: ModePeerToPeer})
		t.Cleanup(b.Stop)
		return b
	}
	a, bb, c := mk("p-a"), mk("p-b"), mk("p-c")
	linkBrokers(t, a, bb)
	linkBrokers(t, bb, c)
	linkBrokers(t, a, c)

	subB := localClient(t, bb, "subB")
	sB, err := subB.Subscribe("/p2p/x", 16)
	if err != nil {
		t.Fatal(err)
	}
	subC := localClient(t, c, "subC")
	sC, err := subC.Subscribe("/p2p/x", 16)
	if err != nil {
		t.Fatal(err)
	}
	pub := localClient(t, a, "pub")
	if err := pub.Publish("/p2p/x", event.KindData, []byte("flood")); err != nil {
		t.Fatal(err)
	}
	if e := recvOne(t, sB, 5*time.Second); string(e.Payload) != "flood" {
		t.Fatalf("B got %v", e)
	}
	if e := recvOne(t, sC, 5*time.Second); string(e.Payload) != "flood" {
		t.Fatalf("C got %v", e)
	}
	// No duplicates.
	expectNone(t, sB, 300*time.Millisecond)
	expectNone(t, sC, 300*time.Millisecond)
}

func TestP2PTTLBoundsPropagation(t *testing.T) {
	// Chain of 4 brokers in P2P mode; event with TTL 2 reaches broker 3
	// (two hops) but not broker 4.
	mk := func(id string) *Broker {
		b := New(Config{ID: id, Mode: ModePeerToPeer})
		t.Cleanup(b.Stop)
		return b
	}
	b1, b2, b3, b4 := mk("t1"), mk("t2"), mk("t3"), mk("t4")
	linkBrokers(t, b1, b2)
	linkBrokers(t, b2, b3)
	linkBrokers(t, b3, b4)

	sub3 := localClient(t, b3, "sub3")
	s3, err := sub3.Subscribe("/ttl/x", 4)
	if err != nil {
		t.Fatal(err)
	}
	sub4 := localClient(t, b4, "sub4")
	s4, err := sub4.Subscribe("/ttl/x", 4)
	if err != nil {
		t.Fatal(err)
	}
	pub := localClient(t, b1, "pub")
	e := event.New("/ttl/x", event.KindData, []byte("bounded"))
	e.TTL = 2
	if err := pub.PublishEvent(e); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, s3, 5*time.Second); string(got.Payload) != "bounded" {
		t.Fatalf("b3 sub got %v", got)
	}
	expectNone(t, s4, 500*time.Millisecond)
}

func TestModeMismatchRejected(t *testing.T) {
	cs := newTestBroker(t, "m-cs")
	p2p := New(Config{ID: "m-p2p", Mode: ModePeerToPeer})
	t.Cleanup(p2p.Stop)
	ca, cb := transport.Pipe("m-p2p", "m-cs")
	go p2p.handshake(cb)
	if err := cs.ConnectPeerConn(ca); err == nil {
		// The accept side closes the conn on mode mismatch; the dialer
		// should observe an error either connecting or immediately after.
		waitCondition(t, 2*time.Second, "link torn down", func() bool {
			return cs.PeerCount() == 0
		})
	}
}

func TestModeString(t *testing.T) {
	if ModeClientServer.String() != "client-server" {
		t.Error(ModeClientServer.String())
	}
	if ModePeerToPeer.String() != "peer-to-peer" {
		t.Error(ModePeerToPeer.String())
	}
	if Mode(9).String() != "mode(9)" {
		t.Error(Mode(9).String())
	}
}

func TestConnectPeerOverTCP(t *testing.T) {
	b1 := newTestBroker(t, "tcp1")
	b2 := newTestBroker(t, "tcp2")
	l, err := b2.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := b1.ConnectPeer(l.Addr()); err != nil {
		t.Fatal(err)
	}
	sub := localClient(t, b2, "sub")
	s, err := sub.Subscribe("/tcp/peer", 8)
	if err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "adv over tcp", func() bool {
		return len(b1.matchSessions("/tcp/peer")) > 0
	})
	pub := localClient(t, b1, "pub")
	if err := pub.Publish("/tcp/peer", event.KindData, []byte("tcp-net")); err != nil {
		t.Fatal(err)
	}
	if e := recvOne(t, s, 5*time.Second); string(e.Payload) != "tcp-net" {
		t.Fatalf("got %v", e)
	}
}
