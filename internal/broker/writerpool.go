package broker

import (
	"sync"
	"sync/atomic"
	"time"
)

// writerPool drains a shard of sessions' send queues from one goroutine,
// replacing the writer-goroutine-per-session model: with
// Config.WriterPoolSize pools (GOMAXPROCS-derived by default) the broker
// runs O(cores) writers instead of O(sessions), which is what lets the
// egress side scale with cores instead of with the Go scheduler's
// appetite for runnable goroutines.
//
// Scheduling is a classic dirty-flag ready list. Each session carries a
// scheduled flag; the queue's signal hook CAS-arms it and appends the
// session to the pool's FIFO exactly once per quiet→ready transition, so
// the one-wakeup-per-session-per-burst contract of the legacy writer is
// preserved bit for bit (a burst's pushBatch deposits at most one ready
// entry, later pushes while armed deposit none). The pool goroutine
// clears the flag *before* draining, so a push that arrives mid-service
// re-arms and re-enqueues — no lost wakeups, at worst one spurious
// empty service.
//
// Each session keeps its own persistent outSink (Batcher and buffers
// live as long as the session), touched only by its owning pool
// goroutine; sessions are bound to exactly one pool for life, so sink
// state needs no locking.
type writerPool struct {
	b *Broker

	// notify carries at most one wakeup token for the ready list, the
	// pool-level twin of sendQueue.notify.
	notify chan struct{}
	// done is closed by Broker.Stop after every session stopped; the pool
	// then drains the remaining ready entries (each closed queue flushes
	// through popClosed) before exiting.
	done chan struct{}

	mu    sync.Mutex
	ready []*session // FIFO of armed sessions awaiting service

	// drain is the pool's reusable popBatch buffer.
	drain []outItem

	// Occupancy instrumentation, read by the scaling benchmark: sessions
	// ever bound, services performed, and events drained through this
	// pool. clogs counts clog-parks — services cut short because a
	// session's consumer stopped draining and its sink could not accept
	// more without blocking.
	bound    atomic.Uint64
	services atomic.Uint64
	drained  atomic.Uint64
	clogs    atomic.Uint64
}

// poolServiceBatches bounds how many popBatch drains one service may
// perform before the session is re-enqueued at the tail: a firehose
// session hands the goroutine back so its pool siblings are never
// starved, at a cost of one CAS + list append per quantum.
const poolServiceBatches = 4

// clogRetry is how soon a session parked on consumer backpressure (its
// sink's non-blocking flush could not empty) is retried. Tight, because
// a blocked legacy writer resumes the instant its consumer frees pipe
// space — polling latency here is the writer-pool plane's only pacing
// disadvantage against the per-session ablation.
const clogRetry = 100 * time.Microsecond

// lingerSweepEvery bounds how many services a busy pool performs before
// visiting its parked list: a clogged session whose producers went
// quiet is retried even while the ready list never empties.
const lingerSweepEvery = 64

func newWriterPool(b *Broker) *writerPool {
	return &writerPool{
		b:      b,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// wake arms s and appends it to the ready list once per quiet→ready
// transition. It reports whether a wakeup was actually deposited (the
// instrumented single-wakeup-per-burst contract counts these).
func (wp *writerPool) wake(s *session) bool {
	if !s.scheduled.CompareAndSwap(false, true) {
		return false // already armed; an earlier wakeup covers this push
	}
	wp.mu.Lock()
	wp.ready = append(wp.ready, s)
	wp.mu.Unlock()
	select {
	case wp.notify <- struct{}{}:
	default:
	}
	return true
}

// next pops the ready-list head, or nil when idle.
func (wp *writerPool) next() *session {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	if len(wp.ready) == 0 {
		return nil
	}
	s := wp.ready[0]
	wp.ready[0] = nil
	wp.ready = wp.ready[1:]
	return s
}

// run is the pool goroutine: service ready sessions, linger over
// non-empty sinks when FlushInterval allows or a consumer clogged,
// drain everything on shutdown.
func (wp *writerPool) run() {
	defer wp.b.wg.Done()
	var lingerTimer *time.Timer
	var linger []*session // sessions holding a non-empty sink: coalescing or clogged
	sinceSweep := 0
	for {
		if s := wp.next(); s != nil {
			wp.service(s, &linger)
			// A busy pool must still visit the parked list now and then:
			// a clogged session whose producers went quiet would
			// otherwise strand its sink until the ready list empties.
			if sinceSweep++; sinceSweep >= lingerSweepEvery && len(linger) > 0 {
				sinceSweep = 0
				linger, _ = wp.sweepLinger(linger)
			}
			continue
		}
		sinceSweep = 0
		// Idle. Flush parked sinks whose window expired; keep the rest
		// armed on a timer so batching under light load still bounds
		// latency at FlushInterval, exactly like the legacy writer.
		if len(linger) > 0 {
			var next time.Time
			linger, next = wp.sweepLinger(linger)
			if len(linger) > 0 {
				if lingerTimer == nil {
					lingerTimer = time.NewTimer(time.Until(next))
				} else {
					lingerTimer.Reset(time.Until(next))
				}
				select {
				case <-wp.notify:
					if !lingerTimer.Stop() {
						<-lingerTimer.C
					}
				case <-lingerTimer.C:
				case <-wp.done:
					if !lingerTimer.Stop() {
						<-lingerTimer.C
					}
					wp.shutdown(linger)
					return
				}
				continue
			}
		}
		select {
		case <-wp.notify:
		case <-wp.done:
			wp.shutdown(linger)
			return
		}
	}
}

// sweepLinger visits the parked list: sinks whose window expired flush
// (non-blocking where the sink supports it — a still-clogged session is
// re-parked with a short retry), emptied entries drop off, and a
// session whose queue grew backlog while parked is re-woken so the
// drain resumes. Returns the remaining list and its earliest deadline.
func (wp *writerPool) sweepLinger(linger []*session) ([]*session, time.Time) {
	now := time.Now()
	var next time.Time
	kept := linger[:0]
	for _, s := range linger {
		switch {
		case s.writerDone:
			s.lingering = false
			continue
		case s.sink == nil || s.sink.pending() == 0:
			s.lingering = false
			wp.rewake(s)
			continue
		case !s.lingerAt.After(now):
			done, err := s.sink.flushIdle()
			if err != nil {
				s.lingering = false
				wp.fail(s)
				continue
			}
			if done {
				s.lingering = false
				wp.rewake(s)
				continue
			}
			// Still clogged; retry shortly.
			s.lingerAt = now.Add(clogRetry)
		}
		kept = append(kept, s)
		if next.IsZero() || s.lingerAt.Before(next) {
			next = s.lingerAt
		}
	}
	for i := len(kept); i < len(linger); i++ {
		linger[i] = nil
	}
	return kept, next
}

// rewake re-arms a session leaving the parked list that still has queue
// backlog (possible when it parked on a clogged sink mid-drain and its
// producers then went quiet, so no push will re-arm it).
func (wp *writerPool) rewake(s *session) {
	if s.queue.depth() > 0 {
		wp.wake(s)
	}
}

// shutdown performs the final drain: every remaining ready session is
// serviced (closed queues empty through popClosed and flush their
// sinks — reliable-flush-on-close), then lingering sinks flush. By the
// time Broker.Stop closes done every session has stopped and closed its
// queue, so no new ready entries can arrive that matter.
func (wp *writerPool) shutdown(linger []*session) {
	for {
		s := wp.next()
		if s == nil {
			break
		}
		wp.service(s, nil)
	}
	for _, s := range linger {
		if s != nil && !s.writerDone && s.sink != nil && s.sink.pending() > 0 {
			_ = s.sink.flush()
		}
	}
}

// service drains one session's queue into its sink, mirroring the legacy
// writeLoop body: batch pops under one lock, immediate flush behind
// reliable items, error → close-and-discard. linger is the pool's
// coalescing list; nil (during shutdown) flushes immediately instead of
// lingering.
func (wp *writerPool) service(s *session, linger *[]*session) {
	if s.writerDone {
		s.scheduled.Store(false)
		return
	}
	// Disarm before draining: a push landing after this line re-arms and
	// re-enqueues, so the final pop below can never strand traffic.
	s.scheduled.Store(false)
	if s.sink == nil {
		s.sink = s.newOutSink()
	}
	wp.services.Add(1)
	cfg := wp.b.cfg
	batchMax := 1
	if cfg.IngestBurst > 1 {
		batchMax = cfg.IngestBurst
	}
	drained := 0
	defer func() { wp.drained.Add(uint64(drained)) }()
	for round := 0; round < poolServiceBatches; round++ {
		if linger != nil {
			ok, err := s.sink.ready()
			if err != nil {
				wp.fail(s)
				return
			}
			if !ok {
				// Clogged consumer: park for a short retry instead of
				// blocking the pool goroutine on this session's conn (its
				// siblings' egress rides the same goroutine) or
				// re-enqueueing (which would spin the ready list while the
				// conn stays full). scheduled is already clear, so under
				// load the next push re-arms the session anyway.
				wp.clogs.Add(1)
				wp.park(s, linger, clogRetry)
				return
			}
		}
		var st popState
		wp.drain = wp.drain[:0]
		wp.drain, st = s.queue.popBatch(wp.drain, batchMax)
		switch st {
		case popOK:
			for _, it := range wp.drain {
				if err := s.sink.add(it); err != nil {
					clear(wp.drain)
					wp.fail(s)
					return
				}
				if it.reliable {
					// Signalling and acks flush as soon as the reliable
					// lane drains; they never linger in user space.
					if err := s.sink.flush(); err != nil {
						clear(wp.drain)
						wp.fail(s)
						return
					}
				}
			}
			drained += len(wp.drain)
			wp.b.ctr.eventsOut.Add(uint64(len(wp.drain)))
			clear(wp.drain) // never pin events in the reused buffer
		case popEmpty:
			if s.sink.pending() > 0 {
				if cfg.FlushInterval > 0 && linger != nil {
					wp.park(s, linger, cfg.FlushInterval)
					return
				}
				if linger == nil {
					// Shutdown drain: the final flush may block; conn
					// teardown unblocks it if the consumer is gone.
					if err := s.sink.flush(); err != nil {
						wp.fail(s)
					}
					return
				}
				done, err := s.sink.flushIdle()
				if err != nil {
					wp.fail(s)
					return
				}
				if !done {
					// Consumer backpressure at idle: park for retry.
					wp.clogs.Add(1)
					wp.park(s, linger, clogRetry)
				}
			}
			return
		case popClosed:
			// Graceful drain: whatever reached the sink goes out before
			// the session is finalized (the conn may already be closed on
			// abortive shutdown, in which case the error is moot).
			_ = s.sink.flush()
			s.writerDone = true
			return
		}
	}
	// Quantum exhausted with traffic possibly remaining: hand the slot
	// back so pool siblings get served, re-arming this session at the
	// tail (the CAS fails harmlessly if a producer already re-armed it).
	wp.wake(s)
}

// park registers s on the pool's coalescing/retry list with the given
// window, unless it is already parked (an earlier deadline stands).
func (wp *writerPool) park(s *session, linger *[]*session, d time.Duration) {
	if !s.lingering {
		s.lingering = true
		s.lingerAt = time.Now().Add(d)
		*linger = append(*linger, s)
	}
}

// fail closes the session and discards its remaining queue, the pool
// analogue of the legacy writeLoop's fail path.
func (wp *writerPool) fail(s *session) {
	s.writerDone = true
	s.close()
	for {
		if _, st := s.queue.tryPop(); st != popOK {
			return
		}
	}
}

// WriterPoolStat is one pool's occupancy snapshot, surfaced by the
// scaling benchmark to show how egress work spreads across pools.
type WriterPoolStat struct {
	Sessions uint64 // sessions ever bound to this pool
	Services uint64 // ready-list services performed
	Drained  uint64 // events drained through this pool
}

// WriterPoolStats returns per-pool occupancy counters (empty in the
// legacy per-session-writer ablation).
func (b *Broker) WriterPoolStats() []WriterPoolStat {
	out := make([]WriterPoolStat, len(b.pools))
	for i, p := range b.pools {
		out[i] = WriterPoolStat{
			Sessions: p.bound.Load(),
			Services: p.services.Load(),
			Drained:  p.drained.Load(),
		}
	}
	return out
}
