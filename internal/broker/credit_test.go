package broker

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// TestPeerCreditStallShedsAtSender: a peer link whose receiver never
// grants exhausts its credit window — further best-effort events are
// shed at the sender (counted in the per-link stall counter) instead of
// staged, while a granted sibling link and reliable traffic keep
// flowing.
func TestPeerCreditStallShedsAtSender(t *testing.T) {
	const window = 8
	b := New(Config{ID: "cr", PeerCreditWindow: window})
	defer b.Stop()

	stalled := newSession(b, newCaptureConn(), "cr-stalled", true)
	stalled.creditStallCtr = b.Metrics().Counter("broker.peer.cr-stalled.credit_stalls")
	healthy := newSession(b, newCaptureConn(), "cr-healthy", true)
	for _, s := range []*session{stalled, healthy} {
		if s.creditWindow != window {
			t.Fatalf("peer credit window = %d, want %d", s.creditWindow, window)
		}
		if err := b.router.add("/cr/t", s); err != nil {
			t.Fatal(err)
		}
	}
	b.mu.Lock()
	b.peers[stalled] = struct{}{}
	b.peers[healthy] = struct{}{}
	b.refreshPeerSnapLocked()
	b.mu.Unlock()

	const total = 20
	events := make([]*event.Event, total)
	for i := range events {
		events[i] = burstEvent(uint64(i+1), "/cr/t")
	}
	// The healthy link is granted as the receiver consumes; simulate the
	// remote staying caught up.
	healthy.noteCreditGrant(total)
	sweep := b.newRouteSweep()
	sweep.routeBatch(events, nil)

	if depth := stalled.queue.depth(); depth != window {
		t.Fatalf("stalled link staged %d events, want the %d-event window", depth, window)
	}
	if stalls := stalled.creditStallCtr.Value(); stalls != total-window {
		t.Fatalf("credit_stalls = %d, want %d shed at the sender", stalls, total-window)
	}
	if depth := healthy.queue.depth(); depth != total {
		t.Fatalf("granted sibling staged %d events, want all %d", depth, total)
	}

	// Reliable traffic bypasses the exhausted window.
	rel := burstEvent(total+1, "/cr/t")
	rel.Reliable = true
	sweep.routeBatch([]*event.Event{rel}, nil)
	if depth := stalled.queue.depth(); depth != window+1 {
		t.Fatalf("reliable event not staged past the stall: depth %d, want %d", depth, window+1)
	}

	// A cumulative grant reopens the window.
	stalled.noteCreditGrant(4)
	more := burstEvent(total+2, "/cr/t")
	sweep.routeBatch([]*event.Event{more}, nil)
	if depth := stalled.queue.depth(); depth != window+2 {
		t.Fatalf("grant did not reopen the window: depth %d, want %d", depth, window+2)
	}
}

// TestPeerCreditReceiverGrants: the receiving side of a peer link
// counts consumed best-effort data and emits one cumulative grant per
// quantum through the queue's coalescing credit slot, ahead of data.
func TestPeerCreditReceiverGrants(t *testing.T) {
	b := New(Config{ID: "gr", PeerCreditWindow: 8})
	defer b.Stop()
	s := newSession(b, newCaptureConn(), "gr-peer", true)
	if s.creditQuantum != 2 {
		t.Fatalf("creditQuantum = %d, want window/4 = 2", s.creditQuantum)
	}

	s.noteConsumed(1)
	if _, st := s.queue.tryPop(); st != popEmpty {
		t.Fatalf("grant emitted below the quantum: %v", st)
	}
	s.noteConsumed(1)
	it, st := s.queue.tryPop()
	if st != popOK || it.e == nil || it.e.Topic != topicCredit {
		t.Fatalf("expected a credit grant, got %+v (%v)", it, st)
	}
	if !it.reliable {
		t.Fatal("grants must ride the flush-now lane")
	}
	if cum, err := headerUint(it.e, hdrSeq); err != nil || cum != 2 {
		t.Fatalf("grant cum = %d (%v), want 2", cum, err)
	}

	// Grants coalesce: two quanta consumed while the writer is busy
	// collapse into one slot carrying the newest cumulative count.
	s.noteConsumed(2)
	s.noteConsumed(2)
	it, st = s.queue.tryPop()
	if st != popOK || it.e == nil || it.e.Topic != topicCredit {
		t.Fatalf("expected a coalesced grant, got %+v (%v)", it, st)
	}
	if cum, _ := headerUint(it.e, hdrSeq); cum != 6 {
		t.Fatalf("coalesced grant cum = %d, want 6", cum)
	}
	if _, st = s.queue.tryPop(); st != popEmpty {
		t.Fatalf("more than one grant queued: %v", st)
	}
}

// TestPeerCreditEndToEnd: across a real TCP mesh link, grants flow back
// as the receiver consumes, so a best-effort stream much longer than
// the window crosses without the sender wedging — and the sender's
// consumed floor advances, proving the grant loop ran.
func TestPeerCreditEndToEnd(t *testing.T) {
	const window = 64
	b1 := newTestBrokerCfg(t, Config{ID: "e1", PeerCreditWindow: window})
	b2 := newTestBrokerCfg(t, Config{ID: "e2", PeerCreditWindow: window})
	l, err := b1.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mesh := NewMesh(b2, fastMeshConfig(l.Addr()))
	t.Cleanup(mesh.Stop)
	waitCondition(t, 5*time.Second, "mesh link up", func() bool {
		return b1.PeerCount() == 1 && b2.PeerCount() == 1
	})

	sub := localClient(t, b1, "e2e-sub")
	s, err := sub.Subscribe("/credit/e2e", 4096)
	if err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "advertisement reaches e2", func() bool {
		return len(b2.matchSessions("/credit/e2e")) > 0
	})

	const total = 10 * window
	pub := localClient(t, b2, "e2e-pub")
	received := 0
	for i := 0; i < total; i++ {
		if err := pub.Publish("/credit/e2e", event.KindRTP, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
		// Consume as we go so the receiver keeps granting.
		for tryRecv(s, time.Millisecond) != nil {
			received++
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for received < total/2 && time.Now().Before(deadline) {
		if tryRecv(s, 50*time.Millisecond) != nil {
			received++
		}
	}
	if received < total/2 {
		t.Fatalf("received %d of %d best-effort events; link wedged", received, total)
	}
	ps := b2.peerSessionByID("e1")
	if ps == nil {
		t.Fatal("no peer session")
	}
	waitCondition(t, 5*time.Second, "grants advanced the consumed floor", func() bool {
		return ps.creditConsumed.Load() >= window
	})
}

// TestMeshCloseDuringCreditStall churns session close against a router
// sweep that is credit-stalling on the same link — the admit path
// (atomics + stall counter) racing detach, for the race detector.
func TestMeshCloseDuringCreditStall(t *testing.T) {
	b := New(Config{ID: "churn-cr", PeerCreditWindow: 4})
	defer b.Stop()

	for round := 0; round < 20; round++ {
		s := newSession(b, newCaptureConn(), fmt.Sprintf("churn-%d", round), true)
		s.creditStallCtr = b.Metrics().Counter("broker.peer.churn.credit_stalls")
		if err := b.router.add("/churn/t", s); err != nil {
			t.Fatal(err)
		}
		b.mu.Lock()
		b.peers[s] = struct{}{}
		b.refreshPeerSnapLocked()
		b.mu.Unlock()

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			sweep := b.newRouteSweep()
			events := make([]*event.Event, 8)
			for i := range events {
				events[i] = burstEvent(uint64(round*1000+i+1), "/churn/t")
			}
			for k := 0; k < 10; k++ {
				sweep.routeBatch(events, nil)
			}
		}()
		go func() {
			defer wg.Done()
			s.queue.close()
			s.noteCreditGrant(uint64(round + 1))
		}()
		wg.Wait()
		b.router.remove("/churn/t", s)
		b.mu.Lock()
		delete(b.peers, s)
		b.refreshPeerSnapLocked()
		b.mu.Unlock()
	}
}
