package broker

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// TestSubscribeContextCancelled asserts SubscribeContext returns the
// context error both when the context is cancelled up front and while
// the control fence is blocked on an unresponsive broker.
func TestSubscribeContextCancelled(t *testing.T) {
	// A client attached to a pipe nobody serves: control requests go
	// out, but no fence echo ever returns.
	clientEnd, serverEnd := transport.Pipe("mem:client", "mem:void")
	defer serverEnd.Close()
	c, err := Attach(clientEnd, "c1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := c.SubscribeContext(pre, "/t", 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled subscribe = %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.SubscribeContext(ctx, "/t", 8)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the fence block
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked subscribe = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscribe did not unblock on cancellation")
	}
}

// TestPublishAfterClose asserts a closed client reports ErrClientClosed
// rather than a raw transport error.
func TestPublishAfterClose(t *testing.T) {
	b := New(Config{ID: "b1"})
	defer b.Stop()
	c, err := b.LocalClient("c1", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("/t", 0, nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("publish after close = %v", err)
	}
}
