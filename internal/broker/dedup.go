package broker

import (
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// dedupWindow is the per-source sequence window width in event IDs: a
// source's IDs are tracked exactly within (maxID-dedupWindow, maxID];
// anything older is assumed to be a duplicate.
const dedupWindow = 8192

// dedupCache suppresses duplicate events flooded through cyclic broker
// topologies. Event IDs are per-source publish sequences, so instead of
// remembering individual keys — a fixed-size key FIFO is outrun as soon
// as the publish rate times the cycle latency exceeds its capacity,
// exactly the saturated-mesh regime — the cache keeps one sliding
// bitmap window per source: IDs above the window are new and advance
// it, IDs inside it are checked exactly, and IDs that have fallen below
// it are treated as duplicates (a copy that took so long to come around
// the cycle that thousands of newer events from the same source were
// already routed; for best-effort traffic late-dropping such a straggler
// is a drop the overloaded path would have made anyway, and reliable
// copies below the window are always real duplicates because reliable
// links do not reorder past the window). Memory is bounded per source
// (1 KiB) regardless of publish rate. Sources beyond capacity are
// evicted FIFO.
type dedupCache struct {
	mu      sync.Mutex
	sources map[string]*sourceWindow
	ring    []string
	head    int
}

// sourceWindow is one source's replay window: a circular bitmap over
// the dedupWindow IDs ending at maxID (bit index = ID % dedupWindow).
type sourceWindow struct {
	maxID uint64
	bits  [dedupWindow / 64]uint64
}

func (w *sourceWindow) get(id uint64) bool {
	return w.bits[(id%dedupWindow)/64]&(1<<(id%64)) != 0
}

func (w *sourceWindow) set(id uint64) {
	w.bits[(id%dedupWindow)/64] |= 1 << (id % 64)
}

func (w *sourceWindow) clear(id uint64) {
	w.bits[(id%dedupWindow)/64] &^= 1 << (id % 64)
}

// seen records id and reports whether it was already present (or is so
// far below the window it must be a late loop copy).
func (w *sourceWindow) seen(id uint64) bool {
	switch {
	case id > w.maxID:
		if id-w.maxID >= dedupWindow {
			w.bits = [dedupWindow / 64]uint64{}
		} else {
			for s := w.maxID + 1; s < id; s++ {
				w.clear(s)
			}
		}
		w.maxID = id
		w.set(id)
		return false
	case w.maxID-id < dedupWindow:
		if w.get(id) {
			return true
		}
		w.set(id)
		return false
	default:
		return true
	}
}

// newDedupCache creates a cache tracking up to capacity sources.
func newDedupCache(capacity int) *dedupCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &dedupCache{
		sources: make(map[string]*sourceWindow, capacity),
		ring:    make([]string, capacity),
	}
}

// seen records k and reports whether it was already seen.
func (d *dedupCache) seen(k event.Key) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w, ok := d.sources[k.Source]; ok {
		return w.seen(k.ID)
	}
	if len(d.sources) == len(d.ring) {
		delete(d.sources, d.ring[d.head])
	}
	w := &sourceWindow{maxID: k.ID}
	w.set(k.ID)
	d.sources[k.Source] = w
	d.ring[d.head] = k.Source
	d.head = (d.head + 1) % len(d.ring)
	return false
}

// len returns the number of tracked sources (for tests).
func (d *dedupCache) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sources)
}
