package broker

import (
	"sync"
	"sync/atomic"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// dedupWindow is the per-source sequence window width in event IDs: a
// source's IDs are tracked exactly within (maxID-dedupWindow, maxID];
// anything older is assumed to be a duplicate.
const dedupWindow = 8192

// Shard sizing: the cache splits into power-of-two shards once each
// shard would still hold at least dedupShardTarget sources, capped at
// dedupMaxShards. Small caches (unit tests, tiny deployments) stay
// single-sharded with global FIFO eviction; production-sized caches
// spread the per-event mutex across 16 locks.
const (
	dedupShardTarget = 64
	dedupMaxShards   = 16
)

// dedupCache suppresses duplicate events forwarded through cyclic
// broker topologies. Event IDs are per-source publish sequences, so
// instead of remembering individual keys — a fixed-size key FIFO is
// outrun as soon as the publish rate times the cycle latency exceeds
// its capacity, exactly the saturated-mesh regime — the cache keeps one
// sliding bitmap window per source: IDs above the window are new and
// advance it, IDs inside it are checked exactly, and IDs that have
// fallen below it are treated as duplicates (a copy that took so long
// to come around the cycle that thousands of newer events from the same
// source were already routed; for best-effort traffic late-dropping
// such a straggler is a drop the overloaded path would have made
// anyway, and reliable copies below the window are always real
// duplicates because reliable links do not reorder past the window).
// Memory is bounded per source (1 KiB) regardless of publish rate.
//
// The cache is sharded by source so that concurrent peer readLoops
// arming dedup for different origins do not serialize on one mutex.
// Each shard evicts FIFO beyond its capacity, and sweepIdle prunes
// sources that have gone quiet so long-lived meshes don't pin windows
// for every origin that ever published.
type dedupCache struct {
	gen    atomic.Uint64 // bumped by sweepIdle; stamps last-seen generation
	mask   uint32
	shards []dedupShard
}

// dedupRef is one FIFO eviction-order entry. The stamp pairs it with
// the exact sourceWindow it was queued for: a source pruned by
// sweepIdle and later re-added gets a fresh window with a fresh stamp,
// so its stale older ref no longer matches and cannot evict it early.
type dedupRef struct {
	src   string
	stamp uint64
}

type dedupShard struct {
	mu      sync.Mutex
	cap     int
	stamp   uint64
	sources map[string]*sourceWindow
	fifo    []dedupRef
	head    int
}

// sourceWindow is one source's replay window: a circular bitmap over
// the dedupWindow IDs ending at maxID (bit index = ID % dedupWindow).
type sourceWindow struct {
	maxID uint64
	stamp uint64 // matches this window's live fifo entry
	gen   uint64 // cache generation the source was last seen in
	bits  [dedupWindow / 64]uint64
}

func (w *sourceWindow) get(id uint64) bool {
	return w.bits[(id%dedupWindow)/64]&(1<<(id%64)) != 0
}

func (w *sourceWindow) set(id uint64) {
	w.bits[(id%dedupWindow)/64] |= 1 << (id % 64)
}

func (w *sourceWindow) clear(id uint64) {
	w.bits[(id%dedupWindow)/64] &^= 1 << (id % 64)
}

// seen records id and reports whether it was already present (or is so
// far below the window it must be a late loop copy).
func (w *sourceWindow) seen(id uint64) bool {
	switch {
	case id > w.maxID:
		if id-w.maxID >= dedupWindow {
			w.bits = [dedupWindow / 64]uint64{}
		} else {
			for s := w.maxID + 1; s < id; s++ {
				w.clear(s)
			}
		}
		w.maxID = id
		w.set(id)
		return false
	case w.maxID-id < dedupWindow:
		if w.get(id) {
			return true
		}
		w.set(id)
		return false
	default:
		return true
	}
}

// newDedupCache creates a cache tracking up to capacity sources in
// total, split across shards.
func newDedupCache(capacity int) *dedupCache {
	if capacity <= 0 {
		capacity = 1
	}
	shards := 1
	for shards < dedupMaxShards && capacity/(shards*2) >= dedupShardTarget {
		shards *= 2
	}
	perShard := (capacity + shards - 1) / shards
	d := &dedupCache{mask: uint32(shards - 1), shards: make([]dedupShard, shards)}
	for i := range d.shards {
		d.shards[i].cap = perShard
		d.shards[i].sources = make(map[string]*sourceWindow, perShard)
	}
	return d
}

// shardFor picks the shard for a source (FNV-1a).
func (d *dedupCache) shardFor(src string) *dedupShard {
	h := uint32(2166136261)
	for i := 0; i < len(src); i++ {
		h ^= uint32(src[i])
		h *= 16777619
	}
	return &d.shards[h&d.mask]
}

// seen records k and reports whether it was already seen.
func (d *dedupCache) seen(k event.Key) bool {
	sh := d.shardFor(k.Source)
	g := d.gen.Load()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if w, ok := sh.sources[k.Source]; ok {
		w.gen = g
		return w.seen(k.ID)
	}
	if len(sh.sources) >= sh.cap {
		sh.evictOneLocked()
	}
	w := &sourceWindow{maxID: k.ID, stamp: sh.stamp, gen: g}
	w.set(k.ID)
	sh.sources[k.Source] = w
	sh.fifo = append(sh.fifo, dedupRef{src: k.Source, stamp: sh.stamp})
	sh.stamp++
	return false
}

// evictOneLocked removes the oldest still-live source in FIFO order,
// skipping refs orphaned by sweepIdle pruning. Callers hold sh.mu.
func (sh *dedupShard) evictOneLocked() {
	for sh.head < len(sh.fifo) {
		ref := sh.fifo[sh.head]
		sh.fifo[sh.head] = dedupRef{}
		sh.head++
		if sh.head == len(sh.fifo) {
			sh.fifo = sh.fifo[:0]
			sh.head = 0
		}
		if w, ok := sh.sources[ref.src]; ok && w.stamp == ref.stamp {
			delete(sh.sources, ref.src)
			return
		}
	}
}

// sweepIdle advances the cache generation and prunes every source not
// seen within the last gens generations (housekeeping calls it once per
// refresh tick, so "generation" ≈ one refresh interval). It returns how
// many sources were pruned.
func (d *dedupCache) sweepIdle(gens int) int {
	cur := d.gen.Add(1)
	pruned := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		removed := false
		for src, w := range sh.sources {
			if cur-w.gen > uint64(gens) {
				delete(sh.sources, src)
				pruned++
				removed = true
			}
		}
		if removed || sh.head > 0 {
			// Compact the FIFO in place, dropping refs whose window was
			// pruned (or superseded) so stale strings don't accumulate
			// between evictions.
			kept := sh.fifo[:0]
			for _, ref := range sh.fifo[sh.head:] {
				if w, ok := sh.sources[ref.src]; ok && w.stamp == ref.stamp {
					kept = append(kept, ref)
				}
			}
			for j := len(kept); j < len(sh.fifo); j++ {
				sh.fifo[j] = dedupRef{}
			}
			sh.fifo = kept
			sh.head = 0
		}
		sh.mu.Unlock()
	}
	return pruned
}

// len returns the number of tracked sources (for tests).
func (d *dedupCache) len() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n += len(sh.sources)
		sh.mu.Unlock()
	}
	return n
}
