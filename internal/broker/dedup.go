package broker

import (
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// dedupCache remembers recently seen event keys so that events flooded
// through cyclic broker topologies are forwarded once. It is a fixed-size
// FIFO set: the (capacity+1)-th distinct key evicts the oldest.
type dedupCache struct {
	mu   sync.Mutex
	set  map[event.Key]struct{}
	ring []event.Key
	head int
}

func newDedupCache(capacity int) *dedupCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &dedupCache{
		set:  make(map[event.Key]struct{}, capacity),
		ring: make([]event.Key, capacity),
	}
}

// seen records k and reports whether it was already present.
func (d *dedupCache) seen(k event.Key) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.set[k]; ok {
		return true
	}
	if len(d.set) == len(d.ring) {
		old := d.ring[d.head]
		delete(d.set, old)
	}
	d.ring[d.head] = k
	d.set[k] = struct{}{}
	d.head = (d.head + 1) % len(d.ring)
	return false
}

// len returns the number of cached keys (for tests).
func (d *dedupCache) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.set)
}
