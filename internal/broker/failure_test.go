package broker

import (
	"fmt"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// linkBrokersShaped connects two brokers with a shaped (lossy/delayed)
// link in both directions.
func linkBrokersShaped(t *testing.T, a, b *Broker, profile transport.LinkProfile) {
	t.Helper()
	ca, cb := transport.Pipe(b.ID(), a.ID())
	sa := transport.Shape(ca, profile)
	sb := transport.Shape(cb, profile)
	done := make(chan struct{})
	go func() {
		b.AcceptConn(sb)
		close(done)
	}()
	if err := a.ConnectPeerConn(sa); err != nil {
		t.Fatalf("ConnectPeerConn: %v", err)
	}
	<-done
}

func TestReliableSignallingAcrossLossyPeerLink(t *testing.T) {
	// 30% loss on the inter-broker link: advertisements and reliable
	// events must still arrive via hop-by-hop retransmission.
	mk := func(id string) *Broker {
		b := New(Config{ID: id, RetransmitInterval: 30 * time.Millisecond})
		t.Cleanup(b.Stop)
		return b
	}
	b1, b2 := mk("lossy-1"), mk("lossy-2")
	linkBrokersShaped(t, b1, b2, transport.LinkProfile{Loss: 0.3, Seed: 1234})

	sub := localClient(t, b2, "sub")
	s, err := sub.Subscribe("/lossy/control", 64)
	if err != nil {
		t.Fatal(err)
	}
	// The advertisement itself crosses the lossy link reliably.
	waitCondition(t, 10*time.Second, "advertisement crosses lossy link", func() bool {
		return len(b1.matchSessions("/lossy/control")) > 0
	})
	pub := localClient(t, b1, "pub")
	const n = 20
	for i := range n {
		if err := pub.PublishReliable("/lossy/control", event.KindControl, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[byte]bool)
	deadline := time.After(15 * time.Second)
	for len(got) < n {
		select {
		case e := <-s.C():
			got[e.Payload[0]] = true
		case <-deadline:
			t.Fatalf("only %d/%d reliable events crossed the lossy link", len(got), n)
		}
	}
}

func TestBestEffortAcrossLossyPeerLinkDrops(t *testing.T) {
	mk := func(id string) *Broker {
		b := New(Config{ID: id})
		t.Cleanup(b.Stop)
		return b
	}
	b1, b2 := mk("belossy-1"), mk("belossy-2")
	linkBrokersShaped(t, b1, b2, transport.LinkProfile{Loss: 0.5, Seed: 77})
	sub := localClient(t, b2, "sub")
	s, err := sub.Subscribe("/belossy/media", 2048)
	if err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 10*time.Second, "adv", func() bool {
		return len(b1.matchSessions("/belossy/media")) > 0
	})
	pub := localClient(t, b1, "pub")
	const n = 400
	for i := range n {
		if err := pub.Publish("/belossy/media", event.KindRTP, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Collect for a bounded period; roughly half should survive, and
	// critically the system must not retransmit best-effort media.
	received := 0
	timeout := time.After(3 * time.Second)
collect:
	for {
		select {
		case <-s.C():
			received++
		case <-timeout:
			break collect
		}
	}
	if received < n/4 || received > n*3/4 {
		t.Fatalf("received %d of %d over 50%% lossy link, want roughly half", received, n)
	}
}

func TestSlowReliableConsumerIsDisconnected(t *testing.T) {
	// A client that never acks reliable events must be evicted once the
	// reliable window fills, instead of the broker buffering forever.
	b := New(Config{ID: "evict", ReliableWindow: 16, RetransmitInterval: 20 * time.Millisecond, MaxRetransmits: 3})
	defer b.Stop()

	// A raw conn that performs the handshake and subscribes, then goes
	// silent (never acks).
	client, server := transport.Pipe("evict-broker", "silent-client")
	go b.AcceptConn(server)
	hello := helloEvent("silent")
	if err := client.Send(hello); err != nil {
		t.Fatal(err)
	}
	if err := client.Send(subEvent("/evict/t", BestEffort)); err != nil {
		t.Fatal(err)
	}
	// Drain inbound so the pipe does not backpressure, but never ack.
	go func() {
		for {
			if _, err := client.Recv(); err != nil {
				return
			}
		}
	}()
	waitCondition(t, 5*time.Second, "subscribed", func() bool {
		return len(b.matchSessions("/evict/t")) > 0
	})

	pub, err := b.LocalClient("pub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := range 100 {
		if err := pub.PublishReliable("/evict/t", event.KindControl, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitCondition(t, 10*time.Second, "silent client evicted", func() bool {
		return len(b.matchSessions("/evict/t")) == 0
	})
}

func TestPartitionHealsAfterReconnect(t *testing.T) {
	mk := func(id string) *Broker {
		b := New(Config{ID: id, AdvRefreshInterval: 100 * time.Millisecond})
		t.Cleanup(b.Stop)
		return b
	}
	b1, b2 := mk("part-1"), mk("part-2")

	ca, cb := transport.Pipe(b2.ID(), b1.ID())
	go b2.AcceptConn(cb)
	if err := b1.ConnectPeerConn(ca); err != nil {
		t.Fatal(err)
	}
	sub := localClient(t, b2, "sub")
	s, err := sub.Subscribe("/part/t", 64)
	if err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "initial adv", func() bool {
		return len(b1.matchSessions("/part/t")) > 0
	})

	// Partition: kill the link.
	ca.Close()
	waitCondition(t, 5*time.Second, "link removed", func() bool {
		return b1.PeerCount() == 0 && b2.PeerCount() == 0
	})

	// Heal: new link; the advertisement snapshot restores routing.
	ca2, cb2 := transport.Pipe(b2.ID(), b1.ID())
	go b2.AcceptConn(cb2)
	if err := b1.ConnectPeerConn(ca2); err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "adv restored", func() bool {
		return len(b1.matchSessions("/part/t")) > 0
	})
	pub := localClient(t, b1, "pub")
	if err := pub.Publish("/part/t", event.KindData, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if e := recvOne(t, s, 5*time.Second); string(e.Payload) != "healed" {
		t.Fatalf("got %v", e)
	}
}

func TestStaleAdvertisementsPruned(t *testing.T) {
	// When a peer vanishes without clean teardown (e.g. its host dies),
	// the soft-state refresh must eventually prune its patterns.
	b1 := New(Config{ID: "prune-1", AdvRefreshInterval: 50 * time.Millisecond})
	t.Cleanup(b1.Stop)

	// Hand-craft a peer that advertises then goes silent (no refresh).
	client, server := transport.Pipe("prune-broker", "fake-peer")
	go b1.AcceptConn(server)
	if err := client.Send(peerHelloEvent("fake-peer", ModeClientServer, "")); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			e, err := client.Recv()
			if err != nil {
				return
			}
			// Ack reliable traffic so the session stays healthy, but never
			// re-advertise.
			if rseq, tagged, bad := inboundRSeq(e); tagged && !bad && e.Topic != topicAck {
				_ = client.Send(ackEvent(rseq))
			}
		}
	}()
	adv := subAdvEvent(advAdd, "/stale/t", "fake-peer", 1, 0)
	if err := client.Send(adv); err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "adv applied", func() bool {
		return len(b1.matchSessions("/stale/t")) > 0
	})
	// Without refreshes, the entry must be pruned within ~3 intervals.
	waitCondition(t, 5*time.Second, "adv pruned", func() bool {
		return len(b1.matchSessions("/stale/t")) == 0
	})
}

func TestManyClientsChurn(t *testing.T) {
	// Clients connecting, subscribing and vanishing concurrently must not
	// corrupt broker state.
	b := New(Config{ID: "churn"})
	defer b.Stop()
	const rounds = 5
	const perRound = 20
	for r := range rounds {
		done := make(chan error, perRound)
		for i := range perRound {
			go func() {
				c, err := b.LocalClient(fmt.Sprintf("churn-%d-%d", r, i), transport.LinkProfile{})
				if err != nil {
					done <- err
					return
				}
				if _, err := c.Subscribe(fmt.Sprintf("/churn/%d", i%5), 8); err != nil {
					done <- err
					return
				}
				if err := c.Publish(fmt.Sprintf("/churn/%d", i%5), event.KindData, nil); err != nil {
					done <- err
					return
				}
				done <- c.Close()
			}()
		}
		for range perRound {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
	}
	waitCondition(t, 5*time.Second, "all sessions cleaned", func() bool {
		return b.SessionCount() == 0
	})
}
