package broker

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// ErrPublisherClosed is returned by Publish on a closed Publisher.
var ErrPublisherClosed = errors.New("broker: publisher closed")

// DefaultPublishFlushInterval bounds how long a batched publish may
// linger in the client-side batcher before it is forced onto the wire.
const DefaultPublishFlushInterval = time.Millisecond

// PublisherConfig tunes a client-side publisher.
type PublisherConfig struct {
	// Batching aggregates encoded events into one write system call per
	// batch (the mirror of the broker's outbound session batching, for
	// the client→broker direction). It only takes effect on framed wire
	// conns (tcp, udp); in-process pipes move decoded events by pointer
	// and fall back to per-event sends.
	Batching bool
	// MaxBatchBytes bounds the encoded bytes aggregated before a forced
	// flush (<= 0: transport.DefaultMaxBatchBytes).
	MaxBatchBytes int
	// FlushInterval bounds how long a non-full batch may linger before
	// it is flushed by a background timer (<= 0:
	// DefaultPublishFlushInterval). Reliable events always flush
	// immediately regardless.
	FlushInterval time.Duration
}

// Publisher is a client-side publish handle. With batching enabled it
// drains through a transport.Batcher so gateway-style senders pumping
// many events per interval pay one write system call per batch instead
// of one per event. A Publisher shares its Client's connection; control
// traffic (subscribes, acks) is never delayed by a pending batch, it
// goes out on the conn directly. Safe for concurrent use.
type Publisher struct {
	c             *Client
	flushInterval time.Duration

	mu     sync.Mutex
	bw     *transport.Batcher // nil: unbatched per-event sends
	timer  *time.Timer
	closed bool
}

// Publisher creates a publish handle over this client's connection.
func (c *Client) Publisher(cfg PublisherConfig) *Publisher {
	p := &Publisher{c: c, flushInterval: cfg.FlushInterval}
	if p.flushInterval <= 0 {
		p.flushInterval = DefaultPublishFlushInterval
	}
	// Resilient clients swap conns under the publisher's feet, and a
	// Batcher binds to one FrameConn for life — fall back to per-event
	// sends, which route through the reconnect-aware send path.
	if cfg.Batching && c.res == nil {
		c.connMu.RLock()
		conn := c.conn
		c.connMu.RUnlock()
		if fc, ok := conn.(transport.FrameConn); ok {
			p.bw = transport.NewBatcher(fc, cfg.MaxBatchBytes)
		}
	}
	return p
}

// Batched reports whether this publisher aggregates writes (false on
// in-process conns even when batching was requested).
func (p *Publisher) Batched() bool { return p.bw != nil }

// Publish stamps identity onto e and sends it, batched when enabled.
// The event must not be mutated afterwards; the payload may be reused
// once Publish returns (the encoding is copied into the batch).
// Reliable events force the whole pending batch onto the wire so
// signalling never lingers behind media in a user-space buffer.
func (p *Publisher) Publish(e *event.Event) error {
	if err := p.c.stamp(e); err != nil {
		return err
	}
	if p.bw == nil {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return ErrPublisherClosed
		}
		if err := p.c.sendData(e); err != nil {
			return fmt.Errorf("broker: publish: %w", err)
		}
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPublisherClosed
	}
	wasEmpty := p.bw.Pending() == 0
	if err := p.bw.AddEventInPlace(e); err != nil {
		return fmt.Errorf("broker: publish: %w", err)
	}
	if e.Reliable {
		if err := p.bw.Flush(); err != nil {
			return fmt.Errorf("broker: publish: %w", err)
		}
		return nil
	}
	if wasEmpty && p.bw.Pending() > 0 {
		// First frame of a fresh batch: arm the linger timer so a sender
		// that stops mid-batch still gets its tail delivered.
		if p.timer == nil {
			p.timer = time.AfterFunc(p.flushInterval, p.timedFlush)
		} else {
			p.timer.Reset(p.flushInterval)
		}
	}
	return nil
}

// timedFlush is the linger-timer callback. A flush error here is
// dropped: the conn is broken and the next Publish surfaces it.
func (p *Publisher) timedFlush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.bw == nil {
		return
	}
	_ = p.bw.Flush()
}

// Flush forces any pending batch onto the wire.
func (p *Publisher) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bw == nil || p.closed {
		return nil
	}
	if err := p.bw.Flush(); err != nil {
		return fmt.Errorf("broker: publish flush: %w", err)
	}
	return nil
}

// Close flushes and retires the publisher. The underlying client stays
// open. Idempotent.
func (p *Publisher) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	if p.timer != nil {
		p.timer.Stop()
	}
	if p.bw != nil {
		if err := p.bw.Flush(); err != nil {
			return fmt.Errorf("broker: publish flush: %w", err)
		}
	}
	return nil
}
