package broker

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

func qe(id uint64) *event.Event {
	return &event.Event{ID: id, Topic: "/q", Kind: event.KindData}
}

func TestSendQueueFIFO(t *testing.T) {
	q := newSendQueue(8)
	for i := range 5 {
		q.pushBestEffort(qe(uint64(i)), nil)
	}
	for i := range 5 {
		e, ok := q.pop()
		if !ok || e.ID != uint64(i) {
			t.Fatalf("pop %d = %v, %v", i, e, ok)
		}
	}
}

func TestSendQueueDropOldest(t *testing.T) {
	q := newSendQueue(3)
	for i := range 5 {
		q.pushBestEffort(qe(uint64(i)), nil)
	}
	if q.dropCount() != 2 {
		t.Fatalf("drops = %d, want 2", q.dropCount())
	}
	// Oldest two (0,1) dropped; expect 2,3,4.
	for _, want := range []uint64{2, 3, 4} {
		e, ok := q.pop()
		if !ok || e.ID != want {
			t.Fatalf("pop = %v, %v; want id %d", e, ok, want)
		}
	}
}

func TestSendQueueReliablePriority(t *testing.T) {
	q := newSendQueue(8)
	q.pushBestEffort(qe(1), nil)
	q.pushReliable(qe(100))
	e, _ := q.pop()
	if e.ID != 100 {
		t.Fatalf("pop = %d, want reliable event 100 first", e.ID)
	}
	e, _ = q.pop()
	if e.ID != 1 {
		t.Fatalf("pop = %d, want best-effort 1 second", e.ID)
	}
}

func TestSendQueueReliableNeverDropped(t *testing.T) {
	q := newSendQueue(1)
	for i := range 100 {
		q.pushReliable(qe(uint64(i)))
	}
	if q.depth() != 100 {
		t.Fatalf("depth = %d, want 100", q.depth())
	}
	if q.dropCount() != 0 {
		t.Fatalf("drops = %d, want 0", q.dropCount())
	}
}

func TestSendQueuePopBlocksUntilPush(t *testing.T) {
	q := newSendQueue(4)
	got := make(chan uint64, 1)
	go func() {
		e, ok := q.pop()
		if ok {
			got <- e.ID
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.pushBestEffort(qe(7), nil)
	select {
	case id := <-got:
		if id != 7 {
			t.Fatalf("got %d, want 7", id)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never unblocked")
	}
}

func TestSendQueueCloseDrains(t *testing.T) {
	q := newSendQueue(4)
	q.pushBestEffort(qe(1), nil)
	q.close()
	if e, ok := q.pop(); !ok || e.ID != 1 {
		t.Fatalf("pop after close = %v, %v; want queued event", e, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop after drain should report closed")
	}
}

func TestSendQueueCloseUnblocksPop(t *testing.T) {
	q := newSendQueue(4)
	done := make(chan struct{})
	go func() {
		q.pop()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("pop did not unblock on close")
	}
}

func TestSendQueuePushAfterCloseIgnored(t *testing.T) {
	q := newSendQueue(4)
	q.close()
	if q.pushBestEffort(qe(1), nil) {
		t.Fatal("push accepted after close")
	}
	q.pushReliable(qe(2))
	if _, ok := q.pop(); ok {
		t.Fatal("event queued after close")
	}
}

func TestSendQueueConcurrentProducersConsumer(t *testing.T) {
	q := newSendQueue(100000)
	const producers, per = 8, 1000
	var wg sync.WaitGroup
	for range producers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range per {
				q.pushBestEffort(qe(uint64(i)), nil)
			}
		}()
	}
	received := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for received < producers*per {
			if _, ok := q.pop(); !ok {
				return
			}
			received++
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("consumer stalled at %d", received)
	}
	if received != producers*per {
		t.Fatalf("received %d, want %d", received, producers*per)
	}
}

func TestDedupCache(t *testing.T) {
	d := newDedupCache(3)
	k := func(s string, i uint64) event.Key { return event.Key{Source: s, ID: i} }
	if d.seen(k("a", 1)) {
		t.Fatal("fresh key reported seen")
	}
	if !d.seen(k("a", 1)) {
		t.Fatal("repeated key not reported seen")
	}
	// Out-of-order first arrivals within the window are all fresh, and
	// each repeats as seen.
	for _, id := range []uint64{5, 3, 4, 2} {
		if d.seen(k("a", id)) {
			t.Fatalf("fresh in-window id %d reported seen", id)
		}
		if !d.seen(k("a", id)) {
			t.Fatalf("repeated id %d not reported seen", id)
		}
	}
	// An ID that has fallen below the window is assumed to be a late
	// loop copy.
	d.seen(k("a", dedupWindow+10))
	if !d.seen(k("a", 9)) {
		t.Fatal("below-window id not treated as duplicate")
	}
	// A window jump beyond the full width clears stale bits: the new ID
	// is seen once, its alias from the previous lap is not resurrected.
	if d.seen(k("a", 3*dedupWindow+10)) {
		t.Fatal("fresh id after window jump reported seen")
	}
	if d.seen(k("a", 3*dedupWindow+9)) {
		t.Fatal("pre-jump lap alias survived the window jump")
	}
	// Sources are independent; capacity 3 evicts the oldest source.
	if d.seen(k("b", 1)) {
		t.Fatal("fresh source reported seen")
	}
	d.seen(k("c", 1))
	d.seen(k("d", 1))
	if !d.seen(k("b", 1)) {
		t.Fatal("retained source lost its window")
	}
	if d.seen(k("a", 3*dedupWindow+10)) {
		t.Fatal("evicted source still reported seen")
	}
	if d.len() > 3 {
		t.Fatalf("cache tracks %d sources, capacity 3", d.len())
	}
}

func TestDedupCacheConcurrent(t *testing.T) {
	d := newDedupCache(1024)
	var wg sync.WaitGroup
	for g := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 1000 {
				d.seen(event.Key{Source: fmt.Sprintf("s%d", g), ID: uint64(i + 1)})
			}
		}()
	}
	wg.Wait()
	if d.len() > 1024 {
		t.Fatalf("cache exceeded capacity: %d", d.len())
	}
}
