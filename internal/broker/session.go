package broker

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// relEntry tracks one reliable event awaiting acknowledgement. Exactly
// one of e/frame is set: non-framed sessions retransmit the decoded
// rseq-tagged event, framed sessions retransmit the rseq-patched frame
// (the encoding is never redone after the initial send).
type relEntry struct {
	e        *event.Event
	frame    *event.Frame
	lastSend time.Time
	attempts int
}

// item returns the queue item that (re)sends this entry.
func (r *relEntry) item() outItem {
	return outItem{e: r.e, frame: r.frame, reliable: true}
}

// seqRing is a FIFO ring of reliable sequence numbers ordered by last
// send time: sends append at the tail, and a retransmission re-appends
// with a fresh lastSend, so the head is always the entry that has waited
// longest. Acked entries are not removed eagerly — they are reaped
// lazily when they surface at the head (mirroring the ack floor on the
// receive side).
type seqRing struct {
	buf  []uint64
	head int
	n    int
}

func (r *seqRing) push(v uint64) {
	if r.n == len(r.buf) {
		grown := make([]uint64, max(16, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *seqRing) peek() (uint64, bool) {
	if r.n == 0 {
		return 0, false
	}
	return r.buf[r.head], true
}

func (r *seqRing) pop() (uint64, bool) {
	v, ok := r.peek()
	if !ok {
		return 0, false
	}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v, true
}

// session is the broker-side state for one attached remote: either a
// client or a peer broker link.
type session struct {
	b      *Broker
	conn   transport.Conn
	id     string
	isPeer bool
	// token is the resume token minted for client sessions when session
	// linger is enabled (empty otherwise). Immutable after attach; a
	// dying session parks under it so a redialing client can reattach.
	token string
	// dialed marks a peer session this broker established (vs accepted) —
	// the tie-break input for duplicate-link resolution.
	dialed bool
	// framed reports whether conn supports pre-encoded frames, decided
	// once at attach so the data path never type-asserts per event.
	framed bool
	queue  *sendQueue

	// pool is the writer pool that drains this session's queue; nil runs
	// the legacy dedicated writeLoop goroutine instead (the per-session
	// ablation). Bound once before start; immutable after.
	pool *writerPool
	// scheduled is the pool-mode dirty flag: true while the session sits
	// on (or is being appended to) its pool's ready list. Producers
	// CAS-arm it so a burst deposits exactly one ready entry.
	scheduled atomic.Bool
	// sink / writerDone / lingering / lingerAt are pool-mode writer state,
	// owned exclusively by the pool goroutine (sessions bind to one pool
	// for life): the persistent outSink, the finalized flag set once the
	// queue drained closed, and the flush-coalescing window bookkeeping.
	sink       outSink
	writerDone bool
	lingering  bool
	lingerAt   time.Time

	// lastRecv is the unixnano of the newest inbound traffic, updated by
	// the read loop per receive. Mesh supervisors read it for heartbeat
	// partition detection; attach reads it to judge link freshness.
	lastRecv atomic.Int64

	// fwdCtr/dupCtr/linkDropCtr are the per-peer-link instruments
	// (broker.peer.<id>.forwarded / .dup_dropped / .queue_drops),
	// resolved once at attach for peer sessions; nil otherwise.
	fwdCtr      *metrics.Counter
	dupCtr      *metrics.Counter
	linkDropCtr *metrics.Counter

	wg        sync.WaitGroup
	closeOnce sync.Once
	// closedCh is closed when the session tears down; mesh supervisors
	// select on it to notice link death without polling.
	closedCh chan struct{}

	// Reliable sender state: events sent with e.Reliable await cumulative
	// acks; the housekeeping loop retransmits stragglers.
	relMu    sync.Mutex
	nextRSeq uint64
	// ackFloor is the highest cumulative ack applied; every rseq in
	// (ackFloor, nextRSeq] is present in unacked, which lets handleAck
	// delete exactly the newly-acked range instead of sweeping the whole
	// window.
	ackFloor uint64
	unacked  map[uint64]*relEntry
	// relOrder holds the unacked rseqs in lastSend order so retransmit
	// scans only the expired prefix instead of sweeping the whole window.
	relOrder seqRing

	// Reliable receiver state: rseq-tagged events arriving on this
	// session are deduplicated and cumulatively acknowledged.
	recvMu  sync.Mutex
	recvCum uint64              // highest contiguous rseq delivered
	ahead   map[uint64]struct{} // delivered above the contiguous point

	// Replay streams this session opened on the durable log plane,
	// keyed by client-chosen stream id. replayMu also guards each
	// stream's stopped/attached flags.
	replayMu sync.Mutex
	replays  map[uint64]*sessionReplay

	// stageSlot is this session's staging slot in a route sweep's current
	// burst, packed as (sweep generation << stageIdxBits | index).
	// Generations are globally unique per burst, so a slot written by a
	// concurrent sweep never validates — staging is O(1) per (event,
	// target) with no map, and a clobbered slot only costs an extra
	// (order-preserving) batch push.
	stageSlot atomic.Uint64

	// remotePatterns is peer-link soft state: pattern → origin broker →
	// advertisement entry (refresh time + the peer's advertised hop
	// distance to that origin). Guarded by the broker mutex.
	remotePatterns map[string]map[string]advEntry

	// routedPatterns tracks which patterns this peer session currently
	// occupies in the routing trie — in routed mode the chosen-next-hop
	// subset of remotePatterns, in flood mode every advertised pattern.
	// Guarded by the broker mutex.
	routedPatterns map[string]struct{}

	// localPatterns tracks a client's own subscriptions so disconnect can
	// release refcounts. Guarded by the broker mutex.
	localPatterns map[string]struct{}

	// Credit flow control (peer links only; creditWindow 0 disables).
	// Sender side: staged best-effort data is admitted while
	//   creditSent - queue.dataEvicted - creditConsumed < creditWindow,
	// where creditConsumed is refilled by the remote's cumulative grants —
	// so a link whose receiver stops draining pushes back at the stage
	// point (shedding counted in credit_stalls) instead of churning the
	// send queue until overflow sheds blindly.
	creditWindow   int
	creditSent     atomic.Uint64
	creditConsumed atomic.Uint64
	creditStallCtr *metrics.Counter
	// Receiver side (readLoop-owned, unsynchronized): consumed best-effort
	// data events since attach, and the count last granted to the remote.
	creditQuantum int
	creditRecvd   uint64
	creditGranted uint64
}

// advEntry is one (pattern, origin) advertisement received on a peer
// link: when it was last refreshed and the peer's own hop distance to
// the origin (this broker's cost via the link is hops+1).
type advEntry struct {
	last time.Time
	hops int
}

func newSession(b *Broker, conn transport.Conn, id string, isPeer bool) *session {
	_, framed := conn.(transport.FrameConn)
	s := &session{
		b:              b,
		conn:           conn,
		id:             id,
		isPeer:         isPeer,
		framed:         framed,
		queue:          newSendQueue(b.cfg.QueueDepth),
		closedCh:       make(chan struct{}),
		unacked:        make(map[uint64]*relEntry),
		ahead:          make(map[uint64]struct{}),
		remotePatterns: make(map[string]map[string]advEntry),
		routedPatterns: make(map[string]struct{}),
		localPatterns:  make(map[string]struct{}),
	}
	if isPeer && b.cfg.PeerCreditWindow > 0 {
		s.creditWindow = b.cfg.PeerCreditWindow
		s.creditQuantum = max(1, s.creditWindow/4)
	}
	s.lastRecv.Store(time.Now().UnixNano())
	return s
}

// creditCharge reports whether one best-effort data event may be staged
// on this link under its credit window — charging the window on admit,
// so even within one staged burst the window is exact — and counts a
// stall otherwise. Non-peer sessions and disabled windows always admit.
func (s *session) creditCharge() bool {
	if s.creditWindow <= 0 {
		return true
	}
	outstanding := int64(s.creditSent.Load()) -
		int64(s.queue.dataEvictedCount()) -
		int64(s.creditConsumed.Load())
	if outstanding < int64(s.creditWindow) {
		s.creditSent.Add(1)
		return true
	}
	if s.creditStallCtr != nil {
		s.creditStallCtr.Inc()
	}
	return false
}

// noteConsumed records n inbound best-effort data events consumed from
// this peer link and pushes a cumulative grant to the remote once a
// quantum (window/4) has accumulated. readLoop-only.
func (s *session) noteConsumed(n int) {
	if n == 0 || s.creditQuantum <= 0 {
		return
	}
	s.creditRecvd += uint64(n)
	if s.creditRecvd-s.creditGranted >= uint64(s.creditQuantum) {
		s.creditGranted = s.creditRecvd
		s.queue.pushCredit(s.creditRecvd)
	}
}

// noteCreditGrant applies a cumulative consumption grant from the
// remote. Grants only ever move the floor forward.
func (s *session) noteCreditGrant(cum uint64) {
	if cum > s.creditConsumed.Load() {
		s.creditConsumed.Store(cum)
	}
}

// lastRecvTime returns when the session last saw inbound traffic.
func (s *session) lastRecvTime() time.Time {
	return time.Unix(0, s.lastRecv.Load())
}

// touchRecv records inbound traffic for freshness/heartbeat checks.
func (s *session) touchRecv() { s.lastRecv.Store(time.Now().UnixNano()) }

// bindPool routes this session's queue wakeups to a writer pool instead
// of a dedicated writeLoop goroutine. Must run before start (and before
// any concurrent push can signal the queue).
func (s *session) bindPool(p *writerPool) {
	s.pool = p
	p.bound.Add(1)
	s.queue.onSignal = func() bool { return p.wake(s) }
}

// start launches the session goroutines: the reader always, plus the
// dedicated writer only in the legacy (pool-less) mode — pool-bound
// sessions are drained by their pool's goroutine instead.
func (s *session) start() {
	if s.pool != nil {
		s.wg.Add(1)
		go s.readLoop()
		return
	}
	s.wg.Add(2)
	go s.readLoop()
	go s.writeLoop()
}

// deliver routes one event to this session respecting its reliability.
// fs, when non-nil, supplies the shared encode-once frame for framed
// conns; callers on the fan-out path pass one frameSource for the whole
// target set.
func (s *session) deliver(e *event.Event, fs *frameSource) {
	if e.Reliable {
		if s.fwdCtr != nil {
			s.fwdCtr.Inc()
		}
		s.sendReliableFrom(e, fs)
		return
	}
	if s.fwdCtr != nil {
		s.fwdCtr.Inc()
	}
	var f *event.Frame
	if s.framed && fs != nil {
		f = fs.frame()
	}
	if !s.queue.pushBestEffort(e, f) {
		s.b.ctr.queueDrops.Inc()
		if s.linkDropCtr != nil {
			s.linkDropCtr.Inc()
		}
	}
}

// sendReliable tags e with this session's next rseq and enqueues it on
// the never-dropped lane.
func (s *session) sendReliable(e *event.Event) {
	s.sendReliableFrom(e, nil)
}

// sendReliableFrom is sendReliable with an optional shared frame source.
// On framed sessions the event is encoded once (into a frame with a
// trailing rseq slot — shared across the whole fan-out when fs is
// non-nil) and each target's tagging is an 8-byte patch on a buffer
// copy; the frame is also what retransmits, so the entry never pins a
// receive arena. Non-framed (in-process) sessions keep a deep copy —
// reliable traffic is sparse signalling, and the copy detaches the
// retained entry from any arena chunk the event was decoded in.
func (s *session) sendReliableFrom(e *event.Event, fs *frameSource) {
	s.relMu.Lock()
	if len(s.unacked) >= s.b.cfg.ReliableWindow {
		// The remote stopped acking; disconnecting is the only safe move
		// that doesn't grow memory without bound.
		s.relMu.Unlock()
		s.b.metrics().Counter("broker.reliable_overflow").Inc()
		s.close()
		return
	}
	s.nextRSeq++
	rseq := s.nextRSeq
	var entry *relEntry
	if s.framed {
		var base *event.Frame
		if fs != nil {
			base = fs.reliableFrame()
		} else {
			base = event.NewFrameWithRSeqSlot(e)
		}
		entry = &relEntry{frame: base.WithRSeq(rseq), lastSend: time.Now(), attempts: 1}
	} else {
		c := e.Clone()
		c.RSeq = rseq
		entry = &relEntry{e: c, lastSend: time.Now(), attempts: 1}
	}
	s.unacked[rseq] = entry
	s.relOrder.push(rseq)
	s.relMu.Unlock()
	s.queue.pushItem(entry.item())
}

// sendReliableAt re-sends a parked reliable event under its ORIGINAL
// rseq on a resumed session. The successor session's counters were
// seeded from the park (nextRSeq covers every salvaged rseq), so the
// entry slots back into the window exactly where it was: the client's
// cumulative dedup then delivers each salvaged event at most once even
// when the ack for the first delivery was lost in the disconnect.
// Callers replay in ascending rseq order before the session starts.
func (s *session) sendReliableAt(e *event.Event, rseq uint64) {
	s.relMu.Lock()
	var entry *relEntry
	if s.framed {
		entry = &relEntry{frame: event.NewFrameWithRSeqSlot(e).WithRSeq(rseq), lastSend: time.Now(), attempts: 1}
	} else {
		c := e.Clone()
		c.RSeq = rseq
		entry = &relEntry{e: c, lastSend: time.Now(), attempts: 1}
	}
	s.unacked[rseq] = entry
	s.relOrder.push(rseq)
	s.relMu.Unlock()
	s.queue.pushItem(entry.item())
}

// handleAck applies a cumulative acknowledgement. Cost is proportional
// to the number of newly acknowledged events, not the window size: every
// rseq between the previous floor and cum is deleted directly.
func (s *session) handleAck(cum uint64) {
	s.relMu.Lock()
	defer s.relMu.Unlock()
	if cum > s.nextRSeq {
		cum = s.nextRSeq
	}
	for rseq := s.ackFloor + 1; rseq <= cum; rseq++ {
		delete(s.unacked, rseq)
	}
	if cum > s.ackFloor {
		s.ackFloor = cum
	}
}

// unackedLen reports the reliable-window occupancy.
func (s *session) unackedLen() int {
	s.relMu.Lock()
	defer s.relMu.Unlock()
	return len(s.unacked)
}

// retransmit re-enqueues unacked reliable events older than rto. It
// reports whether the session should be closed (too many attempts).
// Cost is proportional to the expired prefix of the send-order ring
// (plus lazily reaped acked entries), not the window size, so large
// reliable windows stay cheap on the housekeeping timer path.
func (s *session) retransmit(now time.Time, rto time.Duration, maxAttempts int) bool {
	s.relMu.Lock()
	defer s.relMu.Unlock()
	for {
		rseq, ok := s.relOrder.peek()
		if !ok {
			return false
		}
		entry, live := s.unacked[rseq]
		if !live {
			s.relOrder.pop() // acked since its last send; reap
			continue
		}
		if now.Sub(entry.lastSend) < rto {
			// The ring is ordered by lastSend: everything behind the head
			// is younger still.
			return false
		}
		if entry.attempts >= maxAttempts {
			return true
		}
		s.relOrder.pop()
		entry.attempts++
		entry.lastSend = now
		s.relOrder.push(rseq)
		// Retransmission reuses the stored form — the rseq-patched frame on
		// framed sessions — so a retry never re-encodes.
		s.queue.pushItem(entry.item())
		s.b.ctr.retransmits.Inc()
	}
}

// salvageUnacked extracts this session's unacknowledged reliable events
// in send order, stripped of their per-hop sequence tags, so a successor
// link to the same peer can replay them. Frame-backed entries are decoded
// once here — link death is rare, and the replay re-tags with the new
// session's rseqs anyway. Events the remote did receive (ack lost in the
// partition) replay harmlessly: data events hit the mesh-wide duplicate
// cache, advertisement applies are seq-idempotent.
func (s *session) salvageUnacked() []*event.Event {
	s.relMu.Lock()
	defer s.relMu.Unlock()
	if len(s.unacked) == 0 {
		return nil
	}
	rseqs := make([]uint64, 0, len(s.unacked))
	for r := range s.unacked {
		rseqs = append(rseqs, r)
	}
	sort.Slice(rseqs, func(i, j int) bool { return rseqs[i] < rseqs[j] })
	out := make([]*event.Event, 0, len(rseqs))
	for _, r := range rseqs {
		ent := s.unacked[r]
		e := ent.e
		if e == nil && ent.frame != nil {
			dec, err := ent.frame.Decode()
			if err != nil {
				continue
			}
			e = dec
		}
		if e == nil {
			continue
		}
		if e.Topic == topicPeer {
			// Hello replies are per-link handshake state, not payload;
			// the successor link runs its own handshake.
			continue
		}
		out = append(out, stripRSeq(e))
	}
	return out
}

// parkedEvent is one salvaged reliable event awaiting resume replay,
// keeping its original per-hop sequence so the successor session can
// re-send it under the same rseq (exactly-once across the reconnect).
type parkedEvent struct {
	rseq uint64
	e    *event.Event
}

// salvageParked extracts the session's unacknowledged reliable window
// for parking: rseq-ordered, decoded from frames, tags stripped from
// the stored events (the rseq travels alongside instead). Unlike
// salvageUnacked this preserves the original sequence numbers — a
// resumed session replays into the SAME numbering space, which is what
// lets the client's cumulative dedup absorb redeliveries.
func (s *session) salvageParked() []parkedEvent {
	s.relMu.Lock()
	defer s.relMu.Unlock()
	if len(s.unacked) == 0 {
		return nil
	}
	rseqs := make([]uint64, 0, len(s.unacked))
	for r := range s.unacked {
		rseqs = append(rseqs, r)
	}
	sort.Slice(rseqs, func(i, j int) bool { return rseqs[i] < rseqs[j] })
	out := make([]parkedEvent, 0, len(rseqs))
	for _, r := range rseqs {
		ent := s.unacked[r]
		e := ent.e
		if e == nil && ent.frame != nil {
			dec, err := ent.frame.Decode()
			if err != nil {
				continue
			}
			e = dec
		}
		if e == nil {
			continue
		}
		out = append(out, parkedEvent{rseq: r, e: stripRSeq(e)})
	}
	return out
}

// relSnapshot reads the reliable sender counters for parking.
func (s *session) relSnapshot() (nextRSeq, ackFloor uint64) {
	s.relMu.Lock()
	defer s.relMu.Unlock()
	return s.nextRSeq, s.ackFloor
}

// seedReliable initialises a resumed session's reliable counters from
// its predecessor's park. Must run before the session starts (no
// concurrent senders yet).
func (s *session) seedReliable(nextRSeq, ackFloor, recvCum uint64) {
	s.nextRSeq = nextRSeq
	s.ackFloor = ackFloor
	s.recvCum = recvCum
}

// acceptReliable performs receiver-side dedup for an rseq-tagged event.
// It returns the cumulative ack to send and whether the event is new.
func (s *session) acceptReliable(rseq uint64) (cum uint64, fresh bool) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	if rseq <= s.recvCum {
		return s.recvCum, false
	}
	if _, dup := s.ahead[rseq]; dup {
		return s.recvCum, false
	}
	s.ahead[rseq] = struct{}{}
	for {
		if _, ok := s.ahead[s.recvCum+1]; !ok {
			break
		}
		delete(s.ahead, s.recvCum+1)
		s.recvCum++
	}
	return s.recvCum, true
}

// inboundRSeq extracts the hop-by-hop reliable sequence tag from an
// inbound event: the wire-native trailing field, or the legacy header.
// bad reports a malformed tag (the event must be discarded).
func inboundRSeq(e *event.Event) (rseq uint64, tagged, bad bool) {
	if e.RSeq != 0 {
		return e.RSeq, true, false
	}
	str, ok := e.Headers[hdrRSeq]
	if !ok {
		return 0, false, false
	}
	v, err := parseUint(str)
	if err != nil {
		return 0, true, true
	}
	return v, true, false
}

// stripRSeq returns e without its per-hop sequence tag, never mutating
// the original (which other sessions may share). The wire-native tag
// costs a shallow struct copy; the legacy header form pays a clone.
func stripRSeq(e *event.Event) *event.Event {
	if e.RSeq != 0 {
		c := *e
		c.RSeq = 0
		return &c
	}
	c := e.Clone()
	delete(c.Headers, hdrRSeq)
	return c
}

func (s *session) readLoop() {
	defer s.wg.Done()
	defer s.close()
	bc, burst := s.conn.(transport.BurstConn)
	maxBurst := s.b.cfg.IngestBurst
	if !burst || maxBurst <= 1 {
		for {
			e, err := s.conn.Recv()
			if err != nil {
				return
			}
			s.touchRecv()
			s.b.ctr.eventsIn.Inc()
			e, isControl := s.ingestPrepare(e, nil)
			switch {
			case e == nil:
			case isControl:
				s.handleControl(e)
			default:
				if !e.Reliable {
					s.noteConsumed(1)
				}
				s.b.route(e, s)
			}
		}
	}

	// Burst ingest: decode everything one read delivered, then route the
	// burst in one sweep — targets resolved once per topic, each session
	// locked and signalled once. A control event flushes the pending
	// sweep first, so request ordering within the burst is preserved.
	// The reliable reverse path is coalesced the same way: one cumulative
	// ack per burst instead of one per rseq-tagged event.
	sweep := s.b.newRouteSweep()
	events := make([]*event.Event, 0, maxBurst)
	routable := make([]*event.Event, 0, maxBurst)
	flush := func() {
		if len(routable) > 0 {
			sweep.routeBatch(routable, s)
			clear(routable)
			routable = routable[:0]
		}
	}
	var ack ackState
	for {
		events = events[:0]
		events, err := bc.RecvBurst(events, maxBurst)
		if len(events) > 0 {
			s.touchRecv()
		}
		s.b.ctr.eventsIn.Add(uint64(len(events)))
		ack = ackState{}
		consumed := 0
		for _, e := range events {
			e, isControl := s.ingestPrepare(e, &ack)
			switch {
			case e == nil:
			case isControl:
				flush()
				s.handleControl(e)
			default:
				if !e.Reliable {
					consumed++
				}
				routable = append(routable, e)
			}
		}
		flush()
		s.noteConsumed(consumed)
		if ack.due {
			s.queue.pushAck(ack.cum)
		}
		// Drop event references eagerly: the reused burst buffer must not
		// pin arena-decoded payloads across idle periods.
		clear(events)
		if err != nil {
			return
		}
	}
}

// ackState accumulates the reverse-path cumulative acknowledgement for
// one ingest burst. Acks are cumulative, so the burst needs exactly one
// — carrying the final floor — rather than one per rseq-tagged event:
// on a lossy peer link that cuts the reverse-path traffic by the burst
// width.
type ackState struct {
	due bool
	cum uint64
}

// ingestPrepare applies the per-event front half of ingest — hop
// reliability, control detection, validation. It returns the prepared
// event (nil when consumed or discarded) and whether it is a control
// request for handleControl rather than a routable publish. When ack is
// non-nil the reliable acknowledgement is recorded there for the caller
// to send once per burst; otherwise it is pushed immediately.
func (s *session) ingestPrepare(e *event.Event, ack *ackState) (*event.Event, bool) {
	// Hop-by-hop reliability: rseq-tagged events (control or data) are
	// deduplicated and cumulatively acknowledged before processing.
	if rseq, tagged, bad := inboundRSeq(e); tagged && e.Topic != topicAck {
		if bad {
			return nil, false
		}
		cum, fresh := s.acceptReliable(rseq)
		if ack != nil {
			ack.due, ack.cum = true, cum
		} else {
			s.queue.pushAck(cum)
		}
		if !fresh {
			return nil, false
		}
		// Strip the per-hop sequence before re-routing.
		e = stripRSeq(e)
	}
	if isControlTopic(e.Topic) {
		return e, true
	}
	if e.Validate() != nil {
		s.b.ctr.invalid.Inc()
		return nil, false
	}
	return e, false
}

func (s *session) handleControl(e *event.Event) {
	switch e.Topic {
	case topicSub:
		pattern := e.Headers[hdrPattern]
		if err := s.b.subscribe(s, pattern); err != nil {
			s.b.metrics().Counter("broker.bad_subscribes").Inc()
		}
	case topicUnsub:
		s.b.unsubscribe(s, e.Headers[hdrPattern])
	case topicAck:
		if cum, err := headerUint(e, hdrRSeq); err == nil {
			s.b.ctr.acksIn.Inc()
			s.handleAck(cum)
		}
	case topicSubAdv:
		if s.isPeer {
			s.b.handleAdvertisement(s, e)
		}
	case topicPing:
		// Echo so clients can fence control-plane ordering: once the pong
		// arrives, every prior request on this session has been applied.
		// The echo rides the reliable machinery so it survives lossy links.
		s.sendReliable(e)
	case topicCredit:
		// Flow-control grant: the remote reports its cumulative count of
		// consumed best-effort data events, refilling our send window.
		if s.isPeer {
			if cum, err := headerUint(e, hdrSeq); err == nil {
				s.noteCreditGrant(cum)
			}
		}
	case topicPeerHB:
		// Mesh heartbeat: answer pings best-effort (an idle link has queue
		// room; a busy link keeps lastRecv fresh through data anyway) and
		// ignore pongs — receiving either already touched lastRecv, which
		// is what the dialer-side supervisor watches.
		if s.isPeer && e.Headers[hdrOp] == hbPing {
			s.queue.pushBestEffort(peerHeartbeatEvent(hbPong), nil)
		}
	case topicReplay:
		switch e.Headers[hdrOp] {
		case repStart:
			s.startReplay(e)
		case repStop:
			if id, err := headerUint(e, hdrReplay); err == nil {
				s.stopReplay(id)
			}
		}
	default:
		s.b.metrics().Counter("broker.unknown_control").Inc()
	}
}

// outSink abstracts the writer's aggregation strategy per conn
// capability: encoded frame batches flushed with one vectored write
// (FrameConn), decoded-event batches handed over in one call
// (EventBatchConn — in-process pipes, where the shaper charges syscall
// cost per call), or plain per-event sends.
type outSink interface {
	// add queues one item; implementations may flush internally on size.
	add(it outItem) error
	// flush forces everything queued onto the conn.
	flush() error
	// pending reports how many items await a flush.
	pending() int
	// ready reports whether the sink can absorb another drain round
	// without blocking the caller on consumer backpressure, attempting a
	// non-blocking partial flush first when it supports one. Pool
	// goroutines check it per round so one clogged session never
	// head-of-line-blocks its pool siblings; sinks without a
	// non-blocking path always report true (their flushes block, as the
	// legacy per-session writer's did).
	ready() (bool, error)
	// flushIdle empties the sink if it can do so without blocking and
	// reports whether everything went out; sinks without a non-blocking
	// path flush fully (blocking) and report true.
	flushIdle() (bool, error)
}

type directSink struct{ conn transport.Conn }

func (d *directSink) add(it outItem) error     { return d.conn.Send(it.e) }
func (d *directSink) flush() error             { return nil }
func (d *directSink) pending() int             { return 0 }
func (d *directSink) ready() (bool, error)     { return true, nil }
func (d *directSink) flushIdle() (bool, error) { return true, nil }

type frameSink struct{ bw *transport.Batcher }

func (f *frameSink) add(it outItem) error {
	if it.frame != nil {
		return f.bw.Add(it.frame.Bytes())
	}
	return f.bw.AddEvent(it.e)
}
func (f *frameSink) flush() error             { return f.bw.Flush() }
func (f *frameSink) pending() int             { return f.bw.Pending() }
func (f *frameSink) ready() (bool, error)     { return true, nil }
func (f *frameSink) flushIdle() (bool, error) { return true, f.bw.Flush() }

type eventBatchSink struct {
	bc transport.EventBatchConn
	// try, when non-nil, is bc's non-blocking partial-send path. Only
	// pool-owned sinks set it: the legacy per-session writer wants the
	// blocking send — consumer backpressure pacing its dedicated
	// goroutine — while a pool goroutine must never stall on one
	// session's full pipe.
	try transport.TryEventBatchConn
	buf []*event.Event
	max int
}

func (s *eventBatchSink) add(it outItem) error {
	s.buf = append(s.buf, it.e)
	if len(s.buf) >= s.max {
		if s.try != nil {
			return s.tryFlush()
		}
		return s.flush()
	}
	return nil
}

func (s *eventBatchSink) flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	err := s.bc.SendEvents(s.buf)
	clear(s.buf) // never pin delivered events in the reused buffer
	s.buf = s.buf[:0]
	return err
}

// tryFlush sends the largest prefix of the buffer the conn can absorb
// without blocking — nothing below a quarter-batch floor, so a slowly
// draining consumer gets a few useful messages instead of many tiny
// ones — keeping the rest (in order) for a later retry. A full conn is
// not an error: the caller parks the session instead.
func (s *eventBatchSink) tryFlush() error {
	if len(s.buf) == 0 {
		return nil
	}
	n, err := s.try.TrySendEvents(s.buf, s.max/4)
	if err != nil {
		return err
	}
	if n > 0 {
		rest := copy(s.buf, s.buf[n:])
		clear(s.buf[rest:]) // never pin delivered events in the reused buffer
		s.buf = s.buf[:rest]
	}
	return nil
}

func (s *eventBatchSink) pending() int { return len(s.buf) }

func (s *eventBatchSink) ready() (bool, error) {
	if s.try == nil || len(s.buf) < s.max {
		return true, nil
	}
	if err := s.tryFlush(); err != nil {
		return false, err
	}
	return len(s.buf) < s.max, nil
}

func (s *eventBatchSink) flushIdle() (bool, error) {
	if s.try == nil {
		return true, s.flush()
	}
	if err := s.tryFlush(); err != nil {
		return false, err
	}
	return len(s.buf) == 0, nil
}

// newOutSink picks the aggregation strategy for this session's conn.
// IngestBurst <= 1 (the ablation setting) also disables decoded-event
// egress batching, so one knob degenerates the whole data path to
// event-at-a-time behaviour.
func (s *session) newOutSink() outSink {
	cfg := s.b.cfg
	if fc, ok := s.conn.(transport.FrameConn); ok {
		return &frameSink{bw: transport.NewBatcher(fc, cfg.MaxBatchBytes)}
	}
	if bc, ok := s.conn.(transport.EventBatchConn); ok && cfg.IngestBurst > 1 {
		sink := &eventBatchSink{bc: bc, max: cfg.IngestBurst}
		if s.pool != nil {
			if tc, ok := bc.(transport.TryEventBatchConn); ok {
				sink.try = tc
			}
		}
		return sink
	}
	return &directSink{conn: s.conn}
}

// writeLoop drains the send queue onto the conn through an outSink,
// flushing on three triggers: the sink's own size bound, the reliable
// lane (which must never linger in user space), and the queue going
// idle — either immediately (FlushInterval 0) or after lingering up to
// FlushInterval for more traffic to coalesce with.
func (s *session) writeLoop() {
	defer s.wg.Done()
	cfg := s.b.cfg
	sink := s.newOutSink()

	// fail closes the session and discards the remaining queue so close()
	// can complete.
	fail := func() {
		s.close()
		for {
			if _, st := s.queue.tryPop(); st != popOK {
				return
			}
		}
	}

	// Burst drain: pop everything queued under one lock acquisition (the
	// consumer-side mirror of pushBatch). IngestBurst <= 1 keeps the
	// event-at-a-time pops of the pre-batching data path.
	batchMax := 0
	if cfg.IngestBurst > 1 {
		batchMax = cfg.IngestBurst
	}
	var drain []outItem

	var lingerTimer *time.Timer
	for {
		var st popState
		drain = drain[:0]
		if batchMax > 0 {
			drain, st = s.queue.popBatch(drain, batchMax)
		} else {
			var it outItem
			it, st = s.queue.tryPop()
			if st == popOK {
				drain = append(drain, it)
			}
		}
		switch st {
		case popOK:
			for _, it := range drain {
				if err := sink.add(it); err != nil {
					fail()
					return
				}
				if it.reliable {
					// Signalling and acks flush as soon as the reliable lane
					// drains; they are never coalesced past their turn.
					if err := sink.flush(); err != nil {
						fail()
						return
					}
				}
			}
			s.b.ctr.eventsOut.Add(uint64(len(drain)))
			// Drop references so the reused drain buffer never pins events.
			clear(drain)
		case popEmpty:
			if sink.pending() > 0 {
				if cfg.FlushInterval > 0 {
					if lingerTimer == nil {
						lingerTimer = time.NewTimer(cfg.FlushInterval)
					} else {
						lingerTimer.Reset(cfg.FlushInterval)
					}
					select {
					case <-s.queue.waitCh():
						if !lingerTimer.Stop() {
							<-lingerTimer.C
						}
						continue // more traffic arrived; keep batching
					case <-lingerTimer.C:
					}
				}
				if err := sink.flush(); err != nil {
					fail()
					return
				}
				continue // re-check: traffic may have arrived during flush
			}
			<-s.queue.waitCh()
		case popClosed:
			// Graceful drain: whatever reached the sink goes out before
			// the writer exits (the conn may already be closed on abortive
			// shutdown, in which case the flush error is moot).
			_ = sink.flush()
			return
		}
	}
}

// close tears the session down and detaches it from the broker. Safe to
// call multiple times and from any goroutine.
func (s *session) close() {
	s.closeOnce.Do(func() {
		// Close the queue first so a writer mid-drain flushes its batch
		// and exits before the conn is torn down under it; Send/Flush on
		// the closed conn then fail cleanly for any write already past
		// the queue.
		s.queue.close()
		_ = s.conn.Close()
		s.b.detach(s)
		close(s.closedCh)
		// Replay teardown runs on its own goroutine: close() can be
		// reached from an attached tail delivery inside the log's append
		// lock (reliable-window overflow), and closing the cursors needs
		// that same lock.
		s.replayMu.Lock()
		active := len(s.replays)
		s.replayMu.Unlock()
		if active > 0 {
			go s.teardownReplays()
		}
	})
}

// stop closes and waits for the session goroutines (not callable from
// within those goroutines).
func (s *session) stop() {
	s.close()
	s.wg.Wait()
}
