package broker

import (
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// relEntry tracks one reliable event awaiting acknowledgement.
type relEntry struct {
	e        *event.Event
	lastSend time.Time
	attempts int
}

// seqRing is a FIFO ring of reliable sequence numbers ordered by last
// send time: sends append at the tail, and a retransmission re-appends
// with a fresh lastSend, so the head is always the entry that has waited
// longest. Acked entries are not removed eagerly — they are reaped
// lazily when they surface at the head (mirroring the ack floor on the
// receive side).
type seqRing struct {
	buf  []uint64
	head int
	n    int
}

func (r *seqRing) push(v uint64) {
	if r.n == len(r.buf) {
		grown := make([]uint64, max(16, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *seqRing) peek() (uint64, bool) {
	if r.n == 0 {
		return 0, false
	}
	return r.buf[r.head], true
}

func (r *seqRing) pop() (uint64, bool) {
	v, ok := r.peek()
	if !ok {
		return 0, false
	}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v, true
}

// session is the broker-side state for one attached remote: either a
// client or a peer broker link.
type session struct {
	b      *Broker
	conn   transport.Conn
	id     string
	isPeer bool
	// framed reports whether conn supports pre-encoded frames, decided
	// once at attach so the data path never type-asserts per event.
	framed bool
	queue  *sendQueue

	wg        sync.WaitGroup
	closeOnce sync.Once

	// Reliable sender state: events sent with e.Reliable await cumulative
	// acks; the housekeeping loop retransmits stragglers.
	relMu    sync.Mutex
	nextRSeq uint64
	// ackFloor is the highest cumulative ack applied; every rseq in
	// (ackFloor, nextRSeq] is present in unacked, which lets handleAck
	// delete exactly the newly-acked range instead of sweeping the whole
	// window.
	ackFloor uint64
	unacked  map[uint64]*relEntry
	// relOrder holds the unacked rseqs in lastSend order so retransmit
	// scans only the expired prefix instead of sweeping the whole window.
	relOrder seqRing

	// Reliable receiver state: rseq-tagged events arriving on this
	// session are deduplicated and cumulatively acknowledged.
	recvMu  sync.Mutex
	recvCum uint64              // highest contiguous rseq delivered
	ahead   map[uint64]struct{} // delivered above the contiguous point

	// remotePatterns is peer-link soft state: pattern → origin broker →
	// last refresh time. Guarded by the broker mutex.
	remotePatterns map[string]map[string]time.Time

	// localPatterns tracks a client's own subscriptions so disconnect can
	// release refcounts. Guarded by the broker mutex.
	localPatterns map[string]struct{}
}

func newSession(b *Broker, conn transport.Conn, id string, isPeer bool) *session {
	_, framed := conn.(transport.FrameConn)
	return &session{
		b:              b,
		conn:           conn,
		id:             id,
		isPeer:         isPeer,
		framed:         framed,
		queue:          newSendQueue(b.cfg.QueueDepth),
		unacked:        make(map[uint64]*relEntry),
		ahead:          make(map[uint64]struct{}),
		remotePatterns: make(map[string]map[string]time.Time),
		localPatterns:  make(map[string]struct{}),
	}
}

// start launches the reader and writer goroutines.
func (s *session) start() {
	s.wg.Add(2)
	go s.readLoop()
	go s.writeLoop()
}

// deliver routes one event to this session respecting its reliability.
// fs, when non-nil, supplies the shared encode-once frame for framed
// conns; callers on the fan-out path pass one frameSource for the whole
// target set.
func (s *session) deliver(e *event.Event, fs *frameSource) {
	if e.Reliable {
		s.sendReliable(e)
		return
	}
	var f *event.Frame
	if s.framed && fs != nil {
		f = fs.frame()
	}
	if !s.queue.pushBestEffort(e, f) {
		s.b.ctr.queueDrops.Inc()
	}
}

// sendReliable clones e, tags it with this session's next rseq and
// enqueues it on the never-dropped lane.
func (s *session) sendReliable(e *event.Event) {
	s.relMu.Lock()
	if len(s.unacked) >= s.b.cfg.ReliableWindow {
		// The remote stopped acking; disconnecting is the only safe move
		// that doesn't grow memory without bound.
		s.relMu.Unlock()
		s.b.metrics().Counter("broker.reliable_overflow").Inc()
		s.close()
		return
	}
	s.nextRSeq++
	rseq := s.nextRSeq
	c := e.Clone()
	if c.Headers == nil {
		c.Headers = make(map[string]string, 1)
	}
	c.Headers[hdrRSeq] = formatUint(rseq)
	s.unacked[rseq] = &relEntry{e: c, lastSend: time.Now(), attempts: 1}
	s.relOrder.push(rseq)
	s.relMu.Unlock()
	s.queue.pushReliable(c)
}

// handleAck applies a cumulative acknowledgement. Cost is proportional
// to the number of newly acknowledged events, not the window size: every
// rseq between the previous floor and cum is deleted directly.
func (s *session) handleAck(cum uint64) {
	s.relMu.Lock()
	defer s.relMu.Unlock()
	if cum > s.nextRSeq {
		cum = s.nextRSeq
	}
	for rseq := s.ackFloor + 1; rseq <= cum; rseq++ {
		delete(s.unacked, rseq)
	}
	if cum > s.ackFloor {
		s.ackFloor = cum
	}
}

// unackedLen reports the reliable-window occupancy.
func (s *session) unackedLen() int {
	s.relMu.Lock()
	defer s.relMu.Unlock()
	return len(s.unacked)
}

// retransmit re-enqueues unacked reliable events older than rto. It
// reports whether the session should be closed (too many attempts).
// Cost is proportional to the expired prefix of the send-order ring
// (plus lazily reaped acked entries), not the window size, so large
// reliable windows stay cheap on the housekeeping timer path.
func (s *session) retransmit(now time.Time, rto time.Duration, maxAttempts int) bool {
	s.relMu.Lock()
	defer s.relMu.Unlock()
	for {
		rseq, ok := s.relOrder.peek()
		if !ok {
			return false
		}
		entry, live := s.unacked[rseq]
		if !live {
			s.relOrder.pop() // acked since its last send; reap
			continue
		}
		if now.Sub(entry.lastSend) < rto {
			// The ring is ordered by lastSend: everything behind the head
			// is younger still.
			return false
		}
		if entry.attempts >= maxAttempts {
			return true
		}
		s.relOrder.pop()
		entry.attempts++
		entry.lastSend = now
		s.relOrder.push(rseq)
		s.queue.pushReliable(entry.e)
		s.b.ctr.retransmits.Inc()
	}
}

// acceptReliable performs receiver-side dedup for an rseq-tagged event.
// It returns the cumulative ack to send and whether the event is new.
func (s *session) acceptReliable(rseq uint64) (cum uint64, fresh bool) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	if rseq <= s.recvCum {
		return s.recvCum, false
	}
	if _, dup := s.ahead[rseq]; dup {
		return s.recvCum, false
	}
	s.ahead[rseq] = struct{}{}
	for {
		if _, ok := s.ahead[s.recvCum+1]; !ok {
			break
		}
		delete(s.ahead, s.recvCum+1)
		s.recvCum++
	}
	return s.recvCum, true
}

func (s *session) readLoop() {
	defer s.wg.Done()
	defer s.close()
	for {
		e, err := s.conn.Recv()
		if err != nil {
			return
		}
		s.b.ctr.eventsIn.Inc()
		// Hop-by-hop reliability: rseq-tagged events (control or data) are
		// deduplicated and cumulatively acknowledged before processing.
		if rseqStr, ok := e.Headers[hdrRSeq]; ok && e.Topic != topicAck {
			rseq, err := parseUint(rseqStr)
			if err != nil {
				continue
			}
			cum, fresh := s.acceptReliable(rseq)
			s.queue.pushReliable(ackEvent(cum))
			if !fresh {
				continue
			}
			// Strip the per-hop sequence before re-routing.
			e = e.Clone()
			delete(e.Headers, hdrRSeq)
		}
		if isControlTopic(e.Topic) {
			s.handleControl(e)
			continue
		}
		if e.Validate() != nil {
			s.b.ctr.invalid.Inc()
			continue
		}
		s.b.route(e, s)
	}
}

func (s *session) handleControl(e *event.Event) {
	switch e.Topic {
	case topicSub:
		pattern := e.Headers[hdrPattern]
		if err := s.b.subscribe(s, pattern); err != nil {
			s.b.metrics().Counter("broker.bad_subscribes").Inc()
		}
	case topicUnsub:
		s.b.unsubscribe(s, e.Headers[hdrPattern])
	case topicAck:
		if cum, err := headerUint(e, hdrRSeq); err == nil {
			s.handleAck(cum)
		}
	case topicSubAdv:
		if s.isPeer {
			s.b.handleAdvertisement(s, e)
		}
	case topicPing:
		// Echo so clients can fence control-plane ordering: once the pong
		// arrives, every prior request on this session has been applied.
		// The echo rides the reliable machinery so it survives lossy links.
		s.sendReliable(e)
	default:
		s.b.metrics().Counter("broker.unknown_control").Inc()
	}
}

// writeLoop drains the send queue onto the conn. For framed conns it
// aggregates encoded events into a Batcher and flushes on three
// triggers: the batch reaching MaxBatchBytes, the reliable lane (which
// must never linger in user space), and the queue going idle — either
// immediately (FlushInterval 0) or after lingering up to FlushInterval
// for more traffic to coalesce with.
func (s *session) writeLoop() {
	defer s.wg.Done()
	cfg := s.b.cfg
	fc, framed := s.conn.(transport.FrameConn)
	var bw *transport.Batcher
	if framed {
		bw = transport.NewBatcher(fc, cfg.MaxBatchBytes)
	}

	// fail closes the session and discards the remaining queue so close()
	// can complete.
	fail := func() {
		s.close()
		for {
			if _, st := s.queue.tryPop(); st != popOK {
				return
			}
		}
	}

	send := func(it outItem) error {
		if !framed {
			return s.conn.Send(it.e)
		}
		if it.frame != nil {
			return bw.Add(it.frame.Bytes())
		}
		return bw.AddEvent(it.e)
	}

	var lingerTimer *time.Timer
	for {
		it, st := s.queue.tryPop()
		switch st {
		case popOK:
			if err := send(it); err != nil {
				fail()
				return
			}
			s.b.ctr.eventsOut.Inc()
			if it.reliable && framed {
				// Signalling and acks flush as soon as the reliable lane
				// drains; they are never coalesced past their turn.
				if err := bw.Flush(); err != nil {
					fail()
					return
				}
			}
		case popEmpty:
			if framed && bw.Pending() > 0 {
				if cfg.FlushInterval > 0 {
					if lingerTimer == nil {
						lingerTimer = time.NewTimer(cfg.FlushInterval)
					} else {
						lingerTimer.Reset(cfg.FlushInterval)
					}
					select {
					case <-s.queue.waitCh():
						if !lingerTimer.Stop() {
							<-lingerTimer.C
						}
						continue // more traffic arrived; keep batching
					case <-lingerTimer.C:
					}
				}
				if err := bw.Flush(); err != nil {
					fail()
					return
				}
				continue // re-check: traffic may have arrived during flush
			}
			<-s.queue.waitCh()
		case popClosed:
			// Graceful drain: whatever reached the batcher goes out before
			// the writer exits (the conn may already be closed on abortive
			// shutdown, in which case the flush error is moot).
			if framed {
				_ = bw.Flush()
			}
			return
		}
	}
}

// close tears the session down and detaches it from the broker. Safe to
// call multiple times and from any goroutine.
func (s *session) close() {
	s.closeOnce.Do(func() {
		// Close the queue first so a writer mid-drain flushes its batch
		// and exits before the conn is torn down under it; Send/Flush on
		// the closed conn then fail cleanly for any write already past
		// the queue.
		s.queue.close()
		_ = s.conn.Close()
		s.b.detach(s)
	})
}

// stop closes and waits for the session goroutines (not callable from
// within those goroutines).
func (s *session) stop() {
	s.close()
	s.wg.Wait()
}
