package broker

import (
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/testutil"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// The leak suite pins the close paths the resilience plane leans on:
// every goroutine a broker, client, subscription, mesh link or
// reconnect supervisor spawns must exit when its owner does.
// testutil.CheckGoroutines is registered FIRST so (cleanups being LIFO)
// it runs after the brokers registered below have stopped.

func TestClientCloseNoLeak(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := newTestBrokerCfg(t, Config{ID: "leak-cc", SessionLinger: time.Minute})
	for i := range 5 {
		c, err := b.LocalClient("leak-c", transport.LinkProfile{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Subscribe("/leak/t", 8); err != nil {
			t.Fatal(err)
		}
		if err := c.Publish("/leak/t", event.KindData, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSubscriptionChurnNoLeak(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := newTestBroker(t, "leak-sub")
	c := localClient(t, b, "leak-sub-c")
	for i := range 20 {
		sub, err := c.Subscribe("/leak/churn", 8)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := sub.Cancel(); err != nil {
				t.Fatal(err)
			}
		} else if err := c.Unsubscribe(sub); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMeshLinkChurnNoLeak(t *testing.T) {
	testutil.CheckGoroutines(t)
	b1 := newTestBroker(t, "leak-m1")
	b2 := newTestBroker(t, "leak-m2")
	l, err := b2.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mesh := NewMesh(b1, fastMeshConfig(l.Addr()))
	waitCondition(t, 10*time.Second, "link up", func() bool {
		return b1.PeerCount() == 1 && b2.PeerCount() == 1
	})
	mesh.SetPeers(nil) // churn the link down...
	waitCondition(t, 10*time.Second, "link torn down", func() bool {
		return b1.PeerCount() == 0
	})
	mesh.SetPeers([]string{l.Addr()}) // ...and back up
	waitCondition(t, 10*time.Second, "link re-established", func() bool {
		return b1.PeerCount() == 1
	})
	mesh.Stop()
}

func TestReconnectLoopNoLeak(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := newTestBrokerCfg(t, Config{ID: "leak-rc", SessionLinger: time.Minute})
	seam := newSeam()
	seam.set("u1", b)
	c, err := DialResilient(ResilientConfig{
		URLs:      []string{"u1"},
		ID:        "leak-rc-c",
		RedialMin: 5 * time.Millisecond,
		RedialMax: 20 * time.Millisecond,
		Dial:      seam.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe("/leak/rc", 8); err != nil {
		t.Fatal(err)
	}
	// Bounce the link a few times: each bounce spawns a new read loop
	// whose predecessor must have fully exited.
	for range 3 {
		before := seam.dialCount()
		seam.killCurrent()
		waitCondition(t, 10*time.Second, "reconnected", func() bool {
			return seam.dialCount() > before && c.ConnState() == StateConnected
		})
	}
	// Close mid-outage too: the supervisor must exit from the backoff
	// sleep, not just from the idle select.
	seam.set("u1", nil)
	seam.killCurrent()
	waitCondition(t, 10*time.Second, "reconnecting", func() bool {
		return c.ConnState() == StateReconnecting
	})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
