package broker

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// recordedBroker starts a broker recording pattern into a temp dir.
func recordedBroker(t *testing.T, pattern string, cfg Config) *Broker {
	t.Helper()
	cfg.ID = "rec-b1"
	cfg.RecordPatterns = []string{pattern}
	cfg.RecordDir = t.TempDir()
	return newTestBrokerCfg(t, cfg)
}

// waitRecorded blocks until the pattern's log has committed n records.
func waitRecorded(t *testing.T, b *Broker, pattern string, n uint64) {
	t.Helper()
	l := b.TopicLog(pattern)
	if l == nil {
		t.Fatalf("no topic log for %q", pattern)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.NextSeq() < n+1 {
		if time.Now().After(deadline) {
			t.Fatalf("log reached seq %d, want %d", l.NextSeq()-1, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func counterPayload(i int) []byte { return []byte(fmt.Sprintf("%08d", i)) }

// TestRecordingCapturesRoutedEvents publishes through a client and
// checks the durable log holds exactly the routed events — decodable,
// in publish order, even with zero live subscribers — and that
// non-matching topics stay out of the log.
func TestRecordingCapturesRoutedEvents(t *testing.T) {
	b := recordedBroker(t, "/rec/#", Config{})
	pub := localClient(t, b, "pub")

	const n = 100
	for i := 1; i <= n; i++ {
		if err := pub.Publish("/rec/a", event.KindData, counterPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Publish("/other/a", event.KindData, []byte("not recorded")); err != nil {
		t.Fatal(err)
	}
	waitRecorded(t, b, "/rec/#", n)

	l := b.TopicLog("/rec/#")
	time.Sleep(20 * time.Millisecond) // window for any stray append
	if got := l.NextSeq() - 1; got != n {
		t.Fatalf("log holds %d records, want %d", got, n)
	}
	c := l.NewCursor(0)
	defer c.Close()
	var seq uint64
	for {
		recs, err := c.Next(nil, 32)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			seq++
			if r.Seq != seq {
				t.Fatalf("record seq %d, want %d", r.Seq, seq)
			}
			e, err := event.Unmarshal(r.Payload)
			if err != nil {
				t.Fatalf("record %d does not decode: %v", r.Seq, err)
			}
			if e.Topic != "/rec/a" || string(e.Payload) != string(counterPayload(int(seq))) {
				t.Fatalf("record %d decoded to %q %q", r.Seq, e.Topic, e.Payload)
			}
		}
	}
	if seq != n {
		t.Fatalf("cursor yielded %d records, want %d", seq, n)
	}
}

// TestReplayLateJoinerExactlyOnce is the handoff acceptance test: a
// joiner subscribing mid-stream replays history (across segment rolls)
// and switches to live delivery with every event delivered exactly
// once, in order, and CaughtUp closing at the handoff.
func TestReplayLateJoinerExactlyOnce(t *testing.T) {
	b := recordedBroker(t, "/rec/#", Config{RecordSegmentBytes: 4096})
	pub := localClient(t, b, "pub")
	sub := localClient(t, b, "sub")

	const history = 500
	const concurrent = 500
	for i := 1; i <= history; i++ {
		if err := pub.Publish("/rec/a", event.KindData, counterPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitRecorded(t, b, "/rec/#", history)
	if segs := b.TopicLog("/rec/#").Stats().Segments; segs < 2 {
		t.Fatalf("setup: want replay to cross segments, got %d", segs)
	}

	s, err := sub.SubscribeReplay(context.Background(), "/rec/#", 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Publish concurrently with the replay drain so the handoff races
	// real traffic.
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := history + 1; i <= history+concurrent; i++ {
			if err := pub.Publish("/rec/a", event.KindData, counterPayload(i)); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
	}()

	want := history + concurrent + 1
	var got []string
	deadline := time.After(10 * time.Second)
	live := false
collect:
	for len(got) < want {
		select {
		case e, ok := <-s.C():
			if !ok {
				t.Fatal("replay subscription closed early")
			}
			got = append(got, string(e.Payload))
			if len(got) == history+concurrent {
				// Everything published so far is in; one more event proves
				// live delivery after the writer finished.
				<-pubDone
				if err := pub.Publish("/rec/a", event.KindData, counterPayload(want)); err != nil {
					t.Fatal(err)
				}
			}
		case <-s.CaughtUp():
			live = true
			// Stop selecting on the closed channel.
			for len(got) < want {
				select {
				case e, ok := <-s.C():
					if !ok {
						t.Fatal("replay subscription closed early")
					}
					got = append(got, string(e.Payload))
					if len(got) == history+concurrent {
						<-pubDone
						if err := pub.Publish("/rec/a", event.KindData, counterPayload(want)); err != nil {
							t.Fatal(err)
						}
					}
				case <-deadline:
					t.Fatalf("timed out with %d/%d events", len(got), want)
				}
			}
			break collect
		case <-deadline:
			t.Fatalf("timed out with %d/%d events", len(got), want)
		}
	}
	if !live {
		select {
		case <-s.CaughtUp():
		case <-time.After(5 * time.Second):
			t.Fatal("CaughtUp never closed")
		}
	}
	for i, p := range got {
		if p != string(counterPayload(i+1)) {
			t.Fatalf("position %d got %q, want %q: duplicate or gap across handoff", i, p, counterPayload(i+1))
		}
	}
	if err := sub.Unsubscribe(s); err != nil {
		t.Fatal(err)
	}
}

// TestReplayFromSequence starts mid-log and checks the first delivered
// event is exactly the requested sequence.
func TestReplayFromSequence(t *testing.T) {
	b := recordedBroker(t, "/rec/#", Config{})
	pub := localClient(t, b, "pub")
	sub := localClient(t, b, "sub")
	const n = 100
	for i := 1; i <= n; i++ {
		if err := pub.Publish("/rec/a", event.KindData, counterPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitRecorded(t, b, "/rec/#", n)
	s, err := sub.SubscribeReplay(context.Background(), "/rec/#", 51, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 51; i <= n; i++ {
		e := recvOne(t, s, 2*time.Second)
		if string(e.Payload) != string(counterPayload(i)) {
			t.Fatalf("got %q, want %q", e.Payload, counterPayload(i))
		}
	}
	select {
	case <-s.CaughtUp():
	case <-time.After(5 * time.Second):
		t.Fatal("CaughtUp never closed")
	}
}

// TestReplayUnknownPatternFails covers the error paths: a pattern the
// broker does not record, and a broker with recording off entirely.
func TestReplayUnknownPatternFails(t *testing.T) {
	b := recordedBroker(t, "/rec/#", Config{})
	c := localClient(t, b, "c1")
	if _, err := c.SubscribeReplay(context.Background(), "/other/#", 0, 16); err == nil {
		t.Fatal("replay of unrecorded pattern succeeded")
	}
	// Replay must name the recorded pattern itself, not a topic under it.
	if _, err := c.SubscribeReplay(context.Background(), "/rec/a", 0, 16); err == nil {
		t.Fatal("replay of non-pattern topic succeeded")
	}

	plain := newTestBroker(t, "plain-b1")
	c2 := localClient(t, plain, "c2")
	if _, err := c2.SubscribeReplay(context.Background(), "/rec/#", 0, 16); err == nil {
		t.Fatal("replay on non-recording broker succeeded")
	}
}

// TestReplayChurnUnderLoad opens and tears down replay subscriptions —
// some unsubscribed mid-history, some abandoned by client close —
// while a publisher keeps appending, then checks every broker-side
// cursor is released. Run under -race in CI.
func TestReplayChurnUnderLoad(t *testing.T) {
	b := recordedBroker(t, "/rec/#", Config{RecordSegmentBytes: 8192, RecordMaxSegments: 8})
	pub := localClient(t, b, "pub")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if err := pub.Publish("/rec/a", event.KindData, counterPayload(i)); err != nil {
				return
			}
		}
	}()
	waitRecorded(t, b, "/rec/#", 100)

	for round := 0; round < 10; round++ {
		c, err := b.LocalClient(fmt.Sprintf("churn-%d", round), transport.LinkProfile{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := c.SubscribeReplay(context.Background(), "/rec/#", 0, 64)
		if err != nil {
			c.Close()
			t.Fatal(err)
		}
		// Drain a little of the history, then tear down mid-replay.
		for k := 0; k < 20; k++ {
			recvOne(t, s, 2*time.Second)
		}
		if round%2 == 0 {
			if err := c.Unsubscribe(s); err != nil {
				t.Fatal(err)
			}
		}
		c.Close() // abandon (odd rounds: with the replay still active)
	}
	close(stop)
	wg.Wait()

	// Every cursor must be released once the sessions are gone.
	l := b.TopicLog("/rec/#")
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().ActiveCursors != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d cursors leaked", l.Stats().ActiveCursors)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRecordingRetentionUnderReplay runs retention caps against an
// active replay and checks the reader still sees a contiguous,
// gap-free suffix of the stream (retention may trim history before the
// cursor starts, never under it).
func TestRecordingRetentionUnderReplay(t *testing.T) {
	b := recordedBroker(t, "/rec/#", Config{
		RecordSegmentBytes: 2048,
		RecordMaxSegments:  3,
		AdvRefreshInterval: 50 * time.Millisecond, // housekeeping reaps fast
	})
	pub := localClient(t, b, "pub")
	sub := localClient(t, b, "sub")

	// Publish in paced chunks: a chunk per append keeps segments small
	// (one burst-append never splits across segments), so retention has
	// segment granularity to work with.
	const n = 600
	for i := 1; i <= n; i++ {
		if err := pub.Publish("/rec/a", event.KindData, counterPayload(i)); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			waitRecorded(t, b, "/rec/#", uint64(i))
		}
	}
	waitRecorded(t, b, "/rec/#", n)
	l := b.TopicLog("/rec/#")
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Segments > 3 {
		if time.Now().After(deadline) {
			t.Fatalf("retention never enforced: %+v", l.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	s, err := sub.SubscribeReplay(context.Background(), "/rec/#", 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for {
		done := false
		select {
		case e := <-s.C():
			var v int
			fmt.Sscanf(string(e.Payload), "%d", &v)
			got = append(got, v)
			if v == n {
				done = true
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("stalled after %d replayed events", len(got))
		}
		if done {
			break
		}
	}
	if len(got) == 0 || got[0] == 1 {
		t.Fatalf("expected a trimmed suffix, got start %v (len %d)", got[:min(3, len(got))], len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("gap in replayed suffix at %d: %d -> %d", i, got[i-1], got[i])
		}
	}
}
