package broker

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// captureConn is a FrameConn that records every flush so batching tests
// can assert exactly which events went out together.
type captureConn struct {
	mu      sync.Mutex
	flushes [][]*event.Event
	sends   []*event.Event
	done    chan struct{}
	once    sync.Once
}

func newCaptureConn() *captureConn {
	return &captureConn{done: make(chan struct{})}
}

func (c *captureConn) Send(e *event.Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sends = append(c.sends, e)
	return nil
}

func (c *captureConn) SendFrames(frames [][]byte) error {
	batch := make([]*event.Event, 0, len(frames))
	for _, f := range frames {
		e, err := event.Unmarshal(f)
		if err != nil {
			return err
		}
		batch = append(batch, e.Clone())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushes = append(c.flushes, batch)
	return nil
}

func (c *captureConn) Recv() (*event.Event, error) {
	<-c.done
	return nil, transport.ErrClosed
}

func (c *captureConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

func (c *captureConn) Label() string { return "capture" }

func (c *captureConn) flushCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.flushes)
}

func (c *captureConn) flush(i int) []*event.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushes[i]
}

func (c *captureConn) allFlushed() []*event.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*event.Event
	for _, f := range c.flushes {
		out = append(out, f...)
	}
	return out
}

// startWriter wires a session around conn with only the write loop
// running, giving tests full control of the queue.
func startWriter(t *testing.T, b *Broker, conn transport.Conn) *session {
	t.Helper()
	s := newSession(b, conn, "writer-under-test", false)
	s.wg.Add(1)
	go s.writeLoop()
	t.Cleanup(func() {
		s.queue.close()
		conn.Close()
		s.wg.Wait()
	})
	return s
}

func beItem(id uint64, payload int) (*event.Event, *event.Frame) {
	e := event.New("/dp/t", event.KindRTP, make([]byte, payload))
	e.Source = "dp"
	e.ID = id
	return e, event.NewFrame(e)
}

func waitFor(t *testing.T, within time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestBatchFlushOnMaxBatchBytes: the writer must force a flush as soon as
// the aggregated batch reaches MaxBatchBytes, long before any linger
// expires.
func TestBatchFlushOnMaxBatchBytes(t *testing.T) {
	b := New(Config{ID: "size", MaxBatchBytes: 2500, FlushInterval: 10 * time.Second})
	defer b.Stop()
	conn := newCaptureConn()
	s := startWriter(t, b, conn)
	for i := uint64(1); i <= 3; i++ {
		e, f := beItem(i, 1200)
		s.queue.pushBestEffort(e, f)
	}
	waitFor(t, 2*time.Second, func() bool { return conn.flushCount() >= 1 },
		"no size-triggered flush despite 10s linger")
	if got := conn.flush(0); len(got) != 2 {
		t.Fatalf("size flush carried %d events, want 2", len(got))
	}
	// The third event must still be lingering (interval far away).
	time.Sleep(50 * time.Millisecond)
	if conn.flushCount() != 1 {
		t.Fatalf("unexpected extra flush before linger expiry: %d", conn.flushCount())
	}
}

// TestBatchFlushOnFlushInterval: once the queue idles, a non-empty batch
// goes out after FlushInterval even though MaxBatchBytes is far away.
func TestBatchFlushOnFlushInterval(t *testing.T) {
	b := New(Config{ID: "linger", MaxBatchBytes: 1 << 20, FlushInterval: 40 * time.Millisecond})
	defer b.Stop()
	conn := newCaptureConn()
	s := newSession(b, conn, "linger-writer", false)
	// Queue both events before the writer starts so they coalesce.
	e1, f1 := beItem(1, 100)
	e2, f2 := beItem(2, 100)
	s.queue.pushBestEffort(e1, f1)
	s.queue.pushBestEffort(e2, f2)
	s.wg.Add(1)
	go s.writeLoop()
	defer func() {
		s.queue.close()
		conn.Close()
		s.wg.Wait()
	}()
	waitFor(t, 2*time.Second, func() bool { return conn.flushCount() >= 1 },
		"linger flush never happened")
	if got := conn.flush(0); len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("linger flush = %v", got)
	}
}

// TestReliableNeverLingersAndFlushesBeforeClose: reliable events flush
// immediately (they must not wait out FlushInterval), and a queue close
// flushes everything still batched.
func TestReliableNeverLingersAndFlushesBeforeClose(t *testing.T) {
	b := New(Config{ID: "rel", MaxBatchBytes: 1 << 20, FlushInterval: 10 * time.Second})
	defer b.Stop()
	conn := newCaptureConn()
	s := startWriter(t, b, conn)

	rel := event.New("/dp/rel", event.KindControl, nil)
	rel.Source, rel.ID = "dp", 7
	s.queue.pushReliable(rel)
	waitFor(t, time.Second, func() bool { return conn.flushCount() >= 1 },
		"reliable event lingered past its turn")
	if got := conn.flush(0); len(got) != 1 || got[0].Topic != "/dp/rel" {
		t.Fatalf("reliable flush = %v", got)
	}

	// A best-effort event now lingers (10s interval)…
	e, f := beItem(8, 100)
	s.queue.pushBestEffort(e, f)
	time.Sleep(30 * time.Millisecond)
	if conn.flushCount() != 1 {
		t.Fatalf("best-effort flushed before linger/close: %d", conn.flushCount())
	}
	// …until the queue closes, which must not strand it in the batcher.
	s.queue.close()
	waitFor(t, time.Second, func() bool { return conn.flushCount() >= 2 },
		"close did not flush the pending batch")
	if got := conn.flush(1); len(got) != 1 || got[0].ID != 8 {
		t.Fatalf("close flush = %v", got)
	}
}

// TestBatchOrderingAcrossLanes: the reliable lane drains first, and FIFO
// order holds within each lane across flush boundaries.
func TestBatchOrderingAcrossLanes(t *testing.T) {
	b := New(Config{ID: "order", MaxBatchBytes: 1 << 20, FlushInterval: 20 * time.Millisecond})
	defer b.Stop()
	conn := newCaptureConn()
	s := newSession(b, conn, "order-writer", false)
	for i := uint64(1); i <= 3; i++ {
		e, f := beItem(i, 50)
		s.queue.pushBestEffort(e, f)
	}
	for i := uint64(101); i <= 102; i++ {
		rel := event.New("/dp/rel", event.KindControl, nil)
		rel.Source, rel.ID = "dp", i
		s.queue.pushReliable(rel)
	}
	s.wg.Add(1)
	go s.writeLoop()
	defer func() {
		s.queue.close()
		conn.Close()
		s.wg.Wait()
	}()
	waitFor(t, 2*time.Second, func() bool { return len(conn.allFlushed()) == 5 },
		"not all events reached the wire")
	got := conn.allFlushed()
	want := []uint64{101, 102, 1, 2, 3}
	for i, e := range got {
		if e.ID != want[i] {
			t.Fatalf("wire order %v, want %v", ids(got), want)
		}
	}
}

func ids(es []*event.Event) []uint64 {
	out := make([]uint64, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

// TestPublishDoesNotTakeBrokerMutex: the match/deliver path must stay
// fully decoupled from the control-plane mutex — a publish completes and
// is delivered while b.mu is held exclusively.
func TestPublishDoesNotTakeBrokerMutex(t *testing.T) {
	b := newTestBroker(t, "no-mutex")
	sub := localClient(t, b, "sub")
	s, err := sub.Subscribe("/nm/t", 16)
	if err != nil {
		t.Fatal(err)
	}

	b.mu.Lock()
	published := make(chan error, 1)
	go func() {
		e := event.New("/nm/t", event.KindData, []byte("lock-free"))
		e.Source, e.ID = "pub", 1
		published <- b.Publish(e)
	}()
	select {
	case err := <-published:
		if err != nil {
			b.mu.Unlock()
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		b.mu.Unlock()
		t.Fatal("publish blocked on the broker-wide mutex")
	}
	// Delivery all the way to the client must also proceed under b.mu.
	if e := recvOne(t, s, 2*time.Second); string(e.Payload) != "lock-free" {
		b.mu.Unlock()
		t.Fatalf("got %v", e)
	}
	b.mu.Unlock()
}

// TestPeerAdvertisedAndFloodedDeliversOnce: a peer that both advertised a
// matching pattern and is reachable by peer-to-peer flooding must see the
// event exactly once on the wire — not advert-routed and then flooded
// again.
func TestPeerAdvertisedAndFloodedDeliversOnce(t *testing.T) {
	b := New(Config{ID: "dd-hub", Mode: ModePeerToPeer})
	defer b.Stop()
	peerEnd, brokerEnd := transport.Pipe("broker", "remote-peer")
	defer peerEnd.Close()

	go b.AcceptConn(brokerEnd)
	if err := peerEnd.Send(peerHelloEvent("remote-peer", ModePeerToPeer, "")); err != nil {
		t.Fatal(err)
	}

	// Count data events arriving at the remote peer.
	var mu sync.Mutex
	var got []*event.Event
	go func() {
		for {
			e, err := peerEnd.Recv()
			if err != nil {
				return
			}
			if e.Topic == "/dd/x" {
				mu.Lock()
				got = append(got, e)
				mu.Unlock()
			}
		}
	}()

	waitFor(t, 2*time.Second, func() bool { return b.PeerCount() == 1 },
		"peer never attached")
	// The peer advertises a matching pattern (a mixed-mode or legacy peer
	// can do this even in P2P routing), putting it in the routing trie.
	if err := peerEnd.Send(subAdvEvent(advAdd, "/dd/#", "remote-peer", 1, 0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(b.matchSessions("/dd/x")) == 1 },
		"advertisement never applied")

	e := event.New("/dd/x", event.KindData, []byte("once"))
	e.Source, e.ID = "origin", 42
	if err := b.Publish(e); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 2*time.Second, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) >= 1 },
		"event never reached the peer")
	time.Sleep(150 * time.Millisecond) // window for an (incorrect) duplicate
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("peer received the event %d times on the wire, want exactly 1", len(got))
	}
	if got[0].TTL != e.TTL-1 {
		t.Fatalf("forwarded TTL = %d, want %d", got[0].TTL, e.TTL-1)
	}
}

// TestHandleAckFloor: cumulative acks release exactly the acked prefix,
// cost proportional to newly acked events, and tolerate replays and
// overshoot.
func TestHandleAckFloor(t *testing.T) {
	b := New(Config{ID: "ack"})
	defer b.Stop()
	conn := newCaptureConn()
	s := newSession(b, conn, "acky", false)
	base := event.New("/a/t", event.KindControl, nil)
	base.Reliable = true
	for i := 0; i < 10; i++ {
		s.sendReliable(base)
	}
	if s.unackedLen() != 10 {
		t.Fatalf("unacked = %d, want 10", s.unackedLen())
	}
	s.handleAck(4)
	if s.unackedLen() != 6 {
		t.Fatalf("after ack 4: unacked = %d, want 6", s.unackedLen())
	}
	s.handleAck(4) // replay
	if s.unackedLen() != 6 {
		t.Fatalf("replayed ack changed state: %d", s.unackedLen())
	}
	s.handleAck(2) // regression is ignored
	if s.unackedLen() != 6 {
		t.Fatalf("regressing ack changed state: %d", s.unackedLen())
	}
	s.handleAck(10_000) // overshoot clamps to nextRSeq
	if s.unackedLen() != 0 {
		t.Fatalf("after overshoot ack: unacked = %d, want 0", s.unackedLen())
	}
	// The floor advances so a subsequent send/ack cycle still works.
	s.sendReliable(base)
	s.handleAck(11)
	if s.unackedLen() != 0 {
		t.Fatalf("post-floor ack failed: %d", s.unackedLen())
	}
}

// TestPerSessionGaugesPublished: the housekeeping loop surfaces per-session
// queue-drop and reliable-window gauges in the metrics registry.
func TestPerSessionGaugesPublished(t *testing.T) {
	b := New(Config{ID: "gauges", RetransmitInterval: 20 * time.Millisecond})
	defer b.Stop()
	c, err := b.LocalClient("gaugy", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Subscribe("/g/t", 4); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		r := b.Metrics().Report()
		return strings.Contains(r, "broker.session.gaugy.queue_drops") &&
			strings.Contains(r, "broker.session.gaugy.reliable_window")
	}, "per-session gauges never appeared in the registry report")
	if b.Metrics().Gauge("broker.session.gaugy.queue_drops").Value() != 0 {
		t.Fatal("queue_drops gauge non-zero without drops")
	}
	// Detach must drop the per-session gauges so churning client ids
	// cannot grow the registry without bound.
	c.Close()
	waitFor(t, 2*time.Second, func() bool {
		return !strings.Contains(b.Metrics().Report(), "broker.session.gaugy.")
	}, "per-session gauges survived detach")
}
