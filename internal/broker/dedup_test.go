package broker

import (
	"fmt"
	"sync"
	"testing"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// TestDedupSweepIdlePrunes: sources quiet for more than the configured
// number of generations are pruned by the housekeeping sweep, while a
// source that keeps publishing survives indefinitely — and a pruned
// source re-enters with a fresh window.
func TestDedupSweepIdlePrunes(t *testing.T) {
	d := newDedupCache(8)
	k := func(s string, i uint64) event.Key { return event.Key{Source: s, ID: i} }

	d.seen(k("quiet", 1))
	d.seen(k("busy", 1))
	for g := 0; g < 5; g++ {
		d.seen(k("busy", uint64(g+2)))
		d.sweepIdle(3)
	}
	if d.len() != 1 {
		t.Fatalf("cache holds %d sources after idling sweep, want just the busy one", d.len())
	}
	if !d.seen(k("busy", 3)) {
		t.Fatal("surviving source lost its window")
	}
	// The pruned source re-enters fresh: its old history is gone, so its
	// first ID is new again.
	if d.seen(k("quiet", 1)) {
		t.Fatal("pruned source kept stale window state")
	}
	if !d.seen(k("quiet", 1)) {
		t.Fatal("re-added source not tracking")
	}
}

// TestDedupReAddedSourceNotPrematurelyEvicted: a source that is evicted
// (or pruned) and later re-added must be protected by its fresh FIFO
// position — the stale reference from its first life cannot evict it
// ahead of genuinely older sources.
func TestDedupReAddedSourceNotPrematurelyEvicted(t *testing.T) {
	d := newDedupCache(2)
	k := func(s string, i uint64) event.Key { return event.Key{Source: s, ID: i} }

	d.seen(k("a", 1))
	d.seen(k("b", 1))
	d.seen(k("c", 1)) // evicts a (FIFO head)
	d.seen(k("a", 2)) // a re-enters; evicts b, NOT the just-added a
	if d.seen(k("a", 3)) {
		t.Fatal("fresh id on re-added source reported seen")
	}
	if !d.seen(k("a", 2)) {
		t.Fatal("re-added source was evicted out of FIFO order")
	}
	if !d.seen(k("c", 1)) {
		t.Fatal("source c lost despite capacity")
	}
	if d.len() > 2 {
		t.Fatalf("cache tracks %d sources, capacity 2", d.len())
	}
}

// TestDedupShardedCapacity: a production-sized cache splits into shards
// whose capacities sum to (about) the configured total, keeps enforcing
// per-shard FIFO eviction, and handles concurrent traffic with the
// sweep running — the sharded-lock replacement for the old global
// mutex, under the race detector.
func TestDedupShardedCapacity(t *testing.T) {
	d := newDedupCache(1024)
	if len(d.shards) != dedupMaxShards {
		t.Fatalf("1024-source cache uses %d shards, want %d", len(d.shards), dedupMaxShards)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				d.seen(event.Key{Source: fmt.Sprintf("src-%d-%d", g, i), ID: 1})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Few enough generations that nothing inserted above goes idle.
		d.sweepIdle(3)
		d.sweepIdle(3)
	}()
	wg.Wait()
	// 3200 distinct sources through a 1024-capacity cache: every shard
	// stays at or under its slice of the capacity.
	if got, max := d.len(), 1024+dedupMaxShards; got > max {
		t.Fatalf("cache tracks %d sources, want <= %d", got, max)
	}
	if d.len() == 0 {
		t.Fatal("cache empty after load")
	}
	// After enough idle generations, everything is pruned.
	for i := 0; i < 4; i++ {
		d.sweepIdle(3)
	}
	if d.len() != 0 {
		t.Fatalf("cache holds %d sources after idle sweeps, want 0", d.len())
	}
}
