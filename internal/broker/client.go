package broker

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/topic"
	"github.com/globalmmcs/globalmmcs/internal/topiclog"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// ErrClientClosed is returned by operations on a closed Client.
var ErrClientClosed = errors.New("broker: client closed")

// ErrConnLost is returned when the client's conn to the broker is down:
// the send raced a conn failure, or (for resilient clients) a redial is
// in progress and the operation could not be buffered. Unlike
// ErrClientClosed it is transient — a resilient client recovers.
var ErrConnLost = errors.New("broker: connection lost")

// ConnState describes a client's link to the broker.
type ConnState int32

// Connection states. Enums start at 1 so the zero value is invalid.
const (
	// StateConnected: the conn is up and traffic flows.
	StateConnected ConnState = iota + 1
	// StateReconnecting: the conn died and a resilient client's redial
	// loop is working to replace it. Plain clients never enter it.
	StateReconnecting
	// StateClosed: the client is closed for good.
	StateClosed
)

// String implements fmt.Stringer.
func (s ConnState) String() string {
	switch s {
	case StateConnected:
		return "connected"
	case StateReconnecting:
		return "reconnecting"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("connstate(%d)", int32(s))
	}
}

// ErrFenceTimeout is returned when the broker does not acknowledge a
// control request within the fence window.
var ErrFenceTimeout = errors.New("broker: control fence timed out")

// subscribeTimeout bounds the control-plane round trip of Subscribe and
// Unsubscribe.
const subscribeTimeout = 10 * time.Second

// clientRouteCacheBound caps the client-side dispatch memo so a hostile
// topic stream cannot grow it without bound.
const clientRouteCacheBound = 1024

// Subscription is a client-side subscription delivering matched events
// through a bounded ring buffer.
//
// The delivery contract is burst-oriented: the client's read loop hands
// each subscription a whole burst at a time (deliverBatch), which
// appends every event under ONE ring-lock hold and deposits ONE
// consumer wakeup — a burst of K matched events costs one lock/signal
// pair, not K channel operations. Consumers drain in bursts too
// (RecvBatch / TryRecvBatch); the channel view returned by C is a
// compatibility facade pumped from the ring.
//
// Overflow policy mirrors the broker's send queues: best-effort events
// displace the oldest buffered best-effort event (drops are counted and
// never touch reliable entries); reliable events overflow into a
// bounded park drained back into the ring as the consumer frees space,
// and only a full park blocks the producer — so one backpressured
// subscription cannot stall delivery to its siblings on the same read
// loop.
type Subscription struct {
	client  *Client
	pattern string
	drops   atomic.Uint64

	// mu guards the ring. It serialises producer appends against close so
	// cancelling a subscription while traffic is in flight is safe.
	mu     sync.Mutex
	closed bool
	ring   []*event.Event
	head   int
	n      int
	relN   int // reliable events buffered (never evicted by overflow)
	maxOcc int // high-water ring occupancy

	// deliverLocks counts producer-side mu acquisitions and wakeups the
	// consumer wakeup tokens deposited. Together they instrument the
	// batching contract — one lock and at most one wakeup per burst per
	// subscription — and are asserted by regression tests.
	deliverLocks atomic.Uint64
	wakeups      atomic.Uint64
	delivered    atomic.Uint64

	// notify carries at most one "events buffered" token; every delivered
	// burst and the close deposit one, the single consumer drains the ring
	// before waiting. space carries at most one "ring space freed" token
	// for reliable producers blocked on a full ring.
	notify chan struct{}
	space  chan struct{}
	// closedSig is closed exactly once when the subscription closes.
	closedSig chan struct{}

	// parked buffers the overflow of a reliable-backpressure burst so one
	// slow subscription cannot stall the client's readLoop — and with it
	// every sibling subscription on the connection. While parked is
	// non-empty all new traffic for this subscription is parked behind it
	// (arrival order is never reordered around the ring); a lazily
	// started drainer goroutine moves parked events into the ring as the
	// consumer frees space. The park is bounded at ring depth: past it,
	// best-effort newcomers are shed (counted as drops) and a reliable
	// newcomer re-engages readLoop backpressure — the last resort, now
	// behind ring+park worth of buffering instead of ring alone.
	parked     []*event.Event
	parkedPeak int
	parkedEv   atomic.Uint64
	// parkSignal wakes the drainer when events are parked; parkSpace wakes
	// a readLoop blocked on a full park. Both carry at most one token.
	parkSignal chan struct{}
	parkSpace  chan struct{}
	drainOnce  sync.Once

	// compatCh backs the C() channel view, pumped lazily from the ring.
	compatOnce sync.Once
	compatCh   chan *event.Event

	// stageGen/stageIdx are the owning read loop's staging slot for the
	// current burst: a generation check instead of a map lookup per
	// (event, subscription) pair. Touched only by the readLoop goroutine.
	stageGen uint64
	stageIdx int

	// replay is non-nil for subscriptions opened with SubscribeReplay:
	// events arrive unpacked from durable-log envelopes instead of the
	// dispatch trie.
	replay *replayState
}

// replayState tracks a replay subscription's broker-side stream.
// pattern/from parameterise the original start request and lastSeq
// tracks the newest delivered record, so a reconnect can restart the
// stream from exactly where delivery left off (broker-side replay
// cursors do not survive a session loss, parked or not) and duplicate
// records straddling the restart are filtered by sequence.
type replayState struct {
	id      uint64
	pattern string
	from    uint64
	lastSeq atomic.Uint64
	live    chan struct{}
	once    sync.Once
}

// CaughtUp returns a channel closed when a replay subscription has
// drained recorded history and handed off to live tail delivery (every
// event after the close is live traffic). For ordinary subscriptions
// it returns nil (never ready).
func (s *Subscription) CaughtUp() <-chan struct{} {
	if s.replay == nil {
		return nil
	}
	return s.replay.live
}

func newSubscription(c *Client, pattern string, depth int) *Subscription {
	return &Subscription{
		client:     c,
		pattern:    pattern,
		ring:       make([]*event.Event, depth),
		notify:     make(chan struct{}, 1),
		space:      make(chan struct{}, 1),
		closedSig:  make(chan struct{}),
		parkSignal: make(chan struct{}, 1),
		parkSpace:  make(chan struct{}, 1),
	}
}

// Pattern returns the subscription pattern.
func (s *Subscription) Pattern() string { return s.pattern }

// Drops returns how many best-effort events were discarded because the
// consumer was slow.
func (s *Subscription) Drops() uint64 { return s.drops.Load() }

// Cancel unsubscribes. Equivalent to Client.Unsubscribe.
func (s *Subscription) Cancel() error { return s.client.Unsubscribe(s) }

// DeliveryStats reports the subscription's batched-delivery counters:
// how many delivery bursts (ring lock acquisitions) and consumer
// wakeups the traffic cost, how many events were admitted, and the
// high-water ring occupancy. Bursts ≪ Events is the amortization the
// batch plane exists for.
type DeliveryStats struct {
	Bursts       uint64
	Wakeups      uint64
	Events       uint64
	MaxOccupancy int
	Capacity     int
	// ParkedEvents counts events that took the overflow park instead of
	// blocking the read loop; MaxParked is the park's high-water mark.
	ParkedEvents uint64
	MaxParked    int
}

// ResetMaxOccupancy clears the ring's high-water occupancy marker (to
// the current occupancy) so a measurement window can record its own
// peak rather than inheriting warmup spikes.
func (s *Subscription) ResetMaxOccupancy() {
	s.mu.Lock()
	s.maxOcc = s.n
	s.mu.Unlock()
}

// DeliveryStats returns a snapshot of the delivery-plane counters.
func (s *Subscription) DeliveryStats() DeliveryStats {
	s.mu.Lock()
	occ, capacity, parkedPeak := s.maxOcc, len(s.ring), s.parkedPeak
	s.mu.Unlock()
	return DeliveryStats{
		Bursts:       s.deliverLocks.Load(),
		Wakeups:      s.wakeups.Load(),
		Events:       s.delivered.Load(),
		MaxOccupancy: occ,
		Capacity:     capacity,
		ParkedEvents: s.parkedEv.Load(),
		MaxParked:    parkedPeak,
	}
}

// signalData deposits the consumer wakeup token (at most one pending).
func (s *Subscription) signalData() {
	select {
	case s.notify <- struct{}{}:
		s.wakeups.Add(1)
	default:
	}
}

// resignal re-arms the wakeup token without counting it as a producer
// wakeup (consumer-side bookkeeping for partial drains and close).
func (s *Subscription) resignal() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

func (s *Subscription) signalSpace() {
	select {
	case s.space <- struct{}{}:
	default:
	}
}

// Wake returns the channel carrying the subscription's single wakeup
// token, for consumers that multiplex ring draining against their own
// delivery (select-based pumps). After receiving, call TryRecvBatch —
// it re-arms the token when events remain buffered. Spurious wakeups
// are possible and must be tolerated.
func (s *Subscription) Wake() <-chan struct{} { return s.notify }

// deliverBatch appends a whole burst to the ring under one lock hold
// and issues one consumer wakeup. Best-effort overflow evicts the
// oldest buffered best-effort events in bulk (counted as drops,
// skipping reliable entries); a reliable event arriving at a full ring
// is parked rather than blocking the caller, so one backpressured
// subscription never stalls delivery to its siblings on the same read
// loop. Only a full park with more reliable traffic inbound blocks —
// until the drainer frees park space, the subscription closes, or done
// closes.
func (s *Subscription) deliverBatch(events []*event.Event, done <-chan struct{}) {
	for len(events) > 0 {
		s.deliverLocks.Add(1)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		admitted := 0
		if len(s.parked) == 0 {
			rest := s.appendLocked(events)
			admitted = len(events) - len(rest)
			events = rest
		}
		parkedNow := 0
		if len(events) > 0 {
			// Ring full behind a reliable head (or earlier traffic already
			// parked): everything further must queue behind the park so
			// arrival order survives.
			rest := s.parkLocked(events)
			parkedNow = len(events) - len(rest)
			events = rest
		}
		s.mu.Unlock()
		if admitted > 0 {
			s.delivered.Add(uint64(admitted))
			s.signalData()
		}
		if parkedNow > 0 {
			s.parkedEv.Add(uint64(parkedNow))
			s.drainOnce.Do(func() { go s.drainParked() })
			select {
			case s.parkSignal <- struct{}{}:
			default:
			}
		}
		if len(events) == 0 {
			return
		}
		// The park is full and the head of the remainder is reliable:
		// last-resort backpressure, behind ring+park worth of buffering.
		select {
		case <-done:
			return
		case <-s.closedSig:
			return
		case <-s.parkSpace:
		}
	}
}

// parkLocked appends events to the bounded park (capacity = ring
// depth), preserving arrival order. Best-effort newcomers past the
// bound are shed and counted as drops; the un-parked suffix is
// returned non-empty only when its head is reliable and the park is
// full. Callers hold s.mu.
func (s *Subscription) parkLocked(events []*event.Event) []*event.Event {
	bound := len(s.ring)
	var dropped uint64
	for i, e := range events {
		if len(s.parked) >= bound {
			if e.Reliable {
				if dropped > 0 {
					s.drops.Add(dropped)
				}
				return events[i:]
			}
			dropped++
			continue
		}
		s.parked = append(s.parked, e)
	}
	if len(s.parked) > s.parkedPeak {
		s.parkedPeak = len(s.parked)
	}
	if dropped > 0 {
		s.drops.Add(dropped)
	}
	return nil
}

// drainParked is the subscription's park drainer, started lazily on
// first overflow. It moves parked events into the ring whenever the
// consumer frees space, waking any readLoop blocked on a full park.
func (s *Subscription) drainParked() {
	for {
		select {
		case <-s.closedSig:
			return
		case <-s.parkSignal:
		case <-s.space:
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		admitted := 0
		if len(s.parked) > 0 {
			rest := s.appendLocked(s.parked)
			admitted = len(s.parked) - len(rest)
			if admitted > 0 {
				n := copy(s.parked, rest)
				for i := n; i < len(s.parked); i++ {
					s.parked[i] = nil
				}
				s.parked = s.parked[:n]
			}
		}
		s.mu.Unlock()
		if admitted > 0 {
			s.delivered.Add(uint64(admitted))
			s.signalData()
			select {
			case s.parkSpace <- struct{}{}:
			default:
			}
		}
	}
}

// appendLocked copies events into the ring in arrival order, evicting
// the oldest best-effort entries in bulk when full (drops are counted
// once per call, not per event). It returns the un-admitted suffix,
// non-empty only when its first event is reliable and the ring is full
// — the caller must then block for space. Callers hold s.mu.
func (s *Subscription) appendLocked(events []*event.Event) []*event.Event {
	var dropped uint64
	for i, e := range events {
		if s.n == len(s.ring) {
			if e.Reliable {
				if dropped > 0 {
					s.drops.Add(dropped)
				}
				return events[i:]
			}
			dropped++
			if s.relN == 0 {
				// Steady-state overload fast path: with the ring full,
				// evicting the head and appending at the tail target the
				// same slot — replace in place and advance.
				s.ring[s.head] = e
				s.head++
				if s.head == len(s.ring) {
					s.head = 0
				}
				continue
			}
			if !s.evictOldestLocked() {
				// Every buffered event is reliable; shed the newcomer.
				continue
			}
		}
		tail := s.head + s.n
		if tail >= len(s.ring) {
			tail -= len(s.ring)
		}
		s.ring[tail] = e
		s.n++
		if e.Reliable {
			s.relN++
		}
		if s.n > s.maxOcc {
			s.maxOcc = s.n
		}
	}
	if dropped > 0 {
		s.drops.Add(dropped)
	}
	return nil
}

// evictOldestLocked removes the oldest best-effort entry to make room,
// never touching reliable entries. It reports false when the ring holds
// only reliable traffic. Callers hold s.mu.
func (s *Subscription) evictOldestLocked() bool {
	if s.relN == s.n {
		return false
	}
	// Fast path: media rings rarely buffer reliable events at all.
	j := 0
	if s.relN > 0 {
		for s.ring[(s.head+j)%len(s.ring)].Reliable {
			j++
		}
	}
	// Shift the (usually empty) reliable prefix up one slot so the
	// eviction keeps arrival order for what remains.
	for ; j > 0; j-- {
		s.ring[(s.head+j)%len(s.ring)] = s.ring[(s.head+j-1)%len(s.ring)]
	}
	s.ring[s.head] = nil
	s.head++
	if s.head == len(s.ring) {
		s.head = 0
	}
	s.n--
	return true
}

// tryRecv pops up to max events under one lock acquisition. It returns
// the grown buffer, how many events were taken, and whether the
// subscription is closed and fully drained.
func (s *Subscription) tryRecv(buf []*event.Event, max int) ([]*event.Event, int, bool) {
	s.mu.Lock()
	take := s.n
	if take > max {
		take = max
	}
	for i := 0; i < take; i++ {
		e := s.ring[s.head]
		s.ring[s.head] = nil
		s.head++
		if s.head == len(s.ring) {
			s.head = 0
		}
		s.n--
		if e.Reliable {
			s.relN--
		}
		buf = append(buf, e)
	}
	remaining := s.n
	closed := s.closed
	s.mu.Unlock()
	if take > 0 {
		s.signalSpace()
		if remaining > 0 {
			// Partial drain: keep the token armed so the next wait does
			// not miss the leftover.
			s.resignal()
		} else {
			// Full drain: clear any stale token so the next burst's
			// wakeup is observed (and counted) as a fresh one. Safe —
			// an append racing this drain re-checks the ring under mu
			// before any wait.
			select {
			case <-s.notify:
			default:
			}
		}
	}
	return buf, take, closed && remaining == 0
}

// RecvBatch appends up to max buffered events to buf, blocking until at
// least one is available or the subscription closes. The second return
// is false only once the subscription is closed AND fully drained —
// events buffered at close time are still delivered first. A
// Subscription supports a single concurrent receiver; RecvBatch must
// not be mixed with C.
func (s *Subscription) RecvBatch(buf []*event.Event, max int) ([]*event.Event, bool) {
	if max <= 0 {
		max = len(s.ring)
	}
	for {
		out, n, drained := s.tryRecv(buf, max)
		if n > 0 {
			return out, true
		}
		if drained {
			return out, false
		}
		buf = out
		<-s.notify
	}
}

// TryRecvBatch is the non-blocking RecvBatch: it appends whatever is
// buffered (up to max) and returns immediately. The second return is
// false once the subscription is closed and fully drained.
func (s *Subscription) TryRecvBatch(buf []*event.Event, max int) ([]*event.Event, bool) {
	if max <= 0 {
		max = len(s.ring)
	}
	out, _, drained := s.tryRecv(buf, max)
	return out, !drained
}

// compatBurst bounds the C() pump's per-wakeup drain.
const compatBurst = 64

// C returns a channel view of the subscription for select-based
// consumers, closed when the subscription is cancelled or the client
// closes. The channel is fed by a lazily started pump that drains the
// ring in bursts; the per-event channel send this reintroduces is why
// hot-path consumers should drain the ring directly with RecvBatch.
// C and RecvBatch must not be mixed on one subscription.
func (s *Subscription) C() <-chan *event.Event {
	s.compatOnce.Do(func() {
		s.compatCh = make(chan *event.Event, len(s.ring))
		go s.pumpCompat()
	})
	return s.compatCh
}

// pumpCompat forwards the ring onto the compat channel. While the
// subscription is live it forwards with blocking sends (ring overflow
// policy then applies upstream, as it did to the old channel buffer);
// once the subscription closes it forwards without blocking — whatever
// fits in the channel buffer stays readable, mirroring the old
// close-with-buffered-events semantics — and closes the channel.
func (s *Subscription) pumpCompat() {
	defer close(s.compatCh)
	blocking := true
	buf := make([]*event.Event, 0, compatBurst)
	for {
		var ok bool
		buf, ok = s.RecvBatch(buf[:0], compatBurst)
		for _, e := range buf {
			if blocking {
				select {
				case s.compatCh <- e:
					continue
				default:
				}
				select {
				case s.compatCh <- e:
					continue
				case <-s.closedSig:
					blocking = false
				}
			}
			select {
			case s.compatCh <- e:
			default:
				return
			}
		}
		clear(buf)
		if !ok {
			return
		}
	}
}

// closeRing marks the subscription closed and wakes both sides. Events
// already buffered remain drainable (RecvBatch returns them before
// reporting closure).
func (s *Subscription) closeRing() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		return
	}
	close(s.closedSig)
	s.resignal()
	s.signalSpace()
}

// Client is the publish/subscribe endpoint used by every Global-MMCS
// component that talks to the broker network.
type Client struct {
	id string

	// connMu guards the live conn, its loss channel and the resume
	// token. conn is nil only for resilient clients between redials;
	// lostCh is closed when the conn it was installed with dies (and
	// replaced wholesale at the next install, so a captured copy always
	// refers to one particular conn's lifetime).
	connMu sync.RWMutex
	conn   transport.Conn
	lostCh chan struct{}
	token  string

	// res is the resilience plane (nil for plain clients): redial
	// config, the supervisor kick channel and the outage publish buffer.
	res *resilientState
	// connState holds the current ConnState for lock-free reads.
	connState atomic.Int32
	// hsCh, when armed (under connMu), receives the op of the next
	// hello reply — the resume handshake completion signal.
	hsCh chan string

	mu     sync.Mutex
	closed bool
	// closedFlag mirrors closed for lock-free reads on the publish hot
	// path.
	closedFlag atomic.Bool
	subs       *topic.Trie[*Subscription]
	subSet     map[*Subscription]struct{}
	// routeEpoch counts subscription-set mutations; the readLoop-private
	// dispatch caches below revalidate against it.
	routeEpoch atomic.Uint64

	// Dispatch state owned by the readLoop goroutine: a per-epoch target
	// cache (no lock on hit — the trie walk under mu happens once per
	// topic per epoch), a last-topic memo that skips even the map for
	// single-stream traffic, and the per-burst staging slots. rlConn is
	// the conn the current read loop serves (reverse-path acks must go
	// out on the conn the traffic arrived on, never a replacement);
	// rlGoaway defers the goaway-triggered close until after the burst's
	// ack is flushed. Only one read loop runs at a time: a resilient
	// client starts the next one strictly after the previous one's exit
	// handshake, so these need no lock.
	rlConn      transport.Conn
	rlGoaway    bool
	routeCache  map[string][]*Subscription
	cacheEpoch  uint64
	lastTopic   string
	lastTargets []*Subscription
	lastValid   bool
	stageGen    uint64
	stageSubs   []*Subscription
	stageItems  [][]*event.Event
	oneEvent    [1]*event.Event

	// dispatchBurst selects the delivery mode: >1 stages a received burst
	// per subscription and delivers it with one ring lock and one wakeup
	// per subscription (the default); <=1 degenerates to event-at-a-time
	// delivery — the ablation the benchmark measures against.
	dispatchBurst atomic.Int32

	// acksSent counts reverse-path reliable acks this client has sent;
	// with burst dispatch they are coalesced to one cumulative ack per
	// burst (asserted by tests, reported by the bench harness).
	acksSent atomic.Uint64

	// waiters maps ping tokens to response channels for control fencing.
	waiters map[string]chan struct{}

	// replays maps replay stream ids to their subscriptions (replay
	// events route by id, not by the dispatch trie); replayWait holds
	// the start-handshake completion channels. Both guarded by mu.
	replays    map[uint64]*Subscription
	replayWait map[uint64]chan error

	nextEventID atomic.Uint64
	nextToken   atomic.Uint64

	// Reliable receive state (rseq from the broker).
	recvMu  sync.Mutex
	recvCum uint64
	ahead   map[uint64]struct{}

	wg   sync.WaitGroup
	done chan struct{}
	once sync.Once
}

// Dial connects a new client with the given identity to a broker URL.
func Dial(url, id string) (*Client, error) {
	conn, err := transport.Dial(url)
	if err != nil {
		return nil, err
	}
	return Attach(conn, id)
}

// Attach runs the client handshake over an established conn.
func Attach(conn transport.Conn, id string) (*Client, error) {
	if id == "" {
		return nil, errors.New("broker: client id must not be empty")
	}
	if err := conn.Send(helloEvent(id)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("broker: hello: %w", err)
	}
	c := newClient(id, conn)
	c.setState(StateConnected)
	c.wg.Add(1)
	go c.readLoop(conn)
	return c, nil
}

// newClient builds a Client around an established, hello'd conn.
func newClient(id string, conn transport.Conn) *Client {
	c := &Client{
		id:         id,
		conn:       conn,
		lostCh:     make(chan struct{}),
		subs:       topic.NewTrie[*Subscription](),
		subSet:     make(map[*Subscription]struct{}),
		routeCache: make(map[string][]*Subscription),
		waiters:    make(map[string]chan struct{}),
		replays:    make(map[uint64]*Subscription),
		replayWait: make(map[uint64]chan error),
		ahead:      make(map[uint64]struct{}),
		done:       make(chan struct{}),
		stageGen:   1,
	}
	c.dispatchBurst.Store(clientRecvBurst)
	return c
}

// ConnState reports the client's link state. Plain clients only ever
// move Connected → Closed; resilient clients cycle through
// Reconnecting while their redial loop works.
func (c *Client) ConnState() ConnState { return ConnState(c.connState.Load()) }

// setState records a link-state transition and fires the resilient
// OnState hook on edges.
func (c *Client) setState(st ConnState) {
	if ConnState(c.connState.Swap(int32(st))) == st {
		return
	}
	if c.res != nil && c.res.cfg.OnState != nil {
		c.res.cfg.OnState(st)
	}
}

// currentConn snapshots the live conn and its loss channel. The conn is
// nil while a resilient client is between redials; the channel is
// always non-nil and closes when that particular conn dies.
func (c *Client) currentConn() (transport.Conn, <-chan struct{}) {
	c.connMu.RLock()
	defer c.connMu.RUnlock()
	return c.conn, c.lostCh
}

// send puts one event on the live conn. Every client→broker send
// outside the read loop goes through here (or sendData), so a dead conn
// surfaces uniformly as ErrConnLost — or ErrClientClosed once the
// client is closed for good.
func (c *Client) send(e *event.Event) error {
	conn, _ := c.currentConn()
	if conn == nil {
		return ErrConnLost
	}
	if err := conn.Send(e); err != nil {
		if c.closedFlag.Load() {
			return ErrClientClosed
		}
		return fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	return nil
}

// sendData is send for data-plane publishes: while a resilient client
// is between conns the event is buffered (up to the configured bound)
// and flushed after the reconnect instead of failing.
func (c *Client) sendData(e *event.Event) error {
	conn, _ := c.currentConn()
	if conn == nil {
		if c.res != nil && c.res.buffer(e) {
			return nil
		}
		return ErrConnLost
	}
	if err := conn.Send(e); err != nil {
		if c.closedFlag.Load() {
			return ErrClientClosed
		}
		if c.res != nil && c.res.buffer(e) {
			return nil
		}
		return fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	return nil
}

// SetDispatchBurst selects the client's delivery dispatch mode: n <= 1
// degenerates dispatch to event-at-a-time delivery (one ring lock and
// one wakeup per event, per-event acks — the pre-batching ablation the
// benchmark measures against); any larger value keeps the default
// batched dispatch. Safe to call while traffic flows.
func (c *Client) SetDispatchBurst(n int) {
	if n <= 0 {
		n = clientRecvBurst
	}
	c.dispatchBurst.Store(int32(n))
}

// AckSends reports how many reverse-path reliable acks this client has
// sent (one cumulative ack per received burst under batched dispatch).
func (c *Client) AckSends() uint64 { return c.acksSent.Load() }

// LocalClient attaches an in-process client directly to the broker,
// shaping the broker→client direction with profile. It is the fast path
// used by gateways, examples and the benchmark harness.
func (b *Broker) LocalClient(id string, profile transport.LinkProfile) (*Client, error) {
	clientEnd, serverEnd := transport.Pipe("mem:"+b.cfg.ID, "mem:"+id)
	shaped := transport.Shape(serverEnd, profile)
	b.mu.Lock()
	if b.closed || b.draining {
		b.mu.Unlock()
		clientEnd.Close()
		shaped.Close()
		return nil, ErrBrokerStopped
	}
	b.wg.Add(1)
	b.mu.Unlock()
	go func() {
		defer b.wg.Done()
		b.handshake(shaped)
	}()
	return Attach(clientEnd, id)
}

// ID returns the client identity.
func (c *Client) ID() string { return c.id }

// Done is closed when the client's connection terminates.
func (c *Client) Done() <-chan struct{} { return c.done }

// Subscribe registers a pattern with no deadline beyond the fence
// window. Equivalent to SubscribeContext with a background context.
func (c *Client) Subscribe(pattern string, depth int) (*Subscription, error) {
	return c.SubscribeContext(context.Background(), pattern, depth)
}

// SubscribeContext registers a pattern and returns a Subscription whose
// ring buffers depth events (default 256 if depth <= 0). It blocks
// until the broker has applied the subscription, the fence window
// expires, or ctx is cancelled.
func (c *Client) SubscribeContext(ctx context.Context, pattern string, depth int) (*Subscription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := topic.ValidatePattern(pattern); err != nil {
		return nil, err
	}
	if isControlTopic(pattern) {
		return nil, fmt.Errorf("broker: pattern %q is reserved", pattern)
	}
	if depth <= 0 {
		depth = 256
	}
	sub := newSubscription(c, pattern, depth)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if err := c.subs.Add(pattern, sub); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.subSet[sub] = struct{}{}
	c.routeEpoch.Add(1)
	c.mu.Unlock()

	if err := c.send(subEvent(pattern, BestEffort)); err != nil {
		c.dropSub(sub)
		return nil, fmt.Errorf("broker: sending subscribe: %w", err)
	}
	if err := c.fence(ctx); err != nil {
		// The broker may already have applied the subscription; revoke
		// it best-effort so an abandoned subscribe does not leave the
		// broker delivering into the void for the connection's lifetime.
		c.dropSub(sub)
		c.revokePattern(pattern)
		return nil, err
	}
	return sub, nil
}

// SubscribeReplay opens a replay subscription over a broker-side
// durable topic log: recorded history from sequence from (0 = from the
// earliest retained record) drains through the returned Subscription's
// ring first, then the stream hands off to live tail delivery with no
// gap and no duplicate — CaughtUp reports the handoff. pattern must
// exactly equal one of the broker's configured record patterns (a
// replay attaches to one log, not a topic expression over several).
// Replayed events arrive on the reliable lane, so a replay
// subscription is never shed broker-side even after it goes live.
func (c *Client) SubscribeReplay(ctx context.Context, pattern string, from uint64, depth int) (*Subscription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := topic.ValidatePattern(pattern); err != nil {
		return nil, err
	}
	if depth <= 0 {
		depth = 256
	}
	id := c.nextToken.Add(1)
	sub := newSubscription(c, pattern, depth)
	sub.replay = &replayState{id: id, pattern: pattern, from: from, live: make(chan struct{})}
	wait := make(chan error, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	// Replay subscriptions live outside the dispatch trie: their events
	// arrive as id-tagged envelopes, not trie-matched topics.
	c.subSet[sub] = struct{}{}
	c.replays[id] = sub
	c.replayWait[id] = wait
	c.mu.Unlock()
	cleanup := func() {
		c.mu.Lock()
		delete(c.subSet, sub)
		delete(c.replays, id)
		delete(c.replayWait, id)
		c.mu.Unlock()
		sub.closeRing()
	}
	_, lost := c.currentConn()
	if err := c.send(replayStartEvent(pattern, from, id)); err != nil {
		cleanup()
		return nil, fmt.Errorf("broker: sending replay start: %w", err)
	}
	select {
	case err := <-wait:
		c.mu.Lock()
		delete(c.replayWait, id)
		c.mu.Unlock()
		if err != nil {
			cleanup()
			return nil, err
		}
	case <-ctx.Done():
		cleanup()
		_ = c.send(replayStopEvent(id))
		return nil, ctx.Err()
	case <-lost:
		cleanup()
		return nil, ErrConnLost
	case <-c.done:
		cleanup()
		return nil, ErrClientClosed
	case <-time.After(subscribeTimeout):
		cleanup()
		_ = c.send(replayStopEvent(id))
		return nil, ErrFenceTimeout
	}
	return sub, nil
}

// revokePattern sends an unsubscribe for pattern unless another live
// subscription still uses it. Best-effort: no fence, errors ignored —
// used when abandoning a subscribe whose handshake was cancelled.
func (c *Client) revokePattern(pattern string) {
	c.mu.Lock()
	stillUsed := false
	for other := range c.subSet {
		if other.pattern == pattern {
			stillUsed = true
			break
		}
	}
	closed := c.closed
	c.mu.Unlock()
	if stillUsed || closed {
		return
	}
	_ = c.send(unsubEvent(pattern))
}

// Unsubscribe cancels a subscription and closes its delivery ring.
func (c *Client) Unsubscribe(sub *Subscription) error {
	c.mu.Lock()
	if _, ok := c.subSet[sub]; !ok {
		c.mu.Unlock()
		return nil
	}
	if sub.replay != nil {
		// Replay subscriptions are not in the trie and need no fence:
		// the broker-side stream is torn down by a stop request.
		delete(c.subSet, sub)
		delete(c.replays, sub.replay.id)
		closed := c.closed
		c.mu.Unlock()
		sub.closeRing()
		if closed {
			return nil
		}
		if err := c.send(replayStopEvent(sub.replay.id)); err != nil {
			return fmt.Errorf("broker: sending replay stop: %w", err)
		}
		return nil
	}
	delete(c.subSet, sub)
	c.subs.Remove(sub.pattern, sub)
	c.routeEpoch.Add(1)
	stillUsed := false
	for other := range c.subSet {
		if other.pattern == sub.pattern {
			stillUsed = true
			break
		}
	}
	closed := c.closed
	c.mu.Unlock()
	sub.closeRing()
	if closed || stillUsed {
		return nil
	}
	if err := c.send(unsubEvent(sub.pattern)); err != nil {
		return fmt.Errorf("broker: sending unsubscribe: %w", err)
	}
	return c.fence(context.Background())
}

func (c *Client) dropSub(sub *Subscription) {
	c.mu.Lock()
	delete(c.subSet, sub)
	c.subs.Remove(sub.pattern, sub)
	c.routeEpoch.Add(1)
	c.mu.Unlock()
	sub.closeRing()
}

// fence sends a ping and waits for its echo, guaranteeing all prior
// control requests on this connection have been applied by the broker.
// It returns early when ctx is cancelled.
func (c *Client) fence(ctx context.Context) error {
	token := strconv.FormatUint(c.nextToken.Add(1), 10)
	ch := make(chan struct{}, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.waiters[token] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, token)
		c.mu.Unlock()
	}()
	ping := event.New(topicPing, event.KindControl, nil)
	ping.Headers = map[string]string{hdrSeq: token}
	_, lost := c.currentConn()
	if err := c.send(ping); err != nil {
		return fmt.Errorf("broker: sending ping: %w", err)
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-lost:
		// The conn carrying the ping died; its echo will never arrive.
		return ErrConnLost
	case <-c.done:
		return ErrClientClosed
	case <-time.After(subscribeTimeout):
		return ErrFenceTimeout
	}
}

// Publish sends a best-effort event to a topic.
func (c *Client) Publish(t string, kind event.Kind, payload []byte) error {
	e := event.New(t, kind, payload)
	return c.PublishEvent(e)
}

// PublishReliable sends a reliable event to a topic.
func (c *Client) PublishReliable(t string, kind event.Kind, payload []byte) error {
	e := event.New(t, kind, payload)
	e.Reliable = true
	return c.PublishEvent(e)
}

// PublishEvent stamps identity onto e and sends it. The event must not be
// mutated afterwards.
func (c *Client) PublishEvent(e *event.Event) error {
	if err := c.stamp(e); err != nil {
		return err
	}
	if err := c.sendData(e); err != nil {
		return fmt.Errorf("broker: publish: %w", err)
	}
	return nil
}

// stamp validates e and assigns this client's identity and the next
// event id — the shared front half of every publish path (per-event
// sends and the batching Publisher).
func (c *Client) stamp(e *event.Event) error {
	if c.closedFlag.Load() {
		return ErrClientClosed
	}
	if err := e.Validate(); err != nil {
		return err
	}
	if err := topic.ValidateTopic(e.Topic); err != nil {
		return err
	}
	if isControlTopic(e.Topic) {
		return fmt.Errorf("broker: topic %q is reserved", e.Topic)
	}
	e.Source = c.id
	e.ID = c.nextEventID.Add(1)
	return nil
}

// clientRecvBurst bounds how many events the client reader takes per
// burst receive.
const clientRecvBurst = 256

func (c *Client) readLoop(conn transport.Conn) {
	defer c.wg.Done()
	defer c.connDone(conn)
	c.rlConn = conn
	bc, canBurst := conn.(transport.BurstConn)
	if !canBurst {
		for {
			e, err := conn.Recv()
			if err != nil {
				return
			}
			c.handleInbound(e)
			if c.rlGoaway {
				c.rlGoaway = false
				conn.Close()
			}
		}
	}
	// Burst receive: one wakeup and one conn operation per batch the
	// broker's writer flushed; dispatch then rides the same burst —
	// staged per subscription, delivered with one ring lock and one
	// consumer wakeup per subscription per burst, and reverse-path acks
	// coalesced to one cumulative ack per burst.
	events := make([]*event.Event, 0, clientRecvBurst)
	for {
		events = events[:0]
		events, err := bc.RecvBurst(events, clientRecvBurst)
		if c.dispatchBurst.Load() > 1 {
			c.processBurst(events)
		} else {
			for _, e := range events {
				c.handleInbound(e)
			}
		}
		clear(events) // never pin delivered events in the reused buffer
		if c.rlGoaway {
			// Deferred from the goaway handler: the burst's cumulative ack
			// went out first, so the draining broker sees its window flush
			// instead of waiting out the retransmit limit.
			c.rlGoaway = false
			conn.Close()
		}
		if err != nil {
			return
		}
	}
}

// connDone is the tail of every read loop: the conn is dead. A plain
// client (or one whose Close already ran) tears down; a resilient one
// marks the link lost — subscriptions and dedup state intact — and
// kicks the redial supervisor.
func (c *Client) connDone(conn transport.Conn) {
	conn.Close()
	select {
	case <-c.done:
		c.teardown()
		return
	default:
	}
	if c.res == nil {
		c.teardown()
		return
	}
	c.connMu.Lock()
	if c.conn == conn {
		c.conn = nil
		// The closed channel keeps serving currentConn callers until the
		// next install replaces it, so waits against the dead conn fail
		// fast. A handshake waiting on hsCh unblocks via the same close.
		close(c.lostCh)
		c.hsCh = nil
	}
	c.connMu.Unlock()
	c.setState(StateReconnecting)
	select {
	case c.res.kick <- struct{}{}:
	default:
	}
}

// handleInbound processes one event from the broker: hop reliability,
// control fencing, then subscription dispatch. This is the per-event
// path (non-burst conns, and the dispatch ablation).
func (c *Client) handleInbound(e *event.Event) {
	if rseq, tagged, bad := inboundRSeq(e); tagged && e.Topic != topicAck {
		if bad {
			return
		}
		cum, fresh := c.acceptReliable(rseq)
		c.acksSent.Add(1)
		_ = c.rlConn.Send(ackEvent(cum))
		if !fresh {
			return
		}
		e = stripRSeq(e)
	}
	if isControlTopic(e.Topic) {
		c.handleControl(e)
		return
	}
	c.oneEvent[0] = e
	c.dispatchStaged(c.oneEvent[:1])
	c.oneEvent[0] = nil
}

// processBurst is the burst mirror of handleInbound: per-event hop
// reliability and control handling are unchanged, but matched events
// are staged per subscription and handed over as one batch each, and
// the reliable reverse path sends ONE cumulative ack for the whole
// burst instead of one per rseq-tagged event.
func (c *Client) processBurst(events []*event.Event) {
	ackDue := false
	var ackCum uint64
	for _, e := range events {
		if rseq, tagged, bad := inboundRSeq(e); tagged && e.Topic != topicAck {
			if bad {
				continue
			}
			cum, fresh := c.acceptReliable(rseq)
			ackDue, ackCum = true, cum
			if !fresh {
				continue
			}
			e = stripRSeq(e)
		}
		if isControlTopic(e.Topic) {
			// Deliver staged data first so control effects (fence echoes)
			// are observed in arrival order relative to the data around
			// them.
			c.flushStaged()
			c.handleControl(e)
			continue
		}
		c.stageEvent(e)
	}
	c.flushStaged()
	if ackDue {
		c.acksSent.Add(1)
		_ = c.rlConn.Send(ackEvent(ackCum))
	}
}

// handleControl applies one control event: the ping echo that releases
// control fences, hello replies (resume tokens), drain notices, replay
// lifecycle replies, and replay data envelopes.
func (c *Client) handleControl(e *event.Event) {
	switch e.Topic {
	case topicPing:
		c.mu.Lock()
		ch := c.waiters[e.Headers[hdrSeq]]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
	case topicHello:
		c.handleWelcome(e)
	case topicGoaway:
		c.handleGoaway()
	case topicReplay:
		c.handleReplayReply(e)
	case topicReplayData:
		c.handleReplayData(e)
	}
}

// handleWelcome applies the broker's hello reply: store the (re)minted
// resume token and complete any pending resume handshake with the op.
func (c *Client) handleWelcome(e *event.Event) {
	c.connMu.Lock()
	if tok := e.Headers[hdrToken]; tok != "" {
		c.token = tok
	}
	hs := c.hsCh
	c.hsCh = nil
	c.connMu.Unlock()
	if hs != nil {
		select {
		case hs <- e.Headers[hdrOp]:
		default:
		}
	}
}

// handleGoaway reacts to a broker drain notice: rotate to the next
// configured URL, forget the resume token (the draining broker dropped
// its parks, and no other broker honours it), and schedule the conn
// close for after the burst's ack flush so the drain observes this
// client as caught up. Plain clients just ack and stay until the broker
// stops.
func (c *Client) handleGoaway() {
	if c.res == nil {
		return
	}
	c.connMu.Lock()
	c.token = ""
	c.connMu.Unlock()
	c.res.advanceURL()
	c.rlGoaway = true
}

// handleReplayReply applies a replay lifecycle transition: ok/err
// complete the start handshake, live marks the history→tail handoff,
// and a mid-stream err ends the subscription.
func (c *Client) handleReplayReply(e *event.Event) {
	id, err := headerUint(e, hdrReplay)
	if err != nil {
		return
	}
	switch e.Headers[hdrOp] {
	case repOK:
		c.mu.Lock()
		ch := c.replayWaiter(id)
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- nil:
			default:
			}
		}
	case repErr:
		detail := e.Headers[hdrError]
		if detail == "" {
			detail = "replay failed"
		}
		c.mu.Lock()
		ch := c.replayWaiter(id)
		sub := c.replays[id]
		delete(c.replays, id)
		if sub != nil {
			delete(c.subSet, sub)
		}
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- errors.New("broker: " + detail):
			default:
			}
		}
		if sub != nil {
			// The broker-side stream died (e.g. the log closed): end the
			// subscription so consumers observe termination, not silence.
			sub.closeRing()
		}
	case repLive:
		c.mu.Lock()
		sub := c.replays[id]
		c.mu.Unlock()
		if sub != nil && sub.replay != nil {
			sub.replay.once.Do(func() { close(sub.replay.live) })
		}
	}
}

// replayWaiter returns the pending start-handshake channel for a
// replay id. Caller holds c.mu.
func (c *Client) replayWaiter(id uint64) chan error { return c.replayWait[id] }

// handleReplayData unpacks one replay envelope — a run of
// topiclog-framed records — and delivers the decoded events to the
// stream's subscription as one batch (one ring lock, one wakeup per
// envelope). Each record's CRC is re-verified by ParseRecord on the
// way out.
func (c *Client) handleReplayData(e *event.Event) {
	id, err := headerUint(e, hdrReplay)
	if err != nil {
		return
	}
	c.mu.Lock()
	sub := c.replays[id]
	c.mu.Unlock()
	if sub == nil {
		return
	}
	payload := e.Payload
	var events []*event.Event
	for len(payload) > 0 {
		seq, rec, n, perr := topiclog.ParseRecord(payload, 0)
		if perr != nil {
			break
		}
		payload = payload[n:]
		if sub.replay != nil && seq <= sub.replay.lastSeq.Load() {
			// Already delivered before a reconnect restarted the stream:
			// the log sequence is the exactly-once dedup key across the
			// old stream's salvaged tail and the restarted cursor.
			continue
		}
		ev, uerr := event.Unmarshal(rec)
		if uerr != nil {
			continue
		}
		if sub.replay != nil {
			sub.replay.lastSeq.Store(seq)
		}
		// Replay delivery is reliable end to end regardless of the
		// event's original class: the broker never sheds the stream, and
		// ring admission must block (backpressuring the broker's pump via
		// withheld acks) rather than evict — eviction would break the
		// exactly-once contract the durable log exists for.
		ev.Reliable = true
		events = append(events, ev)
	}
	if len(events) > 0 {
		sub.deliverBatch(events, c.done)
	}
}

// dispatchTargets resolves the subscriptions matching a concrete topic.
// The cache is readLoop-private and epoch-validated: a hit costs no
// lock at all; the trie walk under c.mu happens once per topic per
// subscription-set epoch. A last-topic memo skips even the map for
// single-stream traffic (a media stream repeats one topic for
// thousands of events).
func (c *Client) dispatchTargets(t string) []*Subscription {
	epoch := c.routeEpoch.Load()
	if epoch != c.cacheEpoch {
		clear(c.routeCache)
		c.cacheEpoch = epoch
		c.lastValid = false
	}
	if c.lastValid && t == c.lastTopic {
		return c.lastTargets
	}
	targets, ok := c.routeCache[t]
	if !ok {
		c.mu.Lock()
		c.subs.MatchFunc(t, func(s *Subscription) {
			targets = append(targets, s)
		})
		c.mu.Unlock()
		if len(c.routeCache) < clientRouteCacheBound {
			c.routeCache[t] = targets
		}
	}
	c.lastTopic, c.lastTargets, c.lastValid = t, targets, true
	return targets
}

// stageEvent appends e to the staged burst of every matching
// subscription, resolving targets once per topic per burst. The staging
// slot lives on the Subscription itself (generation-stamped), so
// staging is O(1) per (event, target) with no map.
func (c *Client) stageEvent(e *event.Event) {
	for _, sub := range c.dispatchTargets(e.Topic) {
		if sub.stageGen != c.stageGen {
			sub.stageGen = c.stageGen
			sub.stageIdx = len(c.stageSubs)
			c.stageSubs = append(c.stageSubs, sub)
			if len(c.stageItems) < len(c.stageSubs) {
				c.stageItems = append(c.stageItems, nil)
			}
		}
		c.stageItems[sub.stageIdx] = append(c.stageItems[sub.stageIdx], e)
	}
}

// flushStaged hands every staged burst to its subscription — one ring
// lock and one wakeup per subscription — and resets the stage for the
// next burst.
func (c *Client) flushStaged() {
	for i, sub := range c.stageSubs {
		items := c.stageItems[i]
		sub.deliverBatch(items, c.done)
		// Clear staged references so the reused buffers never pin events.
		clear(items)
		c.stageItems[i] = items[:0]
	}
	clear(c.stageSubs)
	c.stageSubs = c.stageSubs[:0]
	c.stageGen++
}

// dispatchStaged delivers a pre-assembled burst for one topic: stage
// every event, then flush. Used by the per-event path with a one-event
// burst.
func (c *Client) dispatchStaged(events []*event.Event) {
	for _, e := range events {
		c.stageEvent(e)
	}
	c.flushStaged()
}

func (c *Client) acceptReliable(rseq uint64) (cum uint64, fresh bool) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if rseq <= c.recvCum {
		return c.recvCum, false
	}
	if _, dup := c.ahead[rseq]; dup {
		return c.recvCum, false
	}
	c.ahead[rseq] = struct{}{}
	for {
		if _, ok := c.ahead[c.recvCum+1]; !ok {
			break
		}
		delete(c.ahead, c.recvCum+1)
		c.recvCum++
	}
	return c.recvCum, true
}

// teardown closes every subscription ring after the conn dies.
func (c *Client) teardown() {
	c.once.Do(func() { close(c.done) })
	c.closedFlag.Store(true)
	c.setState(StateClosed)
	c.mu.Lock()
	c.closed = true
	subs := make([]*Subscription, 0, len(c.subSet))
	for s := range c.subSet {
		subs = append(subs, s)
	}
	clear(c.subSet)
	clear(c.replays)
	clear(c.replayWait)
	c.subs = topic.NewTrie[*Subscription]()
	c.routeEpoch.Add(1)
	c.mu.Unlock()
	for _, s := range subs {
		s.closeRing()
	}
}

// Close disconnects the client and closes all subscription rings.
// done closes first: the read loop can be blocked delivering a
// reliable event into an abandoned subscription's full ring, and it
// unblocks on done — closing it only from the read loop's own teardown
// would deadlock the wait below.
func (c *Client) Close() error {
	c.once.Do(func() { close(c.done) })
	conn, _ := c.currentConn()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	c.wg.Wait()
	return err
}
