package broker

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/topic"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// ErrClientClosed is returned by operations on a closed Client.
var ErrClientClosed = errors.New("broker: client closed")

// ErrFenceTimeout is returned when the broker does not acknowledge a
// control request within the fence window.
var ErrFenceTimeout = errors.New("broker: control fence timed out")

// subscribeTimeout bounds the control-plane round trip of Subscribe and
// Unsubscribe.
const subscribeTimeout = 10 * time.Second

// clientRouteCacheBound caps the client-side dispatch memo so a hostile
// topic stream cannot grow it without bound.
const clientRouteCacheBound = 1024

// Subscription is a client-side subscription delivering matched events on
// a channel.
type Subscription struct {
	client  *Client
	pattern string
	drops   atomic.Uint64

	// sendMu serialises channel sends against close so that cancelling a
	// subscription while traffic is in flight is safe.
	sendMu sync.Mutex
	closed bool
	ch     chan *event.Event
}

// C returns the delivery channel. It is closed when the subscription is
// cancelled or the client closes.
func (s *Subscription) C() <-chan *event.Event { return s.ch }

// Pattern returns the subscription pattern.
func (s *Subscription) Pattern() string { return s.pattern }

// Drops returns how many best-effort events were discarded because the
// consumer was slow.
func (s *Subscription) Drops() uint64 { return s.drops.Load() }

// Cancel unsubscribes. Equivalent to Client.Unsubscribe.
func (s *Subscription) Cancel() error { return s.client.Unsubscribe(s) }

func (s *Subscription) closeChan() {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

// deliver hands an event to the subscription channel. Best-effort events
// displace the oldest buffered event when the consumer lags; reliable
// events retry until delivered, the subscription closes, or the client
// shuts down. The channel send itself is always non-blocking under
// sendMu, so closeChan can never race a send.
func (s *Subscription) deliver(e *event.Event, done <-chan struct{}) {
	for {
		s.sendMu.Lock()
		if s.closed {
			s.sendMu.Unlock()
			return
		}
		select {
		case s.ch <- e:
			s.sendMu.Unlock()
			return
		default:
		}
		if !e.Reliable {
			// Make room by discarding the oldest buffered event.
			select {
			case <-s.ch:
				s.drops.Add(1)
			default:
			}
			select {
			case s.ch <- e:
			default:
				s.drops.Add(1)
			}
			s.sendMu.Unlock()
			return
		}
		s.sendMu.Unlock()
		select {
		case <-done:
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// Client is the publish/subscribe endpoint used by every Global-MMCS
// component that talks to the broker network.
type Client struct {
	id   string
	conn transport.Conn

	mu     sync.Mutex
	closed bool
	// closedFlag mirrors closed for lock-free reads on the publish hot
	// path.
	closedFlag atomic.Bool
	subs       *topic.Trie[*Subscription]
	subSet     map[*Subscription]struct{}
	// routeCache memoises dispatch targets per concrete topic; any
	// subscription change clears it. Guarded by mu. It spares the
	// delivery hot path a trie walk (and its per-match allocation) per
	// inbound event.
	routeCache map[string][]*Subscription
	// routeEpoch counts routeCache invalidations; the readLoop-private
	// last-topic fast path below revalidates against it.
	routeEpoch atomic.Uint64
	// lastTopic/lastTargets memoise the previous dispatch for the
	// single-reader hot path (a media stream repeats one topic), skipping
	// both the mutex and the map. Touched only by the readLoop goroutine.
	lastTopic   string
	lastTargets []*Subscription
	lastEpoch   uint64
	lastValid   bool
	// waiters maps ping tokens to response channels for control fencing.
	waiters map[string]chan struct{}

	nextEventID atomic.Uint64
	nextToken   atomic.Uint64

	// Reliable receive state (rseq from the broker).
	recvMu  sync.Mutex
	recvCum uint64
	ahead   map[uint64]struct{}

	wg   sync.WaitGroup
	done chan struct{}
	once sync.Once
}

// Dial connects a new client with the given identity to a broker URL.
func Dial(url, id string) (*Client, error) {
	conn, err := transport.Dial(url)
	if err != nil {
		return nil, err
	}
	return Attach(conn, id)
}

// Attach runs the client handshake over an established conn.
func Attach(conn transport.Conn, id string) (*Client, error) {
	if id == "" {
		return nil, errors.New("broker: client id must not be empty")
	}
	if err := conn.Send(helloEvent(id)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("broker: hello: %w", err)
	}
	c := &Client{
		id:         id,
		conn:       conn,
		subs:       topic.NewTrie[*Subscription](),
		subSet:     make(map[*Subscription]struct{}),
		routeCache: make(map[string][]*Subscription),
		waiters:    make(map[string]chan struct{}),
		ahead:      make(map[uint64]struct{}),
		done:       make(chan struct{}),
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// LocalClient attaches an in-process client directly to the broker,
// shaping the broker→client direction with profile. It is the fast path
// used by gateways, examples and the benchmark harness.
func (b *Broker) LocalClient(id string, profile transport.LinkProfile) (*Client, error) {
	clientEnd, serverEnd := transport.Pipe("mem:"+b.cfg.ID, "mem:"+id)
	shaped := transport.Shape(serverEnd, profile)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		clientEnd.Close()
		shaped.Close()
		return nil, ErrBrokerStopped
	}
	b.wg.Add(1)
	b.mu.Unlock()
	go func() {
		defer b.wg.Done()
		b.handshake(shaped)
	}()
	return Attach(clientEnd, id)
}

// ID returns the client identity.
func (c *Client) ID() string { return c.id }

// Done is closed when the client's connection terminates.
func (c *Client) Done() <-chan struct{} { return c.done }

// Subscribe registers a pattern with no deadline beyond the fence
// window. Equivalent to SubscribeContext with a background context.
func (c *Client) Subscribe(pattern string, depth int) (*Subscription, error) {
	return c.SubscribeContext(context.Background(), pattern, depth)
}

// SubscribeContext registers a pattern and returns a Subscription whose
// channel buffers depth events (default 256 if depth <= 0). It blocks
// until the broker has applied the subscription, the fence window
// expires, or ctx is cancelled.
func (c *Client) SubscribeContext(ctx context.Context, pattern string, depth int) (*Subscription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := topic.ValidatePattern(pattern); err != nil {
		return nil, err
	}
	if isControlTopic(pattern) {
		return nil, fmt.Errorf("broker: pattern %q is reserved", pattern)
	}
	if depth <= 0 {
		depth = 256
	}
	sub := &Subscription{client: c, pattern: pattern, ch: make(chan *event.Event, depth)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if err := c.subs.Add(pattern, sub); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.subSet[sub] = struct{}{}
	clear(c.routeCache)
	c.routeEpoch.Add(1)
	c.mu.Unlock()

	if err := c.conn.Send(subEvent(pattern, BestEffort)); err != nil {
		c.dropSub(sub)
		return nil, fmt.Errorf("broker: sending subscribe: %w", err)
	}
	if err := c.fence(ctx); err != nil {
		// The broker may already have applied the subscription; revoke
		// it best-effort so an abandoned subscribe does not leave the
		// broker delivering into the void for the connection's lifetime.
		c.dropSub(sub)
		c.revokePattern(pattern)
		return nil, err
	}
	return sub, nil
}

// revokePattern sends an unsubscribe for pattern unless another live
// subscription still uses it. Best-effort: no fence, errors ignored —
// used when abandoning a subscribe whose handshake was cancelled.
func (c *Client) revokePattern(pattern string) {
	c.mu.Lock()
	stillUsed := false
	for other := range c.subSet {
		if other.pattern == pattern {
			stillUsed = true
			break
		}
	}
	closed := c.closed
	c.mu.Unlock()
	if stillUsed || closed {
		return
	}
	_ = c.conn.Send(unsubEvent(pattern))
}

// Unsubscribe cancels a subscription and closes its channel.
func (c *Client) Unsubscribe(sub *Subscription) error {
	c.mu.Lock()
	if _, ok := c.subSet[sub]; !ok {
		c.mu.Unlock()
		return nil
	}
	delete(c.subSet, sub)
	c.subs.Remove(sub.pattern, sub)
	clear(c.routeCache)
	c.routeEpoch.Add(1)
	stillUsed := false
	for other := range c.subSet {
		if other.pattern == sub.pattern {
			stillUsed = true
			break
		}
	}
	closed := c.closed
	c.mu.Unlock()
	sub.closeChan()
	if closed || stillUsed {
		return nil
	}
	if err := c.conn.Send(unsubEvent(sub.pattern)); err != nil {
		return fmt.Errorf("broker: sending unsubscribe: %w", err)
	}
	return c.fence(context.Background())
}

func (c *Client) dropSub(sub *Subscription) {
	c.mu.Lock()
	delete(c.subSet, sub)
	c.subs.Remove(sub.pattern, sub)
	clear(c.routeCache)
	c.routeEpoch.Add(1)
	c.mu.Unlock()
	sub.closeChan()
}

// fence sends a ping and waits for its echo, guaranteeing all prior
// control requests on this connection have been applied by the broker.
// It returns early when ctx is cancelled.
func (c *Client) fence(ctx context.Context) error {
	token := strconv.FormatUint(c.nextToken.Add(1), 10)
	ch := make(chan struct{}, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	c.waiters[token] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, token)
		c.mu.Unlock()
	}()
	ping := event.New(topicPing, event.KindControl, nil)
	ping.Headers = map[string]string{hdrSeq: token}
	if err := c.conn.Send(ping); err != nil {
		return fmt.Errorf("broker: sending ping: %w", err)
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-c.done:
		return ErrClientClosed
	case <-time.After(subscribeTimeout):
		return ErrFenceTimeout
	}
}

// Publish sends a best-effort event to a topic.
func (c *Client) Publish(t string, kind event.Kind, payload []byte) error {
	e := event.New(t, kind, payload)
	return c.PublishEvent(e)
}

// PublishReliable sends a reliable event to a topic.
func (c *Client) PublishReliable(t string, kind event.Kind, payload []byte) error {
	e := event.New(t, kind, payload)
	e.Reliable = true
	return c.PublishEvent(e)
}

// PublishEvent stamps identity onto e and sends it. The event must not be
// mutated afterwards.
func (c *Client) PublishEvent(e *event.Event) error {
	if err := c.stamp(e); err != nil {
		return err
	}
	if err := c.conn.Send(e); err != nil {
		return fmt.Errorf("broker: publish: %w", err)
	}
	return nil
}

// stamp validates e and assigns this client's identity and the next
// event id — the shared front half of every publish path (per-event
// sends and the batching Publisher).
func (c *Client) stamp(e *event.Event) error {
	if c.closedFlag.Load() {
		return ErrClientClosed
	}
	if err := e.Validate(); err != nil {
		return err
	}
	if err := topic.ValidateTopic(e.Topic); err != nil {
		return err
	}
	if isControlTopic(e.Topic) {
		return fmt.Errorf("broker: topic %q is reserved", e.Topic)
	}
	e.Source = c.id
	e.ID = c.nextEventID.Add(1)
	return nil
}

// clientRecvBurst bounds how many events the client reader takes per
// burst receive.
const clientRecvBurst = 256

func (c *Client) readLoop() {
	defer c.wg.Done()
	defer c.teardown()
	bc, canBurst := c.conn.(transport.BurstConn)
	if !canBurst {
		for {
			e, err := c.conn.Recv()
			if err != nil {
				return
			}
			c.handleInbound(e)
		}
	}
	// Burst receive: one wakeup and one conn operation per batch the
	// broker's writer flushed, with per-event processing unchanged.
	events := make([]*event.Event, 0, clientRecvBurst)
	for {
		events = events[:0]
		events, err := bc.RecvBurst(events, clientRecvBurst)
		for _, e := range events {
			c.handleInbound(e)
		}
		clear(events) // never pin delivered events in the reused buffer
		if err != nil {
			return
		}
	}
}

// handleInbound processes one event from the broker: hop reliability,
// control fencing, then subscription dispatch.
func (c *Client) handleInbound(e *event.Event) {
	if rseq, tagged, bad := inboundRSeq(e); tagged && e.Topic != topicAck {
		if bad {
			return
		}
		cum, fresh := c.acceptReliable(rseq)
		_ = c.conn.Send(ackEvent(cum))
		if !fresh {
			return
		}
		e = stripRSeq(e)
	}
	if isControlTopic(e.Topic) {
		if e.Topic == topicPing {
			c.mu.Lock()
			ch := c.waiters[e.Headers[hdrSeq]]
			c.mu.Unlock()
			if ch != nil {
				select {
				case ch <- struct{}{}:
				default:
				}
			}
		}
		return
	}
	c.dispatch(e)
}

// dispatch fans an event out to matching local subscriptions. Best-effort
// events are dropped when a consumer lags; reliable events apply
// backpressure. Targets are memoised per topic until the subscription
// set changes, with a lock-free fast path for the previous topic (a
// media stream repeats one topic for thousands of events).
func (c *Client) dispatch(e *event.Event) {
	epoch := c.routeEpoch.Load()
	var targets []*Subscription
	if c.lastValid && c.lastEpoch == epoch && e.Topic == c.lastTopic {
		targets = c.lastTargets
	} else {
		c.mu.Lock()
		var cached bool
		targets, cached = c.routeCache[e.Topic]
		if !cached {
			c.subs.MatchFunc(e.Topic, func(s *Subscription) {
				targets = append(targets, s)
			})
			if len(c.routeCache) < clientRouteCacheBound {
				c.routeCache[e.Topic] = targets
			}
		}
		c.mu.Unlock()
		c.lastTopic, c.lastTargets, c.lastEpoch, c.lastValid = e.Topic, targets, epoch, true
	}
	for _, s := range targets {
		s.deliver(e, c.done)
	}
}

func (c *Client) acceptReliable(rseq uint64) (cum uint64, fresh bool) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if rseq <= c.recvCum {
		return c.recvCum, false
	}
	if _, dup := c.ahead[rseq]; dup {
		return c.recvCum, false
	}
	c.ahead[rseq] = struct{}{}
	for {
		if _, ok := c.ahead[c.recvCum+1]; !ok {
			break
		}
		delete(c.ahead, c.recvCum+1)
		c.recvCum++
	}
	return c.recvCum, true
}

// teardown closes every subscription channel after the conn dies.
func (c *Client) teardown() {
	c.once.Do(func() { close(c.done) })
	c.closedFlag.Store(true)
	c.mu.Lock()
	c.closed = true
	subs := make([]*Subscription, 0, len(c.subSet))
	for s := range c.subSet {
		subs = append(subs, s)
	}
	clear(c.subSet)
	c.subs = topic.NewTrie[*Subscription]()
	clear(c.routeCache)
	c.routeEpoch.Add(1)
	c.mu.Unlock()
	for _, s := range subs {
		s.closeChan()
	}
}

// Close disconnects the client and closes all subscription channels.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.wg.Wait()
	return err
}
