package broker

import (
	"fmt"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// rawClient is a hand-driven wire client for resume-handshake tests:
// it speaks the hello/resume protocol directly so tests control exactly
// what is acked and when the conn dies.
type rawClient struct {
	t    *testing.T
	conn transport.Conn
}

func rawAttach(t *testing.T, b *Broker, hello *event.Event) *rawClient {
	t.Helper()
	client, server := transport.Pipe(b.ID(), "raw-client")
	go b.AcceptConn(server)
	if err := client.Send(hello); err != nil {
		t.Fatal(err)
	}
	return &rawClient{t: t, conn: client}
}

// recv returns the next event within a bounded wait.
func (rc *rawClient) recv() *event.Event {
	rc.t.Helper()
	type res struct {
		e   *event.Event
		err error
	}
	ch := make(chan res, 1)
	go func() {
		e, err := rc.conn.Recv()
		ch <- res{e, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			rc.t.Fatalf("raw recv: %v", r.err)
		}
		return r.e
	case <-time.After(5 * time.Second):
		rc.t.Fatal("raw recv: timeout")
		return nil
	}
}

// welcome waits for the hello reply and returns (op, token).
func (rc *rawClient) welcome() (string, string) {
	rc.t.Helper()
	for {
		e := rc.recv()
		if e.Topic == topicHello {
			return e.Headers[hdrOp], e.Headers[hdrToken]
		}
	}
}

// recvData collects n rseq-tagged events on topic, returning them in
// arrival order without acking.
func (rc *rawClient) recvData(topic string, n int) []*event.Event {
	rc.t.Helper()
	var got []*event.Event
	for len(got) < n {
		e := rc.recv()
		if e.Topic != topic {
			continue
		}
		if _, tagged, bad := inboundRSeq(e); !tagged || bad {
			rc.t.Fatalf("event on %s not rseq-tagged: %v", topic, e)
		}
		got = append(got, e)
	}
	return got
}

func newResumeBroker(t *testing.T, id string, linger time.Duration) *Broker {
	t.Helper()
	return newTestBrokerCfg(t, Config{
		ID:            id,
		SessionLinger: linger,
		// Long enough that retransmission never fires mid-test: every
		// redelivery observed is the resume salvage, not the timer.
		RetransmitInterval: time.Minute,
	})
}

// TestResumeWindowSalvage: events unacked when the conn dies replay on
// the resumed session under their ORIGINAL rseqs, in order, before any
// fresh traffic.
func TestResumeWindowSalvage(t *testing.T) {
	b := newResumeBroker(t, "salvage", 5*time.Second)
	rc := rawAttach(t, b, helloEvent("rs-sub"))
	op, token := rc.welcome()
	if op != opWelcome || token == "" {
		t.Fatalf("welcome op=%q token=%q, want opWelcome with token", op, token)
	}
	if err := rc.conn.Send(subEvent("/rs/t", BestEffort)); err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "subscribed", func() bool {
		return len(b.matchSessions("/rs/t")) > 0
	})

	pub := localClient(t, b, "rs-pub")
	const n = 5
	for i := range n {
		if err := pub.PublishReliable("/rs/t", event.KindControl, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Receive all five but never ack, then pull the cable: the whole
	// window parks as unacked.
	first := rc.recvData("/rs/t", n)
	rc.conn.Close()
	waitCondition(t, 5*time.Second, "session parked", func() bool {
		return b.parkedCount() == 1
	})

	rc2 := rawAttach(t, b, resumeHelloEvent("rs-sub", token))
	replayed := rc2.recvData("/rs/t", n)
	for i, e := range replayed {
		rseq, _, _ := inboundRSeq(e)
		origRSeq, _, _ := inboundRSeq(first[i])
		if rseq != origRSeq {
			t.Fatalf("replayed event %d: rseq %d, want original %d", i, rseq, origRSeq)
		}
		if e.Payload[0] != byte(i) {
			t.Fatalf("replayed event %d: payload %d, want %d", i, e.Payload[0], i)
		}
	}
	op2, token2 := rc2.welcome()
	if op2 != opResumed {
		t.Fatalf("resume welcome op=%q, want opResumed", op2)
	}
	// The token names the session lineage and survives the resume: a
	// client whose next conn dies before this welcome arrives must still
	// hold a valid credential.
	if token2 != token {
		t.Fatalf("resume rotated the token (%q -> %q), want it stable", token, token2)
	}
	// The consumed park is gone and the rseq stream continues past the
	// salvaged window: ack everything, publish one more, expect rseq n+1.
	if b.parkedCount() != 0 {
		t.Fatalf("parkedCount = %d after resume, want 0", b.parkedCount())
	}
	if err := rc2.conn.Send(ackEvent(uint64(n))); err != nil {
		t.Fatal(err)
	}
	if err := pub.PublishReliable("/rs/t", event.KindControl, []byte{99}); err != nil {
		t.Fatal(err)
	}
	next := rc2.recvData("/rs/t", 1)[0]
	if rseq, _, _ := inboundRSeq(next); rseq != n+1 {
		t.Fatalf("post-resume rseq %d, want %d", rseq, n+1)
	}
	rc2.conn.Close()
}

// TestResumeLingerExpiry: a token presented after the linger window is
// refused — the park is purged and the client gets a fresh, empty
// session.
func TestResumeLingerExpiry(t *testing.T) {
	b := newResumeBroker(t, "expiry", 50*time.Millisecond)
	rc := rawAttach(t, b, helloEvent("exp-c"))
	_, token := rc.welcome()
	if err := rc.conn.Send(subEvent("/exp/t", BestEffort)); err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "subscribed", func() bool {
		return len(b.matchSessions("/exp/t")) > 0
	})
	rc.conn.Close()
	waitCondition(t, 5*time.Second, "parked", func() bool {
		return b.parkedCount() == 1
	})
	time.Sleep(200 * time.Millisecond) // linger expires

	rc2 := rawAttach(t, b, resumeHelloEvent("exp-c", token))
	op, token2 := rc2.welcome()
	if op != opRejected {
		t.Fatalf("expired resume op=%q, want opRejected", op)
	}
	if token2 == "" || token2 == token {
		t.Fatalf("rejected resume still mints a fresh token (got %q)", token2)
	}
	// The fresh session carries nothing over: the old subscription is
	// gone and the expired park was purged.
	if n := len(b.matchSessions("/exp/t")); n != 0 {
		t.Fatalf("%d sessions still subscribed after refused resume, want 0", n)
	}
	if b.parkedCount() != 0 {
		t.Fatalf("parkedCount = %d, want 0", b.parkedCount())
	}
	rc2.conn.Close()
}

// TestResumeStaleToken: a token the broker never minted — or one minted
// for a DIFFERENT client id — is refused without consuming the real
// owner's park, which must still resume afterwards.
func TestResumeStaleToken(t *testing.T) {
	b := newResumeBroker(t, "stale", 5*time.Second)
	rc := rawAttach(t, b, helloEvent("owner"))
	_, token := rc.welcome()
	rc.conn.Close()
	waitCondition(t, 5*time.Second, "parked", func() bool {
		return b.parkedCount() == 1
	})

	// Unknown token.
	bogus := rawAttach(t, b, resumeHelloEvent("someone", "no-such-token"))
	if op, _ := bogus.welcome(); op != opRejected {
		t.Fatalf("bogus-token resume op=%q, want opRejected", op)
	}
	bogus.conn.Close()
	// Right token, wrong id: refused, and the owner's park survives.
	thief := rawAttach(t, b, resumeHelloEvent("mallory", token))
	if op, _ := thief.welcome(); op != opRejected {
		t.Fatalf("wrong-id resume op=%q, want opRejected", op)
	}
	thief.conn.Close()

	// Neither refusal consumed the owner's park: the genuine resume
	// still finds it.
	owner := rawAttach(t, b, resumeHelloEvent("owner", token))
	if op, _ := owner.welcome(); op != opResumed {
		t.Fatalf("owner resume op=%q, want opResumed", op)
	}
	owner.conn.Close()
}

// TestDoubleResumeRace: when two conns present credentials for the same
// client, the newest conn wins — the earlier session is superseded and
// its conn closed.
func TestDoubleResumeRace(t *testing.T) {
	b := newResumeBroker(t, "double", 5*time.Second)
	rc := rawAttach(t, b, helloEvent("dr-c"))
	_, token := rc.welcome()
	rc.conn.Close()
	waitCondition(t, 5*time.Second, "parked", func() bool {
		return b.parkedCount() == 1
	})

	winner1 := rawAttach(t, b, resumeHelloEvent("dr-c", token))
	if op, _ := winner1.welcome(); op != opResumed {
		t.Fatalf("first resume op=%q, want opResumed", op)
	}
	// Second resume with the same token: the newest conn takes the
	// session over — winner1 is force-parked and the park re-consumed.
	winner2 := rawAttach(t, b, resumeHelloEvent("dr-c", token))
	if op, _ := winner2.welcome(); op != opResumed {
		t.Fatalf("second resume op=%q, want opResumed (takeover)", op)
	}
	// winner1's conn is closed by the supersede.
	waitCondition(t, 5*time.Second, "superseded conn closed", func() bool {
		_, err := winner1.conn.Recv()
		return err != nil
	})
	if n := b.SessionCount(); n != 1 {
		t.Fatalf("SessionCount = %d after supersede, want 1", n)
	}
	winner2.conn.Close()
}

// TestParkedSessionBound: the parked-session store is bounded; at
// capacity the oldest park is evicted, never the broker's memory grown.
func TestParkedSessionBound(t *testing.T) {
	b := newTestBrokerCfg(t, Config{
		ID:                "bound",
		SessionLinger:     time.Minute,
		MaxParkedSessions: 2,
	})
	const clients = 5
	for i := range clients {
		c, err := b.LocalClient(fmt.Sprintf("bound-%d", i), transport.LinkProfile{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Subscribe(fmt.Sprintf("/bound/%d", i), 8); err != nil {
			t.Fatal(err)
		}
		c.Close()
		waitCondition(t, 5*time.Second, "detached", func() bool {
			return b.SessionCount() == 0
		})
	}
	if n := b.parkedCount(); n != 2 {
		t.Fatalf("parkedCount = %d after %d disconnects, want capacity 2", n, clients)
	}
}

// TestParkedSessionPruned: the housekeeping sweep reclaims expired
// parks even when no resume ever arrives for them.
func TestParkedSessionPruned(t *testing.T) {
	b := newTestBrokerCfg(t, Config{
		ID:                 "prunep",
		SessionLinger:      300 * time.Millisecond,
		AdvRefreshInterval: 50 * time.Millisecond, // housekeeping cadence
	})
	c, err := b.LocalClient("prunep-c", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitCondition(t, 5*time.Second, "parked", func() bool {
		return b.parkedCount() == 1
	})
	waitCondition(t, 5*time.Second, "pruned", func() bool {
		return b.parkedCount() == 0
	})
}
