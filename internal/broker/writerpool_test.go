package broker

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// TestWriterPoolSingleLockSingleWakeupPerBurst is the batching contract
// under the shared-writer-pool plane, and its parity with the legacy
// per-session ablation: a burst fanned to N sessions costs each session
// one producer-side queue lock and deposits at most one consumer wakeup
// — whether the consumer is a dedicated writeLoop or a pool's ready
// list.
func TestWriterPoolSingleLockSingleWakeupPerBurst(t *testing.T) {
	const subscribers = 8
	const burst = 16

	run := func(t *testing.T, pooled bool) {
		b := New(Config{ID: "wp-wakeup"})
		defer b.Stop()
		if len(b.pools) == 0 {
			t.Fatal("expected writer pools under the default config")
		}

		sessions := make([]*session, 0, subscribers)
		conns := make([]*captureConn, 0, subscribers)
		for i := 0; i < subscribers; i++ {
			conn := newCaptureConn()
			s := newSession(b, conn, fmt.Sprintf("wp-sub-%d", i), false)
			if pooled {
				s.bindPool(b.pools[i%len(b.pools)])
			} else {
				// Legacy plane: a dedicated writer goroutine per session.
				s.wg.Add(1)
				go s.writeLoop()
				t.Cleanup(func() {
					s.queue.close()
					conn.Close()
					s.wg.Wait()
				})
			}
			if err := b.router.add("/wp/t", s); err != nil {
				t.Fatal(err)
			}
			sessions = append(sessions, s)
			conns = append(conns, conn)
		}

		drained := func() bool {
			for _, s := range sessions {
				if s.queue.depth() != 0 {
					return false
				}
			}
			return true
		}

		events := make([]*event.Event, burst)
		for i := range events {
			events[i] = burstEvent(uint64(i+1), "/wp/t")
		}
		sweep := b.newRouteSweep()
		sweep.routeBatch(events, nil)

		// Writers drain concurrently; wait for every queue to empty so the
		// wakeup count below is the burst's final tally.
		waitFor(t, 5*time.Second, drained, "writers never drained the burst")
		for i, s := range sessions {
			if locks := s.queue.pushLockCount(); locks != 1 {
				t.Fatalf("session %d: %d push locks for one burst, want 1", i, locks)
			}
			if w := s.queue.wakeupCount(); w != 1 {
				t.Fatalf("session %d: %d wakeups for one burst, want 1", i, w)
			}
		}

		// A second burst costs exactly one more lock and one more wakeup
		// per session.
		sweep.routeBatch(events, nil)
		waitFor(t, 5*time.Second, drained, "writers never drained the second burst")
		// Delivery completeness: everything staged went out the conns.
		waitFor(t, 5*time.Second, func() bool {
			for _, c := range conns {
				if len(c.allFlushed()) != 2*burst {
					return false
				}
			}
			return true
		}, "writers never flushed both bursts")
		for i, s := range sessions {
			if locks := s.queue.pushLockCount(); locks != 2 {
				t.Fatalf("session %d: %d push locks after two bursts, want 2", i, locks)
			}
			if w := s.queue.wakeupCount(); w != 2 {
				t.Fatalf("session %d: %d wakeups after two bursts, want 2", i, w)
			}
		}
	}

	t.Run("writer-pool", func(t *testing.T) { run(t, true) })
	t.Run("per-session-ablation", func(t *testing.T) { run(t, false) })
}

// TestWriterPoolReliableFlushOnClose: traffic already queued when a
// session closes — including reliable items — still reaches the conn
// before Broker.Stop returns: the pools' shutdown drain services every
// closed queue through popClosed and flushes its sink.
func TestWriterPoolReliableFlushOnClose(t *testing.T) {
	b := New(Config{ID: "wp-close", FlushInterval: 50 * time.Millisecond})
	if len(b.pools) == 0 {
		t.Fatal("expected writer pools under the default config")
	}

	const sessions = 4
	const perSession = 8
	conns := make([]*captureConn, 0, sessions)
	for i := 0; i < sessions; i++ {
		conn := newCaptureConn()
		s := newSession(b, conn, fmt.Sprintf("wp-close-%d", i), false)
		s.bindPool(b.pools[i%len(b.pools)])
		conns = append(conns, conn)
		for j := 0; j < perSession; j++ {
			if j%2 == 0 {
				s.sendReliable(burstEvent(uint64(j+1), "/wp/close"))
			} else {
				e := burstEvent(uint64(j+1), "/wp/close")
				s.queue.pushBestEffort(e, event.NewFrame(e))
			}
		}
		// Close the queue (as session close does first) while items are
		// still in flight toward the pool.
		s.queue.close()
	}

	b.Stop()

	for i, conn := range conns {
		got := len(conn.allFlushed()) + func() int {
			conn.mu.Lock()
			defer conn.mu.Unlock()
			return len(conn.sends)
		}()
		if got != perSession {
			t.Fatalf("session %d: %d events reached the conn across pool shutdown, want %d", i, got, perSession)
		}
	}
}

// TestWriterPoolCloggedSessionDoesNotStallSiblings: a session whose
// in-process consumer stops reading fills its pipe; the pool must park
// it on the non-blocking retry path and keep draining its siblings —
// the head-of-line hazard that separates a shared pool goroutine from
// the legacy writer-per-session plane. Once the consumer resumes, the
// parked session's leftovers must still arrive.
func TestWriterPoolCloggedSessionDoesNotStallSiblings(t *testing.T) {
	// Deep queue: the flood must survive to the pool intact (not be shed
	// at the best-effort lane) so the drain genuinely outruns the pipe.
	b := New(Config{ID: "wp-clog", QueueDepth: 8192})
	defer b.Stop()
	if len(b.pools) == 0 {
		t.Fatal("expected writer pools under the default config")
	}

	stuckBroker, stuckClient := transport.Pipe("broker", "stuck-client")
	liveBroker, liveClient := transport.Pipe("broker", "live-client")
	defer stuckClient.Close()
	defer liveClient.Close()
	defer stuckBroker.Close()
	defer liveBroker.Close()

	stuck := newSession(b, stuckBroker, "wp-clog-stuck", false)
	live := newSession(b, liveBroker, "wp-clog-live", false)
	// Same pool on purpose: the clogged session and its sibling share
	// one goroutine.
	stuck.bindPool(b.pools[0])
	live.bindPool(b.pools[0])

	// Flood the stuck session well past its pipe depth while its
	// consumer reads nothing: the pool must clog-park it, not block.
	const flood = 4096
	for i := 0; i < flood; i++ {
		stuck.queue.pushBestEffort(burstEvent(uint64(i+1), "/clog/a"), nil)
	}

	// The sibling's traffic must flow regardless.
	const sibling = 100
	for i := 0; i < sibling; i++ {
		live.queue.pushBestEffort(burstEvent(uint64(i+1), "/clog/b"), nil)
	}
	var liveGot atomic.Uint64
	go func() {
		for {
			if _, err := liveClient.Recv(); err != nil {
				return
			}
			liveGot.Add(1)
		}
	}()
	waitFor(t, 5*time.Second, func() bool { return liveGot.Load() == sibling },
		"sibling session starved behind a clogged pool mate")

	// The pool must have hit the non-blocking clog-park path (rather than
	// blocking on the full pipe) for the sibling delivery above to mean
	// anything.
	waitFor(t, 5*time.Second, func() bool { return b.pools[0].clogs.Load() > 0 },
		"pool never clog-parked the stalled session")

	// Resume the stuck consumer: the parked sink's retries and the
	// re-woken queue drain must deliver every flooded event, not just the
	// initial pipe fill held at park time.
	var stuckGot atomic.Uint64
	go func() {
		for {
			if _, err := stuckClient.Recv(); err != nil {
				return
			}
			stuckGot.Add(1)
		}
	}()
	waitFor(t, 5*time.Second, func() bool { return stuckGot.Load() == flood },
		"clogged session never delivered its backlog after the consumer caught up")
}

// TestWriterPoolSessionChurn drives sessions joining and leaving while
// the pools are actively draining fan-out traffic — the lifecycle race
// the scheduled-flag handoff must survive (run under -race in CI).
func TestWriterPoolSessionChurn(t *testing.T) {
	b := New(Config{ID: "wp-churn", QueueDepth: 4096})
	defer b.Stop()

	// A stable subscriber keeps the topic routed throughout.
	stable, err := b.LocalClient("wp-churn-stable", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer stable.Close()
	sub, err := stable.Subscribe("/churn/#", 4096)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]*event.Event, 0, 256)
		for {
			var ok bool
			buf, ok = sub.RecvBatch(buf[:0], 256)
			clear(buf)
			if !ok {
				return
			}
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Publisher flood through the batching client path (bursts through
	// the sweep into pool-drained queues).
	for p := 0; p < 2; p++ {
		c, err := b.LocalClient(fmt.Sprintf("wp-churn-pub-%d", p), transport.LinkProfile{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		pub := c.Publisher(PublisherConfig{Batching: true})
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pub.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = pub.Publish(event.New("/churn/t", event.KindRTP, []byte("churn")))
				if i%64 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}

	// Churners: join, subscribe, receive a little, leave.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				c, err := b.LocalClient(fmt.Sprintf("wp-churn-%d-%d", g, round), transport.LinkProfile{})
				if err != nil {
					return // broker stopping
				}
				s, err := c.Subscribe("/churn/#", 256)
				if err == nil {
					buf := make([]*event.Event, 0, 64)
					deadline := time.Now().Add(5 * time.Millisecond)
					for time.Now().Before(deadline) {
						var ok bool
						buf, ok = s.TryRecvBatch(buf[:0], 64)
						clear(buf)
						if !ok {
							break
						}
						time.Sleep(100 * time.Microsecond)
					}
				}
				c.Close()
			}
		}(g)
	}

	time.Sleep(800 * time.Millisecond)
	close(stop)
	wg.Wait()

	if routed := b.Metrics().Counter("broker.events_routed").Value(); routed == 0 {
		t.Fatal("no events routed during churn")
	}
}
