package broker

import (
	"sync"
	"sync/atomic"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/topic"
)

// router is the broker's data-plane routing state: a sharded subscription
// trie plus an epoch-versioned route cache. It is deliberately separate
// from the Broker's control-plane mutex — publishes resolve their targets
// through per-shard locks only and never contend with advertisement or
// peering bookkeeping on b.mu.
type router struct {
	subs         *topic.ShardedTrie[*session]
	disableCache bool
	// caches is parallel to the trie shards: cache shard i memoises
	// matches for topics owned by trie shard i, validated by that shard's
	// mutation epoch.
	caches      []routeCacheShard
	maxPerShard int
}

type routeCacheShard struct {
	mu      sync.RWMutex
	entries map[string]routeEntry
	_       [8]uint64 // avoid false sharing between shard locks
}

// routeEntry is one memoised match result, valid while the owning trie
// shard's epoch still equals epoch.
type routeEntry struct {
	targets []*session
	epoch   uint64
}

// routeCacheBound caps the total number of memoised topics across all
// shards (matching the pre-split broker's 4096-topic bound).
const routeCacheBound = 4096

func newRouter(shards int, disableCache bool) *router {
	subs := topic.NewShardedTrie[*session](shards)
	n := subs.NumShards()
	per := routeCacheBound / n
	if per < 16 {
		per = 16
	}
	r := &router{
		subs:         subs,
		disableCache: disableCache,
		caches:       make([]routeCacheShard, n),
		maxPerShard:  per,
	}
	for i := range r.caches {
		r.caches[i].entries = make(map[string]routeEntry)
	}
	return r
}

// Mutators re-validate the route cache per pattern rather than letting
// entries go epoch-stale wholesale: entries whose topic the mutated
// pattern matches are dropped, everything else is re-stamped to the
// post-mutation epoch and keeps serving from cache. All mutations are
// serialized by the broker's control-plane mutex, so a sweep never races
// another sweep; a concurrent data-plane match can only insert an entry
// stamped with a pre-mutation epoch, which fails validation
// conservatively.

func (r *router) add(pattern string, s *session) error {
	if err := r.subs.Add(pattern, s); err != nil {
		return err
	}
	r.invalidatePattern(pattern)
	return nil
}

func (r *router) remove(pattern string, s *session) {
	r.subs.Remove(pattern, s)
	r.invalidatePattern(pattern)
}

// removeAll unregisters s everywhere. patterns is the session's own
// bookkeeping of what it was subscribed to (local + remote); RemoveAll
// bumps every shard epoch, so every cache shard is swept against them.
func (r *router) removeAll(s *session, patterns []string) {
	r.subs.RemoveAll(s)
	if r.disableCache {
		return
	}
	for i := range r.caches {
		r.sweepCacheShard(i, patterns)
	}
}

// invalidatePattern re-validates the cache shard(s) a single mutated
// pattern can affect: one shard for a concrete-first pattern, all shards
// for a wildcard-first (replicated) one.
func (r *router) invalidatePattern(pattern string) {
	if r.disableCache {
		return
	}
	pats := []string{pattern}
	if shard, all := r.subs.PatternShard(pattern); all {
		for i := range r.caches {
			r.sweepCacheShard(i, pats)
		}
	} else {
		r.sweepCacheShard(shard, pats)
	}
}

// sweepCacheShard drops cache entries whose topic matches any of the
// mutated patterns and re-stamps the rest with the post-mutation epoch
// (sampled under the cache lock, after the trie mutation completed), so
// churn on one pattern does not thrash the shard's whole cache.
func (r *router) sweepCacheShard(i int, patterns []string) {
	c := &r.caches[i]
	c.mu.Lock()
	epoch := r.subs.EpochAt(i)
	for t, ent := range c.entries {
		matched := false
		for _, p := range patterns {
			if topic.MatchPattern(p, t) {
				matched = true
				break
			}
		}
		if matched {
			delete(c.entries, t)
		} else if ent.epoch != epoch {
			ent.epoch = epoch
			c.entries[t] = ent
		}
	}
	c.mu.Unlock()
}

// match resolves the sessions subscribed to a concrete topic. The fast
// path is a cache shard RLock plus an atomic epoch check; a miss matches
// under the trie shard's RLock and memoises the result stamped with the
// epoch sampled before matching, so a concurrent mutation can only make
// the entry conservatively stale, never wrongly fresh.
func (r *router) match(t string) []*session {
	if r.disableCache {
		return r.subs.Match(t, nil)
	}
	shard := r.subs.ShardFor(t)
	c := &r.caches[shard]
	c.mu.RLock()
	ent, ok := c.entries[t]
	c.mu.RUnlock()
	if ok && ent.epoch == r.subs.EpochAt(shard) {
		return ent.targets
	}
	targets, epoch := r.subs.MatchEpochAt(shard, t, nil)
	c.mu.Lock()
	if ok || len(c.entries) < r.maxPerShard {
		c.entries[t] = routeEntry{targets: targets, epoch: epoch}
	}
	c.mu.Unlock()
	return targets
}

// matchEpoch is match plus the validation coordinates — the owning trie
// shard and the epoch the result is valid for — so sweep-local caches
// can revalidate later hits with one atomic epoch load and no shared
// lock at all. The shared cache shard is still maintained on the miss
// path (other readers benefit from the same resolution).
func (r *router) matchEpoch(t string) ([]*session, int, uint64) {
	shard := r.subs.ShardFor(t)
	if r.disableCache {
		targets, epoch := r.subs.MatchEpochAt(shard, t, nil)
		return targets, shard, epoch
	}
	c := &r.caches[shard]
	c.mu.RLock()
	ent, ok := c.entries[t]
	c.mu.RUnlock()
	if ok && ent.epoch == r.subs.EpochAt(shard) {
		return ent.targets, shard, ent.epoch
	}
	targets, epoch := r.subs.MatchEpochAt(shard, t, nil)
	c.mu.Lock()
	if ok || len(c.entries) < r.maxPerShard {
		c.entries[t] = routeEntry{targets: targets, epoch: epoch}
	}
	c.mu.Unlock()
	return targets, shard, epoch
}

// frameSource lazily encodes one event a single time per route sweep so
// every wire-bound session in the fan-out shares the same immutable
// frame. A derived source (peer TTL decrement) patches the parent's
// frame header instead of re-marshalling, and the reliable plane shares
// a second lazy encoding that carries a trailing patchable rseq slot
// (per-target tagging is then an 8-byte patch on a buffer copy). Not
// safe for concurrent use: each route sweep owns one per event.
type frameSource struct {
	e      *event.Event
	f      *event.Frame
	rf     *event.Frame // rseq-slot encoding for the reliable plane
	mf     *event.Frame // mask-slot encoding shared by routed peer copies
	parent *frameSource
	ttl    uint8
	mask   uint64
	masked bool
}

func newFrameSource(e *event.Event) *frameSource {
	return &frameSource{e: e}
}

// derive returns a source encoding the same event with a patched TTL.
func (fs *frameSource) derive(ttl uint8) *frameSource {
	return &frameSource{parent: fs, ttl: ttl}
}

// deriveMasked returns the per-link copy for routed peer forwarding: the
// event shallow-copied with the forwarded TTL and the link's serve-mask,
// plus a source whose frame is an 8-byte mask patch on the parent's
// shared mask-slot encoding (one marshal per event, one memmove per
// link).
func (fs *frameSource) deriveMasked(ttl uint8, mask uint64) (*event.Event, *frameSource) {
	c := *fs.e
	c.TTL = ttl
	c.Mask = mask
	return &c, &frameSource{e: &c, parent: fs, ttl: ttl, mask: mask, masked: true}
}

// frame returns the shared encoded frame, encoding on first use.
func (fs *frameSource) frame() *event.Frame {
	if fs.f == nil {
		switch {
		case fs.masked:
			fs.f = fs.parent.maskFrame(fs.ttl).WithMask(fs.mask)
		case fs.parent != nil:
			fs.f = fs.parent.frame().WithTTL(fs.ttl)
		default:
			fs.f = event.NewFrame(fs.e)
		}
	}
	return fs.f
}

// maskFrame returns the shared mask-slot encoding of the root event at
// the forwarded TTL, encoding on first use. Every routed peer copy of
// one event patches this single buffer.
func (fs *frameSource) maskFrame(ttl uint8) *event.Frame {
	if fs.mf == nil {
		c := *fs.e
		c.TTL = ttl
		if c.Mask == 0 {
			c.Mask = ^uint64(0) // placeholder; always patched per link
		}
		fs.mf = event.NewFrame(&c)
	}
	return fs.mf
}

// reliableFrame returns the shared rseq-slot encoding, encoding on first
// use. Fan-out to K framed targets performs one marshal here; each
// target then derives an 8-byte-patched copy (Frame.WithRSeq) instead of
// a clone+marshal. Masked sources encode per link — their masks differ,
// and reliable mesh traffic is sparse signalling.
func (fs *frameSource) reliableFrame() *event.Frame {
	if fs.rf == nil {
		switch {
		case fs.masked:
			fs.rf = event.NewFrameWithRSeqSlot(fs.e)
		case fs.parent != nil:
			fs.rf = fs.parent.reliableFrame().WithTTL(fs.ttl)
		default:
			fs.rf = event.NewFrameWithRSeqSlot(fs.e)
		}
	}
	return fs.rf
}

// sweepGenCounter hands out globally unique burst generations to route
// sweeps, making the per-session staging slots below self-invalidating:
// a slot can only validate against the one sweep generation that wrote
// it.
var sweepGenCounter atomic.Uint64

// stageIdxBits is the width of the staging-slot index field; the upper
// bits carry the sweep generation.
const stageIdxBits = 20

// routeSweep is the burst-at-a-time counterpart of Broker.route: it
// routes a whole decoded burst in one sweep, resolving targets once per
// topic (memoized across the burst) and staging best-effort deliveries
// into per-session batches that are pushed — one queue lock, one writer
// wakeup per session — when the sweep finishes. Owned by a single reader
// goroutine; not safe for concurrent use.
type routeSweep struct {
	b *Broker

	// Target memo. The map-free fast path covers the immediately
	// preceding topic within a burst. Behind it sits cache: a persistent,
	// sweep-private topic→targets memo validated per hit by one atomic
	// load of the owning trie shard's epoch — so concurrent publisher
	// bursts on different reader goroutines resolve repeating topics
	// with zero shared-lock acquisitions, instead of all meeting on the
	// router's cache-shard RWMutex every burst. A mutation anywhere in
	// the shard bumps its epoch and the stale entry re-resolves through
	// the router. topics is the per-burst fallback memo used only when
	// the route cache is disabled (the ablation keeps its pre-PR-9
	// resolve-once-per-burst shape).
	lastTopic   string
	lastTargets []*session
	lastOK      bool
	cache       map[string]sweepRoute
	topics      map[string][]*session

	// Per-burst mesh-plan memo, mirroring the target memo: one plan
	// resolution per topic per burst (nil is a valid, memoized result —
	// unplanned topics fall back to unmasked forwarding).
	lastPlanTopic string
	lastPlan      *topicPlan
	lastPlanOK    bool
	plans         map[string]*topicPlan

	// Per-session staging, index-stable within a sweep so the item
	// slices are reused burst to burst. A session's index lives in its
	// generation-stamped stageSlot — the per-event path is an atomic
	// load and compare, no hash — with idx as the slow-path map behind
	// it: first touch of a session in a burst, and recovery when a
	// concurrent sweep clobbers the shared slot, so a session is never
	// staged (and its queue never locked) twice per burst. gen is this
	// sweep's current burst generation.
	gen      uint64
	idx      map[*session]int
	sessions []*session
	items    [][]outItem

	peersServed []*session // per-event scratch for the p2p flood

	// stats accumulates the burst's data-path counter deltas; finish()
	// flushes them to the shared counters in one atomic add per counter
	// per burst instead of one per event.
	stats routeStats

	// Per-recorder record staging, mirroring the per-session batches:
	// matched events accumulate their frame bytes per recorder across
	// the burst, and finish() commits each run in one topiclog.Append —
	// one log lock, one file write per recorder per burst.
	recIdx  map[*recorder]int
	recList []*recorder
	recBufs [][][]byte

	// matchFn/planFn/deliverFn/recordFn are
	// matchMemo/planMemo/deliverStaged/recordStage bound once so the
	// per-event routeOne call does not allocate method values.
	matchFn   func(string) []*session
	planFn    planFn
	deliverFn deliverFn
	recordFn  recordFn
}

// sweepRoute is one sweep-local memoised match: targets valid while the
// owning trie shard's epoch still equals epoch.
type sweepRoute struct {
	targets []*session
	shard   int
	epoch   uint64
}

// sweepRouteCacheBound caps each sweep's private route cache (cleared
// wholesale on overflow; per-reader, so total memory is readers × bound).
const sweepRouteCacheBound = 1024

// newRouteSweep creates a sweep bound to the broker's data plane.
func (b *Broker) newRouteSweep() *routeSweep {
	rs := &routeSweep{
		b:     b,
		plans: make(map[string]*topicPlan),
		idx:   make(map[*session]int),
		gen:   sweepGenCounter.Add(1),
	}
	if b.cfg.DisableRouteCache {
		rs.topics = make(map[string][]*session)
	} else {
		rs.cache = make(map[string]sweepRoute)
	}
	rs.matchFn = rs.matchMemo
	rs.planFn = rs.planMemo
	rs.deliverFn = rs.deliverStaged
	rs.recordFn = rs.recordStage
	if b.rec != nil {
		rs.recIdx = make(map[*recorder]int)
	}
	return rs
}

// recordStage accumulates one matched event's frame bytes in the
// recorder's staged run; finish() appends the run in one call.
func (rs *routeSweep) recordStage(r *recorder, e *event.Event, fs *frameSource) {
	i, ok := rs.recIdx[r]
	if !ok {
		i = len(rs.recList)
		rs.recIdx[r] = i
		rs.recList = append(rs.recList, r)
		if len(rs.recBufs) < len(rs.recList) {
			rs.recBufs = append(rs.recBufs, nil)
		}
	}
	rs.recBufs[i] = append(rs.recBufs[i], fs.frame().Bytes())
}

// matchMemo resolves targets for a topic: the last-topic fast path, then
// the sweep-private epoch-validated cache (a hit costs one atomic load,
// no shared lock), then the router. With the route cache disabled it
// degrades to the per-burst memo.
func (rs *routeSweep) matchMemo(topic string) []*session {
	if rs.lastOK && topic == rs.lastTopic {
		return rs.lastTargets
	}
	var targets []*session
	if rs.cache != nil {
		r := rs.b.router
		if ent, ok := rs.cache[topic]; ok && ent.epoch == r.subs.EpochAt(ent.shard) {
			targets = ent.targets
		} else {
			var shard int
			var epoch uint64
			targets, shard, epoch = r.matchEpoch(topic)
			if len(rs.cache) >= sweepRouteCacheBound {
				clear(rs.cache)
			}
			rs.cache[topic] = sweepRoute{targets: targets, shard: shard, epoch: epoch}
		}
	} else {
		var ok bool
		targets, ok = rs.topics[topic]
		if !ok {
			targets = rs.b.router.match(topic)
			rs.topics[topic] = targets
		}
	}
	rs.lastTopic, rs.lastTargets, rs.lastOK = topic, targets, true
	return targets
}

// planMemo resolves the mesh forwarding plan for a topic at most once
// per burst.
func (rs *routeSweep) planMemo(topic string) *topicPlan {
	if rs.lastPlanOK && topic == rs.lastPlanTopic {
		return rs.lastPlan
	}
	p, ok := rs.plans[topic]
	if !ok {
		p = rs.b.planFor(topic)
		rs.plans[topic] = p
	}
	rs.lastPlanTopic, rs.lastPlan, rs.lastPlanOK = topic, p, true
	return p
}

// stage queues one best-effort item for t in the sweep's pending batch.
// The session's staging index is read from its generation-stamped slot
// — one atomic load and compare instead of a map lookup per (event,
// target). A slot clobbered by a concurrent sweep fails to validate
// (generations are globally unique) and falls back to the per-sweep
// map, which re-stamps the slot; the map is touched only on first
// staging of a session in a burst and on clobber recovery, so each
// session still gets exactly one batch (one queue lock, one wakeup)
// per burst.
func (rs *routeSweep) stage(t *session, it outItem) {
	slot := t.stageSlot.Load()
	i := int(slot & (1<<stageIdxBits - 1))
	if slot>>stageIdxBits != rs.gen || i >= len(rs.sessions) || rs.sessions[i] != t {
		var ok bool
		if i, ok = rs.idx[t]; !ok {
			i = len(rs.sessions)
			rs.idx[t] = i
			rs.sessions = append(rs.sessions, t)
			if len(rs.items) < len(rs.sessions) {
				rs.items = append(rs.items, nil)
			}
		}
		if i < 1<<stageIdxBits {
			t.stageSlot.Store(rs.gen<<stageIdxBits | uint64(i))
		}
	}
	rs.items[i] = append(rs.items[i], it)
}

// deliverStaged stages one event for t. Best-effort events join the
// per-session batch; reliable events take the encode-once reliable path
// immediately (their per-target work is an 8-byte rseq patch, and the
// reliable lane is ordered independently of the best-effort ring
// anyway).
func (rs *routeSweep) deliverStaged(t *session, e *event.Event, fs *frameSource) {
	if e.Reliable {
		if t.fwdCtr != nil {
			t.fwdCtr.Inc()
		}
		t.sendReliableFrom(e, fs)
		return
	}
	var f *event.Frame
	if t.framed {
		f = fs.frame()
	}
	rs.stage(t, outItem{e: e, frame: f})
}

// routeBatch routes one decoded burst through the single routing-policy
// implementation (Broker.routeOne), amortizing target resolution (the
// per-burst memo) and queue handoff (staged pushBatch) across the
// burst.
func (rs *routeSweep) routeBatch(events []*event.Event, from *session) {
	for _, e := range events {
		rs.peersServed = rs.b.routeOne(e, from, rs.matchFn, rs.planFn, rs.deliverFn, rs.recordFn, rs.peersServed, &rs.stats)
	}
	rs.finish()
}

// finish pushes every staged batch — one lock acquisition and one
// writer wakeup per session — and resets the sweep for the next burst.
// Record runs commit first: an attached replay tailer re-delivers the
// appended frames through the reliable lane, and appending before the
// best-effort pushes keeps the durable log's order the canonical one.
func (rs *routeSweep) finish() {
	b := rs.b
	rs.stats.flush(&b.ctr)
	for i, r := range rs.recList {
		if _, err := r.log.Append(rs.recBufs[i]); err != nil {
			b.rec.appendErrs.Inc()
		} else {
			r.appended.Add(uint64(len(rs.recBufs[i])))
		}
		clear(rs.recBufs[i])
		rs.recBufs[i] = rs.recBufs[i][:0]
	}
	if len(rs.recList) > 0 {
		clear(rs.recList)
		rs.recList = rs.recList[:0]
		clear(rs.recIdx)
	}
	for i, t := range rs.sessions {
		items := rs.items[i]
		if t.fwdCtr != nil {
			t.fwdCtr.Add(uint64(len(items)))
		}
		if dropped := t.queue.pushBatch(items); dropped > 0 {
			b.ctr.queueDrops.Add(uint64(dropped))
			if t.linkDropCtr != nil {
				t.linkDropCtr.Add(uint64(dropped))
			}
		}
		// Clear staged references so the reused buffers never pin events.
		clear(items)
		rs.items[i] = items[:0]
	}
	clear(rs.sessions)
	rs.sessions = rs.sessions[:0]
	clear(rs.idx)
	// A fresh generation invalidates every staging slot this burst wrote.
	// The epoch-validated cache persists across bursts (that is its
	// point); only the ablation's per-burst memo is cleared.
	rs.gen = sweepGenCounter.Add(1)
	if rs.topics != nil {
		clear(rs.topics)
	}
	rs.lastOK = false
	rs.lastTargets = nil
	rs.lastTopic = ""
	clear(rs.plans)
	rs.lastPlanOK = false
	rs.lastPlan = nil
	rs.lastPlanTopic = ""
	clear(rs.peersServed)
	rs.peersServed = rs.peersServed[:0]
}
