package broker

import (
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/topic"
)

// router is the broker's data-plane routing state: a sharded subscription
// trie plus an epoch-versioned route cache. It is deliberately separate
// from the Broker's control-plane mutex — publishes resolve their targets
// through per-shard locks only and never contend with advertisement or
// peering bookkeeping on b.mu.
type router struct {
	subs         *topic.ShardedTrie[*session]
	disableCache bool
	// caches is parallel to the trie shards: cache shard i memoises
	// matches for topics owned by trie shard i, validated by that shard's
	// mutation epoch.
	caches      []routeCacheShard
	maxPerShard int
}

type routeCacheShard struct {
	mu      sync.RWMutex
	entries map[string]routeEntry
	_       [8]uint64 // avoid false sharing between shard locks
}

// routeEntry is one memoised match result, valid while the owning trie
// shard's epoch still equals epoch.
type routeEntry struct {
	targets []*session
	epoch   uint64
}

// routeCacheBound caps the total number of memoised topics across all
// shards (matching the pre-split broker's 4096-topic bound).
const routeCacheBound = 4096

func newRouter(shards int, disableCache bool) *router {
	subs := topic.NewShardedTrie[*session](shards)
	n := subs.NumShards()
	per := routeCacheBound / n
	if per < 16 {
		per = 16
	}
	r := &router{
		subs:         subs,
		disableCache: disableCache,
		caches:       make([]routeCacheShard, n),
		maxPerShard:  per,
	}
	for i := range r.caches {
		r.caches[i].entries = make(map[string]routeEntry)
	}
	return r
}

func (r *router) add(pattern string, s *session) error {
	return r.subs.Add(pattern, s)
}

func (r *router) remove(pattern string, s *session) {
	r.subs.Remove(pattern, s)
}

func (r *router) removeAll(s *session) {
	r.subs.RemoveAll(s)
}

// match resolves the sessions subscribed to a concrete topic. The fast
// path is a cache shard RLock plus an atomic epoch check; a miss matches
// under the trie shard's RLock and memoises the result stamped with the
// epoch sampled before matching, so a concurrent mutation can only make
// the entry conservatively stale, never wrongly fresh.
func (r *router) match(t string) []*session {
	if r.disableCache {
		return r.subs.Match(t, nil)
	}
	shard := r.subs.ShardFor(t)
	c := &r.caches[shard]
	c.mu.RLock()
	ent, ok := c.entries[t]
	c.mu.RUnlock()
	if ok && ent.epoch == r.subs.EpochAt(shard) {
		return ent.targets
	}
	targets, epoch := r.subs.MatchEpochAt(shard, t, nil)
	c.mu.Lock()
	if ok || len(c.entries) < r.maxPerShard {
		c.entries[t] = routeEntry{targets: targets, epoch: epoch}
	}
	c.mu.Unlock()
	return targets
}

// frameSource lazily encodes one event a single time per route() call so
// every wire-bound session in the fan-out shares the same immutable
// frame. A derived source (peer TTL decrement) patches the parent's
// frame header instead of re-marshalling. Not safe for concurrent use:
// each route() call owns one.
type frameSource struct {
	e      *event.Event
	f      *event.Frame
	parent *frameSource
	ttl    uint8
}

func newFrameSource(e *event.Event) *frameSource {
	return &frameSource{e: e}
}

// derive returns a source encoding the same event with a patched TTL.
func (fs *frameSource) derive(ttl uint8) *frameSource {
	return &frameSource{parent: fs, ttl: ttl}
}

// frame returns the shared encoded frame, encoding on first use.
func (fs *frameSource) frame() *event.Frame {
	if fs.f == nil {
		if fs.parent != nil {
			fs.f = fs.parent.frame().WithTTL(fs.ttl)
		} else {
			fs.f = event.NewFrame(fs.e)
		}
	}
	return fs.f
}
