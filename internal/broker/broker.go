package broker

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/topic"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// Mode selects how a broker network routes events.
type Mode int

// Routing modes. Enums start at 1 so the zero value is invalid and the
// constructor can default it.
const (
	// ModeClientServer routes along subscription advertisements (the
	// paper's "client-server mode like JMS").
	ModeClientServer Mode = iota + 1
	// ModePeerToPeer floods events to all peers with TTL and duplicate
	// suppression (the paper's "JXTA-like peer-to-peer mode").
	ModePeerToPeer
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeClientServer:
		return "client-server"
	case ModePeerToPeer:
		return "peer-to-peer"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterises a Broker. The zero value is usable: New fills
// defaults.
type Config struct {
	// ID uniquely names the broker in the network. Default "broker-1".
	ID string
	// Mode selects the routing mode. Default ModeClientServer.
	Mode Mode
	// QueueDepth bounds each session's best-effort lane. Default 512.
	QueueDepth int
	// DedupCapacity sizes the duplicate-suppression cache. Default 65536.
	DedupCapacity int
	// ReliableWindow bounds unacked reliable events per session before the
	// broker disconnects the laggard. Default 4096.
	ReliableWindow int
	// RetransmitInterval is the reliable-delivery RTO. Default 200ms.
	RetransmitInterval time.Duration
	// MaxRetransmits bounds delivery attempts per reliable event.
	// Default 10.
	MaxRetransmits int
	// AdvRefreshInterval is the soft-state refresh period for
	// subscription advertisements between brokers. Default 2s.
	AdvRefreshInterval time.Duration
	// RouteShards is the number of locks/tries the routing layer is split
	// across (rounded up to a power of two). Default 16. One shard
	// degenerates to a single-lock router — an ablation knob.
	RouteShards int
	// MaxBatchBytes bounds the encoded bytes a session writer aggregates
	// before forcing a vectored flush. Default 256 KiB.
	MaxBatchBytes int
	// FlushInterval is how long a session writer lingers over a non-empty
	// batch once its queue goes idle, waiting for more traffic to
	// coalesce with. 0 (the default) flushes as soon as the queue idles —
	// batching then happens only under sustained load, costing no
	// latency. Reliable events always flush immediately regardless.
	FlushInterval time.Duration
	// IngestBurst bounds how many events a session reader decodes and
	// routes per sweep on burst-capable conns. Within a burst, publish
	// targets are resolved once per topic and each target session is
	// locked and signalled once — the amortization that keeps sustained
	// ingest cheap at wide fan-out. Default 256; 1 degenerates the data
	// path to event-at-a-time ingest and egress (an ablation knob).
	IngestBurst int
	// DisableRouteCache turns off per-topic match memoisation — an
	// ablation knob for the "optimizations on the message transmission"
	// the paper credits for the broker's media performance.
	DisableRouteCache bool
	// Metrics receives broker counters; nil allocates a private registry.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.ID == "" {
		c.ID = "broker-1"
	}
	if c.Mode == 0 {
		c.Mode = ModeClientServer
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 512
	}
	if c.DedupCapacity <= 0 {
		c.DedupCapacity = 65536
	}
	if c.ReliableWindow <= 0 {
		c.ReliableWindow = 4096
	}
	if c.RetransmitInterval <= 0 {
		c.RetransmitInterval = 200 * time.Millisecond
	}
	if c.MaxRetransmits <= 0 {
		c.MaxRetransmits = 10
	}
	if c.AdvRefreshInterval <= 0 {
		c.AdvRefreshInterval = 2 * time.Second
	}
	if c.RouteShards <= 0 {
		c.RouteShards = topic.DefaultShards
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = transport.DefaultMaxBatchBytes
	}
	if c.FlushInterval < 0 {
		c.FlushInterval = 0
	}
	if c.IngestBurst == 0 {
		c.IngestBurst = DefaultIngestBurst
	}
	if c.IngestBurst < 1 {
		c.IngestBurst = 1
	}
	if c.Metrics == nil {
		c.Metrics = &metrics.Registry{}
	}
	return c
}

// Broker is one node of the messaging middleware. Its state is split
// into two planes:
//
//   - The data plane (router) resolves publish targets through per-shard
//     locks and an epoch-versioned route cache; publishes never touch
//     b.mu.
//   - The control plane (b.mu) guards session/peer membership,
//     advertisement bookkeeping and listener lifecycle — the slow,
//     rare mutations.
type Broker struct {
	cfg Config

	// router is the data plane: sharded subscription state + route cache.
	router *router
	// matchFn is router.match bound once, so the per-event route call
	// does not allocate a method value.
	matchFn func(string) []*session

	mu       sync.RWMutex
	closed   bool
	sessions map[*session]struct{}
	peers    map[*session]struct{}
	ids      map[string]*session
	// patternRefs counts local client subscriptions per pattern; the
	// 0→1 and 1→0 edges trigger advertisements to peers.
	patternRefs map[string]int
	// advApplied records the newest advertisement sequence applied per
	// (origin, pattern), so replays and loops are ignored.
	advApplied map[string]map[string]uint64

	// peerSnap is a lock-free snapshot of b.peers for the peer-to-peer
	// flood path; refreshed under b.mu whenever peering changes.
	peerSnap atomic.Pointer[[]*session]

	advSeq    uint64
	dedup     *dedupCache
	listeners []transport.Listener

	// ctr holds pre-resolved hot-path counters: Registry.Counter takes a
	// registry-wide mutex per lookup, which 64 concurrent session writers
	// would otherwise serialize on for every event.
	ctr brokerCounters

	wg   sync.WaitGroup
	done chan struct{}
}

// brokerCounters are the per-event instruments of the data path,
// resolved once at construction.
type brokerCounters struct {
	eventsIn    *metrics.Counter
	eventsOut   *metrics.Counter
	eventsRtd   *metrics.Counter
	unroutable  *metrics.Counter
	duplicates  *metrics.Counter
	queueDrops  *metrics.Counter
	invalid     *metrics.Counter
	retransmits *metrics.Counter
	acksIn      *metrics.Counter
}

func resolveCounters(reg *metrics.Registry) brokerCounters {
	return brokerCounters{
		eventsIn:    reg.Counter("broker.events_in"),
		eventsOut:   reg.Counter("broker.events_out"),
		eventsRtd:   reg.Counter("broker.events_routed"),
		unroutable:  reg.Counter("broker.events_unroutable"),
		duplicates:  reg.Counter("broker.duplicates"),
		queueDrops:  reg.Counter("broker.queue_drops"),
		invalid:     reg.Counter("broker.invalid_events"),
		retransmits: reg.Counter("broker.retransmits"),
		acksIn:      reg.Counter("broker.acks_in"),
	}
}

// ErrBrokerStopped is returned by operations on a stopped Broker.
var ErrBrokerStopped = errors.New("broker: closed")

// DefaultIngestBurst bounds a session reader's per-sweep burst when the
// config leaves IngestBurst zero. 256 events cover everything one
// 256 KiB receive chunk holds at media MTU.
const DefaultIngestBurst = 256

// New creates a broker and starts its housekeeping loop.
func New(cfg Config) *Broker {
	cfg = cfg.withDefaults()
	b := &Broker{
		cfg:         cfg,
		router:      newRouter(cfg.RouteShards, cfg.DisableRouteCache),
		sessions:    make(map[*session]struct{}),
		peers:       make(map[*session]struct{}),
		ids:         make(map[string]*session),
		patternRefs: make(map[string]int),
		advApplied:  make(map[string]map[string]uint64),
		dedup:       newDedupCache(cfg.DedupCapacity),
		ctr:         resolveCounters(cfg.Metrics),
		done:        make(chan struct{}),
	}
	b.matchFn = b.router.match
	b.wg.Add(1)
	go b.housekeeping()
	return b
}

// ID returns the broker's identity.
func (b *Broker) ID() string { return b.cfg.ID }

// Mode returns the routing mode.
func (b *Broker) Mode() Mode { return b.cfg.Mode }

// Metrics returns the broker's metrics registry.
func (b *Broker) Metrics() *metrics.Registry { return b.cfg.Metrics }

func (b *Broker) metrics() *metrics.Registry { return b.cfg.Metrics }

// Serve accepts connections from l until the listener or broker closes.
// The listener is closed by Stop.
func (b *Broker) Serve(l transport.Listener) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		l.Close()
		return
	}
	b.listeners = append(b.listeners, l)
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				b.handshake(conn)
			}()
		}
	}()
}

// Listen starts a listener on the URL and serves it.
func (b *Broker) Listen(url string) (transport.Listener, error) {
	l, err := transport.Listen(url)
	if err != nil {
		return nil, err
	}
	b.Serve(l)
	return l, nil
}

// handshake reads the first event on a new conn to learn whether the
// remote is a client or a peer broker, then attaches a session.
func (b *Broker) handshake(conn transport.Conn) {
	first, err := conn.Recv()
	if err != nil {
		conn.Close()
		return
	}
	id := first.Headers[hdrID]
	switch {
	case first.Topic == topicHello && id != "":
		if _, err := b.attach(conn, id, false); err != nil {
			conn.Close()
		}
	case first.Topic == topicPeer && id != "":
		modeStr := first.Headers[hdrMode]
		m, _ := strconv.Atoi(modeStr)
		if Mode(m) != b.cfg.Mode {
			conn.Close()
			return
		}
		s, err := b.attach(conn, id, true)
		if err != nil {
			conn.Close()
			return
		}
		// Reply so the dialer learns our identity, then share soft state.
		s.queue.pushReliable(peerHelloEvent(b.cfg.ID, b.cfg.Mode))
		b.sendAdvertisementSnapshot(s)
	default:
		conn.Close()
	}
}

// refreshPeerSnapLocked rebuilds the lock-free peer snapshot. Callers
// hold b.mu.
func (b *Broker) refreshPeerSnapLocked() {
	snap := make([]*session, 0, len(b.peers))
	for p := range b.peers {
		snap = append(snap, p)
	}
	b.peerSnap.Store(&snap)
}

// peerSnapshot returns the current peer set without taking b.mu.
func (b *Broker) peerSnapshot() []*session {
	if p := b.peerSnap.Load(); p != nil {
		return *p
	}
	return nil
}

// attach registers a session for conn and starts its goroutines.
func (b *Broker) attach(conn transport.Conn, id string, isPeer bool) (*session, error) {
	s := newSession(b, conn, id, isPeer)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrBrokerStopped
	}
	if old, exists := b.ids[id]; exists {
		b.mu.Unlock()
		// A reconnecting client supersedes its old session.
		old.close()
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return nil, ErrBrokerStopped
		}
	}
	b.ids[id] = s
	b.sessions[s] = struct{}{}
	if isPeer {
		b.peers[s] = struct{}{}
		b.refreshPeerSnapLocked()
	}
	b.mu.Unlock()
	s.start()
	b.metrics().Counter("broker.sessions_attached").Inc()
	return s, nil
}

// detach removes a session after its conn closed.
func (b *Broker) detach(s *session) {
	b.mu.Lock()
	if _, ok := b.sessions[s]; !ok {
		b.mu.Unlock()
		return
	}
	delete(b.sessions, s)
	if _, wasPeer := b.peers[s]; wasPeer {
		delete(b.peers, s)
		b.refreshPeerSnapLocked()
	}
	if b.ids[s.id] == s {
		delete(b.ids, s.id)
	}
	b.router.removeAll(s)
	// Release this client's pattern refcounts; collect 1→0 edges.
	var removals []string
	for p := range s.localPatterns {
		b.patternRefs[p]--
		if b.patternRefs[p] <= 0 {
			delete(b.patternRefs, p)
			removals = append(removals, p)
		}
	}
	peers := b.peerList(nil)
	b.mu.Unlock()
	if b.cfg.Mode == ModeClientServer {
		for _, p := range removals {
			b.advertise(peers, advRemove, p)
		}
	}
	// Drop the session's gauges (unless a reconnection already reclaimed
	// the id) so churning clients cannot grow the registry without bound.
	b.mu.RLock()
	_, idLive := b.ids[s.id]
	b.mu.RUnlock()
	if !idLive {
		b.metrics().DropGauge("broker.session." + s.id + ".queue_drops")
		b.metrics().DropGauge("broker.session." + s.id + ".reliable_window")
	}
	b.metrics().Counter("broker.sessions_detached").Inc()
}

// subscribe registers a client pattern and advertises the 0→1 edge.
func (b *Broker) subscribe(s *session, pattern string) error {
	if err := topic.ValidatePattern(pattern); err != nil {
		return err
	}
	if isControlTopic(pattern) {
		return fmt.Errorf("broker: pattern %q is in the reserved namespace", pattern)
	}
	b.mu.Lock()
	if _, dup := s.localPatterns[pattern]; dup {
		b.mu.Unlock()
		return nil
	}
	s.localPatterns[pattern] = struct{}{}
	if err := b.router.add(pattern, s); err != nil {
		delete(s.localPatterns, pattern)
		b.mu.Unlock()
		return err
	}
	b.patternRefs[pattern]++
	isNew := b.patternRefs[pattern] == 1
	peers := b.peerList(nil)
	b.mu.Unlock()
	if isNew && b.cfg.Mode == ModeClientServer {
		b.advertise(peers, advAdd, pattern)
	}
	return nil
}

// unsubscribe removes a client pattern and advertises the 1→0 edge.
func (b *Broker) unsubscribe(s *session, pattern string) {
	b.mu.Lock()
	if _, ok := s.localPatterns[pattern]; !ok {
		b.mu.Unlock()
		return
	}
	delete(s.localPatterns, pattern)
	b.router.remove(pattern, s)
	b.patternRefs[pattern]--
	wasLast := b.patternRefs[pattern] <= 0
	if wasLast {
		delete(b.patternRefs, pattern)
	}
	peers := b.peerList(nil)
	b.mu.Unlock()
	if wasLast && b.cfg.Mode == ModeClientServer {
		b.advertise(peers, advRemove, pattern)
	}
}

// advertise sends one local-pattern advertisement to the given peers.
func (b *Broker) advertise(peers []*session, op advOp, pattern string) {
	b.mu.Lock()
	b.advSeq++
	seq := b.advSeq
	b.mu.Unlock()
	adv := subAdvEvent(op, pattern, b.cfg.ID, seq)
	for _, p := range peers {
		p.sendReliable(adv)
	}
}

// sendAdvertisementSnapshot brings a new peer link up to date with every
// pattern this broker can reach: its own local patterns and those learned
// from other peers.
func (b *Broker) sendAdvertisementSnapshot(to *session) {
	if b.cfg.Mode != ModeClientServer {
		return
	}
	type adv struct {
		pattern, origin string
		seq             uint64
	}
	var advs []adv
	b.mu.Lock()
	for p := range b.patternRefs {
		b.advSeq++
		advs = append(advs, adv{p, b.cfg.ID, b.advSeq})
	}
	for peer := range b.peers {
		if peer == to {
			continue
		}
		for pattern, origins := range peer.remotePatterns {
			for origin := range origins {
				seq := b.advApplied[origin][pattern]
				advs = append(advs, adv{pattern, origin, seq})
			}
		}
	}
	b.mu.Unlock()
	for _, a := range advs {
		to.sendReliable(subAdvEvent(advAdd, a.pattern, a.origin, a.seq))
	}
}

// handleAdvertisement applies a peer's subscription advertisement and
// re-propagates it to other peers.
func (b *Broker) handleAdvertisement(from *session, e *event.Event) {
	pattern := e.Headers[hdrPattern]
	origin := e.Headers[hdrOrigin]
	op := advOp(e.Headers[hdrOp])
	seq, err := headerUint(e, hdrSeq)
	if err != nil || pattern == "" || origin == "" {
		return
	}
	if origin == b.cfg.ID {
		return // our own advertisement echoed back
	}
	b.mu.Lock()
	applied := b.advApplied[origin]
	if applied == nil {
		applied = make(map[string]uint64)
		b.advApplied[origin] = applied
	}
	if seq < applied[pattern] {
		b.mu.Unlock()
		return
	}
	refresh := seq == applied[pattern] && op == advAdd
	applied[pattern] = seq
	switch op {
	case advAdd:
		origins := from.remotePatterns[pattern]
		if origins == nil {
			origins = make(map[string]time.Time)
			from.remotePatterns[pattern] = origins
		}
		origins[origin] = time.Now()
		if err := b.router.add(pattern, from); err != nil {
			b.mu.Unlock()
			return
		}
	case advRemove:
		if origins, ok := from.remotePatterns[pattern]; ok {
			delete(origins, origin)
			if len(origins) == 0 {
				delete(from.remotePatterns, pattern)
				b.router.remove(pattern, from)
			}
		}
	default:
		b.mu.Unlock()
		return
	}
	peers := b.peerList(from)
	b.mu.Unlock()
	if refresh {
		return // periodic refresh already propagated once
	}
	for _, p := range peers {
		p.sendReliable(e)
	}
}

// peerList snapshots current peers, excluding one. Callers hold b.mu.
func (b *Broker) peerList(except *session) []*session {
	out := make([]*session, 0, len(b.peers))
	for p := range b.peers {
		if p != except {
			out = append(out, p)
		}
	}
	return out
}

// route delivers an event to matching local sessions and forwards it to
// peers according to the routing mode. from is nil for loopback
// publishes.
//
// This is the event-at-a-time entry to the data-plane hot path: it
// takes no broker-wide lock, and the whole routing policy lives in
// routeOne (shared with the burst path). The event is encoded at most
// twice regardless of fan-out width — once for local sessions and once
// (a one-byte TTL patch on a buffer copy) for peers.
func (b *Broker) route(e *event.Event, from *session) {
	b.routeOne(e, from, b.matchFn, deliverDirect, nil)
}

// deliverDirect is route's delivery strategy: hand the event to the
// session immediately.
func deliverDirect(t *session, e *event.Event, fs *frameSource) { t.deliver(e, fs) }

// deliverFn hands one resolved delivery to its target. Implementations
// deliver immediately (Broker.route) or stage into a per-session batch
// (routeSweep.routeBatch).
type deliverFn func(t *session, e *event.Event, fs *frameSource)

// routeOne is the single implementation of the routing policy —
// duplicate suppression, split horizon, per-hop TTL decrement, and the
// peer-to-peer flood — behind both the event-at-a-time and the burst
// path. Target resolution goes through match (the sharded router, or a
// per-burst memo of it) and every delivery through deliver. served is a
// reusable scratch buffer for the flood's already-served peer set; the
// (possibly grown) buffer is returned for reuse.
func (b *Broker) routeOne(e *event.Event, from *session, match func(string) []*session, deliver deliverFn, served []*session) []*session {
	served = served[:0]
	fromPeer := from != nil && from.isPeer
	if fromPeer || b.cfg.Mode == ModePeerToPeer {
		if b.dedup.seen(e.Key()) {
			b.ctr.duplicates.Inc()
			return served
		}
	}
	targets := match(e.Topic)
	fs := newFrameSource(e)
	var peerFS *frameSource
	var peerEvent *event.Event
	preparePeer := func() {
		if peerEvent == nil {
			c := *e
			c.TTL--
			peerEvent = &c
			peerFS = fs.derive(c.TTL)
		}
	}
	delivered := 0
	for _, t := range targets {
		if t == from && t.isPeer {
			continue // split horizon: never echo back along the inbound link
		}
		if t.isPeer {
			if e.TTL == 0 {
				continue
			}
			preparePeer()
			deliver(t, peerEvent, peerFS)
			served = append(served, t)
		} else {
			deliver(t, e, fs)
		}
		delivered++
	}
	if b.cfg.Mode == ModePeerToPeer && e.TTL > 0 {
	flood:
		for _, p := range b.peerSnapshot() {
			if p == from {
				continue
			}
			// A peer that advertised a matching pattern was already served
			// above; flooding it again would put the same event on the
			// wire twice.
			for _, d := range served {
				if d == p {
					continue flood
				}
			}
			preparePeer()
			deliver(p, peerEvent, peerFS)
			delivered++
		}
	}
	b.ctr.eventsRtd.Inc()
	if delivered == 0 {
		b.ctr.unroutable.Inc()
	}
	return served
}

// matchSessions resolves the sessions subscribed to a concrete topic via
// the data-plane router (no broker-wide lock).
func (b *Broker) matchSessions(t string) []*session {
	return b.router.match(t)
}

// Publish injects an event into the broker as if a local client had sent
// it. The event must have Source and ID set for duplicate suppression.
func (b *Broker) Publish(e *event.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if err := topic.ValidateTopic(e.Topic); err != nil {
		return err
	}
	if isControlTopic(e.Topic) {
		return fmt.Errorf("broker: cannot publish to reserved topic %q", e.Topic)
	}
	b.route(e, nil)
	return nil
}

// AcceptConn serves one conn established out-of-band, running the same
// handshake as a listener-accepted connection (client hello or peer
// hello). It returns once the session is attached or rejected.
func (b *Broker) AcceptConn(conn transport.Conn) {
	b.handshake(conn)
}

// ConnectPeer dials url and links this broker to the remote broker.
func (b *Broker) ConnectPeer(url string) error {
	conn, err := transport.Dial(url)
	if err != nil {
		return err
	}
	return b.ConnectPeerConn(conn)
}

// ConnectPeerConn links this broker to a remote broker over an
// established conn. The handshake exchanges broker IDs and advertisement
// snapshots.
func (b *Broker) ConnectPeerConn(conn transport.Conn) error {
	if err := conn.Send(peerHelloEvent(b.cfg.ID, b.cfg.Mode)); err != nil {
		conn.Close()
		return fmt.Errorf("broker: peer hello: %w", err)
	}
	reply, err := conn.Recv()
	if err != nil {
		conn.Close()
		return fmt.Errorf("broker: waiting for peer hello reply: %w", err)
	}
	// The reply may be tagged reliable; honour its rseq by acking later
	// through the session. Identity is all that matters here.
	if reply.Topic != topicPeer || reply.Headers[hdrID] == "" {
		conn.Close()
		return fmt.Errorf("broker: unexpected first event %q from peer", reply.Topic)
	}
	s, err := b.attach(conn, reply.Headers[hdrID], true)
	if err != nil {
		conn.Close()
		return err
	}
	if rseq, tagged, bad := inboundRSeq(reply); tagged && !bad {
		cum, _ := s.acceptReliable(rseq)
		s.queue.pushReliable(ackEvent(cum))
	}
	b.sendAdvertisementSnapshot(s)
	return nil
}

// housekeeping drives reliable retransmission, advertisement refresh and
// per-session gauge refresh.
func (b *Broker) housekeeping() {
	defer b.wg.Done()
	retrans := time.NewTicker(b.cfg.RetransmitInterval)
	defer retrans.Stop()
	refresh := time.NewTicker(b.cfg.AdvRefreshInterval)
	defer refresh.Stop()
	for {
		select {
		case <-b.done:
			return
		case now := <-retrans.C:
			b.mu.RLock()
			sessions := make([]*session, 0, len(b.sessions))
			for s := range b.sessions {
				sessions = append(sessions, s)
			}
			b.mu.RUnlock()
			for _, s := range sessions {
				b.publishSessionGauges(s)
				if s.retransmit(now, b.cfg.RetransmitInterval, b.cfg.MaxRetransmits) {
					s.close()
				}
			}
		case <-refresh.C:
			if b.cfg.Mode != ModeClientServer {
				continue
			}
			b.mu.Lock()
			patterns := make([]string, 0, len(b.patternRefs))
			for p := range b.patternRefs {
				patterns = append(patterns, p)
			}
			peers := b.peerList(nil)
			b.mu.Unlock()
			for _, p := range patterns {
				b.advertise(peers, advAdd, p)
			}
			b.pruneStaleAdvertisements()
		}
	}
}

// publishSessionGauges refreshes the per-session observability gauges:
// best-effort queue drops and reliable-window occupancy.
func (b *Broker) publishSessionGauges(s *session) {
	reg := b.metrics()
	reg.Gauge("broker.session." + s.id + ".queue_drops").Set(int64(s.queue.dropCount()))
	reg.Gauge("broker.session." + s.id + ".reliable_window").Set(int64(s.unackedLen()))
}

// pruneStaleAdvertisements drops remote patterns that have not been
// refreshed within three refresh intervals (soft-state expiry).
func (b *Broker) pruneStaleAdvertisements() {
	cutoff := time.Now().Add(-3 * b.cfg.AdvRefreshInterval)
	b.mu.Lock()
	defer b.mu.Unlock()
	for peer := range b.peers {
		for pattern, origins := range peer.remotePatterns {
			for origin, last := range origins {
				if last.Before(cutoff) {
					delete(origins, origin)
				}
			}
			if len(origins) == 0 {
				delete(peer.remotePatterns, pattern)
				b.router.remove(pattern, peer)
			}
		}
	}
}

// SessionCount returns the number of attached sessions (clients + peers).
func (b *Broker) SessionCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.sessions)
}

// PeerCount returns the number of attached peer links.
func (b *Broker) PeerCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.peers)
}

// Stop closes all listeners and sessions and waits for every goroutine.
func (b *Broker) Stop() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	listeners := b.listeners
	b.listeners = nil
	sessions := make([]*session, 0, len(b.sessions))
	for s := range b.sessions {
		sessions = append(sessions, s)
	}
	b.mu.Unlock()
	close(b.done)
	for _, l := range listeners {
		l.Close()
	}
	for _, s := range sessions {
		s.stop()
	}
	b.wg.Wait()
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func parseUint(s string) (uint64, error) { return strconv.ParseUint(s, 10, 64) }
