package broker

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/topic"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// Mode selects how a broker network routes events.
type Mode int

// Routing modes. Enums start at 1 so the zero value is invalid and the
// constructor can default it.
const (
	// ModeClientServer routes along subscription advertisements (the
	// paper's "client-server mode like JMS").
	ModeClientServer Mode = iota + 1
	// ModePeerToPeer floods events to all peers with TTL and duplicate
	// suppression (the paper's "JXTA-like peer-to-peer mode").
	ModePeerToPeer
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeClientServer:
		return "client-server"
	case ModePeerToPeer:
		return "peer-to-peer"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterises a Broker. The zero value is usable: New fills
// defaults.
type Config struct {
	// ID uniquely names the broker in the network. Default "broker-1".
	ID string
	// Mode selects the routing mode. Default ModeClientServer.
	Mode Mode
	// MeshID scopes peer links to one federation mesh: two brokers link
	// only if their mesh IDs match (an empty ID on either side matches
	// anything, so unscoped deployments keep working).
	MeshID string
	// MeshFlood disables hop-cost routed forwarding in client-server mode
	// and restores the flood-with-loop-guard behaviour: every peer link
	// that advertised a matching pattern is staged, and TTL plus the
	// duplicate cache kill the redundant copies. An ablation knob for
	// benchmarking, and a fallback if routed convergence misbehaves.
	MeshFlood bool
	// PeerCreditWindow bounds the best-effort data events in flight to one
	// mesh peer link: staging stops (and broker.peer.<id>.credit_stalls
	// counts the shed events) once sent minus the receiver's cumulative
	// consumption grants reaches the window, so a congested link pushes
	// back at the sender before its queue overflows and sheds blindly.
	// Reliable traffic bypasses the window (it has its own blocking
	// semantics). Default QueueDepth/2 (min 64); negative disables.
	PeerCreditWindow int
	// PeerStaleAfter is how long a peer link may be silent before a
	// competing duplicate link is allowed to supersede it during
	// duplicate-link resolution (mesh supervisors keep healthy links
	// chattier than this via heartbeats). Default 5s.
	PeerStaleAfter time.Duration
	// QueueDepth bounds each session's best-effort lane. Default 512.
	QueueDepth int
	// DedupCapacity bounds how many distinct event sources the
	// duplicate-suppression cache tracks (each with a fixed per-source
	// sequence window). Default 65536.
	DedupCapacity int
	// ReliableWindow bounds unacked reliable events per session before the
	// broker disconnects the laggard. Default 4096.
	ReliableWindow int
	// RetransmitInterval is the reliable-delivery RTO. Default 200ms.
	RetransmitInterval time.Duration
	// MaxRetransmits bounds delivery attempts per reliable event.
	// Default 10.
	MaxRetransmits int
	// AdvRefreshInterval is the soft-state refresh period for
	// subscription advertisements between brokers. Default 2s.
	AdvRefreshInterval time.Duration
	// RouteShards is the number of locks/tries the routing layer is split
	// across (rounded up to a power of two). Default 16. One shard
	// degenerates to a single-lock router — an ablation knob.
	RouteShards int
	// MaxBatchBytes bounds the encoded bytes a session writer aggregates
	// before forcing a vectored flush. Default 256 KiB.
	MaxBatchBytes int
	// FlushInterval is how long a session writer lingers over a non-empty
	// batch once its queue goes idle, waiting for more traffic to
	// coalesce with. 0 (the default) flushes as soon as the queue idles —
	// batching then happens only under sustained load, costing no
	// latency. Reliable events always flush immediately regardless.
	FlushInterval time.Duration
	// WriterPoolSize is the number of shared writer-pool goroutines that
	// drain session send queues. The default (0) derives from GOMAXPROCS,
	// giving the egress side O(cores) writers instead of one goroutine
	// per session; negative restores the legacy writer-per-session model
	// (the ablation knob for the scaling benchmark). Each session is
	// bound to one pool for life, preserving per-session write ordering.
	WriterPoolSize int
	// IngestBurst bounds how many events a session reader decodes and
	// routes per sweep on burst-capable conns. Within a burst, publish
	// targets are resolved once per topic and each target session is
	// locked and signalled once — the amortization that keeps sustained
	// ingest cheap at wide fan-out. Default 256; 1 degenerates the data
	// path to event-at-a-time ingest and egress (an ablation knob).
	IngestBurst int
	// DisableRouteCache turns off per-topic match memoisation — an
	// ablation knob for the "optimizations on the message transmission"
	// the paper credits for the broker's media performance.
	DisableRouteCache bool
	// RecordPatterns lists topic patterns recorded to durable on-disk
	// logs (one segmented log per pattern; '+'/'#' wildcards allowed).
	// Events matching a pattern are appended — sequence-stamped and
	// CRC-framed — as they are routed, and late joiners replay them with
	// SubscribeReplay. Empty disables recording.
	RecordPatterns []string
	// RecordDir is the directory holding the per-pattern log
	// directories. Default os.TempDir()/gmmcs-topiclog/<ID>.
	RecordDir string
	// RecordSegmentBytes rolls a log segment once it reaches this size.
	// Default 4 MiB.
	RecordSegmentBytes int64
	// RecordSegmentAge rolls a log segment by age (0 = size-only).
	RecordSegmentAge time.Duration
	// RecordMaxSegments / RecordMaxBytes cap retained history per log;
	// housekeeping reaps whole segments beyond either cap, never one an
	// active replay cursor still reads. 0 = unbounded.
	RecordMaxSegments int
	RecordMaxBytes    int64
	// SessionLinger is how long a client session whose conn died is
	// parked — subscriptions, reliable window and cumulative ack floor
	// retained — awaiting a resume handshake from the redialing client.
	// 0 (the default) disables parking: a dead conn tears the session
	// down immediately, the pre-resilience behaviour.
	SessionLinger time.Duration
	// MaxParkedSessions bounds the parked-session table; past it the
	// oldest park is evicted to admit a new one. Default 1024 (only
	// meaningful when SessionLinger > 0).
	MaxParkedSessions int
	// Metrics receives broker counters; nil allocates a private registry.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.ID == "" {
		c.ID = "broker-1"
	}
	if c.Mode == 0 {
		c.Mode = ModeClientServer
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 512
	}
	if c.PeerCreditWindow == 0 {
		c.PeerCreditWindow = c.QueueDepth / 2
		if c.PeerCreditWindow < 64 {
			c.PeerCreditWindow = 64
		}
	}
	if c.DedupCapacity <= 0 {
		c.DedupCapacity = 65536
	}
	if c.ReliableWindow <= 0 {
		c.ReliableWindow = 4096
	}
	if c.RetransmitInterval <= 0 {
		c.RetransmitInterval = 200 * time.Millisecond
	}
	if c.MaxRetransmits <= 0 {
		c.MaxRetransmits = 10
	}
	if c.AdvRefreshInterval <= 0 {
		c.AdvRefreshInterval = 2 * time.Second
	}
	if c.PeerStaleAfter <= 0 {
		c.PeerStaleAfter = 5 * time.Second
	}
	if c.RouteShards <= 0 {
		c.RouteShards = topic.DefaultShards
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = transport.DefaultMaxBatchBytes
	}
	if c.FlushInterval < 0 {
		c.FlushInterval = 0
	}
	if c.IngestBurst == 0 {
		c.IngestBurst = DefaultIngestBurst
	}
	if c.WriterPoolSize == 0 {
		c.WriterPoolSize = runtime.GOMAXPROCS(0)
	}
	if c.WriterPoolSize < 0 {
		c.WriterPoolSize = 0 // legacy writer-per-session ablation
	}
	if c.IngestBurst < 1 {
		c.IngestBurst = 1
	}
	if c.SessionLinger < 0 {
		c.SessionLinger = 0
	}
	if c.MaxParkedSessions <= 0 {
		c.MaxParkedSessions = 1024
	}
	if c.Metrics == nil {
		c.Metrics = &metrics.Registry{}
	}
	if len(c.RecordPatterns) > 0 {
		if c.RecordDir == "" {
			c.RecordDir = filepath.Join(os.TempDir(), "gmmcs-topiclog", c.ID)
		}
		if c.RecordSegmentBytes <= 0 {
			c.RecordSegmentBytes = 4 << 20
		}
	}
	return c
}

// Broker is one node of the messaging middleware. Its state is split
// into two planes:
//
//   - The data plane (router) resolves publish targets through per-shard
//     locks and an epoch-versioned route cache; publishes never touch
//     b.mu.
//   - The control plane (b.mu) guards session/peer membership,
//     advertisement bookkeeping and listener lifecycle — the slow,
//     rare mutations.
type Broker struct {
	cfg Config

	// router is the data plane: sharded subscription state + route cache.
	router *router
	// matchFn is router.match bound once, so the per-event route call
	// does not allocate a method value.
	matchFn func(string) []*session

	mu       sync.RWMutex
	closed   bool
	sessions map[*session]struct{}
	peers    map[*session]struct{}
	ids      map[string]*session
	// patternRefs counts local client subscriptions per pattern; the
	// 0→1 and 1→0 edges trigger advertisements to peers.
	patternRefs map[string]int
	// advApplied records the newest advertisement sequence applied per
	// (origin, pattern), so replays and loops are ignored.
	advApplied map[string]map[string]uint64

	// peerSnap is a lock-free snapshot of b.peers for the peer-to-peer
	// flood path; refreshed under b.mu whenever peering changes.
	peerSnap atomic.Pointer[[]*session]

	advSeq    uint64
	dedup     *dedupCache
	listeners []transport.Listener

	// routed caches "client-server mode and MeshFlood off" — whether the
	// mesh data path consults forwarding plans instead of flooding the
	// advertisement trie.
	routed bool
	// meshRoutes is the control-plane routing table: advertised pattern →
	// per-origin chosen next hop. Guarded by b.mu; the data plane reads
	// the atomically-published meshPlans snapshot instead.
	meshRoutes map[string]*patternRoute
	meshPlans  atomic.Pointer[meshPlanTable]
	// planFn is planFor bound once so per-event plan resolution does not
	// allocate a method value.
	planFn func(string) *topicPlan

	// relStash holds reliable events salvaged from dead peer links, keyed
	// by remote broker id. The next link to the same peer (redial or
	// inbound reconnect) replays them, so a link drop mid-stream does not
	// lose in-flight reliable traffic. Guarded by b.mu; pruned by
	// housekeeping on soft-state expiry.
	relStash map[string]*relSalvage

	// parked holds client sessions whose conns died while SessionLinger
	// was enabled, keyed by resume token (parkedByID indexes the same
	// parks by client id, so a fresh hello invalidates a stale park).
	// Guarded by b.mu; expired parks are reaped at resume time and by
	// housekeeping. draining, once set by Drain, refuses new handshakes
	// and disables parking.
	parked     map[string]*parkedSession
	parkedByID map[string]string
	draining   bool
	tokenSeq   atomic.Uint64

	// rec is the durable-log record plane (nil when RecordPatterns is
	// empty, which keeps recording entirely off the data path).
	rec *recordPlane

	// ctr holds pre-resolved hot-path counters: Registry.Counter takes a
	// registry-wide mutex per lookup, which 64 concurrent session writers
	// would otherwise serialize on for every event.
	ctr brokerCounters

	// pools are the shared egress writers (empty in the legacy
	// writer-per-session ablation); poolNext round-robins session
	// binding across them.
	pools    []*writerPool
	poolNext atomic.Uint64

	wg   sync.WaitGroup
	done chan struct{}
}

// brokerCounters are the per-event instruments of the data path,
// resolved once at construction.
type brokerCounters struct {
	eventsIn    *metrics.Counter
	eventsOut   *metrics.Counter
	eventsRtd   *metrics.Counter
	unroutable  *metrics.Counter
	duplicates  *metrics.Counter
	queueDrops  *metrics.Counter
	invalid     *metrics.Counter
	retransmits *metrics.Counter
	acksIn      *metrics.Counter
}

func resolveCounters(reg *metrics.Registry) brokerCounters {
	return brokerCounters{
		eventsIn:    reg.Counter("broker.events_in"),
		eventsOut:   reg.Counter("broker.events_out"),
		eventsRtd:   reg.Counter("broker.events_routed"),
		unroutable:  reg.Counter("broker.events_unroutable"),
		duplicates:  reg.Counter("broker.duplicates"),
		queueDrops:  reg.Counter("broker.queue_drops"),
		invalid:     reg.Counter("broker.invalid_events"),
		retransmits: reg.Counter("broker.retransmits"),
		acksIn:      reg.Counter("broker.acks_in"),
	}
}

// ErrBrokerStopped is returned by operations on a stopped Broker.
var ErrBrokerStopped = errors.New("broker: closed")

// DefaultIngestBurst bounds a session reader's per-sweep burst when the
// config leaves IngestBurst zero. 256 events cover everything one
// 256 KiB receive chunk holds at media MTU.
const DefaultIngestBurst = 256

// New creates a broker and starts its housekeeping loop.
func New(cfg Config) *Broker {
	cfg = cfg.withDefaults()
	b := &Broker{
		cfg:         cfg,
		router:      newRouter(cfg.RouteShards, cfg.DisableRouteCache),
		sessions:    make(map[*session]struct{}),
		peers:       make(map[*session]struct{}),
		ids:         make(map[string]*session),
		patternRefs: make(map[string]int),
		advApplied:  make(map[string]map[string]uint64),
		relStash:    make(map[string]*relSalvage),
		parked:      make(map[string]*parkedSession),
		parkedByID:  make(map[string]string),
		meshRoutes:  make(map[string]*patternRoute),
		dedup:       newDedupCache(cfg.DedupCapacity),
		ctr:         resolveCounters(cfg.Metrics),
		done:        make(chan struct{}),
	}
	b.routed = cfg.Mode == ModeClientServer && !cfg.MeshFlood
	b.matchFn = b.router.match
	b.planFn = b.planFor
	if len(cfg.RecordPatterns) > 0 {
		b.rec = newRecordPlane(cfg, cfg.Metrics)
	}
	if cfg.WriterPoolSize > 0 {
		b.pools = make([]*writerPool, cfg.WriterPoolSize)
		for i := range b.pools {
			b.pools[i] = newWriterPool(b)
			b.wg.Add(1)
			go b.pools[i].run()
		}
	}
	b.wg.Add(1)
	go b.housekeeping()
	return b
}

// ID returns the broker's identity.
func (b *Broker) ID() string { return b.cfg.ID }

// Mode returns the routing mode.
func (b *Broker) Mode() Mode { return b.cfg.Mode }

// Metrics returns the broker's metrics registry.
func (b *Broker) Metrics() *metrics.Registry { return b.cfg.Metrics }

func (b *Broker) metrics() *metrics.Registry { return b.cfg.Metrics }

// Serve accepts connections from l until the listener or broker closes.
// The listener is closed by Stop.
func (b *Broker) Serve(l transport.Listener) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		l.Close()
		return
	}
	b.listeners = append(b.listeners, l)
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				b.handshake(conn)
			}()
		}
	}()
}

// Listen starts a listener on the URL and serves it.
func (b *Broker) Listen(url string) (transport.Listener, error) {
	l, err := transport.Listen(url)
	if err != nil {
		return nil, err
	}
	b.Serve(l)
	return l, nil
}

// handshake reads the first event on a new conn to learn whether the
// remote is a client or a peer broker, then attaches a session.
func (b *Broker) handshake(conn transport.Conn) {
	first, err := conn.Recv()
	if err != nil {
		conn.Close()
		return
	}
	id := first.Headers[hdrID]
	switch {
	case first.Topic == topicHello && id != "":
		if first.Headers[hdrOp] == opResume {
			if err := b.resumeHandshake(conn, id, first.Headers[hdrToken]); err != nil {
				conn.Close()
			}
			return
		}
		s, err := b.attach(conn, id, false, false)
		if err != nil {
			conn.Close()
			return
		}
		if s.token != "" {
			// Linger-enabled brokers answer every hello with the token the
			// client must present on redial. Best-effort and unsequenced:
			// the reply must not consume a reliable rseq.
			s.queue.pushBestEffort(welcomeEvent(opWelcome, s.token), nil)
		}
	case first.Topic == topicPeer && id != "":
		modeStr := first.Headers[hdrMode]
		m, _ := strconv.Atoi(modeStr)
		if Mode(m) != b.cfg.Mode {
			conn.Close()
			return
		}
		if remoteMesh := first.Headers[hdrMesh]; remoteMesh != "" && b.cfg.MeshID != "" && remoteMesh != b.cfg.MeshID {
			conn.Close()
			return
		}
		s, err := b.attach(conn, id, true, false)
		if err != nil {
			var dup *duplicatePeerLinkError
			if errors.As(err, &dup) {
				// Courtesy reply so the rejected dialer learns our identity
				// and can stand by on the surviving canonical link instead of
				// redialing blind.
				_ = conn.Send(peerHelloEvent(b.cfg.ID, b.cfg.Mode, b.cfg.MeshID))
			}
			conn.Close()
			return
		}
		// Reply so the dialer learns our identity, then replay anything
		// salvaged from this peer's previous link, then share soft state.
		s.queue.pushReliable(peerHelloEvent(b.cfg.ID, b.cfg.Mode, b.cfg.MeshID))
		b.replaySalvaged(s)
		b.sendAdvertisementSnapshot(s)
	default:
		conn.Close()
	}
}

// duplicatePeerLinkError reports that a peer link was rejected because a
// live canonical link to the same broker already exists.
type duplicatePeerLinkError struct{ remoteID string }

func (e *duplicatePeerLinkError) Error() string {
	return fmt.Sprintf("broker: duplicate peer link to %s (canonical link alive)", e.remoteID)
}

// refreshPeerSnapLocked rebuilds the lock-free peer snapshot. Callers
// hold b.mu.
func (b *Broker) refreshPeerSnapLocked() {
	snap := make([]*session, 0, len(b.peers))
	for p := range b.peers {
		snap = append(snap, p)
	}
	b.peerSnap.Store(&snap)
}

// peerSnapshot returns the current peer set without taking b.mu.
func (b *Broker) peerSnapshot() []*session {
	if p := b.peerSnap.Load(); p != nil {
		return *p
	}
	return nil
}

// hasPeers reports whether any peer link is attached, without b.mu.
func (b *Broker) hasPeers() bool {
	p := b.peerSnap.Load()
	return p != nil && len(*p) > 0
}

// attach registers a session for conn and starts its goroutines. dialed
// marks peer sessions this broker established (the tie-break input for
// duplicate-link resolution).
func (b *Broker) attach(conn transport.Conn, id string, isPeer, dialed bool) (*session, error) {
	s := newSession(b, conn, id, isPeer)
	s.dialed = dialed
	if !isPeer && b.cfg.SessionLinger > 0 {
		s.token = b.mintToken()
	}
	// Sender-blocking conns (spin-wait link emulation) keep a dedicated
	// writer: one emulated link's host cost must not head-of-line block a
	// pool shard's other sessions.
	blocking := false
	if sb, ok := conn.(transport.SendBlocker); ok {
		blocking = sb.SendBlocks()
	}
	if len(b.pools) > 0 && !blocking {
		s.bindPool(b.pools[int(b.poolNext.Add(1)-1)%len(b.pools)])
	}
	b.mu.Lock()
	if b.closed || b.draining {
		b.mu.Unlock()
		return nil, ErrBrokerStopped
	}
	if old, exists := b.ids[id]; exists {
		if isPeer && old.isPeer && b.keepOldPeerLinkLocked(old, s, id) {
			b.mu.Unlock()
			return nil, &duplicatePeerLinkError{remoteID: id}
		}
		b.mu.Unlock()
		// A reconnecting client (or a superseding peer link) replaces its
		// old session.
		old.close()
		b.mu.Lock()
		if b.closed || b.draining {
			b.mu.Unlock()
			return nil, ErrBrokerStopped
		}
	}
	// A fresh attach for an id orphans any park under that id (including
	// one the supersede above just created): the client evidently started
	// over, so the retained window would only replay stale state.
	b.purgeParkLocked(id)
	b.ids[id] = s
	b.sessions[s] = struct{}{}
	if isPeer {
		b.peers[s] = struct{}{}
		b.refreshPeerSnapLocked()
		reg := b.metrics()
		s.fwdCtr = reg.Counter("broker.peer." + id + ".forwarded")
		s.dupCtr = reg.Counter("broker.peer." + id + ".dup_dropped")
		s.creditStallCtr = reg.Counter("broker.peer." + id + ".credit_stalls")
		s.linkDropCtr = reg.Counter("broker.peer." + id + ".queue_drops")
		reg.Gauge("broker.peer." + id + ".links").Set(1)
	}
	b.mu.Unlock()
	s.start()
	b.metrics().Counter("broker.sessions_attached").Inc()
	return s, nil
}

// replaySalvaged replays reliable events salvaged from this peer's
// previous link, in their original send order. Both handshake sides call
// it only after queueing their hello (reply), preserving the wire
// contract that a peer link's first event is the hello — replaying from
// attach would put stale advertisements ahead of the hello and wedge the
// remote's handshake. If s was already superseded, the stash is left for
// the successor link to drain.
func (b *Broker) replaySalvaged(s *session) {
	b.mu.Lock()
	if b.ids[s.id] != s {
		b.mu.Unlock()
		return
	}
	stash := b.relStash[s.id]
	delete(b.relStash, s.id)
	b.mu.Unlock()
	if stash == nil {
		return
	}
	for _, e := range stash.events {
		s.sendReliable(e)
	}
}

// keepOldPeerLinkLocked decides duplicate-peer-link resolution: when two
// brokers dial each other concurrently, both directions come up and one
// must yield deterministically or the pair thrashes (each supersede kills
// the link the other side's supervisor is watching). The canonical link
// between A and B is the one dialed by the lexicographically smaller
// broker id; the new session is rejected only when the old one is
// canonical, still fresh, and the new one is the opposite direction — a
// same-direction arrival is a genuine reconnect and always supersedes, as
// does any arrival beating a stale (silent past PeerStaleAfter) link.
// Callers hold b.mu.
func (b *Broker) keepOldPeerLinkLocked(old, s *session, remoteID string) bool {
	if old.dialed == s.dialed {
		return false
	}
	wantDialed := b.cfg.ID < remoteID
	if s.dialed == wantDialed {
		return false // the new link is canonical; supersede
	}
	return time.Since(old.lastRecvTime()) < b.cfg.PeerStaleAfter
}

// peerSessionByID returns the live peer session for a remote broker id,
// or nil. Mesh supervisors use it to stand by on an inbound canonical
// link instead of redialing against it.
func (b *Broker) peerSessionByID(id string) *session {
	b.mu.RLock()
	defer b.mu.RUnlock()
	s := b.ids[id]
	if s == nil || !s.isPeer {
		return nil
	}
	return s
}

// relSalvage is one dead peer link's unacknowledged reliable events,
// awaiting replay onto the peer's next link.
type relSalvage struct {
	events []*event.Event
	when   time.Time
}

// detach removes a session after its conn closed. Client sessions that
// hold a resume token are parked — reliable window, ack floors and
// subscription patterns snapshotted — so a redial within SessionLinger
// reattaches where the dead conn left off.
func (b *Broker) detach(s *session) {
	var salvaged []*event.Event
	if s.isPeer {
		salvaged = s.salvageUnacked()
	}
	parkable := !s.isPeer && s.token != "" && b.cfg.SessionLinger > 0
	var park *parkedSession
	if parkable {
		park = &parkedSession{id: s.id, token: s.token, when: time.Now()}
		park.salvaged = s.salvageParked()
		park.nextRSeq, park.ackFloor = s.relSnapshot()
		s.recvMu.Lock()
		park.recvCum = s.recvCum
		s.recvMu.Unlock()
	}
	b.mu.Lock()
	if _, ok := b.sessions[s]; !ok {
		b.mu.Unlock()
		return
	}
	delete(b.sessions, s)
	if park != nil && !b.closed && !b.draining && b.ids[s.id] == s {
		for p := range s.localPatterns {
			park.patterns = append(park.patterns, p)
		}
		b.parkLocked(park)
	}
	wasPeer := false
	if _, wasPeer = b.peers[s]; wasPeer {
		delete(b.peers, s)
		b.refreshPeerSnapLocked()
		// Merge with any stash a predecessor link left undrained (this
		// session may have died before its handshake replayed it), keeping
		// the newest window's worth.
		if prev, ok := b.relStash[s.id]; ok {
			salvaged = append(prev.events, salvaged...)
		}
		if len(salvaged) > b.cfg.ReliableWindow {
			salvaged = salvaged[len(salvaged)-b.cfg.ReliableWindow:]
		}
		if len(salvaged) > 0 {
			b.relStash[s.id] = &relSalvage{events: salvaged, when: time.Now()}
		}
	}
	if b.ids[s.id] == s {
		delete(b.ids, s.id)
	}
	// Per-pattern cache invalidation needs the union of everything this
	// session was routed under (its own subscriptions plus advertised
	// remote interest).
	patterns := make([]string, 0, len(s.localPatterns)+len(s.remotePatterns))
	for p := range s.localPatterns {
		patterns = append(patterns, p)
	}
	for p := range s.remotePatterns {
		patterns = append(patterns, p)
	}
	b.router.removeAll(s, patterns)
	if wasPeer {
		// Recompute routes for everything this link advertised: surviving
		// links holding the next-best cost promote into the trie and the
		// plan table immediately, re-routing traffic around the dead link.
		for p := range s.remotePatterns {
			b.recomputePatternRouteLocked(p)
		}
	}
	// Release this client's pattern refcounts; collect 1→0 edges.
	var removals []string
	for p := range s.localPatterns {
		b.patternRefs[p]--
		if b.patternRefs[p] <= 0 {
			delete(b.patternRefs, p)
			removals = append(removals, p)
		}
	}
	peers := b.peerList(nil)
	b.mu.Unlock()
	for _, p := range removals {
		b.advertise(peers, advRemove, p)
	}
	// Drop the session's gauges (unless a reconnection already reclaimed
	// the id) so churning clients cannot grow the registry without bound.
	b.mu.RLock()
	_, idLive := b.ids[s.id]
	b.mu.RUnlock()
	if !idLive {
		b.metrics().DropGauge("broker.session." + s.id + ".queue_drops")
		b.metrics().DropGauge("broker.session." + s.id + ".reliable_window")
		if wasPeer {
			b.metrics().Gauge("broker.peer." + s.id + ".links").Set(0)
		}
	} else if wasPeer {
		b.metrics().Gauge("broker.peer." + s.id + ".links").Set(1)
	}
	b.metrics().Counter("broker.sessions_detached").Inc()
}

// parkedSession is the retained state of one client session whose conn
// died while SessionLinger was enabled: everything a resume handshake
// needs to rebuild the session as if the disconnect never happened.
type parkedSession struct {
	id       string
	token    string
	patterns []string
	// salvaged is the unacked reliable window at original rseqs; resume
	// requeues it verbatim so the client's cumulative-ack dedup state
	// stays valid across the reattach.
	salvaged []parkedEvent
	nextRSeq uint64
	ackFloor uint64
	recvCum  uint64
	when     time.Time
}

// mintToken builds a resume token. Uniqueness within this broker's
// lifetime is all the scheme needs; the broker id prefix keeps tokens
// from colliding across a mesh.
func (b *Broker) mintToken() string {
	return fmt.Sprintf("%s.%d.%x", b.cfg.ID, b.tokenSeq.Add(1), time.Now().UnixNano())
}

// parkLocked inserts a park, evicting the oldest one past the capacity
// bound. Callers hold b.mu.
func (b *Broker) parkLocked(p *parkedSession) {
	if len(b.parked) >= b.cfg.MaxParkedSessions {
		var oldestTok string
		var oldest *parkedSession
		for tok, cand := range b.parked {
			if oldest == nil || cand.when.Before(oldest.when) {
				oldestTok, oldest = tok, cand
			}
		}
		if oldest != nil {
			delete(b.parked, oldestTok)
			delete(b.parkedByID, oldest.id)
		}
	}
	b.parked[p.token] = p
	b.parkedByID[p.id] = p.token
}

// purgeParkLocked drops any park held under id. Callers hold b.mu.
func (b *Broker) purgeParkLocked(id string) {
	if tok, ok := b.parkedByID[id]; ok {
		delete(b.parkedByID, id)
		delete(b.parked, tok)
	}
}

// pruneParked reaps parks whose linger window expired (resume also
// checks expiry, so this is purely a memory bound).
func (b *Broker) pruneParked() {
	if b.cfg.SessionLinger <= 0 {
		return
	}
	cutoff := time.Now().Add(-b.cfg.SessionLinger)
	b.mu.Lock()
	defer b.mu.Unlock()
	for tok, p := range b.parked {
		if p.when.Before(cutoff) {
			delete(b.parked, tok)
			delete(b.parkedByID, p.id)
		}
	}
}

// parkedCount reports the parked-session table size (test hook).
func (b *Broker) parkedCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.parked)
}

// resumeHandshake serves a hello that presented a resume token. A live
// park under that token reattaches the conn to the retained session
// state; anything else — unknown token, expired linger, id mismatch —
// falls back to a fresh attach with an opRejected reply so the client
// knows to rebuild its subscriptions from scratch.
func (b *Broker) resumeHandshake(conn transport.Conn, id, token string) error {
	b.mu.Lock()
	park := b.parked[token]
	if park == nil {
		// The redial can outrun the dying session's teardown: the token's
		// session is still attached (its conn dead but not yet detached,
		// or half-dead — the client saw a cut the broker hasn't). Force
		// the teardown now and wait for its park: close() detaches (and
		// parks) before signalling closedCh, so the window is ready when
		// the wait returns.
		if live := b.ids[id]; live != nil && !live.isPeer && live.token == token {
			b.mu.Unlock()
			live.close()
			select {
			case <-live.closedCh:
			case <-time.After(5 * time.Second):
			}
			b.mu.Lock()
			park = b.parked[token]
		}
	}
	switch {
	case park == nil:
	case park.id != id:
		// A foreign token must not consume the real owner's park.
		park = nil
	case time.Since(park.when) > b.cfg.SessionLinger:
		b.purgeParkLocked(park.id)
		park = nil
	default:
		b.purgeParkLocked(park.id)
	}
	b.mu.Unlock()
	if park == nil {
		s, err := b.attach(conn, id, false, false)
		if err != nil {
			return err
		}
		s.queue.pushBestEffort(welcomeEvent(opRejected, s.token), nil)
		return nil
	}
	return b.attachResumed(conn, park)
}

// attachResumed registers a new conn against a consumed park: the
// reliable sequence space and ack floors are seeded before the session
// starts, the salvaged window is requeued at its original rseqs, and
// only then are the parked patterns re-registered — so fresh publishes
// cannot outrun the replayed backlog on the reliable lane.
func (b *Broker) attachResumed(conn transport.Conn, park *parkedSession) error {
	s := newSession(b, conn, park.id, false)
	// The token is STABLE across resumes: it identifies the session
	// lineage, not the conn. Rotating it here would open a window — the
	// opResumed welcome drains behind the salvaged reliable backlog, so
	// a client whose new conn dies before the welcome arrives would
	// redial with a token the broker no longer honours, silently
	// downgrading the resume to a fresh attach and losing the window.
	s.token = park.token
	s.seedReliable(park.nextRSeq, park.ackFloor, park.recvCum)
	blocking := false
	if sb, ok := conn.(transport.SendBlocker); ok {
		blocking = sb.SendBlocks()
	}
	if len(b.pools) > 0 && !blocking {
		s.bindPool(b.pools[int(b.poolNext.Add(1)-1)%len(b.pools)])
	}
	b.mu.Lock()
	if b.closed || b.draining {
		b.mu.Unlock()
		return ErrBrokerStopped
	}
	if old, exists := b.ids[park.id]; exists {
		b.mu.Unlock()
		// Double-resume race: the newest conn wins, superseding whichever
		// session (fresh or resumed) currently holds the id.
		old.close()
		b.mu.Lock()
		if b.closed || b.draining {
			b.mu.Unlock()
			return ErrBrokerStopped
		}
	}
	// The supersede above may have re-parked the loser; that park is
	// stale the moment this resume succeeds.
	b.purgeParkLocked(park.id)
	b.ids[park.id] = s
	b.sessions[s] = struct{}{}
	b.mu.Unlock()
	for _, pe := range park.salvaged {
		s.sendReliableAt(pe.e, pe.rseq)
	}
	for _, p := range park.patterns {
		_ = b.subscribe(s, p)
	}
	s.start()
	s.queue.pushBestEffort(welcomeEvent(opResumed, s.token), nil)
	b.metrics().Counter("broker.sessions_attached").Inc()
	b.metrics().Counter("broker.sessions_resumed").Inc()
	return nil
}

// Drain gracefully winds the broker down for a restart or removal: it
// stops accepting new conns, drops parked sessions, tells every client
// to redial elsewhere (a reliable GOAWAY control event), and waits until
// each remaining client session's reliable window is fully acknowledged
// — or ctx expires. Clients that never ack are disconnected by the
// retransmit limit, so the wait terminates. The caller still calls Stop
// afterwards to tear down sessions and goroutines.
func (b *Broker) Drain(ctx context.Context) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrBrokerStopped
	}
	already := b.draining
	b.draining = true
	listeners := b.listeners
	b.listeners = nil
	b.parked = make(map[string]*parkedSession)
	b.parkedByID = make(map[string]string)
	clients := make([]*session, 0, len(b.sessions))
	for s := range b.sessions {
		if !s.isPeer {
			clients = append(clients, s)
		}
	}
	b.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	if !already {
		for _, s := range clients {
			s.sendReliable(goawayEvent())
		}
	}
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	for {
		if b.clientWindowsFlushed() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-b.done:
			return ErrBrokerStopped
		case <-ticker.C:
		}
	}
}

// clientWindowsFlushed reports whether every attached client session's
// reliable window is empty (all sent reliable events acknowledged).
func (b *Broker) clientWindowsFlushed() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	for s := range b.sessions {
		if !s.isPeer && s.unackedLen() > 0 {
			return false
		}
	}
	return true
}

// subscribe registers a client pattern and advertises the 0→1 edge.
func (b *Broker) subscribe(s *session, pattern string) error {
	if err := topic.ValidatePattern(pattern); err != nil {
		return err
	}
	if isControlTopic(pattern) {
		return fmt.Errorf("broker: pattern %q is in the reserved namespace", pattern)
	}
	b.mu.Lock()
	if _, dup := s.localPatterns[pattern]; dup {
		b.mu.Unlock()
		return nil
	}
	s.localPatterns[pattern] = struct{}{}
	if err := b.router.add(pattern, s); err != nil {
		delete(s.localPatterns, pattern)
		b.mu.Unlock()
		return err
	}
	b.patternRefs[pattern]++
	isNew := b.patternRefs[pattern] == 1
	peers := b.peerList(nil)
	b.mu.Unlock()
	if isNew {
		b.advertise(peers, advAdd, pattern)
	}
	return nil
}

// unsubscribe removes a client pattern and advertises the 1→0 edge.
func (b *Broker) unsubscribe(s *session, pattern string) {
	b.mu.Lock()
	if _, ok := s.localPatterns[pattern]; !ok {
		b.mu.Unlock()
		return
	}
	delete(s.localPatterns, pattern)
	b.router.remove(pattern, s)
	b.patternRefs[pattern]--
	wasLast := b.patternRefs[pattern] <= 0
	if wasLast {
		delete(b.patternRefs, pattern)
	}
	peers := b.peerList(nil)
	b.mu.Unlock()
	if wasLast {
		b.advertise(peers, advRemove, pattern)
	}
}

// advertise sends one local-pattern advertisement to the given peers.
// This broker is the origin, so the hop count is 0.
func (b *Broker) advertise(peers []*session, op advOp, pattern string) {
	b.mu.Lock()
	b.advSeq++
	seq := b.advSeq
	b.mu.Unlock()
	adv := subAdvEvent(op, pattern, b.cfg.ID, seq, 0)
	for _, p := range peers {
		p.sendReliable(adv)
	}
}

// sendAdvertisementSnapshot brings a new peer link up to date with every
// pattern this broker can reach: its own local patterns and those learned
// from other peers. Advertisements are mode-independent soft state: even a
// flooding peer-to-peer mesh keeps them so matched peers are served on the
// targeted path and the flood can skip them.
func (b *Broker) sendAdvertisementSnapshot(to *session) {
	type adv struct {
		pattern, origin string
		seq             uint64
		hops            int
	}
	var advs []adv
	b.mu.Lock()
	for p := range b.patternRefs {
		b.advSeq++
		advs = append(advs, adv{p, b.cfg.ID, b.advSeq, 0})
	}
	for peer := range b.peers {
		if peer == to {
			continue
		}
		for pattern, origins := range peer.remotePatterns {
			for origin, ent := range origins {
				seq := b.advApplied[origin][pattern]
				// Advertise our own distance to the origin — the chosen
				// route's cost, or this link's cost if the route table
				// hasn't caught up.
				hops, ok := b.routeCostLocked(pattern, origin)
				if !ok {
					hops = ent.hops + 1
				}
				advs = append(advs, adv{pattern, origin, seq, hops})
			}
		}
	}
	b.mu.Unlock()
	for _, a := range advs {
		to.sendReliable(subAdvEvent(advAdd, a.pattern, a.origin, a.seq, a.hops))
	}
}

// handleAdvertisement applies a peer's subscription advertisement and
// re-propagates it to other peers with the hop count rewritten to this
// broker's own distance to the origin. A same-seq re-arrival via a
// second link (normally suppressed as an already-propagated refresh) is
// still re-propagated when it changed our cheapest cost, so longer
// paths converge without waiting for the next soft-state refresh.
func (b *Broker) handleAdvertisement(from *session, e *event.Event) {
	pattern := e.Headers[hdrPattern]
	origin := e.Headers[hdrOrigin]
	op := advOp(e.Headers[hdrOp])
	seq, err := headerUint(e, hdrSeq)
	if err != nil || pattern == "" || origin == "" {
		return
	}
	hops := 0
	if h, err := headerUint(e, hdrHops); err == nil {
		hops = int(h)
	}
	if origin == b.cfg.ID {
		return // our own advertisement echoed back
	}
	b.mu.Lock()
	applied := b.advApplied[origin]
	if applied == nil {
		applied = make(map[string]uint64)
		b.advApplied[origin] = applied
	}
	if seq < applied[pattern] {
		b.mu.Unlock()
		return
	}
	refresh := seq == applied[pattern] && op == advAdd
	applied[pattern] = seq
	switch op {
	case advAdd:
		origins := from.remotePatterns[pattern]
		if origins == nil {
			origins = make(map[string]advEntry)
			from.remotePatterns[pattern] = origins
		}
		origins[origin] = advEntry{last: time.Now(), hops: hops}
	case advRemove:
		if origins, ok := from.remotePatterns[pattern]; ok {
			delete(origins, origin)
			if len(origins) == 0 {
				delete(from.remotePatterns, pattern)
			}
		}
	default:
		b.mu.Unlock()
		return
	}
	prevCost, hadPrev := b.routeCostLocked(pattern, origin)
	b.recomputePatternRouteLocked(pattern)
	newCost, hasNew := b.routeCostLocked(pattern, origin)
	costChanged := hadPrev != hasNew || prevCost != newCost
	peers := b.peerList(from)
	b.mu.Unlock()
	if refresh && !costChanged {
		return // periodic refresh already propagated once
	}
	adv := subAdvEvent(op, pattern, origin, seq, newCost)
	for _, p := range peers {
		p.sendReliable(adv)
	}
}

// peerList snapshots current peers, excluding one. Callers hold b.mu.
func (b *Broker) peerList(except *session) []*session {
	out := make([]*session, 0, len(b.peers))
	for p := range b.peers {
		if p != except {
			out = append(out, p)
		}
	}
	return out
}

// route delivers an event to matching local sessions and forwards it to
// peers according to the routing mode. from is nil for loopback
// publishes.
//
// This is the event-at-a-time entry to the data-plane hot path: it
// takes no broker-wide lock, and the whole routing policy lives in
// routeOne (shared with the burst path). The event is encoded at most
// twice regardless of fan-out width — once for local sessions and once
// (a one-byte TTL patch on a buffer copy) for peers.
func (b *Broker) route(e *event.Event, from *session) {
	var st routeStats
	b.routeOne(e, from, b.matchFn, b.planFn, deliverDirect, b.recordDirect, nil, &st)
	st.flush(&b.ctr)
}

// routeStats accumulates the data-path counters of one routing pass.
// The burst path keeps one per sweep and flushes it once per burst, so
// concurrent reader goroutines touch the shared counter cache lines a
// handful of times per burst instead of several times per event — one
// of the global hot points that would otherwise serialize multi-core
// ingest.
type routeStats struct {
	routed     uint64
	unroutable uint64
	duplicates uint64
}

// flush adds the accumulated deltas to the shared counters and resets.
func (st *routeStats) flush(ctr *brokerCounters) {
	if st.routed > 0 {
		ctr.eventsRtd.Add(st.routed)
	}
	if st.unroutable > 0 {
		ctr.unroutable.Add(st.unroutable)
	}
	if st.duplicates > 0 {
		ctr.duplicates.Add(st.duplicates)
	}
	*st = routeStats{}
}

// deliverDirect is route's delivery strategy: hand the event to the
// session immediately.
func deliverDirect(t *session, e *event.Event, fs *frameSource) { t.deliver(e, fs) }

// deliverFn hands one resolved delivery to its target. Implementations
// deliver immediately (Broker.route) or stage into a per-session batch
// (routeSweep.routeBatch).
type deliverFn func(t *session, e *event.Event, fs *frameSource)

// planFn resolves the mesh forwarding plan for a concrete topic
// (Broker.planFor, or a per-burst memo of it).
type planFn func(string) *topicPlan

// routeOne is the single implementation of the routing policy —
// duplicate suppression, durable recording, split horizon, per-hop TTL
// decrement, routed (serve-mask) peer forwarding, and the peer-to-peer
// flood — behind both the event-at-a-time and the burst path. Target
// resolution goes through match (the sharded router, or a per-burst
// memo of it), plan resolution through plans, every delivery through
// deliver, and every recorded-pattern hit through rec (immediate
// append, or staged per burst). served is a reusable scratch buffer
// for the flood's already-served peer set; the (possibly grown) buffer
// is returned for reuse.
func (b *Broker) routeOne(e *event.Event, from *session, match func(string) []*session, plans planFn, deliver deliverFn, rec recordFn, served []*session, stats *routeStats) []*session {
	served = served[:0]
	fromPeer := from != nil && from.isPeer
	// Duplicate suppression arms whenever this broker is part of a mesh:
	// peer-originated traffic always, flooding mode always, and — so that a
	// cyclic client-server mesh kills loops at the origin instead of riding
	// TTL to zero — local publishes too once any peer link is up. A
	// standalone broker never pays for the cache lookup.
	if fromPeer || b.cfg.Mode == ModePeerToPeer || b.hasPeers() {
		if b.dedup.seen(e.Key()) {
			stats.duplicates++
			if fromPeer && from.dupCtr != nil {
				from.dupCtr.Inc()
			}
			return served
		}
	}
	targets := match(e.Topic)
	fs := newFrameSource(e)
	// Record after duplicate suppression (a mesh copy must not be logged
	// twice) and before target iteration (an event with zero current
	// subscribers is still history a late joiner replays).
	if b.rec != nil {
		for _, r := range b.rec.match(e.Topic) {
			rec(r, e, fs)
		}
	}
	// Routed mode: resolve the forwarding plan once per event. inMask is
	// the set of origins this copy is responsible for — everything for a
	// local publish or an unmasked (flood-sent) arrival, the carried
	// serve-mask otherwise.
	var plan *topicPlan
	var inMask uint64
	if b.routed && e.TTL > 0 && b.hasPeers() {
		if plan = plans(e.Topic); plan != nil {
			inMask = e.Mask
			if inMask == 0 {
				inMask = ^uint64(0)
			}
		}
	}
	var peerFS *frameSource
	var peerEvent *event.Event
	preparePeer := func() {
		if peerEvent == nil {
			c := *e
			c.TTL--
			peerEvent = &c
			peerFS = fs.derive(c.TTL)
		}
	}
	delivered := 0
	for _, t := range targets {
		if t == from && t.isPeer {
			continue // split horizon: never echo back along the inbound link
		}
		if t.isPeer {
			if e.TTL == 0 {
				continue
			}
			if plan != nil {
				// The copy staged on a chosen link serves exactly the
				// origins assigned to that link — and only those this
				// copy was itself responsible for.
				m := plan.maskFor(t) & inMask
				if m == 0 {
					continue
				}
				if !e.Reliable && !t.creditCharge() {
					continue
				}
				me, mfs := fs.deriveMasked(e.TTL-1, m)
				deliver(t, me, mfs)
			} else {
				if !e.Reliable && !t.creditCharge() {
					continue
				}
				preparePeer()
				deliver(t, peerEvent, peerFS)
			}
			served = append(served, t)
		} else {
			deliver(t, e, fs)
		}
		delivered++
	}
	if b.cfg.Mode == ModePeerToPeer && e.TTL > 0 {
	flood:
		for _, p := range b.peerSnapshot() {
			if p == from {
				continue
			}
			// A peer that advertised a matching pattern was already served
			// above; flooding it again would put the same event on the
			// wire twice.
			for _, d := range served {
				if d == p {
					continue flood
				}
			}
			if !e.Reliable && !p.creditCharge() {
				continue
			}
			preparePeer()
			deliver(p, peerEvent, peerFS)
			delivered++
		}
	}
	stats.routed++
	if delivered == 0 {
		stats.unroutable++
	}
	return served
}

// matchSessions resolves the sessions subscribed to a concrete topic via
// the data-plane router (no broker-wide lock).
func (b *Broker) matchSessions(t string) []*session {
	return b.router.match(t)
}

// Publish injects an event into the broker as if a local client had sent
// it. The event must have Source and ID set for duplicate suppression.
func (b *Broker) Publish(e *event.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if err := topic.ValidateTopic(e.Topic); err != nil {
		return err
	}
	if isControlTopic(e.Topic) {
		return fmt.Errorf("broker: cannot publish to reserved topic %q", e.Topic)
	}
	b.route(e, nil)
	return nil
}

// AcceptConn serves one conn established out-of-band, running the same
// handshake as a listener-accepted connection (client hello or peer
// hello). It returns once the session is attached or rejected.
func (b *Broker) AcceptConn(conn transport.Conn) {
	b.handshake(conn)
}

// ConnectPeer dials url and links this broker to the remote broker.
func (b *Broker) ConnectPeer(url string) error {
	conn, err := transport.Dial(url)
	if err != nil {
		return err
	}
	return b.ConnectPeerConn(conn)
}

// ConnectPeerConn links this broker to a remote broker over an
// established conn. The handshake exchanges broker IDs and advertisement
// snapshots.
func (b *Broker) ConnectPeerConn(conn transport.Conn) error {
	_, err := b.connectPeerConn(conn)
	return err
}

// connectPeerConn runs the dialer side of the peer handshake and returns
// the attached session (mesh supervisors watch its closedCh for link
// loss).
func (b *Broker) connectPeerConn(conn transport.Conn) (*session, error) {
	if err := conn.Send(peerHelloEvent(b.cfg.ID, b.cfg.Mode, b.cfg.MeshID)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("broker: peer hello: %w", err)
	}
	reply, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("broker: waiting for peer hello reply: %w", err)
	}
	// The reply may be tagged reliable; honour its rseq by acking later
	// through the session. Identity is all that matters here.
	if reply.Topic != topicPeer || reply.Headers[hdrID] == "" {
		conn.Close()
		return nil, fmt.Errorf("broker: unexpected first event %q from peer", reply.Topic)
	}
	if remoteMesh := reply.Headers[hdrMesh]; remoteMesh != "" && b.cfg.MeshID != "" && remoteMesh != b.cfg.MeshID {
		conn.Close()
		return nil, fmt.Errorf("broker: peer %s is in mesh %q, not %q",
			reply.Headers[hdrID], remoteMesh, b.cfg.MeshID)
	}
	s, err := b.attach(conn, reply.Headers[hdrID], true, true)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if rseq, tagged, bad := inboundRSeq(reply); tagged && !bad {
		cum, _ := s.acceptReliable(rseq)
		s.queue.pushAck(cum)
	}
	b.replaySalvaged(s)
	b.sendAdvertisementSnapshot(s)
	return s, nil
}

// housekeeping drives reliable retransmission, advertisement refresh and
// per-session gauge refresh.
func (b *Broker) housekeeping() {
	defer b.wg.Done()
	retrans := time.NewTicker(b.cfg.RetransmitInterval)
	defer retrans.Stop()
	refresh := time.NewTicker(b.cfg.AdvRefreshInterval)
	defer refresh.Stop()
	for {
		select {
		case <-b.done:
			return
		case now := <-retrans.C:
			b.mu.RLock()
			sessions := make([]*session, 0, len(b.sessions))
			for s := range b.sessions {
				sessions = append(sessions, s)
			}
			b.mu.RUnlock()
			for _, s := range sessions {
				b.publishSessionGauges(s)
				if s.retransmit(now, b.cfg.RetransmitInterval, b.cfg.MaxRetransmits) {
					s.close()
				}
			}
		case <-refresh.C:
			b.mu.Lock()
			patterns := make([]string, 0, len(b.patternRefs))
			for p := range b.patternRefs {
				patterns = append(patterns, p)
			}
			peers := b.peerList(nil)
			b.mu.Unlock()
			for _, p := range patterns {
				b.advertise(peers, advAdd, p)
			}
			b.pruneStaleAdvertisements()
			b.pruneRelStash()
			b.pruneParked()
			// One dedup generation per refresh tick: sources idle for
			// three ticks (matching the advertisement soft-state horizon)
			// free their 1 KiB windows.
			b.dedup.sweepIdle(3)
			// Durable-log retention and gauges piggyback on the same tick
			// (no broker lock held here; each log takes its own).
			if b.rec != nil {
				b.rec.refresh()
			}
		}
	}
}

// publishSessionGauges refreshes the per-session observability gauges:
// best-effort queue drops and reliable-window occupancy.
func (b *Broker) publishSessionGauges(s *session) {
	reg := b.metrics()
	reg.Gauge("broker.session." + s.id + ".queue_drops").Set(int64(s.queue.dropCount()))
	reg.Gauge("broker.session." + s.id + ".reliable_window").Set(int64(s.unackedLen()))
}

// pruneStaleAdvertisements drops remote patterns that have not been
// refreshed within three refresh intervals (soft-state expiry).
func (b *Broker) pruneStaleAdvertisements() {
	cutoff := time.Now().Add(-3 * b.cfg.AdvRefreshInterval)
	b.mu.Lock()
	defer b.mu.Unlock()
	var changed map[string]struct{}
	for peer := range b.peers {
		for pattern, origins := range peer.remotePatterns {
			pruned := false
			for origin, ent := range origins {
				if ent.last.Before(cutoff) {
					delete(origins, origin)
					pruned = true
				}
			}
			if len(origins) == 0 {
				delete(peer.remotePatterns, pattern)
			}
			if pruned {
				if changed == nil {
					changed = make(map[string]struct{})
				}
				changed[pattern] = struct{}{}
			}
		}
	}
	for pattern := range changed {
		b.recomputePatternRouteLocked(pattern)
	}
}

// pruneRelStash drops salvaged reliable events whose peer never came
// back within the soft-state horizon; by then its advertisements expired
// too, so replaying would route into a topology that no longer exists.
func (b *Broker) pruneRelStash() {
	cutoff := time.Now().Add(-3 * b.cfg.AdvRefreshInterval)
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, stash := range b.relStash {
		if stash.when.Before(cutoff) {
			delete(b.relStash, id)
		}
	}
}

// SessionCount returns the number of attached sessions (clients + peers).
func (b *Broker) SessionCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.sessions)
}

// PeerCount returns the number of attached peer links.
func (b *Broker) PeerCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.peers)
}

// Stop closes all listeners and sessions and waits for every goroutine.
func (b *Broker) Stop() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	listeners := b.listeners
	b.listeners = nil
	sessions := make([]*session, 0, len(b.sessions))
	for s := range b.sessions {
		sessions = append(sessions, s)
	}
	b.mu.Unlock()
	close(b.done)
	for _, l := range listeners {
		l.Close()
	}
	for _, s := range sessions {
		s.stop()
	}
	// Stop the writer pools only after every session stopped: each closed
	// queue has already deposited its final wakeup, so the pools' shutdown
	// drain flushes whatever is still staged (reliable-flush-on-close)
	// before exiting.
	for _, p := range b.pools {
		close(p.done)
	}
	b.wg.Wait()
	if b.rec != nil {
		b.rec.close()
	}
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func parseUint(s string) (uint64, error) { return strconv.ParseUint(s, 10, 64) }
