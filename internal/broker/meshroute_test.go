package broker

import (
	"fmt"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// ringOfBrokers stands up n brokers linked in a dial ring over
// in-process pipes (b[i] -> b[i+1], plus the closing link).
func ringOfBrokers(t *testing.T, n int, prefix string) []*Broker {
	t.Helper()
	brokers := make([]*Broker, n)
	for i := range brokers {
		brokers[i] = newTestBroker(t, fmt.Sprintf("%s%d", prefix, i))
	}
	for i := range brokers {
		linkBrokers(t, brokers[i], brokers[(i+1)%n])
	}
	return brokers
}

// TestMeshRoutedNoFrameToSubscriberlessLink is the spanning-tree
// invariant on a 4-ring: with the only subscriber on broker 1, a flood
// from broker 0 crosses exactly the 0-1 link — no frame is ever staged
// on a link whose downstream subtree has no matching subscription, even
// though every broker advertises a route toward the subscriber.
func TestMeshRoutedNoFrameToSubscriberlessLink(t *testing.T) {
	brokers := ringOfBrokers(t, 4, "rt")

	sub := localClient(t, brokers[1], "rt-sub")
	s, err := sub.Subscribe("/rt/only", 256)
	if err != nil {
		t.Fatal(err)
	}
	// Advertisements reach every broker (hop-cost re-propagation crosses
	// the whole ring).
	for _, b := range brokers {
		b := b
		waitCondition(t, 5*time.Second, "advertisement converges", func() bool {
			return len(b.matchSessions("/rt/only")) == 1
		})
	}

	const n = 50
	pub := localClient(t, brokers[0], "rt-pub")
	for i := 0; i < n; i++ {
		if err := pub.Publish("/rt/only", event.KindChat, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[event.Key]int)
	for len(seen) < n {
		e := recvOne(t, s, 5*time.Second)
		seen[e.Key()]++
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("event %v delivered %d times, want exactly once", k, c)
		}
	}

	// Only broker 0's link to broker 1 carried data. Every other
	// direction — 0->3, and everything out of brokers 1..3 — stays at
	// zero forwarded frames.
	for i, b := range brokers {
		for j := range brokers {
			if i == j {
				continue
			}
			fwd := b.Metrics().Counter(fmt.Sprintf("broker.peer.rt%d.forwarded", j)).Value()
			if i == 0 && j == 1 {
				if fwd < n {
					t.Fatalf("publishing broker forwarded %d frames toward the subscriber, want >= %d", fwd, n)
				}
				continue
			}
			if fwd != 0 {
				t.Fatalf("link rt%d->rt%d carried %d frames; no subscriber downstream, want 0", i, j, fwd)
			}
		}
	}
}

// TestMeshRoutedWithdrawalPrunesRoute: unsubscribing withdraws the
// advertisement, which prunes the routing entry — subsequent publishes
// forward nothing.
func TestMeshRoutedWithdrawalPrunesRoute(t *testing.T) {
	b1 := newTestBroker(t, "wd1")
	b2 := newTestBroker(t, "wd2")
	linkBrokers(t, b1, b2)

	sub := localClient(t, b2, "wd-sub")
	s, err := sub.Subscribe("/wd/t", 64)
	if err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "advertisement applied", func() bool {
		return len(b1.matchSessions("/wd/t")) == 1
	})
	pub := localClient(t, b1, "wd-pub")
	if err := pub.Publish("/wd/t", event.KindChat, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if e := recvOne(t, s, 5*time.Second); string(e.Payload) != "before" {
		t.Fatalf("payload %q", e.Payload)
	}

	if err := s.Cancel(); err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 5*time.Second, "withdrawal pruned the route", func() bool {
		b1.mu.RLock()
		_, routed := b1.meshRoutes["/wd/t"]
		b1.mu.RUnlock()
		return len(b1.matchSessions("/wd/t")) == 0 && !routed
	})

	fwd := b1.Metrics().Counter("broker.peer.wd2.forwarded")
	before := fwd.Value()
	if err := pub.Publish("/wd/t", event.KindChat, []byte("after")); err != nil {
		t.Fatal(err)
	}
	// The publish routes synchronously on the local path; poll briefly to
	// let any (incorrect) forwarding surface.
	time.Sleep(100 * time.Millisecond)
	if got := fwd.Value(); got != before {
		t.Fatalf("withdrawn pattern still forwarded %d frames", got-before)
	}
}

// TestMeshRoutedStagedOncePerBurst is the routed batching contract:
// a burst stages on the chosen next-hop link with ONE queue lock (one
// wakeup), and stages nothing at all on a costlier link advertising the
// same origin.
func TestMeshRoutedStagedOncePerBurst(t *testing.T) {
	b := New(Config{ID: "plan-lock"})
	defer b.Stop()

	near := newSession(b, newCaptureConn(), "plan-near", true)
	far := newSession(b, newCaptureConn(), "plan-far", true)
	near.remotePatterns["/plan/t"] = map[string]advEntry{
		"origin-x": {last: time.Now(), hops: 0},
	}
	far.remotePatterns["/plan/t"] = map[string]advEntry{
		"origin-x": {last: time.Now(), hops: 5},
	}
	b.mu.Lock()
	b.peers[near] = struct{}{}
	b.peers[far] = struct{}{}
	b.refreshPeerSnapLocked()
	b.recomputePatternRouteLocked("/plan/t")
	b.mu.Unlock()

	if plan := b.planFor("/plan/t"); plan == nil || plan.maskFor(near) == 0 || plan.maskFor(far) != 0 {
		t.Fatalf("plan did not choose the cheapest link: %+v", plan)
	}

	const burst = 16
	events := make([]*event.Event, burst)
	for i := range events {
		events[i] = burstEvent(uint64(i+1), "/plan/t")
	}
	sweep := b.newRouteSweep()
	sweep.routeBatch(events, nil)

	if locks := near.queue.pushLockCount(); locks != 1 {
		t.Fatalf("chosen link: %d push lock acquisitions for one burst, want 1", locks)
	}
	if depth := near.queue.depth(); depth != burst {
		t.Fatalf("chosen link: queue depth %d, want %d", depth, burst)
	}
	if locks := far.queue.pushLockCount(); locks != 0 {
		t.Fatalf("costlier link: %d push locks, want 0 (nothing staged)", locks)
	}
	if depth := far.queue.depth(); depth != 0 {
		t.Fatalf("costlier link: queue depth %d, want 0", depth)
	}
}

// TestMeshRoutedRerouteAroundRingReliable: on a supervised 3-ring, the
// direct link to the subscriber's broker dies mid-stream. New reliable
// traffic reroutes through the third broker (promotion is local — the
// alternate path's cost was already known), the salvage replays across
// the healed link, and the subscriber sees all 200 events exactly once.
func TestMeshRoutedRerouteAroundRingReliable(t *testing.T) {
	ids := []string{"rr0", "rr1", "rr2"}
	brokers := make([]*Broker, 3)
	addrs := make([]string, 3)
	for i := range brokers {
		brokers[i] = newTestBroker(t, ids[i])
		l, err := brokers[i].Listen("tcp://127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr()
	}
	for i := range brokers {
		m := NewMesh(brokers[i], fastMeshConfig(addrs[(i+1)%3]))
		t.Cleanup(m.Stop)
	}
	waitCondition(t, 5*time.Second, "ring converges", func() bool {
		for _, b := range brokers {
			if b.PeerCount() != 2 {
				return false
			}
		}
		return true
	})

	// Subscriber on broker 2, publisher on broker 0: the chosen path is
	// the direct 0-2 link.
	sub := localClient(t, brokers[2], "rr-sub")
	s, err := sub.Subscribe("/rr/t", 1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range brokers[:2] {
		b := b
		waitCondition(t, 5*time.Second, "advertisement converges", func() bool {
			return len(b.matchSessions("/rr/t")) == 1
		})
	}

	const half = 100
	pub := localClient(t, brokers[0], "rr-pub")
	for i := 0; i < half; i++ {
		if err := pub.PublishReliable("/rr/t", event.KindChat, []byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	fwd := brokers[0].Metrics().Counter("broker.peer.rr2.forwarded")
	waitCondition(t, 5*time.Second, "first half on the direct link", func() bool {
		return fwd.Value() >= half
	})

	// Cut the direct link. Detach immediately promotes the route via
	// broker 1; in-flight unacked events ride the salvage stash until the
	// supervisor heals the link.
	ps := brokers[0].peerSessionByID("rr2")
	if ps == nil {
		t.Fatal("no direct peer session to kill")
	}
	ps.close()

	for i := 0; i < half; i++ {
		if err := pub.PublishReliable("/rr/t", event.KindChat, []byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	seen := make(map[event.Key]int)
	deadline := time.Now().Add(10 * time.Second)
	for len(seen) < 2*half && time.Now().Before(deadline) {
		if e := tryRecv(s, 100*time.Millisecond); e != nil {
			seen[e.Key()]++
		}
	}
	if len(seen) != 2*half {
		t.Fatalf("subscriber saw %d distinct events, want %d", len(seen), 2*half)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("event %v delivered %d times, want exactly once", k, c)
		}
	}
}
