package broker

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

func deliveryEvent(id uint64, topic string, reliable bool) *event.Event {
	e := event.New(topic, event.KindRTP, []byte("delivery"))
	e.Source = "delivery-pub"
	e.ID = id
	e.Reliable = reliable
	return e
}

// TestDeliverBatchSingleLockSingleWakeup is the client-side batching
// contract in one assertion: delivering a burst of K events to a
// subscription costs ONE ring-lock acquisition and ONE consumer wakeup
// — not K — as counted by the subscription's instrumented mutex and
// wakeup token.
func TestDeliverBatchSingleLockSingleWakeup(t *testing.T) {
	sub := newSubscription(nil, "/burst/t", 64)
	done := make(chan struct{})
	defer close(done)

	const burst = 16
	events := make([]*event.Event, burst)
	for i := range events {
		events[i] = deliveryEvent(uint64(i+1), "/burst/t", false)
	}
	sub.deliverBatch(events, done)

	st := sub.DeliveryStats()
	if st.Bursts != 1 {
		t.Fatalf("one burst cost %d ring lock acquisitions, want 1", st.Bursts)
	}
	if st.Wakeups != 1 {
		t.Fatalf("one burst deposited %d wakeups, want 1", st.Wakeups)
	}
	if st.Events != burst {
		t.Fatalf("admitted %d events, want %d", st.Events, burst)
	}

	// The consumer drains the whole burst under one lock too, in order.
	buf, ok := sub.RecvBatch(nil, burst)
	if !ok || len(buf) != burst {
		t.Fatalf("RecvBatch = %d events, ok=%v; want %d", len(buf), ok, burst)
	}
	for i, e := range buf {
		if e.ID != uint64(i+1) {
			t.Fatalf("event %d has ID %d, want %d (order broken)", i, e.ID, i+1)
		}
	}

	// A second burst costs exactly one more lock and wakeup.
	sub.deliverBatch(events, done)
	if st := sub.DeliveryStats(); st.Bursts != 2 || st.Wakeups != 2 {
		t.Fatalf("after two bursts: %d locks / %d wakeups, want 2 / 2", st.Bursts, st.Wakeups)
	}
}

// fakeBrokerConn is the broker end of a pipe attached to a real Client;
// it lets tests hand the client exact bursts and observe the exact
// reverse-path traffic, with no broker timing in between.
type fakeBrokerRig struct {
	c      *Client
	conn   transport.Conn
	bc     transport.EventBatchConn
	recvCh chan *event.Event
}

func newFakeBrokerRig(t *testing.T, id string) *fakeBrokerRig {
	t.Helper()
	clientEnd, brokerEnd := transport.Pipe("mem:client", "mem:fake-broker")
	c, err := Attach(clientEnd, id)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	// Consume the hello the client sent at attach.
	if first, err := brokerEnd.Recv(); err != nil || first.Topic != topicHello {
		t.Fatalf("expected hello, got %v (err %v)", first, err)
	}
	rig := &fakeBrokerRig{
		c:      c,
		conn:   brokerEnd,
		bc:     brokerEnd.(transport.EventBatchConn),
		recvCh: make(chan *event.Event, 256),
	}
	go func() {
		for {
			e, err := brokerEnd.Recv()
			if err != nil {
				close(rig.recvCh)
				return
			}
			rig.recvCh <- e
		}
	}()
	return rig
}

// addSub registers a subscription on the client directly, skipping the
// control-plane round trip a real broker would run.
func (r *fakeBrokerRig) addSub(t *testing.T, pattern string, depth int) *Subscription {
	t.Helper()
	sub := newSubscription(r.c, pattern, depth)
	r.c.mu.Lock()
	if err := r.c.subs.Add(pattern, sub); err != nil {
		r.c.mu.Unlock()
		t.Fatal(err)
	}
	r.c.subSet[sub] = struct{}{}
	r.c.routeEpoch.Add(1)
	r.c.mu.Unlock()
	return sub
}

// TestClientBurstDispatchOneLockPerSubscription drives a real Client's
// read loop with one wire burst fanning out to multiple subscriptions
// and asserts the end-to-end contract: each subscription is locked and
// woken exactly once for the whole burst.
func TestClientBurstDispatchOneLockPerSubscription(t *testing.T) {
	rig := newFakeBrokerRig(t, "burst-client")
	subA := rig.addSub(t, "/burst/#", 512)
	subB := rig.addSub(t, "/burst/a", 512)

	const burst = 64
	events := make([]*event.Event, burst)
	for i := range events {
		topic := "/burst/a"
		if i%2 == 1 {
			topic = "/burst/b"
		}
		events[i] = deliveryEvent(uint64(i+1), topic, false)
	}
	if err := rig.bc.SendEvents(events); err != nil {
		t.Fatal(err)
	}

	// subA matches all 64, subB the 32 events on /burst/a.
	bufA, ok := subA.RecvBatch(nil, burst)
	if !ok || len(bufA) != burst {
		t.Fatalf("subA got %d events (ok=%v), want %d", len(bufA), ok, burst)
	}
	for i, e := range bufA {
		if e.ID != uint64(i+1) {
			t.Fatalf("subA event %d has ID %d, want %d (cross-topic order broken)", i, e.ID, i+1)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	var bufB []*event.Event
	for len(bufB) < burst/2 && time.Now().Before(deadline) {
		var got bool
		bufB, got = subB.TryRecvBatch(bufB, burst)
		if !got {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(bufB) != burst/2 {
		t.Fatalf("subB got %d events, want %d", len(bufB), burst/2)
	}
	prev := uint64(0)
	for _, e := range bufB {
		if e.ID <= prev {
			t.Fatalf("subB order broken: %d after %d", e.ID, prev)
		}
		prev = e.ID
	}

	if st := subA.DeliveryStats(); st.Bursts != 1 || st.Wakeups != 1 {
		t.Fatalf("subA: %d locks / %d wakeups for one wire burst, want 1 / 1", st.Bursts, st.Wakeups)
	}
	if st := subB.DeliveryStats(); st.Bursts != 1 || st.Wakeups != 1 {
		t.Fatalf("subB: %d locks / %d wakeups for one wire burst, want 1 / 1", st.Bursts, st.Wakeups)
	}
}

// TestStageSlotClobberRecovery: two sweeps interleaving stage calls on
// the same target session (the concurrent-publisher topology) keep the
// one-lock-per-burst-per-session contract — a clobbered staging slot
// falls back to the per-sweep map instead of staging the session twice.
func TestStageSlotClobberRecovery(t *testing.T) {
	b := New(Config{ID: "clobber"})
	defer b.Stop()
	target := newSession(b, newCaptureConn(), "clobber-sub", false)
	if err := b.router.add("/cl/t", target); err != nil {
		t.Fatal(err)
	}
	s1 := b.newRouteSweep()
	s2 := b.newRouteSweep()
	// Interleave: each stage call overwrites the shared stageSlot, so
	// every subsequent stage on the other sweep takes the recovery path.
	for i := 0; i < 8; i++ {
		s1.stage(target, outItem{e: deliveryEvent(uint64(100+i), "/cl/t", false)})
		s2.stage(target, outItem{e: deliveryEvent(uint64(200+i), "/cl/t", false)})
	}
	s1.finish()
	s2.finish()
	if locks := target.queue.pushLockCount(); locks != 2 {
		t.Fatalf("two interleaved sweeps cost %d queue locks, want 2 (one per sweep)", locks)
	}
	if depth := target.queue.depth(); depth != 16 {
		t.Fatalf("queue depth %d, want 16", depth)
	}
}

// TestConcurrentSweepsThroughWriterPool drives four concurrent
// publisher bursts — each on its own reader-goroutine routeSweep — at
// the same subscriber set through the full sweep→queue→writer-pool
// path to real in-process conns, while a churner bumps the topic
// shard's epoch so the sweep-private route caches keep revalidating
// (run under -race in CI). Conservation is the oracle: concurrent
// sweeps may clobber each other's staging slots and race the epoch
// caches, but every staged event must be received exactly once or
// counted as a queue drop.
func TestConcurrentSweepsThroughWriterPool(t *testing.T) {
	b := New(Config{ID: "conc-sweep", QueueDepth: 8192})
	defer b.Stop()
	if len(b.pools) == 0 {
		t.Fatal("expected writer pools under the default config")
	}

	const subscribers = 4
	const publishers = 4
	const rounds = 24
	const burst = 48

	var received [subscribers]atomic.Uint64
	for i := 0; i < subscribers; i++ {
		brokerEnd, clientEnd := transport.Pipe("broker", fmt.Sprintf("conc-sub-%d", i))
		defer brokerEnd.Close()
		defer clientEnd.Close()
		s := newSession(b, brokerEnd, fmt.Sprintf("conc-sub-%d", i), false)
		s.bindPool(b.pools[i%len(b.pools)])
		if err := b.router.add("/conc/t", s); err != nil {
			t.Fatal(err)
		}
		go func(i int, c transport.Conn) {
			for {
				if _, err := c.Recv(); err != nil {
					return
				}
				received[i].Add(1)
			}
		}(i, clientEnd)
	}

	// Epoch churn on the shared routing state throughout the run.
	churnStop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		churn := newSession(b, newCaptureConn(), "conc-churn", false)
		churn.bindPool(b.pools[0])
		for {
			select {
			case <-churnStop:
				return
			default:
			}
			if err := b.router.add("/conc/churn", churn); err != nil {
				return
			}
			b.router.remove("/conc/churn", churn)
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sweep := b.newRouteSweep()
			events := make([]*event.Event, burst)
			for r := 0; r < rounds; r++ {
				for i := range events {
					events[i] = deliveryEvent(uint64(p+1)<<32|uint64(r*burst+i+1), "/conc/t", false)
				}
				sweep.routeBatch(events, nil)
			}
		}(p)
	}
	wg.Wait()
	close(churnStop)
	churnWG.Wait()

	const staged = subscribers * publishers * rounds * burst
	tally := func() uint64 {
		sum := b.ctr.queueDrops.Value()
		for i := range received {
			sum += received[i].Load()
		}
		return sum
	}
	waitFor(t, 10*time.Second, func() bool { return tally() == staged },
		"concurrent sweeps lost or duplicated deliveries")
	var drained uint64
	for _, st := range b.WriterPoolStats() {
		drained += st.Drained
	}
	if drained == 0 {
		t.Fatal("no events drained through the writer pools")
	}
}

// TestCoalescedAckPerBurst: a burst of rseq-tagged reliable events
// produces exactly ONE cumulative ack on the reverse path — carrying
// the final floor — instead of one ack per event.
func TestCoalescedAckPerBurst(t *testing.T) {
	rig := newFakeBrokerRig(t, "ack-client")
	sub := rig.addSub(t, "/ack/t", 64)

	const burst = 32
	events := make([]*event.Event, burst)
	for i := range events {
		e := deliveryEvent(uint64(i+1), "/ack/t", true)
		e.RSeq = uint64(i + 1)
		events[i] = e
	}
	if err := rig.bc.SendEvents(events); err != nil {
		t.Fatal(err)
	}

	// Exactly one ack, with the cumulative floor of the whole burst.
	select {
	case ack := <-rig.recvCh:
		if ack.Topic != topicAck {
			t.Fatalf("reverse path carried %q, want ack", ack.Topic)
		}
		if got := ack.Headers[hdrRSeq]; got != "32" {
			t.Fatalf("cumulative ack = %s, want 32", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no ack for a reliable burst")
	}
	select {
	case extra := <-rig.recvCh:
		t.Fatalf("second reverse-path event %v; want one coalesced ack per burst", extra)
	case <-time.After(100 * time.Millisecond):
	}
	if n := rig.c.AckSends(); n != 1 {
		t.Fatalf("client counted %d ack sends for one burst, want 1", n)
	}

	// All events delivered, in order, none dropped (they are reliable).
	buf, ok := sub.RecvBatch(nil, burst)
	if !ok || len(buf) != burst {
		t.Fatalf("delivered %d/%d reliable events", len(buf), burst)
	}
	for i, e := range buf {
		if e.ID != uint64(i+1) || e.RSeq != 0 {
			t.Fatalf("event %d: ID %d RSeq %d; want ID %d with the tag stripped", i, e.ID, e.RSeq, i+1)
		}
	}
	if sub.Drops() != 0 {
		t.Fatalf("reliable burst recorded %d drops", sub.Drops())
	}
}

// TestPerEventDispatchAblation: SetDispatchBurst(1) degenerates the
// client to event-at-a-time delivery — one lock, one wakeup, one ack
// per event — the measured baseline configuration.
func TestPerEventDispatchAblation(t *testing.T) {
	rig := newFakeBrokerRig(t, "ablation-client")
	rig.c.SetDispatchBurst(1)
	sub := rig.addSub(t, "/abl/t", 64)

	const burst = 8
	events := make([]*event.Event, burst)
	for i := range events {
		e := deliveryEvent(uint64(i+1), "/abl/t", true)
		e.RSeq = uint64(i + 1)
		events[i] = e
	}
	if err := rig.bc.SendEvents(events); err != nil {
		t.Fatal(err)
	}
	buf, ok := sub.RecvBatch(nil, burst)
	for ok && len(buf) < burst {
		buf, ok = sub.RecvBatch(buf, burst-len(buf))
	}
	if len(buf) != burst {
		t.Fatalf("delivered %d/%d", len(buf), burst)
	}
	if st := sub.DeliveryStats(); st.Bursts != burst {
		t.Fatalf("ablation delivered %d events in %d bursts, want one burst per event", burst, st.Bursts)
	}
	// Per-event acks: one per tagged event.
	deadline := time.Now().Add(2 * time.Second)
	for rig.c.AckSends() < burst && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := rig.c.AckSends(); n != burst {
		t.Fatalf("ablation sent %d acks for %d events, want one per event", n, burst)
	}
}

// TestReliableNeverDroppedFromRing: best-effort overflow evicts only
// best-effort entries; reliable events survive any flood. A reliable
// event arriving at a full ring parks (the producer keeps going), and
// only once ring AND park are full does the producer block until the
// consumer frees space — nothing reliable is ever dropped.
func TestReliableNeverDroppedFromRing(t *testing.T) {
	sub := newSubscription(nil, "/rel/t", 4)
	done := make(chan struct{})
	defer close(done)

	// Fill the ring with one reliable event ahead of best-effort
	// traffic, then flood it: every eviction must skip the reliable
	// entry.
	sub.deliverBatch([]*event.Event{
		deliveryEvent(1, "/rel/t", true),
		deliveryEvent(2, "/rel/t", false),
		deliveryEvent(3, "/rel/t", false),
		deliveryEvent(4, "/rel/t", false),
	}, done)
	flood := make([]*event.Event, 6)
	for i := range flood {
		flood[i] = deliveryEvent(uint64(5+i), "/rel/t", false)
	}
	sub.deliverBatch(flood, done)

	buf, _ := sub.TryRecvBatch(nil, 64)
	want := []uint64{1, 8, 9, 10} // the reliable head survived, oldest best-effort evicted
	if len(buf) != len(want) {
		t.Fatalf("ring holds %d events, want %d", len(buf), len(want))
	}
	for i, e := range buf {
		if e.ID != want[i] {
			t.Fatalf("ring slot %d has ID %d, want %d", i, e.ID, want[i])
		}
	}
	if !buf[0].Reliable {
		t.Fatal("reliable event was evicted by a best-effort flood")
	}
	if got := len(buf) + int(sub.Drops()); got != 10 {
		t.Fatalf("conservation broken: %d received + %d dropped != 10", len(buf), sub.Drops())
	}

	// Fill the ring with reliable events: the next reliable burst parks
	// (the caller — the client readLoop — must not block while park
	// space remains), and only a reliable event past ring+park capacity
	// blocks the producer. Nothing drops in either regime.
	fill := make([]*event.Event, 4)
	for i := range fill {
		fill[i] = deliveryEvent(uint64(100+i), "/rel/t", true)
	}
	sub.deliverBatch(fill, done)
	parkFill := make([]*event.Event, 4) // park bound = ring depth = 4
	for i := range parkFill {
		parkFill[i] = deliveryEvent(uint64(200+i), "/rel/t", true)
	}
	overflowDone := make(chan struct{})
	go func() {
		sub.deliverBatch(parkFill, done)
		close(overflowDone)
	}()
	select {
	case <-overflowDone:
	case <-time.After(2 * time.Second):
		t.Fatal("reliable overflow blocked the producer while park space remained")
	}
	if st := sub.DeliveryStats(); st.ParkedEvents != 4 {
		t.Fatalf("parked %d events, want 4 (stats %+v)", st.ParkedEvents, st)
	}
	blocked := make(chan struct{})
	go func() {
		sub.deliverBatch([]*event.Event{deliveryEvent(300, "/rel/t", true)}, done)
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("reliable delivery did not block on a full ring+park")
	case <-time.After(50 * time.Millisecond):
	}
	drained, _ := sub.TryRecvBatch(nil, 2)
	if len(drained) != 2 {
		t.Fatalf("drained %d, want 2", len(drained))
	}
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("reliable delivery still blocked after space was freed")
	}
	total := drained
	deadline := time.Now().Add(5 * time.Second)
	for len(total) < 9 {
		if time.Now().After(deadline) {
			t.Fatalf("drained %d/9 backpressured events before timeout", len(total))
		}
		rest, ok := sub.TryRecvBatch(nil, 16)
		if !ok {
			t.Fatal("subscription closed while draining backpressured traffic")
		}
		total = append(total, rest...)
		if len(rest) == 0 {
			time.Sleep(time.Millisecond) // park drainer still moving events
		}
	}
	if len(total) != 9 {
		t.Fatalf("reliable backpressure delivered %d/9 events", len(total))
	}
	for i, e := range total {
		var want uint64
		switch {
		case i < 4:
			want = uint64(100 + i)
		case i < 8:
			want = uint64(200 + i - 4)
		default:
			want = 300
		}
		if e.ID != want {
			t.Fatalf("event %d has ID %d, want %d", i, e.ID, want)
		}
	}
	if sub.Drops() != 6 { // only the best-effort evictions from the first flood
		t.Fatalf("drops = %d, want 6", sub.Drops())
	}
}

// TestDeliveryDropConservation: under a sustained overload flood with a
// concurrent consumer, every event is either received or counted as
// dropped — exactly once. Run with -race this also hammers the
// producer/consumer ring paths.
func TestDeliveryDropConservation(t *testing.T) {
	sub := newSubscription(nil, "/cons/t", 8)
	done := make(chan struct{})
	defer close(done)

	const total = 5000
	var received int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]*event.Event, 0, 64)
		for {
			var ok bool
			buf, ok = sub.RecvBatch(buf[:0], 64)
			received += len(buf)
			if !ok {
				return
			}
		}
	}()

	batch := make([]*event.Event, 0, 32)
	i := 1
	for i <= total {
		batch = batch[:0]
		for ; i <= total && len(batch) < 32; i++ {
			batch = append(batch, deliveryEvent(uint64(i), "/cons/t", false))
		}
		sub.deliverBatch(batch, done)
	}
	// Close the ring: buffered events are still drained before the
	// consumer observes closure, and drops are final once deliverBatch
	// returned.
	sub.closeRing()
	wg.Wait()

	if got := received + int(sub.Drops()); got != total {
		t.Fatalf("conservation broken: %d received + %d dropped = %d, want %d",
			received, sub.Drops(), got, total)
	}
}

// TestSubscriptionCloseDuringBurst: cancelling a subscription (and
// tearing down the client) while bursts are in flight never panics,
// deadlocks, or leaks a blocked producer. Run under -race in CI.
func TestSubscriptionCloseDuringBurst(t *testing.T) {
	for round := 0; round < 50; round++ {
		sub := newSubscription(nil, "/close/t", 8)
		done := make(chan struct{})
		burst := make([]*event.Event, 16)
		for i := range burst {
			// Mix reliable events in so close must also unblock a
			// producer waiting on ring space.
			burst[i] = deliveryEvent(uint64(i+1), "/close/t", i%3 == 0)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sub.deliverBatch(burst, done)
			}
		}()
		go func() {
			defer wg.Done()
			buf := make([]*event.Event, 0, 8)
			for i := 0; i < 5; i++ {
				var ok bool
				buf, ok = sub.TryRecvBatch(buf[:0], 8)
				if !ok {
					return
				}
			}
		}()
		sub.closeRing()
		close(done)
		wg.Wait()
	}
}

// TestCompatChannelAfterBatchedDelivery: the C() facade still delivers
// batched traffic per event, in order, and closes on cancel — the
// compatibility contract legacy consumers (gateways, tools, tests)
// rely on.
func TestCompatChannelAfterBatchedDelivery(t *testing.T) {
	b := New(Config{ID: "compat"})
	defer b.Stop()
	sub, err := b.LocalClient("compat-sub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	s, err := sub.Subscribe("/compat/t", 64)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := b.LocalClient("compat-pub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const n = 40
	for i := 1; i <= n; i++ {
		if err := pub.Publish("/compat/t", event.KindData, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	timeout := time.After(5 * time.Second)
	for i := 1; i <= n; i++ {
		select {
		case e := <-s.C():
			if int(e.Payload[0]) != i {
				t.Fatalf("event %d carried %d (order broken)", i, e.Payload[0])
			}
		case <-timeout:
			t.Fatalf("only %d/%d events through the compat channel", i-1, n)
		}
	}
	if err := sub.Unsubscribe(s); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-s.C():
		if ok {
			t.Fatal("compat channel delivered after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("compat channel not closed after unsubscribe")
	}
}

// TestCoalescedAcksLossLink: reliable delivery over a lossy framed link
// still converges to exactly-once delivery with coalesced acks — the
// retransmit machinery is not regressed by sending one cumulative ack
// per burst, and the ack traffic stays bounded by what arrived.
func TestCoalescedAcksLossLink(t *testing.T) {
	b := New(Config{
		ID:                 "ack-loss",
		RetransmitInterval: 20 * time.Millisecond,
		MaxRetransmits:     100,
	})
	defer b.Stop()
	inner, err := transport.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.Serve(&lossyListener{Listener: inner, profile: transport.LinkProfile{Loss: 0.25, Seed: 7}})

	c, err := Dial(inner.Addr(), "ack-loss-client")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe("/ackloss/t", 256)
	if err != nil {
		t.Fatal(err)
	}

	const n = 60
	for i := 1; i <= n; i++ {
		e := event.New("/ackloss/t", event.KindControl, []byte("r"))
		e.Reliable = true
		e.Source = "ack-loss-pub"
		e.ID = uint64(i)
		if err := b.Publish(e); err != nil {
			t.Fatal(err)
		}
	}

	seen := make(map[uint64]int)
	buf := make([]*event.Event, 0, 64)
	deadline := time.Now().Add(20 * time.Second)
	for len(seen) < n && time.Now().Before(deadline) {
		var ok bool
		buf, ok = sub.RecvBatch(buf[:0], 64)
		for _, e := range buf {
			seen[e.ID]++
		}
		clear(buf)
		if !ok {
			break
		}
	}
	if len(seen) != n {
		t.Fatalf("only %d/%d reliable events arrived over the lossy link", len(seen), n)
	}
	for id, count := range seen {
		if count != 1 {
			t.Fatalf("event %d delivered %d times, want exactly once", id, count)
		}
	}
	retrans := b.Metrics().Counter("broker.retransmits").Value()
	if retrans == 0 {
		t.Fatal("no retransmissions on a 25%-loss link")
	}
	acks := c.AckSends()
	if acks == 0 {
		t.Fatal("client sent no acks")
	}
	// Every ack is triggered by at least one tagged arrival; arrivals
	// are bounded by original sends plus retransmissions. Coalescing can
	// only push the count below this.
	if acks > uint64(n)+retrans {
		t.Fatalf("%d acks for at most %d tagged arrivals", acks, uint64(n)+retrans)
	}
	if got := b.Metrics().Counter("broker.acks_in").Value(); got == 0 {
		t.Fatal("broker recorded no inbound acks")
	}
}
