// Package broker implements the NaradaBrokering-substitute messaging
// middleware of Global-MMCS: topic-based publish/subscribe brokers that
// can be linked into a distributed network, carrying best-effort media
// events and reliable signalling events over any transport.Conn.
//
// Routing operates in one of two modes, mirroring the paper's
// "client-server like JMS" and "distributed JXTA-like peer-to-peer"
// descriptions:
//
//   - ModeClientServer: brokers exchange subscription advertisements and
//     forward events only along links with matching downstream interest.
//   - ModePeerToPeer: brokers flood events to all peers, bounded by TTL
//     and suppressed by a duplicate cache.
package broker

import (
	"fmt"
	"strconv"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// Control topics. The "/_nb" prefix is reserved; client subscriptions to
// it are rejected.
const (
	controlPrefix = "/_nb"

	topicHello  = "/_nb/hello"  // first event on any conn: identify client
	topicPeer   = "/_nb/peer"   // first event on a broker-broker link
	topicSub    = "/_nb/sub"    // subscribe request
	topicUnsub  = "/_nb/unsub"  // unsubscribe request
	topicAck    = "/_nb/ack"    // cumulative reliable ack
	topicSubAdv = "/_nb/subadv" // broker-broker subscription advertisement
	topicPing   = "/_nb/ping"   // keepalive
	topicPeerHB = "/_nb/peerhb" // mesh-link heartbeat (partition detection)
	topicCredit = "/_nb/credit" // mesh-link flow-control consumption grant

	topicReplay     = "/_nb/replay"  // durable-log replay control (start/stop/ok/err/live)
	topicReplayData = "/_nb/repdata" // durable-log replay data envelope
	topicGoaway     = "/_nb/goaway"  // broker drain notice: redial another broker
)

// Control headers.
const (
	hdrID      = "id"      // client or broker identity
	hdrPattern = "pattern" // subscription pattern
	hdrProfile = "profile" // "reliable" or "besteffort"
	hdrOp      = "op"      // "add" or "remove" for advertisements
	hdrOrigin  = "origin"  // originating broker of an advertisement
	hdrSeq     = "seq"     // advertisement sequence number
	hdrRSeq    = "rseq"    // reliable delivery sequence number
	hdrMode    = "mode"    // routing mode carried on peer hello
	hdrMesh    = "mesh"    // mesh identity carried on peer hello
	hdrHops    = "hops"    // advertiser's hop distance to the origin broker
	hdrReplay  = "replay"  // replay stream id (client-chosen token)
	hdrFrom    = "from"    // replay start sequence ("0" = from earliest)
	hdrError   = "error"   // human-readable error detail on replay replies
	hdrToken   = "token"   // session resume token (hello/welcome exchange)
)

// Profile selects the delivery guarantees of a subscription.
type Profile uint8

// Delivery profiles. Enums start at 1 so the zero value is invalid.
const (
	// BestEffort delivery may drop events under backpressure (media).
	BestEffort Profile = iota + 1
	// Reliable delivery acknowledges and retransmits events (signalling).
	Reliable
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case BestEffort:
		return "besteffort"
	case Reliable:
		return "reliable"
	default:
		return fmt.Sprintf("profile(%d)", uint8(p))
	}
}

func parseProfile(s string) (Profile, error) {
	switch s {
	case "besteffort", "":
		return BestEffort, nil
	case "reliable":
		return Reliable, nil
	default:
		return 0, fmt.Errorf("broker: unknown profile %q", s)
	}
}

// isControlTopic reports whether t belongs to the reserved namespace.
func isControlTopic(t string) bool {
	return len(t) >= len(controlPrefix) && t[:len(controlPrefix)] == controlPrefix
}

func helloEvent(id string) *event.Event {
	e := event.New(topicHello, event.KindControl, nil)
	e.Headers = map[string]string{hdrID: id}
	return e
}

// Resume handshake operations carried in hdrOp on topicHello events. A
// plain hello (no op) opens a fresh session; a redialing client sends
// opResume with the token minted at its previous attach. The broker
// answers every hello on a linger-enabled broker: opWelcome (fresh
// session, token minted), opResumed (parked session reattached, new
// token minted), or opRejected (token unknown/expired — the conn was
// attached as a fresh session and the client must resubscribe from
// scratch). Replies ride the best-effort lane unsequenced: they must
// not consume a reliable rseq, which belongs to the resumed window.
const (
	opResume   = "resume"
	opWelcome  = "welcome"
	opResumed  = "resumed"
	opRejected = "rejected"
)

// resumeHelloEvent is the redial form of the client hello, presenting
// the resume token of a (hopefully still parked) previous session.
func resumeHelloEvent(id, token string) *event.Event {
	e := event.New(topicHello, event.KindControl, nil)
	e.Headers = map[string]string{hdrID: id, hdrOp: opResume, hdrToken: token}
	return e
}

// welcomeEvent is the broker's hello reply: op is opWelcome, opResumed
// or opRejected, and token (possibly empty when session linger is
// disabled) is what the client must present on its next redial.
func welcomeEvent(op, token string) *event.Event {
	e := event.New(topicHello, event.KindControl, nil)
	e.Headers = map[string]string{hdrOp: op}
	if token != "" {
		e.Headers[hdrToken] = token
	}
	return e
}

// goawayEvent is the drain notice: the broker stops accepting and asks
// resilient clients to redial another broker. It rides the reliable
// lane so a draining broker retransmits it until acknowledged.
func goawayEvent() *event.Event {
	e := event.New(topicGoaway, event.KindControl, nil)
	e.Reliable = true
	return e
}

func peerHelloEvent(id string, mode Mode, meshID string) *event.Event {
	e := event.New(topicPeer, event.KindControl, nil)
	e.Headers = map[string]string{hdrID: id, hdrMode: strconv.Itoa(int(mode))}
	if meshID != "" {
		e.Headers[hdrMesh] = meshID
	}
	return e
}

// Heartbeat operations carried in hdrOp on topicPeerHB events.
const (
	hbPing = "ping"
	hbPong = "pong"
)

func peerHeartbeatEvent(op string) *event.Event {
	e := event.New(topicPeerHB, event.KindControl, nil)
	e.Headers = map[string]string{hdrOp: op}
	return e
}

func subEvent(pattern string, profile Profile) *event.Event {
	e := event.New(topicSub, event.KindControl, nil)
	e.Headers = map[string]string{hdrPattern: pattern, hdrProfile: profile.String()}
	return e
}

func unsubEvent(pattern string) *event.Event {
	e := event.New(topicUnsub, event.KindControl, nil)
	e.Headers = map[string]string{hdrPattern: pattern}
	return e
}

func ackEvent(cum uint64) *event.Event {
	e := event.New(topicAck, event.KindControl, nil)
	e.Headers = map[string]string{hdrRSeq: strconv.FormatUint(cum, 10)}
	return e
}

// advOp is the operation carried by a subscription advertisement.
type advOp string

const (
	advAdd    advOp = "add"
	advRemove advOp = "remove"
)

// subAdvEvent builds a subscription advertisement. hops is the sender's
// own hop distance to the origin broker (0 when the sender is the
// origin); receivers cost the pattern at hops+1 via the link it arrived
// on, which is what routed forwarding's cheapest-next-hop tables are
// built from.
func subAdvEvent(op advOp, pattern, origin string, seq uint64, hops int) *event.Event {
	e := event.New(topicSubAdv, event.KindControl, nil)
	e.Headers = map[string]string{
		hdrOp:      string(op),
		hdrPattern: pattern,
		hdrOrigin:  origin,
		hdrSeq:     strconv.FormatUint(seq, 10),
		hdrHops:    strconv.Itoa(hops),
	}
	return e
}

// creditEvent builds a flow-control grant carrying the receiver's
// cumulative count of consumed best-effort data events for this link.
// The sender subtracts it from its staged count to size the in-flight
// window (see session.creditAdmit).
func creditEvent(cum uint64) *event.Event {
	e := event.New(topicCredit, event.KindControl, nil)
	e.Headers = map[string]string{hdrSeq: strconv.FormatUint(cum, 10)}
	return e
}

// Replay operations carried in hdrOp on topicReplay events. The client
// sends start/stop requests; the broker replies ok (cursor opened),
// err (no such recorded pattern, duplicate id, cursor failure) and
// live (history drained, the stream handed off to tail delivery).
const (
	repStart = "start"
	repStop  = "stop"
	repOK    = "ok"
	repErr   = "err"
	repLive  = "live"
)

// replayStartEvent asks the broker to open a replay of the recorded
// pattern from sequence from (0 = earliest), delivered under the
// client-chosen stream id.
func replayStartEvent(pattern string, from, id uint64) *event.Event {
	e := event.New(topicReplay, event.KindControl, nil)
	e.Headers = map[string]string{
		hdrOp:      repStart,
		hdrPattern: pattern,
		hdrFrom:    strconv.FormatUint(from, 10),
		hdrReplay:  strconv.FormatUint(id, 10),
	}
	return e
}

// replayStopEvent ends the replay stream id.
func replayStopEvent(id uint64) *event.Event {
	e := event.New(topicReplay, event.KindControl, nil)
	e.Headers = map[string]string{hdrOp: repStop, hdrReplay: strconv.FormatUint(id, 10)}
	return e
}

// replayReplyEvent is a broker→client replay control reply (ok, err or
// live), sent on the reliable lane so stream lifecycle transitions are
// never dropped.
func replayReplyEvent(op string, id uint64, detail string) *event.Event {
	e := event.New(topicReplay, event.KindControl, nil)
	e.Reliable = true
	e.Headers = map[string]string{hdrOp: op, hdrReplay: strconv.FormatUint(id, 10)}
	if detail != "" {
		e.Headers[hdrError] = detail
	}
	return e
}

// replayDataEvent is one replay data envelope: its payload is a run of
// topiclog-framed records (seq, length, CRC, encoded event), one
// envelope per pump batch so the burst amortization the live plane
// gets from frames is preserved on the replay path. Envelopes ride the
// reliable lane: broker-side they are never shed, FIFO order holds
// through the cursor→tail handoff, and the client re-verifies each
// record's CRC when unpacking.
func replayDataEvent(id uint64, payload []byte) *event.Event {
	e := event.New(topicReplayData, event.KindControl, payload)
	e.Reliable = true
	e.Headers = map[string]string{hdrReplay: strconv.FormatUint(id, 10)}
	return e
}

func headerUint(e *event.Event, key string) (uint64, error) {
	s, ok := e.Headers[key]
	if !ok {
		return 0, fmt.Errorf("broker: missing %q header on %s", key, e.Topic)
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("broker: bad %q header: %w", key, err)
	}
	return v, nil
}
