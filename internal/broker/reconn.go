package broker

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// ResilientConfig parameterises DialResilient.
type ResilientConfig struct {
	// URLs are the broker endpoints, tried round-robin: the initial dial
	// walks them in order, a GOAWAY drain notice rotates to the next one,
	// and redial failures advance past dead brokers.
	URLs []string
	// ID is the client identity (required).
	ID string
	// RedialMin / RedialMax bound the reconnect backoff, which doubles
	// from min to max with jitter — the same ladder mesh peer links use.
	// Defaults 100ms / 5s.
	RedialMin time.Duration
	RedialMax time.Duration
	// PublishBuffer bounds how many publishes are buffered while the
	// link is down, flushed in order after the reconnect. 0 defaults to
	// 256; negative disables buffering — publishes during an outage then
	// fail fast with ErrConnLost.
	PublishBuffer int
	// OnState, when non-nil, observes every connection-state edge. It is
	// called from client goroutines and must not block.
	OnState func(ConnState)
	// Dial overrides the conn factory (fault-injection tests wrap conns
	// here). Default transport.Dial.
	Dial func(url string) (transport.Conn, error)
}

func (cfg ResilientConfig) withDefaults() ResilientConfig {
	if cfg.RedialMin <= 0 {
		cfg.RedialMin = 100 * time.Millisecond
	}
	if cfg.RedialMax <= 0 {
		cfg.RedialMax = 5 * time.Second
	}
	if cfg.PublishBuffer == 0 {
		cfg.PublishBuffer = 256
	}
	if cfg.PublishBuffer < 0 {
		cfg.PublishBuffer = 0
	}
	if cfg.Dial == nil {
		cfg.Dial = transport.Dial
	}
	return cfg
}

// resilientState is a Client's resilience plane: the redial config, the
// supervisor kick channel, the URL rotation cursor and the outage
// publish buffer.
type resilientState struct {
	cfg  ResilientConfig
	kick chan struct{}

	mu     sync.Mutex
	urlIdx int
	buf    []*event.Event
}

// buffer queues a publish for the post-reconnect flush, reporting false
// when buffering is disabled or the bound is hit.
func (r *resilientState) buffer(e *event.Event) bool {
	if r.cfg.PublishBuffer <= 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) >= r.cfg.PublishBuffer {
		return false
	}
	r.buf = append(r.buf, e)
	return true
}

// flush drains the outage buffer onto the (re-established) conn in
// order. Errors are dropped: a conn dying mid-flush re-buffers nothing
// — the events were accepted as best-effort-once the moment they were
// buffered.
func (r *resilientState) flush(c *Client) {
	r.mu.Lock()
	buf := r.buf
	r.buf = nil
	r.mu.Unlock()
	for _, e := range buf {
		if c.send(e) != nil {
			return
		}
	}
}

// advanceURL rotates the redial cursor to the next configured URL.
func (r *resilientState) advanceURL() {
	r.mu.Lock()
	r.urlIdx++
	r.mu.Unlock()
}

// nextURL returns the redial cursor's current URL.
func (r *resilientState) nextURL() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.URLs[r.urlIdx%len(r.cfg.URLs)]
}

// DialResilient connects a client that survives conn loss: a supervised
// redial loop (exponential backoff + jitter over the configured URLs)
// re-establishes the link, presents the session resume token, and — on
// a successful resume — continues exactly where the dead conn left off:
// subscriptions intact, the broker's unacked reliable window replayed
// at original rseqs, replay streams restarted from the last delivered
// record. When the broker refuses the token (linger expired, broker
// restarted, drain) the client transparently rebuilds its subscription
// set on the fresh session instead. Subscription rings survive every
// transition; consumers only observe delivery gaps on the best-effort
// lane.
func DialResilient(cfg ResilientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.ID == "" {
		return nil, errors.New("broker: client id must not be empty")
	}
	if len(cfg.URLs) == 0 {
		return nil, errors.New("broker: no broker URLs")
	}
	var conn transport.Conn
	var err error
	idx := 0
	for i, u := range cfg.URLs {
		if conn, err = cfg.Dial(u); err == nil {
			idx = i
			break
		}
	}
	if conn == nil {
		return nil, fmt.Errorf("broker: dialing %d broker(s): %w", len(cfg.URLs), err)
	}
	if err := conn.Send(helloEvent(cfg.ID)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("broker: hello: %w", err)
	}
	c := newClient(cfg.ID, conn)
	c.res = &resilientState{cfg: cfg, kick: make(chan struct{}, 1), urlIdx: idx}
	c.setState(StateConnected)
	c.wg.Add(2)
	go c.readLoop(conn)
	go c.superviseReconnect()
	return c, nil
}

// superviseReconnect is the resilient client's redial supervisor: it
// sleeps until a read loop reports conn loss, then drives redial
// attempts until the link is back or the client closes.
func (c *Client) superviseReconnect() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			c.teardown()
			return
		case <-c.res.kick:
		}
		select {
		case <-c.done:
			c.teardown()
			return
		default:
		}
		c.redial()
	}
}

// redial re-establishes the conn with mesh-style backoff. A stale kick
// (deposited by a failed attempt's read-loop exit after the link was
// already replaced) finds the conn live and returns immediately.
func (c *Client) redial() {
	c.connMu.RLock()
	live := c.conn != nil
	c.connMu.RUnlock()
	if live {
		return
	}
	backoff := c.res.cfg.RedialMin
	for {
		select {
		case <-c.done:
			return
		default:
		}
		conn, err := c.res.cfg.Dial(c.res.nextURL())
		if err == nil {
			if c.resumeOn(conn) {
				return
			}
		} else {
			// Dead endpoint: rotate so the next attempt tries a sibling.
			c.res.advanceURL()
		}
		if !c.sleep(jitter(backoff)) {
			return
		}
		backoff *= 2
		if backoff > c.res.cfg.RedialMax {
			backoff = c.res.cfg.RedialMax
		}
	}
}

// sleep waits d or until the client closes, reporting false on close.
func (c *Client) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.done:
		return false
	case <-t.C:
		return true
	}
}

// resumeOn runs the resume handshake over a freshly dialed conn and
// reports whether the client is connected again (also true when the
// client closed mid-handshake — the caller's loop exits on done). The
// conn is installed and its read loop started before the hello reply is
// awaited: the broker's first frames after a successful resume are the
// replayed reliable window, and they must be consumed (and acked) for
// the handshake to make progress at all.
func (c *Client) resumeOn(conn transport.Conn) bool {
	c.connMu.Lock()
	token := c.token
	hello := helloEvent(c.id)
	if token != "" {
		hello = resumeHelloEvent(c.id, token)
	}
	c.connMu.Unlock()
	if err := conn.Send(hello); err != nil {
		conn.Close()
		return false
	}
	var hs chan string
	var lost chan struct{}
	c.connMu.Lock()
	c.conn = conn
	c.lostCh = make(chan struct{})
	lost = c.lostCh
	if token != "" {
		hs = make(chan string, 1)
		c.hsCh = hs
	}
	c.connMu.Unlock()
	c.wg.Add(1)
	go c.readLoop(conn)
	if token == "" {
		// Nothing to resume — and a linger-disabled broker sends no hello
		// reply at all. Rebuild the subscription set immediately.
		c.afterReconnect(false)
		return true
	}
	select {
	case op := <-hs:
		c.afterReconnect(op == opResumed)
		return true
	case <-lost:
		return false
	case <-c.done:
		return true
	case <-time.After(subscribeTimeout):
		conn.Close()
		return false
	}
}

// afterReconnect completes a reconnect. On a refused resume the broker
// session is brand new: the reliable receive state resets (nothing
// rseq-tagged can arrive before the resubscribes below, so the reset
// cannot race live traffic) and every live pattern re-registers. In
// both cases replay streams restart from the last delivered record and
// the outage publish buffer flushes.
func (c *Client) afterReconnect(resumed bool) {
	if !resumed {
		c.recvMu.Lock()
		c.recvCum = 0
		clear(c.ahead)
		c.recvMu.Unlock()
		patterns := make(map[string]struct{})
		c.mu.Lock()
		for sub := range c.subSet {
			if sub.replay == nil {
				patterns[sub.pattern] = struct{}{}
			}
		}
		c.mu.Unlock()
		for p := range patterns {
			_ = c.send(subEvent(p, BestEffort))
		}
	}
	c.restartReplays()
	c.res.flush(c)
	c.setState(StateConnected)
}

// restartReplays re-issues every live replay stream against the new
// session, starting each just past the last record it delivered.
// Broker-side replay cursors die with the session (resume parks the
// reliable window and subscriptions, not cursors), so this runs on the
// resumed path too; records the salvaged window re-delivers anyway are
// filtered by sequence in handleReplayData.
func (c *Client) restartReplays() {
	c.mu.Lock()
	subs := make([]*Subscription, 0, len(c.replays))
	for _, sub := range c.replays {
		subs = append(subs, sub)
	}
	c.mu.Unlock()
	for _, sub := range subs {
		r := sub.replay
		from := r.from
		if last := r.lastSeq.Load(); last+1 > from {
			from = last + 1
		}
		_ = c.send(replayStartEvent(r.pattern, from, r.id))
	}
}
