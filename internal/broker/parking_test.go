package broker

import (
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// TestParkingSiblingIsolation: a subscription whose consumer has
// stalled under reliable backpressure must not stall the client's
// readLoop — sibling subscriptions on the same connection keep
// receiving. The stalled subscription's overflow parks (bounded at
// ring depth) and is delivered, in order, once its consumer resumes.
func TestParkingSiblingIsolation(t *testing.T) {
	const ringDepth = 4
	const stalled = 2 * ringDepth // fills the ring, then the park
	const siblingEvents = 100

	b := New(Config{ID: "park"})
	defer b.Stop()

	sc, err := b.LocalClient("park-sub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	subA, err := sc.Subscribe("/iso/a", ringDepth) // consumer stalled below
	if err != nil {
		t.Fatal(err)
	}
	subB, err := sc.Subscribe("/iso/b", 256) // active sibling
	if err != nil {
		t.Fatal(err)
	}

	pc, err := b.LocalClient("park-pub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	// Fill A's ring and park with reliable traffic nobody is reading.
	for i := 0; i < stalled; i++ {
		if err := pc.PublishReliable("/iso/a", event.KindControl, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		st := subA.DeliveryStats()
		return st.Events+st.ParkedEvents >= stalled
	}, "stalled subscription never buffered ring+park worth of reliable traffic")
	if st := subA.DeliveryStats(); st.ParkedEvents == 0 {
		t.Fatalf("expected overflow to park, stats %+v", st)
	}

	// The sibling must keep receiving while A is saturated. Before
	// parking, A's full ring blocked the readLoop here and B starved.
	for i := 0; i < siblingEvents; i++ {
		if err := pc.Publish("/iso/b", event.KindRTP, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	gotB := 0
	buf := make([]*event.Event, 0, 64)
	deadline := time.Now().Add(5 * time.Second)
	for gotB < siblingEvents && time.Now().Before(deadline) {
		var ok bool
		buf, ok = subB.TryRecvBatch(buf[:0], 64)
		gotB += len(buf)
		clear(buf)
		if !ok {
			t.Fatal("sibling subscription closed unexpectedly")
		}
		time.Sleep(time.Millisecond)
	}
	if gotB != siblingEvents {
		t.Fatalf("sibling received %d/%d events while its neighbour was backpressured", gotB, siblingEvents)
	}

	// Resume A's consumer: every stalled event arrives, in publish order.
	var gotA []*event.Event
	for len(gotA) < stalled {
		batch, ok := subA.RecvBatch(nil, stalled)
		if !ok {
			t.Fatal("stalled subscription closed before draining")
		}
		gotA = append(gotA, batch...)
	}
	for i, e := range gotA {
		if len(e.Payload) != 1 || e.Payload[0] != byte(i) {
			t.Fatalf("event %d out of order: payload %v", i, e.Payload)
		}
	}
}
