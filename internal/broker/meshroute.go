package broker

import (
	"github.com/globalmmcs/globalmmcs/internal/topic"
)

// Routed forwarding: instead of staging a publish on every peer link
// that advertised a matching pattern (the PR-6 flood, where TTL and the
// duplicate cache kill the redundant copies at the far side), the broker
// maintains, per advertised (pattern, origin-broker), the single
// cheapest next-hop link — costs come from the hop counts carried on
// advertisements — and forwards one copy per chosen link, tagged with a
// serve-mask naming the origins that copy is responsible for. Receivers
// re-forward only the mask bits assigned to their own chosen links, so
// dissemination follows one spanning tree per origin even across
// equal-cost paths (where purely local cheapest-link pruning would still
// emit crossing duplicates). TTL and dedup remain as the safety net for
// convergence windows. Config.MeshFlood restores the flood.

// originBit hashes an origin broker id onto one bit of the 64-bit
// serve-mask (FNV-1a). Collisions merely over-serve: two origins sharing
// a bit are forwarded wherever either is routed, and the receiving
// broker's own routing narrows the copy again.
func originBit(origin string) uint64 {
	h := uint32(2166136261)
	for i := 0; i < len(origin); i++ {
		h ^= uint32(origin[i])
		h *= 16777619
	}
	return 1 << (h & 63)
}

// originRoute is the chosen next hop toward one origin broker.
type originRoute struct {
	next *session
	cost int
}

// patternRoute is the control-plane routing entry for one advertised
// pattern: origin broker id → chosen next hop. Guarded by b.mu.
type patternRoute struct {
	origins map[string]originRoute
}

// linkAssign is one peer link's origin assignment within a plan: the
// union of serve-mask bits of every origin routed through it.
type linkAssign struct {
	t    *session
	mask uint64
}

// topicPlan is the data-plane forwarding plan resolved for one concrete
// topic: which peer links to stage on, and which origins each serves.
type topicPlan struct {
	links []linkAssign
}

// maskFor returns the origin bits assigned to link t, 0 when t is not a
// chosen next hop for this topic.
func (p *topicPlan) maskFor(t *session) uint64 {
	for i := range p.links {
		if p.links[i].t == t {
			return p.links[i].mask
		}
	}
	return 0
}

// merge ORs another pattern's link assignments into p (topics matching
// several patterns serve the union).
func (p *topicPlan) merge(links []linkAssign) {
	for _, la := range links {
		found := false
		for i := range p.links {
			if p.links[i].t == la.t {
				p.links[i].mask |= la.mask
				found = true
				break
			}
		}
		if !found {
			p.links = append(p.links, la)
		}
	}
}

// meshPatternPlan is one pattern's pre-built plan in the published table.
type meshPatternPlan struct {
	pattern string
	plan    topicPlan
}

// meshPlanTable is the immutable data-plane snapshot of the routing
// table, swapped atomically on every control-plane recompute so the hot
// path reads it without b.mu.
type meshPlanTable struct {
	entries []meshPatternPlan
}

// planFor resolves the forwarding plan for a concrete topic, nil when no
// advertised pattern matches (callers then fall back to unmasked
// forwarding along whatever the trie holds — the behaviour hand-wired
// tests and convergence gaps rely on).
func (b *Broker) planFor(t string) *topicPlan {
	tbl := b.meshPlans.Load()
	if tbl == nil {
		return nil
	}
	var single *topicPlan
	var merged *topicPlan
	for i := range tbl.entries {
		ent := &tbl.entries[i]
		if !topic.MatchPattern(ent.pattern, t) {
			continue
		}
		switch {
		case single == nil:
			single = &ent.plan
		case merged == nil:
			merged = &topicPlan{links: append([]linkAssign(nil), single.links...)}
			merged.merge(ent.plan.links)
		default:
			merged.merge(ent.plan.links)
		}
	}
	if merged != nil {
		return merged
	}
	return single
}

// routeCostLocked returns this broker's current cost to origin under
// pattern (via the chosen link). Callers hold b.mu.
func (b *Broker) routeCostLocked(pattern, origin string) (int, bool) {
	pr := b.meshRoutes[pattern]
	if pr == nil {
		return 0, false
	}
	r, ok := pr.origins[origin]
	return r.cost, ok
}

// recomputePatternRouteLocked rebuilds the chosen next-hop set for one
// pattern from the per-link advertisement costs, syncs the routing trie
// to it (routed mode admits only chosen next hops; flood mode every
// advertiser), and republishes the data-plane plan table. Promotion is
// purely local: every link's cost is retained in session.remotePatterns,
// so losing the chosen link immediately elects the next-best without a
// network round trip. Callers hold b.mu.
func (b *Broker) recomputePatternRouteLocked(pattern string) {
	best := make(map[string]originRoute)
	var advertisers []*session
	for p := range b.peers {
		origins := p.remotePatterns[pattern]
		if len(origins) == 0 {
			continue
		}
		advertisers = append(advertisers, p)
		for origin, ent := range origins {
			cost := ent.hops + 1
			cur, ok := best[origin]
			if !ok || cost < cur.cost || (cost == cur.cost && p.id < cur.next.id) {
				best[origin] = originRoute{next: p, cost: cost}
			}
		}
	}
	if len(best) == 0 {
		delete(b.meshRoutes, pattern)
	} else {
		b.meshRoutes[pattern] = &patternRoute{origins: best}
	}
	want := make(map[*session]bool, len(advertisers))
	if b.routed {
		for _, r := range best {
			want[r.next] = true
		}
	} else {
		for _, p := range advertisers {
			want[p] = true
		}
	}
	for p := range b.peers {
		_, has := p.routedPatterns[pattern]
		switch {
		case want[p] && !has:
			if b.router.add(pattern, p) == nil {
				p.routedPatterns[pattern] = struct{}{}
			}
		case !want[p] && has:
			b.router.remove(pattern, p)
			delete(p.routedPatterns, pattern)
		}
	}
	b.publishMeshPlansLocked()
}

// publishMeshPlansLocked rebuilds the immutable plan table from
// meshRoutes and swaps it in for the data plane. Callers hold b.mu.
func (b *Broker) publishMeshPlansLocked() {
	if !b.routed || len(b.meshRoutes) == 0 {
		b.meshPlans.Store(nil)
		return
	}
	tbl := &meshPlanTable{entries: make([]meshPatternPlan, 0, len(b.meshRoutes))}
	for pattern, pr := range b.meshRoutes {
		links := make(map[*session]uint64, 2)
		for origin, r := range pr.origins {
			links[r.next] |= originBit(origin)
		}
		mp := meshPatternPlan{pattern: pattern}
		for s, m := range links {
			mp.plan.links = append(mp.plan.links, linkAssign{t: s, mask: m})
		}
		tbl.entries = append(tbl.entries, mp)
	}
	b.meshPlans.Store(tbl)
}
