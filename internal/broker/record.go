package broker

import (
	"errors"
	"strings"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/topic"
	"github.com/globalmmcs/globalmmcs/internal/topiclog"
)

// The durable-log record plane. Recording rides the burst plane:
// routeOne invokes a recordFn for every recorder whose pattern matches
// a routed event, the route sweep stages the event's encode-once frame
// bytes per recorder, and finish() appends each recorder's staged run
// in ONE topiclog.Append (one file write, one log lock) per burst —
// recording a 256-event burst costs the same lock cadence as
// delivering it.
//
// Replay rides the reliable lane: a session's replay pump drains a
// cursor in record batches, packs each batch into one control envelope
// (topicReplayData, payload = topiclog-framed records), and sends it
// reliably — so history is never shed broker-side and stays FIFO with
// the repLive handoff marker. When the cursor reaches the committed
// tail the pump attaches it as a log tailer under the log's append
// lock: every append from then on delivers to the session
// synchronously, which is what makes the cursor→live switch
// exactly-once (no frame can slip between "history drained" and "tail
// attached" — the append lock is the serialization point).

// recordFn delivers one matched event to a recorder: immediately
// (Broker.recordDirect, the event-at-a-time path) or staged per burst
// (routeSweep.recordStage).
type recordFn func(r *recorder, e *event.Event, fs *frameSource)

// recorder is one recorded topic pattern and its backing log.
type recorder struct {
	pattern string
	log     *topiclog.Log

	appended     *metrics.Counter
	segGauge     *metrics.Gauge
	bytesGauge   *metrics.Gauge
	cursorsGauge *metrics.Gauge
	reapedGauge  *metrics.Gauge
}

// recordPlane is the broker's set of recorders plus a bounded
// topic→recorders memo (the record-side mirror of the route cache —
// the pattern set is fixed at construction, so entries never go
// stale).
type recordPlane struct {
	recorders []*recorder
	byPattern map[string]*recorder

	mu   sync.RWMutex
	memo map[string][]*recorder

	appendErrs *metrics.Counter
}

// recordMemoBound caps the memoised topic set (matching the route
// cache's bound).
const recordMemoBound = 4096

// newRecordPlane opens one log per configured pattern under
// cfg.RecordDir. A pattern whose log fails to open (or fails
// validation) is skipped and counted in broker.log.open_errors —
// recording is an observer of the data path and must not stop the
// broker from starting.
func newRecordPlane(cfg Config, reg *metrics.Registry) *recordPlane {
	rp := &recordPlane{
		byPattern:  make(map[string]*recorder),
		memo:       make(map[string][]*recorder),
		appendErrs: reg.Counter("broker.log.append_errors"),
	}
	openErrs := reg.Counter("broker.log.open_errors")
	for _, pattern := range cfg.RecordPatterns {
		if _, dup := rp.byPattern[pattern]; dup {
			continue
		}
		if topic.ValidatePattern(pattern) != nil || isControlTopic(pattern) {
			openErrs.Inc()
			continue
		}
		dir := cfg.RecordDir + "/" + patternDirName(pattern)
		log, err := topiclog.Open(dir, topiclog.Config{
			SegmentMaxBytes: cfg.RecordSegmentBytes,
			SegmentMaxAge:   cfg.RecordSegmentAge,
			MaxSegments:     cfg.RecordMaxSegments,
			MaxBytes:        cfg.RecordMaxBytes,
		})
		if err != nil {
			openErrs.Inc()
			continue
		}
		r := &recorder{
			pattern:      pattern,
			log:          log,
			appended:     reg.Counter("broker.log." + pattern + ".appended"),
			segGauge:     reg.Gauge("broker.log." + pattern + ".segments"),
			bytesGauge:   reg.Gauge("broker.log." + pattern + ".bytes"),
			cursorsGauge: reg.Gauge("broker.log." + pattern + ".active_cursors"),
			reapedGauge:  reg.Gauge("broker.log." + pattern + ".reaped"),
		}
		rp.recorders = append(rp.recorders, r)
		rp.byPattern[pattern] = r
	}
	return rp
}

// patternDirName maps a topic pattern to a filesystem directory name:
// safe characters pass through, everything else (slashes, wildcards)
// is percent-escaped.
func patternDirName(pattern string) string {
	var sb strings.Builder
	const hex = "0123456789ABCDEF"
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			sb.WriteByte(c)
		default:
			sb.WriteByte('%')
			sb.WriteByte(hex[c>>4])
			sb.WriteByte(hex[c&0xF])
		}
	}
	return sb.String()
}

// match returns the recorders whose pattern matches a concrete topic,
// memoised per topic (nil — the overwhelmingly common result — is a
// valid cached value).
func (rp *recordPlane) match(t string) []*recorder {
	rp.mu.RLock()
	rs, ok := rp.memo[t]
	rp.mu.RUnlock()
	if ok {
		return rs
	}
	for _, r := range rp.recorders {
		if topic.MatchPattern(r.pattern, t) {
			rs = append(rs, r)
		}
	}
	rp.mu.Lock()
	if len(rp.memo) < recordMemoBound {
		rp.memo[t] = rs
	}
	rp.mu.Unlock()
	return rs
}

// recorderFor resolves an exactly-matching recorded pattern (replay
// attaches to one recorded log, not a topic expression over them).
func (rp *recordPlane) recorderFor(pattern string) *recorder {
	return rp.byPattern[pattern]
}

// refresh runs retention reaping and republishes the per-log gauges.
// Called from housekeeping with no broker lock held (gauge updates
// take the registry mutex, and Reap takes each log's).
func (rp *recordPlane) refresh() {
	for _, r := range rp.recorders {
		r.log.Reap()
		st := r.log.Stats()
		r.segGauge.Set(int64(st.Segments))
		r.bytesGauge.Set(st.Bytes)
		r.cursorsGauge.Set(int64(st.ActiveCursors))
		r.reapedGauge.Set(int64(st.Reaped))
	}
}

func (rp *recordPlane) close() {
	for _, r := range rp.recorders {
		r.log.Close()
	}
}

// recordDirect is the event-at-a-time record hook (Broker.route):
// append the event's frame immediately as a batch of one.
func (b *Broker) recordDirect(r *recorder, e *event.Event, fs *frameSource) {
	if _, err := r.log.Append([][]byte{fs.frame().Bytes()}); err != nil {
		b.rec.appendErrs.Inc()
		return
	}
	r.appended.Inc()
}

// TopicLog exposes the durable log behind a recorded pattern (nil when
// the pattern is not recorded). Benchmarks and operational tooling use
// it to read sequences and stats; the log's cursors are owned by the
// replay plane.
func (b *Broker) TopicLog(pattern string) *topiclog.Log {
	if b.rec == nil {
		return nil
	}
	if r := b.rec.recorderFor(pattern); r != nil {
		return r.log
	}
	return nil
}

// ---- Session-side replay streams ----

// replayBatchRecords bounds how many records one cursor read (and thus
// one data envelope) carries.
const replayBatchRecords = 128

// replayEnvelopeTarget is the soft payload size at which a pump
// flushes an envelope; replayEnvelopeMax is the hard cap (the wire
// payload limit) an envelope never exceeds.
//
// replayMaxInflight bounds unacked reliable events while a pump is
// draining history. The reliable window itself (default 4096) is sized
// for sparse signalling events; envelopes are ~64KiB each, so filling
// half the window would put >100MiB in flight — queueing delay alone
// then pushes acks past the retransmit RTO and the link collapses into
// resending history it already delivered. A few dozen envelopes keep
// the pipe full (a couple of MiB, far above any bandwidth-delay
// product on a LAN) while acks stay well inside the RTO.
const (
	replayEnvelopeTarget = 64 << 10
	replayEnvelopeMax    = event.MaxPayloadLen
	replayMaxInflight    = 32
)

// sessionReplay is one client replay stream on a session.
type sessionReplay struct {
	id  uint64
	cur *topiclog.Cursor
	// stop is closed by stopReplay/teardown; the pump selects on it.
	stop chan struct{}
	// stopped/attached are guarded by the session's replayMu. attached
	// means the pump handed the cursor off as a log tailer and exited —
	// from then on stopReplay owns closing the cursor.
	stopped  bool
	attached bool
}

// startReplay handles a repStart control request: resolve the recorded
// pattern, open a cursor at the requested sequence, and launch the
// pump. Replies repOK/repErr on the reliable lane.
func (s *session) startReplay(e *event.Event) {
	id, err := headerUint(e, hdrReplay)
	if err != nil {
		return
	}
	from, _ := headerUint(e, hdrFrom)
	pattern := e.Headers[hdrPattern]
	var r *recorder
	if s.b.rec != nil {
		r = s.b.rec.recorderFor(pattern)
	}
	if r == nil {
		s.b.metrics().Counter("broker.bad_replays").Inc()
		s.sendReliable(replayReplyEvent(repErr, id, "pattern not recorded: "+pattern))
		return
	}
	sr := &sessionReplay{id: id, cur: r.log.NewCursor(from), stop: make(chan struct{})}
	s.replayMu.Lock()
	if s.replays == nil {
		s.replays = make(map[uint64]*sessionReplay)
	}
	if _, dup := s.replays[id]; dup {
		s.replayMu.Unlock()
		sr.cur.Close()
		s.sendReliable(replayReplyEvent(repErr, id, "duplicate replay id"))
		return
	}
	s.replays[id] = sr
	s.replayMu.Unlock()
	s.sendReliable(replayReplyEvent(repOK, id, ""))
	s.wg.Add(1)
	go s.replayPump(sr)
}

// stopReplay handles a repStop request (and Unsubscribe of a replay
// subscription): signal the pump, and close the cursor directly when
// the stream already handed off to tail delivery.
func (s *session) stopReplay(id uint64) {
	s.replayMu.Lock()
	sr := s.replays[id]
	if sr == nil {
		s.replayMu.Unlock()
		return
	}
	delete(s.replays, id)
	already := sr.stopped
	sr.stopped = true
	attached := sr.attached
	s.replayMu.Unlock()
	if !already {
		close(sr.stop)
	}
	if attached {
		sr.cur.Close()
	}
}

// teardownReplays stops every replay stream at session close. It runs
// on its own goroutine: an attached stream's tail delivery can itself
// close the session from inside the log's append lock (reliable
// window overflow), and closing a cursor needs that same lock —
// tearing down inline would deadlock.
func (s *session) teardownReplays() {
	s.replayMu.Lock()
	srs := make([]*sessionReplay, 0, len(s.replays))
	for _, sr := range s.replays {
		srs = append(srs, sr)
		if !sr.stopped {
			sr.stopped = true
			close(sr.stop)
		}
	}
	s.replays = nil
	s.replayMu.Unlock()
	for _, sr := range srs {
		sr.cur.Close()
	}
}

// finishReplay is the pump's own cleanup on error or stop before the
// tail handoff.
func (s *session) finishReplay(sr *sessionReplay) {
	s.replayMu.Lock()
	delete(s.replays, sr.id)
	s.replayMu.Unlock()
	sr.cur.Close()
}

// replayPump drains history from the cursor into reliable data
// envelopes, self-pacing against the session's reliable window, then
// performs the tail handoff: once Next reports the committed tail,
// AttachTail registers live delivery under the log's append lock — if
// an append slipped in between, the attach fails and the pump keeps
// draining. On success the pump sends repLive and exits; the log now
// delivers the stream synchronously from Append.
func (s *session) replayPump(sr *sessionReplay) {
	defer s.wg.Done()
	var recs []topiclog.Record
	payload := make([]byte, 0, replayEnvelopeTarget+4096)
	for {
		select {
		case <-sr.stop:
			s.finishReplay(sr)
			return
		case <-s.closedCh:
			s.finishReplay(sr)
			return
		default:
		}
		// Self-pace: history must not blow the reliable window that live
		// traffic and the post-handoff tail share, and envelopes in
		// flight stay few enough that acks return inside the RTO.
		if s.unackedLen() > min(replayMaxInflight, s.b.cfg.ReliableWindow/2) {
			select {
			case <-sr.stop:
				s.finishReplay(sr)
				return
			case <-s.closedCh:
				s.finishReplay(sr)
				return
			case <-time.After(time.Millisecond):
			}
			continue
		}
		var err error
		recs, err = sr.cur.Next(recs[:0], replayBatchRecords)
		if err != nil {
			if !errors.Is(err, topiclog.ErrClosed) {
				s.sendReliable(replayReplyEvent(repErr, sr.id, err.Error()))
			}
			s.finishReplay(sr)
			return
		}
		if len(recs) == 0 {
			if sr.cur.AttachTail(func(batch []topiclog.Record) { s.deliverTail(sr, batch) }) {
				s.replayMu.Lock()
				sr.attached = true
				stopped := sr.stopped
				s.replayMu.Unlock()
				if stopped {
					// stopReplay ran between the attach and the flag: it saw
					// attached == false, so closing the cursor is on us.
					sr.cur.Close()
					return
				}
				s.sendReliable(replayReplyEvent(repLive, sr.id, ""))
				return
			}
			continue // an append won the race; drain it and retry
		}
		for _, rec := range recs {
			if len(payload) > 0 && len(payload)+topiclog.HeaderLen+len(rec.Payload) > replayEnvelopeMax {
				s.sendReliable(replayDataEvent(sr.id, payload))
				payload = payload[:0]
			}
			if topiclog.HeaderLen+len(rec.Payload) > replayEnvelopeMax {
				s.b.metrics().Counter("broker.replay_oversized").Inc()
				continue
			}
			payload = topiclog.AppendRecord(payload, rec.Seq, rec.Payload)
			if len(payload) >= replayEnvelopeTarget {
				s.sendReliable(replayDataEvent(sr.id, payload))
				payload = payload[:0]
			}
		}
		if len(payload) > 0 {
			s.sendReliable(replayDataEvent(sr.id, payload))
			payload = payload[:0]
		}
	}
}

// deliverTail forwards one appended batch to the session as a data
// envelope. It runs synchronously under the log's append lock (it is
// the attached tailer), so it only packs bytes and enqueues — the
// send queue and reliable plane never call back into the log. A
// window-overflow close here tears the session down via
// teardownReplays' own goroutine, never inline.
func (s *session) deliverTail(sr *sessionReplay, batch []topiclog.Record) {
	var payload []byte
	for _, rec := range batch {
		if len(payload) > 0 && len(payload)+topiclog.HeaderLen+len(rec.Payload) > replayEnvelopeMax {
			s.sendReliableFrom(replayDataEvent(sr.id, payload), nil)
			payload = nil
		}
		if topiclog.HeaderLen+len(rec.Payload) > replayEnvelopeMax {
			s.b.metrics().Counter("broker.replay_oversized").Inc()
			continue
		}
		payload = topiclog.AppendRecord(payload, rec.Seq, rec.Payload)
	}
	if len(payload) > 0 {
		s.sendReliableFrom(replayDataEvent(sr.id, payload), nil)
	}
}
