package broker

import (
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// outItem is one outbound unit on a session's send queue: the decoded
// event (always set) plus, for best-effort traffic bound for a framed
// wire conn, the shared encode-once frame produced at route time.
type outItem struct {
	e *event.Event
	// frame is the immutable pre-encoded form shared across the fan-out;
	// nil when the writer must marshal itself (control, reliable, or
	// non-framed conns).
	frame *event.Frame
	// reliable marks items on the never-dropped lane; the writer flushes
	// its batch immediately after them so signalling never lingers in a
	// user-space buffer.
	reliable bool
}

// popState reports the outcome of a non-blocking pop.
type popState int

const (
	popOK     popState = iota // an item was returned
	popEmpty                  // queue open but momentarily empty
	popClosed                 // queue closed and fully drained
)

// sendQueue is the per-session outbound queue. It has two lanes:
//
//   - a reliable lane that is never dropped (bounded by the reliable
//     window; the session disconnects the peer before it overflows), and
//   - a bounded best-effort lane that drops its oldest entry on overflow,
//     which is the correct policy for real-time media.
//
// tryPop returns reliable items first. The queue is signal-based rather
// than condvar-based so the writer can multiplex "more traffic arrived"
// against flush timers.
type sendQueue struct {
	mu     sync.Mutex
	rel    []outItem
	be     []outItem // ring storage
	beHead int
	beLen  int
	closed bool
	drops  uint64

	// notify carries at most one wakeup token; every push and close
	// deposits one, the single consumer drains to empty before waiting.
	notify chan struct{}
}

func newSendQueue(bestEffortDepth int) *sendQueue {
	if bestEffortDepth <= 0 {
		bestEffortDepth = 1
	}
	return &sendQueue{
		be:     make([]outItem, bestEffortDepth),
		notify: make(chan struct{}, 1),
	}
}

func (q *sendQueue) signal() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// waitCh returns the channel the consumer blocks on between drains.
func (q *sendQueue) waitCh() <-chan struct{} { return q.notify }

// pushBestEffort enqueues e (with its optional shared frame), dropping
// the oldest queued event if full. It reports whether the queue accepted
// the event without dropping.
func (q *sendQueue) pushBestEffort(e *event.Event, frame *event.Frame) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	dropped := false
	if q.beLen == len(q.be) {
		// Drop oldest.
		q.be[q.beHead] = outItem{}
		q.beHead = (q.beHead + 1) % len(q.be)
		q.beLen--
		q.drops++
		dropped = true
	}
	q.be[(q.beHead+q.beLen)%len(q.be)] = outItem{e: e, frame: frame}
	q.beLen++
	q.mu.Unlock()
	q.signal()
	return !dropped
}

// pushReliable enqueues e on the never-dropped lane.
func (q *sendQueue) pushReliable(e *event.Event) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.rel = append(q.rel, outItem{e: e, reliable: true})
	q.mu.Unlock()
	q.signal()
}

// tryPop removes one item without blocking, preferring the reliable lane.
func (q *sendQueue) tryPop() (outItem, popState) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.rel) > 0 {
		it := q.rel[0]
		q.rel[0] = outItem{}
		q.rel = q.rel[1:]
		return it, popOK
	}
	if q.beLen > 0 {
		it := q.be[q.beHead]
		q.be[q.beHead] = outItem{}
		q.beHead = (q.beHead + 1) % len(q.be)
		q.beLen--
		return it, popOK
	}
	if q.closed {
		return outItem{}, popClosed
	}
	return outItem{}, popEmpty
}

// pop blocks until an event is available or the queue closes. The second
// return is false once the queue is closed and drained.
func (q *sendQueue) pop() (*event.Event, bool) {
	for {
		it, st := q.tryPop()
		switch st {
		case popOK:
			return it.e, true
		case popClosed:
			return nil, false
		}
		<-q.notify
	}
}

// close wakes the consumer; tryPop drains remaining events first.
func (q *sendQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.signal()
}

// dropCount returns how many best-effort events have been dropped.
func (q *sendQueue) dropCount() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.drops
}

// depth returns the total queued events (both lanes).
func (q *sendQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.rel) + q.beLen
}
