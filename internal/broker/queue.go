package broker

import (
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// sendQueue is the per-session outbound queue. It has two lanes:
//
//   - a reliable lane that is never dropped (bounded by the reliable
//     window; the session disconnects the peer before it overflows), and
//   - a bounded best-effort lane that drops its oldest entry on overflow,
//     which is the correct policy for real-time media.
//
// pop returns reliable events first.
type sendQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rel    []*event.Event
	be     []*event.Event // ring storage
	beHead int
	beLen  int
	closed bool
	drops  uint64
}

func newSendQueue(bestEffortDepth int) *sendQueue {
	if bestEffortDepth <= 0 {
		bestEffortDepth = 1
	}
	q := &sendQueue{be: make([]*event.Event, bestEffortDepth)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// pushBestEffort enqueues e, dropping the oldest queued event if full.
// It reports whether the queue accepted the event without dropping.
func (q *sendQueue) pushBestEffort(e *event.Event) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	dropped := false
	if q.beLen == len(q.be) {
		// Drop oldest.
		q.beHead = (q.beHead + 1) % len(q.be)
		q.beLen--
		q.drops++
		dropped = true
	}
	q.be[(q.beHead+q.beLen)%len(q.be)] = e
	q.beLen++
	q.cond.Signal()
	return !dropped
}

// pushReliable enqueues e on the never-dropped lane.
func (q *sendQueue) pushReliable(e *event.Event) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.rel = append(q.rel, e)
	q.cond.Signal()
}

// pop blocks until an event is available or the queue closes. The second
// return is false once the queue is closed and drained.
func (q *sendQueue) pop() (*event.Event, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.rel) > 0 {
			e := q.rel[0]
			q.rel[0] = nil
			q.rel = q.rel[1:]
			return e, true
		}
		if q.beLen > 0 {
			e := q.be[q.beHead]
			q.be[q.beHead] = nil
			q.beHead = (q.beHead + 1) % len(q.be)
			q.beLen--
			return e, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// close wakes all poppers; pop drains remaining events first.
func (q *sendQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// dropCount returns how many best-effort events have been dropped.
func (q *sendQueue) dropCount() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.drops
}

// depth returns the total queued events (both lanes).
func (q *sendQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.rel) + q.beLen
}
