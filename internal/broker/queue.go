package broker

import (
	"sync"
	"sync/atomic"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// outItem is one outbound unit on a session's send queue: a decoded
// event, a pre-encoded frame, or both. Best-effort traffic bound for a
// framed wire conn shares the encode-once frame produced at route time;
// reliable traffic on framed conns carries its rseq-patched copy of the
// shared encoding.
type outItem struct {
	// e is the decoded event; nil only for frame-backed reliable items on
	// framed conns (whose writer never needs the decoded form).
	e *event.Event
	// frame is the immutable pre-encoded form; nil when the writer must
	// marshal itself (un-tagged control traffic, or non-framed conns).
	frame *event.Frame
	// reliable marks items on the never-dropped lane; the writer flushes
	// its batch immediately after them so signalling never lingers in a
	// user-space buffer.
	reliable bool
}

// popState reports the outcome of a non-blocking pop.
type popState int

const (
	popOK     popState = iota // an item was returned
	popEmpty                  // queue open but momentarily empty
	popClosed                 // queue closed and fully drained
)

// sendQueue is the per-session outbound queue. It has two lanes:
//
//   - a reliable lane that is never dropped (bounded by the reliable
//     window; the session disconnects the peer before it overflows), and
//   - a bounded best-effort lane that drops its oldest entry on overflow,
//     which is the correct policy for real-time media.
//
// tryPop returns reliable items first. The queue is signal-based rather
// than condvar-based so the writer can multiplex "more traffic arrived"
// against flush timers.
type sendQueue struct {
	mu     sync.Mutex
	rel    []outItem
	be     []outItem // ring storage
	beHead int
	beLen  int
	closed bool
	drops  uint64

	// The pending-cumulative ack slot: the reverse path of hop-by-hop
	// reliability queues at most one ack here, and later acks overwrite
	// it rather than appending. Acks are cumulative, so only the newest
	// floor matters — if the writer falls behind on a busy bidirectional
	// link (a mesh peer), consecutive bursts' acks collapse into one
	// control event instead of queueing per burst.
	ackDue        bool
	ackCum        uint64
	acksCoalesced uint64

	// The pending flow-control grant slot, the credit twin of the ack
	// slot: grants are cumulative consumption counts, so only the newest
	// matters and later grants overwrite rather than append. Riding a
	// dedicated slot (drained ahead of both lanes) means a grant can
	// never be displaced out of the best-effort ring by the very
	// congestion it exists to relieve.
	creditDue bool
	creditCum uint64

	// beDataEvicted counts best-effort *data* items displaced from the
	// ring (control items excluded). The credit window subtracts it from
	// the staged count so events shed locally never pin remote credit.
	beDataEvicted atomic.Uint64

	// pushLocks counts producer-side mutex acquisitions. It instruments
	// the batching contract — a burst fanned to a session costs one lock
	// acquisition (pushBatch), not one per event — and is asserted by
	// regression tests.
	pushLocks atomic.Uint64

	// notify carries at most one wakeup token; every push and close
	// deposits one, the single consumer drains to empty before waiting.
	notify chan struct{}

	// onSignal, when set (before the session starts; immutable after),
	// replaces the notify-channel deposit: writer-pool mode routes the
	// wakeup to the pool's ready list instead of a dedicated writer
	// goroutine. It reports whether a wakeup was actually deposited
	// (false when the consumer is already armed).
	onSignal func() bool

	// wakeups counts deposited wakeup tokens (channel sends that landed,
	// or pool arms that won the CAS). Together with pushLocks it
	// instruments the batching contract: one lock, one wakeup per
	// session per burst.
	wakeups atomic.Uint64
}

func newSendQueue(bestEffortDepth int) *sendQueue {
	if bestEffortDepth <= 0 {
		bestEffortDepth = 1
	}
	return &sendQueue{
		be:     make([]outItem, bestEffortDepth),
		notify: make(chan struct{}, 1),
	}
}

func (q *sendQueue) signal() {
	if q.onSignal != nil {
		if q.onSignal() {
			q.wakeups.Add(1)
		}
		return
	}
	select {
	case q.notify <- struct{}{}:
		q.wakeups.Add(1)
	default:
	}
}

// waitCh returns the channel the consumer blocks on between drains.
func (q *sendQueue) waitCh() <-chan struct{} { return q.notify }

// pushBestEffort enqueues e (with its optional shared frame), dropping
// the oldest queued event if full. It reports whether the queue accepted
// the event without dropping.
func (q *sendQueue) pushBestEffort(e *event.Event, frame *event.Frame) bool {
	q.pushLocks.Add(1)
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	dropped := q.appendBestEffortLocked(outItem{e: e, frame: frame})
	q.mu.Unlock()
	q.signal()
	return !dropped
}

// appendBestEffortLocked inserts one item into the best-effort ring,
// displacing the oldest entry when full. It reports whether an entry was
// dropped. Callers hold q.mu.
func (q *sendQueue) appendBestEffortLocked(it outItem) (dropped bool) {
	if q.beLen == len(q.be) {
		// Drop oldest.
		if old := q.be[q.beHead]; old.e != nil && !isControlTopic(old.e.Topic) {
			q.beDataEvicted.Add(1)
		}
		q.be[q.beHead] = outItem{}
		q.beHead = (q.beHead + 1) % len(q.be)
		q.beLen--
		q.drops++
		dropped = true
	}
	q.be[(q.beHead+q.beLen)%len(q.be)] = it
	q.beLen++
	return dropped
}

// pushBatch enqueues a burst of best-effort items with one lock
// acquisition and one writer wakeup — the amortization that makes burst
// ingest cheap: a burst fanned out to N sessions costs N lock/signal
// pairs total, not N per event. It returns how many events were dropped
// (ring overflow, or the whole batch when the queue is closed).
func (q *sendQueue) pushBatch(items []outItem) int {
	if len(items) == 0 {
		return 0
	}
	q.pushLocks.Add(1)
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return len(items)
	}
	dropped := 0
	for _, it := range items {
		if q.appendBestEffortLocked(it) {
			dropped++
		}
	}
	q.mu.Unlock()
	q.signal()
	return dropped
}

// pushAck deposits a cumulative acknowledgement in the pending-ack slot,
// overwriting any ack already waiting there. The writer emits the slot
// (as one reliable ack event) ahead of both lanes on its next drain.
func (q *sendQueue) pushAck(cum uint64) {
	q.pushLocks.Add(1)
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	if q.ackDue {
		q.acksCoalesced++
	}
	q.ackDue = true
	if cum > q.ackCum {
		q.ackCum = cum
	}
	q.mu.Unlock()
	q.signal()
}

// takeAckLocked drains the pending-ack slot into an outItem. Callers
// hold q.mu and have checked q.ackDue.
func (q *sendQueue) takeAckLocked() outItem {
	q.ackDue = false
	return outItem{e: ackEvent(q.ackCum), reliable: true}
}

// pushCredit deposits a cumulative flow-control grant in the pending
// slot, overwriting any grant already waiting there.
func (q *sendQueue) pushCredit(cum uint64) {
	q.pushLocks.Add(1)
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.creditDue = true
	if cum > q.creditCum {
		q.creditCum = cum
	}
	q.mu.Unlock()
	q.signal()
}

// takeCreditLocked drains the pending-grant slot into an outItem.
// Callers hold q.mu and have checked q.creditDue. The item is marked
// reliable only so the writer flushes it immediately — timely grants
// are what keep a healthy link's window open.
func (q *sendQueue) takeCreditLocked() outItem {
	q.creditDue = false
	return outItem{e: creditEvent(q.creditCum), reliable: true}
}

// pushReliable enqueues e on the never-dropped lane.
func (q *sendQueue) pushReliable(e *event.Event) {
	q.pushItem(outItem{e: e, reliable: true})
}

// pushItem enqueues one pre-built item on the never-dropped lane. The
// reliable fan-out path uses it to queue rseq-patched frames directly.
func (q *sendQueue) pushItem(it outItem) {
	q.pushLocks.Add(1)
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.rel = append(q.rel, it)
	q.mu.Unlock()
	q.signal()
}

// tryPop removes one item without blocking, preferring the pending ack
// slot, then the reliable lane.
func (q *sendQueue) tryPop() (outItem, popState) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.ackDue {
		return q.takeAckLocked(), popOK
	}
	if q.creditDue {
		return q.takeCreditLocked(), popOK
	}
	if len(q.rel) > 0 {
		it := q.rel[0]
		q.rel[0] = outItem{}
		q.rel = q.rel[1:]
		return it, popOK
	}
	if q.beLen > 0 {
		it := q.be[q.beHead]
		q.be[q.beHead] = outItem{}
		q.beHead = (q.beHead + 1) % len(q.be)
		q.beLen--
		return it, popOK
	}
	if q.closed {
		return outItem{}, popClosed
	}
	return outItem{}, popEmpty
}

// popBatch appends up to max queued items to buf under one lock
// acquisition — the consumer-side mirror of pushBatch — preferring the
// reliable lane. The state is popOK when anything was drained, popEmpty
// when the queue is open but empty, popClosed once closed and drained.
func (q *sendQueue) popBatch(buf []outItem, max int) ([]outItem, popState) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	if n < max && q.ackDue {
		buf = append(buf, q.takeAckLocked())
		n++
	}
	if n < max && q.creditDue {
		buf = append(buf, q.takeCreditLocked())
		n++
	}
	for n < max && len(q.rel) > 0 {
		buf = append(buf, q.rel[0])
		q.rel[0] = outItem{}
		q.rel = q.rel[1:]
		n++
	}
	for n < max && q.beLen > 0 {
		buf = append(buf, q.be[q.beHead])
		q.be[q.beHead] = outItem{}
		q.beHead = (q.beHead + 1) % len(q.be)
		q.beLen--
		n++
	}
	if n > 0 {
		return buf, popOK
	}
	if q.closed {
		return buf, popClosed
	}
	return buf, popEmpty
}

// pop blocks until an event is available or the queue closes. The second
// return is false once the queue is closed and drained.
func (q *sendQueue) pop() (*event.Event, bool) {
	for {
		it, st := q.tryPop()
		switch st {
		case popOK:
			return it.e, true
		case popClosed:
			return nil, false
		}
		<-q.notify
	}
}

// close wakes the consumer; tryPop drains remaining events first.
func (q *sendQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.signal()
}

// pushLockCount returns how many producer-side lock acquisitions the
// queue has seen (test instrumentation for the batching contract).
func (q *sendQueue) pushLockCount() uint64 { return q.pushLocks.Load() }

// wakeupCount returns how many consumer wakeups were actually deposited
// (test instrumentation for the batching contract — at most one per
// burst regardless of writer mode).
func (q *sendQueue) wakeupCount() uint64 { return q.wakeups.Load() }

// ackCoalesceCount returns how many acks were overwritten in the pending
// slot before the writer drained them (test instrumentation).
func (q *sendQueue) ackCoalesceCount() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.acksCoalesced
}

// dropCount returns how many best-effort events have been dropped.
func (q *sendQueue) dropCount() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.drops
}

// dataEvictedCount returns how many best-effort data events were
// displaced from the ring (lock-free; read by the credit admit path).
func (q *sendQueue) dataEvictedCount() uint64 { return q.beDataEvicted.Load() }

// depth returns the total queued events (both lanes).
func (q *sendQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.rel) + q.beLen
}
