package broker

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// brokerSeam is the Dial seam for resilience tests: it maps URLs to
// in-process brokers and deals each dial a FaultConn, so tests kill
// links on cue and take brokers "down" by unmapping them.
type brokerSeam struct {
	mu      sync.Mutex
	brokers map[string]*Broker
	// schedules[i] is the fault schedule for the i-th dial (missing =
	// clean conn).
	schedules [][]transport.Fault
	// profile shapes the broker→client direction of every dealt conn
	// (e.g. SendCost paces delivery so kills land mid-burst).
	profile transport.LinkProfile
	dials   int
	conns   []*transport.FaultConn
}

func newSeam() *brokerSeam {
	return &brokerSeam{brokers: make(map[string]*Broker)}
}

func (s *brokerSeam) set(url string, b *Broker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b == nil {
		delete(s.brokers, url)
		return
	}
	s.brokers[url] = b
}

func (s *brokerSeam) dial(url string) (transport.Conn, error) {
	s.mu.Lock()
	b := s.brokers[url]
	var sched []transport.Fault
	if s.dials < len(s.schedules) {
		sched = s.schedules[s.dials]
	}
	s.dials++
	s.mu.Unlock()
	if b == nil {
		return nil, errors.New("seam: broker down")
	}
	client, server := transport.Pipe(b.ID(), "seam-client")
	go b.AcceptConn(transport.Shape(server, s.profile))
	fc := transport.InjectFaults(client, sched...)
	s.mu.Lock()
	s.conns = append(s.conns, fc)
	s.mu.Unlock()
	return fc, nil
}

// killCurrent cuts the most recently dealt conn.
func (s *brokerSeam) killCurrent() {
	s.mu.Lock()
	fc := s.conns[len(s.conns)-1]
	s.mu.Unlock()
	fc.Kill()
}

func (s *brokerSeam) dialCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dials
}

func resilientClient(t *testing.T, seam *brokerSeam, id string, urls ...string) *Client {
	t.Helper()
	c, err := DialResilient(ResilientConfig{
		URLs:      urls,
		ID:        id,
		RedialMin: 10 * time.Millisecond,
		RedialMax: 100 * time.Millisecond,
		Dial:      seam.dial,
	})
	if err != nil {
		t.Fatalf("DialResilient: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func waitState(t *testing.T, c *Client, want ConnState) {
	t.Helper()
	waitCondition(t, 10*time.Second, fmt.Sprintf("client state %v", want), func() bool {
		return c.ConnState() == want
	})
}

// TestResilientResumeTransparent: a conn kill between two reliable
// bursts is invisible to the subscriber — the subscription ring stays
// open, the resumed session redelivers nothing twice and loses nothing.
func TestResilientResumeTransparent(t *testing.T) {
	b := newTestBrokerCfg(t, Config{ID: "rt", SessionLinger: 5 * time.Second})
	seam := newSeam()
	seam.set("u1", b)
	c := resilientClient(t, seam, "rt-sub", "u1")
	sub, err := c.Subscribe("/rt/t", 256)
	if err != nil {
		t.Fatal(err)
	}
	pub := localClient(t, b, "rt-pub")

	recv := func(want byte) {
		t.Helper()
		e := recvOne(t, sub, 10*time.Second)
		if e.Payload[0] != want {
			t.Fatalf("payload %d, want %d", e.Payload[0], want)
		}
	}
	for i := range 5 {
		if err := pub.PublishReliable("/rt/t", event.KindControl, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range 5 {
		recv(byte(i))
	}

	seam.killCurrent()
	waitCondition(t, 10*time.Second, "redialed", func() bool {
		return seam.dialCount() >= 2 && c.ConnState() == StateConnected
	})
	for i := 5; i < 10; i++ {
		if err := pub.PublishReliable("/rt/t", event.KindControl, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 5; i < 10; i++ {
		recv(byte(i))
	}
	expectNone(t, sub, 200*time.Millisecond) // no duplicate redelivery
}

// TestChaosConnKillMidReliableBurst: 300 reliable events are in flight
// when the conn is killed twice mid-burst. Across both resumes every
// event arrives exactly once — the salvaged window replays under
// original rseqs and the client's cumulative dedup absorbs the overlap.
func TestChaosConnKillMidReliableBurst(t *testing.T) {
	b := newTestBrokerCfg(t, Config{
		ID:                 "chaos",
		SessionLinger:      10 * time.Second,
		RetransmitInterval: 50 * time.Millisecond,
	})
	seam := newSeam()
	// Pace broker→client delivery so the 300-event burst takes ~300ms
	// to drain: the kills below genuinely land mid-burst, with most of
	// the window unacked.
	seam.profile = transport.LinkProfile{SendCost: time.Millisecond}
	seam.set("u1", b)
	c := resilientClient(t, seam, "chaos-sub", "u1")
	sub, err := c.Subscribe("/chaos/t", 1024)
	if err != nil {
		t.Fatal(err)
	}
	pub := localClient(t, b, "chaos-pub")

	const n = 300
	for i := range n {
		if err := pub.PublishReliable("/chaos/t", event.KindControl, counterPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The whole burst is now in the session's reliable window. Kill the
	// conn twice while it drains; each kill parks the session mid-burst.
	seen := make(map[string]int, n)
	total := 0
	deadline := time.After(30 * time.Second)
	for len(seen) < n {
		select {
		case e := <-sub.C():
			seen[string(e.Payload)]++
			total++
			if total == 100 || total == 200 {
				seam.killCurrent()
			}
		case <-deadline:
			t.Fatalf("received %d/%d distinct events (total %d, dials %d, parked %d, sessions %d, state %v)",
				len(seen), n, total, seam.dialCount(), b.parkedCount(), b.SessionCount(), c.ConnState())
		}
	}
	if total != n {
		t.Fatalf("received %d events for %d published: duplicates crossed the resume", total, n)
	}
	for i := range n {
		if seen[string(counterPayload(i))] != 1 {
			t.Fatalf("event %d delivered %d times, want exactly once", i, seen[string(counterPayload(i))])
		}
	}
	// At least one kill landed on a live conn and forced a resume (the
	// second may hit a conn that was already dead — that's chaos).
	if seam.dialCount() < 2 {
		t.Fatalf("dials = %d, want a resume redial", seam.dialCount())
	}
}

// TestChaosBrokerCrashRestartCatchUp: the broker process dies and a new
// one starts over the same durable topic log. The resume token is
// worthless (the park died with the process), so the client falls back
// to the log: its replay stream re-anchors past the last delivered
// record and catch-up is still exactly-once.
func TestChaosBrokerCrashRestartCatchUp(t *testing.T) {
	dir := t.TempDir()
	mk := func(id string) *Broker {
		return New(Config{
			ID:             id,
			SessionLinger:  10 * time.Second,
			RecordPatterns: []string{"/cr/#"},
			RecordDir:      dir,
		})
	}
	b1 := mk("cr-b1")
	seam := newSeam()
	seam.set("u1", b1)
	c := resilientClient(t, seam, "cr-sub", "u1")
	sub, err := c.SubscribeReplay(context.Background(), "/cr/#", 0, 1024)
	if err != nil {
		t.Fatal(err)
	}

	const half = 50
	pub1 := localClient(t, b1, "cr-pub1")
	for i := range half {
		if err := pub1.PublishReliable("/cr/a", event.KindControl, counterPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[string]int, 2*half)
	collect := func(want int) {
		t.Helper()
		deadline := time.After(20 * time.Second)
		for len(seen) < want {
			select {
			case e := <-sub.C():
				seen[string(e.Payload)]++
			case <-deadline:
				t.Fatalf("received %d/%d distinct events", len(seen), want)
			}
		}
	}
	collect(half)

	// Crash: no drain, no goaway — the park dies with the broker.
	seam.set("u1", nil)
	b1.Stop()
	waitState(t, c, StateReconnecting)

	b2 := mk("cr-b2")
	t.Cleanup(b2.Stop)
	waitRecorded(t, b2, "/cr/#", half) // restarted log resumes its seq
	pub2 := localClient(t, b2, "cr-pub2")
	for i := half; i < 2*half; i++ {
		if err := pub2.PublishReliable("/cr/a", event.KindControl, counterPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	seam.set("u1", b2)
	collect(2 * half)
	for i := range 2 * half {
		if got := seen[string(counterPayload(i))]; got != 1 {
			t.Fatalf("event %d delivered %d times, want exactly once across restart", i, got)
		}
	}
	waitState(t, c, StateConnected)
}

// TestDrainHandsClientsOver: Drain stops accepting, GOAWAYs attached
// clients and returns once their reliable windows flush; a resilient
// client rotates to the next broker and keeps its subscription working.
func TestDrainHandsClientsOver(t *testing.T) {
	b1 := newTestBrokerCfg(t, Config{ID: "dr-b1", SessionLinger: 5 * time.Second})
	b2 := newTestBrokerCfg(t, Config{ID: "dr-b2", SessionLinger: 5 * time.Second})
	seam := newSeam()
	seam.set("u1", b1)
	seam.set("u2", b2)
	c := resilientClient(t, seam, "dr-sub", "u1", "u2")
	sub, err := c.Subscribe("/dr/t", 64)
	if err != nil {
		t.Fatal(err)
	}
	pub1 := localClient(t, b1, "dr-pub1")
	if err := pub1.PublishReliable("/dr/t", event.KindControl, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if e := recvOne(t, sub, 5*time.Second); string(e.Payload) != "before" {
		t.Fatalf("got %q", e.Payload)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b1.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Draining brokers refuse new attachments.
	if _, err := b1.LocalClient("late", transport.LinkProfile{}); err == nil {
		t.Fatal("LocalClient on draining broker succeeded, want refusal")
	}
	// The GOAWAY rotated the client onto b2 with its subscription alive.
	waitCondition(t, 10*time.Second, "client lands on b2", func() bool {
		return b2.SessionCount() == 1 && len(b2.matchSessions("/dr/t")) == 1
	})
	waitState(t, c, StateConnected)
	pub2 := localClient(t, b2, "dr-pub2")
	if err := pub2.PublishReliable("/dr/t", event.KindControl, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if e := recvOne(t, sub, 5*time.Second); string(e.Payload) != "after" {
		t.Fatalf("got %q", e.Payload)
	}
}

// TestDrainTimeout: a client that never acks keeps its window dirty, so
// a bounded Drain gives up with the context's error instead of hanging.
func TestDrainTimeout(t *testing.T) {
	b := newTestBrokerCfg(t, Config{ID: "dt", RetransmitInterval: time.Minute})
	// Raw conn that subscribes and goes silent: reliable events pile up
	// unacked.
	rc := rawAttach(t, b, helloEvent("dt-silent"))
	if err := rc.conn.Send(subEvent("/dt/t", BestEffort)); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := rc.conn.Recv(); err != nil {
				return
			}
		}
	}()
	waitCondition(t, 5*time.Second, "subscribed", func() bool {
		return len(b.matchSessions("/dt/t")) > 0
	})
	pub := localClient(t, b, "dt-pub")
	if err := pub.PublishReliable("/dt/t", event.KindControl, []byte("stuck")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := b.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with dirty window: %v, want DeadlineExceeded", err)
	}
	rc.conn.Close()
}

// TestConnLostFailFast: with outage buffering disabled, operations
// against a down link fail fast with ErrConnLost — and work again once
// the link is back.
func TestConnLostFailFast(t *testing.T) {
	b := newTestBrokerCfg(t, Config{ID: "cl", SessionLinger: 5 * time.Second})
	seam := newSeam()
	seam.set("u1", b)
	c, err := DialResilient(ResilientConfig{
		URLs:          []string{"u1"},
		ID:            "cl-c",
		RedialMin:     10 * time.Millisecond,
		RedialMax:     50 * time.Millisecond,
		PublishBuffer: -1, // fail fast instead of buffering
		Dial:          seam.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	seam.set("u1", nil) // redials fail until the broker is "back"
	seam.killCurrent()
	waitState(t, c, StateReconnecting)
	if err := c.Publish("/cl/t", event.KindData, []byte("x")); !errors.Is(err, ErrConnLost) {
		t.Fatalf("Publish during outage: %v, want ErrConnLost", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := c.SubscribeContext(ctx, "/cl/t", 8); !errors.Is(err, ErrConnLost) {
		t.Fatalf("Subscribe during outage: %v, want ErrConnLost", err)
	}

	seam.set("u1", b)
	waitState(t, c, StateConnected)
	if err := c.Publish("/cl/t", event.KindData, []byte("y")); err != nil {
		t.Fatalf("Publish after recovery: %v", err)
	}
}

// TestOutagePublishBuffering: best-effort publishes during an outage
// buffer client-side (up to the bound) and flush in order after the
// reconnect.
func TestOutagePublishBuffering(t *testing.T) {
	b := newTestBrokerCfg(t, Config{ID: "ob", SessionLinger: 5 * time.Second})
	seam := newSeam()
	seam.set("u1", b)

	watcher := localClient(t, b, "ob-watch")
	wsub, err := watcher.Subscribe("/ob/t", 64)
	if err != nil {
		t.Fatal(err)
	}
	c := resilientClient(t, seam, "ob-pub", "u1")

	seam.set("u1", nil) // hold the outage open while we publish
	seam.killCurrent()
	waitState(t, c, StateReconnecting)
	const n = 10
	for i := range n {
		if err := c.Publish("/ob/t", event.KindData, []byte{byte(i)}); err != nil {
			t.Fatalf("buffered publish %d: %v", i, err)
		}
	}
	seam.set("u1", b)
	waitState(t, c, StateConnected)
	for i := range n {
		e := recvOne(t, wsub, 5*time.Second)
		if e.Payload[0] != byte(i) {
			t.Fatalf("flushed publish %d: payload %d, want %d (order lost)", i, e.Payload[0], i)
		}
	}
}

// TestOutageBufferBound: the outage buffer is bounded; overflow fails
// fast instead of growing without limit.
func TestOutageBufferBound(t *testing.T) {
	b := newTestBrokerCfg(t, Config{ID: "obb", SessionLinger: 5 * time.Second})
	seam := newSeam()
	seam.set("u1", b)
	c, err := DialResilient(ResilientConfig{
		URLs:          []string{"u1"},
		ID:            "obb-c",
		RedialMin:     10 * time.Millisecond,
		PublishBuffer: 4,
		Dial:          seam.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	seam.set("u1", nil)
	seam.killCurrent()
	waitState(t, c, StateReconnecting)
	for i := range 4 {
		if err := c.Publish("/obb/t", event.KindData, nil); err != nil {
			t.Fatalf("publish %d within bound: %v", i, err)
		}
	}
	if err := c.Publish("/obb/t", event.KindData, nil); !errors.Is(err, ErrConnLost) {
		t.Fatalf("publish past bound: %v, want ErrConnLost", err)
	}
	seam.set("u1", b)
	waitState(t, c, StateConnected)
}

// TestConnStateCallback: OnState observes the Connected → Reconnecting
// → Connected → Closed edges in order.
func TestConnStateCallback(t *testing.T) {
	b := newTestBrokerCfg(t, Config{ID: "cb", SessionLinger: 5 * time.Second})
	seam := newSeam()
	seam.set("u1", b)
	var mu sync.Mutex
	var edges []ConnState
	c, err := DialResilient(ResilientConfig{
		URLs:      []string{"u1"},
		ID:        "cb-c",
		RedialMin: 10 * time.Millisecond,
		Dial:      seam.dial,
		OnState: func(st ConnState) {
			mu.Lock()
			edges = append(edges, st)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	seam.set("u1", nil) // hold the outage so the Reconnecting edge is observable
	seam.killCurrent()
	waitState(t, c, StateReconnecting)
	seam.set("u1", b)
	waitState(t, c, StateConnected)
	c.Close()
	waitCondition(t, 5*time.Second, "closed edge", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(edges) > 0 && edges[len(edges)-1] == StateClosed
	})
	mu.Lock()
	defer mu.Unlock()
	want := []ConnState{StateConnected, StateReconnecting, StateConnected, StateClosed}
	if len(edges) != len(want) {
		t.Fatalf("edges %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges %v, want %v", edges, want)
		}
	}
}
