package broker

import (
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// dialTCPPair starts a broker on loopback TCP and returns an attached
// publisher client and a subscribed consumer.
func dialTCPPair(t *testing.T) (*Broker, *Client, *Subscription) {
	t.Helper()
	b := New(Config{ID: "pub-broker"})
	t.Cleanup(b.Stop)
	l, err := b.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := Dial(l.Addr(), "publisher")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pub.Close() })
	consumer, err := Dial(l.Addr(), "consumer")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { consumer.Close() })
	sub, err := consumer.Subscribe("/pub/#", 256)
	if err != nil {
		t.Fatal(err)
	}
	return b, pub, sub
}

// TestPublisherBatchedDelivery proves events queued behind a long
// linger still hit the wire once the batch fills or Flush runs.
func TestPublisherBatchedDelivery(t *testing.T) {
	_, c, sub := dialTCPPair(t)
	p := c.Publisher(PublisherConfig{Batching: true, FlushInterval: time.Hour})
	if !p.Batched() {
		t.Fatal("tcp publisher not batched")
	}
	if err := p.Publish(event.New("/pub/a", event.KindData, []byte("one"))); err != nil {
		t.Fatal(err)
	}
	// The linger is an hour: nothing should arrive until Flush.
	select {
	case e := <-sub.C():
		t.Fatalf("event %v delivered before flush", e)
	case <-time.After(50 * time.Millisecond):
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, sub, 5*time.Second); string(got.Payload) != "one" {
		t.Fatalf("payload = %q", got.Payload)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Publish(event.New("/pub/a", event.KindData, nil)); err != ErrPublisherClosed {
		t.Fatalf("publish after close = %v", err)
	}
}

// TestPublisherReliableFlushes is the flush-on-reliable regression: a
// reliable publish must force the whole pending batch onto the wire
// immediately, even under an arbitrarily long linger.
func TestPublisherReliableFlushes(t *testing.T) {
	_, c, sub := dialTCPPair(t)
	p := c.Publisher(PublisherConfig{Batching: true, FlushInterval: time.Hour})
	if err := p.Publish(event.New("/pub/media", event.KindRTP, []byte("best-effort"))); err != nil {
		t.Fatal(err)
	}
	rel := event.New("/pub/signal", event.KindControl, []byte("reliable"))
	rel.Reliable = true
	if err := p.Publish(rel); err != nil {
		t.Fatal(err)
	}
	// Both must arrive promptly (the broker's delivery lanes may reorder
	// reliable ahead of best-effort; only promptness is asserted).
	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		got[string(recvOne(t, sub, 5*time.Second).Payload)] = true
	}
	if !got["best-effort"] || !got["reliable"] {
		t.Fatalf("delivered = %v", got)
	}
}

// TestPublisherLingerTimer proves a partial batch is flushed by the
// background timer without any further publishes.
func TestPublisherLingerTimer(t *testing.T) {
	_, c, sub := dialTCPPair(t)
	p := c.Publisher(PublisherConfig{Batching: true, FlushInterval: 2 * time.Millisecond})
	if err := p.Publish(event.New("/pub/a", event.KindData, []byte("tail"))); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, sub, 5*time.Second); string(got.Payload) != "tail" {
		t.Fatalf("payload = %q", got.Payload)
	}
}

// TestPublisherMemFallback: batching over an in-process pipe degrades
// to per-event sends (there is nothing to batch) but still delivers.
func TestPublisherMemFallback(t *testing.T) {
	b := New(Config{ID: "mem-broker"})
	defer b.Stop()
	c, err := b.LocalClient("local", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe("/pub/#", 16)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Publisher(PublisherConfig{Batching: true})
	if p.Batched() {
		t.Fatal("mem publisher claims batching")
	}
	if err := p.Publish(event.New("/pub/a", event.KindData, []byte("direct"))); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, sub, 5*time.Second); string(got.Payload) != "direct" {
		t.Fatalf("payload = %q", got.Payload)
	}
	// The closed contract holds on the unbatched fallback too.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Publish(event.New("/pub/a", event.KindData, nil)); err != ErrPublisherClosed {
		t.Fatalf("publish after close = %v", err)
	}
}

// TestSeqRingOrder exercises the retransmit ring: FIFO order, lazy
// reaping interleave, growth across wraparound.
func TestSeqRingOrder(t *testing.T) {
	var r seqRing
	if _, ok := r.peek(); ok {
		t.Fatal("empty ring peeked a value")
	}
	for i := uint64(1); i <= 40; i++ {
		r.push(i)
	}
	for i := uint64(1); i <= 20; i++ {
		v, ok := r.pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	// Wrap: push more than the freed space to force growth mid-ring.
	for i := uint64(41); i <= 100; i++ {
		r.push(i)
	}
	for i := uint64(21); i <= 100; i++ {
		v, ok := r.pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("drained ring popped a value")
	}
}
