package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestClientHonorsCancelledContext asserts attaching a client fails
// fast under a cancelled context.
func TestClientHonorsCancelledContext(t *testing.T) {
	s := startServer(t, Config{DisableSIP: true, DisableH323: true, DisableRTSP: true, DisableIM: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Client(ctx, "alice"); !errors.Is(err, context.Canceled) {
		t.Fatalf("client = %v, want context.Canceled", err)
	}
}

// TestClientAfterStop asserts ErrStopped after Stop.
func TestClientAfterStop(t *testing.T) {
	s := startServer(t, Config{DisableSIP: true, DisableH323: true, DisableRTSP: true, DisableIM: true})
	s.Stop()
	if _, err := s.Client(context.Background(), "late"); !errors.Is(err, ErrStopped) {
		t.Fatalf("client after stop = %v, want ErrStopped", err)
	}
}

// TestWaitReadyHonorsCancellation asserts WaitReady returns on context
// expiry.
func TestWaitReadyHonorsCancellation(t *testing.T) {
	s := startServer(t, Config{DisableSIP: true, DisableH323: true, DisableRTSP: true, DisableIM: true})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// The server is up, so a live WaitReady succeeds even with a short
	// deadline...
	if err := s.WaitReady(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait ready = %v", err)
	}
	// ...and a cancelled context fails fast.
	done, cancelDone := context.WithCancel(context.Background())
	cancelDone()
	if err := s.WaitReady(done); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait ready = %v", err)
	}
}
