package core

import (
	"context"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/clock"
	"github.com/globalmmcs/globalmmcs/internal/wsci"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// TestScheduledMeetingOverWeb exercises the paper's "scheduled mode":
// reserve a meeting through the web portal, confirm it is inaccessible
// until its start time, then watch the scheduler activate it.
func TestScheduledMeetingOverWeb(t *testing.T) {
	fake := clock.NewFake(time.Date(2003, 9, 1, 8, 0, 0, 0, time.UTC))
	s := startServer(t, Config{Clock: fake})
	client := wsci.NewClient(s.WebAddr() + "/ws")

	start := fake.Now().Add(30 * time.Minute)
	end := start.Add(time.Hour)
	var created WSSessionResponse
	if err := client.Call(&WSCreateSession{
		Creator: "organizer",
		Name:    "scheduled-demo",
		Start:   xgsp.FormatTime(start),
		End:     xgsp.FormatTime(end),
	}, &created); err != nil {
		t.Fatal(err)
	}
	if created.Active {
		t.Fatal("scheduled session active before start")
	}

	// Not listed among active sessions...
	var list WSListSessionsResponse
	if err := client.Call(&WSListSessions{}, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 0 {
		t.Fatalf("inactive session listed: %+v", list)
	}
	// ...but visible with the scheduled flag.
	if err := client.Call(&WSListSessions{IncludeScheduled: true}, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 1 || list.Sessions[0].Active {
		t.Fatalf("scheduled listing wrong: %+v", list)
	}

	// Joining before activation is refused.
	alice, err := s.Client(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	if _, err := alice.Join(context.Background(), created.ID, "t"); err == nil {
		t.Fatal("joined a session that has not started")
	}

	// The meeting time arrives.
	fake.Advance(31 * time.Minute)
	waitFor(t, 5*time.Second, func() bool {
		info := s.XGSP.Lookup(created.ID)
		return info != nil && info.Active
	})
	if _, err := alice.Join(context.Background(), created.ID, "t"); err != nil {
		t.Fatalf("join after activation: %v", err)
	}

	// And ends on schedule.
	fake.Advance(2 * time.Hour)
	waitFor(t, 5*time.Second, func() bool {
		return s.XGSP.Lookup(created.ID) == nil
	})
}

// TestHybridAdHocAndScheduled runs both collaboration patterns side by
// side, the paper's "hybrid collaboration pattern".
func TestHybridAdHocAndScheduled(t *testing.T) {
	fake := clock.NewFake(time.Date(2003, 9, 1, 8, 0, 0, 0, time.UTC))
	s := startServer(t, Config{Clock: fake})
	alice, err := s.Client(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()

	adhoc, err := alice.CreateSession(context.Background(), "hallway-chat")
	if err != nil {
		t.Fatal(err)
	}
	if !adhoc.Active {
		t.Fatal("ad-hoc session must activate immediately")
	}
	scheduled, err := alice.XGSP.Create(context.Background(), xgsp.CreateSession{
		Name:  "board-meeting",
		Start: xgsp.FormatTime(fake.Now().Add(time.Hour)),
		End:   xgsp.FormatTime(fake.Now().Add(2 * time.Hour)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if scheduled.Active {
		t.Fatal("scheduled session active early")
	}
	// Both coexist; the ad-hoc one is usable now.
	if _, err := alice.Join(context.Background(), adhoc.ID, "t"); err != nil {
		t.Fatal(err)
	}
	list, err := alice.XGSP.List(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list = %+v", list)
	}
}
