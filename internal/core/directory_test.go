package core

import (
	"net"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/directory"
	"github.com/globalmmcs/globalmmcs/internal/h323"
	"github.com/globalmmcs/globalmmcs/internal/sip"
)

// TestRegistrationsPopulateDirectory verifies the user↔terminal binding
// flow of §2.2: registering with the SIP registrar or the H.323
// gatekeeper records the endpoint as the user's active media terminal.
func TestRegistrationsPopulateDirectory(t *testing.T) {
	s := startServer(t, Config{})

	// SIP registration.
	sipEP, err := sip.NewEndpoint("wenjun", s.SIP.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sipEP.Close()
	if err := sipEP.Register(s.SIP.Domain(), time.Hour); err != nil {
		t.Fatal(err)
	}
	term, err := s.Directory.ActiveTerminal("wenjun")
	if err != nil {
		t.Fatal(err)
	}
	if term.Kind != directory.TerminalSIP || !term.Active {
		t.Fatalf("terminal = %+v", term)
	}
	user, err := s.Directory.User("wenjun")
	if err != nil || user.Community != "sip" {
		t.Fatalf("user = %+v, %v", user, err)
	}

	// H.323 registration.
	h323EP, err := h323.NewEndpoint("auyar", s.Gatekeeper.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer h323EP.Close()
	if err := h323EP.Discover(); err != nil {
		t.Fatal(err)
	}
	if err := h323EP.Register(); err != nil {
		t.Fatal(err)
	}
	term, err = s.Directory.ActiveTerminal("auyar")
	if err != nil {
		t.Fatal(err)
	}
	if term.Kind != directory.TerminalH323 {
		t.Fatalf("terminal = %+v", term)
	}
	if _, _, err := net.SplitHostPort(term.Address); err != nil {
		t.Fatalf("terminal address %q not host:port", term.Address)
	}

	// A user registering from a second device moves the active binding.
	sipEP2, err := sip.NewEndpoint("wenjun", s.SIP.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sipEP2.Close()
	if err := sipEP2.Register(s.SIP.Domain(), time.Hour); err != nil {
		t.Fatal(err)
	}
	terms := s.Directory.UserTerminals("wenjun")
	if len(terms) == 0 {
		t.Fatal("no terminals recorded")
	}
	active := 0
	for _, tm := range terms {
		if tm.Active {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("active terminals = %d, want exactly 1", active)
	}
}
