package core

import (
	"context"
	"fmt"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/im"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// Client is a user's collaboration endpoint: session control (XGSP),
// chat and presence (IM), and media publish/subscribe, all over one
// broker connection.
type Client struct {
	userID string
	// BC is the underlying broker client for direct pub/sub.
	BC *broker.Client
	// XGSP issues session requests.
	XGSP *xgsp.Client
	// Chat sends room messages and presence.
	Chat *im.Chatter
	// Metrics, when non-nil, receives per-stream delivery gauges from
	// the SDK layer. Server.Client wires it to the node's registry.
	Metrics *metrics.Registry
}

// NewClient wraps an attached broker client into a collaboration client.
func NewClient(ctx context.Context, bc *broker.Client, userID string) (*Client, error) {
	xc, err := xgsp.NewClient(ctx, bc, userID)
	if err != nil {
		return nil, fmt.Errorf("core: xgsp client: %w", err)
	}
	chat, err := im.NewChatter(bc, userID)
	if err != nil {
		xc.Close()
		return nil, fmt.Errorf("core: chatter: %w", err)
	}
	return &Client{userID: userID, BC: bc, XGSP: xc, Chat: chat}, nil
}

// UserID returns the client identity.
func (c *Client) UserID() string { return c.userID }

// Close releases the client and its broker connection.
func (c *Client) Close() error {
	c.XGSP.Close()
	return c.BC.Close()
}

// CreateSession creates an ad-hoc session.
func (c *Client) CreateSession(ctx context.Context, name string) (*xgsp.SessionInfo, error) {
	return c.XGSP.Create(ctx, xgsp.CreateSession{Name: name})
}

// Join joins a session with a logical terminal name.
func (c *Client) Join(ctx context.Context, sessionID, terminal string) (*xgsp.SessionInfo, error) {
	return c.XGSP.Join(ctx, sessionID, terminal, nil)
}

// Leave leaves a session.
func (c *Client) Leave(ctx context.Context, sessionID string) error {
	return c.XGSP.Leave(ctx, sessionID)
}

// MediaSender returns a paced sender publishing onto one of the
// session's media topics ("audio" or "video").
func (c *Client) MediaSender(info *xgsp.SessionInfo, kind xgsp.MediaType) (*media.Sender, error) {
	for _, m := range info.Media {
		if m.Type == kind {
			return media.NewSender(c.BC, m.Topic), nil
		}
	}
	return nil, fmt.Errorf("core: session %s has no %s channel", info.ID, kind)
}

// SubscribeMedia subscribes to one of the session's media topics.
func (c *Client) SubscribeMedia(ctx context.Context, info *xgsp.SessionInfo, kind xgsp.MediaType, depth int) (*broker.Subscription, error) {
	for _, m := range info.Media {
		if m.Type == kind {
			return c.BC.SubscribeContext(ctx, m.Topic, depth)
		}
	}
	return nil, fmt.Errorf("core: session %s has no %s channel", info.ID, kind)
}
