package core

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/accessgrid"
	"github.com/globalmmcs/globalmmcs/internal/admire"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/im"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/streaming"
	"github.com/globalmmcs/globalmmcs/internal/wsci"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Start(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFullServerStartStop(t *testing.T) {
	s := startServer(t, Config{})
	if s.SIP == nil || s.Gatekeeper == nil || s.H323Gateway == nil || s.RTSP == nil || s.IM == nil {
		t.Fatal("subsystems missing")
	}
	// Stop is idempotent.
	s.Stop()
	s.Stop()
}

func TestServerWithSubsystemsDisabled(t *testing.T) {
	s := startServer(t, Config{DisableSIP: true, DisableH323: true, DisableRTSP: true, DisableIM: true})
	if s.SIP != nil || s.Gatekeeper != nil || s.RTSP != nil || s.IM != nil {
		t.Fatal("disabled subsystem started")
	}
	// The core still works: create and join a session.
	alice, err := s.Client(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	info, err := alice.CreateSession(context.Background(), "bare")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Join(context.Background(), info.ID, "term"); err != nil {
		t.Fatal(err)
	}
}

func TestClientConferenceWithMediaAndChat(t *testing.T) {
	s := startServer(t, Config{})
	alice, err := s.Client(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	bob, err := s.Client(context.Background(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()

	info, err := alice.CreateSession(context.Background(), "team-sync")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Join(context.Background(), info.ID, "alice-desktop"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Join(context.Background(), info.ID, "bob-laptop"); err != nil {
		t.Fatal(err)
	}

	// Media: alice sends 10 audio packets; bob receives them.
	bobAudio, err := bob.SubscribeMedia(context.Background(), info, xgsp.MediaAudio, 64)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := alice.MediaSender(info, xgsp.MediaAudio)
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewAudioSource(media.AudioConfig{FrameMillis: 5})
	if _, err := sender.SendAudio(src, 10, nil); err != nil {
		t.Fatal(err)
	}
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 10 {
		select {
		case e := <-bobAudio.C():
			var p rtp.Packet
			if err := p.Unmarshal(e.Payload); err != nil {
				t.Fatal(err)
			}
			got++
		case <-deadline:
			t.Fatalf("bob received %d/10 packets", got)
		}
	}

	// Chat: bob talks, alice listens, the IM service records history.
	aliceRoom, err := alice.Chat.JoinRoom(context.Background(), info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.Chat.Send(info.ID, "are we on?"); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-aliceRoom.C():
		m, err := im.ParseChat(e)
		if err != nil || m.From != "bob" {
			t.Fatalf("%+v, %v", m, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("chat not delivered")
	}
	waitFor(t, 5*time.Second, func() bool {
		return len(s.IM.History(info.ID, 10)) == 1
	})
}

func TestWebServerSOAPRoundtrip(t *testing.T) {
	s := startServer(t, Config{})
	client := wsci.NewClient(s.WebAddr() + "/ws")

	var created WSSessionResponse
	if err := client.Call(&WSCreateSession{Creator: "portal-user", Name: "web-session"}, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" || !created.Active {
		t.Fatalf("created = %+v", created)
	}
	var list WSListSessionsResponse
	if err := client.Call(&WSListSessions{}, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 1 || list.Sessions[0].Name != "web-session" {
		t.Fatalf("list = %+v", list)
	}
	var ok WSOKResponse
	if err := client.Call(&WSAddUser{ID: "web-user", Name: "Web User", Community: "global"}, &ok); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Directory.User("web-user"); err != nil {
		t.Fatal(err)
	}
	if err := client.Call(&WSRegisterCommunity{Name: "hearme", Kind: "voip", Endpoint: "http://hearme/ws"}, &ok); err != nil {
		t.Fatal(err)
	}
	if _, found := s.Communities.Lookup("hearme"); !found {
		t.Fatal("community not registered")
	}
}

func TestAdmireLinkOverWeb(t *testing.T) {
	s := startServer(t, Config{})
	// An Admire community somewhere on the network.
	adm := admire.NewServer()
	t.Cleanup(adm.Stop)
	ts := httptest.NewServer(adm.WebService())
	t.Cleanup(ts.Close)
	conf, err := adm.CreateConference("joint")
	if err != nil {
		t.Fatal(err)
	}

	alice, err := s.Client(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	info, err := alice.CreateSession(context.Background(), "admire-linked")
	if err != nil {
		t.Fatal(err)
	}

	client := wsci.NewClient(s.WebAddr() + "/ws")
	var ok WSOKResponse
	if err := client.Call(&WSLinkAdmire{
		SessionID: info.ID, Conference: conf.ID, Endpoint: ts.URL,
	}, &ok); err != nil {
		t.Fatal(err)
	}

	// Media crosses the bridge: Admire member → MMCS subscriber.
	member, err := adm.Join(conf.ID, "remote")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := alice.SubscribeMedia(context.Background(), info, xgsp.MediaAudio, 64)
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewAudioSource(media.AudioConfig{})
	raw, err := src.NextPacket().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	member.Send(raw)
	select {
	case e := <-sub.C():
		if e.Kind != event.KindRTP {
			t.Fatalf("kind = %v", e.Kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("admire media never crossed the bridge")
	}
}

func TestAccessGridLink(t *testing.T) {
	s := startServer(t, Config{})
	vs := accessgrid.NewVenueServer()
	t.Cleanup(vs.Stop)
	if _, err := vs.CreateVenue("plenary"); err != nil {
		t.Fatal(err)
	}
	alice, err := s.Client(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	info, err := alice.CreateSession(context.Background(), "ag-linked")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LinkAccessGrid(context.Background(), info.ID, vs, "plenary"); err != nil {
		t.Fatal(err)
	}
	agUser, err := vs.Enter("plenary", "ag-user")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := alice.SubscribeMedia(context.Background(), info, xgsp.MediaVideo, 64)
	if err != nil {
		t.Fatal(err)
	}
	v := media.NewVideoSource(media.VideoConfig{})
	raw, err := v.NextFrame()[0].Marshal()
	if err != nil {
		t.Fatal(err)
	}
	agUser.Video.Send(raw)
	select {
	case <-sub.C():
	case <-time.After(5 * time.Second):
		t.Fatal("AG media never crossed the bridge")
	}
}

func TestEndToEndSIPPlusRTSP(t *testing.T) {
	// The paper's headline integration: a session fed by one community,
	// consumed by a player via RTSP.
	s := startServer(t, Config{})
	alice, err := s.Client(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	info, err := alice.CreateSession(context.Background(), "integrated")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Join(context.Background(), info.ID, "alice-term"); err != nil {
		t.Fatal(err)
	}

	player, err := streaming.DialPlayer(s.RTSP.URL(info.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	tracks, err := player.Describe()
	if err != nil {
		t.Fatal(err)
	}
	track, err := player.Setup("audio", tracks["audio"])
	if err != nil {
		t.Fatal(err)
	}
	if err := player.Play(); err != nil {
		t.Fatal(err)
	}

	sender, err := alice.MediaSender(info, xgsp.MediaAudio)
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewAudioSource(media.AudioConfig{FrameMillis: 5})
	if _, err := sender.SendAudio(src, 50, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return track.Received() >= 20 })
}

func TestLinkAdmireUnknownSession(t *testing.T) {
	s := startServer(t, Config{})
	if _, err := s.LinkAdmire(context.Background(), "s404", "adm-1", "http://nowhere/ws"); err == nil {
		t.Fatal("link of unknown session succeeded")
	}
}

func waitFor(t *testing.T, within time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}
