// Package core assembles the complete Global-MMCS prototype of the
// paper's Figure 2: the NaradaBrokering-substitute broker, the XGSP
// session server, the XGSP web server (WSDL-CI/SOAP frontend), the
// naming & directory service, the SIP servers (proxy/registrar/gateway),
// the H.323 servers (gatekeeper/gateway), the RTP proxies, the streaming
// (RTSP) server, the IM/presence service, and bridges to Admire and
// Access Grid communities.
package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/accessgrid"
	"github.com/globalmmcs/globalmmcs/internal/admire"
	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/clock"
	"github.com/globalmmcs/globalmmcs/internal/directory"
	"github.com/globalmmcs/globalmmcs/internal/h323"
	"github.com/globalmmcs/globalmmcs/internal/im"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/rtpproxy"
	"github.com/globalmmcs/globalmmcs/internal/sip"
	"github.com/globalmmcs/globalmmcs/internal/streaming"
	"github.com/globalmmcs/globalmmcs/internal/transport"
	"github.com/globalmmcs/globalmmcs/internal/wsci"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// Config parameterises a Global-MMCS server. The zero value starts every
// service on loopback with ephemeral ports.
type Config struct {
	// BrokerID names this node's broker. Default "gmmcs-broker".
	BrokerID string
	// BrokerRouteShards is the broker's routing-lock shard count
	// (0 = broker default).
	BrokerRouteShards int
	// BrokerMaxBatchBytes bounds the broker's per-session write batches
	// (0 = broker default).
	BrokerMaxBatchBytes int
	// BrokerFlushInterval is the broker's batch linger once a session
	// queue idles (0 = flush immediately).
	BrokerFlushInterval time.Duration
	// BrokerIngestBurst bounds the broker's per-sweep ingest burst
	// (0 = broker default; 1 = event-at-a-time ablation).
	BrokerIngestBurst int
	// BrokerWriterPool sets the broker's shared writer-pool width
	// (0 = GOMAXPROCS-derived default; negative = legacy
	// writer-goroutine-per-session plane).
	BrokerWriterPool int
	// BrokerListenURLs are transport URLs the broker accepts remote
	// clients and peer brokers on (e.g. "tcp://127.0.0.1:0"). Optional.
	BrokerListenURLs []string
	// BrokerPeers are peer broker URLs this node keeps supervised mesh
	// links to (dialed with redial/backoff, heartbeat-monitored).
	// Optional.
	BrokerPeers []string
	// BrokerMeshID scopes peer links to one federation mesh; brokers
	// link only when their mesh IDs match (empty matches anything).
	BrokerMeshID string
	// BrokerRecordPatterns are topic patterns the broker records to
	// durable topic logs for replay (see internal/topiclog). Optional.
	BrokerRecordPatterns []string
	// BrokerRecordDir is the root directory for topic logs (empty =
	// broker default under the OS temp dir).
	BrokerRecordDir string
	// BrokerRecordSegmentBytes caps one log segment's size before roll
	// (0 = broker default).
	BrokerRecordSegmentBytes int64
	// BrokerRecordMaxSegments / BrokerRecordMaxBytes bound each log's
	// retention; oldest segments are reaped past either (0 = unbounded).
	BrokerRecordMaxSegments int
	BrokerRecordMaxBytes    int64
	// Domain is the SIP domain. Default "mmcs.local".
	Domain string
	// WebAddr is the XGSP web server's HTTP address. Default
	// "127.0.0.1:0".
	WebAddr string
	// DisableSIP/DisableH323/DisableRTSP/DisableIM turn subsystems off.
	DisableSIP  bool
	DisableH323 bool
	DisableRTSP bool
	DisableIM   bool
	// Clock drives schedulers; nil = system clock.
	Clock clock.Clock
	// Metrics receives all counters; nil allocates a private registry.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.BrokerID == "" {
		c.BrokerID = "gmmcs-broker"
	}
	if c.Domain == "" {
		c.Domain = "mmcs.local"
	}
	if c.WebAddr == "" {
		c.WebAddr = "127.0.0.1:0"
	}
	if c.Clock == nil {
		c.Clock = clock.System{}
	}
	if c.Metrics == nil {
		c.Metrics = &metrics.Registry{}
	}
	return c
}

// Server is a running Global-MMCS node.
type Server struct {
	cfg Config

	// Broker is the messaging middleware node.
	Broker *broker.Broker
	// XGSP is the session server.
	XGSP *xgsp.Server
	// Directory is the naming & directory store.
	Directory *directory.Store
	// Communities is the registry of community collaboration services.
	Communities *wsci.Registry
	// SIP is the SIP registrar/proxy/gateway (nil when disabled).
	SIP *sip.Server
	// Gatekeeper and H323Gateway are the H.323 servers (nil when
	// disabled).
	Gatekeeper  *h323.Gatekeeper
	H323Gateway *h323.Gateway
	// RTSP is the streaming server (nil when disabled).
	RTSP *streaming.Server
	// IM is the chat/presence service (nil when disabled).
	IM *im.Service

	webLn   net.Listener
	webSrv  *http.Server
	gwXGSP  []*xgsp.Client
	proxies []*rtpproxy.Proxy
	clients []*broker.Client
	mesh    *broker.Mesh

	mu      sync.Mutex
	bridges []closer
	stopped bool
	wg      sync.WaitGroup
}

type closer interface{ Close() }

// Start assembles and starts a Global-MMCS node. ctx bounds the startup
// handshakes; a cancelled ctx aborts startup and tears down whatever was
// already running.
func Start(ctx context.Context, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		Directory:   &directory.Store{},
		Communities: wsci.NewRegistry(),
	}
	s.Broker = broker.New(broker.Config{
		ID:                 cfg.BrokerID,
		RouteShards:        cfg.BrokerRouteShards,
		MaxBatchBytes:      cfg.BrokerMaxBatchBytes,
		FlushInterval:      cfg.BrokerFlushInterval,
		IngestBurst:        cfg.BrokerIngestBurst,
		WriterPoolSize:     cfg.BrokerWriterPool,
		MeshID:             cfg.BrokerMeshID,
		RecordPatterns:     cfg.BrokerRecordPatterns,
		RecordDir:          cfg.BrokerRecordDir,
		RecordSegmentBytes: cfg.BrokerRecordSegmentBytes,
		RecordMaxSegments:  cfg.BrokerRecordMaxSegments,
		RecordMaxBytes:     cfg.BrokerRecordMaxBytes,
		Metrics:            cfg.Metrics,
	})
	for _, url := range cfg.BrokerListenURLs {
		if _, err := s.Broker.Listen(url); err != nil {
			s.Stop()
			return nil, fmt.Errorf("core: broker listen %s: %w", url, err)
		}
	}
	if len(cfg.BrokerPeers) > 0 {
		s.mesh = broker.NewMesh(s.Broker, broker.MeshConfig{Peers: cfg.BrokerPeers})
	}

	// XGSP session server.
	xgspBC, err := s.localClient("xgsp-session-server")
	if err != nil {
		s.Stop()
		return nil, err
	}
	s.XGSP = xgsp.NewServer(xgspBC, xgsp.ServerConfig{Clock: cfg.Clock, Metrics: cfg.Metrics})
	if err := s.XGSP.Start(); err != nil {
		s.Stop()
		return nil, fmt.Errorf("core: starting xgsp server: %w", err)
	}

	// IM / presence service.
	if !cfg.DisableIM {
		imBC, err := s.localClient("im-service")
		if err != nil {
			s.Stop()
			return nil, err
		}
		s.IM, err = im.NewService(ctx, imBC, im.ServiceConfig{
			Communities: []string{"global", "sip", "h323", "admire", "accessgrid"},
		})
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("core: starting im service: %w", err)
		}
	}

	// SIP servers.
	if !cfg.DisableSIP {
		xc, proxy, err := s.gatewayKit(ctx, "sip")
		if err != nil {
			s.Stop()
			return nil, err
		}
		sipCfg := sip.ServerConfig{
			Domain:    cfg.Domain,
			XGSP:      xc,
			Proxy:     proxy,
			Directory: s.Directory,
			Clock:     cfg.Clock,
			Metrics:   cfg.Metrics,
		}
		if s.IM != nil {
			sipCfg.Chat = s.IM
		}
		s.SIP, err = sip.NewServer(sipCfg)
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("core: starting sip server: %w", err)
		}
	}

	// H.323 servers.
	if !cfg.DisableH323 {
		xc, proxy, err := s.gatewayKit(ctx, "h323")
		if err != nil {
			s.Stop()
			return nil, err
		}
		s.H323Gateway, err = h323.NewGateway(h323.GatewayConfig{
			XGSP: xc, Proxy: proxy, Metrics: cfg.Metrics,
		})
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("core: starting h323 gateway: %w", err)
		}
		s.Gatekeeper, err = h323.NewGatekeeper(h323.GatekeeperConfig{
			SignalAddr: s.H323Gateway.Addr(), Directory: s.Directory,
			Clock: cfg.Clock, Metrics: cfg.Metrics,
		})
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("core: starting gatekeeper: %w", err)
		}
	}

	// Streaming server.
	if !cfg.DisableRTSP {
		xcBC, err := s.localClient("rtsp-xgsp")
		if err != nil {
			s.Stop()
			return nil, err
		}
		xc, err := xgsp.NewClient(ctx, xcBC, "rtsp-server")
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("core: rtsp xgsp client: %w", err)
		}
		s.gwXGSP = append(s.gwXGSP, xc)
		mediaBC, err := s.localClient("rtsp-media")
		if err != nil {
			s.Stop()
			return nil, err
		}
		s.RTSP, err = streaming.NewServer(streaming.ServerConfig{
			XGSP: xc, Broker: mediaBC, Metrics: cfg.Metrics,
		})
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("core: starting rtsp server: %w", err)
		}
	}

	// XGSP web server (SOAP frontend).
	if err := s.startWebServer(ctx); err != nil {
		s.Stop()
		return nil, err
	}
	return s, nil
}

// localClient attaches an in-process broker client tracked for shutdown.
func (s *Server) localClient(id string) (*broker.Client, error) {
	bc, err := s.Broker.LocalClient(id, transport.LinkProfile{})
	if err != nil {
		return nil, fmt.Errorf("core: attaching %s: %w", id, err)
	}
	s.clients = append(s.clients, bc)
	return bc, nil
}

// gatewayKit builds the xgsp client + rtp proxy pair every media gateway
// needs.
func (s *Server) gatewayKit(ctx context.Context, name string) (*xgsp.Client, *rtpproxy.Proxy, error) {
	xcBC, err := s.localClient(name + "-gateway-xgsp")
	if err != nil {
		return nil, nil, err
	}
	xc, err := xgsp.NewClient(ctx, xcBC, name+"-gateway")
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s gateway xgsp client: %w", name, err)
	}
	s.gwXGSP = append(s.gwXGSP, xc)
	proxyBC, err := s.localClient(name + "-rtpproxy")
	if err != nil {
		return nil, nil, err
	}
	proxy := rtpproxy.New(proxyBC)
	s.proxies = append(s.proxies, proxy)
	return xc, proxy, nil
}

// WebAddr returns the XGSP web server's HTTP base URL.
func (s *Server) WebAddr() string {
	if s.webLn == nil {
		return ""
	}
	return "http://" + s.webLn.Addr().String()
}

// LinkAdmire bridges a session to an Admire conference served at the
// given WSDL-CI endpoint, registering the community on the way.
func (s *Server) LinkAdmire(ctx context.Context, sessionID, confID, endpoint string) (*admire.Bridge, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	info := s.XGSP.Lookup(sessionID)
	if info == nil {
		return nil, fmt.Errorf("core: no session %s: %w", sessionID, ErrSessionNotFound)
	}
	if err := s.Communities.Register(wsci.ServiceEntry{
		Community: "admire", Kind: "admire", Endpoint: endpoint,
	}); err != nil {
		return nil, err
	}
	bc, err := s.localClient("admire-bridge-" + sessionID)
	if err != nil {
		return nil, err
	}
	bridge, err := admire.NewBridge(bc, info, confID, wsci.NewClient(endpoint))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.bridges = append(s.bridges, bridge)
	s.mu.Unlock()
	return bridge, nil
}

// LinkAccessGrid bridges a session to a venue on an in-process venue
// server.
func (s *Server) LinkAccessGrid(ctx context.Context, sessionID string, vs *accessgrid.VenueServer, venue string) (*accessgrid.Bridge, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	info := s.XGSP.Lookup(sessionID)
	if info == nil {
		return nil, fmt.Errorf("core: no session %s: %w", sessionID, ErrSessionNotFound)
	}
	bc, err := s.localClient("ag-bridge-" + sessionID)
	if err != nil {
		return nil, err
	}
	bridge, err := accessgrid.NewBridge(bc, vs, venue, info)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.bridges = append(s.bridges, bridge)
	s.mu.Unlock()
	return bridge, nil
}

// Client attaches an in-process collaboration client for a user.
func (s *Server) Client(ctx context.Context, userID string) (*Client, error) {
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		return nil, ErrStopped
	}
	bc, err := s.Broker.LocalClient("user-"+userID, transport.LinkProfile{})
	if err != nil {
		if errors.Is(err, broker.ErrBrokerStopped) {
			return nil, ErrStopped
		}
		return nil, fmt.Errorf("core: attaching client %s: %w", userID, err)
	}
	c, err := NewClient(ctx, bc, userID)
	if err != nil {
		return nil, err
	}
	c.Metrics = s.cfg.Metrics
	return c, nil
}

// Stop shuts every subsystem down in dependency order.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	bridges := s.bridges
	s.bridges = nil
	s.mu.Unlock()

	for _, b := range bridges {
		b.Close()
	}
	if s.webSrv != nil {
		_ = s.webSrv.Close()
	}
	if s.RTSP != nil {
		s.RTSP.Stop()
	}
	if s.Gatekeeper != nil {
		s.Gatekeeper.Stop()
	}
	if s.H323Gateway != nil {
		s.H323Gateway.Stop()
	}
	if s.SIP != nil {
		s.SIP.Stop()
	}
	if s.IM != nil {
		s.IM.Stop()
	}
	for _, p := range s.proxies {
		p.Close()
	}
	for _, xc := range s.gwXGSP {
		xc.Close()
	}
	if s.XGSP != nil {
		s.XGSP.Stop()
	}
	for _, bc := range s.clients {
		_ = bc.Close()
	}
	if s.mesh != nil {
		s.mesh.Stop()
	}
	if s.Broker != nil {
		s.Broker.Stop()
	}
	s.wg.Wait()
}

// ErrStopped is returned by operations on a stopped server.
var ErrStopped = errors.New("core: server stopped")

// ErrSessionNotFound is returned when an operation names an unknown
// session.
var ErrSessionNotFound = errors.New("core: session not found")

// WaitReady blocks until the web listener answers, bounded by ctx. It
// replaces the ad-hoc startup sleeps tests and examples used to need.
func (s *Server) WaitReady(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := net.DialTimeout("tcp", s.webLn.Addr().String(), time.Second)
		if err == nil {
			conn.Close()
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}
