package core

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"net"
	"net/http"

	"github.com/globalmmcs/globalmmcs/internal/directory"
	"github.com/globalmmcs/globalmmcs/internal/wsci"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// SOAP payloads of the XGSP web server — the WSDL-CI frontend through
// which web portals and other communities drive Global-MMCS (§2.2).
type (
	// WSCreateSession creates a session on behalf of a user.
	WSCreateSession struct {
		XMLName xml.Name `xml:"CreateSession"`
		Creator string   `xml:"creator"`
		Name    string   `xml:"name"`
		// Start/End (RFC 3339) make the session scheduled.
		Start string `xml:"start,omitempty"`
		End   string `xml:"end,omitempty"`
	}
	// WSSessionResponse returns the session's catalogue entry.
	WSSessionResponse struct {
		XMLName xml.Name `xml:"CreateSessionResponse"`
		ID      string   `xml:"id"`
		Name    string   `xml:"name"`
		Active  bool     `xml:"active"`
		Control string   `xml:"controlTopic"`
	}
	// WSListSessions lists sessions.
	WSListSessions struct {
		XMLName          xml.Name `xml:"ListSessions"`
		IncludeScheduled bool     `xml:"includeScheduled"`
	}
	// WSListSessionsResponse carries the catalogue.
	WSListSessionsResponse struct {
		XMLName  xml.Name         `xml:"ListSessionsResponse"`
		Sessions []WSSessionEntry `xml:"session"`
	}
	// WSSessionEntry is one catalogue row.
	WSSessionEntry struct {
		ID      string `xml:"id,attr"`
		Name    string `xml:"name,attr"`
		Active  bool   `xml:"active,attr"`
		Members int    `xml:"members,attr"`
	}
	// WSAddUser registers a user in the directory.
	WSAddUser struct {
		XMLName   xml.Name `xml:"AddUser"`
		ID        string   `xml:"id"`
		Name      string   `xml:"name"`
		Community string   `xml:"community"`
	}
	// WSOKResponse is a generic acknowledgement.
	WSOKResponse struct {
		XMLName xml.Name `xml:"OKResponse"`
		OK      bool     `xml:"ok"`
	}
	// WSRegisterCommunity registers a community collaboration service.
	WSRegisterCommunity struct {
		XMLName  xml.Name `xml:"RegisterCommunity"`
		Name     string   `xml:"name"`
		Kind     string   `xml:"kind"`
		Endpoint string   `xml:"endpoint"`
	}
	// WSLinkAdmire bridges a session to an Admire conference.
	WSLinkAdmire struct {
		XMLName    xml.Name `xml:"LinkAdmire"`
		SessionID  string   `xml:"session"`
		Conference string   `xml:"conference"`
		Endpoint   string   `xml:"endpoint"`
	}
)

// webUserID is the identity the web frontend acts under in XGSP.
const webUserID = "xgsp-web-server"

func (s *Server) startWebServer(ctx context.Context) error {
	webBC, err := s.localClient(webUserID)
	if err != nil {
		return err
	}
	xc, err := xgsp.NewClient(ctx, webBC, webUserID)
	if err != nil {
		return fmt.Errorf("core: web xgsp client: %w", err)
	}
	s.gwXGSP = append(s.gwXGSP, xc)

	svc := wsci.NewService("GlobalMMCS")
	svc.Register(wsci.Operation{
		Name: "CreateSession", Doc: "create an ad-hoc or scheduled session",
		Input: "CreateSession", Output: "CreateSessionResponse",
	}, func(ctx context.Context, action []byte) (any, error) {
		var req WSCreateSession
		if err := xml.Unmarshal(action, &req); err != nil {
			return nil, err
		}
		// Sessions created over the web act under the web server's
		// identity but record the human creator in the description.
		info, err := xc.Create(ctx, xgsp.CreateSession{
			Name:        req.Name,
			Description: "created via web by " + req.Creator,
			Start:       req.Start,
			End:         req.End,
		})
		if err != nil {
			return nil, err
		}
		return &WSSessionResponse{
			ID: info.ID, Name: info.Name, Active: info.Active, Control: info.ControlTopic,
		}, nil
	})
	svc.Register(wsci.Operation{
		Name: "ListSessions", Doc: "list active (and scheduled) sessions",
		Input: "ListSessions", Output: "ListSessionsResponse",
	}, func(ctx context.Context, action []byte) (any, error) {
		var req WSListSessions
		if err := xml.Unmarshal(action, &req); err != nil {
			return nil, err
		}
		list, err := xc.List(ctx, req.IncludeScheduled)
		if err != nil {
			return nil, err
		}
		resp := &WSListSessionsResponse{}
		for _, info := range list {
			resp.Sessions = append(resp.Sessions, WSSessionEntry{
				ID: info.ID, Name: info.Name, Active: info.Active, Members: len(info.Members),
			})
		}
		return resp, nil
	})
	svc.Register(wsci.Operation{
		Name: "AddUser", Doc: "register a user account",
		Input: "AddUser", Output: "OKResponse",
	}, func(ctx context.Context, action []byte) (any, error) {
		var req WSAddUser
		if err := xml.Unmarshal(action, &req); err != nil {
			return nil, err
		}
		if err := s.Directory.AddUser(directory.User{
			ID: req.ID, Name: req.Name, Community: req.Community,
		}); err != nil {
			return nil, err
		}
		return &WSOKResponse{OK: true}, nil
	})
	svc.Register(wsci.Operation{
		Name: "RegisterCommunity", Doc: "register a community collaboration service",
		Input: "RegisterCommunity", Output: "OKResponse",
	}, func(ctx context.Context, action []byte) (any, error) {
		var req WSRegisterCommunity
		if err := xml.Unmarshal(action, &req); err != nil {
			return nil, err
		}
		if err := s.Communities.Register(wsci.ServiceEntry{
			Community: req.Name, Kind: req.Kind, Endpoint: req.Endpoint,
		}); err != nil {
			return nil, err
		}
		if err := s.Directory.AddCommunity(directory.Community{
			Name: req.Name, ControlEndpoint: req.Endpoint,
		}); err != nil && !isExists(err) {
			return nil, err
		}
		return &WSOKResponse{OK: true}, nil
	})
	svc.Register(wsci.Operation{
		Name: "LinkAdmire", Doc: "bridge a session to an Admire conference",
		Input: "LinkAdmire", Output: "OKResponse",
	}, func(ctx context.Context, action []byte) (any, error) {
		var req WSLinkAdmire
		if err := xml.Unmarshal(action, &req); err != nil {
			return nil, err
		}
		if _, err := s.LinkAdmire(ctx, req.SessionID, req.Conference, req.Endpoint); err != nil {
			return nil, err
		}
		return &WSOKResponse{OK: true}, nil
	})

	ln, err := net.Listen("tcp", s.cfg.WebAddr)
	if err != nil {
		return fmt.Errorf("core: binding web server: %w", err)
	}
	s.webLn = ln
	mux := http.NewServeMux()
	mux.Handle("/ws", svc)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.webSrv = &http.Server{Handler: mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.webSrv.Serve(ln)
	}()
	return nil
}

func isExists(err error) bool {
	return errors.Is(err, directory.ErrExists)
}
