package wsci

import (
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Handler processes one SOAP action: it decodes the raw action element
// and returns a response value to be wrapped in the reply envelope. ctx
// is the HTTP request context, so a disconnecting caller cancels
// whatever session-server round trips the operation performs.
type Handler func(ctx context.Context, action []byte) (response any, err error)

// Service hosts WSDL-CI operations over HTTP. It implements
// http.Handler; mount it on any mux. The zero value is unusable; create
// with NewService.
type Service struct {
	name string

	mu       sync.RWMutex
	handlers map[string]Handler
	ops      map[string]Operation
}

// Operation describes one WSDL-CI operation for the interface document.
type Operation struct {
	// Name is the action element's local name.
	Name string
	// Doc is a one-line description rendered into the WSDL.
	Doc string
	// Input/Output name the message element types.
	Input, Output string
}

// NewService creates an empty service with the given name.
func NewService(name string) *Service {
	return &Service{
		name:     name,
		handlers: make(map[string]Handler),
		ops:      make(map[string]Operation),
	}
}

// Register binds a handler to an operation. Registering the same name
// twice replaces the previous handler.
func (s *Service) Register(op Operation, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[op.Name] = h
	s.ops[op.Name] = op
}

// Operations lists registered operations sorted by name.
func (s *Service) Operations() []Operation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Operation, 0, len(s.ops))
	for _, op := range s.ops {
		out = append(out, op)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ServeHTTP implements http.Handler: POST = SOAP call, GET with ?wsdl =
// interface document.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet:
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		_, _ = io.WriteString(w, s.WSDL(requestBaseURL(r)))
	case r.Method == http.MethodPost:
		s.serveCall(w, r)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func requestBaseURL(r *http.Request) string {
	scheme := "http"
	if r.TLS != nil {
		scheme = "https"
	}
	return scheme + "://" + r.Host + r.URL.Path
}

func (s *Service) serveCall(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSOAPBody))
	if err != nil {
		s.fault(w, "Client", "reading request", err)
		return
	}
	inner, err := UnmarshalEnvelope(body)
	if err != nil {
		s.fault(w, "Client", "malformed envelope", err)
		return
	}
	name, err := actionName(inner)
	if err != nil {
		s.fault(w, "Client", "missing action element", err)
		return
	}
	s.mu.RLock()
	h, ok := s.handlers[name]
	s.mu.RUnlock()
	if !ok {
		s.fault(w, "Client", "unknown operation "+name, nil)
		return
	}
	resp, err := h(r.Context(), inner)
	if err != nil {
		s.fault(w, "Server", "operation "+name+" failed", err)
		return
	}
	out, err := MarshalEnvelope(resp)
	if err != nil {
		s.fault(w, "Server", "encoding response", err)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = w.Write(out)
}

func (s *Service) fault(w http.ResponseWriter, code, msg string, err error) {
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write(MarshalFault(code, msg, detail))
}

// WSDL renders a simplified WSDL 1.1 interface document for the service —
// the WSDL-CI descriptor a community publishes so Global-MMCS can
// generate an interface component for it.
func (s *Service) WSDL(endpoint string) string {
	ops := s.Operations()
	var b strings.Builder
	b.WriteString(xml.Header)
	fmt.Fprintf(&b, `<definitions name=%q targetNamespace=%q xmlns:tns=%q xmlns="http://schemas.xmlsoap.org/wsdl/">`+"\n", s.name, ServiceNS, ServiceNS)
	for _, op := range ops {
		fmt.Fprintf(&b, "  <message name=%q><part name=\"body\" element=\"tns:%s\"/></message>\n", op.Name+"Input", op.Input)
		fmt.Fprintf(&b, "  <message name=%q><part name=\"body\" element=\"tns:%s\"/></message>\n", op.Name+"Output", op.Output)
	}
	fmt.Fprintf(&b, "  <portType name=%q>\n", s.name+"PortType")
	for _, op := range ops {
		fmt.Fprintf(&b, "    <operation name=%q>\n", op.Name)
		if op.Doc != "" {
			fmt.Fprintf(&b, "      <documentation>%s</documentation>\n", op.Doc)
		}
		fmt.Fprintf(&b, "      <input message=\"tns:%sInput\"/>\n      <output message=\"tns:%sOutput\"/>\n    </operation>\n", op.Name, op.Name)
	}
	b.WriteString("  </portType>\n")
	fmt.Fprintf(&b, "  <service name=%q><port name=%q><address location=%q/></port></service>\n", s.name, s.name+"Port", endpoint)
	b.WriteString("</definitions>\n")
	return b.String()
}

// Registry tracks community collaboration services by name — the
// "directory of different communities and collaboration servers" of
// §2.2. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	services map[string]ServiceEntry
}

// ServiceEntry describes one registered community service.
type ServiceEntry struct {
	// Community names the autonomous collaboration community.
	Community string
	// Kind describes the server ("admire", "h323-mcu", "helix", ...).
	Kind string
	// Endpoint is the WSDL-CI SOAP URL.
	Endpoint string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{services: make(map[string]ServiceEntry)}
}

// Register adds or replaces a community service entry.
func (r *Registry) Register(e ServiceEntry) error {
	if e.Community == "" || e.Endpoint == "" {
		return fmt.Errorf("wsci: registry entry needs community and endpoint, got %+v", e)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.services[e.Community] = e
	return nil
}

// Lookup finds a community's service entry.
func (r *Registry) Lookup(community string) (ServiceEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.services[community]
	return e, ok
}

// Remove deletes a community's entry.
func (r *Registry) Remove(community string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.services, community)
}

// List returns all entries sorted by community.
func (r *Registry) List() []ServiceEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ServiceEntry, 0, len(r.services))
	for _, e := range r.services {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Community < out[j].Community })
	return out
}

// Client returns a SOAP client for a community's service.
func (r *Registry) Client(community string) (*Client, error) {
	e, ok := r.Lookup(community)
	if !ok {
		return nil, fmt.Errorf("wsci: community %q not registered", community)
	}
	return NewClient(e.Endpoint), nil
}
