// Package wsci implements WSDL-CI, the paper's web-services collaboration
// interface: a SOAP 1.1-style envelope over HTTP, a service host that
// dispatches actions to registered handlers, a client for invoking remote
// community services, interface descriptors rendered as simplified WSDL,
// and a registry of community collaboration servers.
//
// Through WSDL-CI the XGSP web server schedules third-party collaboration
// servers (an H.323 MCU, the Admire system, a streaming server) into
// active sessions, as described in §2.2 of the paper.
package wsci

import (
	"bytes"
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Envelope namespaces (SOAP 1.1 style).
const (
	soapNS = "http://schemas.xmlsoap.org/soap/envelope/"
	// ServiceNS is the namespace of Global-MMCS collaboration bodies.
	ServiceNS = "http://globalmmcs.org/wsci"
)

// maxSOAPBody bounds request/response bodies read from the network.
const maxSOAPBody = 1 << 20

// Envelope is a SOAP message: exactly one body payload, optionally a
// fault.
type Envelope struct {
	XMLName xml.Name `xml:"Envelope"`
	Body    Body     `xml:"Body"`
}

// Body wraps the action payload or a fault.
type Body struct {
	Fault *Fault `xml:"Fault,omitempty"`
	// Inner is the raw action element.
	Inner []byte `xml:",innerxml"`
}

// Fault is a SOAP fault.
type Fault struct {
	XMLName xml.Name `xml:"Fault"`
	Code    string   `xml:"faultcode"`
	String  string   `xml:"faultstring"`
	Detail  string   `xml:"detail,omitempty"`
}

// Error implements error so faults can be returned directly.
func (f *Fault) Error() string {
	return fmt.Sprintf("wsci: fault %s: %s", f.Code, f.String)
}

// MarshalEnvelope wraps an action value in a SOAP envelope. action must
// marshal to a single XML element.
func MarshalEnvelope(action any) ([]byte, error) {
	inner, err := xml.Marshal(action)
	if err != nil {
		return nil, fmt.Errorf("wsci: marshalling action: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	buf.WriteString(`<soap:Envelope xmlns:soap="` + soapNS + `" xmlns:m="` + ServiceNS + `"><soap:Body>`)
	buf.Write(inner)
	buf.WriteString(`</soap:Body></soap:Envelope>`)
	return buf.Bytes(), nil
}

// MarshalFault wraps a fault in a SOAP envelope.
func MarshalFault(code, msg, detail string) []byte {
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	buf.WriteString(`<soap:Envelope xmlns:soap="` + soapNS + `"><soap:Body><soap:Fault>`)
	writeEscaped := func(tag, val string) {
		buf.WriteString("<" + tag + ">")
		_ = xml.EscapeText(&buf, []byte(val))
		buf.WriteString("</" + tag + ">")
	}
	writeEscaped("faultcode", code)
	writeEscaped("faultstring", msg)
	if detail != "" {
		writeEscaped("detail", detail)
	}
	buf.WriteString(`</soap:Fault></soap:Body></soap:Envelope>`)
	return buf.Bytes()
}

// UnmarshalEnvelope parses a SOAP envelope and returns the raw inner body
// XML. A fault in the body is returned as *Fault error.
func UnmarshalEnvelope(b []byte) ([]byte, error) {
	var env Envelope
	if err := xml.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("wsci: parsing envelope: %w", err)
	}
	if env.Body.Fault != nil {
		return nil, env.Body.Fault
	}
	inner := bytes.TrimSpace(env.Body.Inner)
	if len(inner) == 0 {
		return nil, errors.New("wsci: empty SOAP body")
	}
	return inner, nil
}

// actionName extracts the local name of the first element in body XML.
func actionName(inner []byte) (string, error) {
	dec := xml.NewDecoder(bytes.NewReader(inner))
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("wsci: reading action element: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			return se.Name.Local, nil
		}
	}
}

// Client invokes SOAP operations on a remote WSDL-CI service.
type Client struct {
	// Endpoint is the service URL.
	Endpoint string
	// HTTPClient overrides the default client (e.g. for tests).
	HTTPClient *http.Client
}

// NewClient creates a client for a service endpoint.
func NewClient(endpoint string) *Client {
	return &Client{Endpoint: endpoint}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 15 * time.Second}
}

// Call invokes the operation carried by request and decodes the response
// body element into response (a pointer to an XML-taggable struct).
func (c *Client) Call(request, response any) error {
	return c.CallContext(context.Background(), request, response)
}

// CallContext is Call bounded by ctx: cancelling ctx aborts the HTTP
// round trip.
func (c *Client) CallContext(ctx context.Context, request, response any) error {
	body, err := MarshalEnvelope(request)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("wsci: building request: %w", err)
	}
	req.Header.Set("Content-Type", "text/xml; charset=utf-8")
	action, err := actionName(body[len(xml.Header):])
	if err == nil {
		req.Header.Set("SOAPAction", ServiceNS+"#"+action)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("wsci: calling %s: %w", c.Endpoint, err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxSOAPBody))
	if err != nil {
		return fmt.Errorf("wsci: reading response: %w", err)
	}
	inner, err := UnmarshalEnvelope(respBody)
	if err != nil {
		return err
	}
	if response == nil {
		return nil
	}
	if err := xml.Unmarshal(inner, response); err != nil {
		return fmt.Errorf("wsci: decoding response body: %w", err)
	}
	return nil
}
