package wsci

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Echo is a test operation payload.
type Echo struct {
	XMLName xml.Name `xml:"Echo"`
	Text    string   `xml:"text"`
}

// EchoResponse is its reply.
type EchoResponse struct {
	XMLName xml.Name `xml:"EchoResponse"`
	Text    string   `xml:"text"`
}

func echoService() *Service {
	s := NewService("EchoService")
	s.Register(Operation{Name: "Echo", Doc: "echoes text", Input: "Echo", Output: "EchoResponse"},
		func(_ context.Context, action []byte) (any, error) {
			var req Echo
			if err := xml.Unmarshal(action, &req); err != nil {
				return nil, err
			}
			if req.Text == "fail" {
				return nil, errors.New("requested failure")
			}
			return &EchoResponse{Text: req.Text}, nil
		})
	return s
}

func TestEnvelopeRoundtrip(t *testing.T) {
	b, err := MarshalEnvelope(&Echo{Text: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := UnmarshalEnvelope(b)
	if err != nil {
		t.Fatal(err)
	}
	var got Echo
	if err := xml.Unmarshal(inner, &got); err != nil {
		t.Fatal(err)
	}
	if got.Text != "hello" {
		t.Fatalf("text = %q", got.Text)
	}
}

func TestEnvelopeFault(t *testing.T) {
	b := MarshalFault("Server", "boom", "detail <here>")
	_, err := UnmarshalEnvelope(b)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if f.Code != "Server" || f.String != "boom" || f.Detail != "detail <here>" {
		t.Fatalf("fault = %+v", f)
	}
	if !strings.Contains(f.Error(), "boom") {
		t.Fatal("fault error string")
	}
}

func TestEnvelopeErrors(t *testing.T) {
	if _, err := UnmarshalEnvelope([]byte("not xml <")); err == nil {
		t.Error("garbage accepted")
	}
	empty := []byte(`<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body> </Body></Envelope>`)
	if _, err := UnmarshalEnvelope(empty); err == nil {
		t.Error("empty body accepted")
	}
}

func TestServiceCallOverHTTP(t *testing.T) {
	ts := httptest.NewServer(echoService())
	defer ts.Close()
	c := NewClient(ts.URL)
	var resp EchoResponse
	if err := c.Call(&Echo{Text: "round trip"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Text != "round trip" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestServiceFaultPropagates(t *testing.T) {
	ts := httptest.NewServer(echoService())
	defer ts.Close()
	c := NewClient(ts.URL)
	var resp EchoResponse
	err := c.Call(&Echo{Text: "fail"}, &resp)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
	if f.Code != "Server" {
		t.Fatalf("fault = %+v", f)
	}
}

func TestServiceUnknownOperation(t *testing.T) {
	ts := httptest.NewServer(echoService())
	defer ts.Close()
	c := NewClient(ts.URL)
	type Bogus struct {
		XMLName xml.Name `xml:"Bogus"`
	}
	err := c.Call(&Bogus{}, nil)
	var f *Fault
	if !errors.As(err, &f) || !strings.Contains(f.String, "unknown operation") {
		t.Fatalf("err = %v", err)
	}
}

func TestServiceRejectsGarbagePost(t *testing.T) {
	ts := httptest.NewServer(echoService())
	defer ts.Close()
	resp, err := http.Post(ts.URL, "text/xml", strings.NewReader("<<<"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestServiceMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(echoService())
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestWSDLDocument(t *testing.T) {
	ts := httptest.NewServer(echoService())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := fmt.Fprint(&buf, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{"EchoService", `operation name="Echo"`, "echoes text", "portType"} {
		if !strings.Contains(doc, want) {
			t.Errorf("wsdl missing %q:\n%s", want, doc)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestOperationsSorted(t *testing.T) {
	s := NewService("S")
	s.Register(Operation{Name: "Zeta"}, func(context.Context, []byte) (any, error) { return nil, nil })
	s.Register(Operation{Name: "Alpha"}, func(context.Context, []byte) (any, error) { return nil, nil })
	ops := s.Operations()
	if len(ops) != 2 || ops[0].Name != "Alpha" || ops[1].Name != "Zeta" {
		t.Fatalf("ops = %v", ops)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(ServiceEntry{}); err == nil {
		t.Fatal("empty entry accepted")
	}
	entries := []ServiceEntry{
		{Community: "admire", Kind: "admire", Endpoint: "http://beihang/ws"},
		{Community: "h323", Kind: "h323-mcu", Endpoint: "http://mcu/ws"},
	}
	for _, e := range entries {
		if err := r.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := r.Lookup("admire")
	if !ok || got.Endpoint != "http://beihang/ws" {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
	if _, ok := r.Lookup("nowhere"); ok {
		t.Fatal("phantom lookup")
	}
	if list := r.List(); len(list) != 2 || list[0].Community != "admire" {
		t.Fatalf("list = %v", list)
	}
	c, err := r.Client("h323")
	if err != nil || c.Endpoint != "http://mcu/ws" {
		t.Fatalf("client = %+v, %v", c, err)
	}
	r.Remove("h323")
	if _, err := r.Client("h323"); err == nil {
		t.Fatal("client for removed community")
	}
}
