package bench

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// MeshConfig parameterises the cross-mesh fan-out benchmark: a ring of
// federated brokers linked by mesh-supervised TCP peer links, with
// subscribers spread round-robin across all nodes and publishers
// flooding node 0. The benchmark measures what federation costs and
// buys: cross-mesh delivered events per second, per-hop added latency
// (each event carries its publish timestamp), and the loop-guard
// effectiveness on the cyclic topology (client-observed duplicates must
// be zero; the dedup counters show the ring's redundant arrivals being
// absorbed broker-side).
type MeshConfig struct {
	// Mode selects the routing mode. Default ModeClientServer.
	Mode broker.Mode
	// Brokers is the mesh size. Default 4; 1 runs the single-broker
	// control cell (same clients, no federation).
	Brokers int
	// Topology shapes the peer links: "ring" (default; broker i dials its
	// successor, a cycle for n >= 3), "star" (every leaf dials broker 0),
	// or "full" (every pair linked).
	Topology string
	// MeshFlood disables routed forwarding on every broker — the flood
	// ablation cell, where TTL + dedup absorb the redundant ring copies
	// instead of the spanning tree never sending them.
	MeshFlood bool
	// CreditWindow overrides each broker's per-peer-link credit window
	// (0 keeps the broker default; negative disables flow control).
	CreditWindow int
	// Subscribers is the total fan-out width, spread round-robin across
	// brokers. Default 64.
	Subscribers int
	// Publishers is the number of concurrent publishers, all on broker 0.
	// Default 4.
	Publishers int
	// PayloadBytes sizes each event payload (min 8: the leading 8 bytes
	// carry the publish timestamp). Default 1200.
	PayloadBytes int
	// Warmup runs load before the measurement window opens. Default
	// 300ms (on top of mesh/advertisement convergence, which is awaited
	// explicitly).
	Warmup time.Duration
	// Duration is the measurement window. Default 2s.
	Duration time.Duration
	// QueueDepth overrides each broker's per-session best-effort depth.
	// Default 8192.
	QueueDepth int
	// FlushInterval is each broker's batch linger (default 1ms).
	FlushInterval time.Duration
}

func (c MeshConfig) withDefaults() MeshConfig {
	if c.Mode == 0 {
		c.Mode = broker.ModeClientServer
	}
	if c.Brokers <= 0 {
		c.Brokers = 4
	}
	if c.Topology == "" {
		c.Topology = "ring"
	}
	if c.Subscribers <= 0 {
		c.Subscribers = 64
	}
	if c.Publishers <= 0 {
		c.Publishers = 4
	}
	if c.PayloadBytes < 8 {
		c.PayloadBytes = 1200
	}
	if c.Warmup <= 0 {
		c.Warmup = 300 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8192
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = time.Millisecond
	}
	if c.FlushInterval < 0 {
		c.FlushInterval = 0
	}
	return c
}

// HopLatency is the delivery-latency distribution at one ring distance
// from the publishing broker (hop 0 = subscribers co-located with the
// publishers).
type HopLatency struct {
	Hop    int     `json:"hop"`
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// MeshResult reports one cross-mesh fan-out run.
type MeshResult struct {
	Mode         string  `json:"mode"`
	Topology     string  `json:"topology"`
	Forwarding   string  `json:"forwarding"`
	Brokers      int     `json:"brokers"`
	Subscribers  int     `json:"subscribers"`
	Publishers   int     `json:"publishers"`
	PayloadBytes int     `json:"payload_bytes"`
	WindowSec    float64 `json:"window_sec"`
	// DeliveredPerSec is the headline number: events received by
	// subscribers per second of window time, across the whole mesh.
	DeliveredPerSec float64 `json:"delivered_per_sec"`
	// CrossMeshPerSec is the share of DeliveredPerSec that crossed at
	// least one peer link (subscribers not on the publishing broker).
	CrossMeshPerSec float64 `json:"cross_mesh_per_sec"`
	// ForwardedPerSec is the rate of events put on peer links, summed
	// over every broker's per-peer forwarded counters.
	ForwardedPerSec float64 `json:"forwarded_per_sec"`
	// ForwardedFramesPerDelivered is the mesh's wire-amplification ratio:
	// peer-link frames staged per client-delivered event. Flood pays for
	// the cycle's redundant copies here; routed forwarding should pay
	// only for the spanning tree.
	ForwardedFramesPerDelivered float64 `json:"forwarded_frames_per_delivered_event"`
	// QueueOverflowDrops sums the per-peer-link best-effort overflow
	// drops across the mesh during the window — what blind shedding cost
	// when a link could not keep up.
	QueueOverflowDrops uint64 `json:"queue_overflow_drops"`
	// CreditStalls sums the per-peer-link credit-window stalls (events
	// shed at the sender before staging) during the window.
	CreditStalls uint64 `json:"credit_stalls"`
	// DupDropped counts redundant arrivals the ring's cyclic topology
	// produced that the brokers' duplicate suppression absorbed.
	DupDropped uint64 `json:"dup_dropped"`
	// DupDeliveries counts duplicates observed by clients — the
	// loop-guard acceptance number, which must be zero.
	DupDeliveries uint64 `json:"dup_deliveries"`
	// Redials counts mesh supervisor redials during the run (expected
	// zero on a healthy run).
	Redials uint64 `json:"redials"`
	// Hops is the per-ring-distance latency distribution.
	Hops []HopLatency `json:"hops"`
}

func (r MeshResult) String() string {
	s := fmt.Sprintf("mesh %s %s/%s brokers=%d subs=%d pubs=%d delivered %.0f ev/s (cross-mesh %.0f ev/s, forwarded %.0f ev/s, fwd/delivered %.3f, dup_dropped %d, dup_delivered %d, overflow_drops %d, credit_stalls %d)",
		r.Mode, r.Topology, r.Forwarding, r.Brokers, r.Subscribers, r.Publishers,
		r.DeliveredPerSec, r.CrossMeshPerSec, r.ForwardedPerSec, r.ForwardedFramesPerDelivered,
		r.DupDropped, r.DupDeliveries, r.QueueOverflowDrops, r.CreditStalls)
	for _, h := range r.Hops {
		s += fmt.Sprintf("\n  hop %d: p50 %.2fms p99 %.2fms (n=%d)", h.Hop, h.P50Ms, h.P99Ms, h.Count)
	}
	return s
}

// meshTopic is the concrete topic the publishers flood.
const meshTopic = "/bench/mesh/stream"

// ringDistance is the minimum hop count between ring positions i and j
// on a bidirectionally routed n-ring (the mesh links are directed
// dials, but events forward along every peer link, so distance is
// symmetric).
func ringDistance(i, j, n int) int {
	d := i - j
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// hopDistance is the broker-hop count between nodes i and j under the
// benchmark's topology (star hops through the center, node 0).
func hopDistance(topology string, i, j, n int) int {
	switch {
	case i == j:
		return 0
	case topology == "star":
		if i == 0 || j == 0 {
			return 1
		}
		return 2
	case topology == "full":
		return 1
	default: // ring
		return ringDistance(i, j, n)
	}
}

// RunMesh runs the cross-mesh fan-out benchmark.
func RunMesh(cfg MeshConfig) (MeshResult, error) {
	cfg = cfg.withDefaults()
	forwarding := "routed"
	if cfg.MeshFlood || cfg.Mode != broker.ModeClientServer {
		forwarding = "flood"
	}
	res := MeshResult{
		Mode:         cfg.Mode.String(),
		Topology:     cfg.Topology,
		Forwarding:   forwarding,
		Brokers:      cfg.Brokers,
		Subscribers:  cfg.Subscribers,
		Publishers:   cfg.Publishers,
		PayloadBytes: cfg.PayloadBytes,
	}
	switch cfg.Topology {
	case "ring", "star", "full":
	default:
		return res, fmt.Errorf("bench: unknown mesh topology %q", cfg.Topology)
	}

	n := cfg.Brokers
	brokers := make([]*broker.Broker, n)
	addrs := make([]string, n)
	for i := range brokers {
		brokers[i] = broker.New(broker.Config{
			ID:               fmt.Sprintf("mesh-broker-%d", i),
			Mode:             cfg.Mode,
			MeshID:           "bench-mesh",
			QueueDepth:       cfg.QueueDepth,
			FlushInterval:    cfg.FlushInterval,
			MeshFlood:        cfg.MeshFlood,
			PeerCreditWindow: cfg.CreditWindow,
		})
		defer brokers[i].Stop()
		if n > 1 {
			l, err := brokers[i].Listen("tcp://127.0.0.1:0")
			if err != nil {
				return res, err
			}
			addrs[i] = l.Addr()
		}
	}

	// Link the topology. Ring: broker i dials its successor — with
	// n >= 3 a cycle, so the loop guard (origin-armed dedup + TTL) is on
	// the measured path; n == 2 degenerates to one link after the
	// duplicate-link tie-break. Star: every leaf dials the center (node
	// 0), acyclic. Full: every pair linked, maximally cyclic.
	var meshes []*broker.Mesh
	defer func() {
		for _, m := range meshes {
			m.Stop()
		}
	}()
	if n > 1 {
		wantPeers := make([]int, n)
		switch cfg.Topology {
		case "star":
			for i := 1; i < n; i++ {
				meshes = append(meshes, broker.NewMesh(brokers[i], broker.MeshConfig{
					Peers: []string{addrs[0]},
				}))
				wantPeers[i] = 1
			}
			wantPeers[0] = n - 1
		case "full":
			for i := range brokers {
				var peers []string
				for j := i + 1; j < n; j++ {
					peers = append(peers, addrs[j])
				}
				if len(peers) > 0 {
					meshes = append(meshes, broker.NewMesh(brokers[i], broker.MeshConfig{
						Peers: peers,
					}))
				}
				wantPeers[i] = n - 1
			}
		default: // ring
			for i := range brokers {
				meshes = append(meshes, broker.NewMesh(brokers[i], broker.MeshConfig{
					Peers: []string{addrs[(i+1)%n]},
				}))
				wantPeers[i] = 2
				if n == 2 {
					wantPeers[i] = 1
				}
			}
		}
		if err := waitFor(5*time.Second, func() bool {
			for i, b := range brokers {
				if b.PeerCount() < wantPeers[i] {
					return false
				}
			}
			return true
		}); err != nil {
			return res, fmt.Errorf("bench: mesh did not converge: %w", err)
		}
	}

	// Subscribers spread round-robin; each observes into its node's hop
	// histogram while the measuring flag is up and watches for duplicate
	// deliveries throughout.
	var measuring atomic.Bool
	maxHop := 0
	for i := 0; i < n; i++ {
		if d := hopDistance(cfg.Topology, i, 0, n); d > maxHop {
			maxHop = d
		}
	}
	byHop := make([]*metrics.Histogram, maxHop+1)
	for i := range byHop {
		byHop[i] = metrics.NewLatencyHistogram()
	}
	var delivered, crossMesh, dupDelivered atomic.Uint64
	heard := make([]atomic.Bool, cfg.Subscribers)

	subs := make([]*broker.Client, 0, cfg.Subscribers)
	defer func() {
		for _, c := range subs {
			c.Close()
		}
	}()
	var drainWG sync.WaitGroup
	for i := 0; i < cfg.Subscribers; i++ {
		node := i % n
		c, err := brokers[node].LocalClient(fmt.Sprintf("mesh-sub-%d", i), transport.LinkProfile{})
		if err != nil {
			return res, fmt.Errorf("bench: subscriber %d: %w", i, err)
		}
		subs = append(subs, c)
		sub, err := c.Subscribe("/bench/mesh/#", 1024)
		if err != nil {
			return res, fmt.Errorf("bench: subscribe %d: %w", i, err)
		}
		hist := byHop[hopDistance(cfg.Topology, node, 0, n)]
		got := &heard[i]
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			seen := make(map[event.Key]struct{})
			buf := make([]*event.Event, 0, 256)
			for {
				var ok bool
				buf, ok = sub.RecvBatch(buf[:0], 256)
				if !ok {
					return
				}
				now := time.Now().UnixNano()
				for _, e := range buf {
					got.Store(true)
					if _, dup := seen[e.Key()]; dup {
						dupDelivered.Add(1)
					} else {
						seen[e.Key()] = struct{}{}
					}
					if measuring.Load() {
						delivered.Add(1)
						if node != 0 {
							crossMesh.Add(1)
						}
						if len(e.Payload) >= 8 {
							ts := int64(binary.BigEndian.Uint64(e.Payload))
							hist.Observe(float64(now-ts) / 1e6)
						}
					}
				}
				clear(buf)
			}
		}()
	}

	// Probe until every subscriber — including the far side of the mesh —
	// hears traffic, so advertisement propagation is not charged to the
	// window.
	probe, err := brokers[0].LocalClient("mesh-probe", transport.LinkProfile{})
	if err != nil {
		return res, err
	}
	defer probe.Close()
	if err := waitFor(10*time.Second, func() bool {
		// Probes carry real timestamps too: a straggler arriving inside
		// the window must parse as an ordinary (late) sample, not as
		// epoch-zero garbage.
		payload := make([]byte, cfg.PayloadBytes)
		binary.BigEndian.PutUint64(payload, uint64(time.Now().UnixNano()))
		if err := probe.Publish(meshTopic, event.KindRTP, payload); err != nil {
			return false
		}
		for i := range heard {
			if !heard[i].Load() {
				return false
			}
		}
		return true
	}); err != nil {
		return res, fmt.Errorf("bench: subscribers never converged: %w", err)
	}

	stop := make(chan struct{})
	pubErr := make(chan error, cfg.Publishers)
	var pubWG sync.WaitGroup
	for p := 0; p < cfg.Publishers; p++ {
		c, err := brokers[0].LocalClient(fmt.Sprintf("mesh-pub-%d", p), transport.LinkProfile{})
		if err != nil {
			return res, fmt.Errorf("bench: publisher %d: %w", p, err)
		}
		defer c.Close()
		pubWG.Add(1)
		go func(c *broker.Client) {
			defer pubWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				payload := make([]byte, cfg.PayloadBytes)
				binary.BigEndian.PutUint64(payload, uint64(time.Now().UnixNano()))
				if err := c.Publish(meshTopic, event.KindRTP, payload); err != nil {
					select {
					case pubErr <- err:
					default:
					}
					return
				}
			}
		}(c)
	}

	// forwardStats sums the mesh counters across every broker: events
	// put on peer links, ring duplicates absorbed, supervisor redials,
	// per-link overflow drops, and credit stalls.
	type meshStats struct {
		fwd, dup, redials, drops, stalls uint64
	}
	forwardStats := func() (s meshStats) {
		for i, b := range brokers {
			m := b.Metrics()
			s.redials += m.Counter("broker.mesh.redials").Value()
			for j := range brokers {
				if j == i {
					continue
				}
				peer := fmt.Sprintf("broker.peer.mesh-broker-%d.", j)
				s.fwd += m.Counter(peer + "forwarded").Value()
				s.dup += m.Counter(peer + "dup_dropped").Value()
				s.drops += m.Counter(peer + "queue_drops").Value()
				s.stalls += m.Counter(peer + "credit_stalls").Value()
			}
		}
		return
	}

	time.Sleep(cfg.Warmup)
	s0 := forwardStats()
	measuring.Store(true)
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	measuring.Store(false)
	window := time.Since(t0).Seconds()
	s1 := forwardStats()
	close(stop)
	pubWG.Wait()

	select {
	case err := <-pubErr:
		return res, fmt.Errorf("bench: publish: %w", err)
	default:
	}

	// Quiesce so in-flight cross-mesh deliveries finish before the
	// duplicate count is read.
	time.Sleep(100 * time.Millisecond)
	for _, c := range subs {
		c.Close()
	}
	drainWG.Wait()

	res.WindowSec = window
	if window > 0 {
		res.DeliveredPerSec = float64(delivered.Load()) / window
		res.CrossMeshPerSec = float64(crossMesh.Load()) / window
		res.ForwardedPerSec = float64(s1.fwd-s0.fwd) / window
	}
	if d := delivered.Load(); d > 0 {
		res.ForwardedFramesPerDelivered = float64(s1.fwd-s0.fwd) / float64(d)
	}
	res.DupDropped = s1.dup - s0.dup
	res.DupDeliveries = dupDelivered.Load()
	res.Redials = s1.redials - s0.redials
	res.QueueOverflowDrops = s1.drops - s0.drops
	res.CreditStalls = s1.stalls - s0.stalls
	for hop, h := range byHop {
		if h.Count() == 0 {
			continue
		}
		res.Hops = append(res.Hops, HopLatency{
			Hop:    hop,
			Count:  h.Count(),
			MeanMs: h.Mean(),
			P50Ms:  h.Quantile(0.5),
			P99Ms:  h.Quantile(0.99),
		})
	}
	return res, nil
}

// waitFor polls cond every few milliseconds until it holds or the
// timeout elapses.
func waitFor(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not met within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
