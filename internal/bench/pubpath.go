package bench

import (
	"fmt"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
)

// PublishPathConfig parameterises the publish-path benchmark: M
// publishers hand n events each to one broker over loopback TCP, with
// no subscribers attached, so the measured rate is the client→broker
// publish path itself (stamp, encode, write system calls, broker
// ingest) rather than fan-out delivery. This isolates what client-side
// publish batching buys a gateway: RunFanout measures the same knob
// under full fan-out, where (especially on small hosts) the broker's
// delivery work dominates the publishers' wall clock.
type PublishPathConfig struct {
	// Publishers is the number of concurrent publishers. Default 4.
	Publishers int
	// Events per publisher. Default 20000.
	Events int
	// PayloadBytes sizes each event payload. Default 1200.
	PayloadBytes int
	// Batching routes publishes through the client-side batching
	// Publisher instead of one write per event.
	Batching bool
	// MaxBatchBytes bounds a publish batch (0: transport default).
	MaxBatchBytes int
	// FlushInterval bounds the batch linger (0: publisher default).
	FlushInterval time.Duration
}

func (c PublishPathConfig) withDefaults() PublishPathConfig {
	if c.Publishers <= 0 {
		c.Publishers = 4
	}
	if c.Events <= 0 {
		c.Events = 20000
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 1200
	}
	return c
}

// PublishPathResult reports one publish-path run.
type PublishPathResult struct {
	Publishers   int     `json:"publishers"`
	Events       int     `json:"events_per_publisher"`
	PayloadBytes int     `json:"payload_bytes"`
	Batching     bool    `json:"publish_batching"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	// EventsPerSec is the publisher-side rate: total events handed to
	// the broker per second of wall time, including final flushes.
	EventsPerSec float64 `json:"events_per_sec"`
	MBPerSec     float64 `json:"mb_per_sec"`
}

func (r PublishPathResult) String() string {
	return fmt.Sprintf("pubpath pubs=%d batch=%v %.0f ev/s %.1f MB/s",
		r.Publishers, r.Batching, r.EventsPerSec, r.MBPerSec)
}

// pubPathTopic carries the publish-path flood; nothing subscribes to it.
const pubPathTopic = "/bench/pubpath/stream"

// RunPublishPath runs the publish-path benchmark.
func RunPublishPath(cfg PublishPathConfig) (PublishPathResult, error) {
	cfg = cfg.withDefaults()
	res := PublishPathResult{
		Publishers:   cfg.Publishers,
		Events:       cfg.Events,
		PayloadBytes: cfg.PayloadBytes,
		Batching:     cfg.Batching,
	}
	b := broker.New(broker.Config{ID: "pubpath-broker"})
	defer b.Stop()
	l, err := b.Listen("tcp://127.0.0.1:0")
	if err != nil {
		return res, err
	}

	clients := make([]*broker.Client, 0, cfg.Publishers)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < cfg.Publishers; i++ {
		c, err := broker.Dial(l.Addr(), fmt.Sprintf("pubpath-%d", i))
		if err != nil {
			return res, fmt.Errorf("bench: publisher %d: %w", i, err)
		}
		clients = append(clients, c)
	}

	payload := make([]byte, cfg.PayloadBytes)
	errCh := make(chan error, cfg.Publishers)
	var wg sync.WaitGroup
	start := time.Now()
	for _, c := range clients {
		wg.Add(1)
		go func(c *broker.Client) {
			defer wg.Done()
			if cfg.Batching {
				p := c.Publisher(broker.PublisherConfig{
					Batching:      true,
					MaxBatchBytes: cfg.MaxBatchBytes,
					FlushInterval: cfg.FlushInterval,
				})
				for i := 0; i < cfg.Events; i++ {
					if err := p.Publish(event.New(pubPathTopic, event.KindRTP, payload)); err != nil {
						errCh <- err
						return
					}
				}
				if err := p.Close(); err != nil {
					errCh <- err
				}
				return
			}
			for i := 0; i < cfg.Events; i++ {
				if err := c.Publish(pubPathTopic, event.KindRTP, payload); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	res.ElapsedSec = time.Since(start).Seconds()
	select {
	case err := <-errCh:
		return res, fmt.Errorf("bench: publish: %w", err)
	default:
	}
	if res.ElapsedSec > 0 {
		total := float64(cfg.Publishers) * float64(cfg.Events)
		res.EventsPerSec = total / res.ElapsedSec
		res.MBPerSec = res.EventsPerSec * float64(cfg.PayloadBytes) / 1e6
	}
	return res, nil
}
