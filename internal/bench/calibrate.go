package bench

import (
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// Testbed models the paper's 2003 measurement setup as explicit emulation
// constants (DESIGN.md §7). The same testbed shapes both systems, so the
// comparison isolates the architectural difference: the reflector pays
// every per-send cost in one dispatch thread, the broker spreads it over
// per-client writer goroutines, and both share the sending host's egress
// link.
type Testbed struct {
	// PerSendCost is the host CPU time consumed per packet send
	// (JVM-era serialization + syscall on 2003 hardware). It blocks
	// whichever goroutine performs the send.
	PerSendCost time.Duration
	// JMFExtraCost is the reflector baseline's additional per-send
	// processing overhead (see the calibration note below). Applied only
	// to the JMF reflector, never to the broker.
	JMFExtraCost time.Duration
	// EgressBytesPerSec is the sending host's NIC rate, shared by all
	// fan-out traffic of the system under test.
	EgressBytesPerSec int64
	// LocalDelay is the one-way propagation to co-located (measured)
	// receivers.
	LocalDelay time.Duration
	// RemoteDelay is the one-way propagation to the 388 remote receivers.
	RemoteDelay time.Duration
	// LocalJitter/RemoteJitter add uniform random extra delay.
	LocalJitter  time.Duration
	RemoteJitter time.Duration

	egress *transport.SharedLimiter
}

// Calibrated default constants.
//
// Packet rate of the paper's 600 Kbps stream at a 1200-byte MTU is
// ~83 pps (mean inter-packet gap ~12 ms), arriving in per-frame bursts.
//
//   - PerSendCost is the baseline host cost both systems pay per
//     receiver-send (copy + syscall on period hardware).
//   - JMFExtraCost is the additional per-receiver-send overhead of the
//     JMF RTPManager path (object churn, synchronized buffers, GC) that
//     the broker's optimized pipeline eliminated — the paper explicitly
//     credits "some optimizations on the message transmission" for
//     NaradaBrokering's advantage. Together they put the reflector's
//     single-thread fan-out (400 × ~28 µs ≈ 11.5 ms/packet) right at the
//     saturation knee, reproducing the oscillating 100-400 ms delays of
//     Figure 3, while the broker pays the same costs across parallel
//     per-client writers and stays bounded by egress queueing.
//   - EgressRate is GigE-class: the paper's 400-receiver test pushes
//     240 Mbps aggregate, impossible on Fast Ethernet, so the testbed
//     link must have been ~1 Gbps.
const (
	defaultPerSendCost  = 25 * time.Microsecond
	defaultJMFExtraCost = 2 * time.Microsecond
	defaultEgressRate   = int64(100_000_000) // ≈800 Mbps host NIC
	defaultLocalDelay   = 200 * time.Microsecond
	defaultRemoteDelay  = time.Millisecond
	defaultLocalJitter  = 300 * time.Microsecond
	defaultRemoteJitter = 2 * time.Millisecond
)

func (tb Testbed) withDefaults() Testbed {
	if tb.PerSendCost == 0 {
		tb.PerSendCost = defaultPerSendCost
	}
	if tb.JMFExtraCost == 0 {
		tb.JMFExtraCost = defaultJMFExtraCost
	}
	if tb.EgressBytesPerSec == 0 {
		tb.EgressBytesPerSec = defaultEgressRate
	}
	if tb.LocalDelay == 0 {
		tb.LocalDelay = defaultLocalDelay
	}
	if tb.RemoteDelay == 0 {
		tb.RemoteDelay = defaultRemoteDelay
	}
	if tb.LocalJitter == 0 {
		tb.LocalJitter = defaultLocalJitter
	}
	if tb.RemoteJitter == 0 {
		tb.RemoteJitter = defaultRemoteJitter
	}
	if tb.egress == nil && tb.EgressBytesPerSec > 0 {
		tb.egress = transport.NewSharedLimiter(tb.EgressBytesPerSec)
	}
	return tb
}

// receiverProfile builds the link profile for one receiver.
func (tb Testbed) receiverProfile(colocated bool) transport.LinkProfile {
	p := transport.LinkProfile{
		SendCost: tb.PerSendCost,
		Egress:   tb.egress,
	}
	if colocated {
		p.PropDelay = tb.LocalDelay
		p.Jitter = tb.LocalJitter
	} else {
		p.PropDelay = tb.RemoteDelay
		p.Jitter = tb.RemoteJitter
	}
	return p
}

// drain discards events from ch until it or done closes.
func drain(ch <-chan *event.Event, done <-chan struct{}) {
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-done:
			return
		}
	}
}

// drainConn consumes events from a conn until it closes, passing each to
// handle when non-nil.
func drainConn(c transport.Conn, handle func(*event.Event)) {
	for {
		e, err := c.Recv()
		if err != nil {
			return
		}
		if handle != nil {
			handle(e)
		}
	}
}
