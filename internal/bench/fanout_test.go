package bench

import (
	"testing"

	"github.com/globalmmcs/globalmmcs/internal/broker"
)

// quickFanout shrinks the benchmark so it completes in well under a
// second; it runs even with -short so CI exercises the broker data path
// on every push.
func quickFanout(mode broker.Mode, tr string) FanoutConfig {
	return FanoutConfig{
		Mode:        mode,
		Transport:   tr,
		Subscribers: 16,
		Publishers:  2,
		Events:      250,
	}
}

func TestFanoutClientServerTCP(t *testing.T) {
	res, err := RunFanout(quickFanout(broker.ModeClientServer, "tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("no events delivered")
	}
	if res.EventsPerSec <= 0 {
		t.Fatalf("events/sec = %v", res.EventsPerSec)
	}
	t.Log(res)
}

func TestFanoutPeerToPeerTCP(t *testing.T) {
	res, err := RunFanout(quickFanout(broker.ModePeerToPeer, "tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("no events delivered")
	}
	t.Log(res)
}

// TestFanoutPublishBatching runs the publish-batching variant (it runs
// even with -short so CI exercises the client-side Batcher path on
// every push) and checks the publisher-side rate is reported.
func TestFanoutPublishBatching(t *testing.T) {
	cfg := quickFanout(broker.ModeClientServer, "tcp")
	cfg.PublishBatching = true
	res, err := RunFanout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("no events delivered")
	}
	if !res.PublishBatching {
		t.Fatal("result does not record batching")
	}
	if res.PublishEventsPerSec <= 0 {
		t.Fatalf("publish events/sec = %v", res.PublishEventsPerSec)
	}
	t.Log(res)
}

func TestFanoutMem(t *testing.T) {
	res, err := RunFanout(quickFanout(broker.ModeClientServer, "mem"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("no events delivered")
	}
	t.Log(res)
}

func TestFanoutUnknownTransport(t *testing.T) {
	if _, err := RunFanout(FanoutConfig{Transport: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestFanoutDefaults(t *testing.T) {
	cfg := FanoutConfig{}.withDefaults()
	if cfg.Subscribers != 64 || cfg.Publishers != 4 || cfg.Events != 2000 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.Mode != broker.ModeClientServer || cfg.Transport != "tcp" {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

// BenchmarkFanout64TCP is the acceptance benchmark: 64 subscribers over
// loopback TCP, reported as events/sec in the custom metric.
func BenchmarkFanout64TCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunFanout(FanoutConfig{
			Subscribers: 64,
			Publishers:  4,
			Events:      500,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EventsPerSec, "events/s")
	}
}

// TestPublishPath runs the publish-path benchmark at a trivial scale
// (runs even with -short) and sanity-checks both variants.
func TestPublishPath(t *testing.T) {
	for _, batch := range []bool{false, true} {
		res, err := RunPublishPath(PublishPathConfig{Publishers: 2, Events: 500, Batching: batch})
		if err != nil {
			t.Fatal(err)
		}
		if res.EventsPerSec <= 0 {
			t.Fatalf("events/sec = %v", res.EventsPerSec)
		}
		if res.Batching != batch {
			t.Fatalf("batching not recorded: %+v", res)
		}
		t.Log(res)
	}
}
