package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"
)

// quickMesh shrinks the cross-mesh fan-out run so it completes in a few
// seconds; it runs even with -short (and under -race in CI) so the
// federation forwarding path — mesh link supervision, loop guard,
// cross-broker burst forwarding — is exercised on every push.
func quickMesh() MeshConfig {
	return MeshConfig{
		Brokers:     4,
		Subscribers: 8,
		Publishers:  2,
		Warmup:      50 * time.Millisecond,
		Duration:    200 * time.Millisecond,
	}
}

func TestMesh(t *testing.T) {
	res, err := RunMesh(quickMesh())
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredPerSec <= 0 {
		t.Fatalf("delivered/sec = %v", res.DeliveredPerSec)
	}
	if res.CrossMeshPerSec <= 0 {
		t.Fatalf("cross-mesh/sec = %v (nothing crossed a peer link)", res.CrossMeshPerSec)
	}
	if res.DupDeliveries != 0 {
		t.Fatalf("clients observed %d duplicate deliveries on the cyclic mesh", res.DupDeliveries)
	}
	t.Log(res)
}

// TestMeshControl runs the single-broker control cell the federation
// numbers are compared against.
func TestMeshControl(t *testing.T) {
	cfg := quickMesh()
	cfg.Brokers = 1
	res, err := RunMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredPerSec <= 0 {
		t.Fatalf("delivered/sec = %v", res.DeliveredPerSec)
	}
	if res.CrossMeshPerSec != 0 {
		t.Fatalf("cross-mesh/sec = %v on a single broker", res.CrossMeshPerSec)
	}
	if res.DupDeliveries != 0 {
		t.Fatalf("clients observed %d duplicate deliveries", res.DupDeliveries)
	}
	t.Log(res)
}

// TestMeshJSONDump emits full-size mesh runs as JSON lines for the
// BENCH_broker.json recording script. Gated behind MESH_DUMP so normal
// test runs stay fast.
func TestMeshJSONDump(t *testing.T) {
	if os.Getenv("MESH_DUMP") == "" {
		t.Skip("set MESH_DUMP=1 to run")
	}
	for _, brokers := range []int{4, 1} {
		res, err := RunMesh(MeshConfig{Brokers: brokers})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(res)
		fmt.Printf("MESHJSON %s\n", b)
	}
}
