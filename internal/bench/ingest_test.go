package bench

import (
	"testing"
	"time"
)

// quickIngest shrinks the sustained-ingest run so it completes in well
// under a second; it runs even with -short (and under -race in CI) so
// the burst-ingest data path is exercised on every push.
func quickIngest() IngestConfig {
	return IngestConfig{
		Subscribers: 8,
		Publishers:  2,
		Warmup:      50 * time.Millisecond,
		Duration:    200 * time.Millisecond,
	}
}

func TestIngestBurst(t *testing.T) {
	res, err := RunIngest(quickIngest())
	if err != nil {
		t.Fatal(err)
	}
	if res.IngestedPerSec <= 0 {
		t.Fatalf("ingested/sec = %v", res.IngestedPerSec)
	}
	if res.DeliveredPerSec <= 0 {
		t.Fatalf("delivered/sec = %v", res.DeliveredPerSec)
	}
	t.Log(res)
}

// TestIngestBaseline runs the ablation configuration (IngestBurst 1,
// per-event publishes) that the benchmark's before/after comparison is
// measured against.
func TestIngestBaseline(t *testing.T) {
	cfg := quickIngest()
	cfg.IngestBurst = 1
	cfg.DisablePublishBatching = true
	res, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IngestedPerSec <= 0 {
		t.Fatalf("ingested/sec = %v", res.IngestedPerSec)
	}
	if res.IngestBurst != 1 {
		t.Fatalf("IngestBurst = %d, want 1", res.IngestBurst)
	}
	t.Log(res)
}

// TestIngestPerEventDelivery runs the client-delivery ablation
// (DispatchBurst 1: one ring lock, one wakeup, one ack per event) —
// the PR-4 delivery plane the batched-delivery speedup is measured
// against — under the same short/race CI conditions.
func TestIngestPerEventDelivery(t *testing.T) {
	cfg := quickIngest()
	cfg.DispatchBurst = 1
	res, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IngestedPerSec <= 0 || res.DeliveredPerSec <= 0 {
		t.Fatalf("ingested/sec = %v delivered/sec = %v", res.IngestedPerSec, res.DeliveredPerSec)
	}
	if res.DispatchBurst != 1 {
		t.Fatalf("DispatchBurst = %d, want 1", res.DispatchBurst)
	}
	t.Log(res)
}

// TestIngestDeliveryStats sanity-checks the client-side delivery-plane
// reporting: under the default batched dispatch the amortization ratio
// must beat one event per wakeup (it is the whole point), and the
// counters must move.
func TestIngestDeliveryStats(t *testing.T) {
	res, err := RunIngest(quickIngest())
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryWakeups == 0 || res.ClientDelivered == 0 {
		t.Fatalf("delivery stats did not move: %+v", res)
	}
	if res.EventsPerBurst <= 1 {
		t.Fatalf("events per ring lock = %.2f, want > 1 under batched dispatch", res.EventsPerBurst)
	}
	if res.RingOccupancyMax <= 0 {
		t.Fatalf("ring occupancy high-water = %d", res.RingOccupancyMax)
	}
	t.Log(res)
}

// TestIngestWriterPoolAblation runs the legacy writer-goroutine-per-
// session plane (WriterPool < 0) that the multi-core writer-pool
// speedup is measured against, and checks the pool-occupancy fields
// stay zero there while the default plane reports them.
func TestIngestWriterPoolAblation(t *testing.T) {
	cfg := quickIngest()
	cfg.WriterPool = -1
	res, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IngestedPerSec <= 0 || res.DeliveredPerSec <= 0 {
		t.Fatalf("ingested/sec = %v delivered/sec = %v", res.IngestedPerSec, res.DeliveredPerSec)
	}
	if res.WriterPools != 0 || res.PoolServices != 0 {
		t.Fatalf("per-session ablation reported pool stats: pools=%d services=%d", res.WriterPools, res.PoolServices)
	}
	pooled, err := RunIngest(quickIngest())
	if err != nil {
		t.Fatal(err)
	}
	if pooled.WriterPools <= 0 || pooled.PoolServices == 0 || pooled.PoolDrained == 0 {
		t.Fatalf("writer-pool plane did not report pool stats: %+v", pooled)
	}
	t.Log(res)
}

// TestIngestScaling runs the GOMAXPROCS scaling ladder at a single
// explicit rung (so the test is fast and identical on any host) and
// checks both cells of the rung — writer-pool plane and per-session
// ablation — produced throughput.
func TestIngestScaling(t *testing.T) {
	res, err := RunIngestScaling(IngestScalingConfig{
		Base:  quickIngest(),
		Procs: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HostCPUs <= 0 {
		t.Fatalf("HostCPUs = %d", res.HostCPUs)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(res.Cells))
	}
	cell := res.Cells[0]
	if cell.GoMaxProcs != 1 {
		t.Fatalf("GoMaxProcs = %d, want 1", cell.GoMaxProcs)
	}
	if cell.WriterPool.DeliveredPerSec <= 0 || cell.PerSession.DeliveredPerSec <= 0 {
		t.Fatalf("ladder cell did not deliver: pool=%v per-session=%v",
			cell.WriterPool.DeliveredPerSec, cell.PerSession.DeliveredPerSec)
	}
	if cell.WriterPool.WriterPools != 1 {
		t.Fatalf("pool cell writer pools = %d, want 1 at GOMAXPROCS=1", cell.WriterPool.WriterPools)
	}
}

// TestScalingLadder checks the rung sequence doubles from one and stays
// within the host's core budget.
func TestScalingLadder(t *testing.T) {
	ladder := ScalingLadder()
	if len(ladder) == 0 || ladder[0] != 1 {
		t.Fatalf("ladder = %v, want to start at 1", ladder)
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i] != ladder[i-1]*2 {
			t.Fatalf("ladder = %v, want doubling rungs", ladder)
		}
		if ladder[i] > 8 {
			t.Fatalf("ladder = %v, rung above 8", ladder)
		}
	}
}

// TestIngestMem exercises the all-in-process pointer path, whose egress
// now also batches (eventBatchSink and the batch-message pipe) when
// burst ingest is on.
func TestIngestMem(t *testing.T) {
	cfg := quickIngest()
	cfg.Transport = "mem"
	cfg.PubTransport = "mem"
	res, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IngestedPerSec <= 0 {
		t.Fatalf("ingested/sec = %v", res.IngestedPerSec)
	}
	t.Log(res)
}
