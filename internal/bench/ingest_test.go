package bench

import (
	"testing"
	"time"
)

// quickIngest shrinks the sustained-ingest run so it completes in well
// under a second; it runs even with -short (and under -race in CI) so
// the burst-ingest data path is exercised on every push.
func quickIngest() IngestConfig {
	return IngestConfig{
		Subscribers: 8,
		Publishers:  2,
		Warmup:      50 * time.Millisecond,
		Duration:    200 * time.Millisecond,
	}
}

func TestIngestBurst(t *testing.T) {
	res, err := RunIngest(quickIngest())
	if err != nil {
		t.Fatal(err)
	}
	if res.IngestedPerSec <= 0 {
		t.Fatalf("ingested/sec = %v", res.IngestedPerSec)
	}
	if res.DeliveredPerSec <= 0 {
		t.Fatalf("delivered/sec = %v", res.DeliveredPerSec)
	}
	t.Log(res)
}

// TestIngestBaseline runs the ablation configuration (IngestBurst 1,
// per-event publishes) that the benchmark's before/after comparison is
// measured against.
func TestIngestBaseline(t *testing.T) {
	cfg := quickIngest()
	cfg.IngestBurst = 1
	cfg.DisablePublishBatching = true
	res, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IngestedPerSec <= 0 {
		t.Fatalf("ingested/sec = %v", res.IngestedPerSec)
	}
	if res.IngestBurst != 1 {
		t.Fatalf("IngestBurst = %d, want 1", res.IngestBurst)
	}
	t.Log(res)
}

// TestIngestPerEventDelivery runs the client-delivery ablation
// (DispatchBurst 1: one ring lock, one wakeup, one ack per event) —
// the PR-4 delivery plane the batched-delivery speedup is measured
// against — under the same short/race CI conditions.
func TestIngestPerEventDelivery(t *testing.T) {
	cfg := quickIngest()
	cfg.DispatchBurst = 1
	res, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IngestedPerSec <= 0 || res.DeliveredPerSec <= 0 {
		t.Fatalf("ingested/sec = %v delivered/sec = %v", res.IngestedPerSec, res.DeliveredPerSec)
	}
	if res.DispatchBurst != 1 {
		t.Fatalf("DispatchBurst = %d, want 1", res.DispatchBurst)
	}
	t.Log(res)
}

// TestIngestDeliveryStats sanity-checks the client-side delivery-plane
// reporting: under the default batched dispatch the amortization ratio
// must beat one event per wakeup (it is the whole point), and the
// counters must move.
func TestIngestDeliveryStats(t *testing.T) {
	res, err := RunIngest(quickIngest())
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryWakeups == 0 || res.ClientDelivered == 0 {
		t.Fatalf("delivery stats did not move: %+v", res)
	}
	if res.EventsPerBurst <= 1 {
		t.Fatalf("events per ring lock = %.2f, want > 1 under batched dispatch", res.EventsPerBurst)
	}
	if res.RingOccupancyMax <= 0 {
		t.Fatalf("ring occupancy high-water = %d", res.RingOccupancyMax)
	}
	t.Log(res)
}

// TestIngestMem exercises the all-in-process pointer path, whose egress
// now also batches (eventBatchSink and the batch-message pipe) when
// burst ingest is on.
func TestIngestMem(t *testing.T) {
	cfg := quickIngest()
	cfg.Transport = "mem"
	cfg.PubTransport = "mem"
	res, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IngestedPerSec <= 0 {
		t.Fatalf("ingested/sec = %v", res.IngestedPerSec)
	}
	t.Log(res)
}
