package bench

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// ChurnConfig parameterises the connection-churn benchmark: one
// reconnect-enabled subscriber on a recorded topic is repeatedly cut
// mid-stream while a paced publisher keeps the reliable lane busy. Each
// cycle clocks kill → caught-up (resume handshake, window salvage and
// log-backed catch-up included), and the whole run must deliver every
// event exactly once — any duplicate or gap fails the benchmark.
type ChurnConfig struct {
	// Cycles is how many kill/reconnect rounds to run. Default 20.
	Cycles int
	// PublishRate is the paced reliable publish rate (events/sec) the
	// subscriber must keep up with across cuts. Default 5000.
	PublishRate int
	// PayloadBytes sizes each event payload. Default 256.
	PayloadBytes int
	// SessionLinger is the broker's parked-session window. Default 30s
	// (generous: a cycle's outage is a few ms of redial backoff).
	SessionLinger time.Duration
	// Settle is the pause between catching up and the next kill, letting
	// the link carry a little steady-state traffic. Default 20ms.
	Settle time.Duration
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Cycles <= 0 {
		c.Cycles = 20
	}
	if c.PublishRate <= 0 {
		c.PublishRate = 5000
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 256
	}
	if c.SessionLinger <= 0 {
		c.SessionLinger = 30 * time.Second
	}
	if c.Settle <= 0 {
		c.Settle = 20 * time.Millisecond
	}
	return c
}

// ChurnResult reports one churn benchmark run.
type ChurnResult struct {
	Cycles       int `json:"cycles"`
	PublishRate  int `json:"publish_rate"`
	PayloadBytes int `json:"payload_bytes"`
	// Published / Delivered are the end-of-run totals; the run errors
	// unless they match with zero Duplicates and zero Gaps (exactly-once
	// across every cut).
	Published  uint64 `json:"published"`
	Delivered  uint64 `json:"delivered"`
	Duplicates uint64 `json:"duplicates"`
	Gaps       uint64 `json:"gaps"`
	// ResumesPerSec is Cycles over the whole run's wall time — kills,
	// redials, catch-up and settle pauses included.
	ResumesPerSec float64 `json:"resumes_per_sec"`
	// Catch-up latency per cycle, kill → delivered everything published
	// at the moment of checking: median, p95 and worst case.
	CatchupP50Ms float64 `json:"catchup_p50_ms"`
	CatchupP95Ms float64 `json:"catchup_p95_ms"`
	CatchupMaxMs float64 `json:"catchup_max_ms"`
	ElapsedSec   float64 `json:"elapsed_sec"`
}

func (r ChurnResult) String() string {
	return fmt.Sprintf("churn %d cycles at %d ev/s: %.1f resumes/s, catch-up p50 %.1f ms p95 %.1f ms max %.1f ms, %d/%d delivered (dups %d, gaps %d)",
		r.Cycles, r.PublishRate, r.ResumesPerSec,
		r.CatchupP50Ms, r.CatchupP95Ms, r.CatchupMaxMs,
		r.Delivered, r.Published, r.Duplicates, r.Gaps)
}

const churnTopic = "/bench/churn/stream"

// churnSeam deals the subscriber its conns: every dial gets a FaultConn
// so the harness can cut the live link on cue.
type churnSeam struct {
	mu   sync.Mutex
	b    *broker.Broker
	conn *transport.FaultConn
}

func (s *churnSeam) dial(string) (transport.Conn, error) {
	s.mu.Lock()
	b := s.b
	s.mu.Unlock()
	if b == nil {
		return nil, errors.New("bench: churn broker down")
	}
	client, server := transport.Pipe(b.ID(), "churn-sub")
	go b.AcceptConn(server)
	fc := transport.InjectFaults(client)
	s.mu.Lock()
	s.conn = fc
	s.mu.Unlock()
	return fc, nil
}

func (s *churnSeam) kill() {
	s.mu.Lock()
	fc := s.conn
	s.mu.Unlock()
	if fc != nil {
		fc.Kill()
	}
}

// churnPayload stamps the event's sequence number into a fresh payload
// (the broker retains references: queue, salvage, log) so the
// subscriber can verify exactly-once delivery end to end.
func churnPayload(size int, i uint64) []byte {
	buf := make([]byte, size)
	copy(buf, fmt.Sprintf("%016d", i))
	return buf
}

func churnCounter(p []byte) (uint64, error) {
	if len(p) < 16 {
		return 0, fmt.Errorf("short churn payload (%d bytes)", len(p))
	}
	var n uint64
	_, err := fmt.Sscanf(string(p[:16]), "%d", &n)
	return n, err
}

// RunChurn runs the connection-churn benchmark.
func RunChurn(cfg ChurnConfig) (ChurnResult, error) {
	cfg = cfg.withDefaults()
	res := ChurnResult{
		Cycles:       cfg.Cycles,
		PublishRate:  cfg.PublishRate,
		PayloadBytes: cfg.PayloadBytes,
	}
	dir, err := os.MkdirTemp("", "gmmcs-bench-churn-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	b := broker.New(broker.Config{
		ID:             "churn-broker",
		SessionLinger:  cfg.SessionLinger,
		RecordPatterns: []string{churnTopic},
		RecordDir:      dir,
		FlushInterval:  time.Millisecond,
	})
	defer b.Stop()

	seam := &churnSeam{b: b}
	sub, err := broker.DialResilient(broker.ResilientConfig{
		URLs:      []string{"churn://local"},
		ID:        "churn-sub",
		RedialMin: 5 * time.Millisecond,
		RedialMax: 50 * time.Millisecond,
		Dial:      seam.dial,
	})
	if err != nil {
		return res, err
	}
	defer sub.Close()
	stream, err := sub.SubscribeReplay(context.Background(), churnTopic, 0, 4096)
	if err != nil {
		return res, err
	}

	// The drain goroutine verifies the exactly-once contract inline:
	// every payload counter must be exactly the previous plus one.
	var delivered, dups, gaps atomic.Uint64
	var parseErr atomic.Value
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		var expect uint64
		buf := make([]*event.Event, 0, 256)
		for {
			var ok bool
			buf, ok = stream.RecvBatch(buf[:0], 256)
			for _, e := range buf {
				c, err := churnCounter(e.Payload)
				if err != nil {
					parseErr.Store(err)
					return
				}
				switch {
				case c == expect:
					expect++
					delivered.Add(1)
				case c < expect:
					dups.Add(1)
				default:
					gaps.Add(c - expect)
					expect = c + 1
					delivered.Add(1)
				}
			}
			clear(buf)
			if !ok {
				return
			}
		}
	}()

	// The publisher paces the reliable lane from an in-process client
	// that is never cut: only the subscriber's link churns.
	pub, err := b.LocalClient("churn-pub", transport.LinkProfile{})
	if err != nil {
		return res, err
	}
	defer pub.Close()
	var published atomic.Uint64
	var pubErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		const tick = 5 * time.Millisecond
		perTick := int(float64(cfg.PublishRate) * tick.Seconds())
		if perTick < 1 {
			perTick = 1
		}
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				for i := 0; i < perTick; i++ {
					if err := pub.PublishReliable(churnTopic, event.KindData, churnPayload(cfg.PayloadBytes, published.Load())); err != nil {
						pubErr.Store(err)
						return
					}
					published.Add(1)
				}
			}
		}
	}()

	// caughtUp: the subscriber has delivered everything published as of
	// the check, AND the head has moved past after — so right after a
	// kill it can only be satisfied by events that crossed a NEW conn
	// (the head keeps moving; the past floor pins the reconnect).
	caughtUp := func(past uint64, deadline time.Time) error {
		for {
			target := published.Load()
			if target > past && delivered.Load() >= target {
				return nil
			}
			if err, _ := pubErr.Load().(error); err != nil {
				return fmt.Errorf("bench: churn publisher: %w", err)
			}
			if err, _ := parseErr.Load().(error); err != nil {
				return fmt.Errorf("bench: churn subscriber: %w", err)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("bench: churn catch-up stuck at %d/%d delivered", delivered.Load(), target)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	t0 := time.Now()
	latencies := make([]time.Duration, 0, cfg.Cycles)
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		if err := caughtUp(0, time.Now().Add(60*time.Second)); err != nil {
			return res, fmt.Errorf("cycle %d: %w", cycle, err)
		}
		time.Sleep(cfg.Settle)
		kill := time.Now()
		pastKill := published.Load()
		seam.kill()
		// Caught up again only once events published AFTER the kill have
		// arrived, which requires the resume round trip to complete.
		if err := caughtUp(pastKill, time.Now().Add(60*time.Second)); err != nil {
			return res, fmt.Errorf("cycle %d after kill: %w", cycle, err)
		}
		latencies = append(latencies, time.Since(kill))
	}
	elapsed := time.Since(t0)

	// Stop the publisher and drain to the final head: the run is only
	// valid when every published event arrived exactly once.
	close(stop)
	wg.Wait()
	if err, _ := pubErr.Load().(error); err != nil {
		return res, fmt.Errorf("bench: churn publisher: %w", err)
	}
	final := published.Load()
	deadline := time.Now().Add(60 * time.Second)
	for delivered.Load() < final {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("bench: churn final drain stuck at %d/%d", delivered.Load(), final)
		}
		time.Sleep(2 * time.Millisecond)
	}

	res.Published = final
	res.Delivered = delivered.Load()
	res.Duplicates = dups.Load()
	res.Gaps = gaps.Load()
	res.ElapsedSec = elapsed.Seconds()
	if res.ElapsedSec > 0 {
		res.ResumesPerSec = float64(cfg.Cycles) / res.ElapsedSec
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	res.CatchupP50Ms = pct(0.50)
	res.CatchupP95Ms = pct(0.95)
	res.CatchupMaxMs = pct(1.0)
	if res.Duplicates != 0 || res.Gaps != 0 || res.Delivered != res.Published {
		return res, fmt.Errorf("bench: churn broke exactly-once: published %d delivered %d dups %d gaps %d",
			res.Published, res.Delivered, res.Duplicates, res.Gaps)
	}
	return res, nil
}
