package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// FanoutConfig parameterises the broker fan-out throughput benchmark:
// M publishers flood a topic that N subscribers listen on, all through
// one broker, and the benchmark reports delivered events per second.
// Unlike the Figure 3 experiment this runs unshaped links as fast as the
// host allows — it measures the broker data path itself (routing,
// per-session queues, encode and write costs), not an emulated testbed.
type FanoutConfig struct {
	// Mode selects the routing mode. Default ModeClientServer.
	Mode broker.Mode
	// Subscribers is the fan-out width N. Default 64.
	Subscribers int
	// Publishers is the number of concurrent publishers M. Default 4.
	Publishers int
	// Events is the number of events each publisher sends. Default 2000.
	Events int
	// PayloadBytes sizes each event's payload (default 1200, one video
	// MTU as in the paper's 600 Kbps stream).
	PayloadBytes int
	// Transport selects the client link: "tcp" (default) exercises the
	// full encode/frame/write path over loopback sockets; "mem" isolates
	// routing and queueing with zero serialisation cost.
	Transport string
	// PubTransport overrides the publishers' link ("" follows
	// Transport). "tcp" publishers with "mem" subscribers isolate the
	// client→broker publish path: fan-out costs no syscalls, so the
	// publisher-side rate reflects publish-side encode/write work — the
	// configuration that exposes what publish batching buys a gateway.
	PubTransport string
	// QueueDepth overrides the broker's per-session best-effort queue
	// depth. Default 8192 (deep enough that drops reflect sustained
	// overload, not bursts).
	QueueDepth int
	// FlushInterval is the broker's batch linger (see broker.Config).
	// Default 1ms: the fan-out workload is throughput-bound, so trading
	// a millisecond of latency for full write batches is the operating
	// point a media relay would choose.
	FlushInterval time.Duration
	// MaxBatchBytes is the broker's batch size bound. 0 keeps the broker
	// default.
	MaxBatchBytes int
	// PublishBatching routes publishers through the client-side batching
	// Publisher (one write syscall per batch on the client→broker
	// direction) instead of one Publish syscall per event — the
	// gateway-sender configuration.
	PublishBatching bool
	// PublishMaxBatchBytes bounds a client-side publish batch (0 keeps
	// the transport default).
	PublishMaxBatchBytes int
	// PublishFlushInterval bounds the client-side batch linger (0 keeps
	// the publisher default of 1ms).
	PublishFlushInterval time.Duration
}

func (c FanoutConfig) withDefaults() FanoutConfig {
	if c.Mode == 0 {
		c.Mode = broker.ModeClientServer
	}
	if c.Subscribers <= 0 {
		c.Subscribers = 64
	}
	if c.Publishers <= 0 {
		c.Publishers = 4
	}
	if c.Events <= 0 {
		c.Events = 2000
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 1200
	}
	if c.Transport == "" {
		c.Transport = "tcp"
	}
	if c.PubTransport == "" {
		c.PubTransport = c.Transport
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8192
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = time.Millisecond
	}
	if c.FlushInterval < 0 {
		c.FlushInterval = 0
	}
	return c
}

// FanoutResult reports one benchmark run.
type FanoutResult struct {
	Mode      string `json:"mode"`
	Transport string `json:"transport"`
	// PubTransport is the publishers' link when it differs from
	// Transport ("" otherwise).
	PubTransport    string  `json:"pub_transport,omitempty"`
	Subscribers     int     `json:"subscribers"`
	Publishers      int     `json:"publishers"`
	Events          int     `json:"events_per_publisher"`
	PayloadBytes    int     `json:"payload_bytes"`
	PublishBatching bool    `json:"publish_batching"`
	Expected        uint64  `json:"expected_deliveries"`
	Delivered       uint64  `json:"delivered"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	// EventsPerSec is delivered events per second of wall time — the
	// headline fan-out throughput number.
	EventsPerSec float64 `json:"events_per_sec"`
	// MBPerSec is the equivalent payload goodput.
	MBPerSec float64 `json:"mb_per_sec"`
	// PublishElapsedSec is how long the publishers took to hand their
	// whole load to the transport (including final flushes).
	PublishElapsedSec float64 `json:"publish_elapsed_sec"`
	// PublishEventsPerSec is the publisher-side rate: events published
	// per second of publish wall time, the number client-side batching
	// exists to raise.
	PublishEventsPerSec float64 `json:"publish_events_per_sec"`
}

func (r FanoutResult) String() string {
	return fmt.Sprintf("fanout %s/%s subs=%d pubs=%d batch=%v delivered=%d/%d %.0f ev/s %.1f MB/s pub %.0f ev/s",
		r.Mode, r.Transport, r.Subscribers, r.Publishers, r.PublishBatching,
		r.Delivered, r.Expected, r.EventsPerSec, r.MBPerSec, r.PublishEventsPerSec)
}

// pubTransportLabel reports the publishers' transport only when it
// differs from the subscribers'.
func pubTransportLabel(cfg FanoutConfig) string {
	if cfg.PubTransport == cfg.Transport {
		return ""
	}
	return cfg.PubTransport
}

// fanoutTopic is the concrete topic publishers flood.
const fanoutTopic = "/bench/fanout/stream"

// RunFanout runs the fan-out throughput benchmark.
func RunFanout(cfg FanoutConfig) (FanoutResult, error) {
	cfg = cfg.withDefaults()
	res := FanoutResult{
		Mode:            cfg.Mode.String(),
		Transport:       cfg.Transport,
		PubTransport:    pubTransportLabel(cfg),
		Subscribers:     cfg.Subscribers,
		Publishers:      cfg.Publishers,
		Events:          cfg.Events,
		PayloadBytes:    cfg.PayloadBytes,
		PublishBatching: cfg.PublishBatching,
		Expected:        uint64(cfg.Subscribers) * uint64(cfg.Publishers) * uint64(cfg.Events),
	}

	b := broker.New(broker.Config{
		ID:            "fanout-broker",
		Mode:          cfg.Mode,
		QueueDepth:    cfg.QueueDepth,
		FlushInterval: cfg.FlushInterval,
		MaxBatchBytes: cfg.MaxBatchBytes,
	})
	defer b.Stop()

	for _, tr := range []string{cfg.Transport, cfg.PubTransport} {
		if tr != "mem" && tr != "tcp" {
			return res, fmt.Errorf("bench: unknown fanout transport %q", tr)
		}
	}
	var listenAddr string
	if cfg.Transport == "tcp" || cfg.PubTransport == "tcp" {
		l, err := b.Listen("tcp://127.0.0.1:0")
		if err != nil {
			return res, err
		}
		listenAddr = l.Addr()
	}
	dial := func(tr, id string) (*broker.Client, error) {
		if tr == "mem" {
			return b.LocalClient(id, transport.LinkProfile{})
		}
		return broker.Dial(listenAddr, id)
	}

	var delivered atomic.Uint64
	// lastDelivery tracks the wall time of the most recent delivery so the
	// quiesce loop can stop the clock when traffic dries up.
	var lastDelivery atomic.Int64

	subs := make([]*broker.Client, 0, cfg.Subscribers)
	defer func() {
		for _, c := range subs {
			c.Close()
		}
	}()
	var drainWG sync.WaitGroup
	for i := 0; i < cfg.Subscribers; i++ {
		c, err := dial(cfg.Transport, fmt.Sprintf("fanout-sub-%d", i))
		if err != nil {
			return res, fmt.Errorf("bench: subscriber %d: %w", i, err)
		}
		subs = append(subs, c)
		sub, err := c.Subscribe("/bench/fanout/#", 1024)
		if err != nil {
			return res, fmt.Errorf("bench: subscribe %d: %w", i, err)
		}
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			// Drain the subscription ring in bursts: one lock and one
			// wakeup per delivered batch rather than per event.
			buf := make([]*event.Event, 0, 256)
			for {
				var ok bool
				buf, ok = sub.RecvBatch(buf[:0], 256)
				// Sample the delivery clock once per burst: calling
				// time.Now per delivery costs measurable CPU at several
				// hundred thousand events per second, and the quiesce
				// window is three orders of magnitude coarser.
				if len(buf) > 0 {
					delivered.Add(uint64(len(buf)))
					lastDelivery.Store(time.Now().UnixNano())
					clear(buf)
				}
				if !ok {
					return
				}
			}
		}()
	}

	payload := make([]byte, cfg.PayloadBytes)

	// Dial the publishers before starting the clock so connection
	// handshakes are not charged to the publish rate.
	pubs := make([]*broker.Client, 0, cfg.Publishers)
	for p := 0; p < cfg.Publishers; p++ {
		c, err := dial(cfg.PubTransport, fmt.Sprintf("fanout-pub-%d", p))
		if err != nil {
			return res, fmt.Errorf("bench: publisher %d: %w", p, err)
		}
		defer c.Close()
		pubs = append(pubs, c)
	}

	start := time.Now()
	lastDelivery.Store(start.UnixNano())

	var pubWG sync.WaitGroup
	pubErr := make(chan error, cfg.Publishers)
	for _, c := range pubs {
		pubWG.Add(1)
		go func(c *broker.Client) {
			defer pubWG.Done()
			if cfg.PublishBatching {
				pub := c.Publisher(broker.PublisherConfig{
					Batching:      true,
					MaxBatchBytes: cfg.PublishMaxBatchBytes,
					FlushInterval: cfg.PublishFlushInterval,
				})
				for i := 0; i < cfg.Events; i++ {
					if err := pub.Publish(event.New(fanoutTopic, event.KindRTP, payload)); err != nil {
						pubErr <- err
						return
					}
				}
				if err := pub.Close(); err != nil {
					pubErr <- err
				}
				return
			}
			for i := 0; i < cfg.Events; i++ {
				if err := c.Publish(fanoutTopic, event.KindRTP, payload); err != nil {
					pubErr <- err
					return
				}
			}
		}(c)
	}
	pubWG.Wait()
	res.PublishElapsedSec = time.Since(start).Seconds()
	if res.PublishElapsedSec > 0 {
		res.PublishEventsPerSec = float64(cfg.Publishers) * float64(cfg.Events) / res.PublishElapsedSec
	}
	select {
	case err := <-pubErr:
		return res, fmt.Errorf("bench: publish: %w", err)
	default:
	}

	// Quiesce: stop once every expected event arrived or deliveries have
	// been silent for quiesceIdle (best-effort lanes may drop under
	// overload, so "all delivered" is not guaranteed).
	const quiesceIdle = 500 * time.Millisecond
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if delivered.Load() >= res.Expected {
			break
		}
		if time.Since(time.Unix(0, lastDelivery.Load())) > quiesceIdle {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	end := time.Unix(0, lastDelivery.Load())
	if !end.After(start) {
		end = time.Now()
	}
	res.Delivered = delivered.Load()
	res.ElapsedSec = end.Sub(start).Seconds()
	if res.ElapsedSec > 0 {
		res.EventsPerSec = float64(res.Delivered) / res.ElapsedSec
		res.MBPerSec = res.EventsPerSec * float64(cfg.PayloadBytes) / 1e6
	}
	return res, nil
}
