package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"github.com/globalmmcs/globalmmcs/internal/broker"
)

func TestFanoutJSONDump(t *testing.T) {
	if os.Getenv("FANOUT_DUMP") == "" {
		t.Skip("set FANOUT_DUMP=1 to run")
	}
	for _, mode := range []broker.Mode{broker.ModeClientServer, broker.ModePeerToPeer} {
		for _, events := range []int{500, 2000} {
			res, err := RunFanout(FanoutConfig{Mode: mode, Events: events})
			if err != nil {
				t.Fatal(err)
			}
			b, _ := json.Marshal(res)
			fmt.Printf("FANOUTJSON %s\n", b)
		}
	}
}
