package bench

import (
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/media"
)

// scaledTestbed shrinks the experiment so unit tests finish in seconds
// while preserving the saturation relationship: 32 receivers at 400µs
// per-send ≈ 12.8 ms serialized fan-out versus ~12-15 ms packet spacing.
func scaledTestbed() Testbed {
	return Testbed{
		PerSendCost:       400 * time.Microsecond,
		EgressBytesPerSec: 35_000_000,
		LocalDelay:        200 * time.Microsecond,
		RemoteDelay:       time.Millisecond,
		LocalJitter:       300 * time.Microsecond,
		RemoteJitter:      2 * time.Millisecond,
	}
}

func scaledFig3(system System) Fig3Config {
	return Fig3Config{
		System:    system,
		Receivers: 32,
		Measured:  6,
		Packets:   120,
		Video:     media.VideoConfig{},
		Testbed:   scaledTestbed(),
	}
}

func TestFig3BrokerRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time experiment")
	}
	res, err := RunFig3(scaledFig3(SystemBroker))
	if err != nil {
		t.Fatal(err)
	}
	if res.Received == 0 {
		t.Fatal("no packets measured")
	}
	if res.MeanDelayMs <= 0 {
		t.Fatalf("mean delay = %v", res.MeanDelayMs)
	}
	if res.Delay.Len() == 0 || res.Jitter.Len() == 0 {
		t.Fatal("series empty")
	}
	t.Logf("broker: delay=%.2fms jitter=%.2fms received=%d lost=%d",
		res.MeanDelayMs, res.MeanJitterMs, res.Received, res.Lost)
}

func TestFig3ShapeBrokerBeatsReflector(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time experiment")
	}
	broker, err := RunFig3(scaledFig3(SystemBroker))
	if err != nil {
		t.Fatal(err)
	}
	reflector, err := RunFig3(scaledFig3(SystemReflector))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("broker    delay=%.2fms jitter=%.2fms", broker.MeanDelayMs, broker.MeanJitterMs)
	t.Logf("reflector delay=%.2fms jitter=%.2fms", reflector.MeanDelayMs, reflector.MeanJitterMs)
	// The paper's headline shape: the broker's delay is a small fraction
	// of the reflector's. Use a conservative 1.5x to avoid CI flake; the
	// real margin is larger.
	if reflector.MeanDelayMs < broker.MeanDelayMs*1.5 {
		t.Errorf("reflector delay %.2fms not clearly above broker %.2fms",
			reflector.MeanDelayMs, broker.MeanDelayMs)
	}
}

func TestCapacityAudioSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time experiment")
	}
	res, err := RunCapacity(CapacityConfig{
		Kind:    MediaAudio,
		Clients: 50,
		Packets: 100,
		Testbed: scaledTestbed(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.GoodQuality {
		t.Errorf("50 audio clients should be good quality: %+v", res)
	}
	t.Logf("audio cap 50: %+v", res)
}

func TestSystemString(t *testing.T) {
	if SystemBroker.String() != "NaradaBrokering" || SystemReflector.String() != "JMF-reflector" {
		t.Error("system names")
	}
	if MediaAudio.String() != "audio" || MediaVideo.String() != "video" {
		t.Error("media names")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Fig3Config{}.withDefaults()
	if cfg.Receivers != 400 || cfg.Measured != 12 || cfg.Packets != 2000 {
		t.Errorf("paper defaults wrong: %+v", cfg)
	}
	if cfg.System != SystemBroker {
		t.Error("default system should be broker")
	}
	cc := CapacityConfig{}.withDefaults()
	if cc.Kind != MediaAudio || cc.Measured != 12 {
		t.Errorf("capacity defaults wrong: %+v", cc)
	}
	// Measured clamps to Clients.
	cc2 := CapacityConfig{Clients: 4}.withDefaults()
	if cc2.Measured != 4 {
		t.Errorf("measured not clamped: %d", cc2.Measured)
	}
}

func TestRunFig3UnknownSystem(t *testing.T) {
	if _, err := RunFig3(Fig3Config{System: System(99)}); err == nil {
		t.Fatal("unknown system accepted")
	}
}
