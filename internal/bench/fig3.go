// Package bench implements the experiment harness that regenerates every
// quantitative result in the paper:
//
//   - Figure 3 (both panels): per-packet delay and jitter for 12 of 400
//     video receivers, NaradaBrokering-style broker vs JMF-style
//     reflector.
//   - The §3.2 capacity claims: one broker sustaining >1000 audio or
//     >400 video clients with good quality.
//
// The same harness backs cmd/gmmcs-bench (full paper-scale runs) and the
// root bench_test.go (scaled-down smoke benches).
//
// Emulated testbed: both systems run over identical shaped in-process
// links (see transport.LinkProfile and DESIGN.md §7). Calibration
// constants live in calibrate.go.
package bench

import (
	"fmt"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/reflector"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// System selects which fan-out implementation an experiment drives.
type System int

// Systems under test.
const (
	// SystemBroker is the NaradaBrokering-substitute broker.
	SystemBroker System = iota + 1
	// SystemReflector is the JMF-style single-threaded reflector baseline.
	SystemReflector
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case SystemBroker:
		return "NaradaBrokering"
	case SystemReflector:
		return "JMF-reflector"
	default:
		return fmt.Sprintf("system(%d)", int(s))
	}
}

// Fig3Config parameterises the Figure 3 experiment.
type Fig3Config struct {
	// System selects broker or reflector.
	System System
	// Receivers is the total fan-out width (paper: 400).
	Receivers int
	// Measured is how many co-located receivers are instrumented
	// (paper: 12).
	Measured int
	// Packets is the trace length (paper: 2000).
	Packets int
	// Video shapes the stream (paper: 600 Kbps).
	Video media.VideoConfig
	// Testbed supplies the emulated link properties; zero value uses the
	// calibrated defaults.
	Testbed Testbed
}

func (c Fig3Config) withDefaults() Fig3Config {
	if c.System == 0 {
		c.System = SystemBroker
	}
	if c.Receivers <= 0 {
		c.Receivers = 400
	}
	if c.Measured <= 0 {
		c.Measured = 12
	}
	if c.Measured > c.Receivers {
		c.Measured = c.Receivers
	}
	if c.Packets <= 0 {
		c.Packets = 2000
	}
	c.Testbed = c.Testbed.withDefaults()
	return c
}

// Fig3Result carries the regenerated Figure 3 series and summary numbers.
type Fig3Result struct {
	System System
	// Delay and Jitter are per-packet-number series averaged over the
	// measured receivers, in milliseconds — the two panels of Figure 3.
	Delay  *metrics.Series
	Jitter *metrics.Series
	// MeanDelayMs and MeanJitterMs correspond to the averages printed in
	// the figure ("NaradaBrokering Avg=80.76 ms, JMF Avg=229.23 ms").
	MeanDelayMs  float64
	MeanJitterMs float64
	// Received/Lost aggregate over measured receivers.
	Received, Lost uint64
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
}

// RunFig3 executes the Figure 3 experiment for one system.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	switch cfg.System {
	case SystemBroker:
		return runFig3Broker(cfg)
	case SystemReflector:
		return runFig3Reflector(cfg)
	default:
		return nil, fmt.Errorf("bench: unknown system %d", cfg.System)
	}
}

const fig3Topic = "/xgsp/session/fig3/video"

func newFig3Instruments(cfg Fig3Config) (*metrics.Series, *metrics.Series, []*media.Receiver) {
	delay := metrics.NewSeries("delay-ms", cfg.Packets+16)
	jitter := metrics.NewSeries("jitter-ms", cfg.Packets+16)
	receivers := make([]*media.Receiver, cfg.Measured)
	for i := range receivers {
		receivers[i] = media.NewReceiver(media.ReceiverConfig{
			ClockRate:    rtp.VideoClockRate,
			DelaySeries:  delay,
			JitterSeries: jitter,
		})
	}
	return delay, jitter, receivers
}

func assembleFig3Result(cfg Fig3Config, delay, jitter *metrics.Series, receivers []*media.Receiver, elapsed time.Duration) *Fig3Result {
	res := &Fig3Result{
		System:       cfg.System,
		Delay:        delay,
		Jitter:       jitter,
		MeanDelayMs:  delay.Mean(),
		MeanJitterMs: jitter.Mean(),
		Elapsed:      elapsed,
	}
	for _, r := range receivers {
		snap := r.Snapshot()
		res.Received += snap.Received
		res.Lost += snap.Lost
	}
	return res
}

func runFig3Broker(cfg Fig3Config) (*Fig3Result, error) {
	b := broker.New(broker.Config{ID: "fig3-broker", QueueDepth: 2048})
	defer b.Stop()

	delay, jitter, measured := newFig3Instruments(cfg)
	done := make(chan struct{})
	var wg sync.WaitGroup

	for i := range cfg.Receivers {
		isMeasured := i < cfg.Measured
		profile := cfg.Testbed.receiverProfile(isMeasured)
		c, err := b.LocalClient(fmt.Sprintf("recv-%d", i), profile)
		if err != nil {
			close(done)
			return nil, err
		}
		defer c.Close()
		sub, err := c.Subscribe(fig3Topic, 2048)
		if err != nil {
			close(done)
			return nil, err
		}
		wg.Add(1)
		if isMeasured {
			r := measured[i]
			go func() {
				defer wg.Done()
				r.Drain(sub.C(), done)
			}()
		} else {
			go func() {
				defer wg.Done()
				drain(sub.C(), done)
			}()
		}
	}

	sender, err := b.LocalClient("sender", transport.LinkProfile{})
	if err != nil {
		close(done)
		return nil, err
	}
	defer sender.Close()

	start := time.Now()
	src := media.NewVideoSource(cfg.Video)
	if _, err := media.NewSender(sender, fig3Topic).SendVideo(src, cfg.Packets, done); err != nil {
		close(done)
		return nil, err
	}
	waitForReceivers(measured, cfg.Packets, fig3Deadline(cfg))
	elapsed := time.Since(start)
	close(done)
	wg.Wait()
	return assembleFig3Result(cfg, delay, jitter, measured, elapsed), nil
}

func fig3Deadline(cfg Fig3Config) time.Duration {
	return 10*time.Second + time.Duration(cfg.Packets)*time.Millisecond
}

func runFig3Reflector(cfg Fig3Config) (*Fig3Result, error) {
	r := reflector.NewWithConfig(reflector.Config{
		ReprocessRTP:   true,
		ProcessingCost: cfg.Testbed.JMFExtraCost,
	})
	defer r.Stop()

	delay, jitter, measured := newFig3Instruments(cfg)
	done := make(chan struct{})
	var wg sync.WaitGroup

	for i := range cfg.Receivers {
		isMeasured := i < cfg.Measured
		profile := cfg.Testbed.receiverProfile(isMeasured)
		near, far := transport.Pipe(fmt.Sprintf("recv-%d", i), "reflector")
		shaped := transport.Shape(near, profile)
		if err := r.AddReceiver(shaped); err != nil {
			close(done)
			return nil, err
		}
		wg.Add(1)
		if isMeasured {
			recv := measured[i]
			go func() {
				defer wg.Done()
				drainConn(far, recv.HandleEvent)
			}()
		} else {
			go func() {
				defer wg.Done()
				drainConn(far, nil)
			}()
		}
	}

	srcNear, srcFar := transport.Pipe("reflector", "sender")
	r.ServeSourceAsync(srcNear)
	pub := reflector.NewConnPublisher(srcFar, "sender")

	start := time.Now()
	src := media.NewVideoSource(cfg.Video)
	if _, err := media.NewSender(pub, fig3Topic).SendVideo(src, cfg.Packets, done); err != nil {
		close(done)
		return nil, err
	}
	waitForReceivers(measured, cfg.Packets, fig3Deadline(cfg))
	elapsed := time.Since(start)
	srcFar.Close()
	close(done)
	r.Stop()
	wg.Wait()
	return assembleFig3Result(cfg, delay, jitter, measured, elapsed), nil
}
