package bench

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// ReplayConfig parameterises the durable-topic-log benchmark. It runs
// four cells on one machine:
//
//  1. live control — fan-out delivery rate with recording off;
//  2. recorded live — the same load with the topic recorded, so the
//     delta is the recording tax on the hot path;
//  3. replay fan-out — N late joiners each replay a prefilled log to
//     its tail, clocked end to end (the catch-up bandwidth);
//  4. catch-up — one joiner starts a lag's worth of paced history
//     behind a live publisher and the cell reports how long the replay
//     cursor takes to reach the live tail.
type ReplayConfig struct {
	// Subscribers is the fan-out width N. Default 16.
	Subscribers int
	// Publishers drive the live cells. Default 2.
	Publishers int
	// PayloadBytes sizes each event payload. Default 256.
	PayloadBytes int
	// Prefill is how many events the replay fan-out cell records before
	// the joiners replay them. Default 50000.
	Prefill int
	// Warmup precedes each live measurement window. Default 300ms.
	Warmup time.Duration
	// Duration is the live cells' measurement window. Default 1s.
	Duration time.Duration
	// CatchupLag is how far behind the catch-up joiner starts: the log
	// is prefilled with CatchupLag × CatchupRate events. Default 10s.
	CatchupLag time.Duration
	// CatchupRate is the paced live publish rate (events/sec) the
	// catch-up joiner must outrun. Default 20000.
	CatchupRate int
	// Transport selects the subscribers' links in every cell — the live
	// control, the recorded live cell and the replay joiners alike, so
	// the replay-vs-live ratio compares the same delivery path and only
	// the event source differs (live routing vs log cursor). "tcp" (the
	// default) runs the full wire path; "mem" uses in-process links.
	Transport string
	// QueueDepth overrides the broker's per-session best-effort depth.
	// Default 8192.
	QueueDepth int
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.Subscribers <= 0 {
		c.Subscribers = 16
	}
	if c.Publishers <= 0 {
		c.Publishers = 2
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 256
	}
	if c.Prefill <= 0 {
		c.Prefill = 50000
	}
	if c.Warmup <= 0 {
		c.Warmup = 300 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.CatchupLag <= 0 {
		c.CatchupLag = 10 * time.Second
	}
	if c.CatchupRate <= 0 {
		c.CatchupRate = 20000
	}
	if c.Transport == "" {
		c.Transport = "tcp"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8192
	}
	return c
}

// ReplayResult reports one full replay benchmark run.
type ReplayResult struct {
	Subscribers  int    `json:"subscribers"`
	Publishers   int    `json:"publishers"`
	PayloadBytes int    `json:"payload_bytes"`
	Prefill      int    `json:"prefill"`
	Transport    string `json:"transport"`
	// LivePerSec is the control cell's delivered events/sec (recording
	// off).
	LivePerSec float64 `json:"live_per_sec"`
	// RecordedLivePerSec is the same load with the topic recorded.
	RecordedLivePerSec float64 `json:"recorded_live_per_sec"`
	// RecordOverheadPct is the recording tax on delivered events/sec:
	// (live − recorded) / live × 100. Negative values are run-to-run
	// noise.
	RecordOverheadPct float64 `json:"record_overhead_pct"`
	// RecordedPerSec is the log append rate sustained during the
	// recorded live cell.
	RecordedPerSec float64 `json:"recorded_per_sec"`
	// ReplayPerSec is the replay fan-out cell's total delivery rate:
	// Subscribers × Prefill events over the wall time from subscribe to
	// the last cursor reaching the tail.
	ReplayPerSec float64 `json:"replay_per_sec"`
	// ReplayVsLive is ReplayPerSec / LivePerSec — how replay bandwidth
	// compares with live fan-out on the same box.
	ReplayVsLive float64 `json:"replay_vs_live"`
	// CatchupLagSec and CatchupEvents describe the catch-up cell's
	// starting deficit; CatchupSec is how long the joiner took to reach
	// the live tail while the publisher kept pacing.
	CatchupLagSec  float64 `json:"catchup_lag_sec"`
	CatchupEvents  int     `json:"catchup_events"`
	CatchupSec     float64 `json:"catchup_sec"`
	CatchupPerSec  float64 `json:"catchup_per_sec"`
	CatchupLiveRps int     `json:"catchup_live_rate"`
}

func (r ReplayResult) String() string {
	return fmt.Sprintf("replay subs=%d live %.0f ev/s recorded-live %.0f ev/s (overhead %.1f%%) replay %.0f ev/s (%.2fx live) catchup %d events in %.2fs against %d ev/s live",
		r.Subscribers, r.LivePerSec, r.RecordedLivePerSec, r.RecordOverheadPct,
		r.ReplayPerSec, r.ReplayVsLive, r.CatchupEvents, r.CatchupSec, r.CatchupLiveRps)
}

// replayTopic is the concrete recorded topic; replayPattern is the
// pattern recorded and replayed.
const (
	replayTopic   = "/bench/replay/stream"
	replayPattern = "/bench/replay/#"
)

// RunReplay runs all four replay benchmark cells.
func RunReplay(cfg ReplayConfig) (ReplayResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport != "mem" && cfg.Transport != "tcp" {
		return ReplayResult{}, fmt.Errorf("bench: unknown replay transport %q", cfg.Transport)
	}
	res := ReplayResult{
		Subscribers:  cfg.Subscribers,
		Publishers:   cfg.Publishers,
		PayloadBytes: cfg.PayloadBytes,
		Prefill:      cfg.Prefill,
		Transport:    cfg.Transport,
	}

	live, err := runReplayLiveCell(cfg, false)
	if err != nil {
		return res, fmt.Errorf("bench: live control: %w", err)
	}
	res.LivePerSec = live.deliveredPerSec

	recorded, err := runReplayLiveCell(cfg, true)
	if err != nil {
		return res, fmt.Errorf("bench: recorded live: %w", err)
	}
	res.RecordedLivePerSec = recorded.deliveredPerSec
	res.RecordedPerSec = recorded.recordedPerSec
	if res.LivePerSec > 0 {
		res.RecordOverheadPct = (res.LivePerSec - res.RecordedLivePerSec) / res.LivePerSec * 100
	}

	if err := runReplayFanoutCell(cfg, &res); err != nil {
		return res, fmt.Errorf("bench: replay fan-out: %w", err)
	}
	if res.LivePerSec > 0 {
		res.ReplayVsLive = res.ReplayPerSec / res.LivePerSec
	}

	if err := runReplayCatchupCell(cfg, &res); err != nil {
		return res, fmt.Errorf("bench: catch-up: %w", err)
	}
	return res, nil
}

func newReplayBroker(cfg ReplayConfig, record bool) (*broker.Broker, string, error) {
	bcfg := broker.Config{
		ID:            "replay-broker",
		QueueDepth:    cfg.QueueDepth,
		FlushInterval: time.Millisecond,
	}
	var dir string
	if record {
		var err error
		dir, err = os.MkdirTemp("", "gmmcs-bench-replay-")
		if err != nil {
			return nil, "", err
		}
		bcfg.RecordPatterns = []string{replayPattern}
		bcfg.RecordDir = dir
	}
	return broker.New(bcfg), dir, nil
}

// replayDial connects a subscriber over the cell's configured transport:
// an in-process link for "mem", the full loopback wire path for "tcp".
func replayDial(b *broker.Broker, addr, tr, id string) (*broker.Client, error) {
	if tr == "mem" {
		return b.LocalClient(id, transport.LinkProfile{})
	}
	return broker.Dial(addr, id)
}

// drainSubscribers opens N subscribers on the replay pattern over the
// configured transport, each draining its ring in bursts.
func drainSubscribers(b *broker.Broker, addr, tr string, n int) ([]*broker.Client, error) {
	clients := make([]*broker.Client, 0, n)
	for i := 0; i < n; i++ {
		c, err := replayDial(b, addr, tr, fmt.Sprintf("replay-sub-%d", i))
		if err != nil {
			return clients, err
		}
		clients = append(clients, c)
		sub, err := c.Subscribe(replayPattern, 1024)
		if err != nil {
			return clients, err
		}
		go func() {
			buf := make([]*event.Event, 0, 256)
			for {
				var ok bool
				buf, ok = sub.RecvBatch(buf[:0], 256)
				clear(buf)
				if !ok {
					return
				}
			}
		}()
	}
	return clients, nil
}

type replayLiveCellResult struct {
	deliveredPerSec float64
	recordedPerSec  float64
}

// runReplayLiveCell measures fan-out delivery under continuous publish
// load, with or without the topic recorded.
func runReplayLiveCell(cfg ReplayConfig, record bool) (replayLiveCellResult, error) {
	var out replayLiveCellResult
	b, dir, err := newReplayBroker(cfg, record)
	if err != nil {
		return out, err
	}
	defer func() {
		b.Stop()
		if dir != "" {
			os.RemoveAll(dir)
		}
	}()
	l, err := b.Listen("tcp://127.0.0.1:0")
	if err != nil {
		return out, err
	}

	subs, err := drainSubscribers(b, l.Addr(), cfg.Transport, cfg.Subscribers)
	defer func() {
		for _, c := range subs {
			c.Close()
		}
	}()
	if err != nil {
		return out, err
	}

	payload := make([]byte, cfg.PayloadBytes)
	stop := make(chan struct{})
	pubErr := make(chan error, cfg.Publishers)
	var wg sync.WaitGroup
	for p := 0; p < cfg.Publishers; p++ {
		c, err := broker.Dial(l.Addr(), fmt.Sprintf("replay-pub-%d", p))
		if err != nil {
			return out, err
		}
		defer c.Close()
		wg.Add(1)
		go func(c *broker.Client) {
			defer wg.Done()
			pub := c.Publisher(broker.PublisherConfig{Batching: true})
			defer pub.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := pub.Publish(event.New(replayTopic, event.KindRTP, payload)); err != nil {
					select {
					case pubErr <- err:
					default:
					}
					return
				}
			}
		}(c)
	}

	appended := func() uint64 {
		if !record {
			return 0
		}
		return b.Metrics().Counter("broker.log." + replayPattern + ".appended").Value()
	}

	time.Sleep(cfg.Warmup)
	d0 := b.Metrics().Counter("broker.events_out").Value()
	r0 := appended()
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	d1 := b.Metrics().Counter("broker.events_out").Value()
	r1 := appended()
	window := time.Since(t0).Seconds()
	close(stop)
	wg.Wait()
	select {
	case err := <-pubErr:
		return out, err
	default:
	}
	if window > 0 {
		out.deliveredPerSec = float64(d1-d0) / window
		out.recordedPerSec = float64(r1-r0) / window
	}
	return out, nil
}

// prefillLog publishes n events and waits until the broker's topic log
// holds all of them.
func prefillLog(b *broker.Broker, l string, n, payloadBytes int) error {
	c, err := broker.Dial(l, "replay-prefill")
	if err != nil {
		return err
	}
	defer c.Close()
	pub := c.Publisher(broker.PublisherConfig{Batching: true})
	payload := make([]byte, payloadBytes)
	for i := 0; i < n; i++ {
		if err := pub.Publish(event.New(replayTopic, event.KindRTP, payload)); err != nil {
			pub.Close()
			return err
		}
	}
	if err := pub.Close(); err != nil {
		return err
	}
	log := b.TopicLog(replayPattern)
	if log == nil {
		return fmt.Errorf("topic log missing for %s", replayPattern)
	}
	deadline := time.Now().Add(30 * time.Second)
	for log.NextSeq() < uint64(n)+1 {
		if time.Now().After(deadline) {
			return fmt.Errorf("prefill: log holds %d/%d events", log.NextSeq()-1, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// runReplayFanoutCell prefills the log, then N joiners replay it from
// the earliest event to the tail concurrently.
func runReplayFanoutCell(cfg ReplayConfig, res *ReplayResult) error {
	b, dir, err := newReplayBroker(cfg, true)
	if err != nil {
		return err
	}
	defer func() {
		b.Stop()
		os.RemoveAll(dir)
	}()
	l, err := b.Listen("tcp://127.0.0.1:0")
	if err != nil {
		return err
	}
	if err := prefillLog(b, l.Addr(), cfg.Prefill, cfg.PayloadBytes); err != nil {
		return err
	}

	var clients []*broker.Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Subscribers)
	t0 := time.Now()
	for i := 0; i < cfg.Subscribers; i++ {
		c, err := replayDial(b, l.Addr(), cfg.Transport, fmt.Sprintf("replay-join-%d", i))
		if err != nil {
			return err
		}
		clients = append(clients, c)
		wg.Add(1)
		go func(c *broker.Client) {
			defer wg.Done()
			sub, err := c.SubscribeReplay(context.Background(), replayPattern, 0, 1024)
			if err != nil {
				errs <- err
				return
			}
			got := 0
			buf := make([]*event.Event, 0, 256)
			for got < cfg.Prefill {
				var ok bool
				buf, ok = sub.RecvBatch(buf[:0], 256)
				got += len(buf)
				clear(buf)
				if !ok {
					errs <- fmt.Errorf("replay subscription closed at %d/%d", got, cfg.Prefill)
					return
				}
			}
			select {
			case <-sub.CaughtUp():
			case <-time.After(30 * time.Second):
				errs <- fmt.Errorf("replay never caught up")
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	select {
	case err := <-errs:
		return err
	default:
	}
	if elapsed > 0 {
		res.ReplayPerSec = float64(cfg.Subscribers*cfg.Prefill) / elapsed
	}
	return nil
}

// runReplayCatchupCell starts a joiner a lag's worth of history behind
// a paced live publisher and times its climb to the live tail.
func runReplayCatchupCell(cfg ReplayConfig, res *ReplayResult) error {
	b, dir, err := newReplayBroker(cfg, true)
	if err != nil {
		return err
	}
	defer func() {
		b.Stop()
		os.RemoveAll(dir)
	}()
	l, err := b.Listen("tcp://127.0.0.1:0")
	if err != nil {
		return err
	}
	backlog := int(cfg.CatchupLag.Seconds() * float64(cfg.CatchupRate))
	res.CatchupLagSec = cfg.CatchupLag.Seconds()
	res.CatchupEvents = backlog
	res.CatchupLiveRps = cfg.CatchupRate
	if err := prefillLog(b, l.Addr(), backlog, cfg.PayloadBytes); err != nil {
		return err
	}

	// Live publisher pacing at CatchupRate while the joiner catches up.
	pubC, err := broker.Dial(l.Addr(), "catchup-pub")
	if err != nil {
		return err
	}
	defer pubC.Close()
	stop := make(chan struct{})
	var pubFailed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pub := pubC.Publisher(broker.PublisherConfig{Batching: true})
		defer pub.Close()
		payload := make([]byte, cfg.PayloadBytes)
		const tick = 5 * time.Millisecond
		perTick := int(float64(cfg.CatchupRate) * tick.Seconds())
		if perTick < 1 {
			perTick = 1
		}
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				for i := 0; i < perTick; i++ {
					if err := pub.Publish(event.New(replayTopic, event.KindRTP, payload)); err != nil {
						pubFailed.Store(true)
						return
					}
				}
			}
		}
	}()

	join, err := replayDial(b, l.Addr(), cfg.Transport, "catchup-join")
	if err != nil {
		return err
	}
	defer join.Close()
	t0 := time.Now()
	sub, err := join.SubscribeReplay(context.Background(), replayPattern, 0, 1024)
	if err != nil {
		return err
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		buf := make([]*event.Event, 0, 256)
		for {
			var ok bool
			buf, ok = sub.RecvBatch(buf[:0], 256)
			clear(buf)
			if !ok {
				return
			}
		}
	}()
	select {
	case <-sub.CaughtUp():
	case <-time.After(120 * time.Second):
		return fmt.Errorf("catch-up joiner never reached the live tail")
	}
	res.CatchupSec = time.Since(t0).Seconds()
	if res.CatchupSec > 0 {
		res.CatchupPerSec = float64(backlog) / res.CatchupSec
	}
	close(stop)
	wg.Wait()
	if pubFailed.Load() {
		return fmt.Errorf("catch-up live publisher failed")
	}
	join.Close()
	<-drained
	return nil
}
