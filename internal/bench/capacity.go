package bench

import (
	"fmt"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// MediaKind selects the capacity workload.
type MediaKind int

// Workload kinds.
const (
	// MediaAudio is the 64 Kbps / 50 pps G.711-style stream.
	MediaAudio MediaKind = iota + 1
	// MediaVideo is the 600 Kbps video stream.
	MediaVideo
)

// String implements fmt.Stringer.
func (k MediaKind) String() string {
	switch k {
	case MediaAudio:
		return "audio"
	case MediaVideo:
		return "video"
	default:
		return fmt.Sprintf("media(%d)", int(k))
	}
}

// Quality gates for "very good quality" (paper §3.2). A configuration
// passes when mean delay, jitter and loss are all under these bounds.
const (
	// QualityMaxDelayMs bounds acceptable mean one-way delay.
	QualityMaxDelayMs = 150.0
	// QualityMaxJitterMs bounds acceptable mean jitter.
	QualityMaxJitterMs = 30.0
	// QualityMaxLoss bounds acceptable loss rate.
	QualityMaxLoss = 0.02
)

// CapacityConfig parameterises one capacity measurement point.
type CapacityConfig struct {
	// Kind selects audio or video.
	Kind MediaKind
	// Clients is the number of receivers attached to the single broker.
	Clients int
	// Packets is how many packets the sender emits.
	Packets int
	// Measured is how many receivers are instrumented (default 12).
	Measured int
	// Testbed supplies link emulation; zero uses calibrated defaults.
	Testbed Testbed
}

func (c CapacityConfig) withDefaults() CapacityConfig {
	if c.Kind == 0 {
		c.Kind = MediaAudio
	}
	if c.Clients <= 0 {
		c.Clients = 100
	}
	if c.Packets <= 0 {
		c.Packets = 500
	}
	if c.Measured <= 0 {
		c.Measured = 12
	}
	if c.Measured > c.Clients {
		c.Measured = c.Clients
	}
	c.Testbed = c.Testbed.withDefaults()
	return c
}

// CapacityResult is one row of the capacity table.
type CapacityResult struct {
	Kind         MediaKind
	Clients      int
	MeanDelayMs  float64
	P99DelayMs   float64
	MeanJitterMs float64
	LossRate     float64
	GoodQuality  bool
	Elapsed      time.Duration
}

// RunCapacity measures one capacity point: one sender streaming to
// cfg.Clients receivers through a single broker.
func RunCapacity(cfg CapacityConfig) (*CapacityResult, error) {
	cfg = cfg.withDefaults()
	b := broker.New(broker.Config{ID: "cap-broker", QueueDepth: 2048})
	defer b.Stop()

	topic := "/xgsp/session/cap/" + cfg.Kind.String()
	hist := metrics.NewLatencyHistogram()
	clockRate := rtp.AudioClockRate
	if cfg.Kind == MediaVideo {
		clockRate = rtp.VideoClockRate
	}
	measured := make([]*media.Receiver, cfg.Measured)
	for i := range measured {
		measured[i] = media.NewReceiver(media.ReceiverConfig{
			ClockRate:      clockRate,
			DelayHistogram: hist,
		})
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := range cfg.Clients {
		isMeasured := i < cfg.Measured
		c, err := b.LocalClient(fmt.Sprintf("cap-recv-%d", i), cfg.Testbed.receiverProfile(isMeasured))
		if err != nil {
			close(done)
			return nil, err
		}
		defer c.Close()
		sub, err := c.Subscribe(topic, 1024)
		if err != nil {
			close(done)
			return nil, err
		}
		wg.Add(1)
		if isMeasured {
			r := measured[i]
			go func() {
				defer wg.Done()
				r.Drain(sub.C(), done)
			}()
		} else {
			go func() {
				defer wg.Done()
				drain(sub.C(), done)
			}()
		}
	}

	sender, err := b.LocalClient("cap-sender", transport.LinkProfile{})
	if err != nil {
		close(done)
		return nil, err
	}
	defer sender.Close()

	start := time.Now()
	ms := media.NewSender(sender, topic)
	switch cfg.Kind {
	case MediaAudio:
		if _, err := ms.SendAudio(media.NewAudioSource(media.AudioConfig{}), cfg.Packets, done); err != nil {
			close(done)
			return nil, err
		}
	case MediaVideo:
		if _, err := ms.SendVideo(media.NewVideoSource(media.VideoConfig{}), cfg.Packets, done); err != nil {
			close(done)
			return nil, err
		}
	}
	waitForReceivers(measured, cfg.Packets, 15*time.Second)
	elapsed := time.Since(start)
	close(done)
	wg.Wait()

	res := &CapacityResult{
		Kind:    cfg.Kind,
		Clients: cfg.Clients,
		Elapsed: elapsed,
	}
	var jitterSum, lossSum float64
	for _, r := range measured {
		snap := r.Snapshot()
		jitterSum += snap.JitterMs
		lossSum += snap.LossRate
	}
	res.MeanDelayMs = hist.Mean()
	res.P99DelayMs = hist.Quantile(0.99)
	res.MeanJitterMs = jitterSum / float64(len(measured))
	res.LossRate = lossSum / float64(len(measured))
	res.GoodQuality = res.MeanDelayMs < QualityMaxDelayMs &&
		res.MeanJitterMs < QualityMaxJitterMs &&
		res.LossRate < QualityMaxLoss
	return res, nil
}

// waitForReceivers blocks until every instrumented receiver has seen
// expected packets, progress stalls, or the deadline passes.
func waitForReceivers(receivers []*media.Receiver, expected int, maxWait time.Duration) {
	deadline := time.Now().Add(maxWait)
	var last uint64
	stable := 0
	for time.Now().Before(deadline) {
		var total uint64
		for _, r := range receivers {
			total += r.Snapshot().Received
		}
		if total >= uint64(len(receivers)*expected) {
			return
		}
		if total == last {
			stable++
			if stable >= 20 {
				return
			}
		} else {
			stable = 0
			last = total
		}
		time.Sleep(100 * time.Millisecond)
	}
}
