package bench

import (
	"fmt"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// IngestConfig parameterises the sustained-ingest benchmark: M
// publishers flood one broker continuously for a fixed window while N
// subscribers drain, and the benchmark reports the broker-side ingest
// rate — events accepted and routed per second of wall time. Unlike
// RunFanout (a fixed batch of events, clocked end to end) this holds the
// broker at saturation and measures the steady state, which is the
// operating point the burst-ingest path exists for: at 64 subscribers
// every ingested event used to cost ~64 queue locks and writer wakeups;
// burst ingest amortizes them across everything one read delivered.
type IngestConfig struct {
	// Mode selects the routing mode. Default ModeClientServer.
	Mode broker.Mode
	// Subscribers is the fan-out width N. Default 64.
	Subscribers int
	// Publishers is the number of concurrent publishers M. Default 4.
	Publishers int
	// PayloadBytes sizes each event payload. Default 1200.
	PayloadBytes int
	// Transport selects the subscribers' links: "mem" (the default)
	// keeps fan-out delivery cheap (pointer moves) so the measured rate
	// reflects broker-side ingest — routing, per-session queue handoff,
	// writer wakeups — rather than delivery byte-copying; "tcp" runs the
	// full wire path on both sides.
	Transport string
	// PubTransport selects the publishers' links ("" follows Transport
	// when that is "tcp", else "tcp"). The default tcp publishers
	// exercise the framed burst-decode ingest path.
	PubTransport string
	// Warmup runs load before the measurement window opens, so connection
	// ramp and cold caches are not charged to the rate. Default 300ms.
	Warmup time.Duration
	// Duration is the measurement window. Default 2s.
	Duration time.Duration
	// IngestBurst sets the broker's per-sweep burst bound: 0 keeps the
	// broker default (burst ingest on), 1 degenerates to event-at-a-time
	// ingest — the pre-batching baseline the speedup is measured against.
	IngestBurst int
	// DispatchBurst configures the subscriber clients' delivery plane: 0
	// keeps the default batched dispatch (a received burst is staged per
	// subscription and ring-delivered with one lock and one wakeup per
	// subscription per burst), 1 degenerates to event-at-a-time delivery
	// — the pre-batching client baseline.
	DispatchBurst int
	// PublishBatching routes publishers through the client-side batching
	// Publisher (the sustained gateway-sender configuration). Default
	// true — set DisablePublishBatching to turn it off.
	DisablePublishBatching bool
	// QueueDepth overrides the broker's per-session best-effort depth.
	// Default 8192.
	QueueDepth int
	// FlushInterval is the broker's batch linger (default 1ms, the
	// throughput-bound operating point).
	FlushInterval time.Duration
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.Mode == 0 {
		c.Mode = broker.ModeClientServer
	}
	if c.Subscribers <= 0 {
		c.Subscribers = 64
	}
	if c.Publishers <= 0 {
		c.Publishers = 4
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 1200
	}
	if c.Transport == "" {
		c.Transport = "mem"
	}
	if c.PubTransport == "" {
		c.PubTransport = "tcp"
	}
	if c.Warmup <= 0 {
		c.Warmup = 300 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8192
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = time.Millisecond
	}
	if c.FlushInterval < 0 {
		c.FlushInterval = 0
	}
	return c
}

// IngestResult reports one sustained-ingest run.
type IngestResult struct {
	Mode      string `json:"mode"`
	Transport string `json:"transport"`
	// PubTransport is the publishers' link when it differs from
	// Transport ("" otherwise).
	PubTransport    string `json:"pub_transport,omitempty"`
	Subscribers     int    `json:"subscribers"`
	Publishers      int    `json:"publishers"`
	PayloadBytes    int    `json:"payload_bytes"`
	IngestBurst     int    `json:"ingest_burst"`
	PublishBatching bool   `json:"publish_batching"`
	// WindowSec is the measurement window length.
	WindowSec float64 `json:"window_sec"`
	// IngestedPerSec is the headline number: events the broker accepted
	// and routed per second of window time (broker.events_routed rate).
	IngestedPerSec float64 `json:"ingested_per_sec"`
	// ArrivedPerSec is the raw inbound event rate (broker.events_in),
	// including control traffic.
	ArrivedPerSec float64 `json:"arrived_per_sec"`
	// DeliveredPerSec is the outbound delivery rate across all
	// subscribers (broker.events_out).
	DeliveredPerSec float64 `json:"delivered_per_sec"`
	// DispatchBurst echoes the subscribers' delivery-plane mode (0 =
	// batched default, 1 = event-at-a-time ablation).
	DispatchBurst int `json:"dispatch_burst"`
	// Client-side delivery-plane stats, summed across subscribers over
	// the measurement window: how many delivery bursts (ring lock
	// acquisitions) and consumer wakeups the deliveries cost.
	DeliveryBursts  uint64 `json:"delivery_bursts"`
	DeliveryWakeups uint64 `json:"delivery_wakeups"`
	// ClientDelivered is the number of events admitted to subscriber
	// rings during the window.
	ClientDelivered uint64 `json:"client_delivered"`
	// EventsPerBurst is the delivery-plane lock amortization: ring-
	// admitted events per delivery burst, i.e. per producer-side ring
	// lock acquisition (exactly 1.0 on the per-event ablation).
	EventsPerBurst float64 `json:"events_per_burst"`
	// EventsPerWakeup is the wakeup amortization: ring-admitted events
	// per consumer wakeup actually deposited.
	EventsPerWakeup float64 `json:"events_per_wakeup"`
	// RingOccupancyMax is the high-water subscription ring occupancy
	// observed across subscribers.
	RingOccupancyMax int `json:"ring_occupancy_max"`
}

func (r IngestResult) String() string {
	return fmt.Sprintf("ingest %s/%s subs=%d pubs=%d burst=%d dispatch=%d ingested %.0f ev/s delivered %.0f ev/s (%.1f ev/lock, %.1f ev/wakeup, ring high-water %d)",
		r.Mode, r.Transport, r.Subscribers, r.Publishers, r.IngestBurst, r.DispatchBurst,
		r.IngestedPerSec, r.DeliveredPerSec, r.EventsPerBurst, r.EventsPerWakeup, r.RingOccupancyMax)
}

// ingestTopic is the concrete topic the publishers flood.
const ingestTopic = "/bench/ingest/stream"

// RunIngest runs the sustained-ingest benchmark.
func RunIngest(cfg IngestConfig) (IngestResult, error) {
	cfg = cfg.withDefaults()
	res := IngestResult{
		Mode:            cfg.Mode.String(),
		Transport:       cfg.Transport,
		Subscribers:     cfg.Subscribers,
		Publishers:      cfg.Publishers,
		PayloadBytes:    cfg.PayloadBytes,
		IngestBurst:     cfg.IngestBurst,
		PublishBatching: !cfg.DisablePublishBatching,
	}
	if cfg.PubTransport != cfg.Transport {
		res.PubTransport = cfg.PubTransport
	}

	b := broker.New(broker.Config{
		ID:            "ingest-broker",
		Mode:          cfg.Mode,
		QueueDepth:    cfg.QueueDepth,
		FlushInterval: cfg.FlushInterval,
		IngestBurst:   cfg.IngestBurst,
	})
	defer b.Stop()
	if res.IngestBurst == 0 {
		res.IngestBurst = broker.DefaultIngestBurst
	}

	for _, tr := range []string{cfg.Transport, cfg.PubTransport} {
		if tr != "mem" && tr != "tcp" {
			return res, fmt.Errorf("bench: unknown ingest transport %q", tr)
		}
	}
	var listenAddr string
	if cfg.Transport == "tcp" || cfg.PubTransport == "tcp" {
		l, err := b.Listen("tcp://127.0.0.1:0")
		if err != nil {
			return res, err
		}
		listenAddr = l.Addr()
	}
	dial := func(tr, id string) (*broker.Client, error) {
		if tr == "mem" {
			return b.LocalClient(id, transport.LinkProfile{})
		}
		return broker.Dial(listenAddr, id)
	}

	res.DispatchBurst = cfg.DispatchBurst

	subs := make([]*broker.Client, 0, cfg.Subscribers)
	defer func() {
		for _, c := range subs {
			c.Close()
		}
	}()
	rings := make([]*broker.Subscription, 0, cfg.Subscribers)
	for i := 0; i < cfg.Subscribers; i++ {
		c, err := dial(cfg.Transport, fmt.Sprintf("ingest-sub-%d", i))
		if err != nil {
			return res, fmt.Errorf("bench: subscriber %d: %w", i, err)
		}
		if cfg.DispatchBurst != 0 {
			c.SetDispatchBurst(cfg.DispatchBurst)
		}
		subs = append(subs, c)
		sub, err := c.Subscribe("/bench/ingest/#", 1024)
		if err != nil {
			return res, fmt.Errorf("bench: subscribe %d: %w", i, err)
		}
		rings = append(rings, sub)
		go func() {
			buf := make([]*event.Event, 0, 256)
			for {
				var ok bool
				buf, ok = sub.RecvBatch(buf[:0], 256)
				clear(buf)
				if !ok {
					return
				}
			}
		}()
	}

	// deliveryStats sums the subscriber-side delivery-plane counters so
	// the window delta reports bursts/wakeups/events and the ring
	// high-water mark.
	deliveryStats := func() (bursts, wakeups, events uint64, maxOcc int) {
		for _, sub := range rings {
			st := sub.DeliveryStats()
			bursts += st.Bursts
			wakeups += st.Wakeups
			events += st.Events
			if st.MaxOccupancy > maxOcc {
				maxOcc = st.MaxOccupancy
			}
		}
		return
	}

	payload := make([]byte, cfg.PayloadBytes)
	stop := make(chan struct{})
	pubErr := make(chan error, cfg.Publishers)
	var pubWG sync.WaitGroup
	for p := 0; p < cfg.Publishers; p++ {
		c, err := dial(cfg.PubTransport, fmt.Sprintf("ingest-pub-%d", p))
		if err != nil {
			return res, fmt.Errorf("bench: publisher %d: %w", p, err)
		}
		defer c.Close()
		pubWG.Add(1)
		go func(c *broker.Client) {
			defer pubWG.Done()
			publish := c.Publish
			if !cfg.DisablePublishBatching {
				pub := c.Publisher(broker.PublisherConfig{Batching: true})
				defer pub.Close()
				publish = func(t string, kind event.Kind, payload []byte) error {
					return pub.Publish(event.New(t, kind, payload))
				}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := publish(ingestTopic, event.KindRTP, payload); err != nil {
					select {
					case pubErr <- err:
					default:
					}
					return
				}
			}
		}(c)
	}

	snapshot := func() (ingested, arrived, delivered uint64) {
		m := b.Metrics()
		return m.Counter("broker.events_routed").Value(),
			m.Counter("broker.events_in").Value(),
			m.Counter("broker.events_out").Value()
	}

	time.Sleep(cfg.Warmup)
	// The occupancy high-water is a monotonic marker: clear it so the
	// reported peak covers the measurement window, not warmup ramp.
	for _, sub := range rings {
		sub.ResetMaxOccupancy()
	}
	i0, a0, d0 := snapshot()
	b0, w0, e0, _ := deliveryStats()
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	i1, a1, d1 := snapshot()
	b1, w1, e1, maxOcc := deliveryStats()
	window := time.Since(t0).Seconds()
	close(stop)
	pubWG.Wait()

	select {
	case err := <-pubErr:
		return res, fmt.Errorf("bench: publish: %w", err)
	default:
	}

	res.WindowSec = window
	if window > 0 {
		res.IngestedPerSec = float64(i1-i0) / window
		res.ArrivedPerSec = float64(a1-a0) / window
		res.DeliveredPerSec = float64(d1-d0) / window
	}
	res.DeliveryBursts = b1 - b0
	res.DeliveryWakeups = w1 - w0
	res.ClientDelivered = e1 - e0
	if res.DeliveryBursts > 0 {
		res.EventsPerBurst = float64(res.ClientDelivered) / float64(res.DeliveryBursts)
	}
	if res.DeliveryWakeups > 0 {
		res.EventsPerWakeup = float64(res.ClientDelivered) / float64(res.DeliveryWakeups)
	}
	res.RingOccupancyMax = maxOcc
	return res, nil
}
