package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// IngestConfig parameterises the sustained-ingest benchmark: M
// publishers flood one broker continuously for a fixed window while N
// subscribers drain, and the benchmark reports the broker-side ingest
// rate — events accepted and routed per second of wall time. Unlike
// RunFanout (a fixed batch of events, clocked end to end) this holds the
// broker at saturation and measures the steady state, which is the
// operating point the burst-ingest path exists for: at 64 subscribers
// every ingested event used to cost ~64 queue locks and writer wakeups;
// burst ingest amortizes them across everything one read delivered.
type IngestConfig struct {
	// Mode selects the routing mode. Default ModeClientServer.
	Mode broker.Mode
	// Subscribers is the fan-out width N. Default 64.
	Subscribers int
	// Publishers is the number of concurrent publishers M. Default 4.
	Publishers int
	// PayloadBytes sizes each event payload. Default 1200.
	PayloadBytes int
	// Transport selects the subscribers' links: "mem" (the default)
	// keeps fan-out delivery cheap (pointer moves) so the measured rate
	// reflects broker-side ingest — routing, per-session queue handoff,
	// writer wakeups — rather than delivery byte-copying; "tcp" runs the
	// full wire path on both sides.
	Transport string
	// PubTransport selects the publishers' links ("" follows Transport
	// when that is "tcp", else "tcp"). The default tcp publishers
	// exercise the framed burst-decode ingest path.
	PubTransport string
	// Warmup runs load before the measurement window opens, so connection
	// ramp and cold caches are not charged to the rate. Default 300ms.
	Warmup time.Duration
	// Duration is the measurement window. Default 2s.
	Duration time.Duration
	// IngestBurst sets the broker's per-sweep burst bound: 0 keeps the
	// broker default (burst ingest on), 1 degenerates to event-at-a-time
	// ingest — the pre-batching baseline the speedup is measured against.
	IngestBurst int
	// DispatchBurst configures the subscriber clients' delivery plane: 0
	// keeps the default batched dispatch (a received burst is staged per
	// subscription and ring-delivered with one lock and one wakeup per
	// subscription per burst), 1 degenerates to event-at-a-time delivery
	// — the pre-batching client baseline.
	DispatchBurst int
	// PublishBatching routes publishers through the client-side batching
	// Publisher (the sustained gateway-sender configuration). Default
	// true — set DisablePublishBatching to turn it off.
	DisablePublishBatching bool
	// QueueDepth overrides the broker's per-session best-effort depth.
	// Default 8192.
	QueueDepth int
	// FlushInterval is the broker's batch linger (default 1ms, the
	// throughput-bound operating point).
	FlushInterval time.Duration
	// WriterPool sets the broker's writer-pool width: 0 keeps the
	// default (GOMAXPROCS-derived shared writer pools), negative
	// degenerates to the legacy writer-goroutine-per-session plane — the
	// pre-pool baseline the multi-core scaling is measured against.
	WriterPool int
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.Mode == 0 {
		c.Mode = broker.ModeClientServer
	}
	if c.Subscribers <= 0 {
		c.Subscribers = 64
	}
	if c.Publishers <= 0 {
		c.Publishers = 4
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 1200
	}
	if c.Transport == "" {
		c.Transport = "mem"
	}
	if c.PubTransport == "" {
		c.PubTransport = "tcp"
	}
	if c.Warmup <= 0 {
		c.Warmup = 300 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8192
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = time.Millisecond
	}
	if c.FlushInterval < 0 {
		c.FlushInterval = 0
	}
	return c
}

// IngestResult reports one sustained-ingest run.
type IngestResult struct {
	Mode      string `json:"mode"`
	Transport string `json:"transport"`
	// PubTransport is the publishers' link when it differs from
	// Transport ("" otherwise).
	PubTransport    string `json:"pub_transport,omitempty"`
	Subscribers     int    `json:"subscribers"`
	Publishers      int    `json:"publishers"`
	PayloadBytes    int    `json:"payload_bytes"`
	IngestBurst     int    `json:"ingest_burst"`
	PublishBatching bool   `json:"publish_batching"`
	// WindowSec is the measurement window length.
	WindowSec float64 `json:"window_sec"`
	// IngestedPerSec is the headline number: events the broker accepted
	// and routed per second of window time (broker.events_routed rate).
	IngestedPerSec float64 `json:"ingested_per_sec"`
	// ArrivedPerSec is the raw inbound event rate (broker.events_in),
	// including control traffic.
	ArrivedPerSec float64 `json:"arrived_per_sec"`
	// DeliveredPerSec is the outbound delivery rate across all
	// subscribers (broker.events_out).
	DeliveredPerSec float64 `json:"delivered_per_sec"`
	// DispatchBurst echoes the subscribers' delivery-plane mode (0 =
	// batched default, 1 = event-at-a-time ablation).
	DispatchBurst int `json:"dispatch_burst"`
	// Client-side delivery-plane stats, summed across subscribers over
	// the measurement window: how many delivery bursts (ring lock
	// acquisitions) and consumer wakeups the deliveries cost.
	DeliveryBursts  uint64 `json:"delivery_bursts"`
	DeliveryWakeups uint64 `json:"delivery_wakeups"`
	// ClientDelivered is the number of events admitted to subscriber
	// rings during the window.
	ClientDelivered uint64 `json:"client_delivered"`
	// EventsPerBurst is the delivery-plane lock amortization: ring-
	// admitted events per delivery burst, i.e. per producer-side ring
	// lock acquisition (exactly 1.0 on the per-event ablation).
	EventsPerBurst float64 `json:"events_per_burst"`
	// EventsPerWakeup is the wakeup amortization: ring-admitted events
	// per consumer wakeup actually deposited.
	EventsPerWakeup float64 `json:"events_per_wakeup"`
	// RingOccupancyMax is the high-water subscription ring occupancy
	// observed across subscribers.
	RingOccupancyMax int `json:"ring_occupancy_max"`
	// GoMaxProcs is the runtime.GOMAXPROCS the run executed under.
	GoMaxProcs int `json:"gomaxprocs"`
	// WriterPools is the broker's writer-pool count (0 = the legacy
	// writer-goroutine-per-session ablation).
	WriterPools int `json:"writer_pools"`
	// Writer-pool occupancy over the window: ready-list services
	// performed, events drained through the pools, and the amortization
	// ratio (drained events per service). Zero in the ablation.
	PoolServices         uint64  `json:"pool_services,omitempty"`
	PoolDrained          uint64  `json:"pool_drained,omitempty"`
	EventsPerPoolService float64 `json:"events_per_pool_service,omitempty"`
}

func (r IngestResult) String() string {
	return fmt.Sprintf("ingest %s/%s subs=%d pubs=%d burst=%d dispatch=%d ingested %.0f ev/s delivered %.0f ev/s (%.1f ev/lock, %.1f ev/wakeup, ring high-water %d)",
		r.Mode, r.Transport, r.Subscribers, r.Publishers, r.IngestBurst, r.DispatchBurst,
		r.IngestedPerSec, r.DeliveredPerSec, r.EventsPerBurst, r.EventsPerWakeup, r.RingOccupancyMax)
}

// ingestTopic is the concrete topic the publishers flood.
const ingestTopic = "/bench/ingest/stream"

// RunIngest runs the sustained-ingest benchmark.
func RunIngest(cfg IngestConfig) (IngestResult, error) {
	cfg = cfg.withDefaults()
	res := IngestResult{
		Mode:            cfg.Mode.String(),
		Transport:       cfg.Transport,
		Subscribers:     cfg.Subscribers,
		Publishers:      cfg.Publishers,
		PayloadBytes:    cfg.PayloadBytes,
		IngestBurst:     cfg.IngestBurst,
		PublishBatching: !cfg.DisablePublishBatching,
	}
	if cfg.PubTransport != cfg.Transport {
		res.PubTransport = cfg.PubTransport
	}

	res.GoMaxProcs = runtime.GOMAXPROCS(0)
	b := broker.New(broker.Config{
		ID:             "ingest-broker",
		Mode:           cfg.Mode,
		QueueDepth:     cfg.QueueDepth,
		FlushInterval:  cfg.FlushInterval,
		IngestBurst:    cfg.IngestBurst,
		WriterPoolSize: cfg.WriterPool,
	})
	defer b.Stop()
	res.WriterPools = len(b.WriterPoolStats())
	if res.IngestBurst == 0 {
		res.IngestBurst = broker.DefaultIngestBurst
	}

	for _, tr := range []string{cfg.Transport, cfg.PubTransport} {
		if tr != "mem" && tr != "tcp" {
			return res, fmt.Errorf("bench: unknown ingest transport %q", tr)
		}
	}
	var listenAddr string
	if cfg.Transport == "tcp" || cfg.PubTransport == "tcp" {
		l, err := b.Listen("tcp://127.0.0.1:0")
		if err != nil {
			return res, err
		}
		listenAddr = l.Addr()
	}
	dial := func(tr, id string) (*broker.Client, error) {
		if tr == "mem" {
			return b.LocalClient(id, transport.LinkProfile{})
		}
		return broker.Dial(listenAddr, id)
	}

	res.DispatchBurst = cfg.DispatchBurst

	subs := make([]*broker.Client, 0, cfg.Subscribers)
	defer func() {
		for _, c := range subs {
			c.Close()
		}
	}()
	rings := make([]*broker.Subscription, 0, cfg.Subscribers)
	for i := 0; i < cfg.Subscribers; i++ {
		c, err := dial(cfg.Transport, fmt.Sprintf("ingest-sub-%d", i))
		if err != nil {
			return res, fmt.Errorf("bench: subscriber %d: %w", i, err)
		}
		if cfg.DispatchBurst != 0 {
			c.SetDispatchBurst(cfg.DispatchBurst)
		}
		subs = append(subs, c)
		sub, err := c.Subscribe("/bench/ingest/#", 1024)
		if err != nil {
			return res, fmt.Errorf("bench: subscribe %d: %w", i, err)
		}
		rings = append(rings, sub)
		go func() {
			buf := make([]*event.Event, 0, 256)
			for {
				var ok bool
				buf, ok = sub.RecvBatch(buf[:0], 256)
				clear(buf)
				if !ok {
					return
				}
			}
		}()
	}

	// deliveryStats sums the subscriber-side delivery-plane counters so
	// the window delta reports bursts/wakeups/events and the ring
	// high-water mark.
	deliveryStats := func() (bursts, wakeups, events uint64, maxOcc int) {
		for _, sub := range rings {
			st := sub.DeliveryStats()
			bursts += st.Bursts
			wakeups += st.Wakeups
			events += st.Events
			if st.MaxOccupancy > maxOcc {
				maxOcc = st.MaxOccupancy
			}
		}
		return
	}

	payload := make([]byte, cfg.PayloadBytes)
	stop := make(chan struct{})
	pubErr := make(chan error, cfg.Publishers)
	var pubWG sync.WaitGroup
	for p := 0; p < cfg.Publishers; p++ {
		c, err := dial(cfg.PubTransport, fmt.Sprintf("ingest-pub-%d", p))
		if err != nil {
			return res, fmt.Errorf("bench: publisher %d: %w", p, err)
		}
		defer c.Close()
		pubWG.Add(1)
		go func(c *broker.Client) {
			defer pubWG.Done()
			publish := c.Publish
			if !cfg.DisablePublishBatching {
				pub := c.Publisher(broker.PublisherConfig{Batching: true})
				defer pub.Close()
				publish = func(t string, kind event.Kind, payload []byte) error {
					return pub.Publish(event.New(t, kind, payload))
				}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := publish(ingestTopic, event.KindRTP, payload); err != nil {
					select {
					case pubErr <- err:
					default:
					}
					return
				}
			}
		}(c)
	}

	snapshot := func() (ingested, arrived, delivered uint64) {
		m := b.Metrics()
		return m.Counter("broker.events_routed").Value(),
			m.Counter("broker.events_in").Value(),
			m.Counter("broker.events_out").Value()
	}
	poolStats := func() (services, drained uint64) {
		for _, st := range b.WriterPoolStats() {
			services += st.Services
			drained += st.Drained
		}
		return
	}

	time.Sleep(cfg.Warmup)
	// The occupancy high-water is a monotonic marker: clear it so the
	// reported peak covers the measurement window, not warmup ramp.
	for _, sub := range rings {
		sub.ResetMaxOccupancy()
	}
	i0, a0, d0 := snapshot()
	b0, w0, e0, _ := deliveryStats()
	s0, dr0 := poolStats()
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	i1, a1, d1 := snapshot()
	b1, w1, e1, maxOcc := deliveryStats()
	s1, dr1 := poolStats()
	window := time.Since(t0).Seconds()
	close(stop)
	pubWG.Wait()

	select {
	case err := <-pubErr:
		return res, fmt.Errorf("bench: publish: %w", err)
	default:
	}

	res.WindowSec = window
	if window > 0 {
		res.IngestedPerSec = float64(i1-i0) / window
		res.ArrivedPerSec = float64(a1-a0) / window
		res.DeliveredPerSec = float64(d1-d0) / window
	}
	res.DeliveryBursts = b1 - b0
	res.DeliveryWakeups = w1 - w0
	res.ClientDelivered = e1 - e0
	if res.DeliveryBursts > 0 {
		res.EventsPerBurst = float64(res.ClientDelivered) / float64(res.DeliveryBursts)
	}
	if res.DeliveryWakeups > 0 {
		res.EventsPerWakeup = float64(res.ClientDelivered) / float64(res.DeliveryWakeups)
	}
	res.RingOccupancyMax = maxOcc
	res.PoolServices = s1 - s0
	res.PoolDrained = dr1 - dr0
	if res.PoolServices > 0 {
		res.EventsPerPoolService = float64(res.PoolDrained) / float64(res.PoolServices)
	}
	return res, nil
}

// IngestScalingConfig parameterises the GOMAXPROCS scaling ladder: the
// base ingest workload is rerun at each rung with the writer-pool plane
// and with the legacy writer-goroutine-per-session ablation, so the
// ladder shows both how the burst plane scales with cores and what the
// shared pools cost (or save) against dedicated writers at every width.
type IngestScalingConfig struct {
	// Base is the per-cell workload. Its WriterPool field is overridden
	// per cell.
	Base IngestConfig
	// Procs is the GOMAXPROCS ladder. Default {1, 2, 4, ..., min(8,
	// NumCPU)} — on a single-core host the ladder degenerates to the one
	// GOMAXPROCS=1 cell.
	Procs []int
}

// IngestScalingCell is one rung of the ladder: the same workload under
// the writer-pool plane and the per-session ablation at one GOMAXPROCS.
type IngestScalingCell struct {
	GoMaxProcs int          `json:"gomaxprocs"`
	WriterPool IngestResult `json:"writer_pool"`
	PerSession IngestResult `json:"per_session"`
}

// IngestScalingResult is the full ladder plus the host shape it ran on.
type IngestScalingResult struct {
	HostCPUs int                 `json:"host_cpus"`
	Cells    []IngestScalingCell `json:"cells"`
}

// ScalingLadder returns the default GOMAXPROCS ladder {1, 2, 4, ...}
// capped at min(8, NumCPU). A 1-core host yields just {1}.
func ScalingLadder() []int {
	limit := runtime.NumCPU()
	if limit > 8 {
		limit = 8
	}
	var ladder []int
	for n := 1; n <= limit; n *= 2 {
		ladder = append(ladder, n)
	}
	return ladder
}

// RunIngestScaling runs the sustained-ingest workload across the
// GOMAXPROCS ladder, restoring the caller's GOMAXPROCS before
// returning. Each rung measures the writer-pool default and the
// per-session ablation back to back.
func RunIngestScaling(cfg IngestScalingConfig) (IngestScalingResult, error) {
	res := IngestScalingResult{HostCPUs: runtime.NumCPU()}
	procs := cfg.Procs
	if len(procs) == 0 {
		procs = ScalingLadder()
	}
	sort.Ints(procs)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, n := range procs {
		if n < 1 {
			return res, fmt.Errorf("bench: invalid GOMAXPROCS rung %d", n)
		}
		runtime.GOMAXPROCS(n)
		pool := cfg.Base
		pool.WriterPool = 0
		rp, err := RunIngest(pool)
		if err != nil {
			return res, fmt.Errorf("bench: scaling GOMAXPROCS=%d writer-pool: %w", n, err)
		}
		abl := cfg.Base
		abl.WriterPool = -1
		ra, err := RunIngest(abl)
		if err != nil {
			return res, fmt.Errorf("bench: scaling GOMAXPROCS=%d per-session: %w", n, err)
		}
		res.Cells = append(res.Cells, IngestScalingCell{GoMaxProcs: n, WriterPool: rp, PerSession: ra})
	}
	return res, nil
}
