package directory

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestUserCRUD(t *testing.T) {
	var s Store
	u := User{ID: "alice", Name: "Alice", Community: "iu", AudioCapable: true}
	if err := s.AddUser(u); err != nil {
		t.Fatal(err)
	}
	if err := s.AddUser(u); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate add = %v", err)
	}
	got, err := s.User("alice")
	if err != nil || got.Name != "Alice" {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
	u.Name = "Alice L"
	if err := s.UpdateUser(u); err != nil {
		t.Fatal(err)
	}
	got, _ = s.User("alice")
	if got.Name != "Alice L" {
		t.Fatal("update lost")
	}
	if err := s.UpdateUser(User{ID: "ghost"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing = %v", err)
	}
	if _, err := s.User("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup missing = %v", err)
	}
	if err := s.RemoveUser("alice"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveUser("alice"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove = %v", err)
	}
	if err := s.AddUser(User{}); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestTerminalBindingAndActive(t *testing.T) {
	var s Store
	if err := s.AddUser(User{ID: "bob"}); err != nil {
		t.Fatal(err)
	}
	if err := s.BindTerminal(Terminal{ID: "t1", UserID: "ghost"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bind to missing user = %v", err)
	}
	if err := s.BindTerminal(Terminal{ID: "t1", UserID: "bob", Kind: TerminalSIP, Address: "sip:bob@x", Active: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.BindTerminal(Terminal{ID: "t2", UserID: "bob", Kind: TerminalH323, Address: "h323:bob@y", Active: true}); err != nil {
		t.Fatal(err)
	}
	// Only one active terminal.
	active, err := s.ActiveTerminal("bob")
	if err != nil || active.ID != "t2" {
		t.Fatalf("active = %+v, %v", active, err)
	}
	terms := s.UserTerminals("bob")
	if len(terms) != 2 {
		t.Fatalf("terminals = %v", terms)
	}
	if terms[0].ID != "t1" || terms[0].Active {
		t.Fatalf("t1 should be inactive: %+v", terms[0])
	}
	if terms[0].RegisteredAt.IsZero() {
		t.Fatal("RegisteredAt not stamped")
	}
	if err := s.UnbindTerminal("t1"); err != nil {
		t.Fatal(err)
	}
	if err := s.UnbindTerminal("t1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double unbind = %v", err)
	}
	// Removing the user removes bindings.
	if err := s.RemoveUser("bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Terminal("t2"); !errors.Is(err, ErrNotFound) {
		t.Fatal("terminal survived user removal")
	}
}

func TestCommunityCRUD(t *testing.T) {
	var s Store
	c := Community{Name: "admire", ControlEndpoint: "http://beihang/ws", MediaServers: []string{"udp://m1"}}
	if err := s.AddCommunity(c); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCommunity(c); !errors.Is(err, ErrExists) {
		t.Fatalf("dup = %v", err)
	}
	got, err := s.Community("admire")
	if err != nil || got.ControlEndpoint != "http://beihang/ws" {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
	if err := s.AddCommunity(Community{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.RemoveCommunity("admire"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveCommunity("admire"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove = %v", err)
	}
}

func TestListsSorted(t *testing.T) {
	var s Store
	for _, id := range []string{"zed", "ann", "mid"} {
		if err := s.AddUser(User{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	users := s.Users()
	if users[0].ID != "ann" || users[2].ID != "zed" {
		t.Fatalf("users = %v", users)
	}
	for _, n := range []string{"z-comm", "a-comm"} {
		if err := s.AddCommunity(Community{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	comms := s.Communities()
	if comms[0].Name != "a-comm" {
		t.Fatalf("communities = %v", comms)
	}
}

func TestExportImportRoundtrip(t *testing.T) {
	var s Store
	if err := s.AddUser(User{ID: "alice", Name: "Alice", VideoCapable: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.BindTerminal(Terminal{ID: "t1", UserID: "alice", Kind: TerminalPlayer, Address: "rtsp://x", Active: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCommunity(Community{Name: "accessgrid", Description: "AG venues"}); err != nil {
		t.Fatal(err)
	}
	b, err := s.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "alice") {
		t.Fatalf("export missing data:\n%s", b)
	}
	var s2 Store
	if err := s2.Import(b); err != nil {
		t.Fatal(err)
	}
	u, tm, c := s2.Counts()
	if u != 1 || tm != 1 || c != 1 {
		t.Fatalf("counts = %d %d %d", u, tm, c)
	}
	term, err := s2.ActiveTerminal("alice")
	if err != nil || term.Kind != TerminalPlayer {
		t.Fatalf("terminal = %+v, %v", term, err)
	}
}

func TestImportRejectsBadData(t *testing.T) {
	var s Store
	if err := s.Import([]byte("<<<")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := s.Import([]byte(`<directory><users><user name="no-id"/></users></directory>`)); err == nil {
		t.Fatal("user without id accepted")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	var s Store
	var wg sync.WaitGroup
	for g := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 100 {
				id := string(rune('a'+g)) + string(rune('0'+i%10))
				_ = s.AddUser(User{ID: id})
				_, _ = s.User(id)
				s.Users()
			}
		}()
	}
	wg.Wait()
}
