// Package directory implements the XGSP naming and directory service of
// §2.2: the directory of user accounts and media terminals (binding users
// to the endpoints they attend with) and the directory of communities and
// their collaboration servers. State can be exported to and imported from
// XML, and the store is exposed as a WSDL-CI web service by package core.
package directory

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// TerminalKind enumerates the endpoint types Global-MMCS admits.
type TerminalKind string

// Terminal kinds.
const (
	TerminalH323   TerminalKind = "h323"
	TerminalSIP    TerminalKind = "sip"
	TerminalMBONE  TerminalKind = "mbone"
	TerminalPlayer TerminalKind = "player" // Real / Windows Media players
	TerminalRTP    TerminalKind = "rtp"    // raw RTP client
)

// User is an account in the user directory.
type User struct {
	ID        string `xml:"id,attr"`
	Name      string `xml:"name,attr"`
	Community string `xml:"community,attr,omitempty"`
	Email     string `xml:"email,attr,omitempty"`
	// AudioCapable/VideoCapable summarise the user's media capability
	// preferences.
	AudioCapable bool `xml:"audio,attr,omitempty"`
	VideoCapable bool `xml:"video,attr,omitempty"`
}

// Terminal is a media endpoint bound to a user.
type Terminal struct {
	ID      string       `xml:"id,attr"`
	UserID  string       `xml:"user,attr"`
	Kind    TerminalKind `xml:"kind,attr"`
	Address string       `xml:"address,attr"`
	// Active marks the terminal the user is currently reachable on.
	Active bool `xml:"active,attr,omitempty"`
	// RegisteredAt records the binding time.
	RegisteredAt time.Time `xml:"registered,attr,omitempty"`
}

// Community is an autonomous collaboration area with its own control and
// media servers.
type Community struct {
	Name string `xml:"name,attr"`
	// ControlEndpoint is the community's WSDL-CI SOAP URL.
	ControlEndpoint string `xml:"control,attr,omitempty"`
	// MediaServers lists the community's media server addresses.
	MediaServers []string `xml:"media-server,omitempty"`
	// Description is free text.
	Description string `xml:",chardata"`
}

// Store errors.
var (
	ErrNotFound = errors.New("directory: not found")
	ErrExists   = errors.New("directory: already exists")
)

// Store is the in-memory directory. Safe for concurrent use. The zero
// value is ready to use.
type Store struct {
	mu          sync.RWMutex
	users       map[string]User
	terminals   map[string]Terminal
	communities map[string]Community
}

func (s *Store) init() {
	if s.users == nil {
		s.users = make(map[string]User)
		s.terminals = make(map[string]Terminal)
		s.communities = make(map[string]Community)
	}
}

// AddUser registers a new user.
func (s *Store) AddUser(u User) error {
	if u.ID == "" {
		return errors.New("directory: user id required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.init()
	if _, ok := s.users[u.ID]; ok {
		return fmt.Errorf("%w: user %s", ErrExists, u.ID)
	}
	s.users[u.ID] = u
	return nil
}

// UpdateUser replaces an existing user record.
func (s *Store) UpdateUser(u User) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.init()
	if _, ok := s.users[u.ID]; !ok {
		return fmt.Errorf("%w: user %s", ErrNotFound, u.ID)
	}
	s.users[u.ID] = u
	return nil
}

// User looks up a user by id.
func (s *Store) User(id string) (User, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, ok := s.users[id]
	if !ok {
		return User{}, fmt.Errorf("%w: user %s", ErrNotFound, id)
	}
	return u, nil
}

// RemoveUser deletes a user and all terminal bindings.
func (s *Store) RemoveUser(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[id]; !ok {
		return fmt.Errorf("%w: user %s", ErrNotFound, id)
	}
	delete(s.users, id)
	for tid, t := range s.terminals {
		if t.UserID == id {
			delete(s.terminals, tid)
		}
	}
	return nil
}

// Users lists all users sorted by id.
func (s *Store) Users() []User {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]User, 0, len(s.users))
	for _, u := range s.users {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// BindTerminal registers a terminal for an existing user. Marking it
// active deactivates the user's other terminals (one active endpoint per
// user).
func (s *Store) BindTerminal(t Terminal) error {
	if t.ID == "" || t.UserID == "" {
		return errors.New("directory: terminal id and user required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.init()
	if _, ok := s.users[t.UserID]; !ok {
		return fmt.Errorf("%w: user %s", ErrNotFound, t.UserID)
	}
	if t.RegisteredAt.IsZero() {
		t.RegisteredAt = time.Now()
	}
	if t.Active {
		for id, other := range s.terminals {
			if other.UserID == t.UserID && other.Active {
				other.Active = false
				s.terminals[id] = other
			}
		}
	}
	s.terminals[t.ID] = t
	return nil
}

// Terminal looks up a terminal by id.
func (s *Store) Terminal(id string) (Terminal, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.terminals[id]
	if !ok {
		return Terminal{}, fmt.Errorf("%w: terminal %s", ErrNotFound, id)
	}
	return t, nil
}

// ActiveTerminal returns the user's currently active terminal.
func (s *Store) ActiveTerminal(userID string) (Terminal, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, t := range s.terminals {
		if t.UserID == userID && t.Active {
			return t, nil
		}
	}
	return Terminal{}, fmt.Errorf("%w: no active terminal for %s", ErrNotFound, userID)
}

// UserTerminals lists a user's terminals sorted by id.
func (s *Store) UserTerminals(userID string) []Terminal {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Terminal
	for _, t := range s.terminals {
		if t.UserID == userID {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// UnbindTerminal removes a terminal.
func (s *Store) UnbindTerminal(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.terminals[id]; !ok {
		return fmt.Errorf("%w: terminal %s", ErrNotFound, id)
	}
	delete(s.terminals, id)
	return nil
}

// AddCommunity registers a community.
func (s *Store) AddCommunity(c Community) error {
	if c.Name == "" {
		return errors.New("directory: community name required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.init()
	if _, ok := s.communities[c.Name]; ok {
		return fmt.Errorf("%w: community %s", ErrExists, c.Name)
	}
	s.communities[c.Name] = c
	return nil
}

// Community looks up a community by name.
func (s *Store) Community(name string) (Community, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.communities[name]
	if !ok {
		return Community{}, fmt.Errorf("%w: community %s", ErrNotFound, name)
	}
	return c, nil
}

// Communities lists all communities sorted by name.
func (s *Store) Communities() []Community {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Community, 0, len(s.communities))
	for _, c := range s.communities {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RemoveCommunity deletes a community.
func (s *Store) RemoveCommunity(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.communities[name]; !ok {
		return fmt.Errorf("%w: community %s", ErrNotFound, name)
	}
	delete(s.communities, name)
	return nil
}

// Snapshot is the XML import/export form of the directory.
type Snapshot struct {
	XMLName     xml.Name    `xml:"directory"`
	Users       []User      `xml:"users>user"`
	Terminals   []Terminal  `xml:"terminals>terminal"`
	Communities []Community `xml:"communities>community"`
}

// Export serialises the directory to XML.
func (s *Store) Export() ([]byte, error) {
	snap := Snapshot{Users: s.Users(), Communities: s.Communities()}
	s.mu.RLock()
	for _, t := range s.terminals {
		snap.Terminals = append(snap.Terminals, t)
	}
	s.mu.RUnlock()
	sort.Slice(snap.Terminals, func(i, j int) bool { return snap.Terminals[i].ID < snap.Terminals[j].ID })
	return xml.MarshalIndent(snap, "", "  ")
}

// Import merges an XML snapshot into the store, replacing records with
// matching ids.
func (s *Store) Import(b []byte) error {
	var snap Snapshot
	if err := xml.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("directory: parsing snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.init()
	for _, u := range snap.Users {
		if u.ID == "" {
			return errors.New("directory: snapshot user without id")
		}
		s.users[u.ID] = u
	}
	for _, t := range snap.Terminals {
		if t.ID == "" {
			return errors.New("directory: snapshot terminal without id")
		}
		s.terminals[t.ID] = t
	}
	for _, c := range snap.Communities {
		if c.Name == "" {
			return errors.New("directory: snapshot community without name")
		}
		s.communities[c.Name] = c
	}
	return nil
}

// Counts returns (users, terminals, communities) sizes.
func (s *Store) Counts() (int, int, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.users), len(s.terminals), len(s.communities)
}
