// Package topiclog implements the broker's durable topic log: a
// segmented append-only record of encoded event frames per recorded
// topic pattern. The broker's route sweep appends matching frames
// batch-at-a-time (one file write per burst), and replay cursors read
// them back in batches that feed the normal subscription delivery
// surface, so a late joiner drains history and hands off to live
// delivery exactly once.
//
// On disk a log is a directory of segment files named
// "<baseSeq padded to 20 digits>.seg". Each segment is a run of
// records with contiguous sequence numbers; each record is
//
//	seq     uint64  big-endian
//	length  uint32  big-endian (payload bytes)
//	crc     uint32  big-endian CRC-32C (Castagnoli) of the payload
//	payload length bytes
//
// The fixed header is HeaderLen bytes. A torn tail (partial write or
// corrupt CRC from a crash) is detected and truncated at open; every
// record before the tear is preserved.
package topiclog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// HeaderLen is the fixed per-record header size: seq(8) + length(4) +
// crc(4).
const HeaderLen = 16

// DefaultMaxRecordBytes bounds a single record's payload when a
// caller does not set Config.MaxRecordBytes. It comfortably exceeds
// the broker's wire limit for one encoded event.
const DefaultMaxRecordBytes = 2 << 20

var (
	// ErrShort reports that a buffer ends before the record it starts
	// does — at the tail of a segment this is a torn write, not
	// corruption of committed data.
	ErrShort = errors.New("topiclog: short record")
	// ErrCorrupt reports a record whose header is implausible or whose
	// payload fails its CRC.
	ErrCorrupt = errors.New("topiclog: corrupt record")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends one framed record to dst and returns the
// extended slice.
func AppendRecord(dst []byte, seq uint64, payload []byte) []byte {
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint64(hdr[0:8], seq)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ParseRecord decodes the record at the head of b. The returned
// payload aliases b. n is the total encoded length consumed. A buffer
// that ends mid-record returns ErrShort; an implausible length or CRC
// mismatch returns ErrCorrupt. maxPayload bounds the accepted payload
// length (<=0 means DefaultMaxRecordBytes).
func ParseRecord(b []byte, maxPayload int) (seq uint64, payload []byte, n int, err error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxRecordBytes
	}
	if len(b) < HeaderLen {
		return 0, nil, 0, ErrShort
	}
	seq = binary.BigEndian.Uint64(b[0:8])
	length := binary.BigEndian.Uint32(b[8:12])
	if length > uint32(maxPayload) {
		return 0, nil, 0, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrCorrupt, length, maxPayload)
	}
	total := HeaderLen + int(length)
	if len(b) < total {
		return 0, nil, 0, ErrShort
	}
	payload = b[HeaderLen:total]
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(b[12:16]) {
		return 0, nil, 0, fmt.Errorf("%w: crc mismatch at seq %d", ErrCorrupt, seq)
	}
	return seq, payload, total, nil
}

// ReadRecord reads one record from r (the streaming form of
// ParseRecord, used by the archiver). io.EOF is returned only at a
// clean record boundary; a record cut off mid-way returns
// io.ErrUnexpectedEOF.
func ReadRecord(r io.Reader, maxPayload int) (seq uint64, payload []byte, err error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxRecordBytes
	}
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	seq = binary.BigEndian.Uint64(hdr[0:8])
	length := binary.BigEndian.Uint32(hdr[8:12])
	if length > uint32(maxPayload) {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrCorrupt, length, maxPayload)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(hdr[12:16]) {
		return 0, nil, fmt.Errorf("%w: crc mismatch at seq %d", ErrCorrupt, seq)
	}
	return seq, payload, nil
}
