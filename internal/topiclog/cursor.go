package topiclog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// cursorChunk is the default read size per Next call: big enough to
// amortize the syscall over a batch of records, small enough that the
// freshly allocated chunk (which returned payloads alias) stays cheap.
const cursorChunk = 128 << 10

// Cursor reads a log's records in order, batch at a time, and can
// hand off to live tail delivery exactly once via AttachTail. A
// cursor pins the segment it is reading so retention never deletes
// the data under it. Cursors are not safe for concurrent use by
// multiple goroutines (the owning replay pump is single-threaded);
// Close is safe to call concurrently with Next.
type Cursor struct {
	l *Log

	// next is the sequence the cursor wants to read next. Mutated only
	// by the reading goroutine; read under l.mu by AttachTail (called
	// from that same goroutine).
	next     uint64
	seg      *segment // pinned segment, nil when at tail; guarded by l.mu
	f        *os.File // read handle on seg; field guarded by l.mu
	off      int64    // byte offset into seg (-1 = locate via index); reader-owned
	need     int      // read at least this much next time (record spans chunk)
	closed   bool     // guarded by l.mu
	attached bool     // guarded by l.mu
}

// NewCursor opens a cursor positioned at sequence from. from == 0 or
// any sequence older than the earliest retained record clamps to the
// earliest; a sequence at or past the tail positions the cursor at
// the tail (Next returns nothing until appends catch up).
func (l *Log) NewCursor(from uint64) *Cursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from == 0 || from < l.earliestLocked() {
		from = l.earliestLocked()
	}
	if from > l.nextSeq {
		from = l.nextSeq
	}
	c := &Cursor{l: l, next: from, off: -1}
	if seg := l.containingLocked(from); seg != nil {
		seg.pins++
		c.seg = seg
	}
	l.cursors++
	return c
}

// containingLocked returns the segment holding seq, or nil.
func (l *Log) containingLocked(seq uint64) *segment {
	for _, seg := range l.segs {
		if seg.size == 0 {
			continue
		}
		if seq >= seg.base && seq <= seg.last {
			return seg
		}
	}
	return nil
}

// Pos returns the sequence the cursor will read next. Like Next, it
// belongs to the cursor's reading goroutine.
func (c *Cursor) Pos() uint64 { return c.next }

// Next appends up to max records to buf and returns it. An unchanged
// buf with a nil error means the cursor is at the committed tail. If
// retention reaped past the cursor's position while it idled at the
// tail, the cursor skips forward to the earliest retained record.
// Returned payloads alias a chunk allocated for this call — they stay
// valid across later Next calls but share the chunk's lifetime.
func (c *Cursor) Next(buf []Record, max int) ([]Record, error) {
	if max <= 0 {
		max = 128
	}
	start := len(buf)
	for {
		c.l.mu.Lock()
		if c.closed || c.l.closed {
			c.l.mu.Unlock()
			return buf, ErrClosed
		}
		if c.attached {
			c.l.mu.Unlock()
			return buf, nil
		}
		if c.seg == nil {
			if e := c.l.earliestLocked(); c.next < e {
				c.next = e
			}
			seg := c.l.containingLocked(c.next)
			if seg == nil {
				c.l.mu.Unlock()
				return buf, nil // at tail
			}
			seg.pins++
			c.seg = seg
			c.off = -1
		}
		seg := c.seg
		committed := seg.size
		if c.off >= 0 && c.off >= committed && c.next > seg.last {
			// Segment fully consumed: unpin and advance. Reaping never
			// removes a segment after a pinned one, so the successor (if
			// sealed) is still present.
			seg.pins--
			c.seg = nil
			if c.f != nil {
				c.f.Close()
				c.f = nil
			}
			c.off = -1
			c.l.mu.Unlock()
			continue
		}
		if c.off < 0 {
			c.off = seg.locate(c.next)
		}
		path := seg.path
		f := c.f
		c.l.mu.Unlock()

		if c.off >= committed {
			return buf, nil // caught up inside the active segment
		}
		if f == nil {
			nf, err := os.Open(path)
			if err != nil {
				return buf, fmt.Errorf("topiclog: cursor: %w", err)
			}
			c.l.mu.Lock()
			if c.closed || c.l.closed {
				c.l.mu.Unlock()
				nf.Close()
				return buf, ErrClosed
			}
			c.f = nf
			c.l.mu.Unlock()
			f = nf
		}
		want := committed - c.off
		if want > cursorChunk {
			want = cursorChunk
		}
		if need := int64(c.need); need > want && need <= committed-c.off {
			want = need
		}
		c.need = 0
		chunk := make([]byte, want)
		n, err := f.ReadAt(chunk, c.off)
		if n == 0 {
			c.l.mu.Lock()
			closed := c.closed || c.l.closed
			c.l.mu.Unlock()
			if closed {
				return buf, ErrClosed
			}
			if err == nil {
				err = errors.New("empty read")
			}
			return buf, fmt.Errorf("topiclog: cursor read: %w", err)
		}
		chunk = chunk[:n]
		for len(buf)-start < max && len(chunk) > 0 {
			seq, payload, rn, perr := ParseRecord(chunk, c.l.cfg.MaxRecordBytes)
			if perr != nil {
				if errors.Is(perr, ErrShort) {
					// A record spans past this chunk; committed bytes are
					// whole records, so size the next read to cover it.
					if len(chunk) >= HeaderLen {
						c.need = HeaderLen + int(binary.BigEndian.Uint32(chunk[8:12]))
					} else {
						c.need = HeaderLen
					}
					break
				}
				return buf, perr
			}
			c.off += int64(rn)
			if seq >= c.next {
				buf = append(buf, Record{Seq: seq, Payload: payload})
				c.next = seq + 1
			}
			chunk = chunk[rn:]
		}
		if len(buf) > start {
			return buf, nil
		}
		// Nothing yielded yet (index skip-ahead or a spanning record):
		// keep reading.
	}
}

// AttachTail switches the cursor from history reads to live tail
// delivery. It succeeds only when the cursor has consumed every
// committed record (its position equals the log's next sequence);
// from then on every Append delivers the new records to fn
// synchronously under the log lock, so no record is missed or
// duplicated across the handoff. The records slice passed to fn is
// valid only for the duration of the call. fn must not call back into
// the log or cursor. After a successful attach, Next returns no more
// records; Close detaches.
func (c *Cursor) AttachTail(fn func([]Record)) bool {
	c.l.mu.Lock()
	defer c.l.mu.Unlock()
	if c.closed || c.l.closed || c.attached {
		return false
	}
	if c.next != c.l.nextSeq {
		return false
	}
	c.l.tailers[c] = fn
	c.attached = true
	if c.seg != nil {
		c.seg.pins--
		c.seg = nil
	}
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
	return true
}

// Close releases the cursor: unpins its segment, closes its read
// handle, and detaches its tailer if attached. Idempotent, and safe
// to call concurrently with a reader blocked in Next.
func (c *Cursor) Close() {
	c.l.mu.Lock()
	defer c.l.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	delete(c.l.tailers, c)
	if c.seg != nil {
		c.seg.pins--
		c.seg = nil
	}
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
	c.l.cursors--
}
