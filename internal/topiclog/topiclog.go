package topiclog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrClosed reports an operation on a closed log or cursor.
var ErrClosed = errors.New("topiclog: closed")

// Config bounds a log's segments and retention. Zero values mean
// "use the default" for sizes and "unlimited" for retention caps.
type Config struct {
	// SegmentMaxBytes rolls the active segment once it reaches this
	// size (default 4 MiB).
	SegmentMaxBytes int64
	// SegmentMaxAge rolls the active segment once its first record is
	// this old (0 disables time-based rolling).
	SegmentMaxAge time.Duration
	// MaxSegments caps retained segments; Reap removes the oldest
	// beyond the cap (0 = unlimited). The active segment never reaps.
	MaxSegments int
	// MaxBytes caps the log's total on-disk size (0 = unlimited).
	MaxBytes int64
	// MaxRecordBytes bounds one record's payload (default
	// DefaultMaxRecordBytes).
	MaxRecordBytes int
}

func (c Config) withDefaults() Config {
	if c.SegmentMaxBytes <= 0 {
		c.SegmentMaxBytes = 4 << 20
	}
	if c.MaxRecordBytes <= 0 {
		c.MaxRecordBytes = DefaultMaxRecordBytes
	}
	return c
}

// Record is one log entry: a contiguous sequence number and the
// payload bytes as appended.
type Record struct {
	Seq     uint64
	Payload []byte
}

// Stats is a point-in-time snapshot of a log.
type Stats struct {
	Segments      int
	Bytes         int64
	NextSeq       uint64
	EarliestSeq   uint64
	Appended      uint64
	Reaped        uint64
	ActiveCursors int
}

// indexStride spaces sparse index entries: one {seq, offset} pair per
// this many segment bytes, so a cursor seeking mid-segment scans at
// most a stride.
const indexStride = 32 << 10

type indexEnt struct {
	seq uint64
	off int64
}

// segment is one on-disk log file: records base..last, contiguous.
// All fields are guarded by the owning Log's mutex.
type segment struct {
	path    string
	base    uint64 // first sequence in the segment
	last    uint64 // last sequence in the segment (>= base once non-empty)
	size    int64  // committed bytes (whole records only)
	created time.Time
	index   []indexEnt // sparse; always covers {base, 0} implicitly
	pins    int        // cursors currently reading this segment
}

// locate returns the greatest indexed offset at or before seq.
func (s *segment) locate(seq uint64) int64 {
	lo := int64(0)
	for _, ent := range s.index {
		if ent.seq > seq {
			break
		}
		lo = ent.off
	}
	return lo
}

// Log is a segmented append-only record log on disk. Appends are
// batched (one file write per call) and synchronously fan out to
// attached tail cursors, which is what makes the cursor→live handoff
// exactly-once: AttachTail succeeds only when the cursor has consumed
// every committed record, and from then on the append lock is the
// serialization point between history and live delivery.
type Log struct {
	dir string
	cfg Config

	mu       sync.Mutex
	segs     []*segment
	active   *os.File // write handle for the last segment, opened lazily
	nextSeq  uint64
	appended uint64
	reaped   uint64
	cursors  int
	tailers  map[*Cursor]func([]Record)
	scratch  []byte
	writeErr error // sticky: a failed append poisons the log
	closed   bool
}

// Open opens (creating if needed) the log stored in dir, recovering
// from a torn tail: a trailing partial or corrupt record — the
// signature of a crash mid-append — is truncated away, preserving
// every record before it. Segments left empty by truncation are
// removed, as are segments whose sequence run no longer follows the
// recovered prefix.
func Open(dir string, cfg Config) (*Log, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("topiclog: %w", err)
	}
	l := &Log{
		dir:     dir,
		cfg:     cfg,
		nextSeq: 1,
		tailers: make(map[*Cursor]func([]Record)),
	}
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

// scan loads the segment set from disk, recovering torn tails.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("topiclog: %w", err)
	}
	var segs []*segment
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".seg") {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, &segment{path: filepath.Join(l.dir, name), base: base})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })

	expect := uint64(0) // next segment must start here (0 = first kept segment)
	kept := segs[:0]
	dropRest := false
	for _, seg := range segs {
		if dropRest || (expect != 0 && seg.base != expect) {
			// A gap after a truncated tear: records beyond the tear are
			// unreachable by sequence, so the suffix is removed.
			dropRest = true
			os.Remove(seg.path)
			continue
		}
		if err := l.recoverSegment(seg); err != nil {
			return err
		}
		if seg.size == 0 {
			os.Remove(seg.path)
			dropRest = true
			continue
		}
		kept = append(kept, seg)
		expect = seg.last + 1
	}
	l.segs = kept
	if n := len(kept); n > 0 {
		l.nextSeq = kept[n-1].last + 1
	}
	return nil
}

// recoverSegment scans one segment file, building its sparse index
// and truncating at the first torn or corrupt record.
func (l *Log) recoverSegment(seg *segment) error {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return fmt.Errorf("topiclog: %w", err)
	}
	if info, err := os.Stat(seg.path); err == nil {
		seg.created = info.ModTime()
	} else {
		seg.created = time.Now()
	}
	off := 0
	expect := seg.base
	lastIdx := int64(0)
	for off < len(data) {
		seq, _, n, perr := ParseRecord(data[off:], l.cfg.MaxRecordBytes)
		if perr != nil || seq != expect {
			break // torn or corrupt tail: truncate here
		}
		if off > 0 && int64(off)-lastIdx >= indexStride {
			seg.index = append(seg.index, indexEnt{seq: seq, off: int64(off)})
			lastIdx = int64(off)
		}
		expect++
		off += n
	}
	if off < len(data) {
		if err := os.Truncate(seg.path, int64(off)); err != nil {
			return fmt.Errorf("topiclog: truncating torn tail: %w", err)
		}
	}
	seg.size = int64(off)
	if expect > seg.base {
		seg.last = expect - 1
	}
	return nil
}

func segPath(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d.seg", base))
}

// rollLocked seals the active segment and starts a new one at
// nextSeq. Called with l.mu held.
func (l *Log) rollLocked() error {
	if l.active != nil {
		l.active.Close()
		l.active = nil
	}
	path := segPath(l.dir, l.nextSeq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	l.active = f
	l.segs = append(l.segs, &segment{
		path:    path,
		base:    l.nextSeq,
		created: time.Now(),
	})
	return nil
}

// needRollLocked reports whether the active segment must roll before
// the next append. A segment only rolls once it holds at least one
// record.
func (l *Log) needRollLocked() bool {
	n := len(l.segs)
	if n == 0 {
		return true
	}
	seg := l.segs[n-1]
	if seg.size == 0 {
		return false
	}
	if seg.size >= l.cfg.SegmentMaxBytes {
		return true
	}
	if l.cfg.SegmentMaxAge > 0 && time.Since(seg.created) >= l.cfg.SegmentMaxAge {
		return true
	}
	return false
}

// Append appends payloads as consecutive records in one file write
// and returns the sequence of the first. Attached tail cursors are
// delivered the new records synchronously, under the log lock, before
// Append returns — the records slice and its payloads are valid only
// for the duration of each tailer call. A write failure poisons the
// log: the error is sticky and later appends fail fast.
func (l *Log) Append(payloads [][]byte) (first uint64, err error) {
	if len(payloads) == 0 {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.writeErr != nil {
		return 0, l.writeErr
	}
	for _, p := range payloads {
		if len(p) > l.cfg.MaxRecordBytes {
			return 0, fmt.Errorf("topiclog: record payload %d exceeds limit %d", len(p), l.cfg.MaxRecordBytes)
		}
	}
	if l.needRollLocked() {
		if err := l.rollLocked(); err != nil {
			l.writeErr = fmt.Errorf("topiclog: %w", err)
			return 0, l.writeErr
		}
	}
	seg := l.segs[len(l.segs)-1]
	if l.active == nil {
		f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			l.writeErr = fmt.Errorf("topiclog: %w", err)
			return 0, l.writeErr
		}
		l.active = f
	}

	first = l.nextSeq
	buf := l.scratch[:0]
	seq := first
	type idxMark struct {
		seq uint64
		off int64
	}
	var marks []idxMark
	lastIdx := int64(0)
	if n := len(seg.index); n > 0 {
		lastIdx = seg.index[n-1].off
	}
	for _, p := range payloads {
		off := seg.size + int64(len(buf))
		if off > 0 && off-lastIdx >= indexStride {
			marks = append(marks, idxMark{seq: seq, off: off})
			lastIdx = off
		}
		buf = AppendRecord(buf, seq, p)
		seq++
	}
	l.scratch = buf[:0]

	if _, err := l.active.Write(buf); err != nil {
		// The tail may now be torn; recovery at next open will truncate
		// it. Poison the log so no later append writes past the tear.
		l.writeErr = fmt.Errorf("topiclog: append: %w", err)
		return 0, l.writeErr
	}
	seg.size += int64(len(buf))
	seg.last = seq - 1
	for _, m := range marks {
		seg.index = append(seg.index, indexEnt{seq: m.seq, off: m.off})
	}
	l.nextSeq = seq
	l.appended += uint64(len(payloads))

	if len(l.tailers) > 0 {
		recs := make([]Record, len(payloads))
		for i, p := range payloads {
			recs[i] = Record{Seq: first + uint64(i), Payload: p}
		}
		for _, fn := range l.tailers {
			fn(recs)
		}
	}
	return first, nil
}

// NextSeq returns the sequence the next appended record will get.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// EarliestSeq returns the oldest retained sequence (== NextSeq when
// the log is empty).
func (l *Log) EarliestSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.earliestLocked()
}

func (l *Log) earliestLocked() uint64 {
	if len(l.segs) == 0 {
		return l.nextSeq
	}
	return l.segs[0].base
}

// Stats snapshots the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		Segments:      len(l.segs),
		NextSeq:       l.nextSeq,
		EarliestSeq:   l.earliestLocked(),
		Appended:      l.appended,
		Reaped:        l.reaped,
		ActiveCursors: l.cursors,
	}
	for _, seg := range l.segs {
		s.Bytes += seg.size
	}
	return s
}

// Reap removes the oldest segments until the log fits its retention
// caps, and returns how many were removed. The active segment and any
// segment pinned by a cursor are never removed; reaping stops at the
// first pinned segment so a replaying cursor never loses the data
// under it.
func (l *Log) Reap() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segs) > 1 && l.overCapLocked() {
		head := l.segs[0]
		if head.pins > 0 {
			break
		}
		if err := os.Remove(head.path); err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("topiclog: reap: %w", err)
		}
		l.segs = l.segs[1:]
		l.reaped++
		removed++
	}
	return removed, nil
}

func (l *Log) overCapLocked() bool {
	if l.cfg.MaxSegments > 0 && len(l.segs) > l.cfg.MaxSegments {
		return true
	}
	if l.cfg.MaxBytes > 0 {
		var total int64
		for _, seg := range l.segs {
			total += seg.size
		}
		if total > l.cfg.MaxBytes {
			return true
		}
	}
	return false
}

// Close closes the log's write handle. Open cursors keep their own
// read handles and should be closed by their owners.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.tailers = map[*Cursor]func([]Record){}
	if l.active != nil {
		err := l.active.Close()
		l.active = nil
		return err
	}
	return nil
}
