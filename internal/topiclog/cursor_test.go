package topiclog

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCursorFromSequence(t *testing.T) {
	l, err := Open(t.TempDir(), Config{SegmentMaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 300, 13)
	got := drain(t, l, 151)
	if len(got) != 150 {
		t.Fatalf("read %d records from mid-log, want 150", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(151+i) || !bytes.Equal(r.Payload, payloadFor(150+i)) {
			t.Fatalf("record %d wrong (seq %d)", i, r.Seq)
		}
	}
	// From the tail: nothing until new appends arrive.
	c := l.NewCursor(l.NextSeq())
	defer c.Close()
	if out, err := c.Next(nil, 16); err != nil || len(out) != 0 {
		t.Fatalf("tail cursor returned %d records, err %v", len(out), err)
	}
	appendN(t, l, 300, 5, 5)
	out, err := c.Next(nil, 16)
	if err != nil || len(out) != 5 {
		t.Fatalf("tail cursor after append: %d records, err %v", len(out), err)
	}
}

// TestCursorAcrossRoll replays a log spread over many segments and
// checks order and payload integrity across every boundary.
func TestCursorAcrossRoll(t *testing.T) {
	l, err := Open(t.TempDir(), Config{SegmentMaxBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 1000, 9)
	if l.Stats().Segments < 10 {
		t.Fatalf("setup: expected many segments, got %d", l.Stats().Segments)
	}
	got := drain(t, l, 0)
	if len(got) != 1000 {
		t.Fatalf("read %d records, want 1000", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payloadFor(i)) {
			t.Fatalf("record %d wrong across rolls", i)
		}
	}
}

// TestAttachTailExactlyOnce drives a cursor to the tail under a
// concurrent appender and proves the history→tail handoff delivers
// every record exactly once, in order.
func TestAttachTailExactlyOnce(t *testing.T) {
	l, err := Open(t.TempDir(), Config{SegmentMaxBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const total = 5000
	appendDone := make(chan struct{})
	go func() {
		defer close(appendDone)
		for i := 0; i < total; i += 25 {
			var batch [][]byte
			for j := i; j < total && j < i+25; j++ {
				batch = append(batch, []byte(fmt.Sprintf("%08d", j+1)))
			}
			if _, err := l.Append(batch); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()

	var mu sync.Mutex
	var seqs []uint64
	tail := func(recs []Record) {
		mu.Lock()
		for _, r := range recs {
			seqs = append(seqs, r.Seq)
		}
		mu.Unlock()
	}

	c := l.NewCursor(0)
	defer c.Close()
	for attached := false; !attached; {
		out, err := c.Next(nil, 64)
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if len(out) == 0 {
			// At the committed tail: attempt the handoff. A concurrent
			// append between Next and AttachTail makes it fail; loop.
			attached = c.AttachTail(tail)
			continue
		}
		mu.Lock()
		for _, r := range out {
			seqs = append(seqs, r.Seq)
		}
		mu.Unlock()
	}
	<-appendDone
	// One last append after the writer is done proves live delivery.
	if _, err := l.Append([][]byte{[]byte("final")}); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != total+1 {
		t.Fatalf("delivered %d records, want %d", len(seqs), total+1)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("position %d got seq %d: duplicate or gap across handoff", i, s)
		}
	}
}

// TestCloseDuringReplayChurn hammers concurrent Next/Close/Append/Reap
// (run under -race in CI).
func TestCloseDuringReplayChurn(t *testing.T) {
	l, err := Open(t.TempDir(), Config{SegmentMaxBytes: 2048, MaxSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 200, 20)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 200
		for {
			select {
			case <-stop:
				return
			default:
			}
			l.Append([][]byte{payloadFor(i)})
			l.Reap()
			i++
		}
	}()

	for round := 0; round < 40; round++ {
		var cwg sync.WaitGroup
		for k := 0; k < 4; k++ {
			c := l.NewCursor(0)
			cwg.Add(2)
			go func() {
				defer cwg.Done()
				var buf []Record
				for {
					var err error
					buf, err = c.Next(buf[:0], 32)
					if err != nil {
						return // closed under us
					}
					if len(buf) == 0 {
						if c.AttachTail(func([]Record) {}) {
							return
						}
					}
				}
			}()
			go func() {
				defer cwg.Done()
				time.Sleep(time.Duration(round%3) * time.Millisecond)
				c.Close()
			}()
		}
		cwg.Wait()
	}
	close(stop)
	wg.Wait()
	if got := l.Stats().ActiveCursors; got != 0 {
		t.Fatalf("%d cursors leaked", got)
	}
}

// TestCursorClampsAfterReap parks a cursor at the tail, reaps history
// past it, and checks it resumes from the earliest retained record.
func TestCursorClampsAfterReap(t *testing.T) {
	l, err := Open(t.TempDir(), Config{SegmentMaxBytes: 1024, MaxSegments: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c := l.NewCursor(0) // tail of an empty log: pins nothing
	if out, err := c.Next(nil, 8); err != nil || len(out) != 0 {
		t.Fatalf("empty log cursor: %d records, err %v", len(out), err)
	}
	appendN(t, l, 0, 400, 10)
	if _, err := l.Reap(); err != nil {
		t.Fatal(err)
	}
	earliest := l.EarliestSeq()
	if earliest == 1 {
		t.Fatal("setup: nothing reaped")
	}
	out, err := c.Next(nil, 8)
	if err != nil || len(out) == 0 {
		t.Fatalf("cursor after reap: %d records, err %v", len(out), err)
	}
	if out[0].Seq != earliest {
		t.Fatalf("cursor resumed at %d, want earliest %d", out[0].Seq, earliest)
	}
	c.Close()
}
