package topiclog

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// copyLogDir clones a log directory so each torture case mutates a
// fresh copy.
func copyLogDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// lastSegment returns the path of the highest-based segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".seg" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no segments")
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1])
}

// lastRecordStart scans a segment file and returns the byte offset
// where its final record begins, plus the file length.
func lastRecordStart(t *testing.T, path string) (start, size int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for off < len(data) {
		_, _, n, err := ParseRecord(data[off:], 0)
		if err != nil {
			t.Fatalf("pristine segment failed to parse at %d: %v", off, err)
		}
		if off+n == len(data) {
			return off, len(data)
		}
		off += n
	}
	t.Fatal("empty segment")
	return 0, 0
}

// verifyRecovered opens the log at dir and asserts records 1..wantLast
// survive intact and that the log accepts a fresh append stamped
// wantLast+1.
func verifyRecovered(t *testing.T, dir string, wantLast int) {
	t.Helper()
	l, err := Open(dir, Config{SegmentMaxBytes: 1 << 20})
	if err != nil {
		t.Fatalf("open after tear: %v", err)
	}
	defer l.Close()
	if got := l.NextSeq(); got != uint64(wantLast+1) {
		t.Fatalf("NextSeq after recovery = %d, want %d", got, wantLast+1)
	}
	got := drain(t, l, 0)
	if len(got) != wantLast {
		t.Fatalf("recovered %d records, want %d", len(got), wantLast)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payloadFor(i)) {
			t.Fatalf("recovered record %d corrupt (seq %d)", i, r.Seq)
		}
	}
	first, err := l.Append([][]byte{payloadFor(wantLast)})
	if err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if first != uint64(wantLast+1) {
		t.Fatalf("post-recovery append got seq %d, want %d", first, wantLast+1)
	}
}

// TestTornTailEveryOffset is the crash-safety torture test: a valid
// log is truncated at every byte offset inside its final record, and
// recovery must preserve every earlier record and keep appending.
func TestTornTailEveryOffset(t *testing.T) {
	const records = 12
	pristine := t.TempDir()
	l, err := Open(pristine, Config{SegmentMaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if _, err := l.Append([][]byte{payloadFor(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	seg := lastSegment(t, pristine)
	start, size := lastRecordStart(t, seg)
	for off := start; off < size; off++ {
		dir := copyLogDir(t, pristine)
		if err := os.Truncate(lastSegment(t, dir), int64(off)); err != nil {
			t.Fatal(err)
		}
		verifyRecovered(t, dir, records-1)
	}
}

// TestCorruptTailRecovery flips bytes in the final record (header and
// payload) and asserts the CRC check truncates it away.
func TestCorruptTailRecovery(t *testing.T) {
	const records = 8
	pristine := t.TempDir()
	l, err := Open(pristine, Config{SegmentMaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if _, err := l.Append([][]byte{payloadFor(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	seg := lastSegment(t, pristine)
	start, size := lastRecordStart(t, seg)
	for _, off := range []int{start + 12, start + HeaderLen, size - 1} {
		dir := copyLogDir(t, pristine)
		path := lastSegment(t, dir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[off] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		verifyRecovered(t, dir, records-1)
	}
}

// TestMidLogTearDropsSuffix tears a non-final segment and asserts the
// unreachable suffix segments are removed rather than leaving a
// sequence gap.
func TestMidLogTearDropsSuffix(t *testing.T) {
	pristine := t.TempDir()
	l, err := Open(pristine, Config{SegmentMaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for l.Stats().Segments < 3 {
		if _, err := l.Append([][]byte{payloadFor(n)}); err != nil {
			t.Fatal(err)
		}
		n++
	}
	l.Close()

	ents, err := os.ReadDir(pristine)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".seg" {
			segs = append(segs, filepath.Join(pristine, e.Name()))
		}
	}
	sort.Strings(segs)
	first := segs[0]
	start, _ := lastRecordStart(t, first)
	if err := os.Truncate(first, int64(start)+5); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(pristine, Config{SegmentMaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := drain(t, l2, 0)
	for i, r := range got {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payloadFor(i)) {
			t.Fatalf("record %d corrupt after mid-log tear", i)
		}
	}
	if st := l2.Stats(); st.NextSeq != uint64(len(got)+1) || st.Segments != 1 {
		t.Fatalf("suffix not dropped cleanly: %+v with %d records", st, len(got))
	}
}
