package topiclog

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func payloadFor(i int) []byte {
	return []byte(fmt.Sprintf("payload-%06d-abcdefghijklmnopqrstuvwxyz", i))
}

// appendN appends n records one batch per batchSize and returns the
// payloads in order.
func appendN(t *testing.T, l *Log, start, n, batchSize int) [][]byte {
	t.Helper()
	var all [][]byte
	for i := 0; i < n; i += batchSize {
		var batch [][]byte
		for j := i; j < n && j < i+batchSize; j++ {
			batch = append(batch, payloadFor(start+j))
		}
		if _, err := l.Append(batch); err != nil {
			t.Fatalf("append: %v", err)
		}
		all = append(all, batch...)
	}
	return all
}

// drain reads every committed record from seq from.
func drain(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	c := l.NewCursor(from)
	defer c.Close()
	var out []Record
	for {
		var err error
		before := len(out)
		out, err = c.Next(out, 64)
		if err != nil {
			t.Fatalf("cursor next: %v", err)
		}
		if len(out) == before {
			return out
		}
	}
}

func TestAppendReadRoundtrip(t *testing.T) {
	l, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := appendN(t, l, 0, 500, 37)
	got := drain(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, i+1)
		}
		if !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
	st := l.Stats()
	if st.NextSeq != 501 || st.Appended != 500 || st.EarliestSeq != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSegmentSizeRoll(t *testing.T) {
	l, err := Open(t.TempDir(), Config{SegmentMaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 400, 10)
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected several segments, got %d", st.Segments)
	}
	got := drain(t, l, 0)
	if len(got) != 400 {
		t.Fatalf("read %d records across rolls, want 400", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payloadFor(i)) {
			t.Fatalf("record %d wrong after roll (seq %d)", i, r.Seq)
		}
	}
}

func TestSegmentAgeRoll(t *testing.T) {
	l, err := Open(t.TempDir(), Config{SegmentMaxAge: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 5, 5)
	time.Sleep(20 * time.Millisecond)
	appendN(t, l, 5, 5, 5)
	if st := l.Stats(); st.Segments != 2 {
		t.Fatalf("expected age roll to 2 segments, got %d", st.Segments)
	}
	if got := drain(t, l, 0); len(got) != 10 {
		t.Fatalf("read %d records, want 10", len(got))
	}
}

func TestRetentionReap(t *testing.T) {
	l, err := Open(t.TempDir(), Config{SegmentMaxBytes: 1024, MaxSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 300, 10)
	before := l.Stats()
	if before.Segments <= 2 {
		t.Fatalf("setup: expected >2 segments, got %d", before.Segments)
	}
	n, err := l.Reap()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("reap removed nothing")
	}
	after := l.Stats()
	if after.Segments != 2 {
		t.Fatalf("segments after reap = %d, want 2", after.Segments)
	}
	if after.EarliestSeq <= before.EarliestSeq {
		t.Fatalf("earliest did not advance: %d -> %d", before.EarliestSeq, after.EarliestSeq)
	}
	if after.Reaped != uint64(n) {
		t.Fatalf("reaped stat = %d, want %d", after.Reaped, n)
	}
	// A cursor asking for reaped history clamps to the earliest
	// retained record.
	got := drain(t, l, 1)
	if len(got) == 0 || got[0].Seq != after.EarliestSeq {
		t.Fatalf("clamped cursor starts at %d, want %d", got[0].Seq, after.EarliestSeq)
	}
	if got[len(got)-1].Seq != 300 {
		t.Fatalf("clamped cursor ends at %d, want 300", got[len(got)-1].Seq)
	}
}

func TestReapNeverRemovesPinnedSegment(t *testing.T) {
	l, err := Open(t.TempDir(), Config{SegmentMaxBytes: 1024, MaxSegments: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 200, 10)
	c := l.NewCursor(1) // pins the earliest segment
	got, err := c.Next(nil, 4)
	if err != nil || len(got) == 0 {
		t.Fatalf("cursor next: %d records, err %v", len(got), err)
	}
	if n, _ := l.Reap(); n != 0 {
		t.Fatalf("reap removed %d segments under an active cursor", n)
	}
	if l.Stats().EarliestSeq != 1 {
		t.Fatal("pinned segment was reaped")
	}
	// The cursor must still be able to read everything.
	for {
		before := len(got)
		got, err = c.Next(got, 64)
		if err != nil {
			t.Fatalf("cursor next: %v", err)
		}
		if len(got) == before {
			break
		}
	}
	if len(got) != 200 {
		t.Fatalf("cursor read %d records, want 200", len(got))
	}
	c.Close()
	if n, _ := l.Reap(); n == 0 {
		t.Fatal("reap removed nothing after cursor close")
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{SegmentMaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 100, 7)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Config{SegmentMaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextSeq() != 101 {
		t.Fatalf("reopened NextSeq = %d, want 101", l2.NextSeq())
	}
	appendN(t, l2, 100, 50, 7)
	got := drain(t, l2, 0)
	if len(got) != 150 {
		t.Fatalf("read %d records after reopen, want 150", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payloadFor(i)) {
			t.Fatalf("record %d wrong after reopen", i)
		}
	}
}

func TestAppendLimits(t *testing.T) {
	l, err := Open(t.TempDir(), Config{MaxRecordBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([][]byte{make([]byte, 65)}); err == nil {
		t.Fatal("oversized record accepted")
	}
	if _, err := l.Append([][]byte{make([]byte, 64)}); err != nil {
		t.Fatalf("max-size record rejected: %v", err)
	}
	l.Close()
	if _, err := l.Append([][]byte{{1}}); err == nil {
		t.Fatal("append after close accepted")
	}
}
