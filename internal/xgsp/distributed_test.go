package xgsp

import (
	"context"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// TestXGSPAcrossBrokerNetwork runs the session server on one broker and
// the client on a peer broker: requests, responses and notifications all
// cross the inter-broker link.
func TestXGSPAcrossBrokerNetwork(t *testing.T) {
	b1 := broker.New(broker.Config{ID: "xn-1"})
	t.Cleanup(b1.Stop)
	b2 := broker.New(broker.Config{ID: "xn-2"})
	t.Cleanup(b2.Stop)
	ca, cb := transport.Pipe("xn-2", "xn-1")
	go b2.AcceptConn(cb)
	if err := b1.ConnectPeerConn(ca); err != nil {
		t.Fatal(err)
	}

	// Session server on b1.
	sc, err := b1.LocalClient("xgsp-server", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sc, ServerConfig{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	// Client on b2; its inbox subscription must propagate to b1 before
	// the first request, which Subscribe's fence plus the advertisement
	// push guarantees eventually — Request retries are not implemented,
	// so wait for the route.
	bc, err := b2.LocalClient("bc-remote", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	client, err := NewClient(context.Background(), bc, "remote-user")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	// Wait until b1 can route a response back to the remote inbox.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if info, err := client.Create(context.Background(), CreateSession{Name: "cross-broker"}); err == nil {
			// Full lifecycle across the network.
			if _, err := client.Join(context.Background(), info.ID, "remote-term", nil); err != nil {
				t.Fatal(err)
			}
			watch, err := client.WatchControl(context.Background(), info.ID)
			if err != nil {
				t.Fatal(err)
			}
			if err := client.Leave(context.Background(), info.ID); err != nil {
				t.Fatal(err)
			}
			n := recvNotify(t, watch)
			if n.Kind != NotifyLeft {
				t.Fatalf("notify = %+v", n)
			}
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("request never completed across the broker network")
}

// TestXGSPOverLossyLink drives the whole request/response/notify cycle
// over a 25%-lossy client link; the reliable profile must mask the loss.
func TestXGSPOverLossyLink(t *testing.T) {
	b := broker.New(broker.Config{ID: "xl", RetransmitInterval: 25 * time.Millisecond})
	t.Cleanup(b.Stop)
	sc, err := b.LocalClient("xgsp-server", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sc, ServerConfig{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	bc, err := b.LocalClient("bc-lossy", transport.LinkProfile{Loss: 0.25, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	client, err := NewClient(context.Background(), bc, "lossy-user")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	info, err := client.Create(context.Background(), CreateSession{Name: "lossy-session"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range 5 {
		if _, err := client.Join(context.Background(), info.ID, "t", nil); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		if err := client.Leave(context.Background(), info.ID); err != nil {
			t.Fatalf("leave %d: %v", i, err)
		}
	}
}
