// Package xgsp implements the XML-based General Session Protocol — the
// paper's primary contribution. XGSP is the neutral session protocol that
// every community gateway (H.323, SIP, Admire, Access Grid) translates
// into: one vocabulary for creating sessions, managing membership,
// describing media, and arbitrating the floor.
//
// Messages travel as XML payloads of reliable broker events: requests on
// the server's request topic, responses on the requester's inbox topic,
// and notifications on each session's control topic.
package xgsp

import (
	"encoding/xml"
	"errors"
	"fmt"
	"time"
)

// ProtocolVersion is the XGSP revision emitted and accepted.
const ProtocolVersion = "1.0"

// Topic layout. All XGSP traffic lives under /xgsp.
const (
	// RequestTopic receives all client requests to the session server.
	RequestTopic = "/xgsp/server/requests"
	// inboxPrefix + user id is a requester's response topic.
	inboxPrefix = "/xgsp/inbox/"
)

// InboxTopic returns the response topic for a user.
func InboxTopic(userID string) string { return inboxPrefix + userID }

// SessionTopic returns the topic for one media channel of a session.
// channel is one of "audio", "video", "chat", "control".
func SessionTopic(sessionID, channel string) string {
	return "/xgsp/session/" + sessionID + "/" + channel
}

// MediaType enumerates session media channels.
type MediaType string

// Media types.
const (
	MediaAudio   MediaType = "audio"
	MediaVideo   MediaType = "video"
	MediaChat    MediaType = "chat"
	MediaControl MediaType = "control"
)

// MediaDesc describes one media channel of a session.
type MediaDesc struct {
	Type      MediaType `xml:"type,attr"`
	Codec     string    `xml:"codec,attr,omitempty"`
	ClockRate int       `xml:"clock-rate,attr,omitempty"`
	// Topic is the broker topic carrying this channel; assigned by the
	// session server and echoed in responses/notifications.
	Topic string `xml:"topic,attr,omitempty"`
}

// Status codes carried in responses.
const (
	StatusOK           = "ok"
	StatusDenied       = "denied"
	StatusNotFound     = "not-found"
	StatusNotMember    = "not-member"
	StatusBadRequest   = "bad-request"
	StatusConflict     = "conflict"
	StatusFloorBusy    = "floor-busy"
	StatusNotScheduled = "not-active"
)

// Message is the XGSP envelope. Exactly one body pointer is non-nil.
type Message struct {
	XMLName xml.Name `xml:"xgsp"`
	Version string   `xml:"version,attr"`
	// Seq correlates responses with requests per requester.
	Seq uint64 `xml:"seq,attr"`
	// From identifies the requesting user or community gateway.
	From string `xml:"from,attr,omitempty"`

	CreateSession    *CreateSession    `xml:"create-session,omitempty"`
	TerminateSession *TerminateSession `xml:"terminate-session,omitempty"`
	JoinSession      *JoinSession      `xml:"join-session,omitempty"`
	LeaveSession     *LeaveSession     `xml:"leave-session,omitempty"`
	ListSessions     *ListSessions     `xml:"list-sessions,omitempty"`
	InviteUser       *InviteUser       `xml:"invite-user,omitempty"`
	FloorRequest     *FloorRequest     `xml:"floor-request,omitempty"`
	FloorRelease     *FloorRelease     `xml:"floor-release,omitempty"`
	Response         *Response         `xml:"response,omitempty"`
	Notify           *Notify           `xml:"notify,omitempty"`
}

// CreateSession asks the server to create a session. Ad-hoc sessions
// (zero Start) activate immediately; scheduled sessions activate at
// Start and expire at End — the paper's hybrid collaboration pattern.
type CreateSession struct {
	Name        string      `xml:"name,attr"`
	Description string      `xml:"description,omitempty"`
	Community   string      `xml:"community,attr,omitempty"`
	Media       []MediaDesc `xml:"media"`
	// Start/End as RFC 3339; empty means ad-hoc.
	Start string `xml:"start,attr,omitempty"`
	End   string `xml:"end,attr,omitempty"`
}

// TerminateSession ends a session; only the creator may terminate.
type TerminateSession struct {
	SessionID string `xml:"session,attr"`
	Reason    string `xml:"reason,omitempty"`
}

// JoinSession adds a user (via a terminal) to a session.
type JoinSession struct {
	SessionID string `xml:"session,attr"`
	UserID    string `xml:"user,attr"`
	// Terminal identifies the media endpoint (H.323 terminal, SIP UA,
	// player...) the user attends with.
	Terminal string `xml:"terminal,attr,omitempty"`
	// Community names the collaboration community the user comes from.
	Community string `xml:"community,attr,omitempty"`
	// Media lists the channels the terminal can handle.
	Media []MediaDesc `xml:"media"`
}

// LeaveSession removes a user from a session.
type LeaveSession struct {
	SessionID string `xml:"session,attr"`
	UserID    string `xml:"user,attr"`
}

// ListSessions asks for the catalogue of active (and optionally
// scheduled) sessions.
type ListSessions struct {
	IncludeScheduled bool `xml:"include-scheduled,attr,omitempty"`
}

// InviteUser asks the server to notify a user of a session invitation.
type InviteUser struct {
	SessionID string `xml:"session,attr"`
	UserID    string `xml:"user,attr"`
	Message   string `xml:",chardata"`
}

// FloorRequest asks for the floor on one media channel.
type FloorRequest struct {
	SessionID string    `xml:"session,attr"`
	UserID    string    `xml:"user,attr"`
	Media     MediaType `xml:"media,attr"`
}

// FloorRelease gives the floor back.
type FloorRelease struct {
	SessionID string    `xml:"session,attr"`
	UserID    string    `xml:"user,attr"`
	Media     MediaType `xml:"media,attr"`
}

// MemberInfo describes one participant in responses and notifications.
type MemberInfo struct {
	UserID    string `xml:"user,attr"`
	Terminal  string `xml:"terminal,attr,omitempty"`
	Community string `xml:"community,attr,omitempty"`
}

// SessionInfo describes one session in responses and notifications.
type SessionInfo struct {
	ID        string      `xml:"id,attr"`
	Name      string      `xml:"name,attr"`
	Creator   string      `xml:"creator,attr"`
	Community string      `xml:"community,attr,omitempty"`
	Active    bool        `xml:"active,attr"`
	Start     string      `xml:"start,attr,omitempty"`
	End       string      `xml:"end,attr,omitempty"`
	Media     []MediaDesc `xml:"media"`
	Members   []string    `xml:"member,omitempty"`
	// Participants carries the structured membership (terminal and
	// source community per user) alongside the flat Members list.
	Participants []MemberInfo `xml:"participant,omitempty"`
	ControlTopic string       `xml:"control-topic,attr,omitempty"`
}

// Response answers a request.
type Response struct {
	Status   string        `xml:"status,attr"`
	Reason   string        `xml:"reason,omitempty"`
	Session  *SessionInfo  `xml:"session,omitempty"`
	Sessions []SessionInfo `xml:"sessions>session,omitempty"`
}

// Notify kinds.
const (
	NotifyJoined        = "joined"
	NotifyLeft          = "left"
	NotifyTerminated    = "terminated"
	NotifyActivated     = "activated"
	NotifyInvited       = "invited"
	NotifyFloorGranted  = "floor-granted"
	NotifyFloorReleased = "floor-released"
)

// Notify is an unsolicited server → members message on a session's
// control topic (or a user's inbox for invitations).
type Notify struct {
	Kind      string       `xml:"kind,attr"`
	SessionID string       `xml:"session,attr"`
	UserID    string       `xml:"user,attr,omitempty"`
	Media     MediaType    `xml:"media,attr,omitempty"`
	Reason    string       `xml:"reason,omitempty"`
	Session   *SessionInfo `xml:"session-info,omitempty"`
}

// Marshal encodes m as XGSP XML, stamping the protocol version.
func Marshal(m *Message) ([]byte, error) {
	m.Version = ProtocolVersion
	if err := m.validate(); err != nil {
		return nil, err
	}
	return xml.Marshal(m)
}

// Unmarshal decodes and validates an XGSP message.
func Unmarshal(b []byte) (*Message, error) {
	var m Message
	if err := xml.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("xgsp: parsing message: %w", err)
	}
	if m.Version != ProtocolVersion {
		return nil, fmt.Errorf("xgsp: unsupported version %q", m.Version)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// validate checks that exactly one body is present.
func (m *Message) validate() error {
	n := 0
	for _, present := range []bool{
		m.CreateSession != nil,
		m.TerminateSession != nil,
		m.JoinSession != nil,
		m.LeaveSession != nil,
		m.ListSessions != nil,
		m.InviteUser != nil,
		m.FloorRequest != nil,
		m.FloorRelease != nil,
		m.Response != nil,
		m.Notify != nil,
	} {
		if present {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("xgsp: message must carry exactly one body, has %d", n)
	}
	return nil
}

// Kind names the populated body, for logging and dispatch.
func (m *Message) Kind() string {
	switch {
	case m.CreateSession != nil:
		return "create-session"
	case m.TerminateSession != nil:
		return "terminate-session"
	case m.JoinSession != nil:
		return "join-session"
	case m.LeaveSession != nil:
		return "leave-session"
	case m.ListSessions != nil:
		return "list-sessions"
	case m.InviteUser != nil:
		return "invite-user"
	case m.FloorRequest != nil:
		return "floor-request"
	case m.FloorRelease != nil:
		return "floor-release"
	case m.Response != nil:
		return "response"
	case m.Notify != nil:
		return "notify"
	default:
		return "empty"
	}
}

// ParseTime parses the RFC 3339 timestamps used in scheduled sessions.
func ParseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, errors.New("xgsp: empty time")
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("xgsp: parsing time %q: %w", s, err)
	}
	return t, nil
}

// FormatTime renders a scheduled-session timestamp.
func FormatTime(t time.Time) string { return t.Format(time.RFC3339) }
