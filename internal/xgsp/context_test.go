package xgsp

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// TestRequestHonorsCancellation issues a request against a broker with
// no session server behind it — the request publishes but no response
// arrives — and asserts cancelling the context unblocks the caller.
func TestRequestHonorsCancellation(t *testing.T) {
	b := broker.New(broker.Config{ID: "lonely"})
	defer b.Stop()
	bc, err := b.LocalClient("u1", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	c, err := NewClient(context.Background(), bc, "u1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Join(ctx, "s1", "t", nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("join = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("request did not unblock on cancellation")
	}

	// An expired deadline fails fast too.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := c.List(expired, false); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired list = %v", err)
	}
}

// TestRequestAfterClose asserts requests on a closed client fail with
// ErrClosed.
func TestRequestAfterClose(t *testing.T) {
	b := broker.New(broker.Config{ID: "b"})
	defer b.Stop()
	bc, err := b.LocalClient("u1", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(context.Background(), bc, "u1")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.List(context.Background(), false); !errors.Is(err, broker.ErrClientClosed) {
		t.Fatalf("list after close = %v", err)
	}
}
