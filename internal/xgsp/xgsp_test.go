package xgsp

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/clock"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

func TestMessageRoundtrip(t *testing.T) {
	m := &Message{
		Seq:  7,
		From: "alice",
		CreateSession: &CreateSession{
			Name:      "grid-seminar",
			Community: "admire",
			Media: []MediaDesc{
				{Type: MediaAudio, Codec: "PCMU", ClockRate: 8000},
				{Type: MediaVideo, Codec: "H261", ClockRate: 90000},
			},
		},
	}
	b, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != "create-session" || got.From != "alice" || got.Seq != 7 {
		t.Fatalf("got %+v", got)
	}
	if got.CreateSession.Name != "grid-seminar" || len(got.CreateSession.Media) != 2 {
		t.Fatalf("body %+v", got.CreateSession)
	}
}

func TestMessageValidation(t *testing.T) {
	if _, err := Marshal(&Message{}); err == nil {
		t.Error("empty message accepted")
	}
	two := &Message{
		JoinSession:  &JoinSession{SessionID: "s1", UserID: "u"},
		LeaveSession: &LeaveSession{SessionID: "s1", UserID: "u"},
	}
	if _, err := Marshal(two); err == nil {
		t.Error("two bodies accepted")
	}
}

func TestUnmarshalRejectsBadVersion(t *testing.T) {
	b := []byte(`<xgsp version="9.9"><list-sessions/></xgsp>`)
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := Unmarshal([]byte("not xml at all <")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestAllMessageKinds(t *testing.T) {
	msgs := map[string]*Message{
		"create-session":    {CreateSession: &CreateSession{Name: "x"}},
		"terminate-session": {TerminateSession: &TerminateSession{SessionID: "s"}},
		"join-session":      {JoinSession: &JoinSession{SessionID: "s", UserID: "u"}},
		"leave-session":     {LeaveSession: &LeaveSession{SessionID: "s", UserID: "u"}},
		"list-sessions":     {ListSessions: &ListSessions{}},
		"invite-user":       {InviteUser: &InviteUser{SessionID: "s", UserID: "u"}},
		"floor-request":     {FloorRequest: &FloorRequest{SessionID: "s", UserID: "u", Media: MediaAudio}},
		"floor-release":     {FloorRelease: &FloorRelease{SessionID: "s", UserID: "u", Media: MediaAudio}},
		"response":          {Response: &Response{Status: StatusOK}},
		"notify":            {Notify: &Notify{Kind: NotifyJoined, SessionID: "s"}},
	}
	for kind, m := range msgs {
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got.Kind() != kind {
			t.Fatalf("kind = %q, want %q", got.Kind(), kind)
		}
	}
}

func TestSessionTopics(t *testing.T) {
	if got := SessionTopic("s42", "video"); got != "/xgsp/session/s42/video" {
		t.Fatal(got)
	}
	if got := InboxTopic("alice"); got != "/xgsp/inbox/alice" {
		t.Fatal(got)
	}
}

// testRig wires a broker, session server and n clients.
type testRig struct {
	b      *broker.Broker
	server *Server
	fake   *clock.Fake
}

func newRig(t *testing.T, fake *clock.Fake) *testRig {
	t.Helper()
	b := broker.New(broker.Config{ID: "xgsp-test"})
	t.Cleanup(b.Stop)
	sc, err := b.LocalClient("xgsp-server", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{}
	if fake != nil {
		cfg.Clock = fake
		cfg.SchedulerTick = 10 * time.Millisecond
	}
	srv := NewServer(sc, cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return &testRig{b: b, server: srv, fake: fake}
}

func (r *testRig) client(t *testing.T, user string) *Client {
	t.Helper()
	bc, err := r.b.LocalClient("bc-"+user, transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	c, err := NewClient(context.Background(), bc, user)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestCreateJoinLeaveLifecycle(t *testing.T) {
	rig := newRig(t, nil)
	alice := rig.client(t, "alice")
	bob := rig.client(t, "bob")

	info, err := alice.Create(context.Background(), CreateSession{Name: "standup"})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || !info.Active || info.Creator != "alice" {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Media) != 3 {
		t.Fatalf("default media = %v", info.Media)
	}
	for _, m := range info.Media {
		if !strings.HasPrefix(m.Topic, "/xgsp/session/"+info.ID+"/") {
			t.Fatalf("media topic %q not under session", m.Topic)
		}
	}

	// Bob watches control, then joins.
	watch, err := bob.WatchControl(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := bob.Join(context.Background(), info.ID, "sip:bob@host", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(joined.Members) != 1 || joined.Members[0] != "bob" {
		t.Fatalf("members = %v", joined.Members)
	}
	n := recvNotify(t, watch)
	if n.Kind != NotifyJoined || n.UserID != "bob" {
		t.Fatalf("notify = %+v", n)
	}

	if err := bob.Leave(context.Background(), info.ID); err != nil {
		t.Fatal(err)
	}
	n = recvNotify(t, watch)
	if n.Kind != NotifyLeft || n.UserID != "bob" {
		t.Fatalf("notify = %+v", n)
	}
	if err := bob.Leave(context.Background(), info.ID); err == nil {
		t.Fatal("second leave should fail")
	}
}

func recvNotify(t *testing.T, sub *broker.Subscription) *Notify {
	t.Helper()
	for {
		select {
		case e, ok := <-sub.C():
			if !ok {
				t.Fatal("control channel closed")
			}
			n, err := ParseNotify(e)
			if err != nil {
				continue
			}
			return n
		case <-time.After(5 * time.Second):
			t.Fatal("no notification within 5s")
		}
	}
}

func TestJoinUnknownSession(t *testing.T) {
	rig := newRig(t, nil)
	alice := rig.client(t, "alice")
	if _, err := alice.Join(context.Background(), "nope", "", nil); err == nil {
		t.Fatal("join of unknown session succeeded")
	}
}

func TestTerminateOnlyByCreator(t *testing.T) {
	rig := newRig(t, nil)
	alice := rig.client(t, "alice")
	mallory := rig.client(t, "mallory")
	info, err := alice.Create(context.Background(), CreateSession{Name: "private"})
	if err != nil {
		t.Fatal(err)
	}
	if err := mallory.Terminate(context.Background(), info.ID, "takeover"); err == nil {
		t.Fatal("non-creator terminated session")
	}
	if err := alice.Terminate(context.Background(), info.ID, "done"); err != nil {
		t.Fatal(err)
	}
	if rig.server.SessionCount() != 0 {
		t.Fatal("session not removed")
	}
}

func TestListSessions(t *testing.T) {
	rig := newRig(t, nil)
	alice := rig.client(t, "alice")
	if _, err := alice.Create(context.Background(), CreateSession{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Create(context.Background(), CreateSession{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	list, err := alice.List(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list = %v", list)
	}
}

func TestInviteDelivered(t *testing.T) {
	rig := newRig(t, nil)
	alice := rig.client(t, "alice")
	bob := rig.client(t, "bob")
	info, err := alice.Create(context.Background(), CreateSession{Name: "review"})
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Invite(context.Background(), info.ID, "bob", "please join"); err != nil {
		t.Fatal(err)
	}
	select {
	case inv := <-bob.Invites():
		if inv.SessionID != info.ID || inv.Reason != "please join" {
			t.Fatalf("invite = %+v", inv)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("invitation never arrived")
	}
}

func TestFloorControl(t *testing.T) {
	rig := newRig(t, nil)
	alice := rig.client(t, "alice")
	bob := rig.client(t, "bob")
	info, err := alice.Create(context.Background(), CreateSession{Name: "panel"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Join(context.Background(), info.ID, "t1", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Join(context.Background(), info.ID, "t2", nil); err != nil {
		t.Fatal(err)
	}
	// Non-member cannot take the floor.
	carol := rig.client(t, "carol")
	if err := carol.RequestFloor(context.Background(), info.ID, MediaAudio); err == nil {
		t.Fatal("non-member got the floor")
	}
	if err := alice.RequestFloor(context.Background(), info.ID, MediaAudio); err != nil {
		t.Fatal(err)
	}
	// Re-request by holder is idempotent.
	if err := alice.RequestFloor(context.Background(), info.ID, MediaAudio); err != nil {
		t.Fatal(err)
	}
	if err := bob.RequestFloor(context.Background(), info.ID, MediaAudio); err == nil {
		t.Fatal("busy floor granted")
	}
	// Different media floor is independent.
	if err := bob.RequestFloor(context.Background(), info.ID, MediaVideo); err != nil {
		t.Fatal(err)
	}
	// Release by non-holder fails.
	if err := bob.ReleaseFloor(context.Background(), info.ID, MediaAudio); err == nil {
		t.Fatal("non-holder released floor")
	}
	if err := alice.ReleaseFloor(context.Background(), info.ID, MediaAudio); err != nil {
		t.Fatal(err)
	}
	if err := bob.RequestFloor(context.Background(), info.ID, MediaAudio); err != nil {
		t.Fatalf("floor not free after release: %v", err)
	}
}

func TestFloorReleasedOnLeave(t *testing.T) {
	rig := newRig(t, nil)
	alice := rig.client(t, "alice")
	bob := rig.client(t, "bob")
	info, err := alice.Create(context.Background(), CreateSession{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Join(context.Background(), info.ID, "t", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Join(context.Background(), info.ID, "t", nil); err != nil {
		t.Fatal(err)
	}
	if err := alice.RequestFloor(context.Background(), info.ID, MediaAudio); err != nil {
		t.Fatal(err)
	}
	if err := alice.Leave(context.Background(), info.ID); err != nil {
		t.Fatal(err)
	}
	if err := bob.RequestFloor(context.Background(), info.ID, MediaAudio); err != nil {
		t.Fatalf("floor not released when holder left: %v", err)
	}
}

func TestScheduledSessionActivation(t *testing.T) {
	fake := clock.NewFake(time.Date(2003, 6, 1, 9, 0, 0, 0, time.UTC))
	rig := newRig(t, fake)
	alice := rig.client(t, "alice")

	start := fake.Now().Add(time.Hour)
	end := start.Add(time.Hour)
	info, err := alice.Create(context.Background(), CreateSession{
		Name:  "scheduled-seminar",
		Start: FormatTime(start),
		End:   FormatTime(end),
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Active {
		t.Fatal("scheduled session active before start")
	}
	// Joining before activation is refused.
	if _, err := alice.Join(context.Background(), info.ID, "t", nil); err == nil {
		t.Fatal("joined inactive session")
	}
	// Hidden from the default list, visible with includeScheduled.
	list, err := alice.List(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("inactive session listed: %v", list)
	}
	list, err = alice.List(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Fatalf("scheduled session missing: %v", list)
	}

	// Advance past start; scheduler should activate.
	fake.Advance(61 * time.Minute)
	waitFor(t, 5*time.Second, func() bool {
		s := rig.server.Lookup(info.ID)
		return s != nil && s.Active
	})
	if _, err := alice.Join(context.Background(), info.ID, "t", nil); err != nil {
		t.Fatalf("join after activation: %v", err)
	}

	// Advance past end; scheduler should terminate.
	fake.Advance(2 * time.Hour)
	waitFor(t, 5*time.Second, func() bool {
		return rig.server.Lookup(info.ID) == nil
	})
}

func TestScheduledSessionBadTimes(t *testing.T) {
	rig := newRig(t, nil)
	alice := rig.client(t, "alice")
	if _, err := alice.Create(context.Background(), CreateSession{Name: "x", Start: "garbage"}); err == nil {
		t.Fatal("bad start accepted")
	}
	now := time.Now()
	if _, err := alice.Create(context.Background(), CreateSession{
		Name:  "x",
		Start: FormatTime(now.Add(time.Hour)),
		End:   FormatTime(now),
	}); err == nil {
		t.Fatal("end before start accepted")
	}
}

func TestCreateRequiresName(t *testing.T) {
	rig := newRig(t, nil)
	alice := rig.client(t, "alice")
	if _, err := alice.Create(context.Background(), CreateSession{}); err == nil {
		t.Fatal("nameless session accepted")
	}
}

func TestConcurrentClientsSeparateSequences(t *testing.T) {
	rig := newRig(t, nil)
	alice := rig.client(t, "alice")
	bob := rig.client(t, "bob")
	done := make(chan error, 2)
	go func() {
		_, err := alice.Create(context.Background(), CreateSession{Name: "a"})
		done <- err
	}()
	go func() {
		_, err := bob.Create(context.Background(), CreateSession{Name: "b"})
		done <- err
	}()
	for range 2 {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if rig.server.SessionCount() != 2 {
		t.Fatalf("sessions = %d", rig.server.SessionCount())
	}
}

func waitFor(t *testing.T, within time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

func TestParseTimeErrors(t *testing.T) {
	if _, err := ParseTime(""); err == nil {
		t.Error("empty time accepted")
	}
	if _, err := ParseTime("not-a-time"); err == nil {
		t.Error("garbage time accepted")
	}
	now := time.Now().Truncate(time.Second)
	got, err := ParseTime(FormatTime(now))
	if err != nil || !got.Equal(now) {
		t.Errorf("roundtrip: %v, %v", got, err)
	}
}
