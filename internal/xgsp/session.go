package xgsp

import (
	"fmt"
	"time"
)

// Member is one participant of a session.
type Member struct {
	UserID    string
	Terminal  string
	Community string
	Media     []MediaDesc
	JoinedAt  time.Time
}

// Session is the server-side state of one XGSP session.
type Session struct {
	ID          string
	Name        string
	Description string
	Creator     string
	Community   string
	Media       []MediaDesc
	CreatedAt   time.Time

	// Scheduling (hybrid collaboration pattern). Zero Start means the
	// session is ad-hoc and active immediately.
	Start  time.Time
	End    time.Time
	Active bool

	Members map[string]*Member
	// floor maps media type → current holder ("" = free).
	floor map[MediaType]string
}

func newSession(id string, req *CreateSession, creator string, now time.Time) (*Session, error) {
	if req.Name == "" {
		return nil, fmt.Errorf("xgsp: session name required")
	}
	s := &Session{
		ID:          id,
		Name:        req.Name,
		Description: req.Description,
		Creator:     creator,
		Community:   req.Community,
		CreatedAt:   now,
		Members:     make(map[string]*Member),
		floor:       make(map[MediaType]string),
	}
	media := req.Media
	if len(media) == 0 {
		media = []MediaDesc{
			{Type: MediaAudio, Codec: "PCMU", ClockRate: 8000},
			{Type: MediaVideo, Codec: "H261", ClockRate: 90000},
			{Type: MediaChat},
		}
	}
	for _, m := range media {
		m.Topic = SessionTopic(id, string(m.Type))
		s.Media = append(s.Media, m)
	}
	if req.Start != "" {
		start, err := ParseTime(req.Start)
		if err != nil {
			return nil, err
		}
		end := start.Add(2 * time.Hour)
		if req.End != "" {
			if end, err = ParseTime(req.End); err != nil {
				return nil, err
			}
		}
		if !end.After(start) {
			return nil, fmt.Errorf("xgsp: session end %v not after start %v", end, start)
		}
		s.Start, s.End = start, end
		s.Active = !now.Before(start) && now.Before(end)
	} else {
		s.Active = true
	}
	return s, nil
}

// ControlTopic returns the session's control/notification topic.
func (s *Session) ControlTopic() string { return SessionTopic(s.ID, string(MediaControl)) }

// Info snapshots the session for responses and notifications.
func (s *Session) Info() *SessionInfo {
	info := &SessionInfo{
		ID:           s.ID,
		Name:         s.Name,
		Creator:      s.Creator,
		Community:    s.Community,
		Active:       s.Active,
		Media:        append([]MediaDesc(nil), s.Media...),
		ControlTopic: s.ControlTopic(),
	}
	if !s.Start.IsZero() {
		info.Start = FormatTime(s.Start)
		info.End = FormatTime(s.End)
	}
	// Participants is the source of truth; the flat Members list is
	// derived from it for the web frontend and older consumers.
	for id := range s.Members {
		info.Members = append(info.Members, id)
	}
	sortStrings(info.Members)
	for _, id := range info.Members {
		m := s.Members[id]
		info.Participants = append(info.Participants, MemberInfo{
			UserID: m.UserID, Terminal: m.Terminal, Community: m.Community,
		})
	}
	return info
}

// join adds a member; duplicate joins update the terminal binding.
func (s *Session) join(req *JoinSession, now time.Time) *Member {
	m := &Member{
		UserID:    req.UserID,
		Terminal:  req.Terminal,
		Community: req.Community,
		Media:     req.Media,
		JoinedAt:  now,
	}
	s.Members[req.UserID] = m
	return m
}

// leave removes a member and releases any floors held.
func (s *Session) leave(userID string) bool {
	if _, ok := s.Members[userID]; !ok {
		return false
	}
	delete(s.Members, userID)
	for media, holder := range s.floor {
		if holder == userID {
			delete(s.floor, media)
		}
	}
	return true
}

// requestFloor grants the floor if free or already held by the
// requester; returns the holder after the call and whether granted.
func (s *Session) requestFloor(userID string, media MediaType) (holder string, granted bool) {
	cur, ok := s.floor[media]
	if !ok || cur == userID {
		s.floor[media] = userID
		return userID, true
	}
	return cur, false
}

// releaseFloor frees the floor if held by userID.
func (s *Session) releaseFloor(userID string, media MediaType) bool {
	if s.floor[media] != userID {
		return false
	}
	delete(s.floor, media)
	return true
}

// FloorHolder returns the current holder of a media floor ("" if free).
func (s *Session) FloorHolder(media MediaType) string { return s.floor[media] }

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
