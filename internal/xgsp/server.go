package xgsp

import (
	"fmt"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/clock"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
)

// ServerConfig parameterises the XGSP session server.
type ServerConfig struct {
	// Clock drives scheduled-session activation; nil uses the system
	// clock.
	Clock clock.Clock
	// SchedulerTick is how often scheduled sessions are checked for
	// activation/expiry. Default 500ms.
	SchedulerTick time.Duration
	// Metrics receives server counters; nil allocates a private registry.
	Metrics *metrics.Registry
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Clock == nil {
		c.Clock = clock.System{}
	}
	if c.SchedulerTick <= 0 {
		c.SchedulerTick = 500 * time.Millisecond
	}
	if c.Metrics == nil {
		c.Metrics = &metrics.Registry{}
	}
	return c
}

// Server is the XGSP session server: it owns session state, translates
// requests into broker topics, and emits membership/floor notifications —
// the "XGSP Session Server" box of the paper's Figure 2.
type Server struct {
	cfg    ServerConfig
	client *broker.Client

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   uint64

	wg   sync.WaitGroup
	done chan struct{}
	once sync.Once
}

// NewServer attaches a session server to the broker via client. The
// client must be dedicated to this server. Start must be called next.
func NewServer(client *broker.Client, cfg ServerConfig) *Server {
	return &Server{
		cfg:      cfg.withDefaults(),
		client:   client,
		sessions: make(map[string]*Session),
		done:     make(chan struct{}),
	}
}

// Start subscribes to the request topic and launches the scheduler.
func (s *Server) Start() error {
	sub, err := s.client.Subscribe(RequestTopic, 1024)
	if err != nil {
		return fmt.Errorf("xgsp: subscribing to requests: %w", err)
	}
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		s.serveRequests(sub)
	}()
	go func() {
		defer s.wg.Done()
		s.runScheduler()
	}()
	return nil
}

// Stop shuts the server down and waits for its goroutines.
func (s *Server) Stop() {
	s.once.Do(func() { close(s.done) })
	s.client.Close()
	s.wg.Wait()
}

func (s *Server) serveRequests(sub *broker.Subscription) {
	for {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return
			}
			s.handleRequest(e)
		case <-s.done:
			return
		}
	}
}

func (s *Server) handleRequest(e *event.Event) {
	s.cfg.Metrics.Counter("xgsp.requests").Inc()
	msg, err := Unmarshal(e.Payload)
	if err != nil {
		s.cfg.Metrics.Counter("xgsp.bad_requests").Inc()
		return
	}
	if msg.From == "" {
		s.cfg.Metrics.Counter("xgsp.bad_requests").Inc()
		return
	}
	resp := s.dispatch(msg)
	resp.Seq = msg.Seq
	s.respond(msg.From, resp)
}

func (s *Server) dispatch(msg *Message) *Message {
	switch {
	case msg.CreateSession != nil:
		return s.handleCreate(msg)
	case msg.TerminateSession != nil:
		return s.handleTerminate(msg)
	case msg.JoinSession != nil:
		return s.handleJoin(msg)
	case msg.LeaveSession != nil:
		return s.handleLeave(msg)
	case msg.ListSessions != nil:
		return s.handleList(msg)
	case msg.InviteUser != nil:
		return s.handleInvite(msg)
	case msg.FloorRequest != nil:
		return s.handleFloorRequest(msg)
	case msg.FloorRelease != nil:
		return s.handleFloorRelease(msg)
	default:
		return errorResponse(StatusBadRequest, "unsupported request "+msg.Kind())
	}
}

func errorResponse(status, reason string) *Message {
	return &Message{Response: &Response{Status: status, Reason: reason}}
}

func okResponse(info *SessionInfo) *Message {
	return &Message{Response: &Response{Status: StatusOK, Session: info}}
}

func (s *Server) handleCreate(msg *Message) *Message {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	sess, err := newSession(id, msg.CreateSession, msg.From, now)
	if err != nil {
		s.mu.Unlock()
		return errorResponse(StatusBadRequest, err.Error())
	}
	s.sessions[id] = sess
	info := sess.Info()
	active := sess.Active
	s.mu.Unlock()
	s.cfg.Metrics.Counter("xgsp.sessions_created").Inc()
	if active {
		s.notifySession(info.ID, &Notify{Kind: NotifyActivated, SessionID: info.ID, Session: info})
	}
	return okResponse(info)
}

func (s *Server) handleTerminate(msg *Message) *Message {
	req := msg.TerminateSession
	s.mu.Lock()
	sess, ok := s.sessions[req.SessionID]
	if !ok {
		s.mu.Unlock()
		return errorResponse(StatusNotFound, "no session "+req.SessionID)
	}
	if sess.Creator != msg.From {
		s.mu.Unlock()
		return errorResponse(StatusDenied, "only the creator may terminate")
	}
	delete(s.sessions, req.SessionID)
	info := sess.Info()
	s.mu.Unlock()
	s.cfg.Metrics.Counter("xgsp.sessions_terminated").Inc()
	s.notifySession(req.SessionID, &Notify{
		Kind: NotifyTerminated, SessionID: req.SessionID, Reason: req.Reason, Session: info,
	})
	return okResponse(info)
}

func (s *Server) handleJoin(msg *Message) *Message {
	req := msg.JoinSession
	if req.UserID == "" {
		return errorResponse(StatusBadRequest, "user required")
	}
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	sess, ok := s.sessions[req.SessionID]
	if !ok {
		s.mu.Unlock()
		return errorResponse(StatusNotFound, "no session "+req.SessionID)
	}
	if !sess.Active {
		s.mu.Unlock()
		return errorResponse(StatusNotScheduled, "session not active yet")
	}
	sess.join(req, now)
	info := sess.Info()
	s.mu.Unlock()
	s.cfg.Metrics.Counter("xgsp.joins").Inc()
	s.notifySession(req.SessionID, &Notify{Kind: NotifyJoined, SessionID: req.SessionID, UserID: req.UserID})
	return okResponse(info)
}

func (s *Server) handleLeave(msg *Message) *Message {
	req := msg.LeaveSession
	s.mu.Lock()
	sess, ok := s.sessions[req.SessionID]
	if !ok {
		s.mu.Unlock()
		return errorResponse(StatusNotFound, "no session "+req.SessionID)
	}
	left := sess.leave(req.UserID)
	info := sess.Info()
	s.mu.Unlock()
	if !left {
		return errorResponse(StatusNotMember, "user not in session")
	}
	s.cfg.Metrics.Counter("xgsp.leaves").Inc()
	s.notifySession(req.SessionID, &Notify{Kind: NotifyLeft, SessionID: req.SessionID, UserID: req.UserID})
	return okResponse(info)
}

func (s *Server) handleList(msg *Message) *Message {
	includeScheduled := msg.ListSessions.IncludeScheduled
	s.mu.Lock()
	var infos []SessionInfo
	for _, sess := range s.sessions {
		if sess.Active || includeScheduled {
			infos = append(infos, *sess.Info())
		}
	}
	s.mu.Unlock()
	sortSessionInfos(infos)
	return &Message{Response: &Response{Status: StatusOK, Sessions: infos}}
}

func (s *Server) handleInvite(msg *Message) *Message {
	req := msg.InviteUser
	s.mu.Lock()
	sess, ok := s.sessions[req.SessionID]
	var info *SessionInfo
	if ok {
		info = sess.Info()
	}
	s.mu.Unlock()
	if !ok {
		return errorResponse(StatusNotFound, "no session "+req.SessionID)
	}
	s.cfg.Metrics.Counter("xgsp.invites").Inc()
	// Invitations land on the invitee's inbox.
	s.sendTo(InboxTopic(req.UserID), &Message{Notify: &Notify{
		Kind: NotifyInvited, SessionID: req.SessionID, UserID: req.UserID,
		Reason: req.Message, Session: info,
	}})
	return okResponse(info)
}

func (s *Server) handleFloorRequest(msg *Message) *Message {
	req := msg.FloorRequest
	s.mu.Lock()
	sess, ok := s.sessions[req.SessionID]
	if !ok {
		s.mu.Unlock()
		return errorResponse(StatusNotFound, "no session "+req.SessionID)
	}
	if _, member := sess.Members[req.UserID]; !member {
		s.mu.Unlock()
		return errorResponse(StatusDenied, "not a member")
	}
	holder, granted := sess.requestFloor(req.UserID, req.Media)
	s.mu.Unlock()
	if !granted {
		return errorResponse(StatusFloorBusy, "floor held by "+holder)
	}
	s.notifySession(req.SessionID, &Notify{
		Kind: NotifyFloorGranted, SessionID: req.SessionID, UserID: req.UserID, Media: req.Media,
	})
	return okResponse(nil)
}

func (s *Server) handleFloorRelease(msg *Message) *Message {
	req := msg.FloorRelease
	s.mu.Lock()
	sess, ok := s.sessions[req.SessionID]
	if !ok {
		s.mu.Unlock()
		return errorResponse(StatusNotFound, "no session "+req.SessionID)
	}
	released := sess.releaseFloor(req.UserID, req.Media)
	s.mu.Unlock()
	if !released {
		return errorResponse(StatusConflict, "floor not held by "+req.UserID)
	}
	s.notifySession(req.SessionID, &Notify{
		Kind: NotifyFloorReleased, SessionID: req.SessionID, UserID: req.UserID, Media: req.Media,
	})
	return okResponse(nil)
}

// runScheduler activates and expires scheduled sessions.
func (s *Server) runScheduler() {
	for {
		select {
		case <-s.done:
			return
		case <-s.cfg.Clock.After(s.cfg.SchedulerTick):
			s.tick()
		}
	}
}

func (s *Server) tick() {
	now := s.cfg.Clock.Now()
	type change struct {
		id     string
		notify *Notify
	}
	var changes []change
	s.mu.Lock()
	for id, sess := range s.sessions {
		if sess.Start.IsZero() {
			continue
		}
		switch {
		case !sess.Active && !now.Before(sess.Start) && now.Before(sess.End):
			sess.Active = true
			changes = append(changes, change{id, &Notify{
				Kind: NotifyActivated, SessionID: id, Session: sess.Info(),
			}})
		case sess.Active && !now.Before(sess.End):
			delete(s.sessions, id)
			changes = append(changes, change{id, &Notify{
				Kind: NotifyTerminated, SessionID: id, Reason: "scheduled end", Session: sess.Info(),
			}})
		}
	}
	s.mu.Unlock()
	for _, c := range changes {
		s.notifySession(c.id, c.notify)
	}
}

// notifySession publishes a notification on the session control topic.
func (s *Server) notifySession(sessionID string, n *Notify) {
	s.sendTo(SessionTopic(sessionID, string(MediaControl)), &Message{Notify: n})
}

func (s *Server) sendTo(topic string, msg *Message) {
	b, err := Marshal(msg)
	if err != nil {
		s.cfg.Metrics.Counter("xgsp.marshal_errors").Inc()
		return
	}
	e := event.New(topic, event.KindControl, b)
	e.Reliable = true
	if err := s.client.PublishEvent(e); err != nil {
		s.cfg.Metrics.Counter("xgsp.publish_errors").Inc()
	}
}

func (s *Server) respond(to string, resp *Message) {
	s.sendTo(InboxTopic(to), resp)
}

// SessionCount returns the number of sessions (active + scheduled).
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Lookup returns a snapshot of one session, or nil.
func (s *Server) Lookup(id string) *SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[id]; ok {
		return sess.Info()
	}
	return nil
}

func sortSessionInfos(infos []SessionInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].ID < infos[j-1].ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}
