package xgsp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
)

// ErrTimeout is returned when the session server does not answer in time.
var ErrTimeout = errors.New("xgsp: request timed out")

// ErrClosed is returned by requests on a closed Client.
var ErrClosed = errors.New("xgsp: client closed")

// RequestTimeout bounds each request/response round trip when the
// caller's context carries no earlier deadline.
const RequestTimeout = 10 * time.Second

// StatusError is a non-OK XGSP response surfaced as an error. The public
// SDK maps Status values onto its sentinel error taxonomy.
type StatusError struct {
	// Op is the request kind that failed (e.g. "join-session").
	Op string
	// Status is the XGSP status code (StatusNotFound, StatusDenied, ...).
	Status string
	// Reason is the server's human-readable explanation.
	Reason string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("xgsp: %s: %s (%s)", e.Op, e.Status, e.Reason)
}

// Client is an XGSP endpoint: it issues requests to the session server
// over the broker and receives responses on its inbox topic. Gateways
// (SIP, H.323, Admire, streaming) and end-user applications embed one.
type Client struct {
	userID string
	bc     *broker.Client

	nextSeq atomic.Uint64

	mu      sync.Mutex
	waiters map[uint64]chan *Message
	invites chan *Notify

	wg   sync.WaitGroup
	done chan struct{}
	once sync.Once
}

// NewClient creates an XGSP client for userID over a dedicated broker
// client, and starts listening on the user's inbox topic. ctx bounds the
// inbox subscription handshake.
func NewClient(ctx context.Context, bc *broker.Client, userID string) (*Client, error) {
	if userID == "" {
		return nil, errors.New("xgsp: user id required")
	}
	c := &Client{
		userID:  userID,
		bc:      bc,
		waiters: make(map[uint64]chan *Message),
		invites: make(chan *Notify, 64),
		done:    make(chan struct{}),
	}
	sub, err := bc.SubscribeContext(ctx, InboxTopic(userID), 256)
	if err != nil {
		return nil, fmt.Errorf("xgsp: subscribing inbox: %w", err)
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.serveInbox(sub)
	}()
	return c, nil
}

// UserID returns the client identity.
func (c *Client) UserID() string { return c.userID }

// Invites delivers invitation notifications pushed to this user.
func (c *Client) Invites() <-chan *Notify { return c.invites }

// Close stops the inbox listener. The underlying broker client is owned
// by the caller and is not closed.
func (c *Client) Close() {
	c.once.Do(func() { close(c.done) })
	c.wg.Wait()
}

func (c *Client) serveInbox(sub *broker.Subscription) {
	for {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return
			}
			c.handleInbox(e)
		case <-c.done:
			return
		}
	}
}

func (c *Client) handleInbox(e *event.Event) {
	msg, err := Unmarshal(e.Payload)
	if err != nil {
		return
	}
	switch {
	case msg.Response != nil:
		c.mu.Lock()
		ch := c.waiters[msg.Seq]
		delete(c.waiters, msg.Seq)
		c.mu.Unlock()
		if ch != nil {
			ch <- msg
		}
	case msg.Notify != nil && msg.Notify.Kind == NotifyInvited:
		select {
		case c.invites <- msg.Notify:
		default: // invitee not draining; drop rather than block the inbox
		}
	}
}

// Request sends an XGSP request and waits for the server's response
// until ctx is cancelled, the client closes, or RequestTimeout elapses.
func (c *Client) Request(ctx context.Context, msg *Message) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seq := c.nextSeq.Add(1)
	msg.Seq = seq
	msg.From = c.userID
	b, err := Marshal(msg)
	if err != nil {
		return nil, err
	}
	ch := make(chan *Message, 1)
	c.mu.Lock()
	c.waiters[seq] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, seq)
		c.mu.Unlock()
	}()
	e := event.New(RequestTopic, event.KindControl, b)
	e.Reliable = true
	if err := c.bc.PublishEvent(e); err != nil {
		return nil, fmt.Errorf("xgsp: sending request: %w", err)
	}
	// The 10s cap applies only when the caller's context carries no
	// deadline of its own; a nil channel never fires.
	var timeout <-chan time.Time
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		timeout = time.After(RequestTimeout)
	}
	select {
	case resp := <-ch:
		return resp.Response, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
		return nil, ErrClosed
	case <-timeout:
		return nil, ErrTimeout
	}
}

// statusErr converts a non-OK response into a *StatusError.
func statusErr(op string, r *Response) error {
	if r.Status == StatusOK {
		return nil
	}
	return &StatusError{Op: op, Status: r.Status, Reason: r.Reason}
}

// Create creates a session and returns its description.
func (c *Client) Create(ctx context.Context, req CreateSession) (*SessionInfo, error) {
	resp, err := c.Request(ctx, &Message{CreateSession: &req})
	if err != nil {
		return nil, err
	}
	if err := statusErr("create-session", resp); err != nil {
		return nil, err
	}
	return resp.Session, nil
}

// Join joins a session.
func (c *Client) Join(ctx context.Context, sessionID, terminal string, media []MediaDesc) (*SessionInfo, error) {
	resp, err := c.Request(ctx, &Message{JoinSession: &JoinSession{
		SessionID: sessionID, UserID: c.userID, Terminal: terminal, Media: media,
	}})
	if err != nil {
		return nil, err
	}
	if err := statusErr("join-session", resp); err != nil {
		return nil, err
	}
	return resp.Session, nil
}

// JoinAs joins a session on behalf of another user — the operation
// community gateways perform when translating foreign signalling into
// XGSP.
func (c *Client) JoinAs(ctx context.Context, sessionID, userID, terminal, community string, media []MediaDesc) (*SessionInfo, error) {
	resp, err := c.Request(ctx, &Message{JoinSession: &JoinSession{
		SessionID: sessionID, UserID: userID, Terminal: terminal,
		Community: community, Media: media,
	}})
	if err != nil {
		return nil, err
	}
	if err := statusErr("join-session", resp); err != nil {
		return nil, err
	}
	return resp.Session, nil
}

// LeaveAs removes another user from a session (gateway teardown).
func (c *Client) LeaveAs(ctx context.Context, sessionID, userID string) error {
	resp, err := c.Request(ctx, &Message{LeaveSession: &LeaveSession{
		SessionID: sessionID, UserID: userID,
	}})
	if err != nil {
		return err
	}
	return statusErr("leave-session", resp)
}

// Lookup fetches one session's info by id, or nil when absent.
func (c *Client) Lookup(ctx context.Context, sessionID string) (*SessionInfo, error) {
	list, err := c.List(ctx, true)
	if err != nil {
		return nil, err
	}
	for i := range list {
		if list[i].ID == sessionID {
			return &list[i], nil
		}
	}
	return nil, nil
}

// Leave leaves a session.
func (c *Client) Leave(ctx context.Context, sessionID string) error {
	resp, err := c.Request(ctx, &Message{LeaveSession: &LeaveSession{
		SessionID: sessionID, UserID: c.userID,
	}})
	if err != nil {
		return err
	}
	return statusErr("leave-session", resp)
}

// Terminate ends a session the client created.
func (c *Client) Terminate(ctx context.Context, sessionID, reason string) error {
	resp, err := c.Request(ctx, &Message{TerminateSession: &TerminateSession{
		SessionID: sessionID, Reason: reason,
	}})
	if err != nil {
		return err
	}
	return statusErr("terminate-session", resp)
}

// List returns the visible sessions.
func (c *Client) List(ctx context.Context, includeScheduled bool) ([]SessionInfo, error) {
	resp, err := c.Request(ctx, &Message{ListSessions: &ListSessions{IncludeScheduled: includeScheduled}})
	if err != nil {
		return nil, err
	}
	if err := statusErr("list-sessions", resp); err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// Invite asks the server to invite another user to a session.
func (c *Client) Invite(ctx context.Context, sessionID, userID, message string) error {
	resp, err := c.Request(ctx, &Message{InviteUser: &InviteUser{
		SessionID: sessionID, UserID: userID, Message: message,
	}})
	if err != nil {
		return err
	}
	return statusErr("invite-user", resp)
}

// RequestFloor asks for the floor on a media channel.
func (c *Client) RequestFloor(ctx context.Context, sessionID string, media MediaType) error {
	resp, err := c.Request(ctx, &Message{FloorRequest: &FloorRequest{
		SessionID: sessionID, UserID: c.userID, Media: media,
	}})
	if err != nil {
		return err
	}
	return statusErr("floor-request", resp)
}

// ReleaseFloor returns the floor.
func (c *Client) ReleaseFloor(ctx context.Context, sessionID string, media MediaType) error {
	resp, err := c.Request(ctx, &Message{FloorRelease: &FloorRelease{
		SessionID: sessionID, UserID: c.userID, Media: media,
	}})
	if err != nil {
		return err
	}
	return statusErr("floor-release", resp)
}

// WatchControl subscribes to a session's control topic, delivering
// notifications until the subscription is cancelled.
func (c *Client) WatchControl(ctx context.Context, sessionID string) (*broker.Subscription, error) {
	return c.bc.SubscribeContext(ctx, SessionTopic(sessionID, string(MediaControl)), 256)
}

// ParseNotify decodes a control-topic event into a Notify.
func ParseNotify(e *event.Event) (*Notify, error) {
	msg, err := Unmarshal(e.Payload)
	if err != nil {
		return nil, err
	}
	if msg.Notify == nil {
		return nil, errors.New("xgsp: control event is not a notification")
	}
	return msg.Notify, nil
}
