package transport

import (
	"container/heap"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// LinkProfile describes the emulated properties of a link direction. The
// zero value is a perfect link. Profiles substitute for the paper's 2003
// testbed (LAN propagation, JVM-era per-send host cost); see DESIGN.md §7.
type LinkProfile struct {
	// PropDelay is the fixed one-way propagation delay added to every
	// delivery.
	PropDelay time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0,1] that an event is silently dropped.
	Loss float64
	// Bandwidth, in bytes per second, serializes deliveries through a
	// token bucket. Zero means unlimited.
	Bandwidth int64
	// SendCost blocks the *sender* for the given duration per event,
	// emulating per-send host service time (marshalling, syscall, copy on
	// period hardware). This is the knob that reproduces the JMF
	// reflector's saturation behaviour.
	SendCost time.Duration
	// SyscallCost blocks the sender once per send *call* — one Send, or
	// one SendEvents/SendFrames batch — emulating the fixed kernel-entry
	// overhead a real socket pays per system call. It is what lets
	// emulated mem:// experiments reproduce the win of batching many
	// events per call instead of bypassing it: an unbatched writer pays
	// SyscallCost per event, a batched writer pays it once per batch.
	SyscallCost time.Duration
	// Egress, if non-nil, serializes deliveries through a limiter shared
	// with other conns, emulating a host NIC that all fan-out traffic
	// leaves through.
	Egress *SharedLimiter
	// Seed makes loss and jitter deterministic; 0 derives a fixed default.
	Seed uint64
}

// SharedLimiter is a token-bucket serializer shared across conns,
// modelling a common egress link (e.g. the sending host's NIC). The zero
// value is unusable; create with NewSharedLimiter.
type SharedLimiter struct {
	mu       sync.Mutex
	byteTime float64 // seconds per byte
	nextFree time.Time
}

// NewSharedLimiter creates a limiter with the given rate in bytes/second.
func NewSharedLimiter(bytesPerSecond int64) *SharedLimiter {
	if bytesPerSecond <= 0 {
		panic("transport: shared limiter rate must be positive")
	}
	return &SharedLimiter{byteTime: 1 / float64(bytesPerSecond)}
}

// reserve books size bytes on the link and returns the time the last byte
// leaves.
func (l *SharedLimiter) reserve(now time.Time, size int) time.Time {
	tx := time.Duration(float64(size) * l.byteTime * float64(time.Second))
	l.mu.Lock()
	defer l.mu.Unlock()
	start := l.nextFree
	if start.Before(now) {
		start = now
	}
	l.nextFree = start.Add(tx)
	return l.nextFree
}

// Backlog reports how far into the future the link is booked.
func (l *SharedLimiter) Backlog(now time.Time) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextFree.Before(now) {
		return 0
	}
	return l.nextFree.Sub(now)
}

// SendBlocker marks conns whose Send/SendEvents deliberately block the
// calling goroutine (spin-wait host-cost emulation). The broker keeps a
// dedicated writer goroutine for such conns instead of binding them to a
// shared writer pool: the emulation models a synchronous per-connection
// device, and serializing many emulated links through one pool goroutine
// would compound their blocking costs into head-of-line delay that no
// real NIC exhibits.
type SendBlocker interface {
	// SendBlocks reports whether sends on this conn intentionally stall
	// the sender.
	SendBlocks() bool
}

// SendBlocks reports whether this profile charges sender-blocking cost
// (SendCost or SyscallCost spin the sending goroutine; delay, loss and
// bandwidth shaping ride the delay line without blocking the sender).
func (s *shapedConn) SendBlocks() bool {
	return s.profile.SendCost > 0 || s.profile.SyscallCost > 0
}

// zero reports whether the profile requires any shaping at all.
func (p LinkProfile) zero() bool {
	return p.PropDelay == 0 && p.Jitter == 0 && p.Loss == 0 && p.Bandwidth == 0 &&
		p.SendCost == 0 && p.SyscallCost == 0 && p.Egress == nil
}

// needsDelayLine reports whether deliveries must be scheduled in time.
func (p LinkProfile) needsDelayLine() bool {
	return p.PropDelay > 0 || p.Jitter > 0 || p.Bandwidth > 0 || p.Egress != nil
}

// Shape wraps c so that events sent through it experience the profile.
// Receiving is unaffected; wrap both ends for a symmetric link. If the
// profile is zero the conn is returned unchanged.
func Shape(c Conn, p LinkProfile) Conn {
	if p.zero() {
		return c
	}
	seed := p.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	s := &shapedConn{
		inner:   c,
		profile: p,
		rng:     rand.New(rand.NewPCG(seed, seed^0xDEADBEEF)),
	}
	if p.needsDelayLine() {
		s.line = newDelayLine(c)
	}
	if fc, ok := c.(FrameConn); ok {
		return &shapedFrameConn{shapedConn: s, fc: fc}
	}
	return s
}

type shapedConn struct {
	inner   Conn
	profile LinkProfile
	line    *delayLine

	mu       sync.Mutex
	rng      *rand.Rand
	nextFree time.Time // token-bucket head for bandwidth serialization
}

var _ Conn = (*shapedConn)(nil)

func (s *shapedConn) Send(e *event.Event) error {
	if s.profile.SyscallCost > 0 {
		spinWait(s.profile.SyscallCost)
	}
	return s.sendOne(e, nil)
}

// sendOne applies the per-event shaping — loss, per-event host cost,
// delay scheduling — shared by Send and SendEvents. When collect is
// non-nil and the profile needs no delay line, surviving events are
// appended there (for a single batched forward) instead of being sent.
func (s *shapedConn) sendOne(e *event.Event, collect *[]*event.Event) error {
	p := s.profile
	if p.Loss > 0 {
		s.mu.Lock()
		drop := s.rng.Float64() < p.Loss
		s.mu.Unlock()
		if drop {
			return nil
		}
	}
	if p.SendCost > 0 {
		spinWait(p.SendCost)
	}
	if s.line == nil {
		if collect != nil {
			*collect = append(*collect, e)
			return nil
		}
		return s.inner.Send(e)
	}
	now := time.Now()
	due := now
	size := len(e.Payload) + 64
	if p.Bandwidth > 0 {
		tx := time.Duration(float64(size) / float64(p.Bandwidth) * float64(time.Second))
		s.mu.Lock()
		start := s.nextFree
		if start.Before(now) {
			start = now
		}
		s.nextFree = start.Add(tx)
		due = s.nextFree
		s.mu.Unlock()
	}
	if p.Egress != nil {
		if t := p.Egress.reserve(now, size); t.After(due) {
			due = t
		}
	}
	due = due.Add(p.PropDelay)
	if p.Jitter > 0 {
		s.mu.Lock()
		j := time.Duration(s.rng.Int64N(int64(p.Jitter)))
		s.mu.Unlock()
		due = due.Add(j)
	}
	return s.line.push(e, due)
}

var _ EventBatchConn = (*shapedConn)(nil)

// SendEvents transmits a batch through the emulated link: the fixed
// SyscallCost is charged once for the whole call (the point of batching)
// while loss, per-event host cost and delay scheduling still apply per
// event. Survivors are forwarded in one call when the inner conn batches.
func (s *shapedConn) SendEvents(events []*event.Event) error {
	p := s.profile
	if p.SyscallCost > 0 {
		spinWait(p.SyscallCost)
	}
	if s.line != nil {
		for _, e := range events {
			if err := s.sendOne(e, nil); err != nil {
				return err
			}
		}
		return nil
	}
	surviving := make([]*event.Event, 0, len(events))
	for _, e := range events {
		if err := s.sendOne(e, &surviving); err != nil {
			return err
		}
	}
	if len(surviving) == 0 {
		return nil
	}
	if bc, ok := s.inner.(EventBatchConn); ok {
		return bc.SendEvents(surviving)
	}
	for _, e := range surviving {
		if err := s.inner.Send(e); err != nil {
			return err
		}
	}
	return nil
}

func (s *shapedConn) Recv() (*event.Event, error) { return s.inner.Recv() }

var _ BurstConn = (*shapedConn)(nil)

// RecvBurst passes burst receives through (receiving is never shaped;
// wrap both ends for a symmetric link), degrading to single-event
// delivery when the inner conn cannot burst.
func (s *shapedConn) RecvBurst(dst []*event.Event, max int) ([]*event.Event, error) {
	if bc, ok := s.inner.(BurstConn); ok {
		return bc.RecvBurst(dst, max)
	}
	e, err := s.inner.Recv()
	if err != nil {
		return dst, err
	}
	return append(dst, e), nil
}

// shapedFrameConn preserves the inner conn's FrameConn capability so
// shaped wire links still ride the encode-once batch path. The frame
// path models loss and host costs (per-frame SendCost, per-call
// SyscallCost); the delay line and bandwidth bucket apply only to the
// decoded-event path, which is the one the emulated experiments shape.
type shapedFrameConn struct {
	*shapedConn
	fc FrameConn
}

var _ FrameConn = (*shapedFrameConn)(nil)

func (s *shapedFrameConn) SendFrames(frames [][]byte) error {
	p := s.profile
	if p.SyscallCost > 0 {
		spinWait(p.SyscallCost)
	}
	if p.Loss == 0 && p.SendCost == 0 {
		return s.fc.SendFrames(frames)
	}
	surviving := make([][]byte, 0, len(frames))
	for _, f := range frames {
		if p.Loss > 0 {
			s.mu.Lock()
			drop := s.rng.Float64() < p.Loss
			s.mu.Unlock()
			if drop {
				continue
			}
		}
		if p.SendCost > 0 {
			spinWait(p.SendCost)
		}
		surviving = append(surviving, f)
	}
	if len(surviving) == 0 {
		return nil
	}
	return s.fc.SendFrames(surviving)
}

func (s *shapedConn) Close() error {
	if s.line != nil {
		s.line.stop()
	}
	return s.inner.Close()
}

func (s *shapedConn) Label() string { return s.inner.Label() }

// delayLine delivers events to an inner conn at their due time, preserving
// due-time order (ties broken by arrival order).
type delayLine struct {
	inner Conn
	in    chan timedEvent
	done  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
	seq   atomic.Uint64
}

type timedEvent struct {
	e   *event.Event
	due time.Time
	seq uint64
}

func newDelayLine(inner Conn) *delayLine {
	l := &delayLine{
		inner: inner,
		in:    make(chan timedEvent, 4096),
		done:  make(chan struct{}),
	}
	l.wg.Add(1)
	go l.run()
	return l
}

func (l *delayLine) push(e *event.Event, due time.Time) error {
	te := timedEvent{e: e, due: due, seq: l.seq.Add(1)}
	select {
	case l.in <- te:
		return nil
	case <-l.done:
		return ErrClosed
	}
}

func (l *delayLine) stop() {
	l.once.Do(func() { close(l.done) })
	l.wg.Wait()
}

func (l *delayLine) run() {
	defer l.wg.Done()
	var q timedHeap
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		// Deliver everything due.
		now := time.Now()
		for q.Len() > 0 && !q[0].due.After(now) {
			te := heap.Pop(&q).(timedEvent)
			if err := l.inner.Send(te.e); err != nil {
				return // downstream closed
			}
			now = time.Now()
		}
		if q.Len() == 0 {
			select {
			case te := <-l.in:
				heap.Push(&q, te)
			case <-l.done:
				return
			}
			continue
		}
		wait := time.Until(q[0].due)
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case te := <-l.in:
			heap.Push(&q, te)
		case <-timer.C:
		case <-l.done:
			return
		}
	}
}

type timedHeap []timedEvent

func (h timedHeap) Len() int { return len(h) }
func (h timedHeap) Less(i, j int) bool {
	if h[i].due.Equal(h[j].due) {
		return h[i].seq < h[j].seq
	}
	return h[i].due.Before(h[j].due)
}
func (h timedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timedHeap) Push(x any)   { *h = append(*h, x.(timedEvent)) }
func (h *timedHeap) Pop() any {
	old := *h
	n := len(old)
	te := old[n-1]
	*h = old[:n-1]
	return te
}

// spinWait blocks for approximately d. Durations below the sleep
// granularity are busy-waited so that the emulated host cost actually
// occupies the calling goroutine (and a CPU), as the modelled 2003-era
// send path did.
const sleepGranularity = 200 * time.Microsecond

func spinWait(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > sleepGranularity {
		time.Sleep(d - sleepGranularity/2)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
