// Package transport provides the links the broker network and its clients
// communicate over. Three transports are implemented, selected by URL
// scheme:
//
//   - mem://name — in-process pipes through a Network registry
//   - tcp://host:port — length-framed events over TCP
//   - udp://host:port — one event per datagram
//
// A Shaper can wrap any Conn to emulate link properties (propagation
// delay, jitter, loss, bandwidth) and per-send host service cost. The
// Figure 3 experiment uses shaped mem links so that both the broker and
// the JMF-reflector baseline run over identical emulated conditions.
package transport

import (
	"errors"
	"fmt"
	"net/url"
	"strings"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// Transport errors.
var (
	// ErrClosed is returned by operations on a closed Conn or Listener.
	ErrClosed = errors.New("transport: closed")
	// ErrTooLarge is returned when an event exceeds the transport's
	// datagram or frame budget.
	ErrTooLarge = errors.New("transport: event too large")
)

// Conn is a bidirectional, message-oriented link carrying events.
// Send may be called concurrently; Recv must be called from one goroutine.
type Conn interface {
	// Send transmits one event. It may block for backpressure or shaping.
	Send(e *event.Event) error
	// Recv blocks until an event arrives or the conn closes (ErrClosed).
	Recv() (*event.Event, error)
	// Close releases the conn; pending and future operations fail with
	// ErrClosed. Close is idempotent.
	Close() error
	// Label describes the remote end for logs ("mem:b1", "tcp:1.2.3.4:5").
	Label() string
}

// Listener accepts inbound conns.
type Listener interface {
	// Accept blocks until a conn arrives or the listener closes.
	Accept() (Conn, error)
	// Close stops the listener. Idempotent.
	Close() error
	// Addr returns the listener's dialable URL.
	Addr() string
}

// Dial connects to a transport URL using the default in-process Network
// for mem:// addresses.
func Dial(rawURL string) (Conn, error) {
	return DefaultNetwork.Dial(rawURL)
}

// Listen starts a listener on a transport URL using the default
// in-process Network for mem:// addresses.
func Listen(rawURL string) (Listener, error) {
	return DefaultNetwork.Listen(rawURL)
}

// Dial connects to a transport URL.
func (n *Network) Dial(rawURL string) (Conn, error) {
	scheme, rest, err := splitURL(rawURL)
	if err != nil {
		return nil, err
	}
	switch scheme {
	case "mem":
		return n.dialMem(rest)
	case "tcp":
		return dialTCP(rest)
	case "udp":
		return dialUDP(rest)
	default:
		return nil, fmt.Errorf("transport: unknown scheme %q in %q", scheme, rawURL)
	}
}

// Listen starts a listener on a transport URL.
func (n *Network) Listen(rawURL string) (Listener, error) {
	scheme, rest, err := splitURL(rawURL)
	if err != nil {
		return nil, err
	}
	switch scheme {
	case "mem":
		return n.listenMem(rest)
	case "tcp":
		return listenTCP(rest)
	case "udp":
		return listenUDP(rest)
	default:
		return nil, fmt.Errorf("transport: unknown scheme %q in %q", scheme, rawURL)
	}
}

func splitURL(rawURL string) (scheme, rest string, err error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return "", "", fmt.Errorf("transport: parsing %q: %w", rawURL, err)
	}
	if u.Scheme == "" {
		return "", "", fmt.Errorf("transport: missing scheme in %q", rawURL)
	}
	rest = u.Host
	if rest == "" {
		// mem://name parses name as host; mem:name parses as opaque.
		rest = strings.TrimPrefix(u.Opaque, "//")
	}
	if rest == "" {
		return "", "", fmt.Errorf("transport: missing address in %q", rawURL)
	}
	return u.Scheme, rest, nil
}
