package transport

import (
	"github.com/globalmmcs/globalmmcs/internal/event"
)

// FrameConn is a Conn that can transmit pre-encoded event frames, many
// per system call. Wire transports (tcp, udp) implement it; in-process
// pipes do not (they move decoded events by pointer, so there is nothing
// to batch). A broker session writer detects FrameConn once at startup
// and switches from per-event Send to encode-once, vectored output.
type FrameConn interface {
	Conn
	// SendFrames transmits the given encoded events. Implementations
	// issue as few system calls as possible (one vectored write for a
	// stream transport, one datagram per frame for a datagram
	// transport). The frame slices are read-only and must not be
	// retained after the call returns.
	SendFrames(frames [][]byte) error
}

// BurstConn is a Conn whose receive path can yield every event already
// buffered in one call — the inbound mirror of SendFrames. A broker
// session reader detects BurstConn once at attach and switches from
// event-at-a-time Recv to burst ingest, amortizing routing and queueing
// work across everything one read (or one batch from the peer's
// Batcher) delivered.
type BurstConn interface {
	Conn
	// RecvBurst appends decoded events to dst and returns the extended
	// slice. It blocks until at least one event is available, then
	// drains — without further blocking — whatever is already decodable,
	// up to max events total. Like Recv it must be called from a single
	// goroutine; errors are returned only when no events were decoded
	// (a burst cut short by an error resurfaces it on the next call).
	RecvBurst(dst []*event.Event, max int) ([]*event.Event, error)
}

// EventBatchConn is a Conn that can accept many decoded events per send
// call. In-process pipes implement it (events move by pointer, so a
// "batch" is one bookkeeping call rather than one per event); shaped
// conns forward it so link emulation can charge per-call syscall cost
// once per batch — which is how mem:// experiments reproduce the
// batching win instead of bypassing it.
type EventBatchConn interface {
	Conn
	// SendEvents transmits the events in order. The slice is read-only
	// and must not be retained after the call returns.
	SendEvents(events []*event.Event) error
}

// TryEventBatchConn is an EventBatchConn whose batch sends can also be
// attempted without blocking: TrySendEvents transmits the largest
// prefix the conn can absorb right now — nothing unless at least min
// events fit — and reports how many were sent (0 with a nil error =
// not enough room, keep and retry). Shared writer pools require this
// on conns that otherwise block on consumer backpressure — one stalled
// send would head-of-line-block every session the pool goroutine
// serves.
type TryEventBatchConn interface {
	EventBatchConn
	TrySendEvents(events []*event.Event, min int) (int, error)
}

// Batcher accumulates encoded event frames destined for one FrameConn
// and flushes them with a single vectored write. It is the broker data
// path's outbound aggregation buffer: the session writer drains its send
// queue into the batcher and flushes on size, on lane policy, or on
// idle. Not safe for concurrent use — each session writer owns one.
type Batcher struct {
	fc       FrameConn
	frames   [][]byte
	bytes    int
	maxBytes int
	// arena is the reusable backing store of AddEventInPlace frames; it
	// is reset at each flush, so steady-state in-place batching performs
	// no per-event allocation.
	arena []byte
}

// DefaultMaxBatchBytes bounds a batch when callers pass maxBytes <= 0.
// 256 KiB amortises syscall cost across ~200 MTU-sized media events
// while keeping per-session buffering bounded.
const DefaultMaxBatchBytes = 256 << 10

// NewBatcher creates a batcher writing to fc. maxBytes <= 0 uses
// DefaultMaxBatchBytes.
func NewBatcher(fc FrameConn, maxBytes int) *Batcher {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBatchBytes
	}
	return &Batcher{fc: fc, maxBytes: maxBytes}
}

// Add queues one encoded frame, flushing first if the batch would exceed
// the size bound. The frame must stay immutable until after Flush.
func (b *Batcher) Add(frame []byte) error {
	if b.bytes > 0 && b.bytes+len(frame) > b.maxBytes {
		if err := b.Flush(); err != nil {
			return err
		}
	}
	b.frames = append(b.frames, frame)
	b.bytes += len(frame)
	if b.bytes >= b.maxBytes {
		return b.Flush()
	}
	return nil
}

// AddEvent marshals e and queues the encoding.
func (b *Batcher) AddEvent(e *event.Event) error {
	return b.Add(event.Marshal(e))
}

// AddEventInPlace marshals e into the batcher's reusable arena — no
// per-event allocation in steady state — and queues the frame. When the
// new frame would overflow the size bound, the pending batch is flushed
// first (so the arena only ever holds frames of the current batch).
func (b *Batcher) AddEventInPlace(e *event.Event) error {
	// Size estimate mirrors event.Marshal's; headers (rare on the media
	// publish path) may push past it, which only makes a batch slightly
	// larger than the bound.
	need := 64 + len(e.Topic) + len(e.Source) + len(e.Payload)
	if b.bytes > 0 && b.bytes+need > b.maxBytes {
		if err := b.Flush(); err != nil {
			return err
		}
	}
	start := len(b.arena)
	b.arena = event.AppendMarshal(b.arena, e)
	frame := b.arena[start:len(b.arena):len(b.arena)]
	b.frames = append(b.frames, frame)
	b.bytes += len(frame)
	if b.bytes >= b.maxBytes {
		return b.Flush()
	}
	return nil
}

// Pending returns the number of queued frames awaiting Flush.
func (b *Batcher) Pending() int { return len(b.frames) }

// PendingBytes returns the byte size of the queued frames.
func (b *Batcher) PendingBytes() int { return b.bytes }

// Flush writes all queued frames in one vectored send. A flush with no
// pending frames is a no-op.
func (b *Batcher) Flush() error {
	if len(b.frames) == 0 {
		return nil
	}
	err := b.fc.SendFrames(b.frames)
	for i := range b.frames {
		b.frames[i] = nil
	}
	b.frames = b.frames[:0]
	b.bytes = 0
	b.arena = b.arena[:0]
	return err
}
