package transport

import (
	"bytes"
	"sync"
	"testing"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// fakeFrameConn records SendFrames calls for batcher assertions.
type fakeFrameConn struct {
	mu      sync.Mutex
	flushes [][][]byte
}

func (f *fakeFrameConn) SendFrames(frames [][]byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := make([][]byte, len(frames))
	for i, fr := range frames {
		cp[i] = append([]byte(nil), fr...)
	}
	f.flushes = append(f.flushes, cp)
	return nil
}

func (f *fakeFrameConn) Send(*event.Event) error     { return nil }
func (f *fakeFrameConn) Recv() (*event.Event, error) { return nil, ErrClosed }
func (f *fakeFrameConn) Close() error                { return nil }
func (f *fakeFrameConn) Label() string               { return "fake" }
func (f *fakeFrameConn) flushCount() int             { f.mu.Lock(); defer f.mu.Unlock(); return len(f.flushes) }
func (f *fakeFrameConn) frames(i int) [][]byte       { f.mu.Lock(); defer f.mu.Unlock(); return f.flushes[i] }

func TestBatcherAccumulatesUntilFlush(t *testing.T) {
	fc := &fakeFrameConn{}
	b := NewBatcher(fc, 1<<20)
	f1 := []byte("frame-one")
	f2 := []byte("frame-two!")
	if err := b.Add(f1); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(f2); err != nil {
		t.Fatal(err)
	}
	if fc.flushCount() != 0 {
		t.Fatal("batcher flushed before Flush")
	}
	if b.Pending() != 2 || b.PendingBytes() != len(f1)+len(f2) {
		t.Fatalf("pending = %d/%dB", b.Pending(), b.PendingBytes())
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if fc.flushCount() != 1 {
		t.Fatalf("flushes = %d, want 1", fc.flushCount())
	}
	got := fc.frames(0)
	if len(got) != 2 || !bytes.Equal(got[0], f1) || !bytes.Equal(got[1], f2) {
		t.Fatalf("flushed frames = %q", got)
	}
	if b.Pending() != 0 || b.PendingBytes() != 0 {
		t.Fatal("batcher not reset after flush")
	}
}

func TestBatcherFlushesOnMaxBytes(t *testing.T) {
	fc := &fakeFrameConn{}
	b := NewBatcher(fc, 32)
	frame := make([]byte, 12)
	for i := 0; i < 3; i++ {
		if err := b.Add(frame); err != nil {
			t.Fatal(err)
		}
	}
	// 12+12 fits under 32; the third add would exceed, so the first two
	// flush together and the third waits.
	if fc.flushCount() != 1 {
		t.Fatalf("flushes = %d, want 1", fc.flushCount())
	}
	if len(fc.frames(0)) != 2 {
		t.Fatalf("first flush carried %d frames, want 2", len(fc.frames(0)))
	}
	if b.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", b.Pending())
	}
}

func TestBatcherOversizedFrameFlushesImmediately(t *testing.T) {
	fc := &fakeFrameConn{}
	b := NewBatcher(fc, 16)
	if err := b.Add(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	// A single frame above maxBytes is sent alone, immediately.
	if fc.flushCount() != 1 || b.Pending() != 0 {
		t.Fatalf("flushes=%d pending=%d", fc.flushCount(), b.Pending())
	}
}

func TestBatcherEmptyFlushNoop(t *testing.T) {
	fc := &fakeFrameConn{}
	b := NewBatcher(fc, 0)
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if fc.flushCount() != 0 {
		t.Fatal("empty flush reached the conn")
	}
}

func TestBatcherAddEvent(t *testing.T) {
	fc := &fakeFrameConn{}
	b := NewBatcher(fc, 0)
	e := event.New("/t/x", event.KindData, []byte("hello"))
	if err := b.AddEvent(e); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	dec, err := event.Unmarshal(fc.frames(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	if dec.Topic != "/t/x" || string(dec.Payload) != "hello" {
		t.Fatalf("decoded %+v", dec)
	}
}

// TestTCPSendFramesRoundTrip sends a mixed batch over a real loopback
// socket and verifies every frame decodes in order on the far side.
func TestTCPSendFramesRoundTrip(t *testing.T) {
	l, err := Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialed, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dialed.Close()
	server := <-accepted
	defer server.Close()

	fc, ok := dialed.(FrameConn)
	if !ok {
		t.Fatal("tcp conn does not implement FrameConn")
	}
	var frames [][]byte
	for i := 0; i < 10; i++ {
		e := event.New("/batch/x", event.KindRTP, bytes.Repeat([]byte{byte(i)}, 100+i))
		e.Source = "s"
		e.ID = uint64(i + 1)
		frames = append(frames, event.Marshal(e))
	}
	// Interleave a buffered Send with SendFrames to check ordering.
	first := event.New("/batch/first", event.KindData, nil)
	first.Source = "s"
	first.ID = 100
	if err := dialed.Send(first); err != nil {
		t.Fatal(err)
	}
	if err := fc.SendFrames(frames); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Topic != "/batch/first" {
		t.Fatalf("first event out of order: %s", got.Topic)
	}
	for i := 0; i < 10; i++ {
		got, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != uint64(i+1) || len(got.Payload) != 100+i {
			t.Fatalf("frame %d decoded as id=%d len=%d", i, got.ID, len(got.Payload))
		}
	}
}

// TestUDPSendFramesRoundTrip verifies the datagram FrameConn path.
func TestUDPSendFramesRoundTrip(t *testing.T) {
	l, err := Listen("udp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	dialed, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dialed.Close()
	fc := dialed.(FrameConn)

	var frames [][]byte
	for i := 0; i < 5; i++ {
		e := event.New("/udp/batch", event.KindRTP, []byte{byte(i)})
		e.Source = "s"
		e.ID = uint64(i + 1)
		frames = append(frames, event.Marshal(e))
	}
	if err := fc.SendFrames(frames); err != nil {
		t.Fatal(err)
	}
	accepted, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer accepted.Close()
	seen := map[uint64]bool{}
	for i := 0; i < 5; i++ {
		got, err := accepted.Recv()
		if err != nil {
			t.Fatal(err)
		}
		seen[got.ID] = true
	}
	for i := uint64(1); i <= 5; i++ {
		if !seen[i] {
			t.Fatalf("datagram %d lost on loopback", i)
		}
	}
}
