package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// maxDatagram is the largest event datagram we send. RTP media packets are
// packetized well under a WAN-safe MTU; 60 KiB leaves room for control
// events while staying inside a single UDP datagram.
const maxDatagram = 60 << 10

// udpDialConn is the client end of a UDP association: a connected socket
// exchanging one event per datagram with a udpListener.
type udpDialConn struct {
	pc        *net.UDPConn
	writeMu   sync.Mutex
	wbuf      []byte
	closeOnce sync.Once
	closeErr  error
}

var _ Conn = (*udpDialConn)(nil)

func dialUDP(addr string) (Conn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolving udp %s: %w", addr, err)
	}
	pc, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing udp %s: %w", addr, err)
	}
	return &udpDialConn{pc: pc}, nil
}

func (c *udpDialConn) Send(e *event.Event) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.wbuf = event.AppendMarshal(c.wbuf[:0], e)
	if len(c.wbuf) > maxDatagram {
		return fmt.Errorf("%w: %d bytes over udp", ErrTooLarge, len(c.wbuf))
	}
	if _, err := c.pc.Write(c.wbuf); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return fmt.Errorf("transport: udp send: %w", err)
	}
	return nil
}

var _ FrameConn = (*udpDialConn)(nil)

// SendFrames transmits one datagram per encoded event.
func (c *udpDialConn) SendFrames(frames [][]byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	for _, f := range frames {
		if len(f) > maxDatagram {
			return fmt.Errorf("%w: %d bytes over udp", ErrTooLarge, len(f))
		}
		if _, err := c.pc.Write(f); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return ErrClosed
			}
			return fmt.Errorf("transport: udp send: %w", err)
		}
	}
	return nil
}

func (c *udpDialConn) Recv() (*event.Event, error) {
	buf := make([]byte, maxDatagram)
	for {
		n, err := c.pc.Read(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil, ErrClosed
			}
			return nil, fmt.Errorf("transport: udp recv: %w", err)
		}
		e, err := event.Unmarshal(buf[:n:n])
		if err != nil {
			continue // drop malformed datagrams, as a real media port would
		}
		buf = make([]byte, maxDatagram)
		return e, nil
	}
}

func (c *udpDialConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.pc.Close() })
	return c.closeErr
}

func (c *udpDialConn) Label() string { return "udp:" + c.pc.RemoteAddr().String() }

// udpListener demultiplexes datagrams from one socket into per-remote
// virtual conns, surfacing each new remote through Accept.
type udpListener struct {
	pc      *net.UDPConn
	backlog chan Conn
	done    chan struct{}
	once    sync.Once

	mu    sync.Mutex
	conns map[string]*udpServerConn

	wg sync.WaitGroup
}

var _ Listener = (*udpListener)(nil)

func listenUDP(addr string) (Listener, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolving udp %s: %w", addr, err)
	}
	pc, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listening udp %s: %w", addr, err)
	}
	l := &udpListener{
		pc:      pc,
		backlog: make(chan Conn, 64),
		done:    make(chan struct{}),
		conns:   make(map[string]*udpServerConn),
	}
	l.wg.Add(1)
	go l.readLoop()
	return l, nil
}

func (l *udpListener) readLoop() {
	defer l.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, raddr, err := l.pc.ReadFromUDP(buf)
		if err != nil {
			l.closeAllConns()
			return
		}
		e, err := event.Unmarshal(buf[:n:n])
		if err != nil {
			continue
		}
		// The decode aliases buf; copy out before reuse.
		e = e.Clone()
		key := raddr.String()
		l.mu.Lock()
		c, ok := l.conns[key]
		if !ok {
			c = &udpServerConn{
				listener: l,
				raddr:    raddr,
				recvCh:   make(chan *event.Event, 256),
				done:     make(chan struct{}),
			}
			l.conns[key] = c
			l.mu.Unlock()
			select {
			case l.backlog <- c:
			case <-l.done:
				return
			}
		} else {
			l.mu.Unlock()
		}
		select {
		case c.recvCh <- e:
		default:
			// Receiver is slow; drop like a kernel socket buffer would.
		}
	}
}

func (l *udpListener) closeAllConns() {
	l.mu.Lock()
	conns := make([]*udpServerConn, 0, len(l.conns))
	for _, c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, c := range conns {
		c.closeLocal()
	}
}

func (l *udpListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *udpListener) Close() error {
	var err error
	l.once.Do(func() {
		close(l.done)
		err = l.pc.Close()
		l.wg.Wait()
	})
	return err
}

func (l *udpListener) Addr() string { return "udp://" + l.pc.LocalAddr().String() }

func (l *udpListener) removeConn(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.conns, key)
}

// udpServerConn is the server-side virtual conn for one remote address.
type udpServerConn struct {
	listener *udpListener
	raddr    *net.UDPAddr
	recvCh   chan *event.Event
	done     chan struct{}
	once     sync.Once

	writeMu sync.Mutex
	wbuf    []byte
}

var _ Conn = (*udpServerConn)(nil)

func (c *udpServerConn) Send(e *event.Event) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.wbuf = event.AppendMarshal(c.wbuf[:0], e)
	if len(c.wbuf) > maxDatagram {
		return fmt.Errorf("%w: %d bytes over udp", ErrTooLarge, len(c.wbuf))
	}
	if _, err := c.listener.pc.WriteToUDP(c.wbuf, c.raddr); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return fmt.Errorf("transport: udp send to %s: %w", c.raddr, err)
	}
	return nil
}

var _ FrameConn = (*udpServerConn)(nil)

// SendFrames transmits one datagram per encoded event.
func (c *udpServerConn) SendFrames(frames [][]byte) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	for _, f := range frames {
		if len(f) > maxDatagram {
			return fmt.Errorf("%w: %d bytes over udp", ErrTooLarge, len(f))
		}
		if _, err := c.listener.pc.WriteToUDP(f, c.raddr); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return ErrClosed
			}
			return fmt.Errorf("transport: udp send to %s: %w", c.raddr, err)
		}
	}
	return nil
}

func (c *udpServerConn) Recv() (*event.Event, error) {
	select {
	case e := <-c.recvCh:
		return e, nil
	case <-c.done:
		select {
		case e := <-c.recvCh:
			return e, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *udpServerConn) Close() error {
	c.closeLocal()
	c.listener.removeConn(c.raddr.String())
	return nil
}

func (c *udpServerConn) closeLocal() {
	c.once.Do(func() { close(c.done) })
}

func (c *udpServerConn) Label() string { return "udp:" + c.raddr.String() }
