package transport

import (
	"fmt"
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// memQueueDepth is the per-direction buffer of an in-process pipe. Deep
// enough to absorb fan-out bursts; senders block beyond it (backpressure),
// mirroring a kernel socket buffer.
const memQueueDepth = 1024

// Network is an in-process namespace for mem:// listeners. The zero value
// is ready to use. Tests create isolated Networks; production code uses
// DefaultNetwork via Dial/Listen.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// DefaultNetwork backs the package-level Dial and Listen for mem://
// addresses.
var DefaultNetwork = &Network{}

func (n *Network) listenMem(name string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listeners == nil {
		n.listeners = make(map[string]*memListener)
	}
	if _, exists := n.listeners[name]; exists {
		return nil, fmt.Errorf("transport: mem address %q already in use", name)
	}
	l := &memListener{
		net:     n,
		name:    name,
		backlog: make(chan Conn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[name] = l
	return l, nil
}

func (n *Network) dialMem(name string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[name]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no mem listener at %q", name)
	}
	client, server := Pipe("mem:"+name, "mem:client")
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (n *Network) remove(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.listeners, name)
}

type memListener struct {
	net     *Network
	name    string
	backlog chan Conn
	done    chan struct{}
	once    sync.Once
}

var _ Listener = (*memListener)(nil)

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.remove(l.name)
	})
	return nil
}

func (l *memListener) Addr() string { return "mem://" + l.name }

// memConn is one end of an in-process pipe.
type memConn struct {
	label string
	send  chan *event.Event
	recv  chan *event.Event
	// done is shared by both ends: closing either end closes the pipe.
	done *pipeDone
}

type pipeDone struct {
	ch   chan struct{}
	once sync.Once
}

func (d *pipeDone) close() { d.once.Do(func() { close(d.ch) }) }

var _ Conn = (*memConn)(nil)

// Pipe returns a connected pair of in-process conns. aLabel names the
// remote seen from the first conn and vice versa.
func Pipe(aLabel, bLabel string) (Conn, Conn) {
	ab := make(chan *event.Event, memQueueDepth)
	ba := make(chan *event.Event, memQueueDepth)
	done := &pipeDone{ch: make(chan struct{})}
	a := &memConn{label: aLabel, send: ab, recv: ba, done: done}
	b := &memConn{label: bLabel, send: ba, recv: ab, done: done}
	return a, b
}

func (c *memConn) Send(e *event.Event) error {
	select {
	case <-c.done.ch:
		return ErrClosed
	default:
	}
	select {
	case c.send <- e:
		return nil
	case <-c.done.ch:
		return ErrClosed
	}
}

func (c *memConn) Recv() (*event.Event, error) {
	// Drain buffered events even after close so in-flight traffic is not
	// lost on graceful shutdown.
	select {
	case e := <-c.recv:
		return e, nil
	default:
	}
	select {
	case e := <-c.recv:
		return e, nil
	case <-c.done.ch:
		// Race: an event may have been buffered concurrently with close.
		select {
		case e := <-c.recv:
			return e, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *memConn) Close() error {
	c.done.close()
	return nil
}

func (c *memConn) Label() string { return c.label }
