package transport

import (
	"fmt"
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// memQueueDepth is the per-direction buffer of an in-process pipe, in
// events (a pipeSem keeps the accounting event-granular even though a
// SendEvents batch travels as one message). Deep enough to absorb
// fan-out bursts; senders block beyond it (backpressure), mirroring a
// kernel socket buffer.
const memQueueDepth = 1024

// Network is an in-process namespace for mem:// listeners. The zero value
// is ready to use. Tests create isolated Networks; production code uses
// DefaultNetwork via Dial/Listen.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// DefaultNetwork backs the package-level Dial and Listen for mem://
// addresses.
var DefaultNetwork = &Network{}

func (n *Network) listenMem(name string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listeners == nil {
		n.listeners = make(map[string]*memListener)
	}
	if _, exists := n.listeners[name]; exists {
		return nil, fmt.Errorf("transport: mem address %q already in use", name)
	}
	l := &memListener{
		net:     n,
		name:    name,
		backlog: make(chan Conn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[name] = l
	return l, nil
}

func (n *Network) dialMem(name string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[name]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no mem listener at %q", name)
	}
	client, server := Pipe("mem:"+name, "mem:client")
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (n *Network) remove(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.listeners, name)
}

type memListener struct {
	net     *Network
	name    string
	backlog chan Conn
	done    chan struct{}
	once    sync.Once
}

var _ Listener = (*memListener)(nil)

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.remove(l.name)
	})
	return nil
}

func (l *memListener) Addr() string { return "mem://" + l.name }

// memMsg is one message on an in-process pipe: a single event (Send) or
// a whole batch handed over in one channel operation (SendEvents — the
// in-process analogue of a vectored write, paying one synchronization
// per batch instead of one per event). weight is the number of
// event-buffer slots the message occupies while in the pipe.
type memMsg struct {
	e      *event.Event
	batch  []*event.Event
	weight int
}

// pipeSem bounds the *events* in flight on one pipe direction. The
// message channel alone would count messages, and a batch message can
// carry hundreds of events — without this, batching would silently
// multiply the pipe's effective buffering instead of just amortizing
// its synchronization. Senders acquire one slot per event (one lock for
// a whole batch), the receiver releases them as messages are consumed.
type pipeSem struct {
	mu     sync.Mutex
	cond   *sync.Cond
	free   int
	closed bool
}

func newPipeSem(n int) *pipeSem {
	s := &pipeSem{free: n}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// acquire blocks until n slots are free or the pipe closes (false).
func (s *pipeSem) acquire(n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.free < n && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return false
	}
	s.free -= n
	return true
}

// tryAcquire claims up to n slots without waiting, returning how many
// were claimed — 0 when the pipe is closed or fewer than floor slots
// are free (a floor keeps callers from degenerating into many tiny
// sends while a consumer drains slowly).
func (s *pipeSem) tryAcquire(n, floor int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.free < max(1, floor) {
		return 0
	}
	if n > s.free {
		n = s.free
	}
	s.free -= n
	return n
}

func (s *pipeSem) release(n int) {
	s.mu.Lock()
	s.free += n
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *pipeSem) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// memConn is one end of an in-process pipe.
type memConn struct {
	label string
	send  chan memMsg
	recv  chan memMsg
	// sendSem bounds events in flight on the send direction; recvSem is
	// the peer's, released as this end consumes messages.
	sendSem *pipeSem
	recvSem *pipeSem
	// pending holds the undelivered tail of a received batch. Only the
	// single receive goroutine (Recv/RecvBurst) touches it.
	pending []*event.Event
	pi      int
	// done is shared by both ends: closing either end closes the pipe.
	done *pipeDone
}

type pipeDone struct {
	ch   chan struct{}
	once sync.Once
	sems []*pipeSem
}

func (d *pipeDone) close() {
	d.once.Do(func() {
		close(d.ch)
		for _, s := range d.sems {
			s.close()
		}
	})
}

var _ Conn = (*memConn)(nil)

// Pipe returns a connected pair of in-process conns. aLabel names the
// remote seen from the first conn and vice versa.
func Pipe(aLabel, bLabel string) (Conn, Conn) {
	ab := make(chan memMsg, memQueueDepth)
	ba := make(chan memMsg, memQueueDepth)
	abSem := newPipeSem(memQueueDepth)
	baSem := newPipeSem(memQueueDepth)
	done := &pipeDone{ch: make(chan struct{}), sems: []*pipeSem{abSem, baSem}}
	a := &memConn{label: aLabel, send: ab, recv: ba, sendSem: abSem, recvSem: baSem, done: done}
	b := &memConn{label: bLabel, send: ba, recv: ab, sendSem: baSem, recvSem: abSem, done: done}
	return a, b
}

func (c *memConn) Send(e *event.Event) error {
	return c.sendMsg(memMsg{e: e, weight: 1})
}

func (c *memConn) sendMsg(m memMsg) error {
	if !c.sendSem.acquire(m.weight) {
		return ErrClosed
	}
	// Every in-channel message holds at least one event slot, so after a
	// successful acquire the channel (sized in messages) cannot be full;
	// the select guards only the close race.
	select {
	case c.send <- m:
		return nil
	case <-c.done.ch:
		return ErrClosed
	}
}

// takePending returns the next event of a partially consumed batch, or
// nil when none is pending.
func (c *memConn) takePending() *event.Event {
	if c.pi >= len(c.pending) {
		return nil
	}
	e := c.pending[c.pi]
	c.pending[c.pi] = nil
	c.pi++
	if c.pi == len(c.pending) {
		c.pending, c.pi = nil, 0
	}
	return e
}

// admit makes a received message's events available — singles are
// returned directly, batches park in pending — and returns the
// message's event slots to the sender.
func (c *memConn) admit(m memMsg) *event.Event {
	c.recvSem.release(m.weight)
	if m.e != nil {
		return m.e
	}
	c.pending, c.pi = m.batch, 0
	return c.takePending()
}

var _ EventBatchConn = (*memConn)(nil)

// SendEvents transmits the events in order as one pipe message: one
// channel synchronization for the whole batch — the in-process
// analogue of a vectored write, and what makes emulated experiments see
// the batching win for real. The slice is copied (the caller may reuse
// it); the events move by pointer as always.
func (c *memConn) SendEvents(events []*event.Event) error {
	for len(events) > 0 {
		// A batch larger than the whole pipe could never acquire; chunk it
		// (batches are normally far smaller than memQueueDepth).
		n := len(events)
		if n > memQueueDepth {
			n = memQueueDepth
		}
		batch := make([]*event.Event, n)
		copy(batch, events[:n])
		if err := c.sendMsg(memMsg{batch: batch, weight: n}); err != nil {
			return err
		}
		events = events[n:]
	}
	return nil
}

var _ TryEventBatchConn = (*memConn)(nil)

// TrySendEvents transmits the largest prefix of events the pipe can
// absorb without blocking, as one message, and returns how many were
// sent — nothing unless at least min fit (one message per few events
// would forfeit batching's synchronization amortization). 0 with a nil
// error means the pipe lacks the room right now — the caller keeps the
// batch and retries once the consumer drains. Shared writer pools use
// this so one slow in-process consumer cannot park the pool goroutine
// that every sibling session's egress rides on.
func (c *memConn) TrySendEvents(events []*event.Event, min int) (int, error) {
	if len(events) == 0 {
		return 0, nil
	}
	if min > len(events) {
		min = len(events)
	}
	n := c.sendSem.tryAcquire(len(events), min)
	if n == 0 {
		select {
		case <-c.done.ch:
			return 0, ErrClosed
		default:
			return 0, nil
		}
	}
	batch := make([]*event.Event, n)
	copy(batch, events[:n])
	select {
	case c.send <- memMsg{batch: batch, weight: n}:
		return n, nil
	case <-c.done.ch:
		return 0, ErrClosed
	}
}

var _ BurstConn = (*memConn)(nil)

// RecvBurst blocks for the first event, then drains—without blocking—
// whatever the pipe already buffered, up to max events.
func (c *memConn) RecvBurst(dst []*event.Event, max int) ([]*event.Event, error) {
	if max <= 0 {
		max = 1
	}
	got := 0
	for got < max {
		if e := c.takePending(); e != nil {
			dst = append(dst, e)
			got++
			continue
		}
		if got == 0 {
			e, err := c.Recv()
			if err != nil {
				return dst, err
			}
			dst = append(dst, e)
			got++
			continue
		}
		select {
		case m := <-c.recv:
			if e := c.admit(m); e != nil {
				dst = append(dst, e)
				got++
			}
		default:
			return dst, nil
		}
	}
	return dst, nil
}

func (c *memConn) Recv() (*event.Event, error) {
	for {
		if e := c.takePending(); e != nil {
			return e, nil
		}
		// Drain buffered messages even after close so in-flight traffic
		// is not lost on graceful shutdown.
		select {
		case m := <-c.recv:
			if e := c.admit(m); e != nil {
				return e, nil
			}
			continue
		default:
		}
		select {
		case m := <-c.recv:
			if e := c.admit(m); e != nil {
				return e, nil
			}
		case <-c.done.ch:
			// Race: a message may have been buffered concurrently with
			// close.
			select {
			case m := <-c.recv:
				if e := c.admit(m); e != nil {
					return e, nil
				}
			default:
				return nil, ErrClosed
			}
		}
	}
}

func (c *memConn) Close() error {
	c.done.close()
	return nil
}

func (c *memConn) Label() string { return c.label }
