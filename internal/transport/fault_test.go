package transport

import (
	"errors"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// drainPipe collects everything the peer conn receives until it closes.
func drainPipe(peer Conn) <-chan []*event.Event {
	out := make(chan []*event.Event, 1)
	go func() {
		var got []*event.Event
		for {
			e, err := peer.Recv()
			if err != nil {
				out <- got
				return
			}
			got = append(got, e)
		}
	}()
	return out
}

func faultSend(t *testing.T, c Conn, b byte) {
	t.Helper()
	if err := c.Send(event.New("/f/t", event.KindData, []byte{b})); err != nil {
		t.Fatalf("send %d: %v", b, err)
	}
}

func TestFaultDropBurst(t *testing.T) {
	a, peer := Pipe("a", "b")
	fc := InjectFaults(a, Fault{After: 2, Drop: 3})
	got := drainPipe(peer)
	for i := range 10 {
		faultSend(t, fc, byte(i))
	}
	fc.Close()
	events := <-got
	if len(events) != 7 {
		t.Fatalf("got %d events, want 7 (3 dropped)", len(events))
	}
	// The burst loses exactly sends 2,3,4 — the surviving payloads are
	// deterministic, not just the count.
	want := []byte{0, 1, 5, 6, 7, 8, 9}
	for i, e := range events {
		if e.Payload[0] != want[i] {
			t.Fatalf("event %d: payload %d, want %d", i, e.Payload[0], want[i])
		}
	}
	if fc.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", fc.Dropped())
	}
}

func TestFaultCut(t *testing.T) {
	a, peer := Pipe("a", "b")
	fc := InjectFaults(a, Fault{After: 1, Cut: true})
	got := drainPipe(peer)
	faultSend(t, fc, 0)
	if err := fc.Send(event.New("/f/t", event.KindData, []byte{1})); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after cut: %v, want ErrClosed", err)
	}
	if !fc.Killed() {
		t.Fatal("Killed() = false after scheduled cut")
	}
	// The peer observes the close: its receive loop ends.
	if events := <-got; len(events) != 1 {
		t.Fatalf("peer got %d events, want 1", len(events))
	}
	// Later sends stay dead.
	if err := fc.Send(event.New("/f/t", event.KindData, nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after kill: %v, want ErrClosed", err)
	}
}

func TestFaultStall(t *testing.T) {
	a, peer := Pipe("a", "b")
	const stall = 60 * time.Millisecond
	fc := InjectFaults(a, Fault{Stall: stall})
	if !fc.SendBlocks() {
		t.Fatal("SendBlocks() = false with a pending stall")
	}
	got := drainPipe(peer)
	start := time.Now()
	faultSend(t, fc, 0)
	if d := time.Since(start); d < stall {
		t.Fatalf("stalled send took %v, want >= %v", d, stall)
	}
	if fc.SendBlocks() {
		t.Fatal("SendBlocks() = true after the stall was consumed")
	}
	start = time.Now()
	faultSend(t, fc, 1)
	if d := time.Since(start); d >= stall {
		t.Fatalf("post-stall send took %v, want fast", d)
	}
	fc.Close()
	if events := <-got; len(events) != 2 {
		t.Fatalf("peer got %d events, want 2", len(events))
	}
}

func TestFaultScheduleComposes(t *testing.T) {
	a, peer := Pipe("a", "b")
	fc := InjectFaults(a,
		Fault{After: 2, Drop: 1},
		Fault{After: 1, Cut: true},
	)
	got := drainPipe(peer)
	// 2 clean, 1 dropped, 1 clean, then the cut.
	for i := range 4 {
		faultSend(t, fc, byte(i))
	}
	if err := fc.Send(event.New("/f/t", event.KindData, []byte{9})); !errors.Is(err, ErrClosed) {
		t.Fatalf("5th send: %v, want ErrClosed (cut)", err)
	}
	events := <-got
	want := []byte{0, 1, 3}
	if len(events) != len(want) {
		t.Fatalf("peer got %d events, want %d", len(events), len(want))
	}
	for i, e := range events {
		if e.Payload[0] != want[i] {
			t.Fatalf("event %d: payload %d, want %d", i, e.Payload[0], want[i])
		}
	}
}

func TestFaultKillOutOfBand(t *testing.T) {
	a, peer := Pipe("a", "b")
	fc := InjectFaults(a) // no schedule: Kill is choreography-driven
	got := drainPipe(peer)
	faultSend(t, fc, 0)
	fc.Kill()
	fc.Kill() // idempotent
	if err := fc.Send(event.New("/f/t", event.KindData, nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after Kill: %v, want ErrClosed", err)
	}
	if events := <-got; len(events) != 1 {
		t.Fatalf("peer got %d events, want 1", len(events))
	}
}

func TestFaultRecvPassthrough(t *testing.T) {
	a, peer := Pipe("a", "b")
	fc := InjectFaults(a, Fault{After: 0, Drop: 100})
	// The schedule only shapes the send path: receives pass through.
	if err := peer.Send(event.New("/f/r", event.KindData, []byte{42})); err != nil {
		t.Fatal(err)
	}
	e, err := fc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if e.Payload[0] != 42 {
		t.Fatalf("recv payload %d, want 42", e.Payload[0])
	}
	fc.Close()
}
