package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// tcpConn carries length-framed events over a stream socket. Frames are a
// 4-byte big-endian length followed by one encoded event.
type tcpConn struct {
	nc net.Conn
	br *bufio.Reader

	writeMu sync.Mutex
	bw      *bufio.Writer
	wbuf    []byte

	closeOnce sync.Once
	closeErr  error
}

var _ Conn = (*tcpConn)(nil)

func newTCPConn(nc net.Conn) *tcpConn {
	return &tcpConn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

func dialTCP(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing tcp %s: %w", addr, err)
	}
	return newTCPConn(nc), nil
}

func (c *tcpConn) Send(e *event.Event) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.wbuf = event.AppendMarshal(c.wbuf[:0], e)
	if len(c.wbuf) > event.MaxWireLen {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(c.wbuf))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(c.wbuf)))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return c.sendErr(err)
	}
	if _, err := c.bw.Write(c.wbuf); err != nil {
		return c.sendErr(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.sendErr(err)
	}
	return nil
}

func (c *tcpConn) sendErr(err error) error {
	return fmt.Errorf("transport: tcp send to %s: %w", c.Label(), err)
}

func (c *tcpConn) Recv() (*event.Event, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, c.recvErr(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > event.MaxWireLen {
		return nil, fmt.Errorf("transport: tcp frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, c.recvErr(err)
	}
	e, err := event.Unmarshal(buf)
	if err != nil {
		return nil, fmt.Errorf("transport: tcp decoding frame: %w", err)
	}
	return e, nil
}

func (c *tcpConn) recvErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrClosed
	}
	return fmt.Errorf("transport: tcp recv from %s: %w", c.Label(), err)
}

func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

func (c *tcpConn) Label() string { return "tcp:" + c.nc.RemoteAddr().String() }

type tcpListener struct {
	nl net.Listener
}

var _ Listener = (*tcpListener)(nil)

func listenTCP(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listening tcp %s: %w", addr, err)
	}
	return &tcpListener{nl: nl}, nil
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		if ne, ok := err.(net.Error); ok && !ne.Timeout() {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: tcp accept: %w", err)
	}
	return newTCPConn(nc), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }

func (l *tcpListener) Addr() string { return "tcp://" + l.nl.Addr().String() }
