package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// tcpConn carries length-framed events over a stream socket. Frames are a
// 4-byte big-endian length followed by one encoded event.
//
// The receive path reads straight from the socket into an arena chunk
// and decodes frames in place: decoded events alias the chunk, parsed
// regions are never overwritten (a new chunk is allocated once the
// current one fills, copying only the unparsed tail), so a sustained
// inbound stream costs one read syscall per ~200 events and zero
// user-space copies per payload byte.
type tcpConn struct {
	nc net.Conn

	// Receive arena state; only the Recv goroutine touches it.
	rb           []byte // current chunk: [0:rstart) parsed and owned by events
	rstart, rend int    // unparsed window is rb[rstart:rend)
	intern       event.Interner

	writeMu sync.Mutex
	bw      *bufio.Writer
	wbuf    []byte
	// batchBuf is the reused contiguous gather buffer of SendFrames.
	batchBuf []byte

	closeOnce sync.Once
	closeErr  error
}

var _ Conn = (*tcpConn)(nil)

// recvChunk sizes the receive arena: one chunk absorbs a whole batch
// from the peer's Batcher (DefaultMaxBatchBytes).
const recvChunk = 256 << 10

func newTCPConn(nc net.Conn) *tcpConn {
	return &tcpConn{
		nc: nc,
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

func dialTCP(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing tcp %s: %w", addr, err)
	}
	return newTCPConn(nc), nil
}

func (c *tcpConn) Send(e *event.Event) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.wbuf = event.AppendMarshal(c.wbuf[:0], e)
	if len(c.wbuf) > event.MaxWireLen {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(c.wbuf))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(c.wbuf)))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return c.sendErr(err)
	}
	if _, err := c.bw.Write(c.wbuf); err != nil {
		return c.sendErr(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.sendErr(err)
	}
	return nil
}

func (c *tcpConn) sendErr(err error) error {
	return fmt.Errorf("transport: tcp send to %s: %w", c.Label(), err)
}

var _ FrameConn = (*tcpConn)(nil)

// SendFrames writes the encoded events as length-delimited frames with a
// single write system call. The frames are gathered into one reused
// contiguous buffer first: one user-space copy per byte buys a 2×
// reduction in kernel iovec iteration versus writev and allocates
// nothing in steady state.
func (c *tcpConn) SendFrames(frames [][]byte) error {
	if len(frames) == 0 {
		return nil
	}
	total := 0
	for _, f := range frames {
		if len(f) > event.MaxWireLen {
			return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(f))
		}
		total += 4 + len(f)
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	// Drain any bytes buffered by a preceding Send before the batch so
	// frame ordering matches call ordering.
	if c.bw.Buffered() > 0 {
		if err := c.bw.Flush(); err != nil {
			return c.sendErr(err)
		}
	}
	if cap(c.batchBuf) < total {
		c.batchBuf = make([]byte, 0, total)
	}
	buf := c.batchBuf[:0]
	for _, f := range frames {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(f)))
		buf = append(buf, f...)
	}
	c.batchBuf = buf
	if _, err := c.nc.Write(buf); err != nil {
		return c.sendErr(err)
	}
	return nil
}

// ensureSpace guarantees the current chunk can hold need unparsed bytes,
// starting a fresh chunk (and moving only the unparsed tail) when not.
// Parsed bytes are owned by already-returned events and never touched.
func (c *tcpConn) ensureSpace(need int) {
	if len(c.rb)-c.rstart >= need {
		return
	}
	size := recvChunk
	if need > size {
		size = need
	}
	fresh := make([]byte, size)
	n := copy(fresh, c.rb[c.rstart:c.rend])
	c.rb = fresh
	c.rstart, c.rend = 0, n
}

// tryDecodeFrame decodes one complete frame from the buffered window,
// reporting (nil, false, nil) when more bytes are needed. On success the
// parsed region is consumed; on decode failure the window is left in
// place so the error repeats on the next attempt.
func (c *tcpConn) tryDecodeFrame() (*event.Event, bool, error) {
	avail := c.rend - c.rstart
	if avail < 4 {
		return nil, false, nil
	}
	n := int(binary.BigEndian.Uint32(c.rb[c.rstart:]))
	if n == 0 || n > event.MaxWireLen {
		return nil, false, fmt.Errorf("transport: tcp frame length %d out of range", n)
	}
	if avail < 4+n {
		return nil, false, nil
	}
	frame := c.rb[c.rstart+4 : c.rstart+4+n : c.rstart+4+n]
	e, err := event.UnmarshalIntern(frame, &c.intern)
	if err != nil {
		return nil, false, fmt.Errorf("transport: tcp decoding frame: %w", err)
	}
	c.rstart += 4 + n
	return e, true, nil
}

// fill grows the unparsed window with one blocking read, sized so the
// pending frame (when its length header is visible) fits.
func (c *tcpConn) fill() error {
	need := 4
	if avail := c.rend - c.rstart; avail >= 4 {
		need = 4 + int(binary.BigEndian.Uint32(c.rb[c.rstart:]))
	}
	c.ensureSpace(need)
	for {
		m, err := c.nc.Read(c.rb[c.rend:])
		if m > 0 {
			c.rend += m
			return nil
		}
		if err != nil {
			return c.recvErr(err)
		}
	}
}

func (c *tcpConn) Recv() (*event.Event, error) {
	for {
		e, ok, err := c.tryDecodeFrame()
		if err != nil {
			return nil, err
		}
		if ok {
			return e, nil
		}
		if err := c.fill(); err != nil {
			return nil, err
		}
	}
}

var _ BurstConn = (*tcpConn)(nil)

// RecvBurst decodes every complete frame already buffered in the receive
// arena — blocking only for the first — so a sustained inbound stream is
// handed to the broker a burst at a time: everything one read syscall
// (or one peer batch) delivered, in one call.
func (c *tcpConn) RecvBurst(dst []*event.Event, max int) ([]*event.Event, error) {
	if max <= 0 {
		max = 1
	}
	got := 0
	for got < max {
		e, ok, err := c.tryDecodeFrame()
		if err != nil {
			if got > 0 {
				return dst, nil // error resurfaces on the next call
			}
			return dst, err
		}
		if ok {
			dst = append(dst, e)
			got++
			continue
		}
		if got > 0 {
			return dst, nil
		}
		if err := c.fill(); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func (c *tcpConn) recvErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrClosed
	}
	return fmt.Errorf("transport: tcp recv from %s: %w", c.Label(), err)
}

func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

func (c *tcpConn) Label() string { return "tcp:" + c.nc.RemoteAddr().String() }

type tcpListener struct {
	nl net.Listener
}

var _ Listener = (*tcpListener)(nil)

func listenTCP(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listening tcp %s: %w", addr, err)
	}
	return &tcpListener{nl: nl}, nil
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		if ne, ok := err.(net.Error); ok && !ne.Timeout() {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: tcp accept: %w", err)
	}
	return newTCPConn(nc), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }

func (l *tcpListener) Addr() string { return "tcp://" + l.nl.Addr().String() }
