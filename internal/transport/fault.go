package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// Fault is one entry of a deterministic fault schedule, applied to a
// conn's send path in order. After counts successful sends before the
// fault arms; exactly one of the actions then fires:
//
//   - Cut: close the conn (connection kill mid-stream).
//   - Drop > 0: silently lose the next Drop sends (a loss burst — the
//     sender observes success, the wire carries nothing).
//   - Stall > 0: block the next send for the duration before letting
//     it through (a partition window / stall injection).
//
// Schedules compose: {After: 10, Drop: 3} then {After: 5, Cut: true}
// sends 10, loses 3, sends 5 more, then kills the conn.
type Fault struct {
	After int
	Drop  int
	Stall time.Duration
	Cut   bool
}

// FaultConn wraps a Conn with a scripted fault schedule on its send
// path, for chaos tests and the churn benchmark: the schedule is fixed
// up front, so a failure scenario replays identically every run. The
// receive path is passed through untouched (burst-capable when the
// inner conn is). Safe for the usual conn concurrency (one sender, one
// receiver).
type FaultConn struct {
	inner Conn

	mu      sync.Mutex
	faults  []Fault
	clean   int // successful sends since the last fault fired
	dropped uint64

	killed atomic.Bool
}

// InjectFaults wraps conn with the given schedule.
func InjectFaults(conn Conn, faults ...Fault) *FaultConn {
	return &FaultConn{inner: conn, faults: append([]Fault(nil), faults...)}
}

// Kill closes the underlying conn immediately — the out-of-band
// "pull the cable now" used when the test choreography, not a send
// count, decides the moment. Idempotent.
func (f *FaultConn) Kill() {
	if f.killed.CompareAndSwap(false, true) {
		f.inner.Close()
	}
}

// Killed reports whether the conn was cut (by schedule or Kill).
func (f *FaultConn) Killed() bool { return f.killed.Load() }

// Dropped reports how many sends the schedule silently lost.
func (f *FaultConn) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// faultAction is the resolved outcome of one send against the schedule.
type faultAction int

const (
	actSend faultAction = iota
	actDrop
	actCut
)

// step advances the schedule for one send attempt and returns the
// action plus any stall to apply first.
func (f *FaultConn) step() (faultAction, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.faults) == 0 {
		return actSend, 0
	}
	fa := &f.faults[0]
	if f.clean < fa.After {
		f.clean++
		return actSend, 0
	}
	switch {
	case fa.Cut:
		f.faults = f.faults[1:]
		return actCut, 0
	case fa.Drop > 0:
		fa.Drop--
		f.dropped++
		if fa.Drop == 0 {
			f.faults = f.faults[1:]
			f.clean = 0
		}
		return actDrop, 0
	case fa.Stall > 0:
		d := fa.Stall
		f.faults = f.faults[1:]
		f.clean = 1 // the stalled send itself goes through
		return actSend, d
	default:
		// Empty fault: skip it.
		f.faults = f.faults[1:]
		f.clean = 1
		return actSend, 0
	}
}

// Send applies the schedule, then delegates.
func (f *FaultConn) Send(e *event.Event) error {
	if f.killed.Load() {
		return ErrClosed
	}
	act, stall := f.step()
	switch act {
	case actCut:
		f.Kill()
		return ErrClosed
	case actDrop:
		return nil
	}
	if stall > 0 {
		time.Sleep(stall)
	}
	return f.inner.Send(e)
}

// Recv delegates to the inner conn.
func (f *FaultConn) Recv() (*event.Event, error) { return f.inner.Recv() }

// RecvBurst delegates to the inner conn's burst path when it has one,
// falling back to single-event receives (the RecvBurst contract allows
// a one-event burst).
func (f *FaultConn) RecvBurst(dst []*event.Event, max int) ([]*event.Event, error) {
	if bc, ok := f.inner.(BurstConn); ok {
		return bc.RecvBurst(dst, max)
	}
	e, err := f.inner.Recv()
	if err != nil {
		return dst, err
	}
	return append(dst, e), nil
}

// Close closes the inner conn.
func (f *FaultConn) Close() error {
	f.killed.Store(true)
	return f.inner.Close()
}

// Label describes the wrapped conn.
func (f *FaultConn) Label() string { return "fault:" + f.inner.Label() }

// SendBlocks reports whether the remaining schedule can stall senders.
func (f *FaultConn) SendBlocks() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, fa := range f.faults {
		if fa.Stall > 0 {
			return true
		}
	}
	return false
}
