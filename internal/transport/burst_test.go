package transport

import (
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

func burstEvent(id uint64) *event.Event {
	e := event.New("/burst/t", event.KindData, []byte("payload"))
	e.Source = "burst-src"
	e.ID = id
	return e
}

// TestTCPRecvBurst: one SendFrames batch arrives as one RecvBurst on the
// other side (everything the read syscall delivered, in one call).
func TestTCPRecvBurst(t *testing.T) {
	l, err := Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialer, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()
	server := <-accepted
	defer server.Close()

	const n = 32
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = event.Marshal(burstEvent(uint64(i + 1)))
	}
	if err := dialer.(FrameConn).SendFrames(frames); err != nil {
		t.Fatal(err)
	}
	bc := server.(BurstConn)
	var got []*event.Event
	for len(got) < n {
		burst, err := bc.RecvBurst(nil, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(burst) == 0 {
			t.Fatal("RecvBurst returned no events and no error")
		}
		got = append(got, burst...)
	}
	for i, e := range got {
		if e.ID != uint64(i+1) {
			t.Fatalf("event %d has ID %d, want %d", i, e.ID, i+1)
		}
	}
	// A steady stream coalesces: after the kernel buffered the whole
	// batch, at least one call must have decoded more than one event.
	if err := dialer.(FrameConn).SendFrames(frames); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the batch land in the socket buffer
	burst, err := bc.RecvBurst(nil, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(burst) < 2 {
		t.Fatalf("buffered batch yielded a burst of %d, want >= 2", len(burst))
	}
}

// TestTCPRecvBurstCap: max bounds a burst; the remainder stays buffered
// for the next call.
func TestTCPRecvBurstCap(t *testing.T) {
	l, err := Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialer, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()
	server := <-accepted
	defer server.Close()

	frames := make([][]byte, 10)
	for i := range frames {
		frames[i] = event.Marshal(burstEvent(uint64(i + 1)))
	}
	if err := dialer.(FrameConn).SendFrames(frames); err != nil {
		t.Fatal(err)
	}
	bc := server.(BurstConn)
	total := 0
	for total < 10 {
		burst, err := bc.RecvBurst(nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(burst) > 4 {
			t.Fatalf("burst of %d exceeds max 4", len(burst))
		}
		total += len(burst)
	}
}

// TestMemRecvBurst: an in-process pipe drains everything already
// buffered in one call.
func TestMemRecvBurst(t *testing.T) {
	a, b := Pipe("a", "b")
	defer a.Close()
	defer b.Close()
	for i := 1; i <= 5; i++ {
		if err := a.Send(burstEvent(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	burst, err := b.(BurstConn).RecvBurst(nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(burst) != 5 {
		t.Fatalf("burst = %d events, want 5", len(burst))
	}
	for i, e := range burst {
		if e.ID != uint64(i+1) {
			t.Fatalf("event %d has ID %d, want %d", i, e.ID, i+1)
		}
	}
}

// TestMemSendEvents: the batch entry point delivers in order.
func TestMemSendEvents(t *testing.T) {
	a, b := Pipe("a", "b")
	defer a.Close()
	defer b.Close()
	batch := []*event.Event{burstEvent(1), burstEvent(2), burstEvent(3)}
	if err := a.(EventBatchConn).SendEvents(batch); err != nil {
		t.Fatal(err)
	}
	for want := uint64(1); want <= 3; want++ {
		e, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if e.ID != want {
			t.Fatalf("got ID %d, want %d", e.ID, want)
		}
	}
}

// TestShaperSyscallCostBatch: with a per-call syscall cost, a batched
// sender pays it once per batch while an unbatched sender pays it per
// event — the mem:// emulation of the batching win.
func TestShaperSyscallCostBatch(t *testing.T) {
	const (
		cost = 2 * time.Millisecond
		n    = 20
	)
	mk := func() (Conn, Conn) {
		a, b := Pipe("a", "b")
		return Shape(a, LinkProfile{SyscallCost: cost}), b
	}
	events := make([]*event.Event, n)
	for i := range events {
		events[i] = burstEvent(uint64(i + 1))
	}

	shapedA, rawB := mk()
	defer shapedA.Close()
	defer rawB.Close()
	start := time.Now()
	for _, e := range events {
		if err := shapedA.Send(e); err != nil {
			t.Fatal(err)
		}
	}
	perEvent := time.Since(start)

	shapedC, rawD := mk()
	defer shapedC.Close()
	defer rawD.Close()
	start = time.Now()
	if err := shapedC.(EventBatchConn).SendEvents(events); err != nil {
		t.Fatal(err)
	}
	batched := time.Since(start)

	if perEvent < time.Duration(n)*cost {
		t.Fatalf("per-event path took %v, want >= %v", perEvent, time.Duration(n)*cost)
	}
	if batched > perEvent/2 {
		t.Fatalf("batched path took %v, not meaningfully cheaper than per-event %v", batched, perEvent)
	}
	// Both paths delivered everything.
	for _, c := range []Conn{rawB, rawD} {
		burst, err := c.(BurstConn).RecvBurst(nil, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(burst) != n {
			t.Fatalf("delivered %d events, want %d", len(burst), n)
		}
	}
}

// TestShapedFrameConnLoss: shaping a framed conn preserves the frame
// path and applies loss per frame — the substrate of the broker's
// reliable-retransmit tests over lossy framed links.
func TestShapedFrameConnLoss(t *testing.T) {
	l, err := Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialer, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()
	server := <-accepted
	defer server.Close()

	shaped := Shape(dialer, LinkProfile{Loss: 0.5, Seed: 7})
	fc, ok := shaped.(FrameConn)
	if !ok {
		t.Fatal("shaping a FrameConn lost the frame capability")
	}
	const n = 200
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = event.Marshal(burstEvent(uint64(i + 1)))
	}
	if err := fc.SendFrames(frames); err != nil {
		t.Fatal(err)
	}
	// Close the write side so the reader sees EOF after the survivors.
	dialer.Close()
	got := 0
	for {
		if _, err := server.Recv(); err != nil {
			break
		}
		got++
	}
	if got == 0 || got == n {
		t.Fatalf("lossy frame link delivered %d/%d, want strictly between", got, n)
	}
}
