package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

func testEvent(id uint64) *event.Event {
	return &event.Event{
		ID:        id,
		Source:    "t",
		Topic:     "/test/topic",
		Kind:      event.KindData,
		TTL:       4,
		Timestamp: time.Now().UnixNano(),
		Payload:   []byte("hello"),
	}
}

// exerciseConnPair sends events both ways across a connected pair and
// verifies arrival, then closes and verifies ErrClosed.
func exerciseConnPair(t *testing.T, a, b Conn) {
	t.Helper()
	const n = 50
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range n {
			if err := a.Send(testEvent(uint64(i))); err != nil {
				t.Errorf("a.Send(%d): %v", i, err)
				return
			}
		}
	}()
	for i := range n {
		e, err := b.Recv()
		if err != nil {
			t.Fatalf("b.Recv(%d): %v", i, err)
		}
		if e.Topic != "/test/topic" {
			t.Fatalf("recv topic = %q", e.Topic)
		}
	}
	wg.Wait()

	// Reverse direction.
	if err := b.Send(testEvent(99)); err != nil {
		t.Fatalf("b.Send: %v", err)
	}
	e, err := a.Recv()
	if err != nil || e.ID != 99 {
		t.Fatalf("a.Recv = %v, %v", e, err)
	}

	if err := a.Close(); err != nil {
		t.Fatalf("a.Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestMemPipe(t *testing.T) {
	a, b := Pipe("b-side", "a-side")
	exerciseConnPair(t, a, b)
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after peer close = %v, want ErrClosed", err)
	}
	if err := b.Send(testEvent(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
}

func TestMemPipeDrainAfterClose(t *testing.T) {
	a, b := Pipe("x", "y")
	if err := a.Send(testEvent(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if e, err := b.Recv(); err != nil || e.ID != 1 {
		t.Fatalf("buffered event lost on close: %v, %v", e, err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed after drain, got %v", err)
	}
}

func TestMemListenerDialAccept(t *testing.T) {
	n := &Network{}
	l, err := n.Listen("mem://hub")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Addr() != "mem://hub" {
		t.Fatalf("Addr = %q", l.Addr())
	}

	type result struct {
		c   Conn
		err error
	}
	acceptCh := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		acceptCh <- result{c, err}
	}()
	client, err := n.Dial("mem://hub")
	if err != nil {
		t.Fatal(err)
	}
	r := <-acceptCh
	if r.err != nil {
		t.Fatal(r.err)
	}
	exerciseConnPair(t, client, r.c)
}

func TestMemDialUnknown(t *testing.T) {
	n := &Network{}
	if _, err := n.Dial("mem://nowhere"); err == nil {
		t.Fatal("dial to unknown mem address succeeded")
	}
}

func TestMemListenDuplicate(t *testing.T) {
	n := &Network{}
	l, err := n.Listen("mem://dup")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("mem://dup"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	l.Close()
	// Address is free again after close.
	l2, err := n.Listen("mem://dup")
	if err != nil {
		t.Fatalf("listen after close: %v", err)
	}
	l2.Close()
}

func TestMemListenerCloseUnblocksAccept(t *testing.T) {
	n := &Network{}
	l, err := n.Listen("mem://c")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Accept after close = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
}

func TestTCPConn(t *testing.T) {
	l, err := Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	acceptCh := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		acceptCh <- c
	}()
	client, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-acceptCh
	exerciseConnPair(t, client, server)
	if _, err := server.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after peer close = %v, want ErrClosed", err)
	}
}

func TestTCPLargeEvent(t *testing.T) {
	l, err := Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	acceptCh := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		acceptCh <- c
	}()
	client, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-acceptCh
	defer server.Close()

	e := testEvent(1)
	e.Payload = make([]byte, 512<<10) // 512 KiB, within 1 MiB limit
	for i := range e.Payload {
		e.Payload[i] = byte(i)
	}
	if err := client.Send(e); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != len(e.Payload) {
		t.Fatalf("payload len = %d, want %d", len(got.Payload), len(e.Payload))
	}
}

func TestUDPConn(t *testing.T) {
	l, err := Listen("udp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	client, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// UDP server conns materialize on first datagram.
	if err := client.Send(testEvent(1)); err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	e, err := server.Recv()
	if err != nil || e.ID != 1 {
		t.Fatalf("server.Recv = %v, %v", e, err)
	}
	// Reply path.
	if err := server.Send(testEvent(2)); err != nil {
		t.Fatal(err)
	}
	e, err = client.Recv()
	if err != nil || e.ID != 2 {
		t.Fatalf("client.Recv = %v, %v", e, err)
	}
}

func TestUDPOversizedEvent(t *testing.T) {
	l, err := Listen("udp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	client, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	e := testEvent(1)
	e.Payload = make([]byte, maxDatagram+1)
	if err := client.Send(e); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Send oversized = %v, want ErrTooLarge", err)
	}
}

func TestDialErrors(t *testing.T) {
	cases := []string{"", "noscheme", "bogus://x", "mem://"}
	for _, u := range cases {
		if _, err := Dial(u); err == nil {
			t.Errorf("Dial(%q) succeeded", u)
		}
	}
	if _, err := Listen("bogus://x"); err == nil {
		t.Error("Listen with unknown scheme succeeded")
	}
}

func TestShapeZeroProfileIsPassthrough(t *testing.T) {
	a, _ := Pipe("x", "y")
	if got := Shape(a, LinkProfile{}); got != a {
		t.Fatal("zero profile should return conn unchanged")
	}
}

func TestShapePropDelay(t *testing.T) {
	a, b := Pipe("x", "y")
	const delay = 30 * time.Millisecond
	sa := Shape(a, LinkProfile{PropDelay: delay})
	defer sa.Close()
	start := time.Now()
	if err := sa.Send(testEvent(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < delay {
		t.Fatalf("delivered after %v, want >= %v", got, delay)
	}
}

func TestShapeLossDropsAll(t *testing.T) {
	a, b := Pipe("x", "y")
	sa := Shape(a, LinkProfile{Loss: 1.0})
	defer sa.Close()
	for i := range 10 {
		if err := sa.Send(testEvent(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// A zero-loss marker after closing the shaped conn: direct send.
	if err := a.Send(testEvent(100)); err != nil {
		t.Fatal(err)
	}
	e, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != 100 {
		t.Fatalf("received %d, want only the marker 100", e.ID)
	}
}

func TestShapeLossStatistical(t *testing.T) {
	a, b := Pipe("x", "y")
	sa := Shape(a, LinkProfile{Loss: 0.5, Seed: 42})
	defer sa.Close()
	const n = 1000
	for i := range n {
		if err := sa.Send(testEvent(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	for {
		done := false
		select {
		case <-time.After(50 * time.Millisecond):
			done = true
		default:
			a2 := b.(*memConn)
			select {
			case <-a2.recv:
				received++
			default:
				done = true
			}
		}
		if done {
			break
		}
	}
	if received < 400 || received > 600 {
		t.Fatalf("received %d of %d with 50%% loss, want ~500", received, n)
	}
}

func TestShapeBandwidthSerializes(t *testing.T) {
	a, b := Pipe("x", "y")
	// 10 KB/s; three 1000-byte payloads ≈ 300ms+ to deliver all.
	sa := Shape(a, LinkProfile{Bandwidth: 10_000})
	defer sa.Close()
	start := time.Now()
	for i := range 3 {
		e := testEvent(uint64(i))
		e.Payload = make([]byte, 1000)
		if err := sa.Send(e); err != nil {
			t.Fatal(err)
		}
	}
	for range 3 {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 250*time.Millisecond {
		t.Fatalf("3 KB over 10KB/s delivered in %v, want >= ~300ms", elapsed)
	}
}

func TestShapeOrderPreservedWithoutJitter(t *testing.T) {
	a, b := Pipe("x", "y")
	sa := Shape(a, LinkProfile{PropDelay: 5 * time.Millisecond})
	defer sa.Close()
	const n = 100
	for i := range n {
		if err := sa.Send(testEvent(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := range n {
		e, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if e.ID != uint64(i) {
			t.Fatalf("event %d arrived out of order (got id %d)", i, e.ID)
		}
	}
}

func TestShapeSendCostBlocksSender(t *testing.T) {
	a, _ := Pipe("x", "y")
	const cost = 2 * time.Millisecond
	sa := Shape(a, LinkProfile{SendCost: cost})
	defer sa.Close()
	start := time.Now()
	const n = 10
	for i := range n {
		if err := sa.Send(testEvent(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := time.Since(start); got < n*cost {
		t.Fatalf("%d sends took %v, want >= %v", n, got, n*cost)
	}
}

func TestSpinWaitAccuracy(t *testing.T) {
	for _, d := range []time.Duration{50 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond} {
		start := time.Now()
		spinWait(d)
		got := time.Since(start)
		if got < d {
			t.Errorf("spinWait(%v) returned after %v", d, got)
		}
		if got > d+5*time.Millisecond {
			t.Errorf("spinWait(%v) overshot to %v", d, got)
		}
	}
}

func TestShapedCloseStopsDelayLine(t *testing.T) {
	a, b := Pipe("x", "y")
	sa := Shape(a, LinkProfile{PropDelay: time.Hour})
	if err := sa.Send(testEvent(1)); err != nil {
		t.Fatal(err)
	}
	if err := sa.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv = %v, want ErrClosed after shaped close", err)
	}
}

func TestConnLabels(t *testing.T) {
	a, b := Pipe("peer-b", "peer-a")
	if a.Label() != "peer-b" || b.Label() != "peer-a" {
		t.Fatalf("labels = %q, %q", a.Label(), b.Label())
	}
	sa := Shape(a, LinkProfile{Loss: 0.1})
	if sa.Label() != "peer-b" {
		t.Fatalf("shaped label = %q", sa.Label())
	}
}

func BenchmarkMemPipeRoundtrip(b *testing.B) {
	x, y := Pipe("x", "y")
	defer x.Close()
	e := testEvent(1)
	b.ReportAllocs()
	for b.Loop() {
		if err := x.Send(e); err != nil {
			b.Fatal(err)
		}
		if _, err := y.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPRoundtrip(b *testing.B) {
	l, err := Listen("tcp://127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	acceptCh := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		acceptCh <- c
	}()
	client, err := Dial(l.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	server := <-acceptCh
	defer server.Close()
	e := testEvent(1)
	e.Payload = make([]byte, 1200)
	b.ReportAllocs()
	for b.Loop() {
		if err := client.Send(e); err != nil {
			b.Fatal(err)
		}
		if _, err := server.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
