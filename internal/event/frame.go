package event

// ttlOffset is the fixed position of the TTL byte in the wire layout
// (magic, version, kind, then TTL — see AppendMarshal).
const ttlOffset = 3

// Frame is an immutable, pre-encoded wire representation of one event.
// A broker fanning an event out to many sessions encodes it once into a
// Frame and shares the Frame across every outbound queue; per-hop TTL
// rewrites are a one-byte header patch on a fresh copy (WithTTL) instead
// of a full re-marshal or per-peer Clone.
//
// The byte slice returned by Bytes must never be mutated: it is shared
// concurrently by every session the frame was fanned out to.
type Frame struct {
	b []byte
}

// NewFrame encodes e into a frame. The event must not be mutated while
// the frame is in flight (the frame captures its current encoding).
func NewFrame(e *Event) *Frame {
	return &Frame{b: Marshal(e)}
}

// FrameFromBytes wraps an already-encoded event. The caller must not
// mutate b afterwards.
func FrameFromBytes(b []byte) *Frame { return &Frame{b: b} }

// Bytes returns the encoded event. Callers must treat it as read-only.
func (f *Frame) Bytes() []byte { return f.b }

// Len returns the encoded length in bytes.
func (f *Frame) Len() int { return len(f.b) }

// TTL returns the hop budget encoded in the frame header.
func (f *Frame) TTL() uint8 { return f.b[ttlOffset] }

// WithTTL returns a frame identical to f except for the TTL header byte.
// If the TTL already matches, f itself is returned; otherwise the frame
// buffer is copied once — a single memmove shared by all downstream
// consumers, which is what makes broker TTL decrement cheap.
func (f *Frame) WithTTL(ttl uint8) *Frame {
	if f.b[ttlOffset] == ttl {
		return f
	}
	b := make([]byte, len(f.b))
	copy(b, f.b)
	b[ttlOffset] = ttl
	return &Frame{b: b}
}

// Decode unmarshals the frame back into an event. The returned event's
// payload aliases the frame buffer and must not be mutated.
func (f *Frame) Decode() (*Event, error) { return Unmarshal(f.b) }
